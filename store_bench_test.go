package pathprof

// Storage-tier benchmarks (BENCH_store.json): the group-commit claim is
// that many concurrent durable appends coalesce into one fsync, so
// throughput scales with the batch size rather than the device's fsync
// rate. Both sub-benchmarks run the same concurrent append load against
// the same store with the same modeled fsync latency (Options.SyncDelay
// stands in for a real device — on this CI filesystem a raw fsync is
// nearly free, which would let a no-op measure pass); the only variable
// is MaxBatch. scripts/ci.sh gates groupCommit at >= 10x the
// per-record-fsync envelope rate.

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"pathprof/internal/store"
)

// storeBenchAppend measures concurrent durable appends with the given
// batching limit and a 1ms modeled fsync (a disk-backed flush; large
// enough that scheduler overhead on a small CI box does not drown the
// device term either mode is paying).
func storeBenchAppend(b *testing.B, maxBatch int) {
	l, _, err := store.Open(b.TempDir(), store.Options{
		MaxBatch:     maxBatch,
		MaxWait:      2 * time.Millisecond,
		CompactAfter: -1,
		SyncDelay:    time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 256)
	rand.New(rand.NewSource(1)).Read(payload)
	ctx := context.Background()
	b.SetParallelism(32) // 32*GOMAXPROCS concurrent producers
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := l.Append(ctx, 0, payload); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	m := l.Metrics()
	perFsync := float64(m.Appends)
	if m.Fsyncs > 0 {
		perFsync = float64(m.Appends) / float64(m.Fsyncs)
	}
	recordBench(b, map[string]float64{
		"envelopes-per-sec": float64(b.N) / b.Elapsed().Seconds(),
		"appends-per-fsync": perFsync,
		"batch-max":         float64(m.BatchMax),
	})
}

func BenchmarkStoreAppendFsync(b *testing.B) {
	b.Run("groupCommit", func(b *testing.B) { storeBenchAppend(b, 256) })
	b.Run("perRecordFsync", func(b *testing.B) { storeBenchAppend(b, 1) })
}
