package pathprof

// Blank-importing autovet makes every instrument.Instrument call in this
// test binary verify its output with the ppvet static checkers, and autotv
// makes every pgo.Optimize call prove its rewrite with the translation
// validator.
import (
	_ "pathprof/internal/ppvet/autovet"
	_ "pathprof/internal/tv/autotv"
)
