package flat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCrossCheckAgainstMap is the table's correctness property: on random
// insert/add/lookup sequences — including enough inserts to force several
// growth rounds, the dense/hashed crossover regime, negative keys, and the
// sentinel-colliding key — the table behaves exactly like map[int64]int64.
func TestCrossCheckAgainstMap(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		table := New(rng.Intn(32))
		ref := map[int64]int64{}

		// Key pool mixing the shapes the profiler stores: small dense path
		// sums, sparse packed proc/path words, negatives (chord-optimized
		// prefixes), and the sentinel-colliding extreme.
		keys := make([]int64, 64)
		for i := range keys {
			switch i % 4 {
			case 0:
				keys[i] = int64(rng.Intn(128))
			case 1:
				keys[i] = int64(rng.Intn(1<<20)) << 18
			case 2:
				keys[i] = -int64(rng.Intn(1 << 30))
			default:
				keys[i] = rng.Int63()
			}
		}
		keys[0] = math.MinInt64
		keys[1] = math.MaxInt64

		const ops = 4000 // >> 8*3/4, so growth happens repeatedly
		for i := 0; i < ops; i++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(3) {
			case 0:
				d := int64(rng.Intn(100) - 20)
				got := table.Add(k, d)
				ref[k] += d
				if got != ref[k] {
					t.Logf("seed %d: Add(%d) = %d, want %d", seed, k, got, ref[k])
					return false
				}
			case 1:
				v := rng.Int63n(1 << 40)
				table.Set(k, v)
				ref[k] = v
			default:
				got, ok := table.Get(k)
				want, wantOK := ref[k]
				if ok != wantOK || got != want {
					t.Logf("seed %d: Get(%d) = %d,%v want %d,%v", seed, k, got, ok, want, wantOK)
					return false
				}
			}
		}

		if table.Len() != len(ref) {
			t.Logf("seed %d: Len %d, want %d", seed, table.Len(), len(ref))
			return false
		}
		seen := map[int64]int64{}
		table.Range(func(k, v int64) bool {
			seen[k] = v
			return true
		})
		if len(seen) != len(ref) {
			t.Logf("seed %d: Range visited %d keys, want %d", seed, len(seen), len(ref))
			return false
		}
		for k, v := range ref {
			if seen[k] != v {
				t.Logf("seed %d: Range gave %d=%d, want %d", seed, k, seen[k], v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestGrowthPreservesEntries drives one table far past the >threshold
// growth path (several doublings) and verifies every counter.
func TestGrowthPreservesEntries(t *testing.T) {
	table := New(0)
	const n = 100_000
	for i := 0; i < n; i++ {
		table.Add(int64(i*7), int64(i))
	}
	if table.Len() != n {
		t.Fatalf("Len = %d, want %d", table.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := table.Get(int64(i * 7))
		if !ok || v != int64(i) {
			t.Fatalf("key %d: got %d,%v", i*7, v, ok)
		}
	}
	if _, ok := table.Get(3); ok {
		t.Fatal("phantom key present")
	}
}

// TestRangeEarlyStop: Range must respect fn returning false.
func TestRangeEarlyStop(t *testing.T) {
	table := New(0)
	for i := int64(0); i < 100; i++ {
		table.Set(i, i)
	}
	visits := 0
	table.Range(func(_, _ int64) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Fatalf("visited %d, want 5", visits)
	}
}

// TestKeysMatchesLen: Keys returns each key exactly once.
func TestKeysMatchesLen(t *testing.T) {
	table := New(4)
	table.Set(math.MinInt64, 1)
	for i := int64(0); i < 50; i++ {
		table.Add(i*3-20, 1)
	}
	ks := table.Keys()
	if len(ks) != table.Len() {
		t.Fatalf("Keys len %d != Len %d", len(ks), table.Len())
	}
	uniq := map[int64]bool{}
	for _, k := range ks {
		if uniq[k] {
			t.Fatalf("duplicate key %d", k)
		}
		uniq[k] = true
	}
}

// BenchmarkAddHit measures the steady-state counter update against the map
// it replaces.
func BenchmarkAddHit(b *testing.B) {
	b.Run("flat", func(b *testing.B) {
		table := New(4096)
		for i := int64(0); i < 4096; i++ {
			table.Add(i, 1)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			table.Add(int64(i)&4095, 1)
		}
	})
	b.Run("map", func(b *testing.B) {
		m := make(map[int64]int64, 4096)
		for i := int64(0); i < 4096; i++ {
			m[i] = 1
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m[int64(i)&4095]++
		}
	})
}
