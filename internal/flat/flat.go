// Package flat provides a flat open-addressing hash table from int64 keys
// to int64 values — the in-memory analogue of the paper's Figure 7 hash
// records. The profiling hot paths (per-record path counters in the CCT,
// the runtime's hashed path tables, profile decoding) update counters keyed
// by path sums or packed probe arguments; a Go map pays an allocation per
// bucket chain and hashes through runtime interfaces, while this table is
// two parallel int64 slices probed linearly from a multiplicative hash.
// There is no deletion, so probing needs no tombstones: a lookup stops at
// the first empty slot.
package flat

import "math"

// emptyKey marks an unoccupied slot. math.MinInt64 never occurs as a real
// key (path sums, packed site/path words and packed proc/path words are all
// far smaller in magnitude); the one caller-visible collision, cct.NoPrefix,
// is a sentinel that is never inserted. Table still handles the key
// correctly via a dedicated out-of-band slot, so the type has no forbidden
// inputs.
const emptyKey = math.MinInt64

// minCap is the smallest bucket array; must be a power of two.
const minCap = 8

// Table is an int64 → int64 open-addressing hash table with linear probing
// and power-of-two sizing. The zero value is not ready for use; call New.
type Table struct {
	keys []int64
	vals []int64
	mask uint64 // len(keys) - 1
	n    int    // occupied slots, excluding the sentinel key

	// Out-of-band storage for the one key that collides with emptyKey.
	hasMin bool
	minVal int64
}

// New returns a table pre-sized for about hint entries (hint <= 0 gives the
// minimum size).
func New(hint int) *Table {
	capacity := minCap
	for capacity*3 < hint*4 { // grow until hint fits under 3/4 load
		capacity <<= 1
	}
	t := &Table{}
	t.init(capacity)
	return t
}

func (t *Table) init(capacity int) {
	t.keys = make([]int64, capacity)
	t.vals = make([]int64, capacity)
	for i := range t.keys {
		t.keys[i] = emptyKey
	}
	t.mask = uint64(capacity - 1)
}

// Len returns the number of distinct keys stored.
func (t *Table) Len() int {
	if t.hasMin {
		return t.n + 1
	}
	return t.n
}

// slotFor hashes k to its starting probe index. Fibonacci hashing spreads
// the small, dense, or stride-patterned keys the profiler produces (path
// sums, packed IDs) across the table.
func (t *Table) slotFor(k int64) uint64 {
	h := uint64(k) * 0x9E3779B97F4A7C15
	return (h ^ h>>29) & t.mask
}

// Get returns the value stored for k and whether k is present.
func (t *Table) Get(k int64) (int64, bool) {
	if k == emptyKey {
		return t.minVal, t.hasMin
	}
	for i := t.slotFor(k); ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case k:
			return t.vals[i], true
		case emptyKey:
			return 0, false
		}
	}
}

// Set stores v for k, inserting the key if absent.
func (t *Table) Set(k, v int64) {
	if k == emptyKey {
		t.hasMin = true
		t.minVal = v
		return
	}
	*t.slot(k) = v
}

// Add adds d to k's value (inserting the key at d if absent) and returns
// the new value. This is the counter-update hot path.
func (t *Table) Add(k, d int64) int64 {
	if k == emptyKey {
		t.hasMin = true
		t.minVal += d
		return t.minVal
	}
	p := t.slot(k)
	*p += d
	return *p
}

// slot returns the value cell for k, inserting the key (value 0) if absent
// and growing the table as needed. k must not be emptyKey.
func (t *Table) slot(k int64) *int64 {
	for i := t.slotFor(k); ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case k:
			return &t.vals[i]
		case emptyKey:
			if (t.n+1)*4 > len(t.keys)*3 {
				t.grow()
				i = t.probeEmpty(k)
			}
			t.keys[i] = k
			t.n++
			return &t.vals[i]
		}
	}
}

// probeEmpty finds the empty slot for a key known to be absent.
func (t *Table) probeEmpty(k int64) uint64 {
	i := t.slotFor(k)
	for t.keys[i] != emptyKey {
		i = (i + 1) & t.mask
	}
	return i
}

// grow doubles the bucket array and reinserts every occupied slot.
func (t *Table) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.init(len(oldKeys) * 2)
	for i, k := range oldKeys {
		if k != emptyKey {
			j := t.probeEmpty(k)
			t.keys[j] = k
			t.vals[j] = oldVals[i]
		}
	}
}

// Clone returns an independent copy of the table. The bucket array is
// copied verbatim (same capacity, same slot layout), so a clone ranges in
// the same order as its source.
func (t *Table) Clone() *Table {
	c := &Table{
		keys:   append([]int64(nil), t.keys...),
		vals:   append([]int64(nil), t.vals...),
		mask:   t.mask,
		n:      t.n,
		hasMin: t.hasMin,
		minVal: t.minVal,
	}
	return c
}

// Range calls fn for every (key, value) pair in unspecified (but
// deterministic for a given insertion history) order, stopping early if fn
// returns false.
func (t *Table) Range(fn func(k, v int64) bool) {
	if t.hasMin && !fn(emptyKey, t.minVal) {
		return
	}
	for i, k := range t.keys {
		if k != emptyKey && !fn(k, t.vals[i]) {
			return
		}
	}
}

// Keys returns all keys, unsorted, in a freshly allocated slice.
func (t *Table) Keys() []int64 {
	out := make([]int64, 0, t.Len())
	t.Range(func(k, _ int64) bool {
		out = append(out, k)
		return true
	})
	return out
}
