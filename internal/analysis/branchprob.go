package analysis

import (
	"fmt"
	"math"

	"pathprof/internal/bl"
	"pathprof/internal/cfg"
	"pathprof/internal/ir"
	"pathprof/internal/profile"
)

// This file derives edge-level frequency information from a Ball-Larus path
// profile: every executed path is regenerated and its frequency charged to
// each transformed edge it traverses. Because path counts are exact (not
// sampled), the projected edge counts are exact too — they are the branch
// probabilities the pgo optimizer and the DOT hot-path renderer consume.

// EdgeFreq maps CFG edges to execution counts.
type EdgeFreq map[cfg.Edge]int64

// ProjectEdgeFrequencies converts one procedure's path profile into exact
// edge execution counts, keyed on the CFG the numbering was computed over
// (the entry-split form every instrumentation mode normalizes to).
//
// Real transformed edges are charged directly. A backedge executes once per
// PseudoEnd traversal — a k>1 path that spans it internally records exactly
// one PseudoEnd per crossing, a classic path one at its end — so its count
// comes from PseudoEnd traversals alone; the matching PseudoStart on the
// successor path describes the same dynamic event and is skipped to avoid
// double counting. This makes the projection independent of the profile's
// iteration degree: k=1 and k=3 profiles of the same run project to the
// same exact edge counts.
func ProjectEdgeFrequencies(pp *profile.ProcPaths, nm *bl.Numbering) (EdgeFreq, error) {
	ef := make(EdgeFreq)
	for i := range pp.Entries {
		e := &pp.Entries[i]
		if e.Freq == 0 {
			continue
		}
		path, err := nm.RegenerateK(e.Sum)
		if err != nil {
			return nil, fmt.Errorf("analysis: proc %s: %w", pp.Name, err)
		}
		for _, ref := range path.Edges {
			te := nm.Succs[ref.Block][ref.Pos]
			switch te.Kind {
			case bl.Real:
				edge := cfg.Edge{From: ir.BlockID(ref.Block), To: te.To, Slot: te.Slot}
				ef[edge] += int64(e.Freq)
			case bl.PseudoEnd:
				ef[nm.Backedges[te.Backedge]] += int64(e.Freq)
			case bl.PseudoStart:
				// Counted by the previous path's PseudoEnd.
			}
		}
	}
	return ef, nil
}

// ToOriginalCFG renumbers entry-split edge frequencies back onto the
// original CFG. The instrumenter's split moves the original entry body to
// block baseBlocks-1 and leaves a bare jump stub as block 0; undoing it
// maps the moved block back to 0 and drops the synthetic stub edge.
// Edge-split pass-through blocks (IDs >= baseBlocks) never appear in the
// numbering, which is computed before those insertions.
func ToOriginalCFG(ef EdgeFreq, baseBlocks int) EdgeFreq {
	moved := ir.BlockID(baseBlocks - 1)
	norm := func(b ir.BlockID) ir.BlockID {
		if b == moved {
			return 0
		}
		return b
	}
	out := make(EdgeFreq, len(ef))
	for e, f := range ef {
		if e.From == 0 {
			continue // the stub's only out-edge is the synthetic jump to moved
		}
		out[cfg.Edge{From: norm(e.From), To: norm(e.To), Slot: e.Slot}] += f
	}
	return out
}

// BlockFrequencies returns per-block execution counts implied by edge
// frequencies: the larger of the incoming and outgoing edge sums (they
// agree for interior blocks; the entry has activations without incoming
// edges, the exit has none outgoing).
func BlockFrequencies(p *ir.Proc, ef EdgeFreq) []int64 {
	in := make([]int64, len(p.Blocks))
	out := make([]int64, len(p.Blocks))
	for _, b := range p.Blocks {
		for slot, s := range b.Succs {
			f := ef[cfg.Edge{From: b.ID, To: s, Slot: slot}]
			out[b.ID] += f
			in[s] += f
		}
	}
	freq := make([]int64, len(p.Blocks))
	for i := range freq {
		freq[i] = max(in[i], out[i])
	}
	return freq
}

// BranchProbabilities returns, per block, the probability of each successor
// slot (taken/fallthrough for branches), derived from edge counts. Blocks
// that never executed get all-zero rows.
func BranchProbabilities(p *ir.Proc, ef EdgeFreq) [][]float64 {
	probs := make([][]float64, len(p.Blocks))
	for _, b := range p.Blocks {
		row := make([]float64, len(b.Succs))
		var total int64
		for slot, s := range b.Succs {
			total += ef[cfg.Edge{From: b.ID, To: s, Slot: slot}]
		}
		if total > 0 {
			for slot, s := range b.Succs {
				row[slot] = float64(ef[cfg.Edge{From: b.ID, To: s, Slot: slot}]) / float64(total)
			}
		}
		probs[b.ID] = row
	}
	return probs
}

// HotEdgeThreshold is the successor probability at or above which the DOT
// renderer paints an edge as hot.
const HotEdgeThreshold = 0.5

// HeatAnnotations builds DOT annotations for a procedure from measured edge
// frequencies: block fill intensity scales with execution count (square
// root, so mid-frequency blocks stay distinguishable from cold ones), edges
// are labelled with probability and count, and dominant edges out of
// executed blocks render hot.
func HeatAnnotations(p *ir.Proc, ef EdgeFreq) *ir.DotAnnotations {
	freq := BlockFrequencies(p, ef)
	probs := BranchProbabilities(p, ef)
	var maxFreq int64
	for _, f := range freq {
		maxFreq = max(maxFreq, f)
	}
	heat := make([]float64, len(freq))
	if maxFreq > 0 {
		for i, f := range freq {
			heat[i] = math.Sqrt(float64(f) / float64(maxFreq))
		}
	}
	return &ir.DotAnnotations{
		BlockHeat: heat,
		BlockNote: func(b ir.BlockID) string {
			return fmt.Sprintf("freq %d", freq[b])
		},
		EdgeLabel: func(b ir.BlockID, slot int) string {
			row := probs[b]
			if slot >= len(row) {
				return ""
			}
			blk := p.Blocks[b]
			count := ef[cfg.Edge{From: b, To: blk.Succs[slot], Slot: slot}]
			return fmt.Sprintf("p=%.2f n=%d", row[slot], count)
		},
		EdgeHot: func(b ir.BlockID, slot int) bool {
			row := probs[b]
			return slot < len(row) && freq[b] > 0 && row[slot] >= HotEdgeThreshold
		},
	}
}
