package analysis

import (
	"math"
	"testing"

	"pathprof/internal/bl"
	"pathprof/internal/ir"
	"pathprof/internal/profile"
)

// testProfile: total 1000 misses over 10000 insts (avg ratio 0.1).
//   - path A: 600 misses / 2000 insts (ratio 0.30) -> hot, dense
//   - path B: 300 misses / 6000 insts (ratio 0.05) -> hot, sparse
//   - path C: 95 misses / 1000 insts  (ratio 0.095)-> hot (9.5%), sparse
//   - path D: 5 misses / 1000 insts               -> cold (0.5%)
func testProfile() *profile.Profile {
	return &profile.Profile{
		Program: "t", Mode: "flow+hw", Events: []string{"dcache-miss", "insts"},
		Procs: []*profile.ProcPaths{
			{ProcID: 0, Name: "p0", NumPaths: 8, Entries: []profile.PathEntry{
				profile.NewEntry(0, 10, 600, 2000),
				profile.NewEntry(1, 50, 300, 6000),
			}},
			{ProcID: 1, Name: "p1", NumPaths: 4, Entries: []profile.PathEntry{
				profile.NewEntry(2, 5, 95, 1000),
				profile.NewEntry(3, 5, 5, 1000),
			}},
		},
	}
}

func TestClassifyPaths(t *testing.T) {
	r := ClassifyPaths(testProfile(), DefaultHotThreshold)
	if r.NumPaths != 4 || r.TotalMisses != 1000 || r.TotalInsts != 10000 {
		t.Fatalf("totals wrong: %+v", r)
	}
	if math.Abs(r.AvgRatio-0.1) > 1e-9 {
		t.Fatalf("avg ratio = %v", r.AvgRatio)
	}
	if r.Hot.Num != 3 || r.Cold.Num != 1 {
		t.Fatalf("hot/cold = %d/%d, want 3/1", r.Hot.Num, r.Cold.Num)
	}
	if r.Dense.Num != 1 || r.Sparse.Num != 2 {
		t.Fatalf("dense/sparse = %d/%d, want 1/2", r.Dense.Num, r.Sparse.Num)
	}
	if r.Hot.Misses != 995 || r.Cold.Misses != 5 {
		t.Fatalf("class misses: hot %d cold %d", r.Hot.Misses, r.Cold.Misses)
	}
	if got := r.Hot.MissFrac(r.TotalMisses); math.Abs(got-0.995) > 1e-9 {
		t.Fatalf("hot miss frac = %v", got)
	}
	// Hot list sorted by misses descending.
	if r.HotPaths[0].Misses != 600 || r.HotPaths[2].Misses != 95 {
		t.Fatalf("hot order wrong: %+v", r.HotPaths)
	}
}

func TestThresholdSweep(t *testing.T) {
	// At a 50% threshold only path A (60%) survives.
	r := ClassifyPaths(testProfile(), 0.5)
	if r.Hot.Num != 1 || r.HotPaths[0].Misses != 600 {
		t.Fatalf("50%% threshold: %+v", r.Hot)
	}
	// At 0.1% everything with misses is hot.
	r = ClassifyPaths(testProfile(), LowHotThreshold)
	if r.Hot.Num != 4 {
		t.Fatalf("0.1%% threshold: hot = %d", r.Hot.Num)
	}
}

func TestClassifyProcs(t *testing.T) {
	r := ClassifyProcs(testProfile(), DefaultHotThreshold)
	// p0: 900 misses (hot); p1: 100 misses (hot). None cold at 1%.
	if r.Hot.Num != 2 || r.Cold.Num != 0 {
		t.Fatalf("hot/cold procs = %d/%d", r.Hot.Num, r.Cold.Num)
	}
	// p0 ratio 900/8000=0.1125 > avg 0.1 -> dense; p1 100/2000=0.05 -> sparse.
	if r.Dense.Num != 1 || r.Sparse.Num != 1 {
		t.Fatalf("dense/sparse procs = %d/%d", r.Dense.Num, r.Sparse.Num)
	}
	if r.Hot.PathsPerProc != 2.0 {
		t.Fatalf("paths/proc = %v, want 2.0", r.Hot.PathsPerProc)
	}
	if r.HotProcs[0].Proc != "p0" {
		t.Fatalf("hottest proc = %s", r.HotProcs[0].Proc)
	}
}

func TestCoverageAt(t *testing.T) {
	r := ClassifyPaths(testProfile(), DefaultHotThreshold)
	if c := CoverageAt(r, 1); math.Abs(c-0.6) > 1e-9 {
		t.Fatalf("top-1 coverage = %v", c)
	}
	if c := CoverageAt(r, 2); math.Abs(c-0.9) > 1e-9 {
		t.Fatalf("top-2 coverage = %v", c)
	}
	if c := CoverageAt(r, 100); math.Abs(c-0.995) > 1e-9 {
		t.Fatalf("top-all coverage = %v", c)
	}
}

func TestEmptyProfile(t *testing.T) {
	r := ClassifyPaths(&profile.Profile{Program: "empty"}, DefaultHotThreshold)
	if r.NumPaths != 0 || r.Hot.Num != 0 || r.AvgRatio != 0 {
		t.Fatalf("empty profile misclassified: %+v", r)
	}
	pr := ClassifyProcs(&profile.Profile{Program: "empty"}, DefaultHotThreshold)
	if pr.Hot.Num != 0 {
		t.Fatal("empty proc report nonzero")
	}
}

func TestResolveHotPaths(t *testing.T) {
	// Build a small proc and numbering so hot paths can be regenerated.
	b := ir.NewBuilder("x")
	p := b.NewProc("p0", 0)
	e := p.NewBlock()
	l := p.NewBlock()
	r := p.NewBlock()
	x := p.NewBlock()
	e.Nop()
	e.Br(2, l, r)
	l.Nop()
	l.Jmp(x)
	r.Nop()
	r.Jmp(x)
	x.Ret()
	b.SetMain(p)
	nm, err := bl.New(b.MustFinish().Procs[0])
	if err != nil {
		t.Fatal(err)
	}
	prof := &profile.Profile{Procs: []*profile.ProcPaths{
		{ProcID: 0, Name: "p0", NumPaths: nm.NumPaths, Entries: []profile.PathEntry{
			profile.NewEntry(0, 3, 10, 30),
			profile.NewEntry(1, 1, 90, 20),
		}},
	}}
	rep := ClassifyPaths(prof, DefaultHotThreshold)
	listings := ResolveHotPaths(rep, map[int]*bl.Numbering{0: nm}, 10)
	if len(listings) != 2 {
		t.Fatalf("listings = %d", len(listings))
	}
	if listings[0].Stat.Misses != 90 {
		t.Fatal("hottest first")
	}
	if len(listings[0].Path.Blocks) == 0 {
		t.Fatal("no blocks regenerated")
	}
	// Unknown proc IDs and bad sums are skipped, not fatal.
	rep2 := rep
	rep2.HotPaths = append(rep2.HotPaths, PathStat{ProcID: 7, Sum: 0, Misses: 1})
	if got := ResolveHotPaths(rep2, map[int]*bl.Numbering{0: nm}, 10); len(got) != 2 {
		t.Fatalf("unknown proc not skipped: %d", len(got))
	}
}

func TestMissRatio(t *testing.T) {
	if (PathStat{Misses: 5, Insts: 0}).MissRatio() != 0 {
		t.Fatal("zero insts should give 0 ratio")
	}
	if (PathStat{Misses: 5, Insts: 50}).MissRatio() != 0.1 {
		t.Fatal("ratio wrong")
	}
}

func TestBlockMultiplicity(t *testing.T) {
	// Diamond proc: both paths share entry and exit blocks (multiplicity
	// 2), each arm is on one path (multiplicity 1).
	b := ir.NewBuilder("m")
	p := b.NewProc("p0", 0)
	e := p.NewBlock()
	l := p.NewBlock()
	r := p.NewBlock()
	x := p.NewBlock()
	e.Nop()
	e.Br(2, l, r)
	l.Nop()
	l.Jmp(x)
	r.Nop()
	r.Jmp(x)
	x.Ret()
	b.SetMain(p)
	nm, err := bl.New(b.MustFinish().Procs[0])
	if err != nil {
		t.Fatal(err)
	}
	prof := &profile.Profile{Program: "m", Procs: []*profile.ProcPaths{
		{ProcID: 0, Name: "p0", NumPaths: nm.NumPaths, Entries: []profile.PathEntry{
			profile.NewEntry(0, 10, 90, 100),
			profile.NewEntry(1, 10, 10, 100),
		}},
	}}
	rep := BlockMultiplicity(prof, map[int]*bl.Numbering{0: nm}, DefaultHotThreshold)
	if rep.MaxMultiplicity != 2 {
		t.Fatalf("max multiplicity = %d, want 2 (shared entry/exit)", rep.MaxMultiplicity)
	}
	// Both paths are hot (>=1% each): hot blocks = all 4; average =
	// (2+1+1+2)/4 = 1.5.
	if rep.HotBlocks != 4 {
		t.Fatalf("hot blocks = %d, want 4", rep.HotBlocks)
	}
	if rep.HotBlockAvg != 1.5 || rep.AllBlockAvg != 1.5 {
		t.Fatalf("averages = %v/%v, want 1.5/1.5", rep.HotBlockAvg, rep.AllBlockAvg)
	}
}
