package analysis

import (
	"pathprof/internal/bl"
	"pathprof/internal/ir"
	"pathprof/internal/profile"
)

// Block-path multiplicity (Section 6.4.3 of the paper): reporting cache
// misses at the statement level cannot isolate dynamic behaviour because
// "the basic blocks along hot paths execute along an average of 16
// different paths". This analysis measures exactly that: for each basic
// block on a hot path, how many distinct executed paths of its procedure
// contain it.

// MultiplicityReport summarizes block-path multiplicity for one program.
type MultiplicityReport struct {
	Program string

	// HotBlockAvg is the average number of executed paths containing each
	// block that lies on at least one hot path.
	HotBlockAvg float64
	// AllBlockAvg is the same average over every executed block.
	AllBlockAvg float64
	// MaxMultiplicity is the largest count observed.
	MaxMultiplicity int
	// HotBlocks is how many distinct blocks lie on hot paths.
	HotBlocks int
}

// BlockMultiplicity computes the report from a flow+HW profile and the
// per-procedure numberings used to regenerate paths. threshold selects hot
// paths as in ClassifyPaths.
func BlockMultiplicity(prof *profile.Profile, numberings map[int]*bl.Numbering, threshold float64) MultiplicityReport {
	rep := MultiplicityReport{Program: prof.Program}
	classified := ClassifyPaths(prof, threshold)

	type blockKey struct {
		proc  int
		block ir.BlockID
	}
	// Count executed paths per block.
	counts := map[blockKey]int{}
	hot := map[blockKey]bool{}
	hotSet := map[[2]int64]bool{} // (proc, sum) of hot paths
	for _, h := range classified.HotPaths {
		hotSet[[2]int64{int64(h.ProcID), h.Sum}] = true
	}
	for _, pp := range prof.Procs {
		nm := numberings[pp.ProcID]
		if nm == nil {
			continue
		}
		for _, e := range pp.Entries {
			p, err := nm.RegenerateK(e.Sum)
			if err != nil {
				continue
			}
			isHot := hotSet[[2]int64{int64(pp.ProcID), e.Sum}]
			for _, b := range p.Blocks {
				k := blockKey{pp.ProcID, b}
				counts[k]++
				if isHot {
					hot[k] = true
				}
			}
		}
	}

	var hotSum, allSum, n int
	for k, c := range counts {
		allSum += c
		n++
		if c > rep.MaxMultiplicity {
			rep.MaxMultiplicity = c
		}
		if hot[k] {
			hotSum += c
			rep.HotBlocks++
		}
	}
	if n > 0 {
		rep.AllBlockAvg = float64(allSum) / float64(n)
	}
	if rep.HotBlocks > 0 {
		rep.HotBlockAvg = float64(hotSum) / float64(rep.HotBlocks)
	}
	return rep
}
