package analysis

import (
	"testing"

	"pathprof/internal/bl"
	"pathprof/internal/hpm"
	"pathprof/internal/instrument"
	"pathprof/internal/ir"
	"pathprof/internal/sim"
)

// buildStitchable: main calls mid 20 times; mid branches on its argument
// and calls leaf from both arms (two distinct one-path sites).
func buildStitchable(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("stitchable")

	leaf := b.NewProc("leaf", 1)
	le := leaf.NewBlock()
	le.AddI(1, 1, 1)
	le.Ret()

	mid := b.NewProc("mid", 1)
	me := mid.NewBlock()
	thenB := mid.NewBlock()
	elseB := mid.NewBlock()
	mx := mid.NewBlock()
	me.AndI(2, 1, 1)
	me.Br(2, thenB, elseB)
	thenB.MulI(1, 1, 3)
	thenB.Call(leaf)
	thenB.Jmp(mx)
	elseB.AddI(1, 1, 7)
	elseB.Call(leaf)
	elseB.Jmp(mx)
	mx.Ret()

	main := b.NewProc("main", 0)
	e := main.NewBlock()
	h := main.NewBlock()
	body := main.NewBlock()
	x := main.NewBlock()
	e.MovI(2, 0)
	e.Jmp(h)
	h.CmpLTI(3, 2, 20)
	h.Br(3, body, x)
	body.Mov(1, 2)
	body.Call(mid)
	body.AddI(2, 2, 1)
	body.Jmp(h)
	x.Halt()
	b.SetMain(main)
	return b.MustFinish()
}

func TestStitchOnePathSites(t *testing.T) {
	prog := buildStitchable(t)
	opts := instrument.DefaultOptions(instrument.ModeContextFlow)
	opts.OptimizeIncrements = false
	plan, err := instrument.Instrument(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(plan.Prog, sim.DefaultConfig())
	m.PMU().Select(hpm.EvDCacheMiss, hpm.EvInsts)
	rt := plan.Wire(m)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}

	cfg := StitchConfig{Numberings: map[int]*bl.Numbering{}, SiteBlocks: map[int][]ir.BlockID{}}
	for _, pp := range plan.Procs {
		if pp.Numbering != nil {
			cfg.Numberings[pp.ProcID] = pp.Numbering
		}
		if pp.SiteBlocks != nil {
			cfg.SiteBlocks[pp.ProcID] = pp.SiteBlocks
		}
	}
	stitched := StitchOnePathSites(rt.Tree, cfg)
	if len(stitched) == 0 {
		t.Fatal("no stitched paths")
	}

	// mid's two call sites to leaf are each on a distinct single prefix;
	// even- and odd-argument calls split 10/10 across them.
	var midToLeaf []Stitched
	for _, s := range stitched {
		if plan.Prog.Procs[s.CallerProc].Name == "mid" &&
			plan.Prog.Procs[s.CalleeProc].Name == "leaf" {
			midToLeaf = append(midToLeaf, s)
		}
	}
	if len(midToLeaf) != 2 {
		t.Fatalf("mid→leaf fragments = %d, want 2 (one per arm)", len(midToLeaf))
	}
	var total uint64
	prefixes := map[string]bool{}
	for _, s := range midToLeaf {
		total += s.Freq
		prefixes[s.CallerPrefix.String()] = true
		// The prefix must end at the recorded call block.
		last := s.CallerPrefix.Blocks[len(s.CallerPrefix.Blocks)-1]
		if last != s.SiteBlock {
			t.Errorf("prefix %v does not end at site block %d", s.CallerPrefix.Blocks, s.SiteBlock)
		}
		if len(s.CalleePath.Blocks) == 0 {
			t.Error("empty callee path")
		}
	}
	if total != 20 {
		t.Fatalf("mid→leaf total freq = %d, want 20", total)
	}
	if len(prefixes) != 2 {
		t.Fatalf("expected two distinct caller prefixes, got %v", prefixes)
	}
}

// TestStitchRequiresMetadata: missing numberings degrade gracefully.
func TestStitchEmptyConfig(t *testing.T) {
	prog := buildStitchable(t)
	plan, err := instrument.Instrument(prog, instrument.DefaultOptions(instrument.ModeContextFlow))
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(plan.Prog, sim.DefaultConfig())
	rt := plan.Wire(m)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := StitchOnePathSites(rt.Tree, StitchConfig{}); len(got) != 0 {
		t.Fatalf("stitching without metadata returned %d fragments", len(got))
	}
}
