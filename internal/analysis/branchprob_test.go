package analysis

import (
	"math"
	"testing"

	"pathprof/internal/bl"
	"pathprof/internal/cfg"
	"pathprof/internal/ir"
	"pathprof/internal/profile"
)

// buildLoopProc returns a proc with a conditional loop (backedge) and a
// diamond, exercising both the real-edge and pseudo-edge projection
// rules: entry -> head; head -> body | exit-side; body -> head (backedge).
func buildLoopProc(t *testing.T) *ir.Proc {
	t.Helper()
	b := ir.NewBuilder("x")
	p := b.NewProc("p0", 0)
	e := p.NewBlock()
	head := p.NewBlock()
	body := p.NewBlock()
	x := p.NewBlock()
	e.Nop()
	e.Jmp(head)
	head.Nop()
	head.Br(2, body, x)
	body.Nop()
	body.Jmp(head)
	x.Ret()
	b.SetMain(p)
	return b.MustFinish().Procs[0]
}

func TestProjectEdgeFrequenciesConservation(t *testing.T) {
	p := buildLoopProc(t)
	nm, err := bl.New(p)
	if err != nil {
		t.Fatal(err)
	}
	// A realizable frequency mix: one run with three loop iterations plus
	// one that exits immediately. Paths are classified by their pseudo-edge
	// shape (a path ending at a backedge must be continued by one starting
	// there, so arbitrary mixes would not be flow-consistent).
	pp := &profile.ProcPaths{ProcID: 0, Name: "p0", NumPaths: nm.NumPaths}
	for i := int64(0); i < nm.NumPaths; i++ {
		path, err := nm.Regenerate(i)
		if err != nil {
			t.Fatal(err)
		}
		hasStart, hasEnd := false, false
		for _, ref := range path.Edges {
			switch nm.Succs[ref.Block][ref.Pos].Kind {
			case bl.PseudoStart:
				hasStart = true
			case bl.PseudoEnd:
				hasEnd = true
			}
		}
		var freq uint64
		switch {
		case !hasStart && !hasEnd: // enter and exit without looping
			freq = 1
		case !hasStart && hasEnd: // enter, take the backedge
			freq = 1
		case hasStart && hasEnd: // middle loop iteration
			freq = 2
		case hasStart && !hasEnd: // final iteration, exit
			freq = 1
		}
		pp.Entries = append(pp.Entries, profile.NewEntry(i, freq, 0, 0))
	}
	ef, err := ProjectEdgeFrequencies(pp, nm)
	if err != nil {
		t.Fatal(err)
	}
	if len(ef) == 0 {
		t.Fatal("no edges projected")
	}
	if ef[cfg.Edge{From: 2, To: 1, Slot: 0}] == 0 {
		t.Fatal("backedge body->head has zero frequency (pseudo-edge rule broken)")
	}

	// Flow conservation at interior blocks: inflow == outflow.
	in := make([]int64, len(p.Blocks))
	out := make([]int64, len(p.Blocks))
	for e, f := range ef {
		out[e.From] += f
		in[e.To] += f
	}
	for _, blk := range p.Blocks {
		id := int(blk.ID)
		if id == 0 || blk.ID == p.ExitBlock {
			continue
		}
		if in[id] != out[id] {
			t.Errorf("block %d: inflow %d != outflow %d", id, in[id], out[id])
		}
	}

	bf := BlockFrequencies(p, ef)
	for _, blk := range p.Blocks {
		want := max(in[blk.ID], out[blk.ID])
		if bf[blk.ID] != want {
			t.Errorf("block %d frequency %d, want %d", blk.ID, bf[blk.ID], want)
		}
	}

	// Branch probabilities on executed multi-successor blocks sum to 1.
	probs := BranchProbabilities(p, ef)
	for _, blk := range p.Blocks {
		if len(blk.Succs) < 2 || out[blk.ID] == 0 {
			continue
		}
		sum := 0.0
		for _, pr := range probs[blk.ID] {
			sum += pr
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("block %d probabilities sum to %f", blk.ID, sum)
		}
	}

	// Annotations: the loop head is the hottest block, and its hot
	// successor edge is flagged.
	ann := HeatAnnotations(p, ef)
	if ann.BlockHeat[1] != 1 {
		t.Errorf("loop head heat %f, want 1 (hottest)", ann.BlockHeat[1])
	}
	hot := 0
	for _, blk := range p.Blocks {
		for slot := range blk.Succs {
			if ann.EdgeHot(blk.ID, slot) {
				hot++
			}
		}
	}
	if hot == 0 {
		t.Error("no hot edges flagged")
	}
}

func TestToOriginalCFG(t *testing.T) {
	// Entry-split shape: 4 base blocks, block 3 is the moved original
	// entry. Edges out of the stub (block 0) drop; references to the moved
	// block normalize back to 0.
	split := EdgeFreq{
		{From: 0, To: 3, Slot: 0}: 5, // stub -> moved entry: dropped
		{From: 3, To: 1, Slot: 0}: 5, // moved entry -> b1: becomes 0 -> 1
		{From: 1, To: 2, Slot: 0}: 4, // untouched
		{From: 2, To: 3, Slot: 1}: 2, // backedge to entry: To normalizes
	}
	got := ToOriginalCFG(split, 4)
	want := EdgeFreq{
		{From: 0, To: 1, Slot: 0}: 5,
		{From: 1, To: 2, Slot: 0}: 4,
		{From: 2, To: 0, Slot: 1}: 2,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d edges %v, want %d", len(got), got, len(want))
	}
	for e, f := range want {
		if got[e] != f {
			t.Errorf("edge %v = %d, want %d", e, got[e], f)
		}
	}
}
