package analysis

import (
	"pathprof/internal/bl"
	"pathprof/internal/cct"
	"pathprof/internal/ir"
)

// Interprocedural path stitching (Section 6.3 of the paper): when a call
// site in some calling context was reached by exactly one intraprocedural
// path prefix, the combined flow+context profile identifies the complete
// interprocedural path through that site exactly — the caller's prefix
// concatenated with each of the callee's recorded paths.
//
// The recorded prefix is the runtime path register at the call, so exact
// reconstruction requires the instrumentation to have used the canonical
// (unoptimized) increments; with chord-optimized increments the prefix
// still discriminates contexts but is not directly decodable.

// Stitched is one reconstructed interprocedural path fragment.
type Stitched struct {
	CallerProc   int
	CallerPrefix bl.Path // entry (or backedge target) to the call block
	SiteBlock    ir.BlockID
	CalleeProc   int
	CalleePath   bl.Path
	Freq         uint64 // executions of the callee path in this context
	Depth        int    // CCT depth of the caller record
}

// StitchConfig supplies the static information stitching needs.
type StitchConfig struct {
	// Numberings per procedure ID (from the instrumentation plan).
	Numberings map[int]*bl.Numbering
	// SiteBlocks[proc][site] is the block containing the call site.
	SiteBlocks map[int][]ir.BlockID
	// Limit bounds the number of stitched paths returned (0 = no limit).
	Limit int
}

// StitchOnePathSites walks the CCT and reconstructs interprocedural paths
// at every used one-path call site. Fragments are returned in tree order.
func StitchOnePathSites(tree *cct.Tree, cfg StitchConfig) []Stitched {
	var out []Stitched
	tree.Walk(func(n *cct.Node) {
		if cfg.Limit > 0 && len(out) >= cfg.Limit {
			return
		}
		nm := cfg.Numberings[n.Proc]
		blocks := cfg.SiteBlocks[n.Proc]
		if nm == nil || blocks == nil {
			return
		}
		for _, slot := range n.Slots() {
			if !slot.Used || !slot.OnePath || slot.Site >= len(blocks) {
				continue
			}
			prefix, err := nm.RegeneratePrefix(blocks[slot.Site], slot.OnePathPrefix)
			if err != nil {
				continue
			}
			targets := append(append([]*cct.Node(nil), slot.Children...), slot.Recursed...)
			for _, callee := range targets {
				cnm := cfg.Numberings[callee.Proc]
				if cnm == nil {
					continue
				}
				stop := false
				callee.RangePathCounts(func(sum, count int64) bool {
					cp, err := cnm.RegenerateK(sum)
					if err != nil {
						return true
					}
					out = append(out, Stitched{
						CallerProc:   n.Proc,
						CallerPrefix: prefix,
						SiteBlock:    blocks[slot.Site],
						CalleeProc:   callee.Proc,
						CalleePath:   cp,
						Freq:         uint64(count),
						Depth:        n.Depth(),
					})
					if cfg.Limit > 0 && len(out) >= cfg.Limit {
						stop = true
						return false
					}
					return true
				})
				if stop {
					return
				}
			}
		}
	})
	return out
}
