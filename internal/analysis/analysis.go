// Package analysis turns flow-sensitive profiles into the paper's
// evaluation artifacts: the hot/cold and dense/sparse path classification
// of Table 4, the per-procedure classification of Table 5, and ranked
// hot-path listings with regenerated block sequences.
//
// Terminology (Section 6.4): a HOT path incurs at least a threshold
// fraction (1% in the paper) of the program's L1 data cache misses; others
// are COLD. A DENSE path is a hot path whose miss ratio (misses per
// instruction) exceeds the program's average; a SPARSE path is a hot path
// below the average — it misses a lot because it executes a lot.
package analysis

import (
	"cmp"
	"slices"

	"pathprof/internal/bl"
	"pathprof/internal/profile"
)

// DefaultHotThreshold is the paper's 1% cutoff.
const DefaultHotThreshold = 0.01

// LowHotThreshold is the 0.1% cutoff the paper uses for the path-rich
// outliers (099.go, 126.gcc).
const LowHotThreshold = 0.001

// metricSlots resolves which metric slots of prof carry D-cache misses and
// instructions. The slots are found by schema lookup, so the classification
// works no matter where a wide MetricSet placed the two events; profiles
// without a schema (or without the named events) fall back to the classic
// positional layout, slots 0 and 1.
func metricSlots(prof *profile.Profile) (miss, insts int) {
	miss, insts = 0, 1
	if i := prof.MetricIndex("dcache-miss"); i >= 0 {
		miss = i
	}
	if i := prof.MetricIndex("insts"); i >= 0 {
		insts = i
	}
	return
}

// PathStat is one executed path with its metrics (misses and instructions
// under the standard experiment counter selection, located by schema
// lookup).
type PathStat struct {
	ProcID int
	Proc   string
	Sum    int64
	Freq   uint64
	Misses uint64
	Insts  uint64
}

// MissRatio returns misses per instruction along the path.
func (p PathStat) MissRatio() float64 {
	if p.Insts == 0 {
		return 0
	}
	return float64(p.Misses) / float64(p.Insts)
}

// ClassTotals aggregates one class of paths (hot/cold/dense/sparse).
type ClassTotals struct {
	Num    int
	Insts  uint64
	Misses uint64
}

// InstFrac returns the class's share of total instructions.
func (c ClassTotals) InstFrac(total uint64) float64 { return frac(c.Insts, total) }

// MissFrac returns the class's share of total misses.
func (c ClassTotals) MissFrac(total uint64) float64 { return frac(c.Misses, total) }

func frac(part, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}

// PathReport is the Table 4 row for one program at one threshold.
type PathReport struct {
	Program   string
	Threshold float64

	NumPaths    int // executed paths
	TotalInsts  uint64
	TotalMisses uint64
	AvgRatio    float64

	Hot    ClassTotals // dense + sparse
	Dense  ClassTotals
	Sparse ClassTotals
	Cold   ClassTotals

	// HotPaths lists the hot paths, hottest (most misses) first.
	HotPaths []PathStat
}

// ClassifyPaths computes the Table 4 classification from a flow+HW profile
// whose schema includes D-cache misses and instructions.
func ClassifyPaths(prof *profile.Profile, threshold float64) PathReport {
	r := PathReport{Program: prof.Program, Threshold: threshold}
	missSlot, instSlot := metricSlots(prof)
	var all []PathStat
	for _, pp := range prof.Procs {
		for i := range pp.Entries {
			e := &pp.Entries[i]
			all = append(all, PathStat{
				ProcID: pp.ProcID, Proc: pp.Name, Sum: e.Sum,
				Freq: e.Freq, Misses: e.Metric(missSlot), Insts: e.Metric(instSlot),
			})
			r.TotalInsts += e.Metric(instSlot)
			r.TotalMisses += e.Metric(missSlot)
		}
	}
	r.NumPaths = len(all)
	if r.TotalInsts > 0 {
		r.AvgRatio = float64(r.TotalMisses) / float64(r.TotalInsts)
	}
	cut := threshold * float64(r.TotalMisses)
	for _, p := range all {
		if float64(p.Misses) >= cut && p.Misses > 0 {
			r.Hot.Num++
			r.Hot.Insts += p.Insts
			r.Hot.Misses += p.Misses
			if p.MissRatio() > r.AvgRatio {
				r.Dense.Num++
				r.Dense.Insts += p.Insts
				r.Dense.Misses += p.Misses
			} else {
				r.Sparse.Num++
				r.Sparse.Insts += p.Insts
				r.Sparse.Misses += p.Misses
			}
			r.HotPaths = append(r.HotPaths, p)
		} else {
			r.Cold.Num++
			r.Cold.Insts += p.Insts
			r.Cold.Misses += p.Misses
		}
	}
	slices.SortFunc(r.HotPaths, func(a, b PathStat) int {
		if c := cmp.Compare(b.Misses, a.Misses); c != 0 {
			return c
		}
		if c := cmp.Compare(a.ProcID, b.ProcID); c != 0 {
			return c
		}
		return cmp.Compare(a.Sum, b.Sum)
	})
	return r
}

// ProcStat aggregates one procedure (for Table 5).
type ProcStat struct {
	ProcID int
	Proc   string
	Paths  int // executed paths in the procedure
	Freq   uint64
	Misses uint64
	Insts  uint64
}

// ProcClass aggregates one procedure class.
type ProcClass struct {
	Num          int
	Misses       uint64
	PathsPerProc float64 // average executed paths per procedure
}

// ProcReport is the Table 5 row for one program.
type ProcReport struct {
	Program   string
	Threshold float64

	TotalMisses uint64
	AvgRatio    float64

	Hot    ProcClass // dense + sparse
	Dense  ProcClass
	Sparse ProcClass
	Cold   ProcClass

	HotProcs []ProcStat // hottest first
}

// ClassifyProcs computes the Table 5 classification.
func ClassifyProcs(prof *profile.Profile, threshold float64) ProcReport {
	r := ProcReport{Program: prof.Program, Threshold: threshold}
	missSlot, instSlot := metricSlots(prof)
	var all []ProcStat
	var totalInsts uint64
	for _, pp := range prof.Procs {
		if len(pp.Entries) == 0 {
			continue
		}
		st := ProcStat{ProcID: pp.ProcID, Proc: pp.Name, Paths: len(pp.Entries)}
		for i := range pp.Entries {
			e := &pp.Entries[i]
			st.Freq += e.Freq
			st.Misses += e.Metric(missSlot)
			st.Insts += e.Metric(instSlot)
		}
		all = append(all, st)
		r.TotalMisses += st.Misses
		totalInsts += st.Insts
	}
	if totalInsts > 0 {
		r.AvgRatio = float64(r.TotalMisses) / float64(totalInsts)
	}
	cut := threshold * float64(r.TotalMisses)
	addClass := func(c *ProcClass, st ProcStat) {
		c.Num++
		c.Misses += st.Misses
		c.PathsPerProc += float64(st.Paths) // finalized below
	}
	for _, st := range all {
		ratio := 0.0
		if st.Insts > 0 {
			ratio = float64(st.Misses) / float64(st.Insts)
		}
		if float64(st.Misses) >= cut && st.Misses > 0 {
			addClass(&r.Hot, st)
			if ratio > r.AvgRatio {
				addClass(&r.Dense, st)
			} else {
				addClass(&r.Sparse, st)
			}
			r.HotProcs = append(r.HotProcs, st)
		} else {
			addClass(&r.Cold, st)
		}
	}
	for _, c := range []*ProcClass{&r.Hot, &r.Dense, &r.Sparse, &r.Cold} {
		if c.Num > 0 {
			c.PathsPerProc /= float64(c.Num)
		}
	}
	slices.SortFunc(r.HotProcs, func(a, b ProcStat) int {
		if c := cmp.Compare(b.Misses, a.Misses); c != 0 {
			return c
		}
		return cmp.Compare(a.ProcID, b.ProcID)
	})
	return r
}

// HotPathListing resolves the top-k hot paths to their block sequences
// using the per-procedure numberings (keyed by procedure ID).
type HotPathListing struct {
	Stat PathStat
	Path bl.Path
}

// ResolveHotPaths regenerates block sequences for the hottest paths.
func ResolveHotPaths(rep PathReport, numberings map[int]*bl.Numbering, k int) []HotPathListing {
	var out []HotPathListing
	for _, hp := range rep.HotPaths {
		if len(out) >= k {
			break
		}
		nm := numberings[hp.ProcID]
		if nm == nil {
			continue
		}
		p, err := nm.RegenerateK(hp.Sum)
		if err != nil {
			continue
		}
		out = append(out, HotPathListing{Stat: hp, Path: p})
	}
	return out
}

// CoverageAt reports what fraction of misses the top-n paths cover —
// supporting the paper's headline "3-28 hot paths account for 59-98% of the
// misses" claim.
func CoverageAt(rep PathReport, n int) float64 {
	var misses uint64
	for i, p := range rep.HotPaths {
		if i >= n {
			break
		}
		misses += p.Misses
	}
	return frac(misses, rep.TotalMisses)
}
