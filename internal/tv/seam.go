package tv

import (
	"fmt"

	"pathprof/internal/dataflow"
	"pathprof/internal/ir"
)

// Inline seam checking. An InlineEvent claims that, from this optimized
// instruction on, the block executes a fresh activation of Callee with
// callee register r stored in caller register Map[r]. The claim is only
// as good as the calling convention it replaces, so the checker discharges
// every obligation the convention implies:
//
//	entry     the callee body must observe a fresh activation: argument
//	          registers and SP hold the caller's values (identity map or
//	          an explicit Mov), every other register it reads holds zero
//	          (an explicit MovI 0).
//	exit      Ret copies R1 and SP back, so Map must pin both to
//	          themselves and the prologue may not disturb them — then the
//	          copy-back is the identity and pop glue is register-neutral.
//	caller    everything the seam writes — prologue targets and the
//	          mapped images of callee writes — must be dead in the caller
//	          after the call (R1 and SP excepted: the call itself defines
//	          them, and the pinned map hands them the same values).
//	model     the callee must not contain calls, context captures,
//	          probes, counter or clock accesses, or halts (their meaning
//	          depends on the activation being real), and the caller must
//	          not contain SetJmp (a longjmp could resume mid-procedure
//	          through edges liveness cannot see).
//
// These checks run for explicit witness events (with the event's prologue
// instructions) and for "virtual pushes" during reachability (with no
// prologue, so every entry obligation must be vacuous).

// seamError is a positioned push-seam rejection.
type seamError struct {
	check string
	msg   string
}

func (e *seamError) Error() string { return e.msg }

func seamErrf(check, format string, args ...any) *seamError {
	return &seamError{check: check, msg: fmt.Sprintf(format, args...)}
}

func (v *validator) liveness(p *ir.Proc) *dataflow.LivenessResult {
	if lr, ok := v.liveCache[p.ID]; ok {
		return lr
	}
	lr := dataflow.Liveness(p)
	v.liveCache[p.ID] = lr
	return lr
}

func (v *validator) calleeFactsFor(id int) *calleeFacts {
	if f, ok := v.callees[id]; ok {
		return f
	}
	f := &calleeFacts{admissible: true}
	p := v.orig.Procs[id]
	for _, b := range p.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.Call, ir.CallInd, ir.SetJmp, ir.LongJmp,
				ir.Probe, ir.RdPIC, ir.WrPIC, ir.RdTick, ir.Halt:
				if f.admissible {
					f.admissible = false
					f.reason = fmt.Sprintf("callee %s contains %s", p.Name, in.Op)
				}
			}
			f.reads |= dataflow.Uses(in)
			f.writes |= dataflow.Defs(in)
		}
	}
	v.callees[id] = f
	return f
}

func (v *validator) hasSetJmp(p *ir.Proc) bool {
	if s, ok := v.setjmp[p.ID]; ok {
		return s
	}
	found := false
	for _, b := range p.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.SetJmp {
				found = true
			}
		}
	}
	v.setjmp[p.ID] = found
	return found
}

func isArgReg(r ir.Reg) bool {
	return r >= ir.RegArg0 && r < ir.RegArg0+ir.NumArgRegs
}

// pushSeam validates an explicit inline event at cursor c and returns the
// cursor inside the fresh frame.
func (v *validator) pushSeam(c cursor, ev InlineEvent, prologue []ir.Instr, bid int) (cursor, bool) {
	c = v.normalize(c)
	if err := v.pushErr(c, ev.Callee, ev.Map, prologue); err != nil {
		v.addf(err.check, bid, ev.OptIdx, "%s (original at %s)", err.msg, c)
		return cursor{}, false
	}
	frame := Frame{Callee: ev.Callee, RetBlock: c.block, RetIdx: c.idx + 1, Map: ev.Map}
	return cursor{frames: []Frame{frame}, block: 0, idx: 0}, true
}

// pushErr discharges every seam obligation for inlining callee at cursor c
// under map m with the given prologue; nil means the push is proved sound.
func (v *validator) pushErr(c cursor, callee int, m [ir.NumRegs]ir.Reg, prologue []ir.Instr) *seamError {
	if !v.validPoint(c) {
		return seamErrf("inline", "cursor out of range")
	}
	if len(c.frames) != 0 {
		return seamErrf("inline", "inline seam inside an inlined frame")
	}
	if callee < 0 || callee >= len(v.orig.Procs) {
		return seamErrf("inline", "callee %d out of range", callee)
	}
	caller := v.origProc
	blk := caller.Blocks[c.block]
	if c.idx >= len(blk.Instrs)-1 {
		return seamErrf("inline", "original cursor is at a terminator, not a call")
	}
	in := blk.Instrs[c.idx]
	if in.Op != ir.Call || int(in.Imm) != callee {
		return seamErrf("inline", "original %s is not a call of procedure %d", in.Op, callee)
	}
	if v.hasSetJmp(caller) {
		return seamErrf("inline", "caller %s contains setjmp; liveness facts are unsound", caller.Name)
	}
	facts := v.calleeFactsFor(callee)
	if !facts.admissible {
		return seamErrf("inline", "%s", facts.reason)
	}

	// Map shape: in-range entries, R1 and SP pinned (the Ret copy-back
	// must be the identity), injective over the registers the callee
	// touches (distinct activation registers need distinct storage).
	for r, t := range m {
		if t >= ir.NumRegs {
			return seamErrf("inline", "map sends r%d to nonexistent r%d", r, t)
		}
	}
	if m[ir.RegRV] != ir.RegRV {
		return seamErrf("inline", "map does not pin the return-value register (r%d -> %s)", ir.RegRV, m[ir.RegRV])
	}
	if m[ir.RegSP] != ir.RegSP {
		return seamErrf("inline", "map does not pin the stack pointer (r%d -> %s)", ir.RegSP, m[ir.RegSP])
	}
	used := facts.reads | facts.writes
	var images dataflow.RegSet
	for _, r := range used.Regs() {
		if images.Has(m[r]) {
			return seamErrf("inline", "map is not injective on the callee's registers (%s shared)", m[r])
		}
		images = images.Add(m[r])
	}

	// Prologue structure: each instruction is either a Mov materializing
	// an argument into its mapped home or a zero-init of a mapped
	// callee-private register; targets are distinct, never R1 or SP, and
	// never a register a later Mov still needs to read.
	var zeroable dataflow.RegSet // legal MovI targets: images of non-arg callee registers
	for _, r := range used.Regs() {
		if !isArgReg(r) && r != ir.RegSP {
			zeroable = zeroable.Add(m[r])
		}
	}
	var targets, movSources, movFor, zeroed dataflow.RegSet
	for i, pin := range prologue {
		switch {
		case pin.Op == ir.Mov && isArgReg(pin.Rs) && m[pin.Rs] == pin.Rd && pin.Rd != pin.Rs:
			movSources = movSources.Add(pin.Rs)
			movFor = movFor.Add(pin.Rs)
		case pin.Op == ir.MovI && pin.Imm == 0 && zeroable.Has(pin.Rd):
			zeroed = zeroed.Add(pin.Rd)
		default:
			return seamErrf("inline", "prologue instruction %d (%s) is neither an argument copy nor a zero-init", i, pin.Op)
		}
		if targets.Has(pin.Rd) {
			return seamErrf("inline", "prologue writes %s twice", pin.Rd)
		}
		if pin.Rd == ir.RegRV || pin.Rd == ir.RegSP {
			return seamErrf("inline", "prologue clobbers %s before the body runs", pin.Rd)
		}
		targets = targets.Add(pin.Rd)
	}
	if overlap := targets & movSources; overlap != 0 {
		return seamErrf("inline", "prologue clobbers argument source %s it still reads", overlap.Regs()[0])
	}

	// Entry obligations: every argument the callee reads must be in its
	// mapped home (identity, or an explicit copy); every non-argument
	// register it reads must be zeroed like a fresh activation.
	for _, r := range facts.reads.Regs() {
		switch {
		case r == ir.RegSP:
			// pinned identity; the activation inherits the caller's SP
		case isArgReg(r):
			if m[r] != r && !movFor.Has(r) {
				return seamErrf("inline", "callee reads argument %s but the prologue never copies it to %s", r, m[r])
			}
		default:
			if !zeroed.Has(m[r]) {
				return seamErrf("inline", "callee reads %s but the prologue never zeroes %s", r, m[r])
			}
		}
	}

	// Caller obligations: nothing the seam writes may be live after the
	// call. R1 and SP are exempt — the call itself defines them, and the
	// pinned map delivers exactly the values the real call would.
	var mappedWrites dataflow.RegSet
	for _, r := range facts.writes.Regs() {
		mappedWrites = mappedWrites.Add(m[r])
	}
	clobbered := (targets | mappedWrites).Remove(ir.RegRV).Remove(ir.RegSP)
	liveAfter := v.liveness(caller).LiveAfter(caller, c.block, c.idx)
	if bad := clobbered & liveAfter; bad != 0 {
		return seamErrf("clobber", "seam clobbers live caller register(s) %v", bad.Regs())
	}
	return nil
}
