package tv

import (
	"fmt"
	"slices"
	"strings"

	"pathprof/internal/dataflow"
	"pathprof/internal/ir"
)

// The co-walk. A cursor is a Point the checker owns: where in the original
// program execution stands while the optimized block is replayed
// instruction by instruction. Three cursor moves are "glue" — original
// steps with no optimized counterpart, each observation-free:
//
//	jump glue      an unconditional Jmp the optimizer threaded or merged
//	               away; deterministic transfer, no effects.
//	pop glue       a Ret inside an inlined frame; the calling convention
//	               copies R1 and SP back, and the frame map pins both to
//	               themselves, so register state is untouched.
//	branch glue    a conditional Br whose two arms provably reconverge
//	               (each through jump glue alone); whichever arm the
//	               machine takes, it lands at the same point having done
//	               nothing observable.
//
// Everything else must match an optimized instruction under the frame's
// register substitution, or the proof fails.

type cursor struct {
	frames []Frame
	block  ir.BlockID
	idx    int
}

func (c cursor) String() string {
	return Point{Frames: c.frames, Block: c.block, Idx: c.idx}.String()
}

func cursorOf(p Point) cursor {
	return cursor{frames: p.Frames, block: p.Block, idx: p.Idx}
}

func cursorEqual(a, b cursor) bool {
	return a.block == b.block && a.idx == b.idx && slices.Equal(a.frames, b.frames)
}

// key encodes a cursor for visited sets (Frame is comparable, so the
// encoding is faithful enough: collisions only make the search give up
// earlier, which is rejection-biased and therefore sound).
func (c cursor) key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:%d", c.block, c.idx)
	for _, f := range c.frames {
		fmt.Fprintf(&sb, "|%d@%d:%d%v", f.Callee, f.RetBlock, f.RetIdx, f.Map)
	}
	return sb.String()
}

type validator struct {
	orig, opt *ir.Program
	findings  []Finding

	// per-procedure walk state
	origProc *ir.Proc
	optProc  *ir.Proc
	pw       *ProcWitness

	liveCache map[int]*dataflow.LivenessResult
	callees   map[int]*calleeFacts
	setjmp    map[int]bool
}

// calleeFacts caches the per-callee classification the push-seam checks
// need.
type calleeFacts struct {
	admissible bool
	reason     string
	reads      dataflow.RegSet // registers read anywhere in the body
	writes     dataflow.RegSet // registers written anywhere in the body
}

func (v *validator) addf(check string, block, instr int, format string, args ...any) {
	v.findings = append(v.findings, Finding{
		Check:  check,
		Proc:   v.optProc.Name,
		ProcID: v.optProc.ID,
		Block:  block,
		Instr:  instr,
		Msg:    fmt.Sprintf(format, args...),
	})
}

func (v *validator) run(w *ProgramWitness) {
	if err := ir.Validate(v.orig); err != nil {
		v.findings = append(v.findings, Finding{Check: "witness", Block: -1, Instr: -1,
			Msg: fmt.Sprintf("original program invalid: %v", err)})
		return
	}
	if err := ir.Validate(v.opt); err != nil {
		v.findings = append(v.findings, Finding{Check: "witness", Block: -1, Instr: -1,
			Msg: fmt.Sprintf("optimized program invalid: %v", err)})
		return
	}
	if len(v.opt.Procs) != len(v.orig.Procs) {
		v.findings = append(v.findings, Finding{Check: "witness", Block: -1, Instr: -1,
			Msg: fmt.Sprintf("procedure count changed: %d -> %d", len(v.orig.Procs), len(v.opt.Procs))})
		return
	}
	if w == nil || len(w.Procs) != len(v.opt.Procs) {
		n := 0
		if w != nil {
			n = len(w.Procs)
		}
		v.findings = append(v.findings, Finding{Check: "witness", Block: -1, Instr: -1,
			Msg: fmt.Sprintf("witness covers %d of %d procedures", n, len(v.opt.Procs))})
		return
	}
	v.liveCache = make(map[int]*dataflow.LivenessResult)
	v.callees = make(map[int]*calleeFacts)
	v.setjmp = make(map[int]bool)
	for id := range v.opt.Procs {
		v.checkProc(id, &w.Procs[id])
	}
}

func (v *validator) checkProc(id int, pw *ProcWitness) {
	v.origProc = v.orig.Procs[id]
	v.optProc = v.opt.Procs[id]
	v.pw = pw
	if len(pw.Blocks) != len(v.optProc.Blocks) {
		v.addf("witness", -1, -1, "witness covers %d of %d blocks", len(pw.Blocks), len(v.optProc.Blocks))
		return
	}
	// The machine enters both procedures at block 0 instruction 0 with
	// identical state, so the entry anchor must be exactly that point.
	a0 := pw.Blocks[0].Anchor
	if len(a0.Frames) != 0 || a0.Block != 0 || a0.Idx != 0 {
		v.addf("anchor", 0, -1, "entry block anchored at %s, want b0:i0", a0)
		return
	}
	for bid := range v.optProc.Blocks {
		v.checkBlock(ir.BlockID(bid))
	}
}

// anchorOK validates an anchor's shape so the walk can index fearlessly:
// frame callees and map entries in range, the point inside its procedure.
func (v *validator) anchorOK(p Point) bool {
	for _, f := range p.Frames {
		if f.Callee < 0 || f.Callee >= len(v.orig.Procs) {
			return false
		}
		for _, r := range f.Map {
			if r >= ir.NumRegs {
				return false
			}
		}
	}
	return v.validPoint(cursorOf(p))
}

// procAt returns the original procedure the cursor's innermost frame is
// executing. Frame callee indices are validated before cursors circulate.
func (v *validator) procAt(c cursor) *ir.Proc {
	if len(c.frames) == 0 {
		return v.origProc
	}
	return v.orig.Procs[c.frames[len(c.frames)-1].Callee]
}

func (v *validator) validPoint(c cursor) bool {
	p := v.procAt(c)
	if c.block < 0 || int(c.block) >= len(p.Blocks) {
		return false
	}
	return c.idx >= 0 && c.idx < len(p.Blocks[c.block].Instrs)
}

// substReg maps a register of the innermost frame's callee to the machine
// register it lives in, through every enclosing frame map.
func (v *validator) substReg(r ir.Reg, frames []Frame) ir.Reg {
	for i := len(frames) - 1; i >= 0; i-- {
		r = frames[i].Map[r]
	}
	return r
}

// subst rewrites all of in's register fields through the frame maps —
// exactly what the inliner's renaming did, including to fields the opcode
// ignores; the semantic comparison downstream is insensitive to those.
func (v *validator) subst(in ir.Instr, frames []Frame) ir.Instr {
	for i := len(frames) - 1; i >= 0; i-- {
		m := &frames[i].Map
		in.Rd, in.Rs, in.Rt = m[in.Rd], m[in.Rs], m[in.Rt]
	}
	return in
}

// normalize consumes jump glue and pop glue until the cursor rests on a
// real instruction or a terminator that needs explicit matching (Br, a
// depth-0 Ret, Halt). Cycles of bare jumps cannot occur in validated
// input, but the visited set keeps the walk total on any input.
func (v *validator) normalize(c cursor) cursor {
	var seen map[string]bool
	for {
		if !v.validPoint(c) {
			return c
		}
		p := v.procAt(c)
		blk := p.Blocks[c.block]
		if c.idx < len(blk.Instrs)-1 {
			return c
		}
		term := blk.Instrs[c.idx]
		switch term.Op {
		case ir.Jmp:
			if seen == nil {
				seen = make(map[string]bool)
			}
			k := c.key()
			if seen[k] {
				return c
			}
			seen[k] = true
			c = cursor{frames: c.frames, block: blk.Succs[0], idx: 0}
		case ir.Ret:
			if len(c.frames) == 0 {
				return c
			}
			f := c.frames[len(c.frames)-1]
			c = cursor{frames: c.frames[:len(c.frames)-1], block: f.RetBlock, idx: f.RetIdx}
		default:
			return c
		}
	}
}

// convergentSkip steps the cursor past a conditional branch whose arms
// reconverge: if both successors normalize to the same point, the branch
// is observation-free regardless of the condition and may be consumed.
func (v *validator) convergentSkip(c cursor) (cursor, bool) {
	p := v.procAt(c)
	blk := p.Blocks[c.block]
	if blk.Instrs[c.idx].Op != ir.Br || len(blk.Succs) != 2 {
		return cursor{}, false
	}
	a0 := v.normalize(cursor{frames: c.frames, block: blk.Succs[0], idx: 0})
	a1 := v.normalize(cursor{frames: c.frames, block: blk.Succs[1], idx: 0})
	if v.validPoint(a0) && cursorEqual(a0, a1) {
		return a0, true
	}
	return cursor{}, false
}

// checkBlock replays one optimized block against the original program
// from its anchor.
func (v *validator) checkBlock(bid ir.BlockID) {
	bw := v.pw.Blocks[bid]
	blk := v.optProc.Blocks[bid]
	if !v.anchorOK(bw.Anchor) {
		v.addf("anchor", int(bid), -1, "anchor %s is not a valid original point", bw.Anchor)
		return
	}
	// Events must be strictly ascending with disjoint prologue ranges that
	// stay clear of the terminator.
	prevIdx, prevEnd := -1, 0
	for _, ev := range bw.Events {
		if ev.OptIdx <= prevIdx || ev.OptIdx < prevEnd || ev.Prologue < 0 ||
			ev.OptIdx+ev.Prologue > len(blk.Instrs)-1 {
			v.addf("witness", int(bid), ev.OptIdx, "inline event range [%d,%d) malformed for a %d-instruction block",
				ev.OptIdx, ev.OptIdx+ev.Prologue, len(blk.Instrs))
			return
		}
		prevIdx, prevEnd = ev.OptIdx, ev.OptIdx+ev.Prologue
	}

	c := cursorOf(bw.Anchor)
	ei := 0
	for oi := 0; oi < len(blk.Instrs); oi++ {
		if ei < len(bw.Events) && bw.Events[ei].OptIdx == oi {
			ev := bw.Events[ei]
			ei++
			nc, ok := v.pushSeam(c, ev, blk.Instrs[oi:oi+ev.Prologue], int(bid))
			if !ok {
				return
			}
			c = nc
			oi += ev.Prologue - 1 // next iteration resumes after the prologue
			continue
		}
		if oi == len(blk.Instrs)-1 {
			v.checkTerm(c, blk, int(bid))
			return
		}
		nc, ok := v.matchInstr(c, blk.Instrs[oi], int(bid), oi)
		if !ok {
			return
		}
		c = nc
	}
}

// matchInstr aligns one non-terminator optimized instruction with the
// original program, consuming glue as needed.
func (v *validator) matchInstr(c cursor, oin ir.Instr, bid, oi int) (cursor, bool) {
	var seen map[string]bool
	for {
		c = v.normalize(c)
		if !v.validPoint(c) {
			v.addf("instr", bid, oi, "original cursor %s out of range", c)
			return c, false
		}
		p := v.procAt(c)
		blk := p.Blocks[c.block]
		in := blk.Instrs[c.idx]
		if c.idx < len(blk.Instrs)-1 {
			if dataflow.SameEffect(oin, v.subst(in, c.frames)) {
				c.idx++
				return c, true
			}
			v.addf("instr", bid, oi, "%s does not match original %s at %s", oin.Op, in.Op, c)
			return c, false
		}
		// The cursor rests on a terminator normalize would not consume. A
		// reconvergent branch (demoted and merged away) may be skipped;
		// anything else means the optimized block dropped an instruction.
		if in.Op == ir.Br {
			if nc, ok := v.convergentSkip(c); ok {
				if seen == nil {
					seen = make(map[string]bool)
				}
				k := nc.key()
				if !seen[k] {
					seen[k] = true
					c = nc
					continue
				}
			}
		}
		v.addf("instr", bid, oi, "%s has no original counterpart: cursor stopped at %s (%s)", oin.Op, c, in.Op)
		return c, false
	}
}

// checkTerm verifies the optimized block's terminator transfers control to
// points whose anchors the original program provably reaches.
func (v *validator) checkTerm(c cursor, blk *ir.Block, bid int) {
	ti := len(blk.Instrs) - 1
	term := blk.Instrs[ti]
	switch term.Op {
	case ir.Jmp:
		target := cursorOf(v.pw.Blocks[blk.Succs[0]].Anchor)
		if !v.anchorOK(v.pw.Blocks[blk.Succs[0]].Anchor) {
			v.addf("anchor", int(blk.Succs[0]), -1, "anchor %s is not a valid original point", v.pw.Blocks[blk.Succs[0]].Anchor)
			return
		}
		if !v.reaches(c, target) {
			v.addf("term", bid, ti, "jump target anchored at %s unreachable from %s", target, c)
		}
	case ir.Ret:
		if !v.reachesTerm(c, ir.Ret) {
			v.addf("term", bid, ti, "return has no original return reachable from %s", c)
		}
	case ir.Halt:
		if !v.reachesTerm(c, ir.Halt) {
			v.addf("term", bid, ti, "halt has no original halt reachable from %s", c)
		}
	case ir.Br:
		v.checkBr(c, blk, bid, ti, term)
	default:
		v.addf("term", bid, ti, "unexpected terminator %s", term.Op)
	}
}

// checkBr finds the original conditional branch the optimized one
// implements: same condition register under substitution, each arm
// reaching the corresponding successor's anchor. Reconvergent branches in
// between are consumed as glue; a condition-matching branch whose arms do
// not line up may itself be reconvergent, so the search continues past it.
func (v *validator) checkBr(c cursor, blk *ir.Block, bid, ti int, term ir.Instr) {
	for s := 0; s < 2; s++ {
		if !v.anchorOK(v.pw.Blocks[blk.Succs[s]].Anchor) {
			v.addf("anchor", int(blk.Succs[s]), -1, "anchor %s is not a valid original point", v.pw.Blocks[blk.Succs[s]].Anchor)
			return
		}
	}
	t0 := cursorOf(v.pw.Blocks[blk.Succs[0]].Anchor)
	t1 := cursorOf(v.pw.Blocks[blk.Succs[1]].Anchor)
	var seen map[string]bool
	for {
		c = v.normalize(c)
		if !v.validPoint(c) {
			v.addf("term", bid, ti, "original cursor %s out of range", c)
			return
		}
		p := v.procAt(c)
		oblk := p.Blocks[c.block]
		in := oblk.Instrs[c.idx]
		if c.idx == len(oblk.Instrs)-1 && in.Op == ir.Br && len(oblk.Succs) == 2 {
			if v.substReg(in.Rs, c.frames) == term.Rs {
				a0 := cursor{frames: c.frames, block: oblk.Succs[0], idx: 0}
				a1 := cursor{frames: c.frames, block: oblk.Succs[1], idx: 0}
				if v.reaches(a0, t0) && v.reaches(a1, t1) {
					return
				}
			}
			if nc, ok := v.convergentSkip(c); ok {
				if seen == nil {
					seen = make(map[string]bool)
				}
				k := nc.key()
				if !seen[k] {
					seen[k] = true
					c = nc
					continue
				}
			}
			v.addf("term", bid, ti, "branch on %s has no matching original branch: cursor stopped at %s", term.Rs, c)
			return
		}
		v.addf("term", bid, ti, "branch on %s has no original counterpart: cursor stopped at %s (%s)", term.Rs, c, in.Op)
		return
	}
}

// reaches proves every glue path from start arrives at exactly target.
// Conditional branches are universally quantified — both arms must reach —
// because the caller is discharging an unconditional transfer: whatever
// the machine's register values, the original must land on the target
// point having performed nothing observable. A Call may be entered
// ("virtual push") when the target's frame stack names it at this very
// site and a zero-instruction prologue discharges every seam obligation.
func (v *validator) reaches(start, target cursor) bool {
	visited := make(map[string]bool)
	var rec func(c cursor) bool
	rec = func(c cursor) bool {
		for {
			if cursorEqual(c, target) {
				return true
			}
			if !v.validPoint(c) {
				return false
			}
			k := c.key()
			if visited[k] {
				return false
			}
			visited[k] = true
			p := v.procAt(c)
			blk := p.Blocks[c.block]
			if d := len(c.frames); d < len(target.frames) && c.idx < len(blk.Instrs)-1 {
				f := target.frames[d]
				if slices.Equal(c.frames, target.frames[:d]) &&
					f.RetBlock == c.block && f.RetIdx == c.idx+1 {
					in := blk.Instrs[c.idx]
					if in.Op == ir.Call && int(in.Imm) == f.Callee &&
						v.pushErr(c, f.Callee, f.Map, nil) == nil {
						frames := append(slices.Clone(c.frames), f)
						if rec(cursor{frames: frames, block: 0, idx: 0}) {
							return true
						}
					}
				}
			}
			if c.idx < len(blk.Instrs)-1 {
				return false // a real instruction is never glue
			}
			term := blk.Instrs[c.idx]
			switch term.Op {
			case ir.Jmp:
				c = cursor{frames: c.frames, block: blk.Succs[0], idx: 0}
			case ir.Ret:
				if len(c.frames) == 0 {
					return false
				}
				f := c.frames[len(c.frames)-1]
				c = cursor{frames: c.frames[:len(c.frames)-1], block: f.RetBlock, idx: f.RetIdx}
			case ir.Br:
				return rec(cursor{frames: c.frames, block: blk.Succs[0], idx: 0}) &&
					rec(cursor{frames: c.frames, block: blk.Succs[1], idx: 0})
			default:
				return false
			}
		}
	}
	return rec(start)
}

// reachesTerm proves every glue path from start arrives at a depth-0
// terminator with opcode op (Ret or Halt).
func (v *validator) reachesTerm(start cursor, op ir.Opcode) bool {
	visited := make(map[string]bool)
	var rec func(c cursor) bool
	rec = func(c cursor) bool {
		for {
			if !v.validPoint(c) {
				return false
			}
			k := c.key()
			if visited[k] {
				return false
			}
			visited[k] = true
			p := v.procAt(c)
			blk := p.Blocks[c.block]
			if c.idx < len(blk.Instrs)-1 {
				return false
			}
			term := blk.Instrs[c.idx]
			if term.Op == op && len(c.frames) == 0 {
				return true
			}
			switch term.Op {
			case ir.Jmp:
				c = cursor{frames: c.frames, block: blk.Succs[0], idx: 0}
			case ir.Ret:
				if len(c.frames) == 0 {
					return false
				}
				f := c.frames[len(c.frames)-1]
				c = cursor{frames: c.frames[:len(c.frames)-1], block: f.RetBlock, idx: f.RetIdx}
			case ir.Br:
				return rec(cursor{frames: c.frames, block: blk.Succs[0], idx: 0}) &&
					rec(cursor{frames: c.frames, block: blk.Succs[1], idx: 0})
			default:
				return false
			}
		}
	}
	return rec(start)
}
