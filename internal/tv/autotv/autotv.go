// Package autotv turns on automatic static translation validation of every
// profile-guided optimization: importing it for side effects installs
// tv.ValidateError as pgo.DebugValidate, so each Optimize/OptimizeTV call
// proves its own rewrite against the emitted witness and fails loudly on
// any finding. Test binaries blank-import this package, which runs the
// whole optimizer suite behind the static validator; production binaries
// leave the hook nil and pay nothing.
//
// It is a separate package (rather than an init in tv) so that importing
// tv for explicit validation does not silently change Optimize's behavior,
// and so pgo's own tests, which cannot import a pgo-importing package
// without a cycle, can install the hook directly instead.
package autotv

import (
	"pathprof/internal/pgo"
	"pathprof/internal/tv"
)

func init() {
	pgo.DebugValidate = tv.ValidateError
}
