package tv_test

// The seeded-miscompile corpus: each testdata/miscompile/*.seed file is an
// (original, optimized, witness) triple in textual form, with an expect
// header naming the finding kind and position the validator must report —
// or "expect none" for positive controls. This is the soundness half of
// the validator's test matrix: every seeded miscompile must be rejected,
// at the declared position.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathprof/internal/ir"
	"pathprof/internal/tv"
)

type seed struct {
	name     string
	expectOK bool   // "expect none": must validate clean
	check    string // else: required finding kind...
	block    int    // ...at this optimized block (-1 = program level)
	instr    int    // ...and instruction (-1 = block level)
	orig     *ir.Program
	opt      *ir.Program
	witness  *tv.ProgramWitness
}

func parseSeed(t *testing.T, path string) seed {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := seed{name: strings.TrimSuffix(filepath.Base(path), ".seed")}
	sections := map[string]*strings.Builder{}
	var cur *strings.Builder
	for _, line := range strings.Split(string(raw), "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "#"):
		case strings.HasPrefix(trimmed, "expect "):
			rest := strings.TrimPrefix(trimmed, "expect ")
			if rest == "none" {
				s.expectOK = true
				break
			}
			if _, err := fmt.Sscanf(rest, "%s %d %d", &s.check, &s.block, &s.instr); err != nil {
				t.Fatalf("%s: malformed expect line %q", path, trimmed)
			}
		case strings.HasPrefix(trimmed, "== ") && strings.HasSuffix(trimmed, " =="):
			name := strings.TrimSuffix(strings.TrimPrefix(trimmed, "== "), " ==")
			cur = &strings.Builder{}
			sections[name] = cur
		case cur != nil:
			cur.WriteString(line)
			cur.WriteByte('\n')
		}
	}
	for _, want := range []string{"original", "optimized", "witness"} {
		if sections[want] == nil {
			t.Fatalf("%s: missing section %q", path, want)
		}
	}
	if s.orig, err = ir.ParseString(sections["original"].String()); err != nil {
		t.Fatalf("%s: original: %v", path, err)
	}
	if s.opt, err = ir.ParseString(sections["optimized"].String()); err != nil {
		t.Fatalf("%s: optimized: %v", path, err)
	}
	if s.witness, err = tv.ParseWitnessString(sections["witness"].String()); err != nil {
		t.Fatalf("%s: witness: %v", path, err)
	}
	return s
}

func TestMiscompileCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "miscompile", "*.seed"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("corpus too small: %d seeds", len(paths))
	}
	for _, path := range paths {
		s := parseSeed(t, path)
		t.Run(s.name, func(t *testing.T) {
			findings := tv.Validate(s.orig, s.opt, s.witness)
			if s.expectOK {
				if len(findings) > 0 {
					t.Fatalf("positive control rejected: %v", findings[0])
				}
				return
			}
			if len(findings) == 0 {
				t.Fatal("seeded miscompile accepted")
			}
			f := findings[0]
			if f.Check != s.check || f.Block != s.block || f.Instr != s.instr {
				t.Fatalf("finding %q: got %s at b%d:i%d, want %s at b%d:i%d",
					f, f.Check, f.Block, f.Instr, s.check, s.block, s.instr)
			}
		})
	}
}

// TestWitnessTextRoundTrip: the corpus serialization is faithful.
func TestWitnessTextRoundTrip(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "miscompile", "*.seed"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		s := parseSeed(t, path)
		text := tv.WitnessString(s.witness)
		back, err := tv.ParseWitnessString(text)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", s.name, err, text)
		}
		if tv.WitnessString(back) != text {
			t.Fatalf("%s: witness text does not round-trip", s.name)
		}
	}
}
