package tv_test

// FuzzTV is the differential fuzzer closing the loop between the static
// validator and the machine: random small mutations are applied to a real
// optimized program and its witness, and any mutant the validator ACCEPTS
// must be runtime-equivalent to the original (same output stream, same
// exit). A counterexample would be a soundness bug in the checker. The
// fuzzer also hammers totality: Validate must reject garbage witnesses
// with findings, never a panic.

import (
	"slices"
	"testing"

	"pathprof/internal/ir"
	"pathprof/internal/pgo"
	"pathprof/internal/sim"
	"pathprof/internal/tv"
	"pathprof/internal/workload"
)

type fuzzCase struct {
	name string
	orig *ir.Program
	opt  *ir.Program
	wit  *tv.ProgramWitness
	out  []int64 // original program's output stream
	cap  uint64  // step budget for mutant runs
}

func buildFuzzCases(f *testing.F) []fuzzCase {
	var cases []fuzzCase
	for _, w := range workload.Suite()[:6] {
		prog := w.Build(workload.Test)
		data, err := pgo.Acquire(prog, sim.DefaultConfig())
		if err != nil {
			f.Fatal(err)
		}
		opt, wit, _, err := pgo.OptimizeTV(prog, data, pgo.DefaultOptions())
		if err != nil {
			f.Fatal(err)
		}
		m := sim.New(prog, sim.DefaultConfig())
		res, err := m.Run()
		if err != nil {
			f.Fatal(err)
		}
		cases = append(cases, fuzzCase{
			name: w.Name, orig: prog, opt: opt, wit: wit,
			out: res.Output, cap: res.Instrs*4 + 1_000_000,
		})
	}
	return cases
}

// mutate applies one byte-directed mutation; returns false when the byte
// stream is exhausted.
func mutate(prog *ir.Program, w *tv.ProgramWitness, data []byte, i *int) bool {
	next := func() (byte, bool) {
		if *i >= len(data) {
			return 0, false
		}
		b := data[*i]
		*i++
		return b, true
	}
	kind, ok := next()
	if !ok {
		return false
	}
	pb, _ := next()
	bb, _ := next()
	ib, _ := next()
	vb, _ := next()
	p := prog.Procs[int(pb)%len(prog.Procs)]
	blk := p.Blocks[int(bb)%len(p.Blocks)]
	idx := int(ib) % len(blk.Instrs)
	in := &blk.Instrs[idx]
	pw := &w.Procs[p.ID]
	bw := &pw.Blocks[int(bb)%len(pw.Blocks)]
	switch kind % 12 {
	case 0:
		in.Imm += int64(int8(vb))
	case 1:
		in.Rs, in.Rt = in.Rt, in.Rs
	case 2:
		in.Rd = ir.Reg(vb) % ir.NumRegs
	case 3:
		in.Rs = ir.Reg(vb) % ir.NumRegs
	case 4:
		if len(blk.Succs) == 2 {
			blk.Succs[0], blk.Succs[1] = blk.Succs[1], blk.Succs[0]
		}
	case 5:
		if len(blk.Succs) > 0 {
			blk.Succs[int(vb)%len(blk.Succs)] = ir.BlockID(int(vb) % len(p.Blocks))
		}
	case 6:
		if idx < len(blk.Instrs)-1 {
			blk.Instrs = slices.Delete(blk.Instrs, idx, idx+1)
		}
	case 7:
		bw.Anchor.Block = ir.BlockID(int(vb) % (len(p.Blocks) + 2))
	case 8:
		bw.Anchor.Idx += int(int8(vb))
	case 9:
		if len(bw.Events) > 0 {
			bw.Events[int(ib)%len(bw.Events)].OptIdx += int(int8(vb))
		}
	case 10:
		if len(bw.Events) > 0 {
			ev := &bw.Events[int(ib)%len(bw.Events)]
			ev.Map[int(vb)%ir.NumRegs] = ir.Reg(vb) % ir.NumRegs
		}
	case 11:
		if len(bw.Anchor.Frames) > 0 {
			fr := &bw.Anchor.Frames[int(ib)%len(bw.Anchor.Frames)]
			fr.RetIdx += int(int8(vb))
		}
	}
	return true
}

func cloneWitness(w *tv.ProgramWitness) *tv.ProgramWitness {
	out, err := tv.ParseWitnessString(tv.WitnessString(w))
	if err != nil {
		panic(err)
	}
	return out
}

func FuzzTV(f *testing.F) {
	cases := buildFuzzCases(f)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 1})
	f.Add([]byte{1, 0, 1, 0, 0})
	f.Add([]byte{4, 0, 2, 0, 0, 5, 0, 1, 1, 3})
	f.Add([]byte{7, 0, 0, 0, 9, 8, 0, 1, 0, 250})
	f.Add([]byte{10, 0, 0, 0, 17, 11, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		fc := cases[0]
		if len(data) > 0 {
			fc = cases[int(data[0])%len(cases)]
		}
		mutOpt := ir.Clone(fc.opt)
		mutWit := cloneWitness(fc.wit)
		for i := 0; mutate(mutOpt, mutWit, data, &i); {
		}
		findings := tv.Validate(fc.orig, mutOpt, mutWit) // must never panic
		if len(findings) > 0 {
			return // rejected: fine, whatever the mutation did
		}
		// Accepted: the mutant must be runtime-equivalent to the original.
		cfg := sim.DefaultConfig()
		cfg.MaxSteps = fc.cap
		res, err := sim.New(mutOpt, cfg).Run()
		if err != nil {
			t.Fatalf("validator accepted a mutant that fails to run: %v", err)
		}
		if !slices.Equal(res.Output, fc.out) {
			t.Fatalf("validator accepted a mutant with diverging output (%d vs %d words)",
				len(res.Output), len(fc.out))
		}
	})
}
