package tv

// Textual witness form, the companion to ir.Fprint/ir.Parse: it lets the
// seeded-miscompile corpus under testdata/ ship (original, optimized,
// witness) triples as plain text, and makes witnesses diffable in golden
// tests. Register maps print only their non-identity entries.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"pathprof/internal/ir"
)

// FprintWitness renders w in the syntax ParseWitness reads:
//
//	witness <nprocs>
//	proc <id> blocks <n>
//	b<id>: [frame <callee> b<RB>:i<RI> {r=r,...}]* anchor b<B>:i<I> [event <opt> <pro> <callee> {r=r,...}]*
func FprintWitness(sb *strings.Builder, w *ProgramWitness) {
	fmt.Fprintf(sb, "witness %d\n", len(w.Procs))
	for id, pw := range w.Procs {
		fmt.Fprintf(sb, "proc %d blocks %d\n", id, len(pw.Blocks))
		for bid, bw := range pw.Blocks {
			fmt.Fprintf(sb, "b%d:", bid)
			for _, f := range bw.Anchor.Frames {
				fmt.Fprintf(sb, " frame %d b%d:i%d %s", f.Callee, f.RetBlock, f.RetIdx, mapString(f.Map))
			}
			fmt.Fprintf(sb, " anchor b%d:i%d", bw.Anchor.Block, bw.Anchor.Idx)
			for _, ev := range bw.Events {
				fmt.Fprintf(sb, " event %d %d %d %s", ev.OptIdx, ev.Prologue, ev.Callee, mapString(ev.Map))
			}
			sb.WriteByte('\n')
		}
	}
}

// WitnessString renders w as text.
func WitnessString(w *ProgramWitness) string {
	var sb strings.Builder
	FprintWitness(&sb, w)
	return sb.String()
}

func mapString(m [ir.NumRegs]ir.Reg) string {
	var ks []int
	for r, t := range m {
		if ir.Reg(r) != t {
			ks = append(ks, r)
		}
	}
	sort.Ints(ks)
	parts := make([]string, len(ks))
	for i, r := range ks {
		parts[i] = fmt.Sprintf("%d=%d", r, m[r])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func parseMap(tok string) ([ir.NumRegs]ir.Reg, error) {
	var m [ir.NumRegs]ir.Reg
	for r := range m {
		m[r] = ir.Reg(r)
	}
	if !strings.HasPrefix(tok, "{") || !strings.HasSuffix(tok, "}") {
		return m, fmt.Errorf("malformed register map %q", tok)
	}
	body := tok[1 : len(tok)-1]
	if body == "" {
		return m, nil
	}
	for _, kv := range strings.Split(body, ",") {
		var r, t int
		if _, err := fmt.Sscanf(kv, "%d=%d", &r, &t); err != nil {
			return m, fmt.Errorf("malformed map entry %q", kv)
		}
		if r < 0 || r >= ir.NumRegs || t < 0 {
			return m, fmt.Errorf("map entry %q out of range", kv)
		}
		m[r] = ir.Reg(t)
	}
	return m, nil
}

// ParseWitness reads the form FprintWitness emits. It checks syntax only;
// semantic shape errors are Validate's job (and are themselves findings,
// never panics).
func ParseWitness(r io.Reader) (*ProgramWitness, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s != "" {
				return s, true
			}
		}
		return "", false
	}
	errf := func(format string, args ...any) error {
		return fmt.Errorf("witness line %d: %s", line, fmt.Sprintf(format, args...))
	}

	s, ok := next()
	if !ok {
		return nil, errf("empty witness")
	}
	var nprocs int
	if _, err := fmt.Sscanf(s, "witness %d", &nprocs); err != nil || nprocs < 0 {
		return nil, errf("want %q header, got %q", "witness <nprocs>", s)
	}
	w := &ProgramWitness{Procs: make([]ProcWitness, nprocs)}
	for pi := 0; pi < nprocs; pi++ {
		s, ok = next()
		if !ok {
			return nil, errf("missing proc %d", pi)
		}
		var id, nblocks int
		if _, err := fmt.Sscanf(s, "proc %d blocks %d", &id, &nblocks); err != nil || id != pi || nblocks < 0 {
			return nil, errf("want %q, got %q", fmt.Sprintf("proc %d blocks <n>", pi), s)
		}
		pw := ProcWitness{Blocks: make([]BlockWitness, nblocks)}
		for bi := 0; bi < nblocks; bi++ {
			s, ok = next()
			if !ok {
				return nil, errf("missing block %d of proc %d", bi, pi)
			}
			bw, err := parseBlockWitness(s, bi)
			if err != nil {
				return nil, errf("%v", err)
			}
			pw.Blocks[bi] = bw
		}
		w.Procs[pi] = pw
	}
	return w, nil
}

// ParseWitnessString is ParseWitness over a string.
func ParseWitnessString(s string) (*ProgramWitness, error) {
	return ParseWitness(strings.NewReader(s))
}

func parseBlockWitness(s string, bi int) (BlockWitness, error) {
	var bw BlockWitness
	toks := strings.Fields(s)
	if len(toks) == 0 || toks[0] != fmt.Sprintf("b%d:", bi) {
		return bw, fmt.Errorf("want block header %q, got %q", fmt.Sprintf("b%d:", bi), s)
	}
	toks = toks[1:]
	anchored := false
	for len(toks) > 0 {
		switch toks[0] {
		case "frame":
			if anchored || len(toks) < 4 {
				return bw, fmt.Errorf("malformed frame in %q", s)
			}
			var f Frame
			if _, err := fmt.Sscanf(toks[1], "%d", &f.Callee); err != nil {
				return bw, fmt.Errorf("malformed frame callee %q", toks[1])
			}
			var rb, ri int
			if _, err := fmt.Sscanf(toks[2], "b%d:i%d", &rb, &ri); err != nil {
				return bw, fmt.Errorf("malformed frame return point %q", toks[2])
			}
			f.RetBlock, f.RetIdx = ir.BlockID(rb), ri
			m, err := parseMap(toks[3])
			if err != nil {
				return bw, err
			}
			f.Map = m
			bw.Anchor.Frames = append(bw.Anchor.Frames, f)
			toks = toks[4:]
		case "anchor":
			if anchored || len(toks) < 2 {
				return bw, fmt.Errorf("malformed anchor in %q", s)
			}
			var b, i int
			if _, err := fmt.Sscanf(toks[1], "b%d:i%d", &b, &i); err != nil {
				return bw, fmt.Errorf("malformed anchor point %q", toks[1])
			}
			bw.Anchor.Block, bw.Anchor.Idx = ir.BlockID(b), i
			anchored = true
			toks = toks[2:]
		case "event":
			if !anchored || len(toks) < 5 {
				return bw, fmt.Errorf("malformed event in %q", s)
			}
			var ev InlineEvent
			if _, err := fmt.Sscanf(toks[1]+" "+toks[2]+" "+toks[3], "%d %d %d",
				&ev.OptIdx, &ev.Prologue, &ev.Callee); err != nil {
				return bw, fmt.Errorf("malformed event fields in %q", s)
			}
			m, err := parseMap(toks[4])
			if err != nil {
				return bw, err
			}
			ev.Map = m
			bw.Events = append(bw.Events, ev)
			toks = toks[5:]
		default:
			return bw, fmt.Errorf("unexpected token %q in %q", toks[0], s)
		}
	}
	if !anchored {
		return bw, fmt.Errorf("block %d has no anchor", bi)
	}
	return bw, nil
}
