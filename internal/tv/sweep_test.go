package tv_test

// The positive sweep: every workload in the suite (and the k-iteration
// suite), profiled at both classic and k=2 path degree, optimized under
// every ladder candidate, must validate with zero findings. This is the
// validator's completeness half — the seeded-miscompile corpus in
// corpus_test.go is the soundness half.

import (
	"testing"

	"pathprof/internal/ir"
	"pathprof/internal/pgo"
	"pathprof/internal/sim"
	"pathprof/internal/tv"
	"pathprof/internal/workload"
)

func suite() []workload.Workload {
	return append(workload.Suite(), workload.KSuite()...)
}

func TestValidateLadderAllWorkloads(t *testing.T) {
	for _, w := range suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog := w.Build(workload.Test)
			for _, k := range []int{1, 2} {
				data, err := pgo.AcquireWith(prog, sim.DefaultConfig(), pgo.AcquireOptions{K: k})
				if err != nil {
					t.Fatalf("acquire k=%d: %v", k, err)
				}
				for _, cand := range pgo.Ladder(pgo.DefaultOptions()) {
					opt, wit, _, err := pgo.OptimizeTV(prog, data, cand.Opts)
					if err != nil {
						t.Fatalf("k=%d %s: optimize: %v", k, cand.Name, err)
					}
					if findings := tv.Validate(prog, opt, wit); len(findings) > 0 {
						for _, f := range findings {
							t.Errorf("k=%d %s: %s", k, cand.Name, f)
						}
						t.Fatalf("k=%d %s: %d finding(s)", k, cand.Name, len(findings))
					}
				}
				// k=2 profiles project to identical edge counts; one pass of
				// the ladder per degree is the coverage the gate promises.
			}
		})
	}
}

// TestIdentityWitness: an unchanged clone validates against the identity
// witness for every workload.
func TestIdentityWitness(t *testing.T) {
	for _, w := range suite() {
		prog := w.Build(workload.Test)
		clone := ir.Clone(prog)
		if findings := tv.Validate(prog, clone, tv.Identity(prog)); len(findings) > 0 {
			t.Errorf("%s: identity witness rejected: %v", w.Name, findings[0])
		}
	}
}
