// Package tv is a static translation validator for the profile-guided
// optimizer: given an original program, its optimized form, and a witness
// the optimizer emitted while transforming, Validate proves — without
// running either program — that the optimized program simulates the
// original instruction for instruction. The proof is a co-walk: every
// optimized block carries an anchor naming the original program point it
// implements, the checker advances a cursor through the original program
// in lockstep with the optimized instructions, and only three kinds of
// "glue" may be consumed silently, each observation-free by construction:
// unconditional jumps the optimizer threaded or merged away, returns of
// inlined callees (whose calling-convention effect the inline register map
// reproduces exactly), and conditional branches whose two arms provably
// reconverge. Inlined call seams carry explicit witness events whose
// register maps and prologues are checked against the calling convention
// and the caller's liveness. Anything else — a reordered store, a changed
// immediate, a retargeted branch, a clobbered live register — fails the
// walk and surfaces as a positioned Finding.
//
// The validator's trust boundary: it assumes ir.Validate holds for both
// programs (checked here first), and it shares internal/dataflow's machine
// model — in particular liveness treats LongJmp as an ordinary
// instruction, the same axiom the optimizer's inliner builds on. Runtime
// byte-equivalence in pgo.RoundTrip remains as a differential backstop
// behind this gate.
package tv

import (
	"fmt"
	"sort"
	"strings"

	"pathprof/internal/ir"
)

// Frame is one inlined activation on a cursor's stack: the callee whose
// body the optimized code is currently inside, where the original caller
// resumes when that callee returns, and the register map the inliner chose
// (callee register r lives in caller register Map[r]).
type Frame struct {
	Callee   int        // callee procedure ID in the original program
	RetBlock ir.BlockID // original caller block to resume in after Ret
	RetIdx   int        // instruction index in RetBlock to resume at
	Map      [ir.NumRegs]ir.Reg
}

// Point is an extended original program point: a stack of inlined frames
// (empty = the procedure's own frame) and a position inside the innermost
// procedure's body. With no frames, Block/Idx index the original
// procedure; with frames, they index the innermost callee.
type Point struct {
	Frames []Frame
	Block  ir.BlockID
	Idx    int
}

func (p Point) String() string {
	if len(p.Frames) == 0 {
		return fmt.Sprintf("b%d:i%d", p.Block, p.Idx)
	}
	var sb strings.Builder
	for _, f := range p.Frames {
		fmt.Fprintf(&sb, "inlined@b%d:i%d/", f.RetBlock, f.RetIdx-1)
	}
	fmt.Fprintf(&sb, "b%d:i%d", p.Block, p.Idx)
	return sb.String()
}

// InlineEvent marks an inlined call seam inside an optimized block: at
// instruction OptIdx the block stops tracking the caller and enters the
// callee's body, after Prologue instructions of register setup. The
// checker verifies the prologue establishes a fresh activation of Callee
// under Map and that nothing live in the caller is clobbered.
type InlineEvent struct {
	OptIdx   int // optimized instruction index where the prologue begins
	Prologue int // number of prologue instructions (Mov/MovI setup)
	Callee   int // callee procedure ID in the original program
	Map      [ir.NumRegs]ir.Reg
}

// BlockWitness describes one optimized block: the original point its first
// instruction implements, plus any inline seams inside it, in ascending
// OptIdx order.
type BlockWitness struct {
	Anchor Point
	Events []InlineEvent
}

// ProcWitness covers one optimized procedure, indexed by optimized block
// ID.
type ProcWitness struct {
	Blocks []BlockWitness
}

// ProgramWitness covers the whole optimized program, indexed by procedure
// ID.
type ProgramWitness struct {
	Procs []ProcWitness
}

// Identity returns the witness of the do-nothing transformation of prog:
// every block anchored at its own start, no inline events. An unchanged
// clone always validates against it.
func Identity(prog *ir.Program) *ProgramWitness {
	w := &ProgramWitness{Procs: make([]ProcWitness, len(prog.Procs))}
	for i, p := range prog.Procs {
		pw := ProcWitness{Blocks: make([]BlockWitness, len(p.Blocks))}
		for j, b := range p.Blocks {
			pw.Blocks[j] = BlockWitness{Anchor: Point{Block: b.ID}}
		}
		w.Procs[i] = pw
	}
	return w
}

// Finding is one validation failure, positioned in the OPTIMIZED program
// at the finest granularity the checker could establish (-1 for "not
// applicable"). The Msg names the original point involved when there is
// one.
type Finding struct {
	Check  string // "witness", "anchor", "instr", "term", "inline", "clobber"
	Proc   string
	ProcID int
	Block  int // optimized block ID, or -1
	Instr  int // optimized instruction index, or -1
	Msg    string
}

func (f Finding) String() string {
	pos := f.Proc
	if f.Block >= 0 {
		pos = fmt.Sprintf("%s:b%d", pos, f.Block)
	}
	if f.Instr >= 0 {
		pos = fmt.Sprintf("%s:i%d", pos, f.Instr)
	}
	return fmt.Sprintf("%s %s: %s", pos, f.Check, f.Msg)
}

// Validate checks that opt simulates orig according to witness w and
// returns the findings sorted deterministically; empty means proved. It
// never panics on a malformed witness — shape errors are findings too.
func Validate(orig, opt *ir.Program, w *ProgramWitness) []Finding {
	v := &validator{orig: orig, opt: opt}
	v.run(w)
	sort.Slice(v.findings, func(i, j int) bool {
		a, b := v.findings[i], v.findings[j]
		if a.ProcID != b.ProcID {
			return a.ProcID < b.ProcID
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.Instr != b.Instr {
			return a.Instr < b.Instr
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
	return v.findings
}

// ValidateError wraps Validate for use as an error-returning hook: nil
// when the proof goes through, else an error listing every finding.
func ValidateError(orig, opt *ir.Program, w *ProgramWitness) error {
	fs := Validate(orig, opt, w)
	if len(fs) == 0 {
		return nil
	}
	lines := make([]string, len(fs))
	for i, f := range fs {
		lines[i] = f.String()
	}
	return fmt.Errorf("tv: %d finding(s):\n  %s", len(fs), strings.Join(lines, "\n  "))
}
