package experiments

import (
	"fmt"
	"io"

	"pathprof/internal/hpm"
	"pathprof/internal/instrument"
	"pathprof/internal/profile"
	"pathprof/internal/report"
	"pathprof/internal/workload"
)

// The k-degree comparison: the same workloads profiled under flow+HW at
// k = 1 and at higher path degrees, lined up so the report shows what the
// extra degree buys — hot paths that cross loop back-edges, with event
// attribution the classic profile structurally cannot express. A classic
// profile charges a loop-body path's misses to that path summed over every
// predecessor iteration; the k-profile splits the same events by what the
// previous iteration(s) did, so the per-execution rate of a crossing
// k-path can differ sharply from the k=1 average of its final segment.

// KPathRow is one (workload, degree) line of the comparison.
type KPathRow struct {
	Workload string
	K        int
	Executed int // executed path entries across all procedures

	// The hottest path by D-cache misses — for k>1, the hottest path that
	// crosses at least one iteration boundary.
	Proc      string
	Path      string // bl.Path rendering; "↻" marks iteration boundaries
	Sum       int64
	Crossings int
	Freq      uint64
	Misses    uint64

	// BaseSum is the classic id of the hot k-path's final iteration
	// segment, and BaseFreq/BaseMisses its k=1 profile entry: the same
	// code the k-path ends in, attributed without cross-iteration context.
	// Meaningful only when K > 1 and Crossings > 0.
	BaseSum    int64
	BaseFreq   uint64
	BaseMisses uint64

	// Contexts is the number of distinct executed k-paths sharing the hot
	// path's final segment — the ways the k-profile splits the single k=1
	// entry BaseSum — and RateLo/RateHi the spread of their per-execution
	// miss rates. RateHi > RateLo is attribution the classic profile
	// averages away.
	Contexts int
	RateLo   float64
	RateHi   float64
}

// PerExec returns the hot path's misses per execution.
func (r KPathRow) PerExec() float64 {
	if r.Freq == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Freq)
}

// BasePerExec returns the k=1 per-execution miss rate of the hot k-path's
// final segment.
func (r KPathRow) BasePerExec() float64 {
	if r.BaseFreq == 0 {
		return 0
	}
	return float64(r.BaseMisses) / float64(r.BaseFreq)
}

// KPathComparison is the full report: rows grouped by workload, degrees
// ascending, k=1 first as the baseline.
type KPathComparison struct {
	Scale workload.Scale
	Rows  []KPathRow
}

// missIndex locates the D-cache-miss metric column of a profile.
func missIndex(p *profile.Profile) int {
	if i := p.MetricIndex(hpm.EvDCacheMiss.String()); i >= 0 {
		return i
	}
	return 0
}

// hotEntry picks the hottest entry by the given metric, requiring at least
// minCross iteration boundaries, with a deterministic tie-break (higher
// misses, then lower proc id, then lower sum). It returns ok=false when no
// entry qualifies.
func hotEntry(cell *Cell, mi, minCross int) (row KPathRow, ok bool) {
	for _, pp := range cell.Profile.Procs {
		if pp == nil {
			continue
		}
		ppl := cell.Plan.Procs[pp.ProcID]
		if ppl == nil || ppl.Numbering == nil {
			continue
		}
		for _, e := range pp.Entries {
			p, err := ppl.Numbering.RegenerateK(e.Sum)
			if err != nil {
				continue
			}
			if len(p.Boundaries) < minCross {
				continue
			}
			m := e.Metric(mi)
			if ok && m <= row.Misses {
				continue
			}
			row = KPathRow{
				Proc:      pp.Name,
				Path:      p.String(),
				Sum:       e.Sum,
				Crossings: len(p.Boundaries),
				Freq:      e.Freq,
				Misses:    m,
			}
			ok = true
		}
	}
	return row, ok
}

// KPaths runs the comparison for the named workloads over the given
// degrees (1 is implicit and always first). Each degree gets its own
// session so plans and cells cache independently.
func KPaths(scale workload.Scale, names []string, degrees []int) (*KPathComparison, error) {
	ks := []int{1}
	for _, k := range degrees {
		if k > 1 {
			ks = append(ks, k)
		}
	}
	sessions := make(map[int]*Session, len(ks))
	for _, k := range ks {
		s := NewSession(scale)
		s.K = k
		sessions[k] = s
	}

	cmp := &KPathComparison{Scale: scale}
	for _, name := range names {
		w, found := workload.ByName(name)
		if !found {
			return nil, fmt.Errorf("experiments: no workload %q", name)
		}
		// Baseline first: the classic profile the k rows compare against.
		base, err := sessions[1].Run(w, instrument.ModePathHW, StandardEvents[0], StandardEvents[1])
		if err != nil {
			return nil, err
		}
		bmi := missIndex(base.Profile)
		brow, _ := hotEntry(base, bmi, 0)
		brow.Workload = name
		brow.K = 1
		brow.Executed = base.Profile.TotalExecutedPaths()
		cmp.Rows = append(cmp.Rows, brow)

		for _, k := range ks[1:] {
			cell, err := sessions[k].Run(w, instrument.ModePathHW, StandardEvents[0], StandardEvents[1])
			if err != nil {
				return nil, err
			}
			mi := missIndex(cell.Profile)
			row, ok := hotEntry(cell, mi, 1)
			row.Workload = name
			row.K = k
			row.Executed = cell.Profile.TotalExecutedPaths()
			if ok {
				// Attribute the hot k-path's final segment under k=1.
				pp := procByName(cell, row.Proc)
				if segs, err := pp.Numbering.SegmentSums(row.Sum); err == nil && len(segs) > 0 {
					row.BaseSum = segs[len(segs)-1]
					if bp := procPathsByName(base.Profile, row.Proc); bp != nil {
						for _, be := range bp.Entries {
							if be.Sum == row.BaseSum {
								row.BaseFreq = be.Freq
								row.BaseMisses = be.Metric(bmi)
								break
							}
						}
					}
					// The context spread: every executed k-path ending in
					// the same segment, and the range of their miss rates.
					if kp := procPathsByName(cell.Profile, row.Proc); kp != nil {
						for _, ke := range kp.Entries {
							ks, err := pp.Numbering.SegmentSums(ke.Sum)
							if err != nil || len(ks) == 0 || ks[len(ks)-1] != row.BaseSum || ke.Freq == 0 {
								continue
							}
							rate := float64(ke.Metric(mi)) / float64(ke.Freq)
							if row.Contexts == 0 || rate < row.RateLo {
								row.RateLo = rate
							}
							if row.Contexts == 0 || rate > row.RateHi {
								row.RateHi = rate
							}
							row.Contexts++
						}
					}
				}
			}
			cmp.Rows = append(cmp.Rows, row)
		}
	}
	return cmp, nil
}

func procByName(cell *Cell, name string) *instrument.ProcPlan {
	for _, pp := range cell.Plan.Procs {
		if pp != nil && cell.Plan.Prog.Procs[pp.ProcID].Name == name {
			return pp
		}
	}
	return nil
}

func procPathsByName(p *profile.Profile, name string) *profile.ProcPaths {
	for _, pp := range p.Procs {
		if pp != nil && pp.Name == name {
			return pp
		}
	}
	return nil
}

// RenderKPaths writes the comparison report.
func RenderKPaths(cmp *KPathComparison, w io.Writer) {
	t := &report.Table{
		Title: "k-iteration path profiles: hottest backedge-crossing path by L1 D-cache misses vs its k=1 attribution",
		Cols: []string{"Benchmark", "k", "Paths", "Hot path (proc)", "↻", "Freq", "Misses",
			"Miss/exec", "k=1 seg", "k=1 rate", "Ctxs", "Ctx rate lo..hi"},
		Note: "A k>1 row's hot path spans ↻ loop iterations. 'k=1 seg' names the classic entry of its " +
			"final iteration segment and 'k=1 rate' that entry's average miss rate; 'Ctxs' counts the " +
			"executed k-paths the k-profile splits that one entry into, and the rate spread across " +
			"them is per-iteration attribution the classic profile averages away.",
	}
	for _, r := range cmp.Rows {
		path := r.Path
		if len([]rune(path)) > 44 {
			path = string([]rune(path)[:43]) + "…"
		}
		hot := fmt.Sprintf("%s (%s)", path, r.Proc)
		if r.K <= 1 {
			t.AddRow(r.Workload, r.K, r.Executed, hot, r.Crossings, report.SI(r.Freq),
				report.SI(r.Misses), fmt.Sprintf("%.3f", r.PerExec()), "-", "-", "-", "-")
			continue
		}
		t.AddRow(r.Workload, r.K, r.Executed, hot, r.Crossings, report.SI(r.Freq),
			report.SI(r.Misses), fmt.Sprintf("%.3f", r.PerExec()),
			fmt.Sprintf("id %d", r.BaseSum), fmt.Sprintf("%.3f", r.BasePerExec()),
			r.Contexts, fmt.Sprintf("%.3f..%.3f", r.RateLo, r.RateHi))
	}
	t.Render(w)
}

// KPathWorkloads is the default workload set for the k-degree comparison:
// the two paper workloads whose inner loops carry state across iterations,
// plus the three k-iteration workloads built for this experiment.
var KPathWorkloads = []string{"interp", "compress", "pipeline", "lexer", "eventloop"}
