package experiments

import (
	"io"
	"sync"

	"pathprof/internal/baseline"
	"pathprof/internal/hpm"
	"pathprof/internal/instrument"
	"pathprof/internal/report"
	"pathprof/internal/sim"
)

// callsEvent is the dynamic call counter used for the spectrum table.
const callsEvent = hpm.EvCalls

// Table 6 (an extension beyond the paper's tables): the run-time
// representation spectrum of Figure 4, quantified. For each workload it
// compares the dynamic call graph (arcs only — compact but context-blind),
// the calling context tree (bounded, context-exact), the full dynamic call
// tree (exact but proportional to call volume), and Goldberg-Hall stack
// sampling (storage proportional to run length).

// SpectrumRow holds one workload's representation sizes.
type SpectrumRow struct {
	Name  string
	Calls uint64

	DCGArcs  int
	DCGBytes uint64

	CCTNodes int
	CCTBytes uint64

	DCTNodes int
	DCTBytes uint64

	SamplerSamples int
	SamplerBytes   uint64
}

// Spectrum measures all four representations on each workload: the CCT
// from the cached context+flow cell, the rest from one traced
// uninstrumented run. Both halves run through the parallel engine: the CCT
// cells via RunAll, the traced runs on their own bounded worker pool; rows
// are assembled by workload index, so output order is deterministic.
func (s *Session) Spectrum(sampleInterval uint64) ([]SpectrumRow, error) {
	cctCells, err := s.runSuite(instrument.ModeContextFlow, StandardEvents[0], StandardEvents[1])
	if err != nil {
		return nil, err
	}

	rows := make([]SpectrumRow, len(s.Workloads))
	traced := func(i int) error {
		w := s.Workloads[i]
		st := cctCells[i].Tree.ComputeStats()
		m := sim.New(s.builtProg(w), s.SimConfig)
		dct := baseline.NewDCT()
		g := baseline.NewGprof(m.Cycles)
		smp := baseline.NewSampler(m, sampleInterval)
		m.SetTracer(baseline.Combine(dct, g, smp))
		m.OnUnwind(dct.UnwindTo)
		m.OnUnwind(g.UnwindTo)
		res, err := m.Run()
		if err != nil {
			return err
		}
		g.Flush()

		arcs := len(g.Arcs())
		rows[i] = SpectrumRow{
			Name:  w.Name,
			Calls: res.Totals[callsEvent],

			DCGArcs:  arcs,
			DCGBytes: uint64(arcs) * 24, // (caller, callee, count)

			CCTNodes: st.Nodes,
			CCTBytes: st.SizeBytes,

			DCTNodes: dct.NumNodes(),
			DCTBytes: dct.SizeBytes(),

			SamplerSamples: len(smp.Samples),
			SamplerBytes:   smp.SizeBytes(),
		}
		return nil
	}

	n := s.workers()
	if n > len(s.Workloads) {
		n = len(s.Workloads)
	}
	if n <= 1 {
		for i := range s.Workloads {
			if err := traced(i); err != nil {
				return nil, err
			}
		}
		return rows, nil
	}
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		first   error
	)
	jobs := make(chan int)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if first != nil {
					continue
				}
				if err := traced(i); err != nil {
					errOnce.Do(func() { first = err })
				}
			}
		}()
	}
	for i := range s.Workloads {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if first != nil {
		return nil, first
	}
	return rows, nil
}

// RenderSpectrum writes the Table 6 report.
func RenderSpectrum(rows []SpectrumRow, w io.Writer) {
	t := &report.Table{
		Title: "Table 6 (extension): the Figure 4 representation spectrum, measured",
		Cols: []string{"Benchmark", "Calls", "DCG arcs", "DCG B",
			"CCT nodes", "CCT B", "DCT nodes", "DCT B", "Samples", "Sampler B"},
		Note: "The dynamic call graph is smallest but cannot attribute costs to contexts (the " +
			"gprof problem); the dynamic call tree is exact but grows with every call; stack-sample " +
			"storage grows with run length. The CCT sits between: bounded like the DCG, " +
			"context-exact like the DCT. CCT bytes here include per-record path tables (the " +
			"combined flow+context configuration).",
	}
	for _, r := range rows {
		t.AddRow(r.Name, report.SI(r.Calls),
			r.DCGArcs, report.SI(r.DCGBytes),
			r.CCTNodes, report.SI(r.CCTBytes),
			r.DCTNodes, report.SI(r.DCTBytes),
			r.SamplerSamples, report.SI(r.SamplerBytes))
	}
	t.Render(w)
}
