package experiments

import (
	"io"

	"pathprof/internal/baseline"
	"pathprof/internal/hpm"
	"pathprof/internal/instrument"
	"pathprof/internal/report"
	"pathprof/internal/sim"
)

// callsEvent is the dynamic call counter used for the spectrum table.
const callsEvent = hpm.EvCalls

// Table 6 (an extension beyond the paper's tables): the run-time
// representation spectrum of Figure 4, quantified. For each workload it
// compares the dynamic call graph (arcs only — compact but context-blind),
// the calling context tree (bounded, context-exact), the full dynamic call
// tree (exact but proportional to call volume), and Goldberg-Hall stack
// sampling (storage proportional to run length).

// SpectrumRow holds one workload's representation sizes.
type SpectrumRow struct {
	Name  string
	Calls uint64

	DCGArcs  int
	DCGBytes uint64

	CCTNodes int
	CCTBytes uint64

	DCTNodes int
	DCTBytes uint64

	SamplerSamples int
	SamplerBytes   uint64
}

// Spectrum measures all four representations on each workload: the CCT
// from the cached context+flow cell, the rest from one traced
// uninstrumented run.
func (s *Session) Spectrum(sampleInterval uint64) ([]SpectrumRow, error) {
	var rows []SpectrumRow
	for _, w := range s.Workloads {
		cctCell, err := s.Run(w, instrument.ModeContextFlow, StandardEvents[0], StandardEvents[1])
		if err != nil {
			return nil, err
		}
		st := cctCell.Tree.ComputeStats()

		prog := w.Build(s.Scale)
		m := sim.New(prog, s.SimConfig)
		dct := baseline.NewDCT()
		g := baseline.NewGprof(m.Cycles)
		smp := baseline.NewSampler(m, sampleInterval)
		m.SetTracer(baseline.Combine(dct, g, smp))
		m.OnUnwind(dct.UnwindTo)
		m.OnUnwind(g.UnwindTo)
		res, err := m.Run()
		if err != nil {
			return nil, err
		}
		g.Flush()

		arcs := len(g.Arcs())
		rows = append(rows, SpectrumRow{
			Name:  w.Name,
			Calls: res.Totals[callsEvent],

			DCGArcs:  arcs,
			DCGBytes: uint64(arcs) * 24, // (caller, callee, count)

			CCTNodes: st.Nodes,
			CCTBytes: st.SizeBytes,

			DCTNodes: dct.NumNodes(),
			DCTBytes: dct.SizeBytes(),

			SamplerSamples: len(smp.Samples),
			SamplerBytes:   smp.SizeBytes(),
		})
	}
	return rows, nil
}

// RenderSpectrum writes the Table 6 report.
func RenderSpectrum(rows []SpectrumRow, w io.Writer) {
	t := &report.Table{
		Title: "Table 6 (extension): the Figure 4 representation spectrum, measured",
		Cols: []string{"Benchmark", "Calls", "DCG arcs", "DCG B",
			"CCT nodes", "CCT B", "DCT nodes", "DCT B", "Samples", "Sampler B"},
		Note: "The dynamic call graph is smallest but cannot attribute costs to contexts (the " +
			"gprof problem); the dynamic call tree is exact but grows with every call; stack-sample " +
			"storage grows with run length. The CCT sits between: bounded like the DCG, " +
			"context-exact like the DCT. CCT bytes here include per-record path tables (the " +
			"combined flow+context configuration).",
	}
	for _, r := range rows {
		t.AddRow(r.Name, report.SI(r.Calls),
			r.DCGArcs, report.SI(r.DCGBytes),
			r.CCTNodes, report.SI(r.CCTBytes),
			r.DCTNodes, report.SI(r.DCTBytes),
			r.SamplerSamples, report.SI(r.SamplerBytes))
	}
	t.Render(w)
}
