package experiments

import (
	"bytes"
	"context"
	"testing"

	"pathprof/internal/cct"
	"pathprof/internal/instrument"
)

// TestShardedTable3Identical: Table 3 rendered from sharded collection must
// be byte-identical to the serial table at every shard count — the shape
// statistics of a merge of identical deterministic runs are invariant.
func TestShardedTable3Identical(t *testing.T) {
	s := subsetSession(t)
	serialRows, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	var serial bytes.Buffer
	RenderTable3(serialRows, &serial)

	for _, shards := range []int{1, 2, 4} {
		rows, err := s.Table3Sharded(shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var got bytes.Buffer
		RenderTable3(rows, &got)
		if !bytes.Equal(serial.Bytes(), got.Bytes()) {
			t.Errorf("shards=%d: rendered Table 3 differs from serial run\nserial:\n%s\nsharded:\n%s",
				shards, serial.String(), got.String())
		}
	}
}

// TestShardedCountersScale: merging k identical shard trees leaves the
// structure untouched but multiplies the accumulated counters by k.
func TestShardedCountersScale(t *testing.T) {
	s := subsetSession(t)
	w := s.Workloads[0]

	invocations := func(shards int) (int64, int) {
		run, err := s.CollectSharded(context.Background(), w,
			instrument.ModeContextFlow, StandardEvents[0], StandardEvents[1], shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var calls int64
		run.Tree.Walk(func(n *cct.Node) {
			if len(n.Metrics) > 0 {
				calls += n.Metrics[0]
			}
		})
		return calls, run.Tree.NumNodes()
	}

	baseCalls, baseNodes := invocations(1)
	if baseCalls == 0 {
		t.Fatal("serial run recorded no invocations")
	}
	for _, k := range []int{2, 4} {
		calls, nodes := invocations(k)
		if nodes != baseNodes {
			t.Errorf("shards=%d: merged tree has %d nodes, serial %d (structure must not change)",
				k, nodes, baseNodes)
		}
		if calls != int64(k)*baseCalls {
			t.Errorf("shards=%d: merged invocation count %d, want %d (k x serial)",
				k, calls, int64(k)*baseCalls)
		}
	}
}
