package experiments

// Blank-importing autovet makes every instrument.Instrument call in this
// test binary verify its output with the ppvet static checkers.
import _ "pathprof/internal/ppvet/autovet"
