// The concurrent experiment engine: a bounded worker pool executing
// Session cells in parallel with singleflight-style deduplication, shared
// per-workload builds and per-(workload, mode) instrumentation plans, and
// context-based cancellation on first error. Cell results are cached and
// assembled in deterministic order by the table generators, so rendered
// tables are byte-identical regardless of worker count or completion order.
package experiments

import (
	"cmp"
	"context"
	"runtime"
	"slices"
	"sync"
	"time"

	"pathprof/internal/hpm"
	"pathprof/internal/instrument"
	"pathprof/internal/ir"
	"pathprof/internal/workload"
)

// CellSpec names one (workload, instrumentation-mode, metric-set) cell.
// Events takes precedence; when empty the legacy Ev0/Ev1 pair stands in for
// the classic two-counter selection.
type CellSpec struct {
	Workload workload.Workload
	Mode     instrument.Mode
	Events   hpm.MetricSet
	Ev0, Ev1 hpm.Event
}

// set returns the effective metric set of the spec.
func (sp CellSpec) set() hpm.MetricSet {
	if sp.Events.Len() > 0 {
		return sp.Events
	}
	return hpm.NewMetricSet(sp.Ev0, sp.Ev1)
}

// flight tracks an in-progress cell so concurrent requests for the same
// key wait for the one simulation instead of duplicating it.
type flight struct {
	done chan struct{}
	cell *Cell
	err  error
}

// progEntry lazily builds a workload's program exactly once per session.
type progEntry struct {
	once sync.Once
	prog *ir.Program
}

// planKey identifies a shared instrumentation plan. counters is the plan's
// normalized counter width (the classic pair is 2), so cells that differ
// only in event selection — not schema width — share one plan.
type planKey struct {
	workload string
	mode     instrument.Mode
	counters int
	k        int // path iteration degree; 0 for non-path modes and classic
}

// planEntry lazily instruments a (workload, mode) pair exactly once.
type planEntry struct {
	once sync.Once
	plan *instrument.Plan
	err  error
}

// CellTiming is one simulated cell's observability record.
type CellTiming struct {
	Workload string
	Mode     string
	Events   string // comma-joined metric schema (MetricSet.Key)
	Wall     time.Duration
	Instrs   uint64 // simulated instructions retired
}

// InstrsPerSec returns the cell's simulation throughput in simulated
// instructions per wall-clock second (0 for a zero-duration cell).
func (t CellTiming) InstrsPerSec() float64 {
	s := t.Wall.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(t.Instrs) / s
}

// workers returns the effective pool size.
func (s *Session) workers() int {
	if s.Parallel > 0 {
		return s.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// builtProg returns the workload's built program, building it at most once
// per session. Programs are immutable after Build (the simulator reads
// them and the instrumenter clones them), so one build backs every cell.
func (s *Session) builtProg(w workload.Workload) *ir.Program {
	s.mu.Lock()
	e, ok := s.progs[w.Name]
	if !ok {
		e = &progEntry{}
		s.progs[w.Name] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.prog = w.Build(s.Scale) })
	return e.prog
}

// sharedPlan returns the classic two-counter (workload, mode) plan; see
// sharedPlanN.
func (s *Session) sharedPlan(w workload.Workload, mode instrument.Mode) (*instrument.Plan, error) {
	return s.sharedPlanN(w, mode, 0)
}

// sharedPlanN returns the (workload, mode, counter-width) instrumentation
// plan, computing it at most once per session (counters <= 0 means the
// classic pair). Plans are immutable after Instrument and Wire allocates
// from a cloned allocator, so cells that differ only in event selection
// share one plan.
func (s *Session) sharedPlanN(w workload.Workload, mode instrument.Mode, counters int) (*instrument.Plan, error) {
	if counters <= 0 {
		counters = 2
	}
	k := 0
	if mode.UsesPaths() && s.K > 1 {
		k = s.K
	}
	key := planKey{w.Name, mode, counters, k}
	s.mu.Lock()
	e, ok := s.plans[key]
	if !ok {
		e = &planEntry{}
		s.plans[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		opts := instrument.DefaultOptions(mode)
		opts.NumCounters = counters
		if k > 1 {
			opts.K = k
		}
		e.plan, e.err = instrument.Instrument(s.builtProg(w), opts)
	})
	return e.plan, e.err
}

// recordTiming appends one completed cell's observability record.
func (s *Session) recordTiming(t CellTiming) {
	s.mu.Lock()
	s.timings = append(s.timings, t)
	s.mu.Unlock()
}

// Timings returns the per-cell observability records for every cell this
// session actually simulated (cache hits do not re-record), sorted by
// workload, mode and counter selection so output is stable regardless of
// completion order. Wall times are real durations and vary run to run.
func (s *Session) Timings() []CellTiming {
	s.mu.Lock()
	out := make([]CellTiming, len(s.timings))
	copy(out, s.timings)
	s.mu.Unlock()
	slices.SortFunc(out, func(a, b CellTiming) int {
		if c := cmp.Compare(a.Workload, b.Workload); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Mode, b.Mode); c != 0 {
			return c
		}
		return cmp.Compare(a.Events, b.Events)
	})
	return out
}

// RunCtx executes (or returns the cached) classic two-counter cell; it is
// the legacy form of RunSetCtx.
func (s *Session) RunCtx(ctx context.Context, w workload.Workload, mode instrument.Mode, ev0, ev1 hpm.Event) (*Cell, error) {
	return s.RunSetCtx(ctx, w, mode, hpm.NewMetricSet(ev0, ev1))
}

// RunSetCtx executes (or returns the cached) cell, deduplicating concurrent
// requests for the same key: only one goroutine simulates a given cell,
// the rest wait on its completion or on ctx.
func (s *Session) RunSetCtx(ctx context.Context, w workload.Workload, mode instrument.Mode, set hpm.MetricSet) (*Cell, error) {
	if set.Len() == 0 {
		set = hpm.DefaultMetricSet()
	}
	key := cellKey{w.Name, mode, set.Key()}
	for {
		s.mu.Lock()
		if c, ok := s.cells[key]; ok {
			s.mu.Unlock()
			return c, nil
		}
		if f, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			select {
			case <-f.done:
				if f.err != nil {
					// The owning call failed (possibly only by
					// cancellation); retry so a live caller can
					// re-attempt rather than inheriting a stale error.
					if ctx.Err() != nil {
						return nil, ctx.Err()
					}
					continue
				}
				return f.cell, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		s.inflight[key] = f
		s.mu.Unlock()

		cell, err := s.simulate(ctx, w, mode, set)

		s.mu.Lock()
		if err == nil {
			s.cells[key] = cell
		}
		delete(s.inflight, key)
		s.mu.Unlock()
		f.cell, f.err = cell, err
		close(f.done)
		return cell, err
	}
}

// RunAll executes the given cells through a bounded worker pool (Parallel
// workers, default GOMAXPROCS) and returns them in spec order. Duplicate
// specs resolve to the same cell. On the first error the remaining work is
// cancelled and that error returned.
func (s *Session) RunAll(ctx context.Context, specs []CellSpec) ([]*Cell, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	n := s.workers()
	if n > len(specs) {
		n = len(specs)
	}
	cells := make([]*Cell, len(specs))
	if n <= 1 {
		// Serial fast path: no goroutines, identical cell order.
		for i, sp := range specs {
			c, err := s.RunSetCtx(ctx, sp.Workload, sp.Mode, sp.set())
			if err != nil {
				return nil, err
			}
			cells[i] = c
		}
		return cells, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		first   error
	)
	jobs := make(chan int)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain: cancelled
				}
				sp := specs[i]
				c, err := s.RunSetCtx(ctx, sp.Workload, sp.Mode, sp.set())
				if err != nil {
					errOnce.Do(func() {
						first = err
						cancel()
					})
					continue
				}
				cells[i] = c
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if first != nil {
		return nil, first
	}
	return cells, nil
}

// runSuite warms the cache for one (mode, events) cell per workload and
// returns the cells in suite order — the common single-mode table shape.
func (s *Session) runSuite(mode instrument.Mode, ev0, ev1 hpm.Event) ([]*Cell, error) {
	specs := make([]CellSpec, len(s.Workloads))
	for i, w := range s.Workloads {
		specs[i] = CellSpec{Workload: w, Mode: mode, Ev0: ev0, Ev1: ev1}
	}
	return s.RunAll(context.Background(), specs)
}
