package experiments

import (
	"fmt"
	"io"

	"pathprof/internal/pgo"
	"pathprof/internal/report"
	"pathprof/internal/workload"
)

// The closed-loop experiment: profile each workload, rewrite it with the
// profile-guided optimizer, and measure the rewrite on the same simulator
// that produced the profile. Emitted both as a before/after table and as
// BENCH_pgo.json for the CI gate.

// PGORecord is one workload's round trip, in the shape BENCH_pgo.json
// stores.
type PGORecord struct {
	Workload string      `json:"workload"`
	Winner   string      `json:"winner"`
	Before   pgo.Metrics `json:"before"`
	After    pgo.Metrics `json:"after"`
	// ProfileBefore/ProfileAfter are instrumented (path-frequency) cycles
	// on the original and optimized program: the re-profile leg.
	ProfileBefore uint64 `json:"profile_before"`
	ProfileAfter  uint64 `json:"profile_after"`
	// Transforms summarizes what the winning rewrite did.
	Transforms string `json:"transforms"`
}

// PGO runs the profile→optimize→verify round trip on workload w.
// RoundTrip hard-fails on any behavioral divergence, so a returned record
// is always from a verified-equivalent rewrite.
func (s *Session) PGO(w workload.Workload, opts pgo.Options) (PGORecord, error) {
	res, err := pgo.RoundTrip(s.builtProg(w), s.SimConfig, opts)
	if err != nil {
		return PGORecord{}, fmt.Errorf("experiments: %s: %w", w.Name, err)
	}
	rec := PGORecord{
		Workload:      w.Name,
		Winner:        res.Winner,
		Before:        res.Before,
		After:         res.After,
		ProfileBefore: res.ProfileBefore,
		ProfileAfter:  res.ProfileAfter,
	}
	if res.Stats != nil {
		rec.Transforms = res.Stats.String()
	} else {
		rec.Transforms = "none (identity)"
	}
	return rec, nil
}

// PGOAll round-trips every session workload in order.
func (s *Session) PGOAll(opts pgo.Options) ([]PGORecord, error) {
	recs := make([]PGORecord, 0, len(s.Workloads))
	for _, w := range s.Workloads {
		rec, err := s.PGO(w, opts)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// RenderPGO writes the before/after comparison as a side-by-side delta
// table.
func RenderPGO(recs []PGORecord, w io.Writer) {
	t := report.DeltaTable(
		"Profile-guided optimization: simulator-verified round trip",
		"Winners are behaviorally verified (byte-identical output and final memory); "+
			"a winner is only accepted when cycles drop and I-cache misses and "+
			"mispredicts do not rise.",
		"Workload", "Winner / transforms",
		[]string{"cycles", "imiss", "misp"},
	)
	for _, r := range recs {
		t.AddDeltaRow(r.Workload, []report.DeltaMetric{
			{Name: "cycles", Before: r.Before.Cycles, After: r.After.Cycles},
			{Name: "imiss", Before: r.Before.ICacheMiss, After: r.After.ICacheMiss},
			{Name: "misp", Before: r.Before.Mispredicts, After: r.After.Mispredicts},
		}, r.Winner+": "+r.Transforms)
	}
	t.Render(w)
}

// CheckPGOGate enforces the CI acceptance criterion on the named
// workloads: strict cycle reduction with non-increasing I-cache misses
// and mispredicts. Returns one error per violated workload.
func CheckPGOGate(recs []PGORecord, gate []string) []error {
	byName := make(map[string]PGORecord, len(recs))
	for _, r := range recs {
		byName[r.Workload] = r
	}
	var errs []error
	for _, name := range gate {
		r, ok := byName[name]
		if !ok {
			errs = append(errs, fmt.Errorf("pgo gate: workload %q not in results", name))
			continue
		}
		if r.After.Cycles >= r.Before.Cycles {
			errs = append(errs, fmt.Errorf("pgo gate: %s: cycles did not improve (%d -> %d)",
				name, r.Before.Cycles, r.After.Cycles))
		}
		if r.After.ICacheMiss > r.Before.ICacheMiss {
			errs = append(errs, fmt.Errorf("pgo gate: %s: icache misses rose (%d -> %d)",
				name, r.Before.ICacheMiss, r.After.ICacheMiss))
		}
		if r.After.Mispredicts > r.Before.Mispredicts {
			errs = append(errs, fmt.Errorf("pgo gate: %s: mispredicts rose (%d -> %d)",
				name, r.Before.Mispredicts, r.After.Mispredicts))
		}
	}
	return errs
}
