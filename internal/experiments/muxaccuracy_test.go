package experiments

import (
	"reflect"
	"testing"

	"pathprof/internal/hpm"
	"pathprof/internal/instrument"
	"pathprof/internal/workload"
)

// TestMuxAccuracy is the acceptance check for multiplexed scheduling: a
// four-event set on the default two-counter bank must estimate every
// high-frequency event within 5% of a dedicated-counter run of the same
// deterministic workload.
func TestMuxAccuracy(t *testing.T) {
	s := NewSession(workload.Test)
	w, ok := workload.ByName("compress")
	if !ok {
		t.Fatal("no compress workload")
	}
	set := hpm.NewMetricSet(hpm.EvCycles, hpm.EvInsts, hpm.EvLoads, hpm.EvBranches)
	rows, err := s.MuxAccuracy(w, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != set.Len() {
		t.Fatalf("got %d rows, want %d", len(rows), set.Len())
	}
	for _, r := range rows {
		if r.Dedicated == 0 {
			t.Fatalf("%s: dedicated run counted nothing", r.Event)
		}
		if r.ErrPct > 5 {
			t.Errorf("%s: estimate %d vs dedicated %d = %.2f%% error, want <= 5%%",
				r.Event, r.Estimate, r.Dedicated, r.ErrPct)
		}
	}

	// The multiplexed cell recorded scaled estimates and no profile.
	cell, err := s.RunSet(w, instrument.ModeNone, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(cell.Estimates) != set.Len() {
		t.Fatalf("cell estimates = %v", cell.Estimates)
	}

	// Determinism: a fresh session replays the identical schedule and
	// reproduces the rows bit for bit.
	again, err := NewSession(workload.Test).MuxAccuracy(w, set)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, again) {
		t.Fatalf("mux accuracy not deterministic:\n%+v\n%+v", rows, again)
	}
}

// TestMuxAccuracyExactWhenSetFits: a set no wider than the bank needs no
// multiplexing, so the comparison degenerates to exact equality.
func TestMuxAccuracyExactWhenSetFits(t *testing.T) {
	s := NewSession(workload.Test)
	w, ok := workload.ByName("interp")
	if !ok {
		t.Fatal("no interp workload")
	}
	rows, err := s.MuxAccuracy(w, hpm.DefaultMetricSet())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Estimate != r.Dedicated || r.ErrPct != 0 {
			t.Fatalf("%s: exact run diverged: %+v", r.Event, r)
		}
	}
}
