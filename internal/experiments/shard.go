package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pathprof/internal/cct"
	"pathprof/internal/hpm"
	"pathprof/internal/instrument"
	"pathprof/internal/sim"
	"pathprof/internal/workload"
)

// Sharded collection: the paper's instrumentation writes the CCT heap at
// program exit and merges trees from repeated runs offline. CollectSharded
// models that workflow in-process — every shard is an independent
// instrumented execution wired from the shared plan onto its own machine,
// built concurrently on the session's worker pool, and the per-shard trees
// are reduced by cct.MergeTrees (tree-structured pairwise merge).
//
// Workloads are deterministic, so all shards build structurally identical
// trees and the merged tree's shape statistics (everything Table 3 renders)
// are byte-identical to a single serial run at any shard count; only the
// accumulated counters scale with the number of shards. See EXPERIMENTS.md.

// ShardedRun is the result of a sharded collection: the merged tree plus
// the per-shard simulation results.
type ShardedRun struct {
	Tree    *cct.Tree
	Results []sim.Result
	Plan    *instrument.Plan
}

// CollectSharded executes `shards` instrumented runs of w under mode
// (which must be a CCT-building mode) and merges the per-shard trees into
// shard 0's tree.
func (s *Session) CollectSharded(ctx context.Context, w workload.Workload, mode instrument.Mode, ev0, ev1 hpm.Event, shards int) (*ShardedRun, error) {
	if !mode.UsesCCT() {
		return nil, fmt.Errorf("experiments: sharded collection needs a CCT mode, got %v", mode)
	}
	if shards < 1 {
		shards = 1
	}
	plan, err := s.sharedPlan(w, mode)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s %v: %w", w.Name, mode, err)
	}

	start := time.Now()
	trees := make([]*cct.Tree, shards)
	results := make([]sim.Result, shards)
	errs := make([]error, shards)

	n := s.workers()
	if n > shards {
		n = shards
	}
	runShard := func(i int) {
		if ctx.Err() != nil {
			errs[i] = ctx.Err()
			return
		}
		m := sim.New(plan.Prog, s.SimConfig)
		m.PMU().Select(ev0, ev1)
		rt := plan.Wire(m)
		res, err := m.Run()
		if err != nil {
			errs[i] = fmt.Errorf("experiments: %s %v shard %d: %w", w.Name, mode, i, err)
			return
		}
		trees[i] = rt.Tree
		results[i] = res
	}
	if n <= 1 {
		for i := 0; i < shards; i++ {
			runShard(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for k := 0; k < n; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					runShard(i)
				}
			}()
		}
		for i := 0; i < shards; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	merged, err := cct.MergeTrees(trees)
	if err != nil {
		return nil, err
	}
	var instrs uint64
	for _, r := range results {
		instrs += r.Instrs
	}
	s.recordTiming(CellTiming{
		Workload: w.Name,
		Mode:     fmt.Sprintf("%v(x%d shards)", mode, shards),
		Events:   hpm.NewMetricSet(ev0, ev1).Key(),
		Wall:     time.Since(start),
		Instrs:   instrs,
	})
	return &ShardedRun{Tree: merged, Results: results, Plan: plan}, nil
}

// Table3Sharded builds Table 3 from sharded collection: every workload's
// combined flow+context CCT is collected over the given shard count and
// merged. The rendered rows are byte-identical to Table3's at any shard
// count (shape statistics are invariant under merging identical runs).
func (s *Session) Table3Sharded(shards int) ([]Table3Row, error) {
	runs := make([]*ShardedRun, len(s.Workloads))
	errs := make([]error, len(s.Workloads))
	// Workloads run serially here; each one's shards already occupy the
	// worker pool.
	for i, w := range s.Workloads {
		runs[i], errs[i] = s.CollectSharded(context.Background(),
			w, instrument.ModeContextFlow, StandardEvents[0], StandardEvents[1], shards)
	}
	var rows []Table3Row
	for i, w := range s.Workloads {
		if errs[i] != nil {
			return nil, errs[i]
		}
		rows = append(rows, Table3Row{Name: w.Name, Stats: runs[i].Tree.ComputeStats()})
	}
	return rows, nil
}
