package experiments

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"pathprof/internal/instrument"
)

// TestRunCtxDeduplicates hammers one cell key from many goroutines: exactly
// one simulation may run, and every caller must get the same *Cell.
func TestRunCtxDeduplicates(t *testing.T) {
	s := subsetSession(t)
	w := s.Workloads[0]
	const callers = 32
	cells := make([]*Cell, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := s.RunCtx(context.Background(), w, instrument.ModePathHW, StandardEvents[0], StandardEvents[1])
			if err != nil {
				t.Error(err)
				return
			}
			cells[i] = c
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if cells[i] != cells[0] {
			t.Fatalf("caller %d got a different cell", i)
		}
	}
	if n := len(s.Timings()); n != 1 {
		t.Fatalf("simulated %d cells for one key (dedup failed)", n)
	}
}

// TestRunAllDuplicateSpecs: duplicate specs in one batch resolve to one
// simulation and identical cell pointers, in spec order.
func TestRunAllDuplicateSpecs(t *testing.T) {
	s := subsetSession(t)
	s.Parallel = 8
	spec := CellSpec{Workload: s.Workloads[0], Mode: instrument.ModeContextFlow,
		Ev0: StandardEvents[0], Ev1: StandardEvents[1]}
	specs := make([]CellSpec, 16)
	for i := range specs {
		specs[i] = spec
	}
	cells, err := s.RunAll(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		if c == nil || c != cells[0] {
			t.Fatalf("spec %d: cell not deduplicated", i)
		}
	}
	if n := len(s.Timings()); n != 1 {
		t.Fatalf("simulated %d cells for 16 duplicate specs", n)
	}
}

// renderEverything regenerates every table the CLI can print through one
// session and returns the concatenated rendering.
func renderEverything(t *testing.T, s *Session) string {
	t.Helper()
	var sb strings.Builder
	t1, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	RenderTable1(t1, &sb)
	ext, err := s.Table1Ext()
	if err != nil {
		t.Fatal(err)
	}
	RenderTable1Ext(ext, &sb)
	t2, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	RenderTable2(t2, &sb)
	t3, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	RenderTable3(t3, &sb)
	t4, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	RenderTable4(t4, &sb)
	mult, err := s.Multiplicity()
	if err != nil {
		t.Fatal(err)
	}
	RenderMultiplicity(mult, &sb)
	t5, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	RenderTable5(t5, &sb)
	t6, err := s.Spectrum(2000)
	if err != nil {
		t.Fatal(err)
	}
	RenderSpectrum(t6, &sb)
	return sb.String()
}

// TestParallelRenderingIdentical is the engine's central guarantee: the
// full table suite renders byte-identically at any worker count.
func TestParallelRenderingIdentical(t *testing.T) {
	serial := subsetSession(t)
	serial.Parallel = 1
	wide := subsetSession(t)
	wide.Parallel = 8
	a := renderEverything(t, serial)
	b := renderEverything(t, wide)
	if a != b {
		t.Fatal("parallel rendering differs from serial")
	}
	if len(serial.Timings()) != len(wide.Timings()) {
		t.Fatalf("cell counts differ: serial %d, parallel %d",
			len(serial.Timings()), len(wide.Timings()))
	}
}

// TestRunAllCancelsOnError: a failing cell cancels the batch and surfaces
// its error, not a cancellation error.
func TestRunAllCancelsOnError(t *testing.T) {
	s := subsetSession(t)
	s.Parallel = 4
	s.SimConfig.MaxSteps = 100 // every simulation exhausts its budget
	var specs []CellSpec
	for _, w := range s.Workloads {
		for _, mode := range []instrument.Mode{instrument.ModeNone, instrument.ModePathHW} {
			specs = append(specs, CellSpec{Workload: w, Mode: mode,
				Ev0: StandardEvents[0], Ev1: StandardEvents[1]})
		}
	}
	cells, err := s.RunAll(context.Background(), specs)
	if err == nil {
		t.Fatal("expected a step-budget error")
	}
	if !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("unexpected error: %v", err)
	}
	if cells != nil {
		t.Fatal("cells returned alongside an error")
	}
}

// TestRunCtxRespectsCancel: an already-cancelled context fails fast without
// simulating anything.
func TestRunCtxRespectsCancel(t *testing.T) {
	s := subsetSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.RunAll(ctx, []CellSpec{{Workload: s.Workloads[0], Mode: instrument.ModeNone,
		Ev0: StandardEvents[0], Ev1: StandardEvents[1]}})
	if err == nil {
		t.Fatal("expected context error")
	}
}

// TestTimings: the observability records cover exactly the simulated cells
// and carry plausible instruction counts.
func TestTimings(t *testing.T) {
	s := subsetSession(t)
	if _, err := s.Table1(); err != nil {
		t.Fatal(err)
	}
	ts := s.Timings()
	// Table 1: 4 modes x 2 workloads.
	if len(ts) != 8 {
		t.Fatalf("timings = %d, want 8", len(ts))
	}
	for _, tm := range ts {
		if tm.Instrs == 0 {
			t.Errorf("%s/%s: zero instructions", tm.Workload, tm.Mode)
		}
		if tm.Wall > 0 && tm.InstrsPerSec() <= 0 {
			t.Errorf("%s/%s: bad throughput", tm.Workload, tm.Mode)
		}
	}
	// Re-running a cached table adds no new records.
	if _, err := s.Table1(); err != nil {
		t.Fatal(err)
	}
	if len(s.Timings()) != 8 {
		t.Fatal("cache hits re-recorded timings")
	}
}

// TestSharedPlanIsolation: cells sharing one instrumentation plan must not
// perturb each other — the cached cell equals one from a fresh session.
func TestSharedPlanIsolation(t *testing.T) {
	shared := subsetSession(t)
	w := shared.Workloads[0]
	// Force the shared plan to be wired twice for the same (workload, mode).
	c1, err := shared.Run(w, instrument.ModePathHW, StandardEvents[0], StandardEvents[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shared.Run(w, instrument.ModePathHW, PerturbationPairs[0][0], PerturbationPairs[0][1]); err != nil {
		t.Fatal(err)
	}

	fresh := subsetSession(t)
	c2, err := fresh.Run(w, instrument.ModePathHW, StandardEvents[0], StandardEvents[1])
	if err != nil {
		t.Fatal(err)
	}
	if c1.Result.Instrs != c2.Result.Instrs || c1.Result.Cycles != c2.Result.Cycles ||
		!reflect.DeepEqual(c1.Result.Totals, c2.Result.Totals) {
		t.Fatalf("shared-plan cell diverged:\nshared: %+v\nfresh:  %+v", c1.Result, c2.Result)
	}
}
