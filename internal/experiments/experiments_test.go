package experiments

import (
	"strings"
	"testing"

	"pathprof/internal/instrument"
	"pathprof/internal/workload"
)

// subsetSession keeps the tests fast: two contrasting workloads.
func subsetSession(t *testing.T) *Session {
	t.Helper()
	s := NewSession(workload.Test)
	var subset []workload.Workload
	for _, name := range []string{"compress", "mesh"} {
		w, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("missing workload %s", name)
		}
		subset = append(subset, w)
	}
	s.Workloads = subset
	return s
}

func TestTable1Shapes(t *testing.T) {
	s := subsetSession(t)
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		f, c, cf := r.Overheads()
		for name, x := range map[string]float64{"flow+hw": f, "ctx+hw": c, "ctx+flow": cf} {
			if x <= 1.0 || x > 6.0 {
				t.Errorf("%s: %s overhead %v out of plausible range", r.Name, name, x)
			}
		}
	}
	var sb strings.Builder
	RenderTable1(rows, &sb)
	for _, want := range []string{"Table 1", "compress", "mesh", "Suite avg"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	s := subsetSession(t)
	rows, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Cycle and instruction ratios must show plausible perturbation:
		// at least 1 (instrumentation adds work) and below the overhead cap.
		for _, v := range []float64{r.F[0], r.F[1], r.C[0], r.C[1]} {
			if v < 0.9 || v > 6 {
				t.Errorf("%s: cycles/insts ratio %v out of range", r.Name, v)
			}
		}
	}
	var sb strings.Builder
	RenderTable2(rows, &sb)
	if !strings.Contains(sb.String(), "Cycles F") {
		t.Error("render missing metric columns")
	}
}

func TestTable3Shapes(t *testing.T) {
	s := subsetSession(t)
	rows, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		st := r.Stats
		if st.Nodes == 0 || st.SizeBytes == 0 {
			t.Errorf("%s: empty CCT", r.Name)
		}
		if st.CallSitesUsed > st.CallSitesTotal || st.OnePathSites > st.CallSitesUsed {
			t.Errorf("%s: inconsistent call-site stats %+v", r.Name, st)
		}
	}
	var sb strings.Builder
	RenderTable3(rows, &sb)
	if !strings.Contains(sb.String(), "MaxRepl") {
		t.Error("render missing columns")
	}
}

func TestTables4And5Consistent(t *testing.T) {
	s := subsetSession(t)
	t4, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	t5, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	for i, r4 := range t4 {
		std := r4.Std
		if std.Hot.Num+std.Cold.Num != std.NumPaths {
			t.Errorf("%s: hot+cold != all paths", r4.Name)
		}
		if std.Dense.Num+std.Sparse.Num != std.Hot.Num {
			t.Errorf("%s: dense+sparse != hot", r4.Name)
		}
		if std.Hot.Misses+std.Cold.Misses != std.TotalMisses {
			t.Errorf("%s: class misses do not sum", r4.Name)
		}
		// Tables 4 and 5 come from the same profile: total misses agree.
		if t5[i].TotalMisses != std.TotalMisses {
			t.Errorf("%s: Table4 misses %d != Table5 misses %d", r4.Name, std.TotalMisses, t5[i].TotalMisses)
		}
		// The central claim: hot paths concentrate the misses.
		if std.Hot.MissFrac(std.TotalMisses) < 0.5 && r4.Low == nil {
			t.Errorf("%s: poor hot coverage without a low-threshold rerun", r4.Name)
		}
	}
	var sb strings.Builder
	RenderTable4(t4, &sb)
	RenderTable5(t5, &sb)
	if !strings.Contains(sb.String(), "Table 4") || !strings.Contains(sb.String(), "Table 5") {
		t.Error("renders incomplete")
	}
}

func TestSessionCaching(t *testing.T) {
	s := subsetSession(t)
	w := s.Workloads[0]
	c1, err := s.Run(w, instrument.ModePathHW, StandardEvents[0], StandardEvents[1])
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Run(w, instrument.ModePathHW, StandardEvents[0], StandardEvents[1])
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("identical cells not cached")
	}
	c3, err := s.Run(w, instrument.ModePathHW, PerturbationPairs[0][0], PerturbationPairs[0][1])
	if err != nil {
		t.Fatal(err)
	}
	if c3 == c1 {
		t.Fatal("different counter selection must not share a cell")
	}
}

// TestContextProfileMatchesRun: the context+HW "recorded" totals (main's
// inclusive deltas) track the instrumented run's own totals closely.
func TestContextProfileMatchesRun(t *testing.T) {
	s := subsetSession(t)
	w := s.Workloads[0]
	cell, err := s.Run(w, instrument.ModeContextHW, StandardEvents[0], StandardEvents[1])
	if err != nil {
		t.Fatal(err)
	}
	_, ms := cell.Profile.Totals()
	m0, m1 := ms[0], ms[1]
	if m1 == 0 {
		t.Fatal("no instructions recorded")
	}
	runInsts := cell.Result.Instrs
	if m1 > runInsts || m1 < runInsts/2 {
		t.Fatalf("recorded insts %d vs run insts %d", m1, runInsts)
	}
	_ = m0
}

// TestSpectrumShape: the Figure 4 spectrum — DCG smallest, CCT bounded,
// DCT proportional to calls.
func TestSpectrumShape(t *testing.T) {
	s := subsetSession(t)
	w, _ := workload.ByName("objdb")
	s.Workloads = append(s.Workloads, w)
	rows, err := s.Spectrum(500)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if uint64(r.DCTNodes) != r.Calls+1 {
			t.Errorf("%s: DCT nodes %d != calls+1 %d", r.Name, r.DCTNodes, r.Calls+1)
		}
		if r.CCTNodes > r.DCTNodes {
			t.Errorf("%s: CCT (%d) larger than DCT (%d)", r.Name, r.CCTNodes, r.DCTNodes)
		}
		if r.DCGArcs > r.CCTNodes+1 {
			t.Errorf("%s: DCG arcs %d exceed CCT nodes+1 %d", r.Name, r.DCGArcs, r.CCTNodes+1)
		}
	}
	// objdb: heavy call volume makes the DCT far larger than the CCT.
	last := rows[len(rows)-1]
	if last.DCTNodes < 20*last.CCTNodes {
		t.Errorf("objdb: DCT %d not much larger than CCT %d", last.DCTNodes, last.CCTNodes)
	}
	var sb strings.Builder
	RenderSpectrum(rows, &sb)
	if !strings.Contains(sb.String(), "Table 6") {
		t.Error("render missing title")
	}
}

// TestDeterministicRendering: two independent sessions over the same
// workloads render byte-identical tables (the whole stack is deterministic).
func TestDeterministicRendering(t *testing.T) {
	render := func() string {
		s := subsetSession(t)
		var sb strings.Builder
		t1, err := s.Table1()
		if err != nil {
			t.Fatal(err)
		}
		RenderTable1(t1, &sb)
		t4, err := s.Table4()
		if err != nil {
			t.Fatal(err)
		}
		RenderTable4(t4, &sb)
		t3, err := s.Table3()
		if err != nil {
			t.Fatal(err)
		}
		RenderTable3(t3, &sb)
		return sb.String()
	}
	a := render()
	b := render()
	if a != b {
		t.Fatal("experiment rendering is nondeterministic")
	}
}
