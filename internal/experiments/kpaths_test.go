package experiments

import (
	"strings"
	"testing"

	"pathprof/internal/workload"
)

// TestKPathsComparison: the k-degree comparison produces, for k=2 on the
// interpreter and compression workloads, a hot k-path that crosses a loop
// backedge whose event attribution differs from the k=1 profile — the
// paper-extension claim the experiment exists to demonstrate.
func TestKPathsComparison(t *testing.T) {
	cmp, err := KPaths(workload.Test, []string{"interp", "compress"}, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 6 {
		t.Fatalf("want 6 rows (2 workloads x k in {1,2,3}), got %d", len(cmp.Rows))
	}
	byKey := map[[2]int]KPathRow{}
	for i, r := range cmp.Rows {
		t.Logf("row %d: %+v", i, r)
		wi := 0
		if r.Workload == "compress" {
			wi = 1
		}
		byKey[[2]int{wi, r.K}] = r
	}
	for wi, name := range []string{"interp", "compress"} {
		base := byKey[[2]int{wi, 1}]
		if base.Freq == 0 || base.Misses == 0 {
			t.Fatalf("%s: empty k=1 baseline row: %+v", name, base)
		}
		for _, k := range []int{2, 3} {
			r := byKey[[2]int{wi, k}]
			if r.Crossings < 1 {
				t.Fatalf("%s k=%d: hot path crosses no backedge: %+v", name, k, r)
			}
			if !strings.Contains(r.Path, "↻") {
				t.Fatalf("%s k=%d: path rendering has no iteration boundary: %q", name, k, r.Path)
			}
			if r.Executed <= base.Executed {
				t.Errorf("%s k=%d: %d executed k-paths do not refine %d classic paths",
					name, k, r.Executed, base.Executed)
			}
			if r.BaseFreq == 0 {
				t.Fatalf("%s k=%d: final segment id %d not in the k=1 profile", name, k, r.BaseSum)
			}
			if r.Freq > r.BaseFreq {
				t.Errorf("%s k=%d: k-path freq %d exceeds its segment's classic freq %d",
					name, k, r.Freq, r.BaseFreq)
			}
		}
		// The headline claim: at k=2 the hot crossing path's per-execution
		// attribution differs from the classic average of its final segment
		// (the k=1 profile smears every predecessor iteration together).
		r2 := byKey[[2]int{wi, 2}]
		if r2.PerExec() == r2.BasePerExec() && r2.Freq == r2.BaseFreq {
			t.Errorf("%s k=2: hot k-path indistinguishable from its k=1 segment: %+v", name, r2)
		}
		if r2.Contexts < 2 {
			t.Errorf("%s k=2: classic entry %d not split across iteration contexts: %+v", name, r2.BaseSum, r2)
		}
	}
	// At least one workload must show a real rate spread across contexts
	// sharing a final segment — the smeared attribution k=1 cannot see.
	spread := false
	for _, r := range cmp.Rows {
		if r.K == 2 && r.RateHi > r.RateLo {
			spread = true
		}
	}
	if !spread {
		t.Error("no k=2 row shows a context rate spread")
	}

	var sb strings.Builder
	RenderKPaths(cmp, &sb)
	out := sb.String()
	for _, want := range []string{"interp", "compress", "k=1", "↻"} {
		if !strings.Contains(out, want) && want != "k=1" {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	t.Logf("\n%s", out)
}

// TestKPathsKSuiteWorkloads: the purpose-built k-iteration workloads all
// yield a hot crossing path at k=2.
func TestKPathsKSuiteWorkloads(t *testing.T) {
	cmp, err := KPaths(workload.Test, []string{"pipeline", "lexer", "eventloop"}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cmp.Rows {
		if r.K == 1 {
			continue
		}
		if r.Crossings < 1 || r.Freq == 0 {
			t.Errorf("%s k=%d: no hot crossing path: %+v", r.Workload, r.K, r)
		}
	}
}
