package experiments

import (
	"strings"
	"testing"

	"pathprof/internal/pgo"
	"pathprof/internal/workload"
)

func TestPGORecordAndGate(t *testing.T) {
	s := NewSession(workload.Test)
	w, _ := workload.ByName("interp")
	rec, err := s.PGO(w, pgo.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Workload != "interp" {
		t.Fatalf("workload name %q", rec.Workload)
	}
	if rec.After.Cycles >= rec.Before.Cycles {
		t.Fatalf("expected cycle reduction on interp: %d -> %d", rec.Before.Cycles, rec.After.Cycles)
	}
	if rec.ProfileBefore == 0 || rec.ProfileAfter == 0 {
		t.Fatal("re-profile leg missing")
	}

	if errs := CheckPGOGate([]PGORecord{rec}, []string{"interp"}); len(errs) > 0 {
		t.Fatalf("gate failed: %v", errs)
	}
	// A regressing record must trip the gate.
	bad := rec
	bad.After = bad.Before
	errs := CheckPGOGate([]PGORecord{bad}, []string{"interp"})
	if len(errs) == 0 {
		t.Fatal("gate accepted a non-improving record")
	}
	if errs2 := CheckPGOGate([]PGORecord{rec}, []string{"nosuch"}); len(errs2) != 1 ||
		!strings.Contains(errs2[0].Error(), "not in results") {
		t.Fatalf("missing-workload gate: %v", errs2)
	}
}

func TestRenderPGO(t *testing.T) {
	recs := []PGORecord{{
		Workload: "w1", Winner: "full",
		Before:     pgo.Metrics{Cycles: 1000, ICacheMiss: 10, Mispredicts: 5},
		After:      pgo.Metrics{Cycles: 900, ICacheMiss: 10, Mispredicts: 5},
		Transforms: "threaded 1",
	}}
	var sb strings.Builder
	RenderPGO(recs, &sb)
	out := sb.String()
	for _, want := range []string{"w1", "-10.00%", "full: threaded 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
