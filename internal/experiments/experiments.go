// Package experiments regenerates every table of the paper's evaluation
// (Section 6): profiling overhead (Table 1), metric perturbation (Table 2),
// CCT statistics (Table 3), and the hot-path and hot-procedure analyses of
// L1 data-cache misses (Tables 4 and 5). The same entry points back the
// cmd/experiments binary and the repository's benchmark harness.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"pathprof/internal/analysis"
	"pathprof/internal/bl"
	"pathprof/internal/cct"
	"pathprof/internal/hpm"
	"pathprof/internal/instrument"
	"pathprof/internal/profile"
	"pathprof/internal/report"
	"pathprof/internal/sim"
	"pathprof/internal/workload"
)

// Session caches runs so tables sharing a configuration (e.g. Tables 4 and
// 5 both need the flow+HW miss profile) execute each workload once. A
// Session is safe for concurrent use: cells are deduplicated singleflight
// style, and each workload's built program and each (workload, mode)
// instrumentation plan are computed once and shared across cells.
type Session struct {
	Scale     workload.Scale
	Workloads []workload.Workload
	SimConfig sim.Config

	// Parallel bounds the engine's worker pool (see RunAll); <= 0 means
	// GOMAXPROCS. Table output is identical for every value.
	Parallel int

	// K is the path iteration degree applied to path-mode plans (see
	// bl.ExtendK); 0 or 1 selects classic acyclic paths. Set it before the
	// first Run: cached cells are not invalidated by later changes.
	K int

	mu       sync.Mutex
	cells    map[cellKey]*Cell
	inflight map[cellKey]*flight
	progs    map[string]*progEntry
	plans    map[planKey]*planEntry
	timings  []CellTiming
}

type cellKey struct {
	workload string
	mode     instrument.Mode
	events   string // MetricSet.Key of the cell's schema
}

// Cell is one completed (workload, mode, metric-set) run.
type Cell struct {
	Workload string
	Mode     instrument.Mode
	Events   hpm.MetricSet
	Result   sim.Result
	Profile  *profile.Profile // nil for ModeNone / ModeEdgeCount
	Tree     *cct.Tree        // nil unless a context mode
	Plan     *instrument.Plan

	// Estimates holds the multiplexed scaled per-event estimates when the
	// cell's schema was wider than the counter bank and ran behind the
	// time-multiplexing scheduler (ModeNone only); nil otherwise.
	Estimates []uint64
}

// NewSession prepares a session over the full suite at the given scale.
func NewSession(scale workload.Scale) *Session {
	return &Session{
		Scale:     scale,
		Workloads: workload.Suite(),
		SimConfig: sim.DefaultConfig(),
		cells:     make(map[cellKey]*Cell),
		inflight:  make(map[cellKey]*flight),
		progs:     make(map[string]*progEntry),
		plans:     make(map[planKey]*planEntry),
	}
}

// StandardEvents is the counter selection used by the main experiments:
// PIC0 counts L1 D-cache misses, PIC1 counts instructions.
var StandardEvents = [2]hpm.Event{hpm.EvDCacheMiss, hpm.EvInsts}

// PerturbationPairs covers the eight Table 2 metrics, two per run.
var PerturbationPairs = [][2]hpm.Event{
	{hpm.EvCycles, hpm.EvInsts},
	{hpm.EvDCacheReadMiss, hpm.EvDCacheWriteMiss},
	{hpm.EvICacheMiss, hpm.EvMispredictStalls},
	{hpm.EvStoreBufStalls, hpm.EvFPStalls},
}

// Run executes (or returns the cached) classic two-counter cell. It is
// safe for concurrent use; see RunCtx for the cancellable form and RunSet
// for wider metric schemas.
func (s *Session) Run(w workload.Workload, mode instrument.Mode, ev0, ev1 hpm.Event) (*Cell, error) {
	return s.RunCtx(context.Background(), w, mode, ev0, ev1)
}

// RunSet executes (or returns the cached) cell under an arbitrary metric
// set. Instrumented modes get a counter bank and instrumentation plan as
// wide as the set; under ModeNone a set wider than the configured bank runs
// behind the multiplexing scheduler and fills Cell.Estimates.
func (s *Session) RunSet(w workload.Workload, mode instrument.Mode, set hpm.MetricSet) (*Cell, error) {
	return s.RunSetCtx(context.Background(), w, mode, set)
}

// RunFresh executes the classic two-counter cell without consulting or
// populating the session cache; see RunFreshSet.
func (s *Session) RunFresh(ctx context.Context, w workload.Workload, mode instrument.Mode, ev0, ev1 hpm.Event) (*Cell, error) {
	return s.RunFreshSet(ctx, w, mode, hpm.NewMetricSet(ev0, ev1))
}

// RunFreshSet executes the cell without consulting or populating the
// session cache: every call is an independent instrumented run (the
// workload build and the instrumentation plan are still shared). Collection
// clients use it so repeated pushes upload genuinely re-collected trees
// rather than one cached pointer.
func (s *Session) RunFreshSet(ctx context.Context, w workload.Workload, mode instrument.Mode, set hpm.MetricSet) (*Cell, error) {
	return s.simulate(ctx, w, mode, set)
}

// simulate performs the actual cell run (no caching; RunSetCtx layers the
// singleflight cache on top).
func (s *Session) simulate(ctx context.Context, w workload.Workload, mode instrument.Mode, set hpm.MetricSet) (*Cell, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if set.Len() == 0 {
		set = hpm.DefaultMetricSet()
	}
	start := time.Now()
	cell := &Cell{Workload: w.Name, Mode: mode, Events: set}
	cfg := s.SimConfig
	bank := cfg.NumCounters
	if bank <= 0 {
		bank = 2
	}
	if mode == instrument.ModeNone {
		m := sim.New(s.builtProg(w), cfg)
		var sched *hpm.Scheduler
		if set.Len() <= bank {
			m.PMU().SelectAll(set.Events)
		} else {
			sched = m.AttachScheduler(set, 0)
		}
		res, err := m.Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s base: %w", w.Name, err)
		}
		cell.Result = res
		if sched != nil {
			cell.Estimates = sched.Estimates()
		}
	} else {
		// Instrumented probes read the counters directly, so the schema
		// must fit in dedicated counters: widen the simulated bank (and the
		// plan) rather than multiplex.
		if set.Len() > bank {
			cfg.NumCounters = set.Len()
		}
		plan, err := s.sharedPlanN(w, mode, set.Len())
		if err != nil {
			return nil, fmt.Errorf("experiments: %s %v: %w", w.Name, mode, err)
		}
		m := sim.New(plan.Prog, cfg)
		m.PMU().SelectAll(set.Events)
		rt := plan.Wire(m)
		res, err := m.Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s %v: %w", w.Name, mode, err)
		}
		cell.Result = res
		cell.Plan = plan
		cell.Tree = rt.Tree
		if mode.UsesPaths() || mode == instrument.ModePathHW || mode == instrument.ModeBlockHW {
			cell.Profile = rt.ExtractProfile()
		}
		if mode == instrument.ModeContextHW {
			cell.Profile = contextProfile(rt)
		}
	}
	s.recordTiming(CellTiming{
		Workload: w.Name,
		Mode:     mode.String(),
		Events:   set.Key(),
		Wall:     time.Since(start),
		Instrs:   cell.Result.Instrs,
	})
	return cell, nil
}

// contextProfile summarizes a context+HW run: the recorded metrics are the
// root (main) record's inclusive deltas, standing for "what the profiler
// measured for the whole program". One metric column per selected counter.
func contextProfile(rt *instrument.Runtime) *profile.Profile {
	p := &profile.Profile{Program: rt.Plan.Prog.Name, Mode: rt.Plan.Mode.String()}
	nc := rt.Plan.Opts.NumCounters
	sel := rt.Machine.PMU().SelectedAll()
	p.Events = make([]string, nc)
	for k := 0; k < nc; k++ {
		ev := hpm.EvNone
		if k < len(sel) {
			ev = sel[k]
		}
		p.Events[k] = ev.String()
	}
	sums := make([]uint64, nc)
	mainID := rt.Plan.Prog.Main
	rt.Tree.Walk(func(n *cct.Node) {
		if n.Proc == mainID && len(n.Metrics) >= 1+nc {
			for k := 0; k < nc; k++ {
				sums[k] += uint64(n.Metrics[1+k])
			}
		}
	})
	pp := &profile.ProcPaths{ProcID: mainID, Name: "main", NumPaths: 1}
	en := profile.PathEntry{Sum: 0, Freq: 1, Metrics: pp.NewMetrics(nc)}
	copy(en.Metrics, sums)
	pp.Entries = []profile.PathEntry{en}
	p.Procs = append(p.Procs, pp)
	return p
}

// --- Table 1: overhead ---

// Table1Row holds one benchmark's overhead measurements (simulated cycles
// stand in for wall-clock seconds).
type Table1Row struct {
	Name        string
	Class       workload.Class
	BaseCycles  uint64
	FlowHW      uint64
	ContextHW   uint64
	ContextFlow uint64
}

// Overheads returns the three cycle ratios (x base).
func (r Table1Row) Overheads() (flowHW, ctxHW, ctxFlow float64) {
	b := float64(r.BaseCycles)
	return float64(r.FlowHW) / b, float64(r.ContextHW) / b, float64(r.ContextFlow) / b
}

// table1Modes are the four cells Table 1 needs per workload.
var table1Modes = []instrument.Mode{
	instrument.ModeNone, instrument.ModePathHW,
	instrument.ModeContextHW, instrument.ModeContextFlow,
}

// Table1 measures profiling overhead for every workload. The cells are
// executed through the parallel engine; rows are assembled from the cache
// in suite order, so output is independent of completion order.
func (s *Session) Table1() ([]Table1Row, error) {
	var specs []CellSpec
	for _, w := range s.Workloads {
		for _, mode := range table1Modes {
			specs = append(specs, CellSpec{Workload: w, Mode: mode, Ev0: StandardEvents[0], Ev1: StandardEvents[1]})
		}
	}
	if _, err := s.RunAll(context.Background(), specs); err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, w := range s.Workloads {
		base, err := s.Run(w, instrument.ModeNone, StandardEvents[0], StandardEvents[1])
		if err != nil {
			return nil, err
		}
		fhw, err := s.Run(w, instrument.ModePathHW, StandardEvents[0], StandardEvents[1])
		if err != nil {
			return nil, err
		}
		chw, err := s.Run(w, instrument.ModeContextHW, StandardEvents[0], StandardEvents[1])
		if err != nil {
			return nil, err
		}
		cfl, err := s.Run(w, instrument.ModeContextFlow, StandardEvents[0], StandardEvents[1])
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Name: w.Name, Class: w.Class,
			BaseCycles:  base.Result.Cycles,
			FlowHW:      fhw.Result.Cycles,
			ContextHW:   chw.Result.Cycles,
			ContextFlow: cfl.Result.Cycles,
		})
	}
	return rows, nil
}

// RenderTable1 writes the Table 1 report.
func RenderTable1(rows []Table1Row, w io.Writer) {
	t := &report.Table{
		Title: "Table 1: Overhead of profiling (simulated cycles; ratios are x base)",
		Cols:  []string{"Benchmark", "Base", "Flow+HW", "x", "Ctx+HW", "x", "Ctx+Flow", "x"},
		Note: "Base is the uninstrumented run. Flow+HW records hardware metrics along " +
			"intraprocedural paths; Ctx+HW records them per calling context; Ctx+Flow records " +
			"path frequencies per calling context without hardware counters. " +
			"(Paper: SPEC95 averages 1.8x / 1.6x / 1.7x.)",
	}
	addAvg := func(label string, rs []Table1Row) {
		if len(rs) == 0 {
			return
		}
		var b, f, c, cf float64
		for _, r := range rs {
			fo, co, cfo := r.Overheads()
			b += float64(r.BaseCycles)
			f += fo
			c += co
			cf += cfo
		}
		n := float64(len(rs))
		t.AddSeparator()
		t.AddRow(label, report.SI(uint64(b/n)), "", report.Ratio(f/n), "", report.Ratio(c/n), "", report.Ratio(cf/n))
	}
	var ints, fps []Table1Row
	for _, r := range rows {
		fo, co, cfo := r.Overheads()
		t.AddRow(r.Name, report.SI(r.BaseCycles),
			report.SI(r.FlowHW), report.Ratio(fo),
			report.SI(r.ContextHW), report.Ratio(co),
			report.SI(r.ContextFlow), report.Ratio(cfo))
		if r.Class == workload.CINT {
			ints = append(ints, r)
		} else {
			fps = append(fps, r)
		}
	}
	addAvg("CINT avg", ints)
	addAvg("CFP avg", fps)
	addAvg("Suite avg", rows)
	t.Render(w)
}

// --- Table 2: perturbation ---

// MetricNames lists the eight Table 2 metrics in column order.
var MetricNames = []string{
	"Cycles", "Insts", "DC-RdMiss", "DC-WrMiss",
	"IC-Miss", "MispStall", "StBufStall", "FPStall",
}

var metricEvents = []hpm.Event{
	hpm.EvCycles, hpm.EvInsts, hpm.EvDCacheReadMiss, hpm.EvDCacheWriteMiss,
	hpm.EvICacheMiss, hpm.EvMispredictStalls, hpm.EvStoreBufStalls, hpm.EvFPStalls,
}

// Table2Row is one benchmark's F and C ratios per metric: the value the
// profiler recorded divided by the metric in the uninstrumented program.
type Table2Row struct {
	Name  string
	Class workload.Class
	F     [8]float64
	C     [8]float64
}

// Table2 measures perturbation: four counter selections per mode, each
// covering two metrics. All 9 cells per workload (one base + four pairs x
// two modes) go through the parallel engine up front.
func (s *Session) Table2() ([]Table2Row, error) {
	var specs []CellSpec
	for _, w := range s.Workloads {
		specs = append(specs, CellSpec{Workload: w, Mode: instrument.ModeNone, Ev0: StandardEvents[0], Ev1: StandardEvents[1]})
		for _, pair := range PerturbationPairs {
			specs = append(specs, CellSpec{Workload: w, Mode: instrument.ModePathHW, Ev0: pair[0], Ev1: pair[1]})
			specs = append(specs, CellSpec{Workload: w, Mode: instrument.ModeContextHW, Ev0: pair[0], Ev1: pair[1]})
		}
	}
	if _, err := s.RunAll(context.Background(), specs); err != nil {
		return nil, err
	}
	var rows []Table2Row
	for _, w := range s.Workloads {
		base, err := s.Run(w, instrument.ModeNone, StandardEvents[0], StandardEvents[1])
		if err != nil {
			return nil, err
		}
		row := Table2Row{Name: w.Name, Class: w.Class}
		for pi, pair := range PerturbationPairs {
			fcell, err := s.Run(w, instrument.ModePathHW, pair[0], pair[1])
			if err != nil {
				return nil, err
			}
			ccell, err := s.Run(w, instrument.ModeContextHW, pair[0], pair[1])
			if err != nil {
				return nil, err
			}
			_, fm := fcell.Profile.Totals()
			_, cm := ccell.Profile.Totals()
			for half := 0; half < 2; half++ {
				mi := pi*2 + half
				baseVal := base.Result.Totals[metricEvents[mi]]
				// Resolve each metric's column through the profile's
				// schema rather than assuming slot order.
				fv := totalFor(fcell.Profile, fm, metricEvents[mi], half)
				cv := totalFor(ccell.Profile, cm, metricEvents[mi], half)
				row.F[mi] = ratioOrZero(fv, baseVal)
				row.C[mi] = ratioOrZero(cv, baseVal)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// totalFor picks the totals column recording ev, found via the profile's
// metric schema; fallback is the legacy slot for profiles without one.
func totalFor(p *profile.Profile, totals []uint64, ev hpm.Event, fallback int) uint64 {
	slot := p.MetricIndex(ev.String())
	if slot < 0 {
		slot = fallback
	}
	if slot >= len(totals) {
		return 0
	}
	return totals[slot]
}

func ratioOrZero(a, b uint64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return 0
	}
	return float64(a) / float64(b)
}

// RenderTable2 writes the Table 2 report.
func RenderTable2(rows []Table2Row, w io.Writer) {
	cols := []string{"Benchmark"}
	for _, m := range MetricNames {
		cols = append(cols, m+" F", m+" C")
	}
	t := &report.Table{
		Title: "Table 2: Perturbation of hardware metrics from profiling (recorded / uninstrumented)",
		Cols:  cols,
		Note: "F = metric recorded by flow sensitive profiling (sum over paths); C = metric " +
			"recorded by context sensitive profiling (root context's inclusive delta). Values near " +
			"1.00 mean the profiler's measurement matches the uninstrumented program; deviations " +
			"are instrumentation perturbation. (Paper: most SPEC95 averages within 0.9-1.2, with " +
			"outliers on rare events.)",
	}
	addAvg := func(label string, rs []Table2Row) {
		if len(rs) == 0 {
			return
		}
		vals := make([]interface{}, 0, 17)
		vals = append(vals, label)
		for m := 0; m < 8; m++ {
			var f, c float64
			for _, r := range rs {
				f += r.F[m]
				c += r.C[m]
			}
			vals = append(vals, report.Ratio(f/float64(len(rs))), report.Ratio(c/float64(len(rs))))
		}
		t.AddSeparator()
		t.AddRow(vals...)
	}
	var ints, fps []Table2Row
	for _, r := range rows {
		vals := make([]interface{}, 0, 17)
		vals = append(vals, r.Name)
		for m := 0; m < 8; m++ {
			vals = append(vals, report.Ratio(r.F[m]), report.Ratio(r.C[m]))
		}
		t.AddRow(vals...)
		if r.Class == workload.CINT {
			ints = append(ints, r)
		} else {
			fps = append(fps, r)
		}
	}
	addAvg("CINT avg", ints)
	addAvg("CFP avg", fps)
	addAvg("Suite avg", rows)
	t.Render(w)
}

// --- Table 3: CCT statistics ---

// Table3Row is one benchmark's CCT shape (built with per-path counters in
// the records, as the paper's Table 3 measures).
type Table3Row struct {
	Name  string
	Stats cct.Stats
}

// Table3 builds the combined flow+context CCT for every workload.
func (s *Session) Table3() ([]Table3Row, error) {
	if _, err := s.runSuite(instrument.ModeContextFlow, StandardEvents[0], StandardEvents[1]); err != nil {
		return nil, err
	}
	var rows []Table3Row
	for _, w := range s.Workloads {
		cell, err := s.Run(w, instrument.ModeContextFlow, StandardEvents[0], StandardEvents[1])
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{Name: w.Name, Stats: cell.Tree.ComputeStats()})
	}
	return rows, nil
}

// RenderTable3 writes the Table 3 report.
func RenderTable3(rows []Table3Row, w io.Writer) {
	t := &report.Table{
		Title: "Table 3: Calling context tree statistics (CCT with intraprocedural path tables in the records)",
		Cols: []string{"Benchmark", "Size(B)", "Nodes", "AvgNode(B)", "AvgOutDeg",
			"HtAvg", "HtMax", "MaxRepl", "Sites", "Used", "OnePath"},
		Note: "Size is the simulated profile heap (records + lists). Height is bounded by the " +
			"number of procedures; Max Replication is the most records any one procedure has. " +
			"One Path counts used call sites reached by exactly one intraprocedural path, where " +
			"flow+context profiling equals full interprocedural path profiling.",
	}
	for _, r := range rows {
		st := r.Stats
		t.AddRow(r.Name, report.SI(st.SizeBytes), st.Nodes,
			fmt.Sprintf("%.1f", st.AvgNodeSize), fmt.Sprintf("%.1f", st.AvgOutDegree),
			fmt.Sprintf("%.1f", st.AvgHeight), st.MaxHeight, st.MaxReplication,
			st.CallSitesTotal, st.CallSitesUsed, st.OnePathSites)
	}
	t.Render(w)
}

// --- Tables 4 and 5: hot paths and hot procedures ---

// Table4Result pairs the standard-threshold report with an optional
// low-threshold rerun for path-rich programs.
type Table4Result struct {
	Name string
	Std  analysis.PathReport
	Low  *analysis.PathReport // non-nil when the 1% threshold covers poorly
}

// Table4 classifies each workload's paths by D-cache misses.
func (s *Session) Table4() ([]Table4Result, error) {
	if _, err := s.runSuite(instrument.ModePathHW, StandardEvents[0], StandardEvents[1]); err != nil {
		return nil, err
	}
	var out []Table4Result
	for _, w := range s.Workloads {
		cell, err := s.Run(w, instrument.ModePathHW, StandardEvents[0], StandardEvents[1])
		if err != nil {
			return nil, err
		}
		out = append(out, Table4FromProfile(w.Name, cell.Profile))
	}
	return out, nil
}

// Table4FromProfile classifies one flow+HW profile exactly as Table4 does:
// the standard 1% threshold, with a 0.1% rerun when the hot paths cover
// less than half the misses (the paper's go/gcc adjustment). The collection
// daemon renders Table 4 rows from merged profiles through this helper.
func Table4FromProfile(name string, p *profile.Profile) Table4Result {
	res := Table4Result{Name: name, Std: analysis.ClassifyPaths(p, analysis.DefaultHotThreshold)}
	if res.Std.Hot.MissFrac(res.Std.TotalMisses) < 0.5 {
		low := analysis.ClassifyPaths(p, analysis.LowHotThreshold)
		res.Low = &low
	}
	return res
}

// RenderTable4 writes the Table 4 report.
func RenderTable4(results []Table4Result, w io.Writer) {
	t := &report.Table{
		Title: "Table 4: L1 data cache misses by path (hot >= 1% of misses; dense = above-average miss ratio)",
		Cols: []string{"Benchmark", "Paths", "Insts", "Misses",
			"Hot#", "HotInst", "HotMiss", "Dense#", "DnsMiss", "Sparse#", "SprMiss", "Cold#", "ColdMiss"},
		Note: "Rows marked @0.1% rerun the classification at the paper's reduced threshold for " +
			"path-rich programs. (Paper: 3-28 hot paths cover 59-98% of misses except 099.go and " +
			"126.gcc, which need the 0.1% threshold.)",
	}
	add := func(name string, r analysis.PathReport) {
		t.AddRow(name, r.NumPaths, report.SI(r.TotalInsts), report.SI(r.TotalMisses),
			r.Hot.Num, report.Pct(r.Hot.InstFrac(r.TotalInsts)), report.Pct(r.Hot.MissFrac(r.TotalMisses)),
			r.Dense.Num, report.Pct(r.Dense.MissFrac(r.TotalMisses)),
			r.Sparse.Num, report.Pct(r.Sparse.MissFrac(r.TotalMisses)),
			r.Cold.Num, report.Pct(r.Cold.MissFrac(r.TotalMisses)))
	}
	for _, res := range results {
		add(res.Name, res.Std)
		if res.Low != nil {
			add(res.Name+" @0.1%", *res.Low)
		}
	}
	t.Render(w)
}

// Table5 classifies procedures by D-cache misses.
func (s *Session) Table5() ([]analysis.ProcReport, error) {
	if _, err := s.runSuite(instrument.ModePathHW, StandardEvents[0], StandardEvents[1]); err != nil {
		return nil, err
	}
	var out []analysis.ProcReport
	for _, w := range s.Workloads {
		cell, err := s.Run(w, instrument.ModePathHW, StandardEvents[0], StandardEvents[1])
		if err != nil {
			return nil, err
		}
		out = append(out, analysis.ClassifyProcs(cell.Profile, analysis.DefaultHotThreshold))
	}
	return out, nil
}

// RenderTable5 writes the Table 5 report.
func RenderTable5(reports []analysis.ProcReport, w io.Writer) {
	t := &report.Table{
		Title: "Table 5: L1 data cache misses per procedure (hot >= 1% of misses)",
		Cols: []string{"Benchmark", "Hot#", "Path/Proc", "Misses",
			"Dense#", "DnsPath/Proc", "DnsMiss", "Sparse#", "SprPath/Proc", "SprMiss",
			"Cold#", "ColdPath/Proc", "ColdMiss"},
		Note: "Path/Proc is the average number of executed paths per procedure in the class. " +
			"(Paper: hot procedures execute roughly ten times as many paths as cold ones and " +
			"cover 44-99% of misses.)",
	}
	for _, r := range reports {
		t.AddRow(r.Program,
			r.Hot.Num, fmt.Sprintf("%.1f", r.Hot.PathsPerProc), report.Pct(frac(r.Hot.Misses, r.TotalMisses)),
			r.Dense.Num, fmt.Sprintf("%.1f", r.Dense.PathsPerProc), report.Pct(frac(r.Dense.Misses, r.TotalMisses)),
			r.Sparse.Num, fmt.Sprintf("%.1f", r.Sparse.PathsPerProc), report.Pct(frac(r.Sparse.Misses, r.TotalMisses)),
			r.Cold.Num, fmt.Sprintf("%.1f", r.Cold.PathsPerProc), report.Pct(frac(r.Cold.Misses, r.TotalMisses)))
	}
	t.Render(w)
}

func frac(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// MultiplicityRow is the Section 6.4.3 statement-level argument: blocks on
// hot paths execute along many distinct paths, so block-level metric
// attribution cannot isolate the behaviour.
type MultiplicityRow struct {
	Name   string
	Report analysis.MultiplicityReport
}

// Multiplicity computes block-path multiplicity from the flow+HW profiles.
func (s *Session) Multiplicity() ([]MultiplicityRow, error) {
	if _, err := s.runSuite(instrument.ModePathHW, StandardEvents[0], StandardEvents[1]); err != nil {
		return nil, err
	}
	var rows []MultiplicityRow
	for _, w := range s.Workloads {
		cell, err := s.Run(w, instrument.ModePathHW, StandardEvents[0], StandardEvents[1])
		if err != nil {
			return nil, err
		}
		numberings := map[int]*bl.Numbering{}
		for _, pp := range cell.Plan.Procs {
			if pp.Numbering != nil {
				numberings[pp.ProcID] = pp.Numbering
			}
		}
		rows = append(rows, MultiplicityRow{
			Name:   w.Name,
			Report: analysis.BlockMultiplicity(cell.Profile, numberings, analysis.DefaultHotThreshold),
		})
	}
	return rows, nil
}

// RenderMultiplicity writes the block-path multiplicity summary.
func RenderMultiplicity(rows []MultiplicityRow, w io.Writer) {
	t := &report.Table{
		Title: "Block-path multiplicity (Section 6.4.3: why statement-level attribution fails)",
		Cols:  []string{"Benchmark", "HotBlocks", "Paths/HotBlock", "Paths/Block", "Max"},
		Note: "Paths/HotBlock is the average number of distinct executed paths containing each " +
			"basic block that lies on a hot path. (Paper: basic blocks along hot paths execute " +
			"along an average of 16 different paths, so block- or statement-level miss counts " +
			"cannot isolate the behaviour that path profiles expose.)",
	}
	for _, r := range rows {
		t.AddRow(r.Name, r.Report.HotBlocks,
			fmt.Sprintf("%.1f", r.Report.HotBlockAvg),
			fmt.Sprintf("%.1f", r.Report.AllBlockAvg),
			r.Report.MaxMultiplicity)
	}
	t.Render(w)
}

// Table1ExtRow extends the overhead comparison with the profiling styles
// the paper positions path profiling against: qpt-style edge counting
// (cheaper, less informative) and statement-level block metrics (far more
// expensive, Section 6.4.3).
type Table1ExtRow struct {
	Name       string
	Class      workload.Class
	BaseCycles uint64
	EdgeCount  uint64
	PathFreq   uint64
	BlockHW    uint64
}

// Table1Ext measures the extended overhead spectrum.
func (s *Session) Table1Ext() ([]Table1ExtRow, error) {
	var specs []CellSpec
	for _, w := range s.Workloads {
		for _, mode := range []instrument.Mode{
			instrument.ModeNone, instrument.ModeEdgeCount,
			instrument.ModePathFreq, instrument.ModeBlockHW,
		} {
			specs = append(specs, CellSpec{Workload: w, Mode: mode, Ev0: StandardEvents[0], Ev1: StandardEvents[1]})
		}
	}
	if _, err := s.RunAll(context.Background(), specs); err != nil {
		return nil, err
	}
	var rows []Table1ExtRow
	for _, w := range s.Workloads {
		base, err := s.Run(w, instrument.ModeNone, StandardEvents[0], StandardEvents[1])
		if err != nil {
			return nil, err
		}
		edge, err := s.Run(w, instrument.ModeEdgeCount, StandardEvents[0], StandardEvents[1])
		if err != nil {
			return nil, err
		}
		pf, err := s.Run(w, instrument.ModePathFreq, StandardEvents[0], StandardEvents[1])
		if err != nil {
			return nil, err
		}
		blk, err := s.Run(w, instrument.ModeBlockHW, StandardEvents[0], StandardEvents[1])
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1ExtRow{
			Name: w.Name, Class: w.Class,
			BaseCycles: base.Result.Cycles,
			EdgeCount:  edge.Result.Cycles,
			PathFreq:   pf.Result.Cycles,
			BlockHW:    blk.Result.Cycles,
		})
	}
	return rows, nil
}

// RenderTable1Ext writes the extended overhead report.
func RenderTable1Ext(rows []Table1ExtRow, w io.Writer) {
	t := &report.Table{
		Title: "Table 1b (extension): the profiling-granularity overhead spectrum",
		Cols:  []string{"Benchmark", "Edge x", "PathFreq x", "Block+HW x"},
		Note: "Edge counting is the qpt baseline ([BL94]; the paper reports path profiling at " +
			"roughly twice its overhead); per-block hardware metrics are the statement-level " +
			"attribution Section 6.4.3 calls far more expensive than path profiling.",
	}
	var e, p, bk float64
	for _, r := range rows {
		base := float64(r.BaseCycles)
		eo, po, bo := float64(r.EdgeCount)/base, float64(r.PathFreq)/base, float64(r.BlockHW)/base
		e += eo
		p += po
		bk += bo
		t.AddRow(r.Name, report.Ratio(eo), report.Ratio(po), report.Ratio(bo))
	}
	n := float64(len(rows))
	if n > 0 {
		t.AddSeparator()
		t.AddRow("Suite avg", report.Ratio(e/n), report.Ratio(p/n), report.Ratio(bk/n))
	}
	t.Render(w)
}
