package experiments

import (
	"fmt"
	"io"
	"math"

	"pathprof/internal/hpm"
	"pathprof/internal/instrument"
	"pathprof/internal/report"
	"pathprof/internal/sim"
	"pathprof/internal/workload"
)

// MuxAccuracyRow compares one event's time-multiplexed scaled estimate
// against the count a dedicated counter saw over the same deterministic run.
type MuxAccuracyRow struct {
	Event     string
	Dedicated uint64
	Estimate  uint64
	ErrPct    float64
}

// MuxAccuracy quantifies the cost of counter multiplexing: it runs w
// uninstrumented twice under set — once on the session's configured bank
// (multiplexing when the set is wider), once with the bank widened to a
// dedicated counter per event — and reports each event's scaled estimate
// against the dedicated count. Both runs are deterministic replays of the
// same program, so every deviation is scheduling loss, not run-to-run noise.
func (s *Session) MuxAccuracy(w workload.Workload, set hpm.MetricSet) ([]MuxAccuracyRow, error) {
	if set.Len() == 0 {
		set = hpm.DefaultMetricSet()
	}
	muxed, err := s.RunSet(w, instrument.ModeNone, set)
	if err != nil {
		return nil, err
	}
	est := muxed.Estimates
	if est == nil {
		// The set fit the bank, so the "multiplexed" run already had a
		// dedicated counter per event: its exact counts are the estimates.
		est = make([]uint64, set.Len())
		for i, ev := range set.Events {
			est[i] = muxed.Result.Totals[ev]
		}
	}
	// Dedicated ground truth: the same machine with the bank widened to one
	// counter per event. The 64-bit shadow totals are exactly what the
	// dedicated PICs counted (the PICs themselves wrap at 32 bits).
	cfg := s.SimConfig
	cfg.NumCounters = set.Len()
	m := sim.New(s.builtProg(w), cfg)
	m.PMU().SelectAll(set.Events)
	res, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s dedicated: %w", w.Name, err)
	}
	rows := make([]MuxAccuracyRow, set.Len())
	for i, ev := range set.Events {
		ded := res.Totals[ev]
		row := MuxAccuracyRow{Event: ev.String(), Dedicated: ded, Estimate: est[i]}
		if ded > 0 {
			row.ErrPct = math.Abs(float64(est[i])-float64(ded)) / float64(ded) * 100
		}
		rows[i] = row
	}
	return rows, nil
}

// RenderMuxAccuracy writes the multiplexing-accuracy comparison for one
// workload as an aligned table; bank is the width the multiplexed run was
// scheduled onto.
func RenderMuxAccuracy(name string, set hpm.MetricSet, bank int, rows []MuxAccuracyRow, w io.Writer) {
	if bank <= 0 {
		bank = 2
	}
	t := &report.Table{
		Title: fmt.Sprintf("Multiplexed vs dedicated counters: %s, %d events on a %d-counter bank",
			name, set.Len(), bank),
		Note: "Estimates are raw counts scaled by total/enabled time (perf-style); " +
			"both runs replay the same deterministic program.",
		Cols: []string{"Event", "Dedicated", "Estimate", "Err %"},
	}
	for _, r := range rows {
		t.AddRow(r.Event, r.Dedicated, r.Estimate, fmt.Sprintf("%.2f", r.ErrPct))
	}
	t.Render(w)
}
