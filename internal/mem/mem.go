// Package mem provides the simulated flat address space that programs,
// instrumentation data (path counter arrays, metric accumulators) and the
// CCT heap live in. Keeping all profiling state in simulated memory is what
// lets instrumentation genuinely perturb the simulated caches, reproducing
// the perturbation phenomenon of Table 2 of the paper.
package mem

import (
	"fmt"
	"slices"
)

// Standard region bases. The layout mirrors a conventional process image:
// globals low, a downward-growing stack, then separate regions for
// instrumentation counters and the CCT heap (the paper memory-maps the CCT
// heap into its own demand-paged region).
const (
	GlobalBase  uint64 = 0x0001_0000
	StackTop    uint64 = 0x0800_0000 // stack grows down from here
	CounterBase uint64 = 0x4000_0000 // path counter arrays and accumulators
	CCTBase     uint64 = 0x8000_0000 // calling-context-tree heap
	TextBase    uint64 = 0x1000_0000 // instruction addresses (I-cache only)
)

const (
	pageWordShift = 9 // 512 words = 4 KiB pages
	pageWords     = 1 << pageWordShift
	wordShift     = 3 // 8-byte words
)

type page [pageWords]int64

// Memory is a sparse 64-bit word-addressable address space. All accesses
// are 8-byte words at 8-byte-aligned byte addresses; unaligned access
// panics, since it indicates a program or instrumentation bug.
type Memory struct {
	pages map[uint64]*page
	words uint64 // number of distinct words ever touched (footprint stat)
}

// New returns an empty address space.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func split(addr uint64) (pageNo uint64, idx uint64) {
	if addr&7 != 0 {
		panic(fmt.Sprintf("mem: unaligned access at %#x", addr))
	}
	w := addr >> wordShift
	return w >> pageWordShift, w & (pageWords - 1)
}

// Load reads the 64-bit word at addr (0 if never written).
func (m *Memory) Load(addr uint64) int64 {
	pn, idx := split(addr)
	p := m.pages[pn]
	if p == nil {
		return 0
	}
	return p[idx]
}

// Store writes the 64-bit word at addr.
func (m *Memory) Store(addr uint64, v int64) {
	pn, idx := split(addr)
	p := m.pages[pn]
	if p == nil {
		p = new(page)
		m.pages[pn] = p
		m.words += 0 // counted per-word below
	}
	p[idx] = v
}

// Add adds delta to the word at addr and returns the new value; a common
// operation for counters.
func (m *Memory) Add(addr uint64, delta int64) int64 {
	v := m.Load(addr) + delta
	m.Store(addr, v)
	return v
}

// FootprintBytes reports the bytes of simulated memory backed by pages.
func (m *Memory) FootprintBytes() uint64 {
	return uint64(len(m.pages)) * pageWords * 8
}

// CopyRegion bulk-copies words (used to initialize the global segment).
func (m *Memory) CopyRegion(base uint64, words []int64) {
	for i, w := range words {
		m.Store(base+uint64(i)*8, w)
	}
}

// ReadRegion reads n words starting at base.
func (m *Memory) ReadRegion(base uint64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = m.Load(base + uint64(i)*8)
	}
	return out
}

// Equal reports whether two address spaces hold identical contents: every
// word present in either must match the other, with absent pages reading as
// zero. Differential semantic-preservation tests compare the final memory
// images of original and rewritten programs with this.
func Equal(a, b *Memory) bool {
	check := func(x, y *Memory) bool {
		var zero page
		for pn, px := range x.pages {
			py := y.pages[pn]
			if py == nil {
				py = &zero
			}
			if *px != *py {
				return false
			}
		}
		return true
	}
	return check(a, b) && check(b, a)
}

// DiffWord returns the byte address and both values of the first differing
// word between two address spaces (scanning pages in ascending order), or
// ok=false when they are equal. Harnesses use it to report where a rewritten
// program's memory image diverged.
func DiffWord(a, b *Memory) (addr uint64, av, bv int64, ok bool) {
	seen := make(map[uint64]bool, len(a.pages)+len(b.pages))
	var pns []uint64
	for pn := range a.pages {
		seen[pn] = true
		pns = append(pns, pn)
	}
	for pn := range b.pages {
		if !seen[pn] {
			pns = append(pns, pn)
		}
	}
	slices.Sort(pns)
	var zero page
	for _, pn := range pns {
		pa, pb := a.pages[pn], b.pages[pn]
		if pa == nil {
			pa = &zero
		}
		if pb == nil {
			pb = &zero
		}
		for i := 0; i < pageWords; i++ {
			if pa[i] != pb[i] {
				byteAddr := ((pn << pageWordShift) + uint64(i)) << wordShift
				return byteAddr, pa[i], pb[i], true
			}
		}
	}
	return 0, 0, 0, false
}

// Allocator hands out non-overlapping address ranges within a region.
type Allocator struct {
	next  uint64
	limit uint64
}

// NewAllocator returns an allocator over [base, base+size).
func NewAllocator(base, size uint64) *Allocator {
	return &Allocator{next: base, limit: base + size}
}

// Alloc reserves n bytes aligned to align (a power of two, at least 8) and
// returns the base address. It panics when the region is exhausted, which
// indicates a configuration error rather than a runtime condition.
func (a *Allocator) Alloc(n, align uint64) uint64 {
	if align < 8 {
		align = 8
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
	}
	base := (a.next + align - 1) &^ (align - 1)
	if base+n > a.limit || base+n < base {
		panic(fmt.Sprintf("mem: region exhausted (want %d bytes at %#x, limit %#x)", n, base, a.limit))
	}
	a.next = base + n
	return base
}

// Used reports how many bytes have been allocated (including alignment
// padding).
func (a *Allocator) Used(base uint64) uint64 { return a.next - base }

// Clone returns an independent allocator that continues from the same
// position. Callers that need identical address sequences from a shared
// starting point (e.g. wiring one instrumentation plan onto several
// machines) clone the allocator instead of mutating the shared one.
func (a *Allocator) Clone() *Allocator {
	c := *a
	return &c
}
