package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New()
	m.Store(0x1000, 42)
	if v := m.Load(0x1000); v != 42 {
		t.Fatalf("load = %d, want 42", v)
	}
	if v := m.Load(0x2000); v != 0 {
		t.Fatalf("untouched load = %d, want 0", v)
	}
}

func TestAddCounter(t *testing.T) {
	m := New()
	if v := m.Add(0x40, 5); v != 5 {
		t.Fatalf("add = %d", v)
	}
	if v := m.Add(0x40, -2); v != 3 {
		t.Fatalf("add = %d", v)
	}
}

func TestUnalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned access did not panic")
		}
	}()
	New().Load(0x1001)
}

// TestAgainstMapModel: the paged memory behaves like a plain map.
func TestAgainstMapModel(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New()
		ref := map[uint64]int64{}
		for i := 0; i < 3000; i++ {
			addr := (uint64(rng.Intn(1 << 16))) &^ 7
			if rng.Intn(2) == 0 {
				v := rng.Int63()
				m.Store(addr, v)
				ref[addr] = v
			} else if m.Load(addr) != ref[addr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRegions(t *testing.T) {
	m := New()
	words := []int64{1, 2, 3, 4}
	m.CopyRegion(0x8000, words)
	got := m.ReadRegion(0x8000, 4)
	for i, w := range words {
		if got[i] != w {
			t.Fatalf("region[%d] = %d, want %d", i, got[i], w)
		}
	}
}

func TestAllocatorAlignment(t *testing.T) {
	a := NewAllocator(0x100, 0x1000)
	p1 := a.Alloc(24, 8)
	p2 := a.Alloc(8, 64)
	if p1 != 0x100 {
		t.Fatalf("first alloc at %#x", p1)
	}
	if p2%64 != 0 || p2 < p1+24 {
		t.Fatalf("second alloc at %#x not 64-aligned past first", p2)
	}
	if a.Used(0x100) == 0 {
		t.Fatal("used bytes not tracked")
	}
}

func TestAllocatorExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted allocator did not panic")
		}
	}()
	a := NewAllocator(0, 16)
	a.Alloc(32, 8)
}

func TestFootprint(t *testing.T) {
	m := New()
	if m.FootprintBytes() != 0 {
		t.Fatal("fresh memory has footprint")
	}
	m.Store(0, 1)
	m.Store(8, 1) // same page
	if m.FootprintBytes() != 4096 {
		t.Fatalf("footprint = %d, want one 4K page", m.FootprintBytes())
	}
}
