package profile

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead: arbitrary text must either parse or error — never panic. A
// successful parse must survive a write/read round trip.
func FuzzRead(f *testing.F) {
	p := &Profile{
		Program: "seed", Mode: "flow+hw", Event0: "dcache-miss", Event1: "insts",
		Procs: []*ProcPaths{
			{ProcID: 0, Name: "main", NumPaths: 4, Entries: []PathEntry{
				{Sum: 0, Freq: 3, M0: 7, M1: 41},
				{Sum: 2, Freq: 1, M0: 0, M1: 9},
			}},
			{ProcID: 1, Name: "a proc with spaces", NumPaths: 2},
		},
	}
	var seed bytes.Buffer
	if err := p.Write(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("")
	f.Add("profile x y z")
	f.Add("proc 0 main 4\npath 0 1 2 3")
	f.Add("profile p m e0 e1\nproc zero main 4\n")
	f.Fuzz(func(t *testing.T, text string) {
		got, err := Read(strings.NewReader(text))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("parsed profile failed to write: %v", err)
		}
		if _, err := Read(&out); err != nil {
			t.Fatalf("written profile failed to re-read: %v", err)
		}
	})
}
