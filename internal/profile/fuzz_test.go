package profile

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead: arbitrary text must either parse or error — never panic. A
// successful parse must survive a write/read round trip.
func FuzzRead(f *testing.F) {
	p := &Profile{
		Program: "seed", Mode: "flow+hw", Events: []string{"dcache-miss", "insts"},
		Procs: []*ProcPaths{
			{ProcID: 0, Name: "main", NumPaths: 4, Entries: []PathEntry{
				NewEntry(0, 3, 7, 41),
				NewEntry(2, 1, 0, 9),
			}},
			{ProcID: 1, Name: "a proc with spaces", NumPaths: 2},
		},
	}
	var seed bytes.Buffer
	if err := p.Write(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	// Wide-schema seed: four metric columns per path line.
	wide := &Profile{
		Program: "seed4", Mode: "flow+hw",
		Events: []string{"cycles", "insts", "dcache-miss", "icache-miss"},
		Procs: []*ProcPaths{
			{ProcID: 0, Name: "main", NumPaths: 2, Entries: []PathEntry{
				NewEntry(0, 5, 1, 2, 3, 4),
			}},
		},
	}
	var wideSeed bytes.Buffer
	if err := wide.Write(&wideSeed); err != nil {
		f.Fatal(err)
	}
	f.Add(wideSeed.String())
	// Single-event and zero-event headers.
	f.Add("profile p m insts\nproc 0 main 2\npath 0 1 42\n")
	f.Add("profile p m\nproc 0 main 2\npath 0 1\n")
	f.Add("")
	f.Add("profile x y z")
	f.Add("proc 0 main 4\npath 0 1 2 3")
	f.Add("profile p m e0 e1\nproc zero main 4\n")
	f.Fuzz(func(t *testing.T, text string) {
		got, err := Read(strings.NewReader(text))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("parsed profile failed to write: %v", err)
		}
		if _, err := Read(&out); err != nil {
			t.Fatalf("written profile failed to re-read: %v", err)
		}
	})
}
