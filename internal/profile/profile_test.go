package profile

import (
	"bytes"
	"math/rand"
	"slices"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Profile {
	return &Profile{
		Program: "prog", Mode: "flow+hw", Events: []string{"dcache-miss", "insts"},
		Procs: []*ProcPaths{
			{ProcID: 0, Name: "main", NumPaths: 6, Entries: []PathEntry{
				NewEntry(0, 10, 5, 100),
				NewEntry(3, 2, 1, 20),
			}},
			{ProcID: 1, Name: "leaf", NumPaths: 2, Entries: []PathEntry{
				NewEntry(1, 7, 3, 70),
			}},
		},
	}
}

func entriesEqual(a, b PathEntry) bool {
	return a.Sum == b.Sum && a.Freq == b.Freq && slices.Equal(a.Metrics, b.Metrics)
}

func TestWriteReadRoundTrip(t *testing.T) {
	p := sample()
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != p.Program || got.Mode != p.Mode || !slices.Equal(got.Events, p.Events) {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Procs) != 2 || len(got.Procs[0].Entries) != 2 {
		t.Fatalf("shape mismatch: %+v", got)
	}
	if !entriesEqual(got.Procs[0].Entries[1], p.Procs[0].Entries[1]) {
		t.Fatalf("entry mismatch")
	}
}

func TestRoundTripRandom(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &Profile{Program: "r", Mode: "m", Events: []string{"a", "b"}}
		for i := 0; i < rng.Intn(5)+1; i++ {
			pp := &ProcPaths{ProcID: i, Name: "p", NumPaths: int64(rng.Intn(100) + 1)}
			for j := 0; j < rng.Intn(20); j++ {
				pp.Entries = append(pp.Entries, NewEntry(
					int64(j), uint64(rng.Intn(1000)),
					uint64(rng.Intn(1000)), uint64(rng.Intn(1000)),
				))
			}
			p.Procs = append(p.Procs, pp)
		}
		var buf bytes.Buffer
		if err := p.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		f1, m1 := p.Totals()
		f2, m2 := got.Totals()
		return f1 == f2 && slices.Equal(m1, m2) && got.TotalExecutedPaths() == p.TotalExecutedPaths()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripWide exercises a four-event schema through the text codec:
// the header's event count must drive the path-line width both ways.
func TestRoundTripWide(t *testing.T) {
	p := &Profile{
		Program: "wide", Mode: "flow+hw",
		Events: []string{"cycles", "insts", "dcache-miss", "icache-miss"},
		Procs: []*ProcPaths{
			{ProcID: 0, Name: "main", NumPaths: 4, Entries: []PathEntry{
				NewEntry(0, 9, 1, 2, 3, 4),
				NewEntry(2, 1, 0, 0, 7, 0),
			}},
		},
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumMetrics() != 4 || got.MetricIndex("dcache-miss") != 2 {
		t.Fatalf("schema: %v", got.Events)
	}
	if !entriesEqual(got.Procs[0].Entries[0], p.Procs[0].Entries[0]) {
		t.Fatalf("entry mismatch: %+v", got.Procs[0].Entries[0])
	}
}

func TestTotals(t *testing.T) {
	f, ms := sample().Totals()
	if f != 19 || !slices.Equal(ms, []uint64{9, 190}) {
		t.Fatalf("totals = %d %v", f, ms)
	}
}

func TestMerge(t *testing.T) {
	a := sample()
	b := sample()
	b.Procs[0].Entries = append(b.Procs[0].Entries, PathEntry{Sum: 5, Freq: 1})
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if e := a.Procs[0].Entries; len(e) != 3 {
		t.Fatalf("merged entries = %d", len(e))
	}
	if a.Proc(0).Entries[0].Freq != 20 {
		t.Fatalf("freq not doubled: %+v", a.Proc(0).Entries[0])
	}
	// Shape mismatch errors.
	c := sample()
	c.Procs = c.Procs[:1]
	if err := a.Merge(c); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	// Schema mismatch errors.
	d := sample()
	d.Events = []string{"cycles", "insts"}
	if err := a.Merge(d); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

func TestProcLookup(t *testing.T) {
	p := sample()
	if p.Proc(1) == nil || p.Proc(99) != nil {
		t.Fatal("Proc lookup broken")
	}
}

func TestNewMetricsArena(t *testing.T) {
	pp := &ProcPaths{}
	a := pp.NewMetrics(3)
	b := pp.NewMetrics(2)
	a[2] = 7 // must not be visible through b
	if b[0] != 0 || b[1] != 0 {
		t.Fatalf("arena slices alias: %v", b)
	}
	// Appending past a chunk boundary must not touch earlier slices.
	var all [][]uint64
	for i := 0; i < 2000; i++ {
		m := pp.NewMetrics(2)
		m[0] = uint64(i)
		all = append(all, m)
	}
	for i, m := range all {
		if m[0] != uint64(i) {
			t.Fatalf("slice %d clobbered: %v", i, m)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"bogus 1 2 3",
		"profile a",                 // short header
		"path 1 2 3 4",              // path before proc
		"profile p m a b\nproc x y", // short proc
		"profile p m a b\nproc 0 n 1\npath 1 nope 3 4", // bad number
		"profile p m a b\nproc 0 n 1\npath 1 2 3",      // too few metric columns
		"profile p m a b\nproc 0 n 1\npath 1 2 3 4 5",  // too many metric columns
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestFieldEscaping(t *testing.T) {
	p := sample()
	p.Program = "has space"
	p.Events[0] = ""
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != "has_space" || got.Events[0] != "" {
		t.Fatalf("fields: %q %q", got.Program, got.Events[0])
	}
}

func TestSortOrders(t *testing.T) {
	pp := &ProcPaths{Entries: []PathEntry{{Sum: 5}, {Sum: 1}, {Sum: 3}}}
	pp.Sort()
	if pp.Entries[0].Sum != 1 || pp.Entries[2].Sum != 5 {
		t.Fatalf("not sorted: %+v", pp.Entries)
	}
}
