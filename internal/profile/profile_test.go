package profile

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Profile {
	return &Profile{
		Program: "prog", Mode: "flow+hw", Event0: "dcache-miss", Event1: "insts",
		Procs: []*ProcPaths{
			{ProcID: 0, Name: "main", NumPaths: 6, Entries: []PathEntry{
				{Sum: 0, Freq: 10, M0: 5, M1: 100},
				{Sum: 3, Freq: 2, M0: 1, M1: 20},
			}},
			{ProcID: 1, Name: "leaf", NumPaths: 2, Entries: []PathEntry{
				{Sum: 1, Freq: 7, M0: 3, M1: 70},
			}},
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	p := sample()
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != p.Program || got.Mode != p.Mode || got.Event0 != p.Event0 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Procs) != 2 || len(got.Procs[0].Entries) != 2 {
		t.Fatalf("shape mismatch: %+v", got)
	}
	if got.Procs[0].Entries[1] != p.Procs[0].Entries[1] {
		t.Fatalf("entry mismatch")
	}
}

func TestRoundTripRandom(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := &Profile{Program: "r", Mode: "m", Event0: "a", Event1: "b"}
		for i := 0; i < rng.Intn(5)+1; i++ {
			pp := &ProcPaths{ProcID: i, Name: "p", NumPaths: int64(rng.Intn(100) + 1)}
			for j := 0; j < rng.Intn(20); j++ {
				pp.Entries = append(pp.Entries, PathEntry{
					Sum: int64(j), Freq: uint64(rng.Intn(1000)),
					M0: uint64(rng.Intn(1000)), M1: uint64(rng.Intn(1000)),
				})
			}
			p.Procs = append(p.Procs, pp)
		}
		var buf bytes.Buffer
		if err := p.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		f1, a1, b1 := p.Totals()
		f2, a2, b2 := got.Totals()
		return f1 == f2 && a1 == a2 && b1 == b2 && got.TotalExecutedPaths() == p.TotalExecutedPaths()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTotals(t *testing.T) {
	f, m0, m1 := sample().Totals()
	if f != 19 || m0 != 9 || m1 != 190 {
		t.Fatalf("totals = %d %d %d", f, m0, m1)
	}
}

func TestMerge(t *testing.T) {
	a := sample()
	b := sample()
	b.Procs[0].Entries = append(b.Procs[0].Entries, PathEntry{Sum: 5, Freq: 1})
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if e := a.Procs[0].Entries; len(e) != 3 {
		t.Fatalf("merged entries = %d", len(e))
	}
	if a.Proc(0).Entries[0].Freq != 20 {
		t.Fatalf("freq not doubled: %+v", a.Proc(0).Entries[0])
	}
	// Shape mismatch errors.
	c := sample()
	c.Procs = c.Procs[:1]
	if err := a.Merge(c); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestProcLookup(t *testing.T) {
	p := sample()
	if p.Proc(1) == nil || p.Proc(99) != nil {
		t.Fatal("Proc lookup broken")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"bogus 1 2 3",
		"profile a b c",             // short header
		"path 1 2 3 4",              // path before proc
		"profile p m a b\nproc x y", // short proc
		"profile p m a b\nproc 0 n 1\npath 1 nope 3 4", // bad number
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestFieldEscaping(t *testing.T) {
	p := sample()
	p.Program = "has space"
	p.Event0 = ""
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != "has_space" || got.Event0 != "" {
		t.Fatalf("fields: %q %q", got.Program, got.Event0)
	}
}

func TestSortOrders(t *testing.T) {
	pp := &ProcPaths{Entries: []PathEntry{{Sum: 5}, {Sum: 1}, {Sum: 3}}}
	pp.Sort()
	if pp.Entries[0].Sum != 1 || pp.Entries[2].Sum != 5 {
		t.Fatalf("not sorted: %+v", pp.Entries)
	}
}
