// Package profile defines the profile data model produced by instrumented
// runs: per-procedure path tables carrying a frequency and up to two
// hardware-metric accumulators per path, plus program-level totals. It also
// provides a line-oriented text encoding for saving and reloading profiles.
package profile

import (
	"bufio"
	"cmp"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"

	"pathprof/internal/flat"
)

// PathEntry is one executed path's record.
type PathEntry struct {
	Sum  int64  // Ball-Larus path identifier
	Freq uint64 // executions
	M0   uint64 // accumulated PIC0 metric (e.g. D-cache misses)
	M1   uint64 // accumulated PIC1 metric (e.g. instructions)
}

// ProcPaths is the path profile of one procedure.
type ProcPaths struct {
	ProcID   int
	Name     string
	NumPaths int64 // potential paths
	Entries  []PathEntry
}

// Executed returns how many distinct paths executed.
func (pp *ProcPaths) Executed() int { return len(pp.Entries) }

// Totals sums frequency and metrics over all executed paths.
func (pp *ProcPaths) Totals() (freq, m0, m1 uint64) {
	for _, e := range pp.Entries {
		freq += e.Freq
		m0 += e.M0
		m1 += e.M1
	}
	return
}

// Sort orders entries by path identifier. Sums are unique within a
// procedure, so the unstable sort is still fully determined.
func (pp *ProcPaths) Sort() {
	slices.SortFunc(pp.Entries, func(a, b PathEntry) int { return cmp.Compare(a.Sum, b.Sum) })
}

// Profile is a complete flow-sensitive profile of one program run.
type Profile struct {
	Program string
	Mode    string
	Event0  string // what M0 counted
	Event1  string // what M1 counted
	Procs   []*ProcPaths
}

// Proc returns the entry for the given procedure ID, or nil.
func (p *Profile) Proc(id int) *ProcPaths {
	for _, pp := range p.Procs {
		if pp.ProcID == id {
			return pp
		}
	}
	return nil
}

// Totals sums over all procedures.
func (p *Profile) Totals() (freq, m0, m1 uint64) {
	for _, pp := range p.Procs {
		f, a, b := pp.Totals()
		freq += f
		m0 += a
		m1 += b
	}
	return
}

// TotalExecutedPaths counts distinct executed paths across procedures.
func (p *Profile) TotalExecutedPaths() int {
	n := 0
	for _, pp := range p.Procs {
		n += pp.Executed()
	}
	return n
}

// Merge adds other's counts into p (matching procedures by ID). Profiles
// from repeated runs of the same instrumented program can be combined.
func (p *Profile) Merge(other *Profile) error {
	if len(p.Procs) != len(other.Procs) {
		return fmt.Errorf("profile: merge shape mismatch: %d vs %d procs", len(p.Procs), len(other.Procs))
	}
	for i, pp := range p.Procs {
		op := other.Procs[i]
		if pp.ProcID != op.ProcID {
			return fmt.Errorf("profile: merge proc mismatch at %d", i)
		}
		idx := flat.New(len(pp.Entries))
		for j, e := range pp.Entries {
			idx.Set(e.Sum, int64(j))
		}
		for _, e := range op.Entries {
			if j, ok := idx.Get(e.Sum); ok {
				pp.Entries[j].Freq += e.Freq
				pp.Entries[j].M0 += e.M0
				pp.Entries[j].M1 += e.M1
			} else {
				pp.Entries = append(pp.Entries, e)
			}
		}
		pp.Sort()
	}
	return nil
}

// Write encodes the profile as text:
//
//	profile <program> <mode> <event0> <event1>
//	proc <id> <name> <numpaths>
//	path <sum> <freq> <m0> <m1>
func (p *Profile) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "profile %s %s %s %s\n", field(p.Program), field(p.Mode), field(p.Event0), field(p.Event1))
	for _, pp := range p.Procs {
		fmt.Fprintf(bw, "proc %d %s %d\n", pp.ProcID, field(pp.Name), pp.NumPaths)
		for _, e := range pp.Entries {
			fmt.Fprintf(bw, "path %d %d %d %d\n", e.Sum, e.Freq, e.M0, e.M1)
		}
	}
	return bw.Flush()
}

func field(s string) string {
	if s == "" {
		return "-"
	}
	return strings.ReplaceAll(s, " ", "_")
}

func unfield(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

// Read decodes a profile written by Write.
func Read(r io.Reader) (*Profile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var p *Profile
	var cur *ProcPaths
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "profile":
			if len(fields) != 5 {
				return nil, fmt.Errorf("profile: line %d: malformed header", line)
			}
			p = &Profile{
				Program: unfield(fields[1]), Mode: unfield(fields[2]),
				Event0: unfield(fields[3]), Event1: unfield(fields[4]),
			}
		case "proc":
			if p == nil || len(fields) != 4 {
				return nil, fmt.Errorf("profile: line %d: malformed proc", line)
			}
			id, err1 := strconv.Atoi(fields[1])
			np, err2 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("profile: line %d: bad proc numbers", line)
			}
			cur = &ProcPaths{ProcID: id, Name: unfield(fields[2]), NumPaths: np}
			p.Procs = append(p.Procs, cur)
		case "path":
			if cur == nil || len(fields) != 5 {
				return nil, fmt.Errorf("profile: line %d: malformed path", line)
			}
			var e PathEntry
			var errs [4]error
			e.Sum, errs[0] = strconv.ParseInt(fields[1], 10, 64)
			e.Freq, errs[1] = strconv.ParseUint(fields[2], 10, 64)
			e.M0, errs[2] = strconv.ParseUint(fields[3], 10, 64)
			e.M1, errs[3] = strconv.ParseUint(fields[4], 10, 64)
			for _, err := range errs {
				if err != nil {
					return nil, fmt.Errorf("profile: line %d: bad path numbers", line)
				}
			}
			cur.Entries = append(cur.Entries, e)
		default:
			return nil, fmt.Errorf("profile: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("profile: empty input")
	}
	return p, nil
}
