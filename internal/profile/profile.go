// Package profile defines the profile data model produced by instrumented
// runs: per-procedure path tables carrying a frequency and N hardware-metric
// accumulators per path (the metric schema names what each slot counted),
// plus program-level totals. It also provides a line-oriented text encoding
// for saving and reloading profiles.
package profile

import (
	"bufio"
	"cmp"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"

	"pathprof/internal/flat"
)

// PathEntry is one executed path's record. Metrics[i] accumulates the event
// named by the owning Profile's Events[i]; the classic two-slot layout puts
// the PIC0 metric (D-cache misses) in slot 0 and PIC1 (instructions) in
// slot 1.
type PathEntry struct {
	Sum     int64  // Ball-Larus path identifier
	Freq    uint64 // executions
	Metrics []uint64
}

// Metric returns slot i's accumulator, treating missing slots as zero.
func (e *PathEntry) Metric(i int) uint64 {
	if i < 0 || i >= len(e.Metrics) {
		return 0
	}
	return e.Metrics[i]
}

// NewEntry builds a PathEntry holding the given metric values. The metrics
// slice is heap-allocated rather than arena-backed — convenient for
// hand-built profiles; bulk extraction should use ProcPaths.NewMetrics.
func NewEntry(sum int64, freq uint64, metrics ...uint64) PathEntry {
	e := PathEntry{Sum: sum, Freq: freq}
	if len(metrics) > 0 {
		e.Metrics = append([]uint64(nil), metrics...)
	}
	return e
}

// ProcPaths is the path profile of one procedure.
type ProcPaths struct {
	ProcID   int
	Name     string
	NumPaths int64 // potential paths (k-paths when the profile's K > 1)
	Entries  []PathEntry

	// K is the procedure's effective path degree: every entry's Sum names
	// a path spanning up to K loop iterations. 0 or 1 is the classic
	// scheme. It can sit below the profile's requested K when the
	// procedure's k-path space was clamped.
	K int

	// arena backs the Entries' Metrics slices in chunks — one allocation
	// per arenaChunk entries instead of one per path, the same discipline
	// the cct package uses for its node records.
	arena []uint64
}

// arenaChunk is the arena growth quantum, in uint64 words.
const arenaChunk = 1024

// NewMetrics carves an n-slot zeroed metrics slice out of the procedure's
// arena. The returned slice has capacity exactly n, so appending to it can
// never bleed into a neighbouring entry.
func (pp *ProcPaths) NewMetrics(n int) []uint64 {
	if n == 0 {
		return nil
	}
	if len(pp.arena)+n > cap(pp.arena) {
		size := arenaChunk
		if n > size {
			size = n
		}
		pp.arena = make([]uint64, 0, size)
	}
	lo := len(pp.arena)
	pp.arena = pp.arena[:lo+n]
	return pp.arena[lo : lo+n : lo+n]
}

// Executed returns how many distinct paths executed.
func (pp *ProcPaths) Executed() int { return len(pp.Entries) }

// Totals sums frequency and per-slot metrics over all executed paths. The
// metrics vector is as wide as the widest entry.
func (pp *ProcPaths) Totals() (freq uint64, metrics []uint64) {
	for _, e := range pp.Entries {
		freq += e.Freq
		for len(metrics) < len(e.Metrics) {
			metrics = append(metrics, 0)
		}
		for i, m := range e.Metrics {
			metrics[i] += m
		}
	}
	return
}

// Sort orders entries by path identifier. Sums are unique within a
// procedure, so the unstable sort is still fully determined.
func (pp *ProcPaths) Sort() {
	slices.SortFunc(pp.Entries, func(a, b PathEntry) int { return cmp.Compare(a.Sum, b.Sum) })
}

// Profile is a complete flow-sensitive profile of one program run.
type Profile struct {
	Program string
	Mode    string

	// K is the requested path degree: path ids span up to K loop
	// iterations (D'Elia–Demetrescu k-iteration paths). 0 or 1 is the
	// classic Ball-Larus scheme. Profiles of different degrees have
	// disjoint id spaces, so K is part of the schema identity.
	K int

	// Events is the metric schema: Events[i] names the hardware event that
	// every entry's Metrics[i] accumulated. The classic schema is
	// {"dcache-miss", "insts"}.
	Events []string

	Procs []*ProcPaths
}

// NumMetrics returns the schema width.
func (p *Profile) NumMetrics() int { return len(p.Events) }

// MetricIndex returns the slot whose event is named, or -1.
func (p *Profile) MetricIndex(name string) int {
	for i, ev := range p.Events {
		if ev == name {
			return i
		}
	}
	return -1
}

// SchemaKey returns the schema as a stable identity string: the
// comma-joined events, prefixed with the path degree when it departs from
// the classic K=1 (so k-path profiles never merge with classic ones —
// their id spaces are disjoint — and collectors 409 on K conflicts).
func (p *Profile) SchemaKey() string { return SchemaKeyFor(p.K, p.Events) }

// SchemaKeyFor builds the schema identity string for a degree and event
// list without requiring a Profile value (collector aggregates keep the
// parts unpacked).
func SchemaKeyFor(k int, events []string) string {
	if k > 1 {
		return "k=" + strconv.Itoa(k) + "|" + strings.Join(events, ",")
	}
	return strings.Join(events, ",")
}

// Proc returns the entry for the given procedure ID, or nil.
func (p *Profile) Proc(id int) *ProcPaths {
	for _, pp := range p.Procs {
		if pp.ProcID == id {
			return pp
		}
	}
	return nil
}

// Totals sums frequency and per-slot metrics over all procedures.
func (p *Profile) Totals() (freq uint64, metrics []uint64) {
	metrics = make([]uint64, len(p.Events))
	for _, pp := range p.Procs {
		f, ms := pp.Totals()
		freq += f
		for len(metrics) < len(ms) {
			metrics = append(metrics, 0)
		}
		for i, m := range ms {
			metrics[i] += m
		}
	}
	return
}

// TotalExecutedPaths counts distinct executed paths across procedures.
func (p *Profile) TotalExecutedPaths() int {
	n := 0
	for _, pp := range p.Procs {
		n += pp.Executed()
	}
	return n
}

// Merge adds other's counts into p (matching procedures by ID). Profiles
// from repeated runs of the same instrumented program can be combined; the
// metric schemas must agree, since slot i of one run is only meaningfully
// summable with slot i of another when both counted the same event.
func (p *Profile) Merge(other *Profile) error {
	if p.SchemaKey() != other.SchemaKey() {
		return fmt.Errorf("profile: merge schema mismatch: %q vs %q", p.SchemaKey(), other.SchemaKey())
	}
	if len(p.Procs) != len(other.Procs) {
		return fmt.Errorf("profile: merge shape mismatch: %d vs %d procs", len(p.Procs), len(other.Procs))
	}
	for i, pp := range p.Procs {
		op := other.Procs[i]
		if pp.ProcID != op.ProcID {
			return fmt.Errorf("profile: merge proc mismatch at %d", i)
		}
		idx := flat.New(len(pp.Entries))
		for j, e := range pp.Entries {
			idx.Set(e.Sum, int64(j))
		}
		for _, e := range op.Entries {
			if j, ok := idx.Get(e.Sum); ok {
				dst := &pp.Entries[j]
				dst.Freq += e.Freq
				for k, m := range e.Metrics {
					if k < len(dst.Metrics) {
						dst.Metrics[k] += m
					}
				}
			} else {
				// Copy the metrics into pp's own arena so merged profiles
				// never alias the source run's storage.
				ne := PathEntry{Sum: e.Sum, Freq: e.Freq}
				if len(e.Metrics) > 0 {
					ne.Metrics = pp.NewMetrics(len(e.Metrics))
					copy(ne.Metrics, e.Metrics)
				}
				pp.Entries = append(pp.Entries, ne)
			}
		}
		pp.Sort()
	}
	return nil
}

// Write encodes the profile as text:
//
//	profile <program> <mode> [k=<K>] <event>...
//	proc <id> <name> <numpaths> [k=<K>]
//	path <sum> <freq> <metric>...
//
// Each path line carries exactly one metric column per schema event (the
// classic two-event schema reproduces the legacy 5-field layout). The k=
// tokens appear only for k-iteration profiles (K > 1): classic profiles
// encode byte-identically to the pre-k format. The proc-level k is the
// procedure's effective (possibly clamped) degree.
func (p *Profile) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "profile %s %s", field(p.Program), field(p.Mode))
	if p.K > 1 {
		fmt.Fprintf(bw, " k=%d", p.K)
	}
	for _, ev := range p.Events {
		fmt.Fprintf(bw, " %s", field(ev))
	}
	bw.WriteByte('\n')
	for _, pp := range p.Procs {
		fmt.Fprintf(bw, "proc %d %s %d", pp.ProcID, field(pp.Name), pp.NumPaths)
		if p.K > 1 {
			fmt.Fprintf(bw, " k=%d", max(pp.K, 1))
		}
		bw.WriteByte('\n')
		for i := range pp.Entries {
			e := &pp.Entries[i]
			fmt.Fprintf(bw, "path %d %d", e.Sum, e.Freq)
			for k := range p.Events {
				fmt.Fprintf(bw, " %d", e.Metric(k))
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

func field(s string) string {
	if s == "" {
		return "-"
	}
	return strings.ReplaceAll(s, " ", "_")
}

func unfield(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

// parseKField recognizes a "k=<n>" token (n >= 1). Event names never
// contain '=', so the token is unambiguous in both header and proc lines.
func parseKField(s string) (int, bool) {
	rest, ok := strings.CutPrefix(s, "k=")
	if !ok {
		return 0, false
	}
	k, err := strconv.Atoi(rest)
	if err != nil || k < 1 {
		return 0, false
	}
	return k, true
}

// Read decodes a profile written by Write. The header's event count fixes
// the expected width of every path line.
func Read(r io.Reader) (*Profile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var p *Profile
	var cur *ProcPaths
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "profile":
			if len(fields) < 3 {
				return nil, fmt.Errorf("profile: line %d: malformed header", line)
			}
			p = &Profile{Program: unfield(fields[1]), Mode: unfield(fields[2])}
			rest := fields[3:]
			if len(rest) > 0 {
				if k, ok := parseKField(rest[0]); ok {
					p.K = k
					rest = rest[1:]
				}
			}
			for _, f := range rest {
				p.Events = append(p.Events, unfield(f))
			}
		case "proc":
			if p == nil || len(fields) < 4 || len(fields) > 5 {
				return nil, fmt.Errorf("profile: line %d: malformed proc", line)
			}
			id, err1 := strconv.Atoi(fields[1])
			np, err2 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("profile: line %d: bad proc numbers", line)
			}
			cur = &ProcPaths{ProcID: id, Name: unfield(fields[2]), NumPaths: np}
			if len(fields) == 5 {
				k, ok := parseKField(fields[4])
				if !ok {
					return nil, fmt.Errorf("profile: line %d: malformed proc", line)
				}
				cur.K = k
			}
			p.Procs = append(p.Procs, cur)
		case "path":
			if cur == nil || len(fields) != 3+len(p.Events) {
				return nil, fmt.Errorf("profile: line %d: malformed path", line)
			}
			var e PathEntry
			var err error
			if e.Sum, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
				return nil, fmt.Errorf("profile: line %d: bad path numbers", line)
			}
			if e.Freq, err = strconv.ParseUint(fields[2], 10, 64); err != nil {
				return nil, fmt.Errorf("profile: line %d: bad path numbers", line)
			}
			if n := len(p.Events); n > 0 {
				e.Metrics = cur.NewMetrics(n)
				for k := 0; k < n; k++ {
					if e.Metrics[k], err = strconv.ParseUint(fields[3+k], 10, 64); err != nil {
						return nil, fmt.Errorf("profile: line %d: bad path numbers", line)
					}
				}
			}
			cur.Entries = append(cur.Entries, e)
		default:
			return nil, fmt.Errorf("profile: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("profile: empty input")
	}
	return p, nil
}
