// Package bl implements Ball-Larus efficient path profiling: the compact
// edge numbering that makes the sum of edge values along every entry→exit
// path a unique identifier in 0..NumPaths-1, the transformation of cyclic
// CFGs into acyclic ones via pseudo edges, path regeneration (identifier →
// block sequence), and the spanning-tree increment optimization.
//
// This is Section 2 of the paper. Given a procedure's CFG the numbering
//
//  1. labels each vertex v with NP(v), the number of paths from v to EXIT in
//     the transformed acyclic graph (NP(EXIT) = 1, NP(v) = Σ NP(wᵢ));
//  2. labels each edge eᵢ = v→wᵢ with Val(eᵢ) = Σ_{j<i} NP(wⱼ), so that path
//     sums are unique and compact;
//  3. replaces each backedge b = v→w with pseudo edges ENTRY→w (whose value
//     becomes the backedge's START) and v→EXIT (its END). At runtime a
//     backedge executes `count[r+END]++; r = START`.
package bl

import (
	"fmt"
	"math"

	"pathprof/internal/cfg"
	"pathprof/internal/ir"
)

// MaxPaths bounds the number of potential paths per procedure; beyond it the
// path sum could overflow practical counter tables. The instrumenter
// switches from an array of counters to a hash table well below this.
const MaxPaths = int64(1) << 40

// EdgeKind distinguishes the edges of the transformed acyclic graph.
type EdgeKind uint8

const (
	// Real is an original CFG edge that is not a backedge.
	Real EdgeKind = iota
	// PseudoStart is a transformed edge ENTRY→w standing for backedge v→w.
	PseudoStart
	// PseudoEnd is a transformed edge v→EXIT standing for backedge v→w.
	PseudoEnd
)

// TEdge is an edge of the transformed (acyclic) graph.
type TEdge struct {
	Kind     EdgeKind
	To       ir.BlockID
	Val      int64
	Slot     int // for Real: successor slot in the source block
	Backedge int // for pseudo edges: index into Numbering.Backedges
}

// Numbering is the complete Ball-Larus numbering of one procedure.
type Numbering struct {
	Proc     *ir.Proc
	NumPaths int64   // NP(ENTRY) of the transformed graph
	NP       []int64 // per block: paths from the block to EXIT

	// Succs is the ordered adjacency of the transformed graph; the order
	// defines the Val assignment and drives path regeneration.
	Succs [][]TEdge

	// Backedges lists the procedure's backedges (DFS from entry) in
	// deterministic order. BStart[i] and BEnd[i] are the values of the
	// pseudo edges that replace Backedges[i].
	Backedges []cfg.Edge
	BStart    []int64
	BEnd      []int64

	// Val maps each real non-backedge edge to its increment. Edges absent
	// from the map (or with value 0) need no instrumentation.
	Val map[cfg.Edge]int64

	// K and NumPathsK describe the k-iteration extension (kpath.go). After
	// New, K == 1 and NumPathsK == NumPaths; ExtendK raises them so ids
	// cover paths spanning up to K loop iterations.
	K         int
	NumPathsK int64

	isBackedge map[cfg.Edge]int // edge -> index in Backedges
	rto        []ir.BlockID     // reverse topological order of the transformed graph

	// Layered numbering data, nil while K == 1 (see kpath.go).
	npk     [][]int64   // [layer][block]: k-path completions from block
	valk    [][][]int64 // [layer][block][pos]: layered edge values
	kbstart []int64     // [backedge]: layer-0 PseudoStart value
}

// New computes the Ball-Larus numbering for p. It returns an error if the
// transformed graph has more than MaxPaths paths or if path counting
// overflows.
func New(p *ir.Proc) (*Numbering, error) {
	n := len(p.Blocks)
	nm := &Numbering{
		Proc:       p,
		NP:         make([]int64, n),
		Succs:      make([][]TEdge, n),
		Val:        make(map[cfg.Edge]int64),
		isBackedge: make(map[cfg.Edge]int),
	}

	// The pseudo-edge transform requires a canonical ENTRY with no incoming
	// edges (a backedge into block 0 would turn its ENTRY→w pseudo edge
	// into a self-loop). Callers normalize by splitting the entry block
	// first, as the instrumenter does.
	for _, b := range p.Blocks {
		for _, s := range b.Succs {
			if s == 0 {
				return nil, fmt.Errorf("bl: proc %s: entry block has an incoming edge from block %d; split the entry first", p.Name, b.ID)
			}
		}
	}

	for i, e := range cfg.Backedges(p) {
		nm.Backedges = append(nm.Backedges, e)
		nm.isBackedge[e] = i
	}
	nm.BStart = make([]int64, len(nm.Backedges))
	nm.BEnd = make([]int64, len(nm.Backedges))

	// Build the transformed adjacency: real non-backedge edges in slot
	// order, then pseudo end edges (v→EXIT) for backedges sourced at v,
	// then — at ENTRY only — pseudo start edges (ENTRY→w).
	exit := p.ExitBlock
	for _, b := range p.Blocks {
		for slot, s := range b.Succs {
			e := cfg.Edge{From: b.ID, To: s, Slot: slot}
			if _, isBE := nm.isBackedge[e]; isBE {
				continue
			}
			nm.Succs[b.ID] = append(nm.Succs[b.ID], TEdge{Kind: Real, To: s, Slot: slot})
		}
	}
	for i, be := range nm.Backedges {
		nm.Succs[be.From] = append(nm.Succs[be.From], TEdge{Kind: PseudoEnd, To: exit, Backedge: i})
	}
	for i, be := range nm.Backedges {
		nm.Succs[0] = append(nm.Succs[0], TEdge{Kind: PseudoStart, To: be.To, Backedge: i})
	}

	// Reverse topological order of the transformed graph.
	order, err := cfg.ReverseTopologicalAdj(n, func(b ir.BlockID) []ir.BlockID {
		es := nm.Succs[b]
		out := make([]ir.BlockID, len(es))
		for i, e := range es {
			out[i] = e.To
		}
		return out
	})
	if err != nil {
		return nil, fmt.Errorf("bl: proc %s: transformed graph is cyclic: %w", p.Name, err)
	}
	nm.rto = order

	// First pass: NP.
	for _, b := range order {
		if b == exit {
			nm.NP[b] = 1
			continue
		}
		var np int64
		for _, e := range nm.Succs[b] {
			np += nm.NP[e.To]
			if np < 0 || np > MaxPaths {
				return nil, fmt.Errorf("bl: proc %s: more than %d paths", p.Name, MaxPaths)
			}
		}
		if np == 0 && b != exit {
			// A non-exit block with no outgoing transformed edges cannot
			// happen in a validated CFG (all blocks reach exit), but guard
			// against it to keep NP well defined.
			return nil, fmt.Errorf("bl: proc %s: block %d has no path to exit", p.Name, b)
		}
		nm.NP[b] = np
	}
	nm.NumPaths = nm.NP[0]
	nm.K = 1
	nm.NumPathsK = nm.NumPaths

	// Second pass: Val(eᵢ) = Σ_{j<i} NP(wⱼ) over each block's ordered
	// successor list.
	for _, b := range p.Blocks {
		var sum int64
		for i := range nm.Succs[b.ID] {
			e := &nm.Succs[b.ID][i]
			e.Val = sum
			sum += nm.NP[e.To]
			switch e.Kind {
			case Real:
				if e.Val != 0 {
					nm.Val[cfg.Edge{From: b.ID, To: e.To, Slot: e.Slot}] = e.Val
				}
			case PseudoStart:
				nm.BStart[e.Backedge] = e.Val
			case PseudoEnd:
				nm.BEnd[e.Backedge] = e.Val
			}
		}
	}
	return nm, nil
}

// BackedgeIndex returns the index of e in Backedges and whether e is a
// backedge.
func (nm *Numbering) BackedgeIndex(e cfg.Edge) (int, bool) {
	i, ok := nm.isBackedge[e]
	return i, ok
}

// EdgeVal returns the increment for a real edge (0 if none).
func (nm *Numbering) EdgeVal(e cfg.Edge) int64 { return nm.Val[e] }

// CounterSlots returns how many counters a profile of this procedure needs:
// one per potential path.
func (nm *Numbering) CounterSlots() int64 { return nm.NumPaths }

// CompactError reports why a numbering is not compact. For violations found
// on a concrete path (an out-of-range or duplicated sum) Path carries the
// offending entry→exit block sequence of the transformed graph, so callers
// can show exactly which path breaks the bijection.
type CompactError struct {
	Kind       string       // "too-many-paths", "out-of-range", "duplicate", "count-mismatch"
	Sum        int64        // the offending path sum (out-of-range, duplicate)
	Path       []ir.BlockID // offending path, entry..exit; nil when not path-specific
	NumPaths   int64        // NP(entry) — NumPathsK when K > 1
	Enumerated int64        // paths enumerated (count-mismatch)

	// K is the numbering degree the check ran at (0 or 1: the classic
	// single-iteration scheme). Iteration is the 0-based loop-iteration
	// segment of Path in which the violating sum completed — for a k-path
	// that crosses back-edges it pinpoints which iteration boundary broke
	// the bijection.
	K         int
	Iteration int
}

func (e *CompactError) Error() string {
	if e.K > 1 {
		switch e.Kind {
		case "too-many-paths":
			return fmt.Sprintf("bl: too many k=%d paths to enumerate (%d)", e.K, e.NumPaths)
		case "out-of-range":
			return fmt.Sprintf("bl: k=%d path %v sums to %d, out of range [0,%d) (completed in iteration %d)",
				e.K, e.Path, e.Sum, e.NumPaths, e.Iteration)
		case "duplicate":
			return fmt.Sprintf("bl: k=%d path %v duplicates sum %d (completed in iteration %d)",
				e.K, e.Path, e.Sum, e.Iteration)
		}
		return fmt.Sprintf("bl: k=%d enumerated %d paths, NPK(entry)=%d", e.K, e.Enumerated, e.NumPaths)
	}
	switch e.Kind {
	case "too-many-paths":
		return fmt.Sprintf("bl: too many paths to enumerate (%d)", e.NumPaths)
	case "out-of-range":
		return fmt.Sprintf("bl: path %v sums to %d, out of range [0,%d)", e.Path, e.Sum, e.NumPaths)
	case "duplicate":
		return fmt.Sprintf("bl: path %v duplicates sum %d", e.Path, e.Sum)
	}
	return fmt.Sprintf("bl: enumerated %d paths, NP(entry)=%d", e.Enumerated, e.NumPaths)
}

// CheckCompact verifies (by exhaustive enumeration; intended for tests,
// verifiers, and small procedures) that path sums are exactly a bijection
// onto 0..NumPaths-1. The error, when non-nil, is a *CompactError carrying
// the first offending path.
func (nm *Numbering) CheckCompact() error {
	if nm.NumPaths > 1<<20 {
		return &CompactError{Kind: "too-many-paths", NumPaths: nm.NumPaths}
	}
	seen := make([]bool, nm.NumPaths)
	count := int64(0)
	trail := []ir.BlockID{0}
	var walk func(b ir.BlockID, sum int64) error
	walk = func(b ir.BlockID, sum int64) error {
		if b == nm.Proc.ExitBlock {
			if sum < 0 || sum >= nm.NumPaths {
				return &CompactError{Kind: "out-of-range", Sum: sum, Path: append([]ir.BlockID(nil), trail...), NumPaths: nm.NumPaths}
			}
			if seen[sum] {
				return &CompactError{Kind: "duplicate", Sum: sum, Path: append([]ir.BlockID(nil), trail...), NumPaths: nm.NumPaths}
			}
			seen[sum] = true
			count++
			return nil
		}
		for _, e := range nm.Succs[b] {
			trail = append(trail, e.To)
			err := walk(e.To, sum+e.Val)
			trail = trail[:len(trail)-1]
			if err != nil {
				return err
			}
		}
		return nil
	}
	// Paths from ENTRY cover both ordinary paths and those beginning with a
	// pseudo start edge, because pseudo start edges hang off ENTRY.
	if err := walk(0, 0); err != nil {
		return err
	}
	if count != nm.NumPaths {
		return &CompactError{Kind: "count-mismatch", NumPaths: nm.NumPaths, Enumerated: count}
	}
	return nil
}

// MaxVal returns the largest edge value in the numbering, a proxy for how
// large the tracking register can grow between increments.
func (nm *Numbering) MaxVal() int64 {
	max := int64(math.MinInt64)
	found := false
	for _, es := range nm.Succs {
		for _, e := range es {
			if e.Val > max {
				max = e.Val
				found = true
			}
		}
	}
	if !found {
		return 0
	}
	return max
}
