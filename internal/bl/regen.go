package bl

import (
	"fmt"
	"strings"

	"pathprof/internal/ir"
)

// Path is a regenerated Ball-Larus path: the block sequence of one acyclic
// path, plus whether the path starts just after a backedge and/or ends by
// taking one (the four path categories of Section 2.2 of the paper).
type Path struct {
	Sum    int64
	Blocks []ir.BlockID

	// StartsAfterBackedge is true when the path's first block is a backedge
	// target w (the path began by executing backedge v→w) rather than ENTRY.
	StartsAfterBackedge bool
	// EndsWithBackedge is true when the path ends by executing a backedge
	// out of its last block rather than reaching EXIT.
	EndsWithBackedge bool

	// Edges records the transformed edges taken, as (block, position)
	// references into Numbering.Succs. Block sequences alone cannot
	// distinguish parallel edges (e.g. both arms of a branch reaching the
	// same target), so tools that need the exact edges use this.
	Edges []SuccRef

	// K is the numbering degree the path was regenerated under (0 or 1:
	// classic). Boundaries holds, for k-paths that cross backedges, the
	// Blocks index at which each subsequent iteration segment begins.
	K          int
	Boundaries []int
}

// String renders the path compactly, e.g. "↻b2 b3 b4↻" for a loop body path
// that both starts after and ends with a backedge. k-paths mark each
// internal iteration boundary the same way: "b1 b2 ↻b1 b3" is a two-
// iteration path whose second segment re-enters the loop head.
func (p Path) String() string {
	var sb strings.Builder
	if p.StartsAfterBackedge {
		sb.WriteString("↻")
	}
	next := 0
	for i, b := range p.Blocks {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if next < len(p.Boundaries) && p.Boundaries[next] == i {
			sb.WriteString("↻")
			next++
		}
		fmt.Fprintf(&sb, "b%d", b)
	}
	if p.EndsWithBackedge {
		sb.WriteString("↻")
	}
	return sb.String()
}

// Len returns the number of blocks on the path.
func (p Path) Len() int { return len(p.Blocks) }

// Regenerate reconstructs the path with the given sum. It inverts the
// numbering: starting at ENTRY with the remaining sum, it repeatedly takes
// the unique outgoing transformed edge e with Val(e) <= rem < Val(e)+NP(to),
// which exists and is unique by construction.
//
// Pseudo edges are translated back into path metadata: taking a PseudoStart
// edge as the first step means the path begins at a backedge target (ENTRY
// is not on the path); taking a PseudoEnd edge means the path ends with a
// backedge (EXIT is not appended).
func (nm *Numbering) Regenerate(sum int64) (Path, error) {
	if sum < 0 || sum >= nm.NumPaths {
		return Path{}, fmt.Errorf("bl: path sum %d out of range [0,%d)", sum, nm.NumPaths)
	}
	p := Path{Sum: sum}
	exit := nm.Proc.ExitBlock

	at := ir.BlockID(0)
	p.Blocks = append(p.Blocks, at) // provisional; replaced if first edge is PseudoStart
	rem := sum
	for at != exit {
		var chosen *TEdge
		pos := -1
		for i := range nm.Succs[at] {
			e := &nm.Succs[at][i]
			if rem >= e.Val && rem < e.Val+nm.NP[e.To] {
				chosen = e
				pos = i
				break
			}
		}
		if chosen == nil {
			return Path{}, fmt.Errorf("bl: no edge matches remaining sum %d at block %d", rem, at)
		}
		p.Edges = append(p.Edges, SuccRef{Block: int(at), Pos: pos})
		rem -= chosen.Val
		switch chosen.Kind {
		case Real:
			p.Blocks = append(p.Blocks, chosen.To)
		case PseudoStart:
			// Only ever the first step (ENTRY has no transformed in-edges,
			// since every original edge into ENTRY is a backedge).
			p.StartsAfterBackedge = true
			p.Blocks[0] = chosen.To
		case PseudoEnd:
			p.EndsWithBackedge = true
			return p, nil
		}
		at = chosen.To
	}
	return p, nil
}

// Enumerate lists every potential path of the procedure in path-sum order.
// It is linear in NumPaths × path length and intended for reports on
// procedures with modest NumPaths and for tests.
func (nm *Numbering) Enumerate() ([]Path, error) {
	if nm.NumPaths > 1<<20 {
		return nil, fmt.Errorf("bl: refusing to enumerate %d paths", nm.NumPaths)
	}
	out := make([]Path, 0, nm.NumPaths)
	for s := int64(0); s < nm.NumPaths; s++ {
		p, err := nm.Regenerate(s)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
