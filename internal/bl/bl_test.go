package bl

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pathprof/internal/cfg"
	"pathprof/internal/ir"
	"pathprof/internal/testgen"
)

// figure1Proc builds the CFG of Figure 1 of the paper: six paths
// A{B?}{C?}D{E?}F with edges A→B, A→C, B→C, B→D, C→D, D→E, D→F, E→F.
func figure1Proc(t *testing.T) *ir.Proc {
	t.Helper()
	b := ir.NewBuilder("fig1")
	p := b.NewProc("f", 0)
	A := p.NewBlock()
	B := p.NewBlock()
	C := p.NewBlock()
	D := p.NewBlock()
	E := p.NewBlock()
	F := p.NewBlock()
	A.Nop()
	A.Br(2, B, C)
	B.Nop()
	B.Br(2, C, D)
	C.Nop()
	C.Jmp(D)
	D.Nop()
	D.Br(2, E, F)
	E.Nop()
	E.Jmp(F)
	F.Ret()
	b.SetMain(p)
	return b.MustFinish().Procs[0]
}

func TestFigure1NumPaths(t *testing.T) {
	nm, err := New(figure1Proc(t))
	if err != nil {
		t.Fatal(err)
	}
	if nm.NumPaths != 6 {
		t.Fatalf("NumPaths = %d, want 6 (Figure 1)", nm.NumPaths)
	}
	if err := nm.CheckCompact(); err != nil {
		t.Fatal(err)
	}
	if len(nm.Backedges) != 0 {
		t.Fatalf("acyclic graph reported %d backedges", len(nm.Backedges))
	}
}

func TestFigure1PathsEnumerate(t *testing.T) {
	nm, err := New(figure1Proc(t))
	if err != nil {
		t.Fatal(err)
	}
	paths, err := nm.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	// The six paths of Figure 1(b), as block-ID sequences
	// (A=0 B=1 C=2 D=3 E=4 F=5).
	want := map[string]bool{
		"0 2 3 5":     true, // ACDF
		"0 2 3 4 5":   true, // ACDEF
		"0 1 2 3 5":   true, // ABCDF
		"0 1 2 3 4 5": true, // ABCDEF
		"0 1 3 5":     true, // ABDF
		"0 1 3 4 5":   true, // ABDEF
	}
	for _, p := range paths {
		key := ""
		for i, b := range p.Blocks {
			if i > 0 {
				key += " "
			}
			key += itoa(int(b))
		}
		if !want[key] {
			t.Errorf("unexpected path %q (sum %d)", key, p.Sum)
		}
		delete(want, key)
		if p.StartsAfterBackedge || p.EndsWithBackedge {
			t.Errorf("acyclic path %d has backedge flags", p.Sum)
		}
	}
	if len(want) != 0 {
		t.Errorf("paths not generated: %v", want)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// loopProc builds entry→header; header→{body, exit}; body→header.
func loopProc(t *testing.T) *ir.Proc {
	t.Helper()
	b := ir.NewBuilder("loop")
	p := b.NewProc("f", 0)
	entry := p.NewBlock()
	header := p.NewBlock()
	body := p.NewBlock()
	exit := p.NewBlock()
	entry.MovI(2, 0)
	entry.Jmp(header)
	header.CmpLTI(3, 2, 10)
	header.Br(3, body, exit)
	body.AddI(2, 2, 1)
	body.Jmp(header)
	exit.Ret()
	b.SetMain(p)
	return b.MustFinish().Procs[0]
}

func TestLoopTransform(t *testing.T) {
	nm, err := New(loopProc(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(nm.Backedges) != 1 {
		t.Fatalf("backedges = %d, want 1", len(nm.Backedges))
	}
	// Four path categories: entry→exit, entry→backedge, backedge→backedge,
	// backedge→exit.
	if nm.NumPaths != 4 {
		t.Fatalf("NumPaths = %d, want 4", nm.NumPaths)
	}
	if err := nm.CheckCompact(); err != nil {
		t.Fatal(err)
	}
	paths, err := nm.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	var starts, ends int
	for _, p := range paths {
		if p.StartsAfterBackedge {
			starts++
		}
		if p.EndsWithBackedge {
			ends++
		}
	}
	if starts != 2 || ends != 2 {
		t.Fatalf("starts=%d ends=%d, want 2 and 2", starts, ends)
	}
}

func TestSelfLoop(t *testing.T) {
	b := ir.NewBuilder("selfloop")
	p := b.NewProc("f", 0)
	entry := p.NewBlock()
	body := p.NewBlock()
	exit := p.NewBlock()
	entry.MovI(2, 0)
	entry.Jmp(body)
	body.AddI(2, 2, 1)
	body.CmpLTI(3, 2, 5)
	body.Br(3, body, exit)
	exit.Ret()
	b.SetMain(p)
	proc := b.MustFinish().Procs[0]

	nm, err := New(proc)
	if err != nil {
		t.Fatal(err)
	}
	if len(nm.Backedges) != 1 {
		t.Fatalf("backedges = %d, want 1 (self loop)", len(nm.Backedges))
	}
	if err := nm.CheckCompact(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleBlockProc(t *testing.T) {
	b := ir.NewBuilder("one")
	p := b.NewProc("f", 0)
	blk := p.NewBlock()
	blk.MovI(1, 42)
	blk.Ret()
	b.SetMain(p)
	nm, err := New(b.MustFinish().Procs[0])
	if err != nil {
		t.Fatal(err)
	}
	if nm.NumPaths != 1 {
		t.Fatalf("NumPaths = %d, want 1", nm.NumPaths)
	}
	path, err := nm.Regenerate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(path.Blocks) != 1 || path.Blocks[0] != 0 {
		t.Fatalf("path = %v, want [0]", path.Blocks)
	}
}

// TestPathSumsCompactRandom is the central property: for random cyclic
// CFGs, path sums are a bijection onto 0..NumPaths-1.
func TestPathSumsCompactRandom(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		proc := testgen.RandomProc(rng, "r", rng.Intn(14)+3)
		nm, err := New(proc)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if nm.NumPaths > 1<<18 {
			return true // too big to enumerate; skip
		}
		if err := nm.CheckCompact(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRegenerateInverse checks that regenerating a path and re-walking it
// through the numbering reproduces the original sum.
func TestRegenerateInverse(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		proc := testgen.RandomProc(rng, "r", rng.Intn(12)+3)
		nm, err := New(proc)
		if err != nil || nm.NumPaths > 1<<14 {
			return err == nil
		}
		for s := int64(0); s < nm.NumPaths; s++ {
			p, err := nm.Regenerate(s)
			if err != nil {
				t.Logf("seed %d sum %d: %v", seed, s, err)
				return false
			}
			if got := walkSum(nm, p); got != s {
				t.Logf("seed %d: walk of regenerated path gives %d, want %d", seed, got, s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// walkSum recomputes a path's sum from its recorded transformed edges.
func walkSum(nm *Numbering, p Path) int64 {
	sum := int64(0)
	for _, ref := range p.Edges {
		sum += nm.Succs[ref.Block][ref.Pos].Val
	}
	return sum
}

// TestOptimizedIncrementsPreserveSums checks the chord optimization:
// optimized increments reproduce every path's sum.
func TestOptimizedIncrementsPreserveSums(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		proc := testgen.RandomProc(rng, "r", rng.Intn(14)+3)
		nm, err := New(proc)
		if err != nil || nm.NumPaths > 1<<16 {
			return err == nil
		}
		inc, err := nm.Optimize(nil)
		if err != nil {
			t.Logf("seed %d: optimize: %v", seed, err)
			return false
		}
		if err := inc.VerifyPathSums(nm); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestOptimizeInstrumentationSites checks the static shape of the chord
// placement: the number of instrumented edges stays within one site of the
// basic placement (the optimization's real win is *where* increments land —
// off the hot tree edges — which the instrument package's overhead tests
// measure dynamically).
func TestOptimizeInstrumentationSites(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	total := 0
	for i := 0; i < 100; i++ {
		proc := testgen.RandomProc(rng, "r", rng.Intn(14)+4)
		nm, err := New(proc)
		if err != nil || nm.NumPaths > 1<<18 {
			continue
		}
		basic := nm.BasicIncrements()
		opt, err := nm.Optimize(nil)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if opt.Instrumented > opt.TotalEdges {
			t.Fatalf("instrumented %d of %d edges", opt.Instrumented, opt.TotalEdges)
		}
		if basic.Instrumented > basic.TotalEdges {
			t.Fatalf("basic placement instrumented %d of %d edges", basic.Instrumented, basic.TotalEdges)
		}
	}
	if total == 0 {
		t.Fatal("no testable graphs generated")
	}
}

func TestBasicIncrementsMatchNumbering(t *testing.T) {
	nm, err := New(figure1Proc(t))
	if err != nil {
		t.Fatal(err)
	}
	inc := nm.BasicIncrements()
	if err := inc.VerifyPathSums(nm); err != nil {
		t.Fatal(err)
	}
	if inc.TotalEdges != 8 {
		t.Fatalf("TotalEdges = %d, want 8", inc.TotalEdges)
	}
}

func TestEdgeValSumsWithinRange(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		proc := testgen.RandomAcyclicProc(rng, "r", rng.Intn(16)+3)
		nm, err := New(proc)
		if err != nil {
			return false
		}
		for _, e := range cfg.Edges(proc) {
			v := nm.EdgeVal(e)
			if v < 0 || v >= nm.NumPaths {
				t.Logf("seed %d: edge %v value %d out of [0,%d)", seed, e, v, nm.NumPaths)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxValNonNegative(t *testing.T) {
	nm, err := New(loopProc(t))
	if err != nil {
		t.Fatal(err)
	}
	if nm.MaxVal() < 0 {
		t.Fatalf("MaxVal = %d", nm.MaxVal())
	}
}

// TestPrefixSumsUniquePerBlock: partial path sums uniquely identify the
// prefix among all prefixes ending at the same block — the property that
// makes the CCT's "one path to this call site" classification exact (the
// paper's Table 3 One Path column). Proof by contradiction with full-path
// uniqueness; verified here by enumeration on random CFGs.
func TestPrefixSumsUniquePerBlock(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		proc := testgen.RandomProc(rng, "r", rng.Intn(10)+3)
		nm, err := New(proc)
		if err != nil || nm.NumPaths > 1<<14 {
			return err == nil
		}
		// Enumerate all prefixes of the transformed graph; at each block,
		// the (prefix path, partial sum) mapping must be injective.
		type key struct {
			block ir.BlockID
			sum   int64
		}
		seen := map[key]string{}
		var walk func(b ir.BlockID, sum int64, trail string) bool
		walk = func(b ir.BlockID, sum int64, trail string) bool {
			k := key{b, sum}
			if prev, ok := seen[k]; ok && prev != trail {
				t.Logf("seed %d: prefixes %q and %q share sum %d at block %d", seed, prev, trail, sum, b)
				return false
			}
			seen[k] = trail
			if b == proc.ExitBlock {
				return true
			}
			for pos, te := range nm.Succs[b] {
				if !walk(te.To, sum+te.Val, trail+" "+itoa(pos)+":"+itoa(int(te.To))) {
					return false
				}
			}
			return true
		}
		return walk(0, 0, "")
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestRegeneratePrefixInverse: for every prefix of every potential path,
// the (block, partial sum) pair regenerates exactly that prefix.
func TestRegeneratePrefixInverse(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		proc := testgen.RandomProc(rng, "r", rng.Intn(9)+3)
		nm, err := New(proc)
		if err != nil || nm.NumPaths > 1<<10 {
			return err == nil
		}
		paths, err := nm.Enumerate()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, p := range paths {
			sum := int64(0)
			for i, ref := range p.Edges {
				te := nm.Succs[ref.Block][ref.Pos]
				if te.Kind == PseudoEnd {
					break // prefixes never include the final backedge
				}
				sum += te.Val
				// Edge i lands on Blocks[i+1] for ordinary paths (which
				// include ENTRY as Blocks[0]) and on Blocks[i] for paths
				// that start after a backedge (edge 0 is the pseudo edge
				// delivering Blocks[0]).
				var at ir.BlockID
				var want []ir.BlockID
				if p.StartsAfterBackedge {
					at = p.Blocks[i]
					want = p.Blocks[:i+1]
				} else {
					at = p.Blocks[i+1]
					want = p.Blocks[:i+2]
				}
				got, err := nm.RegeneratePrefix(at, sum)
				if err != nil {
					t.Logf("seed %d: prefix (b%d, %d): %v", seed, at, sum, err)
					return false
				}
				if len(got.Blocks) != len(want) {
					t.Logf("seed %d: prefix (b%d,%d): got %v want %v", seed, at, sum, got.Blocks, want)
					return false
				}
				for j := range want {
					if got.Blocks[j] != want[j] {
						t.Logf("seed %d: prefix (b%d,%d): got %v want %v", seed, at, sum, got.Blocks, want)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCompactReportsOffendingPath(t *testing.T) {
	nm, err := New(figure1Proc(t))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one edge value: every path through it now collides with (or
	// escapes) the compact range, and the error must carry that path.
corrupt:
	for b := range nm.Succs {
		for i := range nm.Succs[b] {
			if nm.Succs[b][i].Val != 0 {
				nm.Succs[b][i].Val += 2
				break corrupt
			}
		}
	}
	err = nm.CheckCompact()
	var ce *CompactError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *CompactError", err, err)
	}
	if ce.Kind != "out-of-range" && ce.Kind != "duplicate" {
		t.Fatalf("Kind = %q, want out-of-range or duplicate", ce.Kind)
	}
	if len(ce.Path) < 2 || ce.Path[0] != 0 || ce.Path[len(ce.Path)-1] != nm.Proc.ExitBlock {
		t.Fatalf("Path = %v, want entry..exit sequence", ce.Path)
	}
}
