package bl_test

import (
	"fmt"

	"pathprof/internal/bl"
	"pathprof/internal/ir"
)

// Example numbers the paper's Figure 1 CFG and regenerates a path from its
// identifier.
func Example() {
	// Build A→{B,C}, B→{C,D}, C→D, D→{E,F}, E→F: six paths A..F.
	b := ir.NewBuilder("fig1")
	p := b.NewProc("f", 0)
	A := p.NewBlock()
	B := p.NewBlock()
	C := p.NewBlock()
	D := p.NewBlock()
	E := p.NewBlock()
	F := p.NewBlock()
	A.Nop()
	A.Br(2, B, C)
	B.Nop()
	B.Br(2, C, D)
	C.Nop()
	C.Jmp(D)
	D.Nop()
	D.Br(2, E, F)
	E.Nop()
	E.Jmp(F)
	F.Ret()
	b.SetMain(p)

	nm, err := bl.New(b.MustFinish().Procs[0])
	if err != nil {
		panic(err)
	}
	fmt.Println("paths:", nm.NumPaths)
	path, _ := nm.Regenerate(0)
	fmt.Println("path 0:", path)
	path, _ = nm.Regenerate(nm.NumPaths - 1)
	fmt.Println("last path:", path)
	// Output:
	// paths: 6
	// path 0: b0 b1 b2 b3 b4 b5
	// last path: b0 b2 b3 b5
}
