package bl

import (
	"cmp"
	"fmt"
	"slices"
)

// Increments is a re-placement of the numbering's edge values onto the
// chords of a spanning tree, so that fewer (typically the less frequently
// executed) edges need instrumentation while every path still computes its
// original path sum. This is the instrumentation optimization of the
// original path-profiling work ([BL96]/[Bal94]): add the edge EXIT→ENTRY,
// pick a spanning tree of the transformed graph that contains it, and push
// edge values off tree edges onto chords via vertex potentials.
//
// Values can be negative; the tracking register may go transiently negative
// but every complete path still sums to its identifier in 0..NumPaths-1.
type Increments struct {
	// Real holds the new increment for each real transformed edge, indexed
	// as (block, successor-list position within Numbering.Succs). A zero
	// increment needs no instrumentation.
	Real map[SuccRef]int64
	// BStart and BEnd are the backedge operation constants after
	// optimization: backedge i executes count[r+BEnd[i]]++; r = BStart[i].
	BStart []int64
	BEnd   []int64
	// Instrumented counts the edges with non-zero increments (for reports).
	Instrumented int
	// TotalEdges counts all transformed edges (excluding EXIT→ENTRY).
	TotalEdges int
}

// SuccRef names one transformed edge by source block and position in
// Numbering.Succs[block].
type SuccRef struct {
	Block int
	Pos   int
}

// BasicIncrements returns the unoptimized placement: every non-zero real
// edge value is an increment, and backedges use the raw pseudo-edge values.
func (nm *Numbering) BasicIncrements() *Increments {
	inc := &Increments{
		Real:   make(map[SuccRef]int64),
		BStart: append([]int64(nil), nm.BStart...),
		BEnd:   append([]int64(nil), nm.BEnd...),
	}
	for b := range nm.Succs {
		for pos, te := range nm.Succs[b] {
			inc.TotalEdges++
			if te.Kind == Real && te.Val != 0 {
				inc.Real[SuccRef{Block: b, Pos: pos}] = te.Val
				inc.Instrumented++
			}
		}
	}
	inc.Instrumented += len(nm.Backedges)
	return inc
}

// Optimize computes chord increments for the numbering. freqHint, if
// non-nil, gives relative execution-frequency estimates per transformed edge
// (higher = hotter = more desirable to leave uninstrumented); when nil, a
// static heuristic is used that treats backedge-related pseudo edges as hot.
func (nm *Numbering) Optimize(freqHint func(SuccRef) int64) (*Increments, error) {
	n := len(nm.Proc.Blocks)
	entry, exit := 0, int(nm.Proc.ExitBlock)

	type uedge struct {
		ref    SuccRef // identifies the directed transformed edge; {-1,-1} for EXIT→ENTRY
		u, v   int     // directed: u -> v
		weight int64
	}
	var edges []uedge
	for b := 0; b < n; b++ {
		for pos, te := range nm.Succs[b] {
			ref := SuccRef{Block: b, Pos: pos}
			var w int64 = 1
			if te.Kind != Real {
				// Backedge instrumentation (count[r+END]; r=START) is
				// mandatory whether or not its pseudo edges join the tree,
				// so pseudo edges must not displace hot real edges: give
				// them no weight and let Kruskal take them only when needed
				// for spanning.
				w = 0
			} else if freqHint != nil {
				w = freqHint(ref)
			}
			edges = append(edges, uedge{ref: ref, u: b, v: int(te.To), weight: w})
		}
	}

	// Maximum spanning tree (Kruskal) over the undirected view, with
	// EXIT→ENTRY forced in first so vertex potentials preserve path sums
	// exactly (phi(EXIT) == phi(ENTRY) == 0).
	slices.SortStableFunc(edges, func(a, b uedge) int { return cmp.Compare(b.weight, a.weight) })
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) bool {
		ra, rb := find(a), find(b)
		if ra == rb {
			return false
		}
		parent[ra] = rb
		return true
	}

	type treeLink struct {
		to      int
		forward bool  // true when the directed edge goes parent→child here
		val     int64 // Val of the directed edge (0 for EXIT→ENTRY)
	}
	tree := make([][]treeLink, n)
	inTree := map[SuccRef]bool{}

	if entry != exit {
		union(exit, entry)
		tree[exit] = append(tree[exit], treeLink{to: entry, forward: true, val: 0})
		tree[entry] = append(tree[entry], treeLink{to: exit, forward: false, val: 0})
	}
	for _, e := range edges {
		if union(e.u, e.v) {
			inTree[e.ref] = true
			val := nm.Succs[e.u][e.ref.Pos].Val
			tree[e.u] = append(tree[e.u], treeLink{to: e.v, forward: true, val: val})
			tree[e.v] = append(tree[e.v], treeLink{to: e.u, forward: false, val: val})
		}
	}

	// Vertex potentials phi: phi(entry)=0; along tree edge u→v,
	// phi(v) = phi(u) + Val(u→v).
	phi := make([]int64, n)
	seen := make([]bool, n)
	seen[entry] = true
	stack := []int{entry}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, l := range tree[u] {
			if seen[l.to] {
				continue
			}
			seen[l.to] = true
			if l.forward {
				phi[l.to] = phi[u] + l.val
			} else {
				phi[l.to] = phi[u] - l.val
			}
			stack = append(stack, l.to)
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			return nil, fmt.Errorf("bl: spanning tree does not reach block %d", v)
		}
	}

	inc := &Increments{
		Real:   make(map[SuccRef]int64),
		BStart: make([]int64, len(nm.Backedges)),
		BEnd:   make([]int64, len(nm.Backedges)),
	}
	for b := 0; b < n; b++ {
		for pos, te := range nm.Succs[b] {
			inc.TotalEdges++
			ref := SuccRef{Block: b, Pos: pos}
			newVal := te.Val
			if inTree[ref] {
				newVal = 0
			} else {
				newVal = te.Val + phi[b] - phi[te.To]
			}
			switch te.Kind {
			case Real:
				if newVal != 0 {
					inc.Real[ref] = newVal
					inc.Instrumented++
				}
			case PseudoStart:
				// The backedge resets r to the pseudo-start edge's
				// contribution measured from ENTRY's potential (0).
				inc.BStart[te.Backedge] = newVal
			case PseudoEnd:
				inc.BEnd[te.Backedge] = newVal
			}
		}
	}
	// Backedge instrumentation always executes (the combined op), so count
	// backedges as instrumented edges.
	inc.Instrumented += len(nm.Backedges)
	return inc, nil
}

// VerifyPathSums checks (by exhaustive walk; for tests and small procs) that
// the optimized increments reproduce every path's original sum. For the
// walk, taking PseudoStart edge i contributes BStart[i] as the new running
// value and PseudoEnd edge i contributes BEnd[i].
func (inc *Increments) VerifyPathSums(nm *Numbering) error {
	if nm.NumPaths > 1<<18 {
		return fmt.Errorf("bl: too many paths to verify (%d)", nm.NumPaths)
	}
	var walk func(b int, want, got int64) error
	walk = func(b int, want, got int64) error {
		if b == int(nm.Proc.ExitBlock) {
			if want != got {
				return fmt.Errorf("bl: path sum mismatch: numbering %d, optimized %d", want, got)
			}
			return nil
		}
		for pos, te := range nm.Succs[b] {
			w2 := want + te.Val
			var g2 int64
			switch te.Kind {
			case Real:
				g2 = got + inc.Real[SuccRef{Block: b, Pos: pos}]
			case PseudoStart:
				g2 = inc.BStart[te.Backedge] // resets the register
			case PseudoEnd:
				g2 = got + inc.BEnd[te.Backedge]
			}
			if err := walk(int(te.To), w2, g2); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(0, 0, 0)
}
