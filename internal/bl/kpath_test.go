package bl

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pathprof/internal/testgen"
)

func TestExtendKLoopSpaces(t *testing.T) {
	// entry→header; header→{body, exit}; body→header. One loop, one
	// acyclic decision per iteration: 2k+2 k-paths (ENTRY or mid-loop
	// start, 0..k-1 extra iterations, exit or truncation).
	for k, want := range map[int]int64{1: 4, 2: 6, 3: 8, 4: 10} {
		nm, err := New(loopProc(t))
		if err != nil {
			t.Fatal(err)
		}
		eff, err := nm.ExtendK(k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if eff != k && !(k == 1 && eff == 1) {
			t.Fatalf("k=%d: effective degree %d", k, eff)
		}
		if nm.NumPathsK != want {
			t.Fatalf("k=%d: NumPathsK = %d, want %d", k, nm.NumPathsK, want)
		}
		if err := nm.CheckCompactK(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestExtendKOneIsIdentity(t *testing.T) {
	nm, err := New(loopProc(t))
	if err != nil {
		t.Fatal(err)
	}
	base, err := New(loopProc(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nm.ExtendK(3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := nm.ExtendK(1, 0); err != nil {
		t.Fatal(err)
	}
	if nm.K != 1 || nm.NumPathsK != base.NumPaths || nm.npk != nil || nm.valk != nil || nm.kbstart != nil {
		t.Fatalf("ExtendK(1) did not restore the classic numbering: K=%d NumPathsK=%d", nm.K, nm.NumPathsK)
	}
	for s := int64(0); s < nm.NumPaths; s++ {
		a, err := nm.RegenerateK(s)
		if err != nil {
			t.Fatal(err)
		}
		b, err := base.Regenerate(s)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("sum %d: k=1 path %q != classic path %q", s, a, b)
		}
	}
}

func TestExtendKNoBackedgesStaysClassic(t *testing.T) {
	nm, err := New(figure1Proc(t))
	if err != nil {
		t.Fatal(err)
	}
	eff, err := nm.ExtendK(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eff != 1 || nm.K != 1 || nm.NumPathsK != 6 {
		t.Fatalf("acyclic proc extended to k=%d, NumPathsK=%d", eff, nm.NumPathsK)
	}
}

func TestExtendKClampsToLimit(t *testing.T) {
	nm, err := New(loopProc(t))
	if err != nil {
		t.Fatal(err)
	}
	// k=4 needs 10 ids, k=3 needs 8: a limit of 8 must clamp to 3.
	eff, err := nm.ExtendK(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if eff != 3 || nm.K != 3 || nm.NumPathsK != 8 {
		t.Fatalf("limit 8: got k=%d NumPathsK=%d, want k=3 NumPathsK=8", eff, nm.NumPathsK)
	}
	// A limit below even k=2 falls back to the classic numbering.
	eff, err = nm.ExtendK(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if eff != 1 || nm.NumPathsK != nm.NumPaths {
		t.Fatalf("limit 5: got k=%d NumPathsK=%d, want classic", eff, nm.NumPathsK)
	}
}

func TestLastLayerEqualsStandard(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		proc := testgen.RandomProc(rng, "r", rng.Intn(12)+3)
		nm, err := New(proc)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		k, err := nm.ExtendK(3, 1<<30)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for b := range nm.Succs {
			for i := range nm.Succs[b] {
				if got, want := nm.ValK(k-1, nm.Proc.Blocks[b].ID, i), nm.Succs[b][i].Val; got != want {
					t.Logf("seed %d: ValK(last, b%d, %d) = %d, want standard %d", seed, b, i, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCompactKRandom(t *testing.T) {
	check := func(seed int64, kk uint8) bool {
		k := int(kk)%3 + 1
		rng := rand.New(rand.NewSource(seed))
		proc := testgen.RandomProc(rng, "r", rng.Intn(12)+3)
		nm, err := New(proc)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if _, err := nm.ExtendK(k, 0); err != nil {
			t.Logf("seed %d k=%d: %v", seed, k, err)
			return false
		}
		if nm.NumPathsK > 1<<16 {
			return true // too big to enumerate; skip
		}
		if err := nm.CheckCompactK(); err != nil {
			t.Logf("seed %d k=%d: %v", seed, k, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// walkSumK recomputes a k-path's composed id from its recorded edges,
// tracking the layer across internal backedge traversals.
func walkSumK(nm *Numbering, p Path) int64 {
	sum := int64(0)
	layer := 0
	for _, ref := range p.Edges {
		e := nm.Succs[ref.Block][ref.Pos]
		sum += nm.ValK(layer, nm.Proc.Blocks[ref.Block].ID, ref.Pos)
		if e.Kind == PseudoEnd && layer < nm.K-1 {
			layer++
		}
	}
	return sum
}

func TestRegenerateKInverse(t *testing.T) {
	check := func(seed int64, kk uint8) bool {
		k := int(kk)%3 + 1
		rng := rand.New(rand.NewSource(seed))
		proc := testgen.RandomProc(rng, "r", rng.Intn(10)+3)
		nm, err := New(proc)
		if err != nil {
			return false
		}
		if _, err := nm.ExtendK(k, 0); err != nil || nm.NumPathsK > 1<<13 {
			return err == nil
		}
		for s := int64(0); s < nm.NumPathsK; s++ {
			p, err := nm.RegenerateK(s)
			if err != nil {
				t.Logf("seed %d k=%d sum %d: %v", seed, k, s, err)
				return false
			}
			if got := walkSumK(nm, p); got != s {
				t.Logf("seed %d k=%d: walk of regenerated k-path %q gives %d, want %d", seed, k, p, got, s)
				return false
			}
			if len(p.Boundaries) > nm.K-1 {
				t.Logf("seed %d k=%d: path %q crosses %d boundaries", seed, k, p, len(p.Boundaries))
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentCompositionMatchesIds replays every k-path the way the
// runtime counts it: split the path into iteration segments, feed each
// segment's *standard* id through SegmentValK at the running layer, and
// accumulate. The final accumulator must equal the composed id — this is
// the contract between the untouched per-segment register instrumentation
// and the k-mode probe handlers.
func TestSegmentCompositionMatchesIds(t *testing.T) {
	check := func(seed int64, kk uint8) bool {
		k := int(kk)%3 + 1
		rng := rand.New(rand.NewSource(seed))
		proc := testgen.RandomProc(rng, "r", rng.Intn(10)+3)
		nm, err := New(proc)
		if err != nil {
			return false
		}
		if _, err := nm.ExtendK(k, 0); err != nil || nm.NumPathsK > 1<<12 {
			return err == nil
		}
		for s := int64(0); s < nm.NumPathsK; s++ {
			p, err := nm.RegenerateK(s)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			// Standard ids of each iteration segment, from the recorded
			// transformed edges (Val of every edge; a segment that starts
			// mid-loop gets its BStart the same way the register reset
			// `r = START` provides it at runtime).
			var segs []int64
			cur := int64(0)
			for _, ref := range p.Edges {
				e := nm.Succs[ref.Block][ref.Pos]
				if e.Kind == PseudoStart {
					cur += nm.BStart[e.Backedge]
					continue
				}
				cur += e.Val
				if e.Kind == PseudoEnd {
					segs = append(segs, cur)
					cur = nm.BStart[e.Backedge]
				}
			}
			if !p.EndsWithBackedge {
				segs = append(segs, cur)
			}
			// Replay through the composition contract.
			acc := int64(0)
			if p.StartsAfterBackedge {
				// Which backedge the k-path starts after: its first edge.
				first := nm.Succs[p.Edges[0].Block][p.Edges[0].Pos]
				acc = nm.KStart(first.Backedge)
			}
			layer := 0
			for i, sid := range segs {
				val, be, err := nm.SegmentValK(layer, sid)
				if err != nil {
					t.Logf("seed %d k=%d id %d seg %d: %v", seed, k, s, i, err)
					return false
				}
				acc += val
				if be >= 0 && layer < nm.K-1 {
					layer++
				}
			}
			if acc != s {
				t.Logf("seed %d k=%d: composed %d, want %d (path %q, segs %v)", seed, k, acc, s, p, segs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentSums: the decomposition of a composed id into classic
// per-iteration ids is valid (each in [0, NumPaths)), has one segment per
// iteration, and re-composes to the original id through SegmentValK.
func TestSegmentSums(t *testing.T) {
	check := func(seed int64, kk uint8) bool {
		k := int(kk)%3 + 1
		rng := rand.New(rand.NewSource(seed))
		proc := testgen.RandomProc(rng, "r", rng.Intn(10)+3)
		nm, err := New(proc)
		if err != nil {
			return false
		}
		if _, err := nm.ExtendK(k, 0); err != nil || nm.NumPathsK > 1<<12 {
			return err == nil
		}
		for s := int64(0); s < nm.NumPathsK; s++ {
			p, err := nm.RegenerateK(s)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			segs, err := nm.SegmentSums(s)
			if err != nil {
				t.Logf("seed %d k=%d id %d: %v", seed, k, s, err)
				return false
			}
			if len(segs) != len(p.Boundaries)+1 {
				t.Logf("seed %d k=%d id %d: %d segments for %d boundaries", seed, k, s, len(segs), len(p.Boundaries))
				return false
			}
			acc := int64(0)
			if p.StartsAfterBackedge {
				first := nm.Succs[p.Edges[0].Block][p.Edges[0].Pos]
				acc = nm.KStart(first.Backedge)
			}
			layer := 0
			for i, sid := range segs {
				if sid < 0 || sid >= nm.NumPaths {
					t.Logf("seed %d k=%d id %d: segment %d id %d out of range", seed, k, s, i, sid)
					return false
				}
				val, be, err := nm.SegmentValK(layer, sid)
				if err != nil {
					t.Logf("seed %d k=%d id %d seg %d: %v", seed, k, s, i, err)
					return false
				}
				acc += val
				if be >= 0 && layer < nm.K-1 {
					layer++
				}
			}
			if acc != s {
				t.Logf("seed %d k=%d: segments %v compose to %d, want %d", seed, k, segs, acc, s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactErrorKReportsIteration(t *testing.T) {
	nm, err := New(loopProc(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nm.ExtendK(2, 0); err != nil {
		t.Fatal(err)
	}
	// Corrupt a layer-1 value: duplicates must be reported with the k and
	// the iteration segment in which the clash completed.
	for b := range nm.valk[1] {
		if len(nm.valk[1][b]) > 1 {
			nm.valk[1][b][1] = nm.valk[1][b][0]
		}
	}
	err = nm.CheckCompactK()
	var ce *CompactError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupted numbering passed CheckCompactK (err=%v)", err)
	}
	if ce.K != 2 {
		t.Fatalf("CompactError.K = %d, want 2", ce.K)
	}
	if !strings.Contains(ce.Error(), "k=2") || !strings.Contains(ce.Error(), "iteration") {
		t.Fatalf("k error message %q lacks k/iteration context", ce.Error())
	}
	if ce.Iteration != 1 {
		t.Fatalf("CompactError.Iteration = %d, want 1 (corruption is in layer 1)", ce.Iteration)
	}
}

func TestCompactErrorClassicMessageUnchanged(t *testing.T) {
	e := &CompactError{Kind: "out-of-range", Sum: 7, NumPaths: 4}
	if got, want := e.Error(), "bl: path [] sums to 7, out of range [0,4)"; got != want {
		t.Fatalf("classic message changed: %q != %q", got, want)
	}
}
