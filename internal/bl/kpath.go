package bl

// k-iteration path numbering, after D'Elia & Demetrescu, "Ball-Larus Path
// Profiling Across Multiple Loop Iterations" (see PAPERS.md). The classic
// numbering truncates every path at a backedge; here a single id spans up
// to K loop iterations, so the hot paths that cross iterations become
// directly countable.
//
// The extension is id composition over the same transformed acyclic graph
// — no unrolling. Layer i (0-based) numbers the i-th iteration segment of
// a k-path. npk[i][v] counts the k-path completions reachable from v with
// K-i remaining segments: it is the standard NP recurrence except that at
// layers below K-1 a PseudoEnd edge for backedge b does not complete the
// path (weight 1) but continues it at b's target w in the next layer
// (weight npk[i+1][w]). Layer K-1 therefore reproduces the standard NP and
// Val exactly, which is what makes k=1 bit-for-bit identical to the
// classic scheme.
//
// A k-path id is the sum of layered edge values along its segments:
//
//	id = Σ_i Σ_{e in segment i} valk[i][e]  (+ kbstart[b] if the k-path
//	     begins at backedge b's target rather than ENTRY)
//
// Because each segment is still a standard acyclic path, the runtime keeps
// the classic per-segment register r untouched and composes ids in the
// probe layer: at each backedge/exit the standard segment id r+BEnd (or
// r) is decoded once and re-summed with that layer's values
// (SegmentValK), accumulating into a per-activation composition register.
import (
	"fmt"

	"pathprof/internal/ir"
)

// ExtendK raises the numbering to k-iteration ids, in place. limit bounds
// NumPathsK; if k iterations would exceed it the degree is reduced until
// the space fits (k=1 always fits, NumPaths was already checked by New).
// The effective degree is returned and recorded in nm.K. Procedures with
// no backedges have identical path spaces at every k and stay at K=1.
// ExtendK(1) restores the classic numbering.
func (nm *Numbering) ExtendK(k int, limit int64) (int, error) {
	if k < 1 {
		return 0, fmt.Errorf("bl: proc %s: invalid path degree k=%d", nm.Proc.Name, k)
	}
	if limit <= 0 || limit > MaxPaths {
		limit = MaxPaths
	}
	if k == 1 || len(nm.Backedges) == 0 {
		nm.K = 1
		nm.NumPathsK = nm.NumPaths
		nm.npk, nm.valk, nm.kbstart = nil, nil, nil
		return 1, nil
	}
	for kk := k; kk >= 2; kk-- {
		if nm.computeLayers(kk, limit) {
			nm.K = kk
			return kk, nil
		}
	}
	nm.K = 1
	nm.NumPathsK = nm.NumPaths
	nm.npk, nm.valk, nm.kbstart = nil, nil, nil
	return 1, nil
}

// computeLayers builds the layered counts and values for degree k,
// returning false (leaving nm unchanged) if any count exceeds limit.
func (nm *Numbering) computeLayers(k int, limit int64) bool {
	n := len(nm.Proc.Blocks)
	exit := nm.Proc.ExitBlock
	npk := make([][]int64, k)
	valk := make([][][]int64, k)
	for layer := k - 1; layer >= 0; layer-- {
		np := make([]int64, n)
		vals := make([][]int64, n)
		for _, b := range nm.rto {
			if b == exit {
				np[b] = 1
				continue
			}
			es := nm.Succs[b]
			vs := make([]int64, len(es))
			var sum int64
			for i := range es {
				e := &es[i]
				vs[i] = sum
				var w int64
				if e.Kind == PseudoEnd && layer < k-1 {
					w = npk[layer+1][nm.Backedges[e.Backedge].To]
				} else {
					w = np[e.To]
				}
				sum += w
				if sum < 0 || sum > limit {
					return false
				}
			}
			np[b] = sum
			vals[b] = vs
		}
		npk[layer] = np
		valk[layer] = vals
	}
	nm.npk = npk
	nm.valk = valk
	nm.NumPathsK = npk[0][0]
	nm.kbstart = make([]int64, len(nm.Backedges))
	for i, e := range nm.Succs[0] {
		if e.Kind == PseudoStart {
			nm.kbstart[e.Backedge] = valk[0][0][i]
		}
	}
	return true
}

// ValK returns the layered value of edge (block, pos) at the given layer.
// With K == 1 it is the standard Val.
func (nm *Numbering) ValK(layer int, block ir.BlockID, pos int) int64 {
	if nm.valk == nil {
		return nm.Succs[block][pos].Val
	}
	return nm.valk[layer][block][pos]
}

// KStart returns the id-space offset of k-paths that begin at backedge
// be's target: the layer-0 PseudoStart value. It degenerates to BStart at
// K == 1, mirroring the classic `r = START` reset.
func (nm *Numbering) KStart(be int) int64 {
	if nm.kbstart == nil {
		return nm.BStart[be]
	}
	return nm.kbstart[be]
}

// npAfterK returns how many k-path completions follow edge e taken at the
// given layer (the weight that spaces sibling edges apart in the layered
// numbering).
func (nm *Numbering) npAfterK(layer int, e *TEdge) int64 {
	if nm.npk == nil {
		return nm.NP[e.To]
	}
	if e.Kind == PseudoEnd && layer < nm.K-1 {
		return nm.npk[layer+1][nm.Backedges[e.Backedge].To]
	}
	return nm.npk[layer][e.To]
}

// SegmentValK decodes the standard segment id s (one iteration's path, as
// accumulated by the untouched per-segment register) and re-sums it with
// layer-i values, returning the segment's contribution to the composed
// k-path id and the backedge index the segment ends with (-1 when it runs
// to EXIT). A leading PseudoStart edge contributes nothing: the start
// offset of a mid-loop k-path is KStart, charged when the composition
// register is seeded. The walk allocates nothing; it is the hot decode
// step of the k-mode probe handlers.
func (nm *Numbering) SegmentValK(layer int, s int64) (int64, int, error) {
	if s < 0 || s >= nm.NumPaths {
		return 0, 0, fmt.Errorf("bl: segment id %d out of range [0,%d)", s, nm.NumPaths)
	}
	if layer < 0 || layer >= nm.K {
		return 0, 0, fmt.Errorf("bl: layer %d out of range [0,%d)", layer, nm.K)
	}
	exit := nm.Proc.ExitBlock
	at := ir.BlockID(0)
	rem := s
	var val int64
	for at != exit {
		found := false
		for i := range nm.Succs[at] {
			e := &nm.Succs[at][i]
			if rem >= e.Val && rem < e.Val+nm.NP[e.To] {
				rem -= e.Val
				if e.Kind != PseudoStart {
					val += nm.ValK(layer, at, i)
				}
				if e.Kind == PseudoEnd {
					return val, e.Backedge, nil
				}
				at = e.To
				found = true
				break
			}
		}
		if !found {
			return 0, 0, fmt.Errorf("bl: no edge matches remaining segment sum %d at block %d", rem, at)
		}
	}
	return val, -1, nil
}

// RegenerateK reconstructs the k-path with the given composed id: its full
// block sequence across up to K iterations, the transformed edges taken
// (internal PseudoEnds included, once per backedge traversal), and the
// iteration boundaries. At K == 1 it is exactly Regenerate.
func (nm *Numbering) RegenerateK(sum int64) (Path, error) {
	if nm.K <= 1 {
		return nm.Regenerate(sum)
	}
	if sum < 0 || sum >= nm.NumPathsK {
		return Path{}, fmt.Errorf("bl: k=%d path sum %d out of range [0,%d)", nm.K, sum, nm.NumPathsK)
	}
	p := Path{Sum: sum, K: nm.K}
	exit := nm.Proc.ExitBlock
	at := ir.BlockID(0)
	layer := 0
	p.Blocks = append(p.Blocks, at) // provisional; replaced if first edge is PseudoStart
	rem := sum
	for at != exit {
		var chosen *TEdge
		pos := -1
		for i := range nm.Succs[at] {
			e := &nm.Succs[at][i]
			v := nm.ValK(layer, at, i)
			if rem >= v && rem < v+nm.npAfterK(layer, e) {
				chosen = e
				pos = i
				rem -= v
				break
			}
		}
		if chosen == nil {
			return Path{}, fmt.Errorf("bl: no edge matches remaining k-path sum %d at block %d layer %d", rem, at, layer)
		}
		p.Edges = append(p.Edges, SuccRef{Block: int(at), Pos: pos})
		switch chosen.Kind {
		case Real:
			p.Blocks = append(p.Blocks, chosen.To)
			at = chosen.To
		case PseudoStart:
			p.StartsAfterBackedge = true
			p.Blocks[0] = chosen.To
			at = chosen.To
		case PseudoEnd:
			if layer >= nm.K-1 {
				p.EndsWithBackedge = true
				return p, nil
			}
			layer++
			w := nm.Backedges[chosen.Backedge].To
			p.Boundaries = append(p.Boundaries, len(p.Blocks))
			p.Blocks = append(p.Blocks, w)
			at = w
		}
	}
	return p, nil
}

// EnumerateK lists every potential k-path in id order; linear in
// NumPathsK × path length and intended for reports and tests.
func (nm *Numbering) EnumerateK() ([]Path, error) {
	if nm.NumPathsK > 1<<20 {
		return nil, fmt.Errorf("bl: refusing to enumerate %d k-paths", nm.NumPathsK)
	}
	out := make([]Path, 0, nm.NumPathsK)
	for s := int64(0); s < nm.NumPathsK; s++ {
		p, err := nm.RegenerateK(s)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// SegmentSums decomposes a composed k-path id into the standard segment
// ids of its iterations, in execution order: the classic Ball-Larus path
// each iteration would have counted on its own. At K <= 1 the path is its
// own single segment. Reports use this to line a hot k-path up against
// the k=1 entries it refines.
func (nm *Numbering) SegmentSums(sum int64) ([]int64, error) {
	p, err := nm.RegenerateK(sum)
	if err != nil {
		return nil, err
	}
	sums := []int64{0}
	for i, ref := range p.Edges {
		e := &nm.Succs[ref.Block][ref.Pos]
		sums[len(sums)-1] += e.Val
		if e.Kind == PseudoEnd && i < len(p.Edges)-1 {
			// The next iteration's register restarts at the classic reset
			// value for this backedge, like a standalone mid-loop path.
			sums = append(sums, nm.BStart[e.Backedge])
		}
	}
	return sums, nil
}

// CheckCompactK verifies by exhaustive enumeration that composed k-path
// ids biject onto 0..NumPathsK-1: every walk of up to K iteration
// segments (chained through PseudoEnd edges) sums to a distinct in-range
// id. The error, when non-nil, is a *CompactError carrying the offending
// k-path and the iteration segment in which its sum completed. At K == 1
// this is CheckCompact.
func (nm *Numbering) CheckCompactK() error {
	if nm.K <= 1 {
		return nm.CheckCompact()
	}
	if nm.NumPathsK > 1<<20 {
		return &CompactError{Kind: "too-many-paths", NumPaths: nm.NumPathsK, K: nm.K}
	}
	seen := make([]bool, nm.NumPathsK)
	count := int64(0)
	trail := []ir.BlockID{0}
	exit := nm.Proc.ExitBlock
	finish := func(sum int64, layer int) error {
		if sum < 0 || sum >= nm.NumPathsK {
			return &CompactError{Kind: "out-of-range", Sum: sum, Path: append([]ir.BlockID(nil), trail...),
				NumPaths: nm.NumPathsK, K: nm.K, Iteration: layer}
		}
		if seen[sum] {
			return &CompactError{Kind: "duplicate", Sum: sum, Path: append([]ir.BlockID(nil), trail...),
				NumPaths: nm.NumPathsK, K: nm.K, Iteration: layer}
		}
		seen[sum] = true
		count++
		return nil
	}
	var walk func(layer int, b ir.BlockID, sum int64) error
	walk = func(layer int, b ir.BlockID, sum int64) error {
		if b == exit {
			return finish(sum, layer)
		}
		for i := range nm.Succs[b] {
			e := &nm.Succs[b][i]
			v := nm.ValK(layer, b, i)
			var err error
			if e.Kind == PseudoEnd {
				if layer >= nm.K-1 {
					err = finish(sum+v, layer)
				} else {
					w := nm.Backedges[e.Backedge].To
					trail = append(trail, w)
					err = walk(layer+1, w, sum+v)
					trail = trail[:len(trail)-1]
				}
			} else {
				trail = append(trail, e.To)
				err = walk(layer, e.To, sum+v)
				trail = trail[:len(trail)-1]
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	// ENTRY covers both ordinary starts and mid-loop starts (PseudoStart
	// edges hang off ENTRY and carry the layer-0 KStart values).
	if err := walk(0, 0, 0); err != nil {
		return err
	}
	if count != nm.NumPathsK {
		return &CompactError{Kind: "count-mismatch", NumPaths: nm.NumPathsK, Enumerated: count, K: nm.K}
	}
	return nil
}
