package bl

import (
	"fmt"

	"pathprof/internal/ir"
)

// Prefix regeneration. A partial path sum at a block identifies the prefix
// uniquely (two prefixes to the same block with equal sums would yield two
// distinct complete paths with equal sums when extended identically,
// contradicting path-sum uniqueness). This inverts that mapping, which is
// what lets the combined flow+context profile reconstruct *interprocedural*
// paths at call sites reached by one intraprocedural path — the paper's
// Section 6.3 observation that at such sites the combination "produces as
// precise a result as complete interprocedural path profiling".
//
// The sums here are the canonical numbering's (Val-weighted) prefix sums,
// which the instrumenter records when running with basic (unoptimized)
// increments.

// RegeneratePrefix reconstructs the unique prefix from ENTRY (or a backedge
// target) to the given block whose canonical partial sum is sum. It returns
// an error if no such prefix exists.
func (nm *Numbering) RegeneratePrefix(target ir.BlockID, sum int64) (Path, error) {
	if int(target) >= len(nm.Succs) || target < 0 {
		return Path{}, fmt.Errorf("bl: prefix target block %d out of range", target)
	}
	// DFS over the transformed graph from ENTRY, pruning on overshoot
	// (canonical Vals are non-negative). The graph is acyclic, so this
	// terminates; uniqueness means at most one prefix matches.
	var found *Path
	var walk func(b ir.BlockID, rem int64, trail []ir.BlockID, edges []SuccRef, startsAfter bool) bool
	walk = func(b ir.BlockID, rem int64, trail []ir.BlockID, edges []SuccRef, startsAfter bool) bool {
		if b == target && rem == 0 {
			p := Path{
				Sum:                 sum,
				Blocks:              append([]ir.BlockID(nil), trail...),
				Edges:               append([]SuccRef(nil), edges...),
				StartsAfterBackedge: startsAfter,
			}
			found = &p
			return true
		}
		if b == nm.Proc.ExitBlock {
			return false
		}
		for pos, te := range nm.Succs[b] {
			if te.Val > rem {
				continue
			}
			switch te.Kind {
			case Real:
				if walk(te.To, rem-te.Val, append(trail, te.To), append(edges, SuccRef{Block: int(b), Pos: pos}), startsAfter) {
					return true
				}
			case PseudoStart:
				// Only from ENTRY as the first step: the prefix belongs to
				// a backedge-started path.
				if len(trail) == 1 && trail[0] == 0 {
					if walk(te.To, rem-te.Val, []ir.BlockID{te.To}, append(edges, SuccRef{Block: int(b), Pos: pos}), true) {
						return true
					}
				}
			case PseudoEnd:
				// A prefix never takes a backedge (the backedge would have
				// ended the path).
			}
		}
		return false
	}
	if walk(0, sum, []ir.BlockID{0}, nil, false) {
		return *found, nil
	}
	return Path{}, fmt.Errorf("bl: no prefix to block %d with sum %d", target, sum)
}
