package instrument

import (
	"reflect"
	"testing"
	"testing/quick"

	"pathprof/internal/analysis"
	"pathprof/internal/bl"
	"pathprof/internal/hpm"
	"pathprof/internal/ir"
	"pathprof/internal/sim"
)

// kOracle derives the ground-truth k-path profile from the control-flow
// trace, composing per-layer edge values directly from the extended
// numbering. It deliberately does NOT reuse the runtime's segment
// composition: the oracle walks edges one at a time with ValK while the
// instrumentation accumulates whole standard segment ids and decodes them
// in the probe handler, so agreement checks the full contract.
type kOracle struct {
	plan   *Plan
	stack  []kframe
	counts []map[int64]uint64
}

type kframe struct {
	proc  int
	sum   int64
	layer int
}

func newKOracle(plan *Plan) *kOracle {
	o := &kOracle{plan: plan}
	o.counts = make([]map[int64]uint64, len(plan.Procs))
	for i := range o.counts {
		o.counts[i] = map[int64]uint64{}
	}
	return o
}

func (o *kOracle) Enter(proc int) {
	o.stack = append(o.stack, kframe{proc: proc})
}

func (o *kOracle) Exit(proc int) {
	top := o.stack[len(o.stack)-1]
	if nm := o.plan.Procs[top.proc].Numbering; nm != nil {
		o.counts[top.proc][top.sum]++
	}
	o.stack = o.stack[:len(o.stack)-1]
}

func (o *kOracle) Edge(proc int, from ir.BlockID, slot int) {
	top := &o.stack[len(o.stack)-1]
	nm := o.plan.Procs[proc].Numbering
	if nm == nil || int(from) >= len(nm.Succs) {
		return
	}
	for i, be := range nm.Backedges {
		if be.From != from || be.Slot != slot {
			continue
		}
		// Find the PseudoEnd edge this backedge became.
		for pos, te := range nm.Succs[from] {
			if te.Kind != bl.PseudoEnd || te.Backedge != i {
				continue
			}
			v := nm.ValK(top.layer, from, pos)
			if top.layer >= nm.K-1 {
				o.counts[proc][top.sum+v]++
				top.sum = nm.KStart(i)
				top.layer = 0
			} else {
				top.sum += v
				top.layer++
			}
			return
		}
		return
	}
	for pos, te := range nm.Succs[from] {
		if te.Kind == bl.Real && te.Slot == slot {
			top.sum += nm.ValK(top.layer, from, pos)
			return
		}
	}
}

func (o *kOracle) flush() {
	if len(o.stack) == 0 {
		return
	}
	top := o.stack[len(o.stack)-1]
	if nm := o.plan.Procs[top.proc].Numbering; nm != nil {
		o.counts[top.proc][top.sum]++
	}
}

func checkKProfileMatchesOracle(t *testing.T, seed int64, opts Options) {
	t.Helper()
	prog := randomProgram(seed)
	plan, err := Instrument(prog, opts)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	m := sim.New(plan.Prog, sim.DefaultConfig())
	m.PMU().Select(hpm.EvDCacheMiss, hpm.EvInsts)
	rt := plan.Wire(m)
	oracle := newKOracle(plan)
	m.SetTracer(oracle)
	m.OnUnwind(func(d int) { oracle.stack = oracle.stack[:d] })
	if _, err := m.Run(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	oracle.flush()
	prof := rt.ExtractProfile()
	extended := false
	for _, pp := range plan.Procs {
		if pp.Numbering == nil {
			continue
		}
		if pp.Numbering.K > 1 {
			extended = true
		}
		want := oracle.counts[pp.ProcID]
		got := map[int64]uint64{}
		if p := prof.Proc(pp.ProcID); p != nil {
			for _, e := range p.Entries {
				got[e.Sum] = e.Freq
			}
		}
		if !reflect.DeepEqual(mapNonZero(want), mapNonZero(got)) {
			t.Errorf("seed %d proc %s (k=%d hash=%v): k-profile mismatch\n want %v\n got  %v",
				seed, pp.Name, pp.Numbering.K, pp.UseHash, mapNonZero(want), mapNonZero(got))
		}
	}
	if extended && prof.K != opts.K {
		t.Errorf("seed %d: profile K = %d, want requested %d", seed, prof.K, opts.K)
	}
}

func kOpts(mode Mode, k int) Options {
	opts := DefaultOptions(mode)
	opts.K = k
	return opts
}

// TestKPathFreqMatchesOracle: dense counters, k ∈ {2,3}. The oracle walks
// edges through the layered numbering; the runtime composes whole segment
// ids in the ProbeKSeg/ProbeKEnd handlers. They must agree exactly.
func TestKPathFreqMatchesOracle(t *testing.T) {
	for _, k := range []int{2, 3} {
		for seed := int64(1); seed <= 10; seed++ {
			checkKProfileMatchesOracle(t, seed, kOpts(ModePathFreq, k))
		}
	}
}

// TestKPathFreqHashTables: the hashed counter variant counts k-ids
// identically (a tiny threshold forces every proc onto the hash table, as
// the larger k-id spaces will in practice).
func TestKPathFreqHashTables(t *testing.T) {
	opts := kOpts(ModePathFreq, 2)
	opts.HashPathThreshold = 2
	for seed := int64(1); seed <= 8; seed++ {
		checkKProfileMatchesOracle(t, seed, opts)
	}
	opts.K = 3
	for seed := int64(1); seed <= 6; seed++ {
		checkKProfileMatchesOracle(t, seed, opts)
	}
}

// TestKPathHWMatchesOracle: the HW variant's frequency columns agree under
// k-composition too (events ride along; frequencies must stay exact).
func TestKPathHWMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		checkKProfileMatchesOracle(t, seed, kOpts(ModePathHW, 2))
	}
}

// TestKContextFlowMatchesOracle: CCT-qualified k-path tables sum to the
// flat k-profile.
func TestKContextFlowMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		checkKProfileMatchesOracle(t, seed, kOpts(ModeContextFlow, 2))
	}
}

// TestKSemanticsPreserved: k-instrumented programs still compute the same
// outputs in every path-counting mode.
func TestKSemanticsPreserved(t *testing.T) {
	modes := []Mode{ModePathFreq, ModePathHW, ModeContextFlow}
	check := func(seed int64) bool {
		prog := randomProgram(seed)
		base, _ := runProgram(t, prog, nil)
		for _, k := range []int{2, 3} {
			for _, mode := range modes {
				plan, err := Instrument(prog, kOpts(mode, k))
				if err != nil {
					t.Logf("seed %d k=%d mode %v: %v", seed, k, mode, err)
					return false
				}
				res, _ := runProgram(t, plan.Prog, plan)
				if !reflect.DeepEqual(base.Output, res.Output) {
					t.Logf("seed %d k=%d mode %v: output diverged", seed, k, mode)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestKEdgeProjectionMatchesClassic: projecting a k-profile onto edge
// frequencies must reproduce the k=1 projection exactly — the same dynamic
// edges executed, only the path granularity changed. This pins down that
// no backedge traversal is dropped or double-counted by k-composition.
func TestKEdgeProjectionMatchesClassic(t *testing.T) {
	project := func(seed int64, opts Options) map[int]analysis.EdgeFreq {
		t.Helper()
		prog := randomProgram(seed)
		plan, err := Instrument(prog, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_, rt := runProgram(t, plan.Prog, plan)
		prof := rt.ExtractProfile()
		out := map[int]analysis.EdgeFreq{}
		for _, pp := range plan.Procs {
			if pp.Numbering == nil {
				continue
			}
			p := prof.Proc(pp.ProcID)
			if p == nil {
				continue
			}
			ef, err := analysis.ProjectEdgeFrequencies(p, pp.Numbering)
			if err != nil {
				t.Fatalf("seed %d proc %s: %v", seed, pp.Name, err)
			}
			out[pp.ProcID] = ef
		}
		return out
	}
	for seed := int64(1); seed <= 8; seed++ {
		classic := project(seed, DefaultOptions(ModePathFreq))
		for _, k := range []int{2, 3} {
			kf := project(seed, kOpts(ModePathFreq, k))
			if !reflect.DeepEqual(classic, kf) {
				t.Errorf("seed %d k=%d: edge projection differs from classic", seed, k)
			}
		}
	}
}

// TestKHWMetricsBounded: per-k-path metric accumulators stay within the
// run's totals, and attribution coverage does not degrade versus k=1 —
// every segment's events are credited to exactly one k-path.
func TestKHWMetricsBounded(t *testing.T) {
	prog := randomProgram(5)
	plan, err := Instrument(prog, kOpts(ModePathHW, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, rt := runProgram(t, plan.Prog, plan)
	prof := rt.ExtractProfile()
	_, ms := prof.Totals()
	m0, m1 := ms[0], ms[1]
	if m1 == 0 {
		t.Fatal("no instructions attributed to any k-path")
	}
	if m0 > res.Totals[hpm.EvDCacheMiss] {
		t.Fatalf("k-paths claim %d D-misses, run had %d", m0, res.Totals[hpm.EvDCacheMiss])
	}
	if m1 > res.Totals[hpm.EvInsts] {
		t.Fatalf("k-paths claim %d insts, run had %d", m1, res.Totals[hpm.EvInsts])
	}
	if m1 < res.Totals[hpm.EvInsts]/3 {
		t.Fatalf("only %d of %d instructions attributed to k-paths", m1, res.Totals[hpm.EvInsts])
	}
}

// TestKProfileCarriesDegree: the profile records the requested degree and
// each proc its effective one (procs without backedges stay classic).
func TestKProfileCarriesDegree(t *testing.T) {
	prog := randomProgram(2)
	plan, err := Instrument(prog, kOpts(ModePathFreq, 3))
	if err != nil {
		t.Fatal(err)
	}
	_, rt := runProgram(t, plan.Prog, plan)
	prof := rt.ExtractProfile()
	if prof.K != 3 {
		t.Fatalf("profile K = %d, want 3", prof.K)
	}
	for _, pp := range plan.Procs {
		if pp.Numbering == nil {
			continue
		}
		p := prof.Proc(pp.ProcID)
		if p == nil {
			continue
		}
		if want := pp.Numbering.K; p.K != want {
			t.Errorf("proc %s: profile k=%d, numbering k=%d", pp.Name, p.K, want)
		}
		if len(pp.Numbering.Backedges) == 0 && p.K > 1 {
			t.Errorf("proc %s has no backedges yet k=%d", pp.Name, p.K)
		}
	}
}
