package instrument

import (
	"fmt"

	"pathprof/internal/bl"
	"pathprof/internal/cfg"
	"pathprof/internal/ir"
	"pathprof/internal/sim"
)

// Profile-guided increment placement: the original path-profiling work
// weights the spanning tree with *measured* edge frequencies so that chord
// increments land on the coldest edges. This file provides the two-pass
// workflow — run cheap edge profiling once, decode the counts, and feed
// them into the path instrumenter as spanning-tree weights.

// EdgeFreqs maps a procedure's CFG edges (identified on the entry-split
// CFG, the form every instrumentation mode normalizes to first) to
// execution counts.
type EdgeFreqs map[cfg.Edge]int64

// CollectEdgeFrequencies runs one edge-profiled execution of prog and
// returns per-procedure edge counts suitable for Options.ProfiledFreqs.
func CollectEdgeFrequencies(plan *Plan, cfg_ sim.Config) ([]EdgeFreqs, error) {
	if plan.Mode != ModeEdgeCount {
		return nil, fmt.Errorf("instrument: edge frequencies need a ModeEdgeCount plan, got %v", plan.Mode)
	}
	m := sim.New(plan.Prog, cfg_)
	plan.Wire(m)
	if _, err := m.Run(); err != nil {
		return nil, err
	}
	out := make([]EdgeFreqs, len(plan.Procs))
	for _, pp := range plan.Procs {
		counts, _, err := DecodeEdgeCounts(pp, m.Mem())
		if err != nil {
			return nil, fmt.Errorf("instrument: decoding %s: %w", pp.Name, err)
		}
		ef := make(EdgeFreqs, len(counts))
		for e, c := range counts {
			ef[e] = c
		}
		out[pp.ProcID] = ef
	}
	return out, nil
}

// profiledFreqHint converts measured edge counts into a spanning-tree
// weight function for the numbering's transformed edges. Pseudo edges take
// their backedge's measured count. A +1 floor keeps never-executed edges
// comparable.
func profiledFreqHint(freqs EdgeFreqs, nm *bl.Numbering) func(bl.SuccRef) int64 {
	return func(ref bl.SuccRef) int64 {
		te := nm.Succs[ref.Block][ref.Pos]
		var e cfg.Edge
		switch te.Kind {
		case bl.Real:
			e = cfg.Edge{From: ir.BlockID(ref.Block), To: te.To, Slot: te.Slot}
		default:
			e = nm.Backedges[te.Backedge]
		}
		return freqs[e] + 1
	}
}
