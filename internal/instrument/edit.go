// Package instrument is the executable-editing layer (the role EEL played
// for PP): it rewrites ir programs to insert edge-count, Ball-Larus path,
// and calling-context-tree instrumentation, and wires the resulting plan to
// a simulator instance.
//
// Editing follows binary-instrumentation reality: instrumentation may only
// use registers the procedure does not, splitting CFG edges inserts real
// branches, and when too few registers are free the instrumenter spills —
// all of which perturbs the measured metrics, as Section 3.2 and Table 2 of
// the paper discuss.
package instrument

import (
	"fmt"

	"pathprof/internal/ir"
)

// editor performs structural edits on one (cloned) procedure.
type editor struct {
	proc *ir.Proc
}

// splitEntry gives the procedure a fresh, empty entry block (block 0) that
// jumps to the old entry body, which moves to a new block ID. All edges that
// targeted block 0 (necessarily backedges) are redirected to the moved body,
// so code placed in the new entry runs exactly once per activation.
// It returns the moved body's new ID.
func (ed *editor) splitEntry() ir.BlockID {
	p := ed.proc
	moved := &ir.Block{
		ID:     ir.BlockID(len(p.Blocks)),
		Instrs: p.Blocks[0].Instrs,
		Succs:  p.Blocks[0].Succs,
	}
	p.Blocks = append(p.Blocks, moved)
	for _, b := range p.Blocks {
		if b == moved {
			continue
		}
		for i, s := range b.Succs {
			if s == 0 {
				b.Succs[i] = moved.ID
			}
		}
	}
	p.Blocks[0] = &ir.Block{
		ID:     0,
		Instrs: []ir.Instr{{Op: ir.Jmp}},
		Succs:  []ir.BlockID{moved.ID},
	}
	if p.ExitBlock == 0 {
		p.ExitBlock = moved.ID
	}
	return moved.ID
}

// prependEntry inserts seq at the top of the (already split) entry block.
func (ed *editor) prependEntry(seq []ir.Instr) {
	b := ed.proc.Blocks[0]
	b.Instrs = append(append([]ir.Instr{}, seq...), b.Instrs...)
}

// insertBeforeTerm appends seq just before the terminator of block b.
func (ed *editor) insertBeforeTerm(b ir.BlockID, seq []ir.Instr) {
	blk := ed.proc.Blocks[b]
	term := blk.Instrs[len(blk.Instrs)-1]
	body := blk.Instrs[:len(blk.Instrs)-1]
	blk.Instrs = append(append(append([]ir.Instr{}, body...), seq...), term)
}

// insertAt inserts seq before the instruction at index idx of block b.
func (ed *editor) insertAt(b ir.BlockID, idx int, seq []ir.Instr) {
	blk := ed.proc.Blocks[b]
	out := make([]ir.Instr, 0, len(blk.Instrs)+len(seq))
	out = append(out, blk.Instrs[:idx]...)
	out = append(out, seq...)
	out = append(out, blk.Instrs[idx:]...)
	blk.Instrs = out
}

// numPreds counts incoming edges (not distinct predecessors) per block.
func (ed *editor) numPreds() []int {
	n := make([]int, len(ed.proc.Blocks))
	for _, b := range ed.proc.Blocks {
		for _, s := range b.Succs {
			n[s]++
		}
	}
	return n
}

// insertOnEdge places seq so it executes exactly when the edge
// (from, slot) -> to executes: at the end of the source when it has a single
// out-edge, at the start of the target when it has a single in-edge, else
// in a freshly split block (a real inserted branch, as EEL's code layout
// may introduce). preds must come from numPreds computed before any edge
// splitting of this pass begins (splits only add blocks with one in-edge,
// so earlier counts stay valid for original blocks).
func (ed *editor) insertOnEdge(from ir.BlockID, slot int, preds []int, seq []ir.Instr) {
	p := ed.proc
	src := p.Blocks[from]
	to := src.Succs[slot]
	if len(src.Succs) == 1 {
		ed.insertBeforeTerm(from, seq)
		return
	}
	if int(to) < len(preds) && preds[to] == 1 && to != 0 {
		b := p.Blocks[to]
		b.Instrs = append(append([]ir.Instr{}, seq...), b.Instrs...)
		return
	}
	// Split the edge.
	nb := &ir.Block{
		ID:     ir.BlockID(len(p.Blocks)),
		Instrs: append(append([]ir.Instr{}, seq...), ir.Instr{Op: ir.Jmp}),
		Succs:  []ir.BlockID{to},
	}
	p.Blocks = append(p.Blocks, nb)
	src.Succs[slot] = nb.ID
}

// freeRegs returns up to want registers unused by the procedure, searching
// from the top of the register file downward and excluding the stack
// pointer.
func freeRegs(p *ir.Proc, want int) []ir.Reg {
	used := p.UsedRegs()
	var out []ir.Reg
	for r := ir.NumRegs - 1; r >= 0 && len(out) < want; r-- {
		reg := ir.Reg(r)
		if reg == ir.RegSP || used[reg] {
			continue
		}
		out = append(out, reg)
	}
	return out
}

// regPlan abstracts over the two register regimes: direct (enough free
// registers for all instrumentation state) and spill (state lives in an
// instrumentation stack frame reached through a single free frame register,
// with scratch registers borrowed — saved and restored — around every
// sequence). Spill mode models EEL's register spilling and its perturbation.
type regPlan struct {
	spill bool

	// pairs is how many counter pairs the HW instrumentation saves and
	// restores (0 and 1 mean the classic single PIC pair).
	pairs int

	// Direct mode: dedicated registers.
	zero      ir.Reg // always 0
	path      ir.Reg // Ball-Larus tracking register
	tmp       [3]ir.Reg
	save      ir.Reg   // saved counter pair 0 across the activation (PathHW)
	saveExtra []ir.Reg // saved pairs 1.. for wide metric schemas

	// Spill mode.
	frame   ir.Reg    // the single free register, holds the frame base
	victims [5]ir.Reg // borrowed registers (r0..): saved around sequences

	// allocated is the full list of free registers handed out in direct
	// mode (the pass's reserved set), for the exported RegInfo.
	allocated []ir.Reg
}

// Frame slot offsets (bytes) in spill mode. Extra saved counter pairs for
// wide metric schemas extend the frame past frameBytes (see slotSave), so
// the classic layout — and every address the two-counter instrumentation
// emits — is untouched.
const (
	slotPath    = 0  // spilled path register
	slotSavePIC = 8  // saved counter pair (also used in direct mode frames)
	slotVictim0 = 16 // victim save area: 5 slots
	frameBytes  = 64
)

func (rp *regPlan) numPairs() int {
	if rp.pairs < 1 {
		return 1
	}
	return rp.pairs
}

// frameSize returns the spill frame size: the classic 64 bytes plus one
// slot per extra saved counter pair.
func (rp *regPlan) frameSize() int64 {
	return frameBytes + 8*int64(rp.numPairs()-1)
}

// slotSave returns the frame offset holding saved counter pair pr.
func (rp *regPlan) slotSave(pr int) int64 {
	if pr == 0 {
		return slotSavePIC
	}
	return frameBytes + 8*int64(pr-1)
}

// saveReg returns the direct-mode register holding saved counter pair pr.
func (rp *regPlan) saveReg(pr int) ir.Reg {
	if pr == 0 {
		return rp.save
	}
	return rp.saveExtra[pr-1]
}

// planRegs decides the regime for a procedure needing `need` dedicated
// registers (zero + path + temps). It returns an error only when not even
// one register is free.
func planRegs(p *ir.Proc, need int) (*regPlan, error) {
	free := freeRegs(p, need)
	if len(free) >= need {
		rp := &regPlan{allocated: free}
		rp.zero = free[0]
		if len(free) > 1 {
			rp.path = free[1]
		}
		for i := 0; i < 3 && 2+i < len(free); i++ {
			rp.tmp[i] = free[2+i]
		}
		if len(free) > 5 {
			rp.save = free[5]
		}
		if len(free) > 6 {
			rp.saveExtra = free[6:]
		}
		return rp, nil
	}
	if len(free) == 0 {
		return nil, fmt.Errorf("instrument: proc %s: no free registers", p.Name)
	}
	rp := &regPlan{spill: true, frame: free[0]}
	// Borrow low registers as victims (they are certainly used by the
	// procedure, which is the point: we must save and restore them).
	v := 0
	for r := ir.Reg(9); v < len(rp.victims); r++ {
		if r == ir.RegSP || r == rp.frame {
			continue
		}
		rp.victims[v] = r
		v++
	}
	return rp, nil
}

// info exports the plan for verifiers (see RegInfo).
func (rp *regPlan) info() *RegInfo {
	ri := &RegInfo{
		Spill:     rp.spill,
		Pairs:     rp.numPairs(),
		Zero:      rp.zero,
		Path:      rp.path,
		Tmp:       rp.tmp,
		Save:      rp.save,
		SaveExtra: rp.saveExtra,
		Frame:     rp.frame,
		Victims:   rp.victims,
	}
	if rp.spill {
		ri.Reserved = []ir.Reg{rp.frame}
	} else {
		ri.Reserved = append([]ir.Reg(nil), rp.allocated...)
	}
	return ri
}

// seqBuilder accumulates an instrumentation sequence under a regPlan,
// wrapping it with victim saves/restores in spill mode. Victim assignment:
// victims[0] serves as the zero register, victims[1] as the path register,
// victims[2..] as scratch.
type seqBuilder struct {
	rp       *regPlan
	instr    []ir.Instr
	borrowed [5]bool
}

func (rp *regPlan) seq() *seqBuilder { return &seqBuilder{rp: rp} }

func (sb *seqBuilder) victim(i int) ir.Reg {
	sb.borrowed[i] = true
	return sb.rp.victims[i]
}

func (sb *seqBuilder) emit(in ...ir.Instr) *seqBuilder {
	sb.instr = append(sb.instr, in...)
	return sb
}

// zeroReg returns a register guaranteed to hold 0 within this sequence.
func (sb *seqBuilder) zeroReg() ir.Reg {
	if !sb.rp.spill {
		return sb.rp.zero
	}
	r := sb.victim(0)
	sb.emit(ir.Instr{Op: ir.MovI, Rd: r, Imm: 0})
	return r
}

// pathReg returns a register holding the current path sum, loading it from
// the instrumentation frame in spill mode.
func (sb *seqBuilder) pathReg() ir.Reg {
	if !sb.rp.spill {
		return sb.rp.path
	}
	r := sb.victim(1)
	sb.emit(ir.Instr{Op: ir.Load, Rd: r, Rs: sb.rp.frame, Imm: slotPath})
	return r
}

// pathRegNoLoad returns the path register without loading its value (for
// sequences that overwrite it).
func (sb *seqBuilder) pathRegNoLoad() ir.Reg {
	if !sb.rp.spill {
		return sb.rp.path
	}
	return sb.victim(1)
}

// storePath persists the path register to the frame in spill mode.
func (sb *seqBuilder) storePath() {
	if !sb.rp.spill {
		return
	}
	sb.emit(ir.Instr{Op: ir.Store, Rs: sb.rp.frame, Imm: slotPath, Rd: sb.rp.victims[1]})
}

// scratch returns the i-th scratch register (0-based).
func (sb *seqBuilder) scratch(i int) ir.Reg {
	if !sb.rp.spill {
		return sb.rp.tmp[i]
	}
	return sb.victim(2 + i)
}

// finish returns the full sequence. In spill mode every borrowed victim is
// stored to the instrumentation frame before the body and reloaded after,
// so the procedure's own values survive.
func (sb *seqBuilder) finish() []ir.Instr {
	if !sb.rp.spill {
		return sb.instr
	}
	var out []ir.Instr
	for i, used := range sb.borrowed {
		if used {
			out = append(out, ir.Instr{Op: ir.Store, Rs: sb.rp.frame, Imm: int64(slotVictim0 + 8*i), Rd: sb.rp.victims[i]})
		}
	}
	out = append(out, sb.instr...)
	for i, used := range sb.borrowed {
		if used {
			out = append(out, ir.Instr{Op: ir.Load, Rd: sb.rp.victims[i], Rs: sb.rp.frame, Imm: int64(slotVictim0 + 8*i)})
		}
	}
	return out
}
