package instrument_test

import (
	"bytes"
	"testing"

	"pathprof/internal/hpm"
	"pathprof/internal/instrument"
	"pathprof/internal/sim"
	"pathprof/internal/wire"
	"pathprof/internal/workload"
)

// TestK1GoldenEquivalence: requesting K=1 explicitly is byte-for-byte the
// classic scheme — for every suite workload, in dense-table, hashed-table,
// and CCT counting — down to the emitted program text and the encoded
// profile. This is the backstop for the seed's golden results: the k
// refactor must be invisible until K > 1 is asked for.
func TestK1GoldenEquivalence(t *testing.T) {
	type cfg struct {
		name string
		mode instrument.Mode
		hash bool
	}
	cfgs := []cfg{
		{"dense", instrument.ModePathFreq, false},
		{"hash", instrument.ModePathFreq, true},
		{"cct", instrument.ModeContextFlow, false},
	}
	for _, w := range workload.Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog := w.Build(workload.Test)
			for _, c := range cfgs {
				runOne := func(k int) (string, []byte) {
					opts := instrument.DefaultOptions(c.mode)
					opts.K = k // 0 = unset; 1 = explicit classic
					if c.hash {
						opts.HashPathThreshold = 1
					}
					plan, err := instrument.Instrument(prog, opts)
					if err != nil {
						t.Fatalf("%s k=%d: %v", c.name, k, err)
					}
					m := sim.New(plan.Prog, sim.DefaultConfig())
					m.PMU().Select(hpm.EvDCacheMiss, hpm.EvInsts)
					rt := plan.Wire(m)
					if _, err := m.Run(); err != nil {
						t.Fatalf("%s k=%d: %v", c.name, k, err)
					}
					var buf bytes.Buffer
					if err := wire.EncodeProfile(&buf, rt.ExtractProfile()); err != nil {
						t.Fatalf("%s k=%d: %v", c.name, k, err)
					}
					return plan.Prog.String(), buf.Bytes()
				}
				prog0, prof0 := runOne(0)
				prog1, prof1 := runOne(1)
				if prog0 != prog1 {
					t.Errorf("%s: K=1 emits different code than unset K", c.name)
				}
				if !bytes.Equal(prof0, prof1) {
					t.Errorf("%s: K=1 profile bytes differ from unset K", c.name)
				}
			}
		})
	}
}
