package instrument

import (
	"pathprof/internal/cct"
	"pathprof/internal/flat"
	"pathprof/internal/hpm"
	"pathprof/internal/mem"
	"pathprof/internal/profile"
	"pathprof/internal/sim"
)

// Runtime is the per-machine profiling runtime: the CCT under construction,
// the hash-table path counters for path-rich procedures, and the saved
// counter readings that context+HW profiling keeps per activation. Create
// one with Plan.Wire for every machine that runs the instrumented program.
type Runtime struct {
	Plan    *Plan
	Machine *sim.Machine
	Tree    *cct.Tree

	// Hash path tables (per procedure; nil when the procedure uses a dense
	// array in simulated memory). Counts are non-negative and far below
	// 2^63, so the int64-valued flat tables hold them exactly.
	hashFreq []*flat.Table
	hashAcc0 []*flat.Table
	hashAcc1 []*flat.Table
	// Simulated bucket arrays backing the hash tables, so probes perturb
	// the cache like real hash updates would: [proc] -> base address.
	hashBase []uint64

	// Context+HW state: the counter-pair reading at entry to each live
	// activation (parallel to the CCT's context stack).
	entryPIC []uint64
}

const hashBuckets = 64

// Wire registers probe handlers on m and returns the runtime. It must be
// called once per machine before Run.
//
// Wire does not mutate the plan: per-runtime simulated allocations (the
// hash bucket arrays) come from a clone of the plan's allocator, so every
// wiring of the same plan produces identical simulated addresses and a
// Plan may be shared — including concurrently — across machines.
func (plan *Plan) Wire(m *sim.Machine) *Runtime {
	rt := &Runtime{Plan: plan, Machine: m}
	n := len(plan.Prog.Procs)
	alloc := plan.alloc.Clone()
	rt.hashFreq = make([]*flat.Table, n)
	rt.hashAcc0 = make([]*flat.Table, n)
	rt.hashAcc1 = make([]*flat.Table, n)
	rt.hashBase = make([]uint64, n)
	for _, pp := range plan.Procs {
		if pp.UseHash {
			rt.hashFreq[pp.ProcID] = flat.New(hashBuckets)
			rt.hashAcc0[pp.ProcID] = flat.New(hashBuckets)
			rt.hashAcc1[pp.ProcID] = flat.New(hashBuckets)
			rt.hashBase[pp.ProcID] = alloc.Alloc(hashBuckets*8*3, 64)
		}
	}

	if plan.Mode.UsesCCT() {
		rt.Tree = cct.New(plan.CCTInfo, cct.Options{
			DistinguishCallSites: plan.Opts.DistinguishCallSites,
			NumMetrics:           plan.Opts.CCTMetrics,
			PathCounts:           plan.Mode == ModeContextFlow,
		}, mem.CCTBase)
		m.OnUnwind(func(depth int) {
			rt.Tree.UnwindTo(depth)
			if len(rt.entryPIC) > depth {
				rt.entryPIC = rt.entryPIC[:depth]
			}
		})
	}

	m.RegisterProbe(ProbeHashFreq, rt.onHashFreq)
	m.RegisterProbe(ProbeHashHW, rt.onHashHW)
	m.RegisterProbe(ProbeCCTCall, rt.onCCTCall)
	m.RegisterProbe(ProbeCCTEnter, rt.onCCTEnter)
	m.RegisterProbe(ProbeCCTExit, rt.onCCTExit)
	m.RegisterProbe(ProbeCCTTick, rt.onCCTTick)
	m.RegisterProbe(ProbeCCTPath, rt.onCCTPath)
	return rt
}

// onHashFreq handles a hash-table path frequency update: in real
// instrumentation a short hash probe plus a counter increment.
func (rt *Runtime) onHashFreq(ctx sim.ProbeCtx, arg int64) int64 {
	proc, idx := UnpackProcPath(arg)
	rt.hashFreq[proc].Add(idx, 1)
	ctx.ChargeInstrs(6)
	a := rt.hashBase[proc] + (uint64(idx)%hashBuckets)*8
	ctx.TouchRead(a)
	ctx.TouchWrite(a)
	return arg
}

// onHashHW handles a hash-table path metric update: read the counter pair,
// accumulate both halves and the frequency.
func (rt *Runtime) onHashHW(ctx sim.ProbeCtx, arg int64) int64 {
	proc, idx := UnpackProcPath(arg)
	v := rt.Machine.PMU().Read()
	pic0, pic1 := hpm.Split(v)
	rt.hashAcc0[proc].Add(idx, int64(pic0))
	rt.hashAcc1[proc].Add(idx, int64(pic1))
	rt.hashFreq[proc].Add(idx, 1)
	ctx.ChargeInstrs(14)
	base := rt.hashBase[proc]
	b := (uint64(idx) % hashBuckets) * 8
	for i := uint64(0); i < 3; i++ {
		ctx.TouchRead(base + i*hashBuckets*8 + b)
		ctx.TouchWrite(base + i*hashBuckets*8 + b)
	}
	return arg
}

func (rt *Runtime) onCCTCall(ctx sim.ProbeCtx, arg int64) int64 {
	site, prefix := UnpackSitePath(arg)
	if prefix == noPrefix {
		prefix = cct.NoPrefix
	}
	rt.Tree.AtCall(site, prefix, ctx)
	return arg
}

func (rt *Runtime) onCCTEnter(ctx sim.ProbeCtx, arg int64) int64 {
	rt.Tree.Enter(int(arg), ctx)
	rt.Tree.AddMetric(0, 1, ctx) // invocation count
	if rt.Plan.Mode == ModeContextHW {
		// Record the counter pair at entry (one RDPIC).
		ctx.ChargeInstrs(1)
		rt.entryPIC = append(rt.entryPIC, rt.Machine.PMU().Read())
	}
	return arg
}

func (rt *Runtime) onCCTExit(ctx sim.ProbeCtx, arg int64) int64 {
	if rt.Plan.Mode == ModeContextHW && len(rt.entryPIC) > 0 {
		rt.accumulateDelta(ctx)
		rt.entryPIC = rt.entryPIC[:len(rt.entryPIC)-1]
	}
	rt.Tree.Exit(ctx)
	return arg
}

// onCCTTick reads the counters along a loop backedge, attributing the
// events since the last reading to the current record and re-basing — the
// Section 4.3 refinement that bounds counter-wrap exposure.
func (rt *Runtime) onCCTTick(ctx sim.ProbeCtx, arg int64) int64 {
	if rt.Plan.Mode == ModeContextHW && len(rt.entryPIC) > 0 {
		rt.accumulateDelta(ctx)
		rt.entryPIC[len(rt.entryPIC)-1] = rt.Machine.PMU().Read()
	}
	return arg
}

// accumulateDelta adds (now - entry) for both 32-bit counters into the
// current record's metric slots 1 and 2.
func (rt *Runtime) accumulateDelta(ctx sim.ProbeCtx) {
	ctx.ChargeInstrs(4) // RDPIC, two subtracts, bookkeeping
	now := rt.Machine.PMU().Read()
	entry := rt.entryPIC[len(rt.entryPIC)-1]
	n0, n1 := hpm.Split(now)
	e0, e1 := hpm.Split(entry)
	rt.Tree.AddMetric(1, int64(hpm.Delta32(e0, n0)), ctx)
	rt.Tree.AddMetric(2, int64(hpm.Delta32(e1, n1)), ctx)
}

func (rt *Runtime) onCCTPath(ctx sim.ProbeCtx, arg int64) int64 {
	rt.Tree.CountPath(arg, ctx)
	return arg
}

// ExtractProfile reads the completed run's path counters — dense tables
// from simulated memory, hash tables from the runtime — into a Profile.
// For ModeContextFlow the per-record tables are summed per procedure (the
// flow-sensitive projection of the combined profile).
func (rt *Runtime) ExtractProfile() *profile.Profile {
	plan := rt.Plan
	p := &profile.Profile{
		Program: plan.Prog.Name,
		Mode:    plan.Mode.String(),
	}
	ev0, ev1 := rt.Machine.PMU().Selected()
	p.Event0, p.Event1 = ev0.String(), ev1.String()

	memory := rt.Machine.Mem()
	if plan.Mode == ModeBlockHW {
		for _, pp := range plan.Procs {
			out := &profile.ProcPaths{ProcID: pp.ProcID, Name: pp.Name, NumPaths: pp.BlockCount}
			for bid := int64(0); bid < pp.BlockCount; bid++ {
				freq := uint64(memory.Load(pp.FreqBase + uint64(bid)*8))
				if freq == 0 {
					continue
				}
				out.Entries = append(out.Entries, profile.PathEntry{
					Sum:  bid,
					Freq: freq,
					M0:   uint64(memory.Load(pp.Acc0Base + uint64(bid)*8)),
					M1:   uint64(memory.Load(pp.Acc1Base + uint64(bid)*8)),
				})
			}
			p.Procs = append(p.Procs, out)
		}
		return p
	}
	for _, pp := range plan.Procs {
		if pp.Numbering == nil {
			continue
		}
		out := &profile.ProcPaths{ProcID: pp.ProcID, Name: pp.Name, NumPaths: pp.Numbering.NumPaths}
		switch {
		case plan.Mode == ModeContextFlow:
			sums := flat.New(0)
			rt.Tree.Walk(func(n *cct.Node) {
				if n.Proc != pp.ProcID {
					return
				}
				n.RangePathCounts(func(s, c int64) bool {
					sums.Add(s, c)
					return true
				})
			})
			out.Entries = make([]profile.PathEntry, 0, sums.Len())
			sums.Range(func(s, c int64) bool {
				out.Entries = append(out.Entries, profile.PathEntry{Sum: s, Freq: uint64(c)})
				return true
			})
		case pp.UseHash:
			freq := rt.hashFreq[pp.ProcID]
			acc0, acc1 := rt.hashAcc0[pp.ProcID], rt.hashAcc1[pp.ProcID]
			out.Entries = make([]profile.PathEntry, 0, freq.Len())
			freq.Range(func(s, c int64) bool {
				m0, _ := acc0.Get(s)
				m1, _ := acc1.Get(s)
				out.Entries = append(out.Entries, profile.PathEntry{
					Sum: s, Freq: uint64(c), M0: uint64(m0), M1: uint64(m1),
				})
				return true
			})
		default:
			for s := int64(0); s < pp.Numbering.NumPaths; s++ {
				freq := uint64(memory.Load(pp.FreqBase + uint64(s)*8))
				if freq == 0 {
					continue
				}
				e := profile.PathEntry{Sum: s, Freq: freq}
				if plan.Mode == ModePathHW {
					e.M0 = uint64(memory.Load(pp.Acc0Base + uint64(s)*8))
					e.M1 = uint64(memory.Load(pp.Acc1Base + uint64(s)*8))
				}
				out.Entries = append(out.Entries, e)
			}
		}
		out.Sort()
		p.Procs = append(p.Procs, out)
	}
	return p
}
