package instrument

import (
	"fmt"

	"pathprof/internal/cct"
	"pathprof/internal/flat"
	"pathprof/internal/hpm"
	"pathprof/internal/mem"
	"pathprof/internal/profile"
	"pathprof/internal/sim"
)

// Runtime is the per-machine profiling runtime: the CCT under construction,
// the hash-table path counters for path-rich procedures, and the saved
// counter readings that context+HW profiling keeps per activation. Create
// one with Plan.Wire for every machine that runs the instrumented program.
type Runtime struct {
	Plan    *Plan
	Machine *sim.Machine
	Tree    *cct.Tree

	// Hash path tables (per procedure; nil when the procedure uses a dense
	// array in simulated memory). Counts are non-negative and far below
	// 2^63, so the int64-valued flat tables hold them exactly. hashAcc has
	// one table per metric slot: hashAcc[k][proc].
	hashFreq []*flat.Table
	hashAcc  [][]*flat.Table
	// Simulated bucket arrays backing the hash tables, so probes perturb
	// the cache like real hash updates would: [proc] -> base address.
	hashBase []uint64

	// Context+HW state: the counter readings at entry to each live
	// activation, one packed pair value per instrumented pair, flattened
	// with stride numPairs (parallel to the CCT's context stack).
	entryPIC []uint64
	numPairs int

	// k-mode composition state, one slot per live activation depth (the
	// simulator's registers are activation-local, so the per-segment path
	// register needs no help; only the composed accumulator does). Slots
	// are reset at every exit flush and truncated on unwind, so reuse at
	// the same depth always starts from the zero state.
	kst []kAct
}

// kAct is one activation's k-path composition state: the accumulated
// composed id, the current iteration layer, and (HW mode) the pending
// per-counter event totals of the segments composed so far.
type kAct struct {
	sum   int64
	layer int
	pend  []uint64
}

const hashBuckets = 64

// Wire registers probe handlers on m and returns the runtime. It must be
// called once per machine before Run.
//
// Wire does not mutate the plan: per-runtime simulated allocations (the
// hash bucket arrays) come from a clone of the plan's allocator, so every
// wiring of the same plan produces identical simulated addresses and a
// Plan may be shared — including concurrently — across machines.
func (plan *Plan) Wire(m *sim.Machine) *Runtime {
	if k := m.PMU().NumCounters(); k < plan.numCounters() {
		panic(fmt.Sprintf("instrument: plan needs %d counters, machine has %d",
			plan.numCounters(), k))
	}
	rt := &Runtime{Plan: plan, Machine: m, numPairs: plan.numPairs()}
	n := len(plan.Prog.Procs)
	nc := plan.numCounters()
	alloc := plan.alloc.Clone()
	rt.hashFreq = make([]*flat.Table, n)
	rt.hashAcc = make([][]*flat.Table, nc)
	for k := range rt.hashAcc {
		rt.hashAcc[k] = make([]*flat.Table, n)
	}
	rt.hashBase = make([]uint64, n)
	kMode := false
	for _, pp := range plan.Procs {
		if nm := pp.Numbering; nm != nil && nm.K > 1 {
			kMode = true
		}
		if pp.UseHash {
			// Pre-size the Go-side tables from the path space so hashed
			// counting reaches a rehash-free steady state quickly; the
			// simulated bucket array stays at the modeled hashBuckets
			// (cache behaviour of the paper's small fixed hash).
			hint := hashBuckets
			if nm := pp.Numbering; nm != nil {
				hint = HashSizeHint(nm.NumPathsK)
			}
			rt.hashFreq[pp.ProcID] = flat.New(hint)
			for k := range rt.hashAcc {
				rt.hashAcc[k][pp.ProcID] = flat.New(hint)
			}
			rt.hashBase[pp.ProcID] = alloc.Alloc(hashBuckets*8*uint64(1+nc), 64)
		}
	}

	if plan.Mode.UsesCCT() {
		rt.Tree = cct.New(plan.CCTInfo, cct.Options{
			DistinguishCallSites: plan.Opts.DistinguishCallSites,
			NumMetrics:           plan.Opts.CCTMetrics,
			PathCounts:           plan.Mode == ModeContextFlow,
		}, mem.CCTBase)
		m.OnUnwind(func(depth int) {
			rt.Tree.UnwindTo(depth)
			if len(rt.entryPIC) > depth*rt.numPairs {
				rt.entryPIC = rt.entryPIC[:depth*rt.numPairs]
			}
		})
	}

	m.RegisterProbe(ProbeHashFreq, rt.onHashFreq)
	m.RegisterProbe(ProbeHashHW, rt.onHashHW)
	m.RegisterProbe(ProbeCCTCall, rt.onCCTCall)
	m.RegisterProbe(ProbeCCTEnter, rt.onCCTEnter)
	m.RegisterProbe(ProbeCCTExit, rt.onCCTExit)
	m.RegisterProbe(ProbeCCTTick, rt.onCCTTick)
	m.RegisterProbe(ProbeCCTPath, rt.onCCTPath)
	if kMode {
		m.RegisterProbe(ProbeKSeg, rt.onKSeg)
		m.RegisterProbe(ProbeKEnd, rt.onKEnd)
		m.OnUnwind(func(depth int) {
			// Activations discarded by a non-local exit take their partial
			// k-paths with them, as the classic scheme drops the register.
			if len(rt.kst) > depth {
				rt.kst = rt.kst[:depth]
			}
		})
	}
	return rt
}

// HashSizeHint derives the flat-table pre-size from a procedure's path
// space: enough headroom that the executed-path working set reaches
// steady state without rehash storms, capped so enormous k-path spaces
// don't balloon the runtime (distinct executed paths are vastly fewer
// than potential ones). Exported so benchmarks gating the 0-alloc steady
// state size their tables exactly as Wire does.
func HashSizeHint(numPaths int64) int {
	const maxHint = 1 << 15
	if numPaths > maxHint {
		return maxHint
	}
	if numPaths < hashBuckets {
		return hashBuckets
	}
	return int(numPaths)
}

// onHashFreq handles a hash-table path frequency update: in real
// instrumentation a short hash probe plus a counter increment.
func (rt *Runtime) onHashFreq(ctx sim.ProbeCtx, arg int64) int64 {
	proc, idx := UnpackProcPath(arg)
	rt.hashFreq[proc].Add(idx, 1)
	ctx.ChargeInstrs(6)
	a := rt.hashBase[proc] + (uint64(idx)%hashBuckets)*8
	ctx.TouchRead(a)
	ctx.TouchWrite(a)
	return arg
}

// onHashHW handles a hash-table path metric update: read each counter
// pair, accumulate every slot and the frequency. The instruction charge is
// the classic 14 for the two-counter schema, plus three per extra slot
// (load, add, store of its accumulator).
func (rt *Runtime) onHashHW(ctx sim.ProbeCtx, arg int64) int64 {
	proc, idx := UnpackProcPath(arg)
	pmu := rt.Machine.PMU()
	nc := rt.Plan.numCounters()
	for pr := 0; pr < rt.numPairs; pr++ {
		lo, hi := hpm.Split(pmu.ReadPair(pr))
		rt.hashAcc[2*pr][proc].Add(idx, int64(lo))
		if 2*pr+1 < nc {
			rt.hashAcc[2*pr+1][proc].Add(idx, int64(hi))
		}
	}
	rt.hashFreq[proc].Add(idx, 1)
	ctx.ChargeInstrs(uint64(8 + 3*nc))
	base := rt.hashBase[proc]
	b := (uint64(idx) % hashBuckets) * 8
	for i := uint64(0); i < uint64(1+nc); i++ {
		ctx.TouchRead(base + i*hashBuckets*8 + b)
		ctx.TouchWrite(base + i*hashBuckets*8 + b)
	}
	return arg
}

func (rt *Runtime) onCCTCall(ctx sim.ProbeCtx, arg int64) int64 {
	site, prefix := UnpackSitePath(arg)
	if prefix == noPrefix {
		prefix = cct.NoPrefix
	}
	rt.Tree.AtCall(site, prefix, ctx)
	return arg
}

func (rt *Runtime) onCCTEnter(ctx sim.ProbeCtx, arg int64) int64 {
	rt.Tree.Enter(int(arg), ctx)
	rt.Tree.AddMetric(0, 1, ctx) // invocation count
	if rt.Plan.Mode == ModeContextHW {
		// Record each counter pair at entry (one RDPIC per pair).
		ctx.ChargeInstrs(uint64(rt.numPairs))
		pmu := rt.Machine.PMU()
		for pr := 0; pr < rt.numPairs; pr++ {
			rt.entryPIC = append(rt.entryPIC, pmu.ReadPair(pr))
		}
	}
	return arg
}

func (rt *Runtime) onCCTExit(ctx sim.ProbeCtx, arg int64) int64 {
	if rt.Plan.Mode == ModeContextHW && len(rt.entryPIC) > 0 {
		rt.accumulateDelta(ctx)
		rt.entryPIC = rt.entryPIC[:len(rt.entryPIC)-rt.numPairs]
	}
	rt.Tree.Exit(ctx)
	return arg
}

// onCCTTick reads the counters along a loop backedge, attributing the
// events since the last reading to the current record and re-basing — the
// Section 4.3 refinement that bounds counter-wrap exposure.
func (rt *Runtime) onCCTTick(ctx sim.ProbeCtx, arg int64) int64 {
	if rt.Plan.Mode == ModeContextHW && len(rt.entryPIC) > 0 {
		rt.accumulateDelta(ctx)
		pmu := rt.Machine.PMU()
		base := len(rt.entryPIC) - rt.numPairs
		for pr := 0; pr < rt.numPairs; pr++ {
			rt.entryPIC[base+pr] = pmu.ReadPair(pr)
		}
	}
	return arg
}

// accumulateDelta adds (now - entry) for every instrumented 32-bit counter
// into the current record's metric slots 1..N (slot k+1 holds counter k's
// delta; slot 0 is the invocation count).
func (rt *Runtime) accumulateDelta(ctx sim.ProbeCtx) {
	// One RDPIC plus two subtract/bookkeeping instructions per pair, plus
	// two fixed bookkeeping instructions — 4 for the classic pair.
	ctx.ChargeInstrs(uint64(2*rt.numPairs + 2))
	pmu := rt.Machine.PMU()
	nc := rt.Plan.numCounters()
	base := len(rt.entryPIC) - rt.numPairs
	for pr := 0; pr < rt.numPairs; pr++ {
		now := pmu.ReadPair(pr)
		entry := rt.entryPIC[base+pr]
		nLo, nHi := hpm.Split(now)
		eLo, eHi := hpm.Split(entry)
		rt.Tree.AddMetric(1+2*pr, int64(hpm.Delta32(eLo, nLo)), ctx)
		if 2*pr+1 < nc {
			rt.Tree.AddMetric(2+2*pr, int64(hpm.Delta32(eHi, nHi)), ctx)
		}
	}
}

func (rt *Runtime) onCCTPath(ctx sim.ProbeCtx, arg int64) int64 {
	rt.Tree.CountPath(arg, ctx)
	return arg
}

// kActAt returns the composition slot of the activation at depth,
// growing the stack as calls deepen. Exited activations leave their slot
// zeroed, so reuse needs no initialization.
func (rt *Runtime) kActAt(depth int) *kAct {
	for len(rt.kst) < depth {
		rt.kst = append(rt.kst, kAct{})
	}
	return &rt.kst[depth-1]
}

// kReadCounters folds the counters' current values (the events of the
// segment just completed; the emitted code zeroes the counters at entry
// and after every backedge probe) into the activation's pending totals.
func (rt *Runtime) kReadCounters(ctx sim.ProbeCtx, st *kAct) {
	nc := rt.Plan.numCounters()
	if st.pend == nil {
		st.pend = make([]uint64, nc)
	}
	pmu := rt.Machine.PMU()
	for pr := 0; pr < rt.numPairs; pr++ {
		lo, hi := hpm.Split(pmu.ReadPair(pr))
		st.pend[2*pr] += uint64(lo)
		if 2*pr+1 < nc {
			st.pend[2*pr+1] += uint64(hi)
		}
	}
	ctx.ChargeInstrs(uint64(rt.numPairs))
}

// onKSeg handles a k-mode backedge boundary: decode the completed
// standard segment, add its layer value to the composed id, and either
// advance a layer or — when the k-path is full — count it and start the
// next one at the backedge target's k-start offset.
func (rt *Runtime) onKSeg(ctx sim.ProbeCtx, arg int64) int64 {
	proc, seg := UnpackProcPath(arg)
	pp := rt.Plan.Procs[proc]
	nm := pp.Numbering
	st := rt.kActAt(ctx.Depth())
	if rt.Plan.Mode == ModePathHW {
		rt.kReadCounters(ctx, st)
	}
	val, be, err := nm.SegmentValK(st.layer, seg)
	if err != nil || be < 0 {
		panic(fmt.Sprintf("instrument: k-segment decode at backedge failed: proc %d seg %d layer %d: err=%v be=%d",
			proc, seg, st.layer, err, be))
	}
	st.sum += val
	if st.layer >= nm.K-1 {
		rt.kCount(ctx, pp, st)
		st.sum = nm.KStart(be)
		st.layer = 0
	} else {
		st.layer++
		ctx.ChargeInstrs(4) // compose bookkeeping: add, layer bump, spill
	}
	return arg
}

// onKEnd handles the k-mode exit flush: the final segment ran to EXIT, so
// the composed k-path completes here regardless of layer. The slot is
// left zeroed for the next activation at this depth.
func (rt *Runtime) onKEnd(ctx sim.ProbeCtx, arg int64) int64 {
	proc, seg := UnpackProcPath(arg)
	pp := rt.Plan.Procs[proc]
	nm := pp.Numbering
	st := rt.kActAt(ctx.Depth())
	if rt.Plan.Mode == ModePathHW {
		rt.kReadCounters(ctx, st)
	}
	val, be, err := nm.SegmentValK(st.layer, seg)
	if err != nil || be >= 0 {
		panic(fmt.Sprintf("instrument: k-segment decode at exit failed: proc %d seg %d layer %d: err=%v be=%d",
			proc, seg, st.layer, err, be))
	}
	st.sum += val
	rt.kCount(ctx, pp, st)
	st.sum, st.layer = 0, 0
	return arg
}

// kCount counts one completed k-path id into the mode's counter store —
// the same targets the classic boundary code updates inline, addressed by
// the composed id: the CCT record (combined mode), the hashed tables, or
// the dense simulated-memory tables. HW mode credits the pending event
// totals accumulated across the path's segments and clears them.
func (rt *Runtime) kCount(ctx sim.ProbeCtx, pp *ProcPlan, st *kAct) {
	id := st.sum
	plan := rt.Plan
	nc := plan.numCounters()
	switch {
	case plan.Mode == ModeContextFlow:
		rt.Tree.CountPath(id, ctx)

	case pp.UseHash:
		proc := pp.ProcID
		rt.hashFreq[proc].Add(id, 1)
		slots := uint64(1)
		if plan.Mode == ModePathHW {
			for k := 0; k < nc; k++ {
				rt.hashAcc[k][proc].Add(id, int64(st.pend[k]))
			}
			slots = uint64(1 + nc)
			ctx.ChargeInstrs(uint64(8 + 3*nc))
		} else {
			ctx.ChargeInstrs(6)
		}
		base := rt.hashBase[proc]
		b := (uint64(id) % hashBuckets) * 8
		for i := uint64(0); i < slots; i++ {
			ctx.TouchRead(base + i*hashBuckets*8 + b)
			ctx.TouchWrite(base + i*hashBuckets*8 + b)
		}

	default:
		memory := rt.Machine.Mem()
		a := pp.FreqBase + uint64(id)*8
		memory.Store(a, memory.Load(a)+1)
		ctx.TouchRead(a)
		ctx.TouchWrite(a)
		charge := 5
		if plan.Mode == ModePathHW {
			for k := 0; k < nc; k++ {
				aa := pp.AccBases[k] + uint64(id)*8
				memory.Store(aa, memory.Load(aa)+int64(st.pend[k]))
				ctx.TouchRead(aa)
				ctx.TouchWrite(aa)
			}
			charge += 3 * nc
		}
		ctx.ChargeInstrs(uint64(charge))
	}
	if plan.Mode == ModePathHW {
		for k := range st.pend {
			st.pend[k] = 0
		}
	}
}

// ExtractProfile reads the completed run's path counters — dense tables
// from simulated memory, hash tables from the runtime — into a Profile.
// For ModeContextFlow the per-record tables are summed per procedure (the
// flow-sensitive projection of the combined profile). The profile's metric
// schema records the machine's event selection for every instrumented
// counter slot.
func (rt *Runtime) ExtractProfile() *profile.Profile {
	plan := rt.Plan
	nc := plan.numCounters()
	p := &profile.Profile{
		Program: plan.Prog.Name,
		Mode:    plan.Mode.String(),
	}
	sel := rt.Machine.PMU().SelectedAll()
	p.Events = make([]string, nc)
	for k := 0; k < nc; k++ {
		ev := hpm.EvNone
		if k < len(sel) {
			ev = sel[k]
		}
		p.Events[k] = ev.String()
	}

	memory := rt.Machine.Mem()
	if plan.Mode == ModeBlockHW {
		for _, pp := range plan.Procs {
			out := &profile.ProcPaths{ProcID: pp.ProcID, Name: pp.Name, NumPaths: pp.BlockCount}
			for bid := int64(0); bid < pp.BlockCount; bid++ {
				freq := uint64(memory.Load(pp.FreqBase + uint64(bid)*8))
				if freq == 0 {
					continue
				}
				e := profile.PathEntry{Sum: bid, Freq: freq, Metrics: out.NewMetrics(nc)}
				for k := 0; k < nc; k++ {
					e.Metrics[k] = uint64(memory.Load(pp.AccBases[k] + uint64(bid)*8))
				}
				out.Entries = append(out.Entries, e)
			}
			p.Procs = append(p.Procs, out)
		}
		return p
	}
	if plan.Opts.K > 1 {
		p.K = plan.Opts.K
	}
	for _, pp := range plan.Procs {
		if pp.Numbering == nil {
			continue
		}
		out := &profile.ProcPaths{ProcID: pp.ProcID, Name: pp.Name, NumPaths: pp.Numbering.NumPathsK}
		if p.K > 1 {
			out.K = pp.Numbering.K // effective (possibly clamped) degree
		}
		switch {
		case plan.Mode == ModeContextFlow:
			sums := flat.New(0)
			rt.Tree.Walk(func(n *cct.Node) {
				if n.Proc != pp.ProcID {
					return
				}
				n.RangePathCounts(func(s, c int64) bool {
					sums.Add(s, c)
					return true
				})
			})
			out.Entries = make([]profile.PathEntry, 0, sums.Len())
			sums.Range(func(s, c int64) bool {
				out.Entries = append(out.Entries, profile.PathEntry{Sum: s, Freq: uint64(c)})
				return true
			})
		case pp.UseHash:
			freq := rt.hashFreq[pp.ProcID]
			out.Entries = make([]profile.PathEntry, 0, freq.Len())
			freq.Range(func(s, c int64) bool {
				e := profile.PathEntry{Sum: s, Freq: uint64(c), Metrics: out.NewMetrics(nc)}
				for k := 0; k < nc; k++ {
					m, _ := rt.hashAcc[k][pp.ProcID].Get(s)
					e.Metrics[k] = uint64(m)
				}
				out.Entries = append(out.Entries, e)
				return true
			})
		default:
			for s := int64(0); s < pp.Numbering.NumPathsK; s++ {
				freq := uint64(memory.Load(pp.FreqBase + uint64(s)*8))
				if freq == 0 {
					continue
				}
				e := profile.PathEntry{Sum: s, Freq: freq}
				if plan.Mode == ModePathHW {
					e.Metrics = out.NewMetrics(nc)
					for k := 0; k < nc; k++ {
						e.Metrics[k] = uint64(memory.Load(pp.AccBases[k] + uint64(s)*8))
					}
				}
				out.Entries = append(out.Entries, e)
			}
		}
		out.Sort()
		p.Procs = append(p.Procs, out)
	}
	return p
}
