package instrument

import (
	"fmt"

	"pathprof/internal/cct"
	"pathprof/internal/flat"
	"pathprof/internal/hpm"
	"pathprof/internal/mem"
	"pathprof/internal/profile"
	"pathprof/internal/sim"
)

// Runtime is the per-machine profiling runtime: the CCT under construction,
// the hash-table path counters for path-rich procedures, and the saved
// counter readings that context+HW profiling keeps per activation. Create
// one with Plan.Wire for every machine that runs the instrumented program.
type Runtime struct {
	Plan    *Plan
	Machine *sim.Machine
	Tree    *cct.Tree

	// Hash path tables (per procedure; nil when the procedure uses a dense
	// array in simulated memory). Counts are non-negative and far below
	// 2^63, so the int64-valued flat tables hold them exactly. hashAcc has
	// one table per metric slot: hashAcc[k][proc].
	hashFreq []*flat.Table
	hashAcc  [][]*flat.Table
	// Simulated bucket arrays backing the hash tables, so probes perturb
	// the cache like real hash updates would: [proc] -> base address.
	hashBase []uint64

	// Context+HW state: the counter readings at entry to each live
	// activation, one packed pair value per instrumented pair, flattened
	// with stride numPairs (parallel to the CCT's context stack).
	entryPIC []uint64
	numPairs int
}

const hashBuckets = 64

// Wire registers probe handlers on m and returns the runtime. It must be
// called once per machine before Run.
//
// Wire does not mutate the plan: per-runtime simulated allocations (the
// hash bucket arrays) come from a clone of the plan's allocator, so every
// wiring of the same plan produces identical simulated addresses and a
// Plan may be shared — including concurrently — across machines.
func (plan *Plan) Wire(m *sim.Machine) *Runtime {
	if k := m.PMU().NumCounters(); k < plan.numCounters() {
		panic(fmt.Sprintf("instrument: plan needs %d counters, machine has %d",
			plan.numCounters(), k))
	}
	rt := &Runtime{Plan: plan, Machine: m, numPairs: plan.numPairs()}
	n := len(plan.Prog.Procs)
	nc := plan.numCounters()
	alloc := plan.alloc.Clone()
	rt.hashFreq = make([]*flat.Table, n)
	rt.hashAcc = make([][]*flat.Table, nc)
	for k := range rt.hashAcc {
		rt.hashAcc[k] = make([]*flat.Table, n)
	}
	rt.hashBase = make([]uint64, n)
	for _, pp := range plan.Procs {
		if pp.UseHash {
			rt.hashFreq[pp.ProcID] = flat.New(hashBuckets)
			for k := range rt.hashAcc {
				rt.hashAcc[k][pp.ProcID] = flat.New(hashBuckets)
			}
			rt.hashBase[pp.ProcID] = alloc.Alloc(hashBuckets*8*uint64(1+nc), 64)
		}
	}

	if plan.Mode.UsesCCT() {
		rt.Tree = cct.New(plan.CCTInfo, cct.Options{
			DistinguishCallSites: plan.Opts.DistinguishCallSites,
			NumMetrics:           plan.Opts.CCTMetrics,
			PathCounts:           plan.Mode == ModeContextFlow,
		}, mem.CCTBase)
		m.OnUnwind(func(depth int) {
			rt.Tree.UnwindTo(depth)
			if len(rt.entryPIC) > depth*rt.numPairs {
				rt.entryPIC = rt.entryPIC[:depth*rt.numPairs]
			}
		})
	}

	m.RegisterProbe(ProbeHashFreq, rt.onHashFreq)
	m.RegisterProbe(ProbeHashHW, rt.onHashHW)
	m.RegisterProbe(ProbeCCTCall, rt.onCCTCall)
	m.RegisterProbe(ProbeCCTEnter, rt.onCCTEnter)
	m.RegisterProbe(ProbeCCTExit, rt.onCCTExit)
	m.RegisterProbe(ProbeCCTTick, rt.onCCTTick)
	m.RegisterProbe(ProbeCCTPath, rt.onCCTPath)
	return rt
}

// onHashFreq handles a hash-table path frequency update: in real
// instrumentation a short hash probe plus a counter increment.
func (rt *Runtime) onHashFreq(ctx sim.ProbeCtx, arg int64) int64 {
	proc, idx := UnpackProcPath(arg)
	rt.hashFreq[proc].Add(idx, 1)
	ctx.ChargeInstrs(6)
	a := rt.hashBase[proc] + (uint64(idx)%hashBuckets)*8
	ctx.TouchRead(a)
	ctx.TouchWrite(a)
	return arg
}

// onHashHW handles a hash-table path metric update: read each counter
// pair, accumulate every slot and the frequency. The instruction charge is
// the classic 14 for the two-counter schema, plus three per extra slot
// (load, add, store of its accumulator).
func (rt *Runtime) onHashHW(ctx sim.ProbeCtx, arg int64) int64 {
	proc, idx := UnpackProcPath(arg)
	pmu := rt.Machine.PMU()
	nc := rt.Plan.numCounters()
	for pr := 0; pr < rt.numPairs; pr++ {
		lo, hi := hpm.Split(pmu.ReadPair(pr))
		rt.hashAcc[2*pr][proc].Add(idx, int64(lo))
		if 2*pr+1 < nc {
			rt.hashAcc[2*pr+1][proc].Add(idx, int64(hi))
		}
	}
	rt.hashFreq[proc].Add(idx, 1)
	ctx.ChargeInstrs(uint64(8 + 3*nc))
	base := rt.hashBase[proc]
	b := (uint64(idx) % hashBuckets) * 8
	for i := uint64(0); i < uint64(1+nc); i++ {
		ctx.TouchRead(base + i*hashBuckets*8 + b)
		ctx.TouchWrite(base + i*hashBuckets*8 + b)
	}
	return arg
}

func (rt *Runtime) onCCTCall(ctx sim.ProbeCtx, arg int64) int64 {
	site, prefix := UnpackSitePath(arg)
	if prefix == noPrefix {
		prefix = cct.NoPrefix
	}
	rt.Tree.AtCall(site, prefix, ctx)
	return arg
}

func (rt *Runtime) onCCTEnter(ctx sim.ProbeCtx, arg int64) int64 {
	rt.Tree.Enter(int(arg), ctx)
	rt.Tree.AddMetric(0, 1, ctx) // invocation count
	if rt.Plan.Mode == ModeContextHW {
		// Record each counter pair at entry (one RDPIC per pair).
		ctx.ChargeInstrs(uint64(rt.numPairs))
		pmu := rt.Machine.PMU()
		for pr := 0; pr < rt.numPairs; pr++ {
			rt.entryPIC = append(rt.entryPIC, pmu.ReadPair(pr))
		}
	}
	return arg
}

func (rt *Runtime) onCCTExit(ctx sim.ProbeCtx, arg int64) int64 {
	if rt.Plan.Mode == ModeContextHW && len(rt.entryPIC) > 0 {
		rt.accumulateDelta(ctx)
		rt.entryPIC = rt.entryPIC[:len(rt.entryPIC)-rt.numPairs]
	}
	rt.Tree.Exit(ctx)
	return arg
}

// onCCTTick reads the counters along a loop backedge, attributing the
// events since the last reading to the current record and re-basing — the
// Section 4.3 refinement that bounds counter-wrap exposure.
func (rt *Runtime) onCCTTick(ctx sim.ProbeCtx, arg int64) int64 {
	if rt.Plan.Mode == ModeContextHW && len(rt.entryPIC) > 0 {
		rt.accumulateDelta(ctx)
		pmu := rt.Machine.PMU()
		base := len(rt.entryPIC) - rt.numPairs
		for pr := 0; pr < rt.numPairs; pr++ {
			rt.entryPIC[base+pr] = pmu.ReadPair(pr)
		}
	}
	return arg
}

// accumulateDelta adds (now - entry) for every instrumented 32-bit counter
// into the current record's metric slots 1..N (slot k+1 holds counter k's
// delta; slot 0 is the invocation count).
func (rt *Runtime) accumulateDelta(ctx sim.ProbeCtx) {
	// One RDPIC plus two subtract/bookkeeping instructions per pair, plus
	// two fixed bookkeeping instructions — 4 for the classic pair.
	ctx.ChargeInstrs(uint64(2*rt.numPairs + 2))
	pmu := rt.Machine.PMU()
	nc := rt.Plan.numCounters()
	base := len(rt.entryPIC) - rt.numPairs
	for pr := 0; pr < rt.numPairs; pr++ {
		now := pmu.ReadPair(pr)
		entry := rt.entryPIC[base+pr]
		nLo, nHi := hpm.Split(now)
		eLo, eHi := hpm.Split(entry)
		rt.Tree.AddMetric(1+2*pr, int64(hpm.Delta32(eLo, nLo)), ctx)
		if 2*pr+1 < nc {
			rt.Tree.AddMetric(2+2*pr, int64(hpm.Delta32(eHi, nHi)), ctx)
		}
	}
}

func (rt *Runtime) onCCTPath(ctx sim.ProbeCtx, arg int64) int64 {
	rt.Tree.CountPath(arg, ctx)
	return arg
}

// ExtractProfile reads the completed run's path counters — dense tables
// from simulated memory, hash tables from the runtime — into a Profile.
// For ModeContextFlow the per-record tables are summed per procedure (the
// flow-sensitive projection of the combined profile). The profile's metric
// schema records the machine's event selection for every instrumented
// counter slot.
func (rt *Runtime) ExtractProfile() *profile.Profile {
	plan := rt.Plan
	nc := plan.numCounters()
	p := &profile.Profile{
		Program: plan.Prog.Name,
		Mode:    plan.Mode.String(),
	}
	sel := rt.Machine.PMU().SelectedAll()
	p.Events = make([]string, nc)
	for k := 0; k < nc; k++ {
		ev := hpm.EvNone
		if k < len(sel) {
			ev = sel[k]
		}
		p.Events[k] = ev.String()
	}

	memory := rt.Machine.Mem()
	if plan.Mode == ModeBlockHW {
		for _, pp := range plan.Procs {
			out := &profile.ProcPaths{ProcID: pp.ProcID, Name: pp.Name, NumPaths: pp.BlockCount}
			for bid := int64(0); bid < pp.BlockCount; bid++ {
				freq := uint64(memory.Load(pp.FreqBase + uint64(bid)*8))
				if freq == 0 {
					continue
				}
				e := profile.PathEntry{Sum: bid, Freq: freq, Metrics: out.NewMetrics(nc)}
				for k := 0; k < nc; k++ {
					e.Metrics[k] = uint64(memory.Load(pp.AccBases[k] + uint64(bid)*8))
				}
				out.Entries = append(out.Entries, e)
			}
			p.Procs = append(p.Procs, out)
		}
		return p
	}
	for _, pp := range plan.Procs {
		if pp.Numbering == nil {
			continue
		}
		out := &profile.ProcPaths{ProcID: pp.ProcID, Name: pp.Name, NumPaths: pp.Numbering.NumPaths}
		switch {
		case plan.Mode == ModeContextFlow:
			sums := flat.New(0)
			rt.Tree.Walk(func(n *cct.Node) {
				if n.Proc != pp.ProcID {
					return
				}
				n.RangePathCounts(func(s, c int64) bool {
					sums.Add(s, c)
					return true
				})
			})
			out.Entries = make([]profile.PathEntry, 0, sums.Len())
			sums.Range(func(s, c int64) bool {
				out.Entries = append(out.Entries, profile.PathEntry{Sum: s, Freq: uint64(c)})
				return true
			})
		case pp.UseHash:
			freq := rt.hashFreq[pp.ProcID]
			out.Entries = make([]profile.PathEntry, 0, freq.Len())
			freq.Range(func(s, c int64) bool {
				e := profile.PathEntry{Sum: s, Freq: uint64(c), Metrics: out.NewMetrics(nc)}
				for k := 0; k < nc; k++ {
					m, _ := rt.hashAcc[k][pp.ProcID].Get(s)
					e.Metrics[k] = uint64(m)
				}
				out.Entries = append(out.Entries, e)
				return true
			})
		default:
			for s := int64(0); s < pp.Numbering.NumPaths; s++ {
				freq := uint64(memory.Load(pp.FreqBase + uint64(s)*8))
				if freq == 0 {
					continue
				}
				e := profile.PathEntry{Sum: s, Freq: freq}
				if plan.Mode == ModePathHW {
					e.Metrics = out.NewMetrics(nc)
					for k := 0; k < nc; k++ {
						e.Metrics[k] = uint64(memory.Load(pp.AccBases[k] + uint64(s)*8))
					}
				}
				out.Entries = append(out.Entries, e)
			}
		}
		out.Sort()
		p.Procs = append(p.Procs, out)
	}
	return p
}
