package instrument

import (
	"fmt"

	"pathprof/internal/cfg"
	"pathprof/internal/ir"
	"pathprof/internal/mem"
)

// edgeCountProc inserts qpt-style edge profiling: a spanning tree of the
// CFG (plus the virtual EXIT→ENTRY edge) is left uninstrumented and only
// the chords carry counters; the remaining edge frequencies are recovered
// offline by flow conservation (DecodeEdgeCounts). This is the baseline the
// paper reports path profiling to cost roughly twice as much as.
func (plan *Plan) edgeCountProc(p *ir.Proc) error {
	pp := plan.Procs[p.ID]
	ed := &editor{proc: p}
	ed.splitEntry()
	pp.BaseBlocks = len(p.Blocks)
	pp.exitBlock = p.ExitBlock

	n := len(p.Blocks)
	edges := cfg.Edges(p)

	// Kruskal over the undirected view with EXIT→ENTRY forced in first.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) bool {
		ra, rb := find(a), find(b)
		if ra == rb {
			return false
		}
		parent[ra] = rb
		return true
	}
	union(int(p.ExitBlock), 0)
	for _, e := range edges {
		ref := EdgeRef{From: e.From, Slot: e.Slot, To: e.To}
		if union(int(e.From), int(e.To)) {
			pp.EdgeTree = append(pp.EdgeTree, ref)
		} else {
			pp.EdgeChords = append(pp.EdgeChords, ref)
		}
	}

	if len(pp.EdgeChords) > 0 {
		pp.EdgeBase = plan.alloc.Alloc(uint64(len(pp.EdgeChords))*8, 64)
	}

	rp, err := planRegs(p, 3)
	if err != nil {
		return err
	}
	pp.Spilled = rp.spill
	pp.Regs = rp.info()

	preds := ed.numPreds()
	for i, ch := range pp.EdgeChords {
		sb := rp.seq()
		z := sb.zeroReg()
		t := sb.scratch(0)
		addr := int64(pp.EdgeBase + uint64(i)*8)
		sb.emit(
			ir.Instr{Op: ir.Load, Rd: t, Rs: z, Imm: addr},
			ir.Instr{Op: ir.AddI, Rd: t, Rs: t, Imm: 1},
			ir.Instr{Op: ir.Store, Rs: z, Imm: addr, Rd: t},
		)
		ed.insertOnEdge(ch.From, ch.Slot, preds, sb.finish())
	}

	// Spill-mode frame setup/teardown (zero register reconstruction keeps
	// sequences self-contained, so only the frame register needs a home).
	if rp.spill {
		ed.insertBeforeTerm(p.ExitBlock, []ir.Instr{
			{Op: ir.Mov, Rd: ir.RegSP, Rs: rp.frame},
			{Op: ir.AddI, Rd: ir.RegSP, Rs: ir.RegSP, Imm: frameBytes},
		})
		ed.prependEntry([]ir.Instr{
			{Op: ir.AddI, Rd: ir.RegSP, Rs: ir.RegSP, Imm: -frameBytes},
			{Op: ir.Mov, Rd: rp.frame, Rs: ir.RegSP},
		})
	} else {
		ed.prependEntry([]ir.Instr{{Op: ir.MovI, Rd: rp.zero, Imm: 0}})
	}
	return nil
}

// DecodeEdgeCounts recovers every edge's execution count of one procedure
// from the chord counters of a completed run, by leaf-elimination over the
// spanning tree (each vertex contributes one flow-conservation equation:
// inflow equals outflow, with the virtual EXIT→ENTRY edge carrying the
// activation count).
func DecodeEdgeCounts(pp *ProcPlan, memory *mem.Memory) (map[cfg.Edge]int64, int64, error) {
	counts := make(map[cfg.Edge]int64)
	for i, ch := range pp.EdgeChords {
		counts[cfg.Edge{From: ch.From, To: ch.To, Slot: ch.Slot}] = memory.Load(pp.EdgeBase + uint64(i)*8)
	}

	// Unknowns: tree edges plus the virtual edge. Represent the virtual
	// edge as a special key.
	type ue struct {
		e       cfg.Edge
		virtual bool
	}
	unknown := make([]ue, 0, len(pp.EdgeTree)+1)
	for _, te := range pp.EdgeTree {
		unknown = append(unknown, ue{e: cfg.Edge{From: te.From, To: te.To, Slot: te.Slot}})
	}
	virtualFrom, virtualTo := pp.exitEntry()
	unknown = append(unknown, ue{e: cfg.Edge{From: virtualFrom, To: virtualTo, Slot: -1}, virtual: true})

	// incidence[v] lists indices of unknown edges incident to v.
	maxBlock := ir.BlockID(0)
	touch := func(b ir.BlockID) {
		if b > maxBlock {
			maxBlock = b
		}
	}
	for _, u := range unknown {
		touch(u.e.From)
		touch(u.e.To)
	}
	for e := range counts {
		touch(e.From)
		touch(e.To)
	}
	nv := int(maxBlock) + 1
	incident := make([][]int, nv)
	for i, u := range unknown {
		incident[u.e.From] = append(incident[u.e.From], i)
		if u.e.To != u.e.From {
			incident[u.e.To] = append(incident[u.e.To], i)
		}
	}

	// Known net flow per vertex from chord counts: inflow - outflow.
	net := make([]int64, nv)
	for e, c := range counts {
		net[e.To] += c
		net[e.From] -= c
	}

	solved := make([]bool, len(unknown))
	value := make([]int64, len(unknown))
	remaining := make([]int, nv)
	for v := 0; v < nv; v++ {
		remaining[v] = len(incident[v])
	}
	queue := []int{}
	for v := 0; v < nv; v++ {
		if remaining[v] == 1 {
			queue = append(queue, v)
		}
	}
	solvedCount := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if remaining[v] != 1 {
			continue
		}
		// Find the single unsolved incident edge.
		var ei = -1
		for _, i := range incident[v] {
			if !solved[i] {
				ei = i
				break
			}
		}
		if ei == -1 {
			continue
		}
		u := unknown[ei]
		// Flow balance at v: net[v] + x*(sign) == 0 where sign is +1 when
		// the edge flows into v, -1 when out of v (self-loops contribute
		// zero net flow and are always chords, never tree edges).
		var x int64
		if u.e.To == ir.BlockID(v) {
			x = -net[v]
		} else {
			x = net[v]
		}
		value[ei] = x
		solved[ei] = true
		solvedCount++
		// Propagate to the other endpoint.
		other := u.e.From
		if other == ir.BlockID(v) {
			other = u.e.To
		}
		net[u.e.To] += x
		net[u.e.From] -= x
		remaining[v]--
		if other != ir.BlockID(v) {
			remaining[other]--
			if remaining[other] == 1 {
				queue = append(queue, int(other))
			}
		}
	}
	if solvedCount != len(unknown) {
		return nil, 0, fmt.Errorf("instrument: edge decode incomplete (%d/%d)", solvedCount, len(unknown))
	}
	var activations int64
	for i, u := range unknown {
		if u.virtual {
			activations = value[i]
			continue
		}
		counts[u.e] = value[i]
	}
	return counts, activations, nil
}

// exitEntry returns the virtual edge endpoints for decoding; the entry is
// always block 0 and the recorded tree/chord refs already use the
// instrumented CFG's IDs.
func (pp *ProcPlan) exitEntry() (from, to ir.BlockID) {
	return pp.exitBlock, 0
}
