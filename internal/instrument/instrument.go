package instrument

import (
	"fmt"

	"pathprof/internal/bl"
	"pathprof/internal/cct"
	"pathprof/internal/cfg"
	"pathprof/internal/hpm"
	"pathprof/internal/ir"
	"pathprof/internal/mem"
)

// Mode selects what instrumentation to insert. The names of the three
// profiled configurations follow Table 1 of the paper.
type Mode int

const (
	// ModeNone performs no insertion (baseline runs).
	ModeNone Mode = iota
	// ModeEdgeCount inserts edge-frequency counting (the qpt-style
	// baseline the paper compares path profiling against).
	ModeEdgeCount
	// ModePathFreq inserts Ball-Larus path frequency counting only.
	ModePathFreq
	// ModePathHW is "Flow and HW": hardware metrics accumulated per path.
	ModePathHW
	// ModeContextHW is "Context and HW": a CCT with per-record hardware
	// metric deltas.
	ModeContextHW
	// ModeContextFlow is "Context and Flow": a CCT whose records hold path
	// frequency tables (no hardware counters).
	ModeContextFlow
	// ModeContextProbesOnly inserts only the call/enter/exit probes, with
	// no metric work; baselines (dynamic call tree, gprof-style arc counts,
	// sampling) wire their own handlers to it.
	ModeContextProbesOnly
	// ModeBlockHW records hardware metric deltas per basic block — the
	// statement-level attribution of Section 6.4.3, implemented so its
	// "far more expensive" overhead can be measured against path profiling.
	ModeBlockHW
)

func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeEdgeCount:
		return "edge-count"
	case ModePathFreq:
		return "path-freq"
	case ModePathHW:
		return "flow+hw"
	case ModeContextHW:
		return "context+hw"
	case ModeContextFlow:
		return "context+flow"
	case ModeContextProbesOnly:
		return "context-probes"
	case ModeBlockHW:
		return "block+hw"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// UsesPaths reports whether the mode inserts Ball-Larus path tracking.
func (m Mode) UsesPaths() bool {
	return m == ModePathFreq || m == ModePathHW || m == ModeContextFlow
}

// UsesCCT reports whether the mode inserts context probes.
func (m Mode) UsesCCT() bool {
	return m == ModeContextHW || m == ModeContextFlow || m == ModeContextProbesOnly
}

// Probe identifiers understood by the wiring in wire.go.
const (
	ProbeCCTCall  = 1 // arg: site<<40 | pathPrefix+1 (0 when no path info)
	ProbeCCTEnter = 2 // arg: callee procedure ID
	ProbeCCTExit  = 3 // arg: unused
	ProbeCCTTick  = 4 // arg: unused; backedge counter read (Section 4.3)
	ProbeCCTPath  = 5 // arg: completed path sum (combined mode)
	ProbeHashFreq = 6 // arg: procID<<40 | pathIndex (hash-table path count)
	ProbeHashHW   = 7 // arg: procID<<40 | pathIndex (hash-table HW update)
	ProbeKSeg     = 8 // arg: procID<<40 | segment id (k-mode backedge boundary)
	ProbeKEnd     = 9 // arg: procID<<40 | segment id (k-mode exit flush)
)

// prefixBias re-centres path prefixes for packing: chord-optimized
// increments make the tracking register transiently negative, so prefixes
// are stored biased (and offset by one so that a packed value of zero
// means "no prefix").
const prefixBias = int64(1) << 38

// packSitePath packs a call-site index and path prefix for ProbeCCTCall.
// An unknown prefix encodes as 0 in the low 40 bits; known prefixes are
// stored as prefix+prefixBias+1, which the instrumenter guarantees is
// positive and below 2^40 (see maxPackedPaths).
func packSitePath(site int, prefix int64) int64 {
	low := int64(0)
	if prefix != noPrefix {
		low = prefix + prefixBias + 1
	}
	return int64(site)<<40 | low
}

// noPrefix mirrors cct.NoPrefix for the packing layer.
const noPrefix = int64(-1) << 62

// UnpackSitePath inverts packSitePath; an absent prefix decodes to
// cct.NoPrefix semantics via the noPrefix sentinel.
func UnpackSitePath(arg int64) (site int, prefix int64) {
	low := arg & ((1 << 40) - 1)
	if low == 0 {
		return int(arg >> 40), noPrefix
	}
	return int(arg >> 40), low - prefixBias - 1
}

// PackProcPath packs a procedure ID and path index for the hash probes.
func PackProcPath(proc int, idx int64) int64 { return int64(proc)<<40 | idx }

// UnpackProcPath inverts PackProcPath.
func UnpackProcPath(arg int64) (proc int, idx int64) {
	return int(arg >> 40), arg & ((1 << 40) - 1)
}

// maxPackedPaths bounds path sums that can ride in packed probe arguments.
// Chord-optimized prefixes range within a few multiples of NumPaths, so the
// bound sits far below the 2^38 packing bias.
const maxPackedPaths = int64(1) << 34

// Options configures instrumentation.
type Options struct {
	Mode Mode

	// OptimizeIncrements places path increments on spanning-tree chords
	// instead of every non-zero edge (the [BL96] optimization).
	OptimizeIncrements bool

	// HashPathThreshold is the potential-path count above which a
	// procedure's counters move from a dense array in simulated memory to
	// a hash table maintained by the profiling runtime. Zero means
	// DefaultHashPathThreshold.
	HashPathThreshold int64

	// ReadAfterWrite controls whether counter-zeroing emits the mandatory
	// UltraSPARC read-after-write; disabling it is an ablation showing the
	// skew from unconfirmed counter writes.
	ReadAfterWrite bool

	// BackedgeCounterReads makes context+HW instrumentation read the
	// counters along loop backedges (Section 4.3), bounding wrap exposure
	// and attributing long loops to their own record.
	BackedgeCounterReads bool

	// DistinguishCallSites selects the CCT layout (see cct.Options).
	DistinguishCallSites bool

	// CCTMetrics is the number of per-record metric slots for context
	// modes: slot 0 counts invocations, slots 1..NumCounters accumulate the
	// per-counter deltas. Zero means 1+NumCounters.
	CCTMetrics int

	// NumCounters is how many hardware counters the HW modes save, zero,
	// and accumulate per path/block/context (the metric-schema width). Zero
	// means the classic UltraSPARC pair. Counters are addressed in pairs
	// (one RdPIC/WrPIC moves two), so widths beyond 2 cost an extra
	// read/accumulate sequence per pair. The machine running the plan must
	// have a bank at least this wide; wider MetricSets than the machine
	// exposes need the whole-run multiplexing scheduler instead
	// (sim.Machine.AttachScheduler).
	NumCounters int

	// K is the path degree: ids name paths spanning up to K loop
	// iterations (D'Elia–Demetrescu; see bl.ExtendK). 0 or 1 is the
	// classic single-iteration scheme and changes nothing. Procedures
	// whose k-path space would overflow bl.MaxPaths are clamped to the
	// largest degree that fits (per procedure; the numbering records the
	// effective degree).
	K int

	// ProfiledFreqs, when non-nil, supplies measured edge frequencies per
	// procedure (from pgo.Acquire, the single profile-acquisition entry
	// point) to weight the spanning tree of the increment optimization —
	// the profile-guided placement of the original path-profiling work.
	// Procedures with a nil entry fall back to the static loop-depth
	// heuristic.
	ProfiledFreqs []EdgeFreqs
}

// EdgeFreqs maps a procedure's CFG edges (identified on the entry-split
// CFG, the form every instrumentation mode normalizes to first) to
// execution counts.
type EdgeFreqs map[cfg.Edge]int64

// DefaultHashPathThreshold is where the array-of-counters gives way to a
// hash table, as in the paper's instrumentation.
const DefaultHashPathThreshold = int64(1) << 16

// DefaultOptions returns the configuration used for the paper's main
// experiments.
func DefaultOptions(mode Mode) Options {
	return Options{
		Mode:                 mode,
		OptimizeIncrements:   true,
		HashPathThreshold:    DefaultHashPathThreshold,
		ReadAfterWrite:       true,
		BackedgeCounterReads: true,
		DistinguishCallSites: true,
		CCTMetrics:           3,
	}
}

// ProcPlan records how one procedure was instrumented, with everything
// needed to decode its counters afterwards.
type ProcPlan struct {
	ProcID    int
	Name      string
	Numbering *bl.Numbering  // nil unless the mode uses paths
	Inc       *bl.Increments // increments actually inserted
	UseHash   bool           // counters in a runtime hash table
	Spilled   bool           // register-starved: spill-mode instrumentation

	// Simulated addresses of dense counter tables (0 when unused/hashed):
	// the frequency table plus one accumulator table per metric slot, in
	// slot order (AccBases[0] holds what PIC0 counted, and so on).
	FreqBase uint64
	AccBases []uint64

	NumSites int // call sites (for CCT slot layout)

	// BlockCount is the number of per-block accumulator slots allocated by
	// ModeBlockHW (0 otherwise).
	BlockCount int64

	// SiteBlocks maps call-site index -> the block containing the call,
	// on the instrumented (entry-split) CFG. Filled by the context modes;
	// used to stitch interprocedural paths at one-path sites.
	SiteBlocks []ir.BlockID

	// EdgeChords lists, for ModeEdgeCount, which edges carry counters:
	// EdgeChords[i] is the (block, slot) whose counter lives at
	// EdgeBase + 8*i. Non-chord edge counts are recovered by flow
	// conservation during decoding.
	EdgeChords []EdgeRef
	EdgeBase   uint64
	// EdgeTree describes the spanning tree used (for decoding).
	EdgeTree []EdgeRef
	// exitBlock is the instrumented procedure's exit block (decoding).
	exitBlock ir.BlockID

	// Regs records the register regime the pass used, so static verifiers
	// can reason about reserved registers and frame slots. Nil when the
	// procedure was not instrumented (ModeNone).
	Regs *RegInfo

	// BaseBlocks is the block count right after the entry split, before any
	// edge-splitting insertions; blocks with IDs at or above it are
	// pass-through blocks created to instrument an edge. Zero when the
	// procedure was not instrumented.
	BaseBlocks int
}

// EdgeRef names one CFG edge by source block and successor slot.
type EdgeRef struct {
	From ir.BlockID
	Slot int
	To   ir.BlockID
}

// RegInfo is the exported view of a procedure's instrumentation register
// plan: which registers the instrumentation reserved (direct mode) or
// borrowed (spill mode), and how its frame is laid out.
type RegInfo struct {
	Spill bool // register-starved: state lives in a frame
	Pairs int  // counter pairs saved/restored (>= 1 once normalized)

	// Direct mode.
	Zero      ir.Reg // holds 0 for StoreIdx addressing
	Path      ir.Reg // Ball-Larus tracking register
	Tmp       [3]ir.Reg
	Save      ir.Reg   // saved counter pair 0
	SaveExtra []ir.Reg // saved pairs 1..

	// Spill mode.
	Frame   ir.Reg    // frame base register
	Victims [5]ir.Reg // borrowed registers, saved around each sequence

	// Reserved lists every register the instrumentation owns outright: the
	// direct-mode dedicated registers, or just Frame in spill mode (victims
	// are borrowed program registers, saved and restored around sequences).
	Reserved []ir.Reg
}

// FrameSize returns the spill frame size in bytes.
func (ri *RegInfo) FrameSize() int64 {
	rp := regPlan{pairs: ri.Pairs}
	return rp.frameSize()
}

// SlotPath returns the frame offset of the spilled path register.
func (ri *RegInfo) SlotPath() int64 { return slotPath }

// SlotSave returns the frame offset holding saved counter pair pr.
func (ri *RegInfo) SlotSave(pr int) int64 {
	rp := regPlan{pairs: ri.Pairs}
	return rp.slotSave(pr)
}

// SlotVictim returns the frame offset saving victim i around sequences.
func (ri *RegInfo) SlotVictim(i int) int64 { return slotVictim0 + 8*int64(i) }

// SaveReg returns the direct-mode register holding saved counter pair pr.
func (ri *RegInfo) SaveReg(pr int) ir.Reg {
	if pr == 0 {
		return ri.Save
	}
	return ri.SaveExtra[pr-1]
}

// Plan is the complete instrumentation result. A Plan is immutable once
// Instrument returns: Wire allocates per-runtime state from a clone of the
// internal allocator, so one Plan can back any number of machines, run
// concurrently (the parallel experiment engine shares one Plan across all
// cells with the same workload and mode).
type Plan struct {
	Mode Mode
	Opts Options

	Prog *ir.Program // instrumented program (a deep copy)
	Orig *ir.Program // the program as given

	Procs []*ProcPlan // indexed by procedure ID

	// CCTInfo describes procedures for the cct package.
	CCTInfo []cct.ProcInfo

	// CounterBytes is the simulated memory reserved for counter tables.
	CounterBytes uint64

	alloc *mem.Allocator
}

// Instrument clones prog and inserts instrumentation per opts. The returned
// plan's Prog field is the program to run; Wire must be called on each
// machine executing it.
func Instrument(prog *ir.Program, opts Options) (*Plan, error) {
	if opts.HashPathThreshold == 0 {
		opts.HashPathThreshold = DefaultHashPathThreshold
	}
	if opts.NumCounters == 0 {
		opts.NumCounters = 2
	}
	if opts.NumCounters < 1 || opts.NumCounters > hpm.MaxCounters {
		return nil, fmt.Errorf("instrument: %d counters out of range", opts.NumCounters)
	}
	if opts.CCTMetrics == 0 && opts.Mode.UsesCCT() {
		opts.CCTMetrics = 1 + opts.NumCounters
	}
	if opts.K == 0 {
		opts.K = 1
	}
	if opts.K < 1 || opts.K > 8 {
		return nil, fmt.Errorf("instrument: path degree k=%d out of range [1,8]", opts.K)
	}
	clone := ir.Clone(prog)
	plan := &Plan{
		Mode:  opts.Mode,
		Opts:  opts,
		Prog:  clone,
		Orig:  prog,
		alloc: mem.NewAllocator(mem.CounterBase, 1<<30),
	}

	for _, p := range clone.Procs {
		pp := &ProcPlan{ProcID: p.ID, Name: p.Name, NumSites: countSites(p)}
		plan.Procs = append(plan.Procs, pp)
	}

	for _, p := range clone.Procs {
		if err := plan.instrumentProc(p); err != nil {
			return nil, err
		}
	}

	plan.CCTInfo = make([]cct.ProcInfo, len(clone.Procs))
	for i, p := range clone.Procs {
		info := cct.ProcInfo{Name: p.Name, NumSites: plan.Procs[i].NumSites}
		if nm := plan.Procs[i].Numbering; nm != nil {
			info.NumPaths = nm.NumPathsK // == NumPaths at the classic K=1
		}
		plan.CCTInfo[i] = info
	}
	plan.CounterBytes = plan.alloc.Used(mem.CounterBase)

	if err := ir.Validate(clone); err != nil {
		return nil, fmt.Errorf("instrument: produced invalid program: %w", err)
	}
	if DebugVerify != nil {
		if err := DebugVerify(plan); err != nil {
			return nil, fmt.Errorf("instrument: verification failed: %w", err)
		}
	}
	return plan, nil
}

// DebugVerify, when non-nil, runs over every plan Instrument produces, and
// its error fails the instrumentation. The ppvet verifier installs itself
// here (via its autovet package) so the test suite and debug builds check
// every emitted program; it is a variable, not an import, to keep the
// instrumenter free of a dependency on its own verifier.
var DebugVerify func(*Plan) error

func countSites(p *ir.Proc) int {
	n := 0
	for _, b := range p.Blocks {
		for _, in := range b.Instrs {
			if in.Op.IsCall() {
				n++
			}
		}
	}
	return n
}

// numCounters returns the normalized metric-schema width N.
func (plan *Plan) numCounters() int { return plan.Opts.NumCounters }

// numPairs returns how many counter pairs cover N counters (RdPIC/WrPIC
// move a pair per instruction).
func (plan *Plan) numPairs() int { return (plan.Opts.NumCounters + 1) / 2 }

// allocAccBases reserves one 64-bit accumulator table per metric slot,
// in slot order immediately after the frequency table — the classic
// Acc0/Acc1 layout extended to N slots.
func (plan *Plan) allocAccBases(pp *ProcPlan, slots int64) {
	pp.AccBases = make([]uint64, plan.numCounters())
	for i := range pp.AccBases {
		pp.AccBases[i] = plan.alloc.Alloc(uint64(slots)*8, 64)
	}
}

// instrumentProc dispatches on mode.
func (plan *Plan) instrumentProc(p *ir.Proc) error {
	switch plan.Mode {
	case ModeNone:
		return nil
	case ModeEdgeCount:
		return plan.edgeCountProc(p)
	case ModePathFreq, ModePathHW, ModeContextFlow:
		return plan.pathProc(p)
	case ModeContextHW, ModeContextProbesOnly:
		return plan.cctOnlyProc(p)
	case ModeBlockHW:
		return plan.blockHWProc(p)
	default:
		return fmt.Errorf("instrument: unknown mode %v", plan.Mode)
	}
}
