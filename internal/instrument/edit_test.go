package instrument

import (
	"testing"

	"pathprof/internal/ir"
)

// buildEditable: entry -> branch -> {left, right} -> join -> exit, with a
// loop from join back to branch.
func buildEditable(t *testing.T) *ir.Proc {
	t.Helper()
	b := ir.NewBuilder("edit")
	p := b.NewProc("f", 0)
	entry := p.NewBlock()
	branch := p.NewBlock()
	left := p.NewBlock()
	right := p.NewBlock()
	join := p.NewBlock()
	exit := p.NewBlock()
	entry.MovI(2, 0)
	entry.Jmp(branch)
	branch.CmpLTI(3, 2, 10)
	branch.AndI(4, 2, 1)
	branch.Br(4, left, right)
	left.AddI(2, 2, 1)
	left.Jmp(join)
	right.AddI(2, 2, 2)
	right.Jmp(join)
	join.CmpLTI(3, 2, 10)
	join.Br(3, branch, exit)
	exit.Ret()
	b.SetMain(p)
	return b.MustFinish().Procs[0]
}

func TestSplitEntryRedirectsBackedges(t *testing.T) {
	p := buildEditable(t)
	// Manufacture a backedge into the entry: join also jumps to entry.
	p.Blocks[4].Succs[0] = 0
	ed := &editor{proc: p}
	moved := ed.splitEntry()
	if p.Blocks[0].Term().Op != ir.Jmp || p.Blocks[0].Succs[0] != moved {
		t.Fatal("entry is not a fresh jump block")
	}
	// The backedge must now target the moved body, not block 0.
	if p.Blocks[4].Succs[0] != moved {
		t.Fatalf("backedge still targets entry: %v", p.Blocks[4].Succs)
	}
	if err := ir.Validate(progOf(t, p)); err != nil {
		t.Fatal(err)
	}
}

// progOf wraps a single proc into a runnable program for validation.
func progOf(t *testing.T, p *ir.Proc) *ir.Program {
	t.Helper()
	return &ir.Program{Name: "t", Procs: []*ir.Proc{p}, Main: 0}
}

func TestInsertOnEdgeAppendsToSingleSuccessor(t *testing.T) {
	p := buildEditable(t)
	ed := &editor{proc: p}
	preds := ed.numPreds()
	nBlocks := len(p.Blocks)
	seq := []ir.Instr{{Op: ir.Nop}}
	// left (block 2) has a single successor: the sequence lands before its
	// terminator, no new block.
	ed.insertOnEdge(2, 0, preds, seq)
	if len(p.Blocks) != nBlocks {
		t.Fatal("single-successor edge should not split")
	}
	instrs := p.Blocks[2].Instrs
	if instrs[len(instrs)-2].Op != ir.Nop {
		t.Fatal("sequence not appended before terminator")
	}
}

func TestInsertOnEdgeSplitsCriticalEdge(t *testing.T) {
	p := buildEditable(t)
	ed := &editor{proc: p}
	preds := ed.numPreds()
	nBlocks := len(p.Blocks)
	// join(4) -> branch(1) is critical: join has 2 successors and branch
	// has 2 predecessors (entry and join).
	ed.insertOnEdge(4, 0, preds, []ir.Instr{{Op: ir.Nop}})
	if len(p.Blocks) != nBlocks+1 {
		t.Fatal("critical edge not split")
	}
	nb := p.Blocks[nBlocks]
	if p.Blocks[4].Succs[0] != nb.ID || nb.Succs[0] != 1 {
		t.Fatal("split block mis-wired")
	}
	if nb.Instrs[0].Op != ir.Nop || nb.Term().Op != ir.Jmp {
		t.Fatal("split block contents wrong")
	}
	if err := ir.Validate(progOf(t, p)); err != nil {
		t.Fatal(err)
	}
}

func TestInsertOnEdgePrependsAtSinglePredecessor(t *testing.T) {
	p := buildEditable(t)
	ed := &editor{proc: p}
	preds := ed.numPreds()
	nBlocks := len(p.Blocks)
	// branch(1) -> left(2): branch has 2 successors but left has a single
	// in-edge, so the sequence is prepended at left.
	ed.insertOnEdge(1, 0, preds, []ir.Instr{{Op: ir.Nop}})
	if len(p.Blocks) != nBlocks {
		t.Fatal("single-predecessor target should not split")
	}
	if p.Blocks[2].Instrs[0].Op != ir.Nop {
		t.Fatal("sequence not prepended at target")
	}
}

func TestFreeRegsExcludesUsedAndSP(t *testing.T) {
	p := buildEditable(t)
	free := freeRegs(p, 40)
	seen := map[ir.Reg]bool{}
	used := p.UsedRegs()
	for _, r := range free {
		if used[r] {
			t.Fatalf("register %v reported free but used", r)
		}
		if r == ir.RegSP {
			t.Fatal("stack pointer reported free")
		}
		if seen[r] {
			t.Fatal("duplicate free register")
		}
		seen[r] = true
	}
	if len(free) == 0 {
		t.Fatal("no free registers found")
	}
}
