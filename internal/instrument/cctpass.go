package instrument

import (
	"pathprof/internal/cfg"
	"pathprof/internal/ir"
)

// cctOnlyProc inserts calling-context instrumentation without path tracking
// (ModeContextHW and ModeContextProbesOnly): an enter probe in the
// procedure prologue, an exit probe before return, a call-site probe before
// every call (modelling the gCSP handoff), and — for context+HW with
// BackedgeCounterReads — a counter read along every loop backedge
// (Section 4.3 of the paper, which bounds 32-bit wrap exposure).
func (plan *Plan) cctOnlyProc(p *ir.Proc) error {
	pp := plan.Procs[p.ID]
	ed := &editor{proc: p}
	ed.splitEntry()
	pp.BaseBlocks = len(p.Blocks)

	rp, err := planRegs(p, 3)
	if err != nil {
		return err
	}
	pp.Spilled = rp.spill
	pp.Regs = rp.info()

	// Backedge counter reads must be planned against the CFG before other
	// edits (they are the only edge-targeted insertions in this mode).
	if plan.Mode == ModeContextHW && plan.Opts.BackedgeCounterReads {
		preds := ed.numPreds()
		for _, be := range cfg.Backedges(p) {
			sb := rp.seq()
			t := sb.scratch(0)
			sb.emit(ir.Instr{Op: ir.Probe, Imm: ProbeCCTTick, Rs: t, Rd: t})
			ed.insertOnEdge(be.From, be.Slot, preds, sb.finish())
		}
	}

	// Call-site probes.
	plan.insertCallProbes(ed, rp, nil)

	// Exit probe.
	exitSeq := rp.seq()
	t := exitSeq.scratch(0)
	exitSeq.emit(ir.Instr{Op: ir.Probe, Imm: ProbeCCTExit, Rs: t, Rd: t})
	seq := exitSeq.finish()
	if rp.spill {
		seq = append(seq,
			ir.Instr{Op: ir.Mov, Rd: ir.RegSP, Rs: rp.frame},
			ir.Instr{Op: ir.AddI, Rd: ir.RegSP, Rs: ir.RegSP, Imm: frameBytes},
		)
	}
	ed.insertBeforeTerm(p.ExitBlock, seq)

	// Entry probe.
	var entry []ir.Instr
	if rp.spill {
		entry = append(entry,
			ir.Instr{Op: ir.AddI, Rd: ir.RegSP, Rs: ir.RegSP, Imm: -frameBytes},
			ir.Instr{Op: ir.Mov, Rd: rp.frame, Rs: ir.RegSP},
		)
	}
	sb := rp.seq()
	te := sb.scratch(0)
	sb.emit(
		ir.Instr{Op: ir.MovI, Rd: te, Imm: int64(p.ID)},
		ir.Instr{Op: ir.Probe, Imm: ProbeCCTEnter, Rs: te, Rd: te},
	)
	entry = append(entry, sb.finish()...)
	ed.prependEntry(entry)
	return nil
}
