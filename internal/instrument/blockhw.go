package instrument

import (
	"pathprof/internal/ir"
)

// Block-level hardware metric profiling — the statement-level attribution
// the paper argues against in Section 6.4.3: it measures each basic block's
// counter delta separately, which costs a read-accumulate-restart sequence
// at every block. The paper: "collecting and reporting cache misses
// measurements at the statement level, in addition to being far more
// expensive than path profiling, does not alleviate this problem."
// ModeBlockHW exists to measure the "far more expensive" half of that
// sentence; the block-path multiplicity analysis covers the rest.

// blockHWProc instruments every block of p (after the entry split) with an
// accumulate-and-restart sequence before its terminator. Per-block
// accumulators live in simulated memory indexed by block ID; extraction
// reports them as pseudo-paths whose Sum is the block ID.
func (plan *Plan) blockHWProc(p *ir.Proc) error {
	pp := plan.Procs[p.ID]
	ed := &editor{proc: p}
	ed.splitEntry()
	pp.BaseBlocks = len(p.Blocks)

	nBlocks := int64(len(p.Blocks))
	pp.BlockCount = nBlocks
	pp.FreqBase = plan.alloc.Alloc(uint64(nBlocks)*8, 64)
	plan.allocAccBases(pp, nBlocks)

	rp, err := planRegs(p, 5+plan.numPairs())
	if err != nil {
		return err
	}
	rp.pairs = plan.numPairs()
	pp.Spilled = rp.spill
	pp.Regs = rp.info()

	for _, b := range p.Blocks {
		bid := int64(b.ID)
		sb := rp.seq()
		z := sb.zeroReg()
		pair := sb.pathRegNoLoad() // block mode has no path register; reuse it
		t0 := sb.scratch(0)
		t1 := sb.scratch(1)
		idx := sb.scratch(2)
		sb.emit(ir.Instr{Op: ir.MovI, Rd: idx, Imm: bid})
		for pr := 0; pr < rp.numPairs(); pr++ {
			hi, lo := 2*pr+1, 2*pr
			sb.emit(ir.Instr{Op: ir.RdPIC, Rd: pair, Imm: int64(pr)})
			if hi < plan.numCounters() {
				sb.emit(ir.Instr{Op: ir.ShrI, Rd: t0, Rs: pair, Imm: 32}) // high half
			}
			sb.emit(ir.Instr{Op: ir.AndI, Rd: pair, Rs: pair, Imm: 0xffffffff}) // low half
			if hi < plan.numCounters() {
				// acc[hi][b] += high half
				sb.emit(
					ir.Instr{Op: ir.LoadIdx, Rd: t1, Rs: z, Rt: idx, Imm: int64(pp.AccBases[hi])},
					ir.Instr{Op: ir.Add, Rd: t1, Rs: t1, Rt: t0},
					ir.Instr{Op: ir.StoreIdx, Rd: t1, Rs: z, Rt: idx, Imm: int64(pp.AccBases[hi])},
				)
			}
			// acc[lo][b] += low half
			sb.emit(
				ir.Instr{Op: ir.LoadIdx, Rd: t1, Rs: z, Rt: idx, Imm: int64(pp.AccBases[lo])},
				ir.Instr{Op: ir.Add, Rd: t1, Rs: t1, Rt: pair},
				ir.Instr{Op: ir.StoreIdx, Rd: t1, Rs: z, Rt: idx, Imm: int64(pp.AccBases[lo])},
			)
		}
		sb.emit(
			// freq[b]++
			ir.Instr{Op: ir.LoadIdx, Rd: t1, Rs: z, Rt: idx, Imm: int64(pp.FreqBase)},
			ir.Instr{Op: ir.AddI, Rd: t1, Rs: t1, Imm: 1},
			ir.Instr{Op: ir.StoreIdx, Rd: t1, Rs: z, Rt: idx, Imm: int64(pp.FreqBase)},
		)
		// Restart for the next block.
		for pr := 0; pr < rp.numPairs(); pr++ {
			sb.emit(ir.Instr{Op: ir.WrPIC, Rs: z, Imm: int64(pr)})
		}
		if plan.Opts.ReadAfterWrite {
			sb.emit(ir.Instr{Op: ir.RdPIC, Rd: t0, Imm: int64(rp.numPairs() - 1)})
		}
		ed.insertBeforeTerm(b.ID, sb.finish())
	}

	// Procedure entry: save the caller's counters and zero; exit: restore
	// (placed after the exit block's accumulate, still before Ret).
	entrySeq := rp.seq()
	if !rp.spill {
		entrySeq.emit(ir.Instr{Op: ir.MovI, Rd: rp.zero, Imm: 0})
	}
	plan.emitCounterSave(entrySeq, rp)
	plan.emitCounterZero(entrySeq, rp)
	entry := entrySeq.finish()
	if rp.spill {
		entry = append([]ir.Instr{
			{Op: ir.AddI, Rd: ir.RegSP, Rs: ir.RegSP, Imm: -rp.frameSize()},
			{Op: ir.Mov, Rd: rp.frame, Rs: ir.RegSP},
		}, entry...)
	}
	ed.prependEntry(entry)

	exitSeq := rp.seq()
	plan.emitCounterRestore(exitSeq, rp)
	seq := exitSeq.finish()
	if rp.spill {
		seq = append(seq,
			ir.Instr{Op: ir.Mov, Rd: ir.RegSP, Rs: rp.frame},
			ir.Instr{Op: ir.AddI, Rd: ir.RegSP, Rs: ir.RegSP, Imm: rp.frameSize()},
		)
	}
	ed.insertBeforeTerm(p.ExitBlock, seq)
	return nil
}
