package instrument_test

import (
	"fmt"

	"pathprof/internal/hpm"
	"pathprof/internal/instrument"
	"pathprof/internal/ir"
	"pathprof/internal/mem"
	"pathprof/internal/sim"
)

// Example instruments a two-path kernel for flow sensitive profiling of
// hardware metrics and prints the per-path profile — the complete pipeline
// in one place: build, instrument, wire, run, extract.
func Example() {
	// kernel: if arg is odd, touch memory; always returns.
	b := ir.NewBuilder("example")
	kernel := b.NewProc("kernel", 1)
	e := kernel.NewBlock()
	odd := kernel.NewBlock()
	even := kernel.NewBlock()
	x := kernel.NewBlock()
	e.AndI(2, 1, 1)
	e.Br(2, odd, even)
	odd.AndI(3, 1, 63)
	odd.MovI(4, 0)
	odd.LoadIdx(5, 4, 3, int64(mem.GlobalBase))
	odd.Jmp(x)
	even.MulI(5, 1, 3)
	even.Jmp(x)
	x.Mov(1, 5)
	x.Ret()

	main := b.NewProc("main", 0)
	me := main.NewBlock()
	h := main.NewBlock()
	body := main.NewBlock()
	done := main.NewBlock()
	me.MovI(2, 0)
	me.Jmp(h)
	h.CmpLTI(3, 2, 100)
	h.Br(3, body, done)
	body.Mov(1, 2)
	body.Call(kernel)
	body.AddI(2, 2, 1)
	body.Jmp(h)
	done.Halt()
	b.SetMain(main)
	prog := b.MustFinish()

	plan, err := instrument.Instrument(prog, instrument.DefaultOptions(instrument.ModePathHW))
	if err != nil {
		panic(err)
	}
	m := sim.New(plan.Prog, sim.DefaultConfig())
	m.PMU().Select(hpm.EvDCacheMiss, hpm.EvInsts)
	rt := plan.Wire(m)
	if _, err := m.Run(); err != nil {
		panic(err)
	}

	prof := rt.ExtractProfile()
	kp := prof.Proc(kernel.ID())
	fmt.Printf("kernel: %d potential paths, %d executed\n", kp.NumPaths, kp.Executed())
	for _, e := range kp.Entries {
		path, _ := plan.Procs[kernel.ID()].Numbering.Regenerate(e.Sum)
		fmt.Printf("path %d (%v): %d runs\n", e.Sum, path, e.Freq)
	}
	// Output:
	// kernel: 2 potential paths, 2 executed
	// path 0 (b0 b4 b1 b3): 50 runs
	// path 1 (b0 b4 b2 b3): 50 runs
}
