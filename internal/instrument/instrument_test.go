package instrument

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pathprof/internal/bl"
	"pathprof/internal/cct"
	"pathprof/internal/cfg"
	"pathprof/internal/hpm"
	"pathprof/internal/ir"
	"pathprof/internal/sim"
	"pathprof/internal/testgen"
)

func randomProgram(seed int64) *ir.Program {
	rng := rand.New(rand.NewSource(seed))
	return testgen.RandomProgram(rng, "p", testgen.ProgramOptions{
		NumProcs:      int(rng.Intn(6) + 3),
		BlocksPer:     5,
		Recursion:     seed%2 == 0,
		IndirectCalls: seed%3 == 0,
		Memory:        true,
	})
}

func runProgram(t *testing.T, prog *ir.Program, plan *Plan) (sim.Result, *Runtime) {
	t.Helper()
	m := sim.New(prog, sim.DefaultConfig())
	m.PMU().Select(hpm.EvDCacheMiss, hpm.EvInsts)
	var rt *Runtime
	if plan != nil {
		rt = plan.Wire(m)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, rt
}

// TestSemanticsPreserved: instrumented programs produce the same output as
// the original, in every mode.
func TestSemanticsPreserved(t *testing.T) {
	modes := []Mode{ModeEdgeCount, ModePathFreq, ModePathHW, ModeContextHW, ModeContextFlow, ModeContextProbesOnly}
	check := func(seed int64) bool {
		prog := randomProgram(seed)
		base, _ := runProgram(t, prog, nil)
		for _, mode := range modes {
			plan, err := Instrument(prog, DefaultOptions(mode))
			if err != nil {
				t.Logf("seed %d mode %v: %v", seed, mode, err)
				return false
			}
			res, _ := runProgram(t, plan.Prog, plan)
			if !reflect.DeepEqual(base.Output, res.Output) {
				t.Logf("seed %d mode %v: output diverged (%d vs %d values)", seed, mode, len(base.Output), len(res.Output))
				return false
			}
			if res.Instrs <= base.Instrs && mode != ModeNone {
				t.Logf("seed %d mode %v: instrumentation added no instructions", seed, mode)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// pathOracle derives the ground-truth path profile from the control-flow
// trace of the instrumented program, using the plan's numbering directly.
type pathOracle struct {
	plan   *Plan
	stack  []oframe
	counts []map[int64]uint64 // per proc: path sum -> executions
}

type oframe struct {
	proc int
	r    int64
}

func newPathOracle(plan *Plan) *pathOracle {
	o := &pathOracle{plan: plan}
	o.counts = make([]map[int64]uint64, len(plan.Procs))
	for i := range o.counts {
		o.counts[i] = map[int64]uint64{}
	}
	return o
}

func (o *pathOracle) Enter(proc int) {
	o.stack = append(o.stack, oframe{proc: proc})
}

func (o *pathOracle) Exit(proc int) {
	top := o.stack[len(o.stack)-1]
	if nm := o.plan.Procs[top.proc].Numbering; nm != nil {
		o.counts[top.proc][top.r]++
	}
	o.stack = o.stack[:len(o.stack)-1]
}

func (o *pathOracle) Edge(proc int, from ir.BlockID, slot int) {
	top := &o.stack[len(o.stack)-1]
	nm := o.plan.Procs[proc].Numbering
	if nm == nil || int(from) >= len(nm.Succs) {
		return // inserted split block, or mode without numbering
	}
	// The oracle works in numbering space (nm.BEnd/BStart raw values),
	// independent of which increment placement the instrumentation used —
	// optimized increments compute the same final sums.
	for i, be := range nm.Backedges {
		if be.From == from && be.Slot == slot {
			o.counts[proc][top.r+nm.BEnd[i]]++
			top.r = nm.BStart[i]
			return
		}
	}
	for _, te := range nm.Succs[from] {
		if te.Kind == bl.Real && te.Slot == slot {
			top.r += te.Val
			return
		}
	}
}

// flush counts the final path of the still-active activation: main ends in
// Halt rather than Ret, so no Exit event fires for it, yet its exit-block
// instrumentation does run.
func (o *pathOracle) flush() {
	if len(o.stack) == 0 {
		return
	}
	top := o.stack[len(o.stack)-1]
	if nm := o.plan.Procs[top.proc].Numbering; nm != nil {
		o.counts[top.proc][top.r]++
	}
}

func (o *pathOracle) profileOf(proc int) map[int64]uint64 { return o.counts[proc] }

func checkProfileMatchesOracle(t *testing.T, seed int64, opts Options) {
	t.Helper()
	prog := randomProgram(seed)
	plan, err := Instrument(prog, opts)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	m := sim.New(plan.Prog, sim.DefaultConfig())
	m.PMU().Select(hpm.EvDCacheMiss, hpm.EvInsts)
	rt := plan.Wire(m)
	oracle := newPathOracle(plan)
	m.SetTracer(oracle)
	m.OnUnwind(func(d int) { oracle.stack = oracle.stack[:d] })
	if _, err := m.Run(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	oracle.flush()
	prof := rt.ExtractProfile()
	for _, pp := range plan.Procs {
		if pp.Numbering == nil {
			continue
		}
		want := oracle.profileOf(pp.ProcID)
		got := map[int64]uint64{}
		if p := prof.Proc(pp.ProcID); p != nil {
			for _, e := range p.Entries {
				got[e.Sum] = e.Freq
			}
		}
		if !reflect.DeepEqual(mapNonZero(want), mapNonZero(got)) {
			t.Errorf("seed %d proc %s (hash=%v): profile mismatch\n want %v\n got  %v",
				seed, pp.Name, pp.UseHash, mapNonZero(want), mapNonZero(got))
		}
	}
}

func mapNonZero(m map[int64]uint64) map[int64]uint64 {
	out := map[int64]uint64{}
	for k, v := range m {
		if v != 0 {
			out[k] = v
		}
	}
	return out
}

// TestPathFreqMatchesOracle: dense-array counters, optimized increments.
func TestPathFreqMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		checkProfileMatchesOracle(t, seed, DefaultOptions(ModePathFreq))
	}
}

// TestPathFreqBasicIncrements: the unoptimized placement agrees too.
func TestPathFreqBasicIncrements(t *testing.T) {
	opts := DefaultOptions(ModePathFreq)
	opts.OptimizeIncrements = false
	for seed := int64(1); seed <= 8; seed++ {
		checkProfileMatchesOracle(t, seed, opts)
	}
}

// TestPathFreqHashTables: forcing a tiny hash threshold exercises the
// hash-table path counters.
func TestPathFreqHashTables(t *testing.T) {
	opts := DefaultOptions(ModePathFreq)
	opts.HashPathThreshold = 2
	for seed := int64(1); seed <= 8; seed++ {
		checkProfileMatchesOracle(t, seed, opts)
	}
}

// TestPathHWMatchesOracle: the HW variant counts frequencies identically.
func TestPathHWMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		checkProfileMatchesOracle(t, seed, DefaultOptions(ModePathHW))
	}
}

// TestContextFlowMatchesOracle: summing per-record path tables over the CCT
// reproduces the flow-sensitive profile.
func TestContextFlowMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		checkProfileMatchesOracle(t, seed, DefaultOptions(ModeContextFlow))
	}
}

// TestPathHWMetricsBounded: per-path metric accumulators stay within the
// run's totals (they measure sub-intervals of it).
func TestPathHWMetricsBounded(t *testing.T) {
	prog := randomProgram(5)
	plan, err := Instrument(prog, DefaultOptions(ModePathHW))
	if err != nil {
		t.Fatal(err)
	}
	res, rt := runProgram(t, plan.Prog, plan)
	prof := rt.ExtractProfile()
	_, ms := prof.Totals()
	m0, m1 := ms[0], ms[1]
	if m1 == 0 {
		t.Fatal("no instructions attributed to any path")
	}
	if m0 > res.Totals[hpm.EvDCacheMiss] {
		t.Fatalf("paths claim %d D-misses, run had %d", m0, res.Totals[hpm.EvDCacheMiss])
	}
	if m1 > res.Totals[hpm.EvInsts] {
		t.Fatalf("paths claim %d insts, run had %d", m1, res.Totals[hpm.EvInsts])
	}
	// Most instructions should be attributed to paths (the remainder is
	// instrumentation outside measured intervals).
	if m1 < res.Totals[hpm.EvInsts]/3 {
		t.Fatalf("only %d of %d instructions attributed to paths", m1, res.Totals[hpm.EvInsts])
	}
}

// TestPathHWWideBank: a four-counter plan on a four-counter machine keeps
// the program's semantics, extracts four named metric columns, and bounds
// each column by the run's shadow totals for its event — the N-counter
// generalization of TestPathHWMetricsBounded.
func TestPathHWWideBank(t *testing.T) {
	events := []hpm.Event{hpm.EvDCacheMiss, hpm.EvInsts, hpm.EvLoads, hpm.EvBranches}
	for seed := int64(1); seed <= 6; seed++ {
		prog := randomProgram(seed)
		base, _ := runProgram(t, prog, nil)

		opts := DefaultOptions(ModePathHW)
		opts.NumCounters = 4
		plan, err := Instrument(prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.DefaultConfig()
		cfg.NumCounters = 4
		m := sim.New(plan.Prog, cfg)
		m.PMU().SelectAll(events)
		rt := plan.Wire(m)
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Output, res.Output) {
			t.Fatalf("seed %d: output diverged under a 4-counter plan", seed)
		}

		prof := rt.ExtractProfile()
		if prof.NumMetrics() != 4 {
			t.Fatalf("seed %d: %d metric columns, want 4 (%v)", seed, prof.NumMetrics(), prof.Events)
		}
		for k, ev := range events {
			if prof.Events[k] != ev.String() {
				t.Fatalf("seed %d: slot %d named %q, want %q", seed, k, prof.Events[k], ev)
			}
		}
		// Every slot measures sub-intervals of the run, so no column may
		// exceed the machine's 64-bit shadow total for its event (which
		// also proves the 32-bit save/restore arithmetic never went
		// backwards across wraps).
		_, ms := prof.Totals()
		for k, ev := range events {
			if ms[k] > res.Totals[ev] {
				t.Fatalf("seed %d: paths claim %d %v, run had %d", seed, ms[k], ev, res.Totals[ev])
			}
		}
		if ms[1] < res.Totals[hpm.EvInsts]/3 {
			t.Fatalf("seed %d: only %d of %d instructions attributed to paths", seed, ms[1], res.Totals[hpm.EvInsts])
		}
	}
}

// TestPathHWExactOnStraightLine: a single-path procedure's per-path
// instruction metric is exactly the instructions inside the measured
// interval, run after run.
func TestPathHWExactOnStraightLine(t *testing.T) {
	b := ir.NewBuilder("straight")
	callee := b.NewProc("work", 1)
	ce := callee.NewBlock()
	ce.AddI(1, 1, 1)
	ce.MulI(1, 1, 3)
	ce.AddI(1, 1, -2)
	ce.Ret()

	main := b.NewProc("main", 0)
	e := main.NewBlock()
	h := main.NewBlock()
	body := main.NewBlock()
	x := main.NewBlock()
	e.MovI(2, 0)
	e.Jmp(h)
	h.CmpLTI(3, 2, 50)
	h.Br(3, body, x)
	body.MovI(1, 7)
	body.Call(callee)
	body.AddI(2, 2, 1)
	body.Jmp(h)
	x.Halt()
	b.SetMain(main)
	prog := b.MustFinish()

	plan, err := Instrument(prog, DefaultOptions(ModePathHW))
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(plan.Prog, sim.DefaultConfig())
	m.PMU().Select(hpm.EvDCacheMiss, hpm.EvInsts)
	rt := plan.Wire(m)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	prof := rt.ExtractProfile()
	pw := prof.Proc(0) // work
	if pw == nil || len(pw.Entries) != 1 {
		t.Fatalf("work should have exactly one executed path, got %+v", pw)
	}
	ent := pw.Entries[0]
	if ent.Freq != 50 {
		t.Fatalf("work path freq = %d, want 50", ent.Freq)
	}
	if ent.Metric(1)%ent.Freq != 0 {
		t.Fatalf("per-execution instruction count not constant: %d/%d", ent.Metric(1), ent.Freq)
	}
	per := ent.Metric(1) / ent.Freq
	// The measured interval covers the callee's own body plus the
	// instrumentation between the zeroing read and the path-end read.
	if per < 3 || per > 30 {
		t.Fatalf("instructions per execution = %d, want a small constant", per)
	}
}

// TestEdgeDecodeMatchesOracle: chord counters plus flow conservation
// reproduce exact edge counts.
func TestEdgeDecodeMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		prog := randomProgram(seed)
		plan, err := Instrument(prog, DefaultOptions(ModeEdgeCount))
		if err != nil {
			t.Fatal(err)
		}
		m := sim.New(plan.Prog, sim.DefaultConfig())
		oracle := &edgeOracle{counts: map[edgeKey]int64{}}
		m.SetTracer(oracle)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		for _, pp := range plan.Procs {
			got, _, err := DecodeEdgeCounts(pp, m.Mem())
			if err != nil {
				t.Fatalf("seed %d proc %s: %v", seed, pp.Name, err)
			}
			for e, c := range got {
				want := oracle.counts[edgeKey{pp.ProcID, e.From, e.Slot}]
				if c != want {
					t.Errorf("seed %d proc %s edge %v: decoded %d, oracle %d", seed, pp.Name, e, c, want)
				}
			}
		}
	}
}

type edgeKey struct {
	proc int
	from ir.BlockID
	slot int
}

type edgeOracle struct{ counts map[edgeKey]int64 }

func (o *edgeOracle) Edge(proc int, from ir.BlockID, slot int) {
	o.counts[edgeKey{proc, from, slot}]++
}
func (o *edgeOracle) Enter(int) {}
func (o *edgeOracle) Exit(int)  {}

// TestCCTInvariantsUnderInstrumentation: the runtime-built CCT validates,
// respects the depth bound, and its invocation metrics match the machine's
// call count.
func TestCCTInvariantsUnderInstrumentation(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		prog := randomProgram(seed)
		plan, err := Instrument(prog, DefaultOptions(ModeContextHW))
		if err != nil {
			t.Fatal(err)
		}
		res, rt := runProgram(t, plan.Prog, plan)
		if err := rt.Tree.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		total := int64(0)
		rt.Tree.Walk(func(n *cct.Node) { total += n.Metrics[0] })
		invocations := uint64(total)
		if want := res.Totals[hpm.EvCalls] + 1; invocations != want {
			t.Fatalf("seed %d: CCT records %d invocations, machine made %d", seed, invocations, want)
		}
	}
}

// TestSpillModeInstrumentation: a register-starved procedure forces spill
// mode and still profiles correctly.
func TestSpillModeInstrumentation(t *testing.T) {
	b := ir.NewBuilder("pressure")
	hot := b.NewProc("hot", 1)
	e := hot.NewBlock()
	thenB := hot.NewBlock()
	elseB := hot.NewBlock()
	x := hot.NewBlock()
	// Use every register except r29 (one free register → spill mode).
	for r := ir.Reg(0); r < ir.NumRegs; r++ {
		if r == ir.RegSP || r == 29 || r == 1 {
			continue // r1 carries the live argument
		}
		e.MovI(r, int64(r))
	}
	e.AndI(2, 1, 1)
	e.Br(2, thenB, elseB)
	thenB.AddI(1, 1, 5)
	thenB.Jmp(x)
	elseB.MulI(1, 1, 3)
	elseB.Jmp(x)
	x.Ret()

	main := b.NewProc("main", 0)
	me := main.NewBlock()
	h := main.NewBlock()
	body := main.NewBlock()
	done := main.NewBlock()
	me.MovI(2, 0)
	me.Jmp(h)
	h.CmpLTI(3, 2, 20)
	h.Br(3, body, done)
	body.Mov(1, 2)
	body.Call(hot)
	body.Out(1)
	body.AddI(2, 2, 1)
	body.Jmp(h)
	done.Halt()
	b.SetMain(main)
	prog := b.MustFinish()

	base, _ := runProgram(t, prog, nil)
	for _, mode := range []Mode{ModePathFreq, ModePathHW} {
		plan, err := Instrument(prog, DefaultOptions(mode))
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Procs[0].Spilled {
			t.Fatalf("mode %v: register-starved proc not in spill mode", mode)
		}
		res, rt := runProgram(t, plan.Prog, plan)
		if !reflect.DeepEqual(base.Output, res.Output) {
			t.Fatalf("mode %v: spill-mode instrumentation changed semantics", mode)
		}
		prof := rt.ExtractProfile()
		pw := prof.Proc(0)
		freq, _ := pw.Totals()
		if freq != 20 {
			t.Fatalf("mode %v: hot executed paths %d times, want 20", mode, freq)
		}
		if len(pw.Entries) != 2 {
			t.Fatalf("mode %v: want both branch paths, got %d", mode, len(pw.Entries))
		}
	}
}

// TestInstrumentedProgramValid: every mode yields a Validate-clean program.
func TestInstrumentedProgramValid(t *testing.T) {
	prog := randomProgram(9)
	for _, mode := range []Mode{ModeEdgeCount, ModePathFreq, ModePathHW, ModeContextHW, ModeContextFlow} {
		plan, err := Instrument(prog, DefaultOptions(mode))
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if err := ir.Validate(plan.Prog); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if ir.Validate(plan.Orig) != nil {
			t.Fatalf("mode %v: original program mutated", mode)
		}
	}
}

// TestOriginalUntouched: instrumenting must not mutate the input program.
func TestOriginalUntouched(t *testing.T) {
	prog := randomProgram(11)
	before := prog.String()
	if _, err := Instrument(prog, DefaultOptions(ModePathHW)); err != nil {
		t.Fatal(err)
	}
	if prog.String() != before {
		t.Fatal("Instrument mutated its input")
	}
}

// TestBackedgesPreservedByEntrySplit: the entry split redirects backedges
// into the moved body, keeping loop structure intact.
func TestBackedgesPreservedByEntrySplit(t *testing.T) {
	b := ir.NewBuilder("eb")
	p := b.NewProc("f", 0)
	e := p.NewBlock()
	body := p.NewBlock()
	x := p.NewBlock()
	e.MovI(2, 0)
	e.Jmp(body)
	body.AddI(2, 2, 1)
	body.CmpLTI(3, 2, 4)
	body.Br(3, body, x)
	x.Ret()
	b.SetMain(p)
	prog := b.MustFinish()
	plan, err := Instrument(prog, DefaultOptions(ModePathFreq))
	if err != nil {
		t.Fatal(err)
	}
	nm := plan.Procs[0].Numbering
	if len(nm.Backedges) != 1 {
		t.Fatalf("backedges after split = %d, want 1", len(nm.Backedges))
	}
	if len(cfg.Edges(plan.Prog.Procs[0])) == 0 {
		t.Fatal("no edges")
	}
}

// TestProfileGuidedPlacement: the two-pass workflow — edge-profile once,
// feed measured frequencies into the spanning-tree weights — keeps profiles
// exact and does not cost more dynamic increments than the static
// loop-depth heuristic.
func TestProfileGuidedPlacement(t *testing.T) {
	prog := randomProgram(21)

	// One edge-profiled run to obtain measured frequencies (the package's
	// public acquisition entry point lives in internal/pgo, which cannot be
	// imported from here; this inlines the same ModeEdgeCount run+decode).
	edgePlan, err := Instrument(prog, DefaultOptions(ModeEdgeCount))
	if err != nil {
		t.Fatal(err)
	}
	em := sim.New(edgePlan.Prog, sim.DefaultConfig())
	edgePlan.Wire(em)
	if _, err := em.Run(); err != nil {
		t.Fatal(err)
	}
	freqs := make([]EdgeFreqs, len(edgePlan.Procs))
	for _, pp := range edgePlan.Procs {
		counts, _, err := DecodeEdgeCounts(pp, em.Mem())
		if err != nil {
			t.Fatal(err)
		}
		freqs[pp.ProcID] = EdgeFreqs(counts)
	}
	nonzero := 0
	for _, ef := range freqs {
		for _, c := range ef {
			if c > 0 {
				nonzero++
			}
		}
	}
	if nonzero == 0 {
		t.Fatal("edge profile collected no counts")
	}

	measure := func(opts Options) (uint64, *Plan, *Runtime) {
		plan, err := Instrument(prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		m := sim.New(plan.Prog, sim.DefaultConfig())
		m.PMU().Select(hpm.EvDCacheMiss, hpm.EvInsts)
		rt := plan.Wire(m)
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Instrs, plan, rt
	}

	staticInstrs, _, _ := measure(DefaultOptions(ModePathFreq))

	pgoOpts := DefaultOptions(ModePathFreq)
	pgoOpts.ProfiledFreqs = freqs
	pgoInstrs, pgoPlan, pgoRT := measure(pgoOpts)

	// Correctness: the PGO-placed instrumentation still produces the exact
	// oracle profile.
	m := sim.New(pgoPlan.Prog, sim.DefaultConfig())
	m.PMU().Select(hpm.EvDCacheMiss, hpm.EvInsts)
	rt2 := pgoPlan.Wire(m)
	oracle := newPathOracle(pgoPlan)
	m.SetTracer(oracle)
	m.OnUnwind(func(d int) { oracle.stack = oracle.stack[:d] })
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	oracle.flush()
	prof := rt2.ExtractProfile()
	for _, pp := range pgoPlan.Procs {
		if pp.Numbering == nil {
			continue
		}
		got := map[int64]uint64{}
		if p := prof.Proc(pp.ProcID); p != nil {
			for _, e := range p.Entries {
				got[e.Sum] = e.Freq
			}
		}
		if !reflect.DeepEqual(mapNonZero(oracle.profileOf(pp.ProcID)), mapNonZero(got)) {
			t.Errorf("proc %s: PGO-placed profile diverges from oracle", pp.Name)
		}
	}
	_ = pgoRT

	// Economy: by max-spanning-tree optimality, the measured-frequency
	// placement must not execute more weighted chord increments than the
	// static heuristic (evaluated against the same measured frequencies).
	// Total dynamic instructions can differ slightly either way because
	// critical-edge splits add jumps the objective does not see.
	staticPlan, err := Instrument(prog, DefaultOptions(ModePathFreq))
	if err != nil {
		t.Fatal(err)
	}
	weighted := func(plan *Plan) int64 {
		var sum int64
		for _, pp := range plan.Procs {
			if pp.Inc == nil || pp.Numbering == nil {
				continue
			}
			ef := freqs[pp.ProcID]
			for ref := range pp.Inc.Real {
				te := pp.Numbering.Succs[ref.Block][ref.Pos]
				e := cfg.Edge{From: ir.BlockID(ref.Block), To: te.To, Slot: te.Slot}
				sum += ef[e]
			}
		}
		return sum
	}
	staticCost := weighted(staticPlan)
	pgoCost := weighted(pgoPlan)
	if pgoCost > staticCost {
		t.Errorf("PGO chord cost %d exceeds static heuristic %d", pgoCost, staticCost)
	}
	t.Logf("weighted chord executions: static %d, pgo %d; dynamic instrs: static %d, pgo %d",
		staticCost, pgoCost, staticInstrs, pgoInstrs)
}

// TestSemanticsPreservedWithLongjmp: programs that recover via non-local
// returns keep identical outputs under every instrumentation mode, and the
// CCT stays valid through the unwinds.
func TestSemanticsPreservedWithLongjmp(t *testing.T) {
	modes := []Mode{ModePathFreq, ModePathHW, ModeContextHW, ModeContextFlow}
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := testgen.RandomProgram(rng, "nl", testgen.ProgramOptions{
			NumProcs: 6, BlocksPer: 4, Recursion: seed%2 == 0,
			IndirectCalls: true, Memory: true, NonLocal: true,
		})
		m0 := sim.New(prog, sim.DefaultConfig())
		base, err := m0.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The generator must actually exercise recovery on some seeds; the
		// final output word counts recoveries.
		recoveries := base.Output[len(base.Output)-1]
		for _, mode := range modes {
			plan, err := Instrument(prog, DefaultOptions(mode))
			if err != nil {
				t.Fatalf("seed %d mode %v: %v", seed, mode, err)
			}
			m := sim.New(plan.Prog, sim.DefaultConfig())
			m.PMU().Select(hpm.EvDCacheMiss, hpm.EvInsts)
			rt := plan.Wire(m)
			res, err := m.Run()
			if err != nil {
				t.Fatalf("seed %d mode %v: %v", seed, mode, err)
			}
			if !reflect.DeepEqual(base.Output, res.Output) {
				t.Fatalf("seed %d mode %v: semantics diverged (recoveries=%d)", seed, mode, recoveries)
			}
			if rt.Tree != nil {
				if err := rt.Tree.Validate(); err != nil {
					t.Fatalf("seed %d mode %v: CCT invalid after unwinds: %v", seed, mode, err)
				}
			}
		}
	}
}

// TestLongjmpActuallyHappens guards the generator: across the seeds used
// above, at least some runs recover via longjmp.
func TestLongjmpActuallyHappens(t *testing.T) {
	total := int64(0)
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := testgen.RandomProgram(rng, "nl", testgen.ProgramOptions{
			NumProcs: 6, BlocksPer: 4, Recursion: seed%2 == 0,
			IndirectCalls: true, Memory: true, NonLocal: true,
		})
		m := sim.New(prog, sim.DefaultConfig())
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		total += res.Output[len(res.Output)-1]
	}
	if total == 0 {
		t.Fatal("no seed produced a longjmp recovery; the property is untested")
	}
}

// TestBlockHWMode: statement-level profiling preserves semantics, its
// per-block metrics bound the run totals, and — the paper's point — it
// costs more than path profiling on branchy code.
func TestBlockHWMode(t *testing.T) {
	prog := randomProgram(6)
	m0 := sim.New(prog, sim.DefaultConfig())
	base, err := m0.Run()
	if err != nil {
		t.Fatal(err)
	}

	plan, err := Instrument(prog, DefaultOptions(ModeBlockHW))
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(plan.Prog, sim.DefaultConfig())
	m.PMU().Select(hpm.EvDCacheMiss, hpm.EvInsts)
	rt := plan.Wire(m)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Output, res.Output) {
		t.Fatal("block instrumentation changed semantics")
	}

	prof := rt.ExtractProfile()
	_, msums := prof.Totals()
	m0sum, m1sum := msums[0], msums[1]
	if m1sum == 0 {
		t.Fatal("no per-block instructions recorded")
	}
	if m0sum > res.Totals[hpm.EvDCacheMiss] || m1sum > res.Totals[hpm.EvInsts] {
		t.Fatalf("block metrics exceed run totals: %d/%d vs %d/%d",
			m0sum, m1sum, res.Totals[hpm.EvDCacheMiss], res.Totals[hpm.EvInsts])
	}

	// Every emitted entry must be a genuinely executed block.
	for _, pp := range prof.Procs {
		for _, e := range pp.Entries {
			if e.Freq == 0 {
				t.Fatalf("zero-frequency entry emitted: %+v", e)
			}
			if e.Sum < 0 || e.Sum >= pp.NumPaths {
				t.Fatalf("block id %d out of range [0,%d)", e.Sum, pp.NumPaths)
			}
		}
	}

	// Overhead comparison: block-level must cost more cycles than
	// path-level on the same program.
	pathPlan, err := Instrument(prog, DefaultOptions(ModePathHW))
	if err != nil {
		t.Fatal(err)
	}
	mp := sim.New(pathPlan.Prog, sim.DefaultConfig())
	mp.PMU().Select(hpm.EvDCacheMiss, hpm.EvInsts)
	pathPlan.Wire(mp)
	resPath, err := mp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= resPath.Cycles {
		t.Fatalf("block-level profiling (%d cycles) not more expensive than path-level (%d)",
			res.Cycles, resPath.Cycles)
	}
}

// TestCCTShapeIndependentOfIncrementPlacement: calling contexts must not
// depend on how path increments are placed. With chord-optimized
// increments the path register can be negative at a call site; a packing
// bug there would corrupt site indices and change the tree shape. The tree
// built under optimized increments must match the one built under canonical
// increments exactly.
func TestCCTShapeIndependentOfIncrementPlacement(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		prog := randomProgram(seed)
		shape := func(optimize bool) (int, map[int]int64, int) {
			opts := DefaultOptions(ModeContextFlow)
			opts.OptimizeIncrements = optimize
			plan, err := Instrument(prog, opts)
			if err != nil {
				t.Fatal(err)
			}
			m := sim.New(plan.Prog, sim.DefaultConfig())
			m.PMU().Select(hpm.EvDCacheMiss, hpm.EvInsts)
			rt := plan.Wire(m)
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if err := rt.Tree.Validate(); err != nil {
				t.Fatalf("seed %d optimize=%v: %v", seed, optimize, err)
			}
			invocations := map[int]int64{}
			rt.Tree.Walk(func(n *cct.Node) { invocations[n.Proc] += n.Metrics[0] })
			st := rt.Tree.ComputeStats()
			return rt.Tree.NumNodes(), invocations, st.CallSitesUsed
		}
		optNodes, optInv, optUsed := shape(true)
		basicNodes, basicInv, basicUsed := shape(false)
		if optNodes != basicNodes {
			t.Fatalf("seed %d: node counts differ: optimized %d, canonical %d", seed, optNodes, basicNodes)
		}
		if optUsed != basicUsed {
			t.Fatalf("seed %d: used sites differ: %d vs %d", seed, optUsed, basicUsed)
		}
		if !reflect.DeepEqual(optInv, basicInv) {
			t.Fatalf("seed %d: invocation counts differ:\n optimized %v\n canonical %v", seed, optInv, basicInv)
		}
	}
}

// TestPackSitePathNegativePrefixes: round-trip through the packed probe
// argument for the full prefix range, including negatives.
func TestPackSitePathNegativePrefixes(t *testing.T) {
	for _, site := range []int{0, 1, 7, 1 << 19} {
		for _, prefix := range []int64{noPrefix, -maxPackedPaths, -1, 0, 1, maxPackedPaths} {
			gotSite, gotPrefix := UnpackSitePath(packSitePath(site, prefix))
			if gotSite != site || gotPrefix != prefix {
				t.Fatalf("pack(%d,%d) -> (%d,%d)", site, prefix, gotSite, gotPrefix)
			}
		}
	}
}
