package instrument

import (
	"fmt"

	"pathprof/internal/bl"
	"pathprof/internal/cfg"
	"pathprof/internal/ir"
)

// profiledFreqHint converts measured edge counts into a spanning-tree
// weight function for the numbering's transformed edges. Pseudo edges take
// their backedge's measured count. A +1 floor keeps never-executed edges
// comparable.
func profiledFreqHint(freqs EdgeFreqs, nm *bl.Numbering) func(bl.SuccRef) int64 {
	return func(ref bl.SuccRef) int64 {
		te := nm.Succs[ref.Block][ref.Pos]
		var e cfg.Edge
		switch te.Kind {
		case bl.Real:
			e = cfg.Edge{From: ir.BlockID(ref.Block), To: te.To, Slot: te.Slot}
		default:
			e = nm.Backedges[te.Backedge]
		}
		return freqs[e] + 1
	}
}

// pathProc inserts Ball-Larus path instrumentation into p, in one of three
// flavours: frequency only (ModePathFreq), hardware metrics per path
// (ModePathHW, Figure 3 of the paper), or per-context path frequency
// (ModeContextFlow, where the counter update targets the current CCT
// record).
func (plan *Plan) pathProc(p *ir.Proc) error {
	pp := plan.Procs[p.ID]
	mode := plan.Mode
	opts := plan.Opts

	ed := &editor{proc: p}
	ed.splitEntry()
	pp.BaseBlocks = len(p.Blocks)

	nm, err := bl.New(p)
	if err != nil {
		return err
	}
	pp.Numbering = nm

	var inc *bl.Increments
	if opts.OptimizeIncrements {
		hint := loopDepthFreqHint(p, nm)
		if opts.ProfiledFreqs != nil && p.ID < len(opts.ProfiledFreqs) && opts.ProfiledFreqs[p.ID] != nil {
			hint = profiledFreqHint(opts.ProfiledFreqs[p.ID], nm)
		}
		inc, err = nm.Optimize(hint)
		if err != nil {
			return err
		}
		if nm.NumPaths <= 1<<12 {
			// Cheap insurance on small procedures; the property is also
			// covered exhaustively by the bl package's tests.
			if err := inc.VerifyPathSums(nm); err != nil {
				return err
			}
		}
	} else {
		inc = nm.BasicIncrements()
	}
	pp.Inc = inc

	// k-iteration extension: raise the numbering to degree K (clamped per
	// procedure so the id space fits MaxPaths). The per-segment register
	// instrumentation below is untouched; only the boundary operations
	// (backedge, exit) change, handing standard segment ids to the probe
	// layer, which composes them into k-path ids (see bl/kpath.go).
	if opts.K > 1 {
		if _, err := nm.ExtendK(opts.K, 0); err != nil {
			return err
		}
		if nm.K > 1 && nm.NumPaths > maxPackedPaths {
			return fmt.Errorf("instrument: proc %s: %d segment ids exceed packable range for k-mode", p.Name, nm.NumPaths)
		}
	}
	kMode := nm.K > 1

	pp.UseHash = nm.NumPathsK > opts.HashPathThreshold
	if pp.UseHash && nm.NumPaths > maxPackedPaths {
		return fmt.Errorf("instrument: proc %s: %d paths exceed packable range", p.Name, nm.NumPaths)
	}
	if !pp.UseHash {
		pp.FreqBase = plan.alloc.Alloc(uint64(nm.NumPathsK)*8, 64)
		if mode == ModePathHW {
			plan.allocAccBases(pp, nm.NumPathsK)
		}
	}

	want := 5 // zero, path, 3 temps
	if mode == ModePathHW {
		want += plan.numPairs() // + one saved-PIC register per pair
	}
	rp, err := planRegs(p, want)
	if err != nil {
		return err
	}
	if mode == ModePathHW {
		rp.pairs = plan.numPairs()
	}
	pp.Spilled = rp.spill
	pp.Regs = rp.info()

	preds := ed.numPreds()

	// (a) Real-edge increments, in deterministic block/position order.
	for b := range nm.Succs {
		for pos, te := range nm.Succs[b] {
			if te.Kind != bl.Real {
				continue
			}
			val, ok := inc.Real[bl.SuccRef{Block: b, Pos: pos}]
			if !ok || val == 0 {
				continue
			}
			sb := rp.seq()
			r := sb.pathReg()
			sb.emit(ir.Instr{Op: ir.AddI, Rd: r, Rs: r, Imm: val})
			sb.storePath()
			ed.insertOnEdge(ir.BlockID(b), te.Slot, preds, sb.finish())
		}
	}

	// (b) Backedge operations: count[r+END]++; r = START (plus counter
	// restart in HW mode). In k-mode the completed segment's id goes to the
	// composition probe instead of being counted directly.
	for i, be := range nm.Backedges {
		sb := rp.seq()
		if kMode {
			plan.emitKBoundary(sb, pp, inc.BEnd[i], ProbeKSeg)
		} else {
			plan.emitPathEnd(sb, pp, inc.BEnd[i], mode)
		}
		r := sb.pathRegNoLoad()
		sb.emit(ir.Instr{Op: ir.MovI, Rd: r, Imm: inc.BStart[i]})
		sb.storePath()
		if mode == ModePathHW {
			plan.emitCounterZero(sb, rp)
		}
		ed.insertOnEdge(be.From, be.Slot, preds, sb.finish())
	}

	// (c) Exit block: final path count, then (HW) counter restore, then
	// (ContextFlow) the CCT exit probe, then frame teardown.
	exitSeq := rp.seq()
	if kMode {
		plan.emitKBoundary(exitSeq, pp, 0, ProbeKEnd)
	} else {
		plan.emitPathEnd(exitSeq, pp, 0, mode)
	}
	if mode == ModePathHW {
		plan.emitCounterRestore(exitSeq, rp)
	}
	if mode == ModeContextFlow {
		t := exitSeq.scratch(0)
		exitSeq.emit(ir.Instr{Op: ir.Probe, Imm: ProbeCCTExit, Rs: t, Rd: t})
	}
	seq := exitSeq.finish()
	if rp.spill {
		seq = append(seq,
			ir.Instr{Op: ir.Mov, Rd: ir.RegSP, Rs: rp.frame},
			ir.Instr{Op: ir.AddI, Rd: ir.RegSP, Rs: ir.RegSP, Imm: rp.frameSize()},
		)
	}
	ed.insertBeforeTerm(p.ExitBlock, seq)

	// (d) Call sites (ContextFlow): pass the site index and current path
	// prefix to the CCT runtime just before each call.
	if mode == ModeContextFlow {
		plan.insertCallProbes(ed, rp, nm)
	}

	// (e) Entry: frame setup (spill), zero register, r = 0, CCT enter probe
	// (ContextFlow), counter save + zero (HW).
	var entry []ir.Instr
	if rp.spill {
		entry = append(entry,
			ir.Instr{Op: ir.AddI, Rd: ir.RegSP, Rs: ir.RegSP, Imm: -rp.frameSize()},
			ir.Instr{Op: ir.Mov, Rd: rp.frame, Rs: ir.RegSP},
		)
	} else {
		entry = append(entry, ir.Instr{Op: ir.MovI, Rd: rp.zero, Imm: 0})
	}
	sb := rp.seq()
	r := sb.pathRegNoLoad()
	sb.emit(ir.Instr{Op: ir.MovI, Rd: r, Imm: 0})
	sb.storePath()
	if mode == ModeContextFlow {
		t := sb.scratch(0)
		sb.emit(
			ir.Instr{Op: ir.MovI, Rd: t, Imm: int64(p.ID)},
			ir.Instr{Op: ir.Probe, Imm: ProbeCCTEnter, Rs: t, Rd: t},
		)
	}
	if mode == ModePathHW {
		plan.emitCounterSave(sb, rp)
		plan.emitCounterZero(sb, rp)
	}
	entry = append(entry, sb.finish()...)
	ed.prependEntry(entry)
	return nil
}

// loopDepthFreqHint estimates relative edge execution frequencies from
// natural-loop nesting: an edge inside k nested loops is weighted 8^k, so
// the maximum spanning tree keeps hot loop edges uninstrumented and the
// chord increments land on cold edges — the intent of the original [BL96]
// placement optimization, using static estimates in lieu of a prior
// profile.
func loopDepthFreqHint(p *ir.Proc, nm *bl.Numbering) func(bl.SuccRef) int64 {
	depth := make([]int, len(p.Blocks))
	for _, l := range cfg.NaturalLoops(p) {
		for b := range l.Body {
			depth[b]++
		}
	}
	weight := func(d int) int64 {
		if d > 6 {
			d = 6
		}
		w := int64(1)
		for i := 0; i < d; i++ {
			w *= 8
		}
		return w
	}
	return func(ref bl.SuccRef) int64 {
		te := nm.Succs[ref.Block][ref.Pos]
		switch te.Kind {
		case bl.Real:
			d := depth[ref.Block]
			if dt := depth[te.To]; dt < d {
				d = dt // edges leaving a loop run at the outer frequency
			}
			return weight(d)
		default:
			// Pseudo edges stand for a backedge of the loop headed at the
			// backedge target; they execute once per iteration.
			be := nm.Backedges[te.Backedge]
			return weight(depth[be.From])
		}
	}
}

// insertCallProbes places a ProbeCCTCall before every call instruction,
// packing the call-site index with the live path prefix.
func (plan *Plan) insertCallProbes(ed *editor, rp *regPlan, nm *bl.Numbering) {
	p := ed.proc
	pp := plan.Procs[p.ID]
	canPack := nm == nil || nm.NumPaths <= maxPackedPaths
	// One counting pass presizes the site table, so the append loop below
	// never reallocates mid-procedure.
	nCalls := 0
	for _, b := range p.Blocks {
		for _, in := range b.Instrs {
			if in.Op.IsCall() {
				nCalls++
			}
		}
	}
	pp.SiteBlocks = make([]ir.BlockID, 0, nCalls)
	site := 0
	for _, b := range p.Blocks {
		// Collect call positions first; insertion shifts indices.
		var calls []int
		for i, in := range b.Instrs {
			if in.Op.IsCall() {
				calls = append(calls, i)
			}
		}
		for range calls {
			pp.SiteBlocks = append(pp.SiteBlocks, b.ID)
		}
		for k := len(calls) - 1; k >= 0; k-- {
			idx := calls[k]
			siteID := site + k
			sb := rp.seq()
			t := sb.scratch(0)
			if nm != nil && canPack {
				// packSitePath(site, 0) + r == packSitePath(site, r): the
				// bias makes the low field positive for any reachable r.
				r := sb.pathReg()
				sb.emit(
					ir.Instr{Op: ir.MovI, Rd: t, Imm: packSitePath(siteID, 0)},
					ir.Instr{Op: ir.Add, Rd: t, Rs: t, Rt: r},
				)
			} else {
				sb.emit(ir.Instr{Op: ir.MovI, Rd: t, Imm: packSitePath(siteID, noPrefix)})
			}
			sb.emit(ir.Instr{Op: ir.Probe, Imm: ProbeCCTCall, Rs: t, Rd: t})
			ed.insertAt(b.ID, idx, sb.finish())
		}
		site += len(calls)
	}
}

// emitPathEnd emits the "path completed" update: count the path whose index
// is the current path register plus offset. The counter targeted depends on
// the mode and on whether the procedure's table is dense or hashed. The
// path register is dead after a path ends (the caller either resets it or
// returns), so the sequence may clobber it as a scratch register.
func (plan *Plan) emitPathEnd(sb *seqBuilder, pp *ProcPlan, offset int64, mode Mode) {
	r := sb.pathReg()
	idx := sb.scratch(2)
	sb.emit(ir.Instr{Op: ir.AddI, Rd: idx, Rs: r, Imm: offset})

	switch {
	case mode == ModeContextFlow:
		// Path count goes to the current CCT record.
		sb.emit(ir.Instr{Op: ir.Probe, Imm: ProbeCCTPath, Rs: idx, Rd: idx})

	case pp.UseHash && mode == ModePathHW:
		t := sb.scratch(0)
		sb.emit(
			ir.Instr{Op: ir.MovI, Rd: t, Imm: PackProcPath(pp.ProcID, 0)},
			ir.Instr{Op: ir.Add, Rd: t, Rs: t, Rt: idx},
			ir.Instr{Op: ir.Probe, Imm: ProbeHashHW, Rs: t, Rd: t},
		)

	case pp.UseHash:
		t := sb.scratch(0)
		sb.emit(
			ir.Instr{Op: ir.MovI, Rd: t, Imm: PackProcPath(pp.ProcID, 0)},
			ir.Instr{Op: ir.Add, Rd: t, Rs: t, Rt: idx},
			ir.Instr{Op: ir.Probe, Imm: ProbeHashFreq, Rs: t, Rd: t},
		)

	case mode == ModePathHW:
		// Read each counter pair once, then accumulate both halves into
		// 64-bit accumulators and bump the frequency count — the paper's
		// "thirteen or more instructions" (plus one read-accumulate group
		// per extra pair when the metric schema is wider than two). r is
		// reused to hold the pair value.
		z := sb.zeroReg()
		t0, t1 := sb.scratch(0), sb.scratch(1)
		for pr := 0; pr < plan.numPairs(); pr++ {
			hi, lo := 2*pr+1, 2*pr
			sb.emit(ir.Instr{Op: ir.RdPIC, Rd: r, Imm: int64(pr)})
			if hi < plan.numCounters() {
				// High half into the odd slot's accumulator.
				sb.emit(
					ir.Instr{Op: ir.ShrI, Rd: t0, Rs: r, Imm: 32},
					ir.Instr{Op: ir.LoadIdx, Rd: t1, Rs: z, Rt: idx, Imm: int64(pp.AccBases[hi])},
					ir.Instr{Op: ir.Add, Rd: t1, Rs: t1, Rt: t0},
					ir.Instr{Op: ir.StoreIdx, Rd: t1, Rs: z, Rt: idx, Imm: int64(pp.AccBases[hi])},
				)
			}
			// Low half into the even slot's accumulator.
			sb.emit(
				ir.Instr{Op: ir.AndI, Rd: t0, Rs: r, Imm: 0xffffffff},
				ir.Instr{Op: ir.LoadIdx, Rd: t1, Rs: z, Rt: idx, Imm: int64(pp.AccBases[lo])},
				ir.Instr{Op: ir.Add, Rd: t1, Rs: t1, Rt: t0},
				ir.Instr{Op: ir.StoreIdx, Rd: t1, Rs: z, Rt: idx, Imm: int64(pp.AccBases[lo])},
			)
		}
		sb.emit(
			// Frequency.
			ir.Instr{Op: ir.LoadIdx, Rd: t1, Rs: z, Rt: idx, Imm: int64(pp.FreqBase)},
			ir.Instr{Op: ir.AddI, Rd: t1, Rs: t1, Imm: 1},
			ir.Instr{Op: ir.StoreIdx, Rd: t1, Rs: z, Rt: idx, Imm: int64(pp.FreqBase)},
		)

	default: // ModePathFreq, dense array: count[idx]++
		z := sb.zeroReg()
		t1 := sb.scratch(1)
		sb.emit(
			ir.Instr{Op: ir.LoadIdx, Rd: t1, Rs: z, Rt: idx, Imm: int64(pp.FreqBase)},
			ir.Instr{Op: ir.AddI, Rd: t1, Rs: t1, Imm: 1},
			ir.Instr{Op: ir.StoreIdx, Rd: t1, Rs: z, Rt: idx, Imm: int64(pp.FreqBase)},
		)
	}
}

// emitKBoundary emits the k-mode segment hand-off: pack the completed
// standard segment id (current path register plus offset) with the
// procedure ID and pass it to the composition probe — ProbeKSeg at a
// backedge, ProbeKEnd at the exit flush. The handler decodes the segment
// once, re-sums it with the active layer's values, and counts the
// composed k-path id when the path completes (wire.go). The sequence is
// the same shape as the hashed counting probe, so the N-counter
// save/restore discipline around it is unchanged; in HW mode the handler
// reads the counters at the probe and the zeroing that follows (backedge)
// or the restore (exit) proceeds exactly as at k=1.
func (plan *Plan) emitKBoundary(sb *seqBuilder, pp *ProcPlan, offset int64, probe int64) {
	r := sb.pathReg()
	idx := sb.scratch(2)
	sb.emit(ir.Instr{Op: ir.AddI, Rd: idx, Rs: r, Imm: offset})
	t := sb.scratch(0)
	sb.emit(
		ir.Instr{Op: ir.MovI, Rd: t, Imm: PackProcPath(pp.ProcID, 0)},
		ir.Instr{Op: ir.Add, Rd: t, Rs: t, Rt: idx},
		ir.Instr{Op: ir.Probe, Imm: probe, Rs: t, Rd: t},
	)
}

// emitCounterZero writes zero to every instrumented PIC pair and, unless
// ablated, performs the mandatory read-after-write (Figure 3: "it is
// necessary to read the hardware counter after writing it"). With several
// pairs a single trailing read suffices: writing the next pair forces the
// previous pair's buffered write to complete, so only the last write needs
// the explicit read.
func (plan *Plan) emitCounterZero(sb *seqBuilder, rp *regPlan) {
	z := sb.zeroReg()
	for pr := 0; pr < rp.numPairs(); pr++ {
		sb.emit(ir.Instr{Op: ir.WrPIC, Rs: z, Imm: int64(pr)})
	}
	if plan.Opts.ReadAfterWrite {
		t := sb.scratch(0)
		sb.emit(ir.Instr{Op: ir.RdPIC, Rd: t, Imm: int64(rp.numPairs() - 1)})
	}
}

// emitCounterSave preserves the caller's counter pairs on procedure entry:
// pair 0 in the dedicated save register (or its frame slot), extra pairs in
// their own registers (or the frame slots past the classic layout).
func (plan *Plan) emitCounterSave(sb *seqBuilder, rp *regPlan) {
	if rp.spill {
		t := sb.scratch(0)
		for pr := 0; pr < rp.numPairs(); pr++ {
			sb.emit(
				ir.Instr{Op: ir.RdPIC, Rd: t, Imm: int64(pr)},
				ir.Instr{Op: ir.Store, Rs: rp.frame, Imm: rp.slotSave(pr), Rd: t},
			)
		}
		return
	}
	for pr := 0; pr < rp.numPairs(); pr++ {
		sb.emit(ir.Instr{Op: ir.RdPIC, Rd: rp.saveReg(pr), Imm: int64(pr)})
	}
}

// emitCounterRestore reinstates the caller's counter pairs before return.
func (plan *Plan) emitCounterRestore(sb *seqBuilder, rp *regPlan) {
	for pr := 0; pr < rp.numPairs(); pr++ {
		var src ir.Reg
		if rp.spill {
			src = sb.scratch(0)
			sb.emit(ir.Instr{Op: ir.Load, Rd: src, Rs: rp.frame, Imm: rp.slotSave(pr)})
		} else {
			src = rp.saveReg(pr)
		}
		sb.emit(ir.Instr{Op: ir.WrPIC, Rs: src, Imm: int64(pr)})
	}
	if plan.Opts.ReadAfterWrite {
		t := sb.scratch(1)
		sb.emit(ir.Instr{Op: ir.RdPIC, Rd: t, Imm: int64(rp.numPairs() - 1)})
	}
}
