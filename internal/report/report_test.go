package report

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := &Table{
		Title: "T",
		Cols:  []string{"Name", "Value"},
	}
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", 123456)
	tb.AddSeparator()
	tb.AddRow("avg", 2.5)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"T\n", "Name", "Value", "a-much-longer-name", "123456", "2.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// All data lines should be equally wide-ish (aligned columns).
	var dataLines []string
	for _, l := range lines {
		if strings.Contains(l, "short") || strings.Contains(l, "longer") {
			dataLines = append(dataLines, l)
		}
	}
	if len(dataLines) != 2 {
		t.Fatalf("data lines = %d", len(dataLines))
	}
}

func TestNoteWrap(t *testing.T) {
	tb := &Table{
		Cols: []string{"A"},
		Note: strings.Repeat("word ", 60),
	}
	tb.AddRow("x")
	var sb strings.Builder
	tb.Render(&sb)
	for _, line := range strings.Split(sb.String(), "\n") {
		if len(line) > 115 {
			t.Fatalf("line too long (%d): %q", len(line), line)
		}
	}
}

func TestIsNumeric(t *testing.T) {
	yes := []string{"1", "1.5", "-3", "+2", "95.1%", "1.1e9", "0x10"}
	no := []string{"", "name", "1.2.3", "12a", "b12"}
	for _, s := range yes {
		if !isNumeric(s) {
			t.Errorf("%q should be numeric", s)
		}
	}
	for _, s := range no {
		if isNumeric(s) {
			t.Errorf("%q should not be numeric", s)
		}
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.123) != "12.3%" {
		t.Fatalf("Pct = %q", Pct(0.123))
	}
	if Ratio(1.005) != "1.00" && Ratio(1.005) != "1.01" {
		t.Fatalf("Ratio = %q", Ratio(1.005))
	}
	cases := map[uint64]string{
		5:             "5",
		9_999:         "9999",
		50_000:        "50.0e3",
		3_200_000:     "3.2e6",
		2_100_000_000: "2.1e9",
	}
	for v, want := range cases {
		if got := SI(v); got != want {
			t.Errorf("SI(%d) = %q, want %q", v, got, want)
		}
	}
}
