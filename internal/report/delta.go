package report

import "fmt"

// Before/after reporting for the optimization experiments: one row per
// item, each tracked metric shown side by side with its signed delta.

// DeltaMetric is one measured quantity in a DeltaTable row.
type DeltaMetric struct {
	Name          string
	Before, After uint64
}

// DeltaPct formats the relative change of after vs before as a signed
// percentage ("-9.78%"); zero baselines render as "n/a" unless nothing
// changed.
func DeltaPct(before, after uint64) string {
	if before == 0 {
		if after == 0 {
			return "+0.00%"
		}
		return "n/a"
	}
	return fmt.Sprintf("%+.2f%%", 100*(float64(after)-float64(before))/float64(before))
}

// DeltaTable builds a side-by-side before/after table: a name column and
// a note column per item, then before/after/Δ columns for each metric in
// metricNames. Rows are added with AddDeltaRow; metrics must arrive in
// the same order.
func DeltaTable(title, note string, itemCol, noteCol string, metricNames []string) *Table {
	cols := []string{itemCol}
	for _, m := range metricNames {
		cols = append(cols, m+" before", m+" after", "Δ"+m)
	}
	if noteCol != "" {
		cols = append(cols, noteCol)
	}
	return &Table{Title: title, Note: note, Cols: cols}
}

// AddDeltaRow appends one item with its metrics (ordered as in
// DeltaTable's metricNames) and an optional trailing note cell.
func (t *Table) AddDeltaRow(item string, metrics []DeltaMetric, note string) {
	row := []interface{}{item}
	for _, m := range metrics {
		row = append(row, m.Before, m.After, DeltaPct(m.Before, m.After))
	}
	if note != "" {
		row = append(row, note)
	}
	t.AddRow(row...)
}
