package report

import (
	"strings"
	"testing"
)

func TestDeltaPct(t *testing.T) {
	cases := []struct {
		before, after uint64
		want          string
	}{
		{100, 90, "-10.00%"},
		{100, 100, "+0.00%"},
		{100, 125, "+25.00%"},
		{0, 0, "+0.00%"},
		{0, 5, "n/a"},
	}
	for _, c := range cases {
		if got := DeltaPct(c.before, c.after); got != c.want {
			t.Errorf("DeltaPct(%d, %d) = %q, want %q", c.before, c.after, got, c.want)
		}
	}
}

func TestDeltaTable(t *testing.T) {
	tbl := DeltaTable("T", "", "Item", "Note", []string{"cycles", "imiss"})
	if len(tbl.Cols) != 1+2*3+1 {
		t.Fatalf("got %d cols: %v", len(tbl.Cols), tbl.Cols)
	}
	tbl.AddDeltaRow("w", []DeltaMetric{
		{Name: "cycles", Before: 200, After: 150},
		{Name: "imiss", Before: 10, After: 10},
	}, "full")
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"-25.00%", "+0.00%", "full", "cycles before"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
