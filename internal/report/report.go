// Package report renders the experiment tables as aligned text, in the
// shape of the paper's Tables 1-5.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title string
	Note  string
	Cols  []string
	Rows  [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddSeparator appends a visual separator row.
func (t *Table) AddSeparator() {
	t.Rows = append(t.Rows, nil)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, v := range r {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", min(total, 110)))
	}
	for i, c := range t.Cols {
		fmt.Fprintf(w, "%-*s", widths[i]+2, c)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", min(total, 110)))
	for _, r := range t.Rows {
		if r == nil {
			fmt.Fprintln(w, strings.Repeat("-", min(total, 110)))
			continue
		}
		for i, v := range r {
			if i >= len(widths) {
				break
			}
			// Right-align numeric-looking cells, left-align names.
			if isNumeric(v) {
				fmt.Fprintf(w, "%*s  ", widths[i], v)
			} else {
				fmt.Fprintf(w, "%-*s  ", widths[i], v)
			}
		}
		fmt.Fprintln(w)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "\n%s\n", wrap(t.Note, 100))
	}
	fmt.Fprintln(w)
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	dots := 0
	for i, c := range s {
		switch {
		case c >= '0' && c <= '9':
		case c == '.' && dots == 0:
			dots++
		case (c == '-' || c == '+') && i == 0:
		case c == '%' && i == len(s)-1:
		case c == 'e' || c == 'x':
		default:
			return false
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// wrap breaks a note into lines at word boundaries.
func wrap(s string, width int) string {
	words := strings.Fields(s)
	var sb strings.Builder
	line := 0
	for i, w := range words {
		if line > 0 && line+1+len(w) > width {
			sb.WriteByte('\n')
			line = 0
		} else if i > 0 {
			sb.WriteByte(' ')
			line++
		}
		sb.WriteString(w)
		line += len(w)
	}
	return sb.String()
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// Ratio formats a ratio with two decimals.
func Ratio(f float64) string { return fmt.Sprintf("%.2f", f) }

// SI formats large counts compactly (e.g. 1.1e9 style like the paper).
func SI(v uint64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.1fe9", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fe6", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.1fe3", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}
