package pgo

import (
	"fmt"

	"pathprof/internal/analysis"
	"pathprof/internal/ir"
	"pathprof/internal/tv"
)

// Options selects and bounds the transforms. The zero value disables
// everything; DefaultOptions enables the full pipeline with the budgets
// used by the experiments.
type Options struct {
	// ThreadJumps bypasses bare-jump blocks and demotes converged
	// branches.
	ThreadJumps bool
	// MergeBlocks folds sole-predecessor jump targets into their
	// predecessor.
	MergeBlocks bool
	// TailDup forms superblocks by duplicating hot jump targets that have
	// side entrances.
	TailDup bool
	// TailDupGrowth bounds tail-duplication code growth as a fraction of
	// the procedure's pre-duplication instruction count.
	TailDupGrowth float64
	// TailDupMaxBlock is the largest block (instructions) tail duplication
	// will copy.
	TailDupMaxBlock int
	// TailDupMinFreq is the minimum measured edge count worth a private
	// copy.
	TailDupMinFreq int64
	// Inline splices hot leaf callees into their callers.
	Inline bool
	// InlineMaxInstrs is the largest callee body eligible for inlining.
	InlineMaxInstrs int
	// InlineMinCalls is the minimum measured call count at a site.
	InlineMinCalls int64
	// InlineGrowth bounds per-caller inlining growth as a fraction of the
	// caller's instruction count.
	InlineGrowth float64
	// MaxInlineReg caps which caller-unused registers inlining may claim,
	// preserving the high registers the instrumenter allocates from.
	MaxInlineReg ir.Reg
	// Reorder lays blocks out in Pettis–Hansen fall-through chains.
	Reorder bool
	// ColdOutline sinks never-executed chains to the procedure tail
	// (requires Reorder).
	ColdOutline bool
}

// DefaultOptions returns the full pipeline with the standard budgets.
func DefaultOptions() Options {
	return Options{
		ThreadJumps:     true,
		MergeBlocks:     true,
		TailDup:         true,
		TailDupGrowth:   0.25,
		TailDupMaxBlock: 8,
		TailDupMinFreq:  16,
		Inline:          true,
		InlineMaxInstrs: 48,
		InlineMinCalls:  16,
		InlineGrowth:    0.5,
		MaxInlineReg:    25,
		Reorder:         true,
		ColdOutline:     true,
	}
}

// Stats reports what Optimize did.
type Stats struct {
	Threaded     int // edges retargeted / branches demoted
	Merged       int // blocks folded into predecessors
	Duplicated   int // tail-duplicated blocks
	DupInstrs    int // instructions added by duplication
	Inlined      int // call sites inlined
	InlineInstrs int // instructions added by inlining
	Outlined     int // never-executed blocks sunk to procedure tails
	// Skipped is non-empty when the whole program was left untouched, with
	// the reason.
	Skipped string
}

func (s *Stats) String() string {
	if s.Skipped != "" {
		return fmt.Sprintf("skipped (%s)", s.Skipped)
	}
	return fmt.Sprintf("threaded %d, merged %d, tail-dup %d (+%d instrs), inlined %d (+%d instrs), outlined %d",
		s.Threaded, s.Merged, s.Duplicated, s.DupInstrs, s.Inlined, s.InlineInstrs, s.Outlined)
}

// DebugValidate, when non-nil, is called by OptimizeTV (and therefore
// Optimize) on every result with the original program, the rewrite, and
// its witness; a non-nil return fails the optimization. The tv package's
// autotv subpackage installs tv.ValidateError here from an init function,
// turning every optimization in the importing test binary into a checked
// translation.
var DebugValidate func(orig, opt *ir.Program, w *tv.ProgramWitness) error

// Optimize rewrites a clone of prog guided by data and returns it with
// statistics. The input program is never modified. The result always
// passes ir.Validate and is architecturally equivalent to the input: same
// outputs, same final memory image, on every input (transforms only remove
// or relocate control transfers and splice callee bodies under the calling
// convention).
//
// Programs reading the cycle counter (RdTick) or carrying instrumentation
// (Probe, RdPIC, WrPIC) are returned unchanged: any rewrite shifts their
// observable values.
func Optimize(prog *ir.Program, data *ProfileData, opts Options) (*ir.Program, *Stats, error) {
	out, _, stats, err := OptimizeTV(prog, data, opts)
	return out, stats, err
}

// OptimizeTV is Optimize returning, in addition, the translation-validation
// witness the transforms emitted: the proof outline internal/tv checks to
// establish statically that the rewrite simulates the input. The witness
// indexes the returned program's procedures and blocks.
func OptimizeTV(prog *ir.Program, data *ProfileData, opts Options) (*ir.Program, *tv.ProgramWitness, *Stats, error) {
	out := ir.Clone(prog)
	stats := &Stats{}
	if reason := timingSensitive(prog); reason != "" {
		stats.Skipped = reason
		return out, tv.Identity(prog), stats, nil
	}
	w := &tv.ProgramWitness{Procs: make([]tv.ProcWitness, len(out.Procs))}
	for _, p := range out.Procs {
		xp := newXproc(p, edgesFor(data, p.ID))
		if opts.Inline {
			n, grown := xp.inlinePass(prog, data, opts)
			stats.Inlined += n
			stats.InlineInstrs += grown
		}
		if opts.ThreadJumps {
			stats.Threaded += xp.threadJumps()
		}
		if opts.MergeBlocks {
			stats.Merged += xp.mergeBlocks()
		}
		if opts.TailDup {
			d, g := xp.tailDup(opts)
			stats.Duplicated += d
			stats.DupInstrs += g
			// Duplication can empty side paths into bare jumps; clean up.
			if opts.ThreadJumps {
				stats.Threaded += xp.threadJumps()
			}
			if opts.MergeBlocks {
				stats.Merged += xp.mergeBlocks()
			}
		}
		var order []*xblock
		if opts.Reorder {
			var outlined int
			order, outlined = xp.layout(opts.ColdOutline)
			stats.Outlined += outlined
		} else {
			order = xp.reachable()
		}
		if err := xp.commit(order); err != nil {
			return nil, nil, nil, err
		}
		w.Procs[p.ID] = xp.witness(order)
	}
	if err := ir.Validate(out); err != nil {
		return nil, nil, nil, fmt.Errorf("pgo: optimized program invalid: %w", err)
	}
	if DebugValidate != nil {
		if err := DebugValidate(prog, out, w); err != nil {
			return nil, nil, nil, fmt.Errorf("pgo: translation validation: %w", err)
		}
	}
	return out, w, stats, nil
}

// edgesFor returns the measured edge frequencies for proc id, nil when the
// profile has none.
func edgesFor(data *ProfileData, id int) analysis.EdgeFreq {
	if data == nil || id >= len(data.Edges) {
		return nil
	}
	return data.Edges[id]
}

// timingSensitive reports why a program cannot be rewritten safely, or ""
// when it can.
func timingSensitive(prog *ir.Program) string {
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.RdTick:
					return fmt.Sprintf("proc %s reads the cycle counter", p.Name)
				case ir.Probe, ir.RdPIC, ir.WrPIC:
					return fmt.Sprintf("proc %s carries instrumentation", p.Name)
				}
			}
		}
	}
	return ""
}
