package pgo

import (
	"fmt"
	"slices"
	"testing"

	"pathprof/internal/instrument"
	"pathprof/internal/ir"
	"pathprof/internal/mem"
	"pathprof/internal/sim"
	"pathprof/internal/workload"
)

// The differential semantic-preservation harness: every workload, under
// every individual transform and every ladder combination, must validate
// and reproduce the baseline's output stream and final memory image
// byte for byte. The full-opts result is additionally re-instrumented in
// every mode (autovet checks each plan) and re-run.

// variants enumerates the option sets the harness exercises: each
// transform alone, then the ladder combinations.
func variants() []struct {
	Name string
	Opts Options
} {
	full := DefaultOptions()
	single := func(mut func(*Options)) Options {
		o := Options{
			TailDupGrowth:   full.TailDupGrowth,
			TailDupMaxBlock: full.TailDupMaxBlock,
			TailDupMinFreq:  full.TailDupMinFreq,
			InlineMaxInstrs: full.InlineMaxInstrs,
			InlineMinCalls:  full.InlineMinCalls,
			InlineGrowth:    full.InlineGrowth,
			MaxInlineReg:    full.MaxInlineReg,
		}
		mut(&o)
		return o
	}
	vs := []struct {
		Name string
		Opts Options
	}{
		{"none", single(func(o *Options) {})},
		{"thread", single(func(o *Options) { o.ThreadJumps = true })},
		{"merge", single(func(o *Options) { o.MergeBlocks = true })},
		{"taildup", single(func(o *Options) { o.TailDup = true })},
		{"inline", single(func(o *Options) { o.Inline = true })},
		{"reorder", single(func(o *Options) { o.Reorder = true })},
		{"outline", single(func(o *Options) { o.Reorder = true; o.ColdOutline = true })},
	}
	for _, c := range Ladder(full) {
		vs = append(vs, c)
	}
	return vs
}

// checkEquivalent optimizes prog with opts and fails if the result does
// not validate or diverges from the baseline run.
func checkEquivalent(t *testing.T, prog *ir.Program, data *ProfileData, opts Options, baseOut []int64, baseMem *mem.Memory) *ir.Program {
	t.Helper()
	opt, _, err := Optimize(prog, data, opts)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if errs := ir.ValidateAll(opt); len(errs) > 0 {
		t.Fatalf("optimized program invalid: %v (+%d more)", errs[0], len(errs)-1)
	}
	_, out, memory, err := runPlain(opt, sim.DefaultConfig())
	if err != nil {
		t.Fatalf("optimized run: %v", err)
	}
	if !slices.Equal(out, baseOut) {
		t.Fatalf("output diverges: %d words vs %d", len(out), len(baseOut))
	}
	if !mem.Equal(memory, baseMem) {
		addr, av, bv, _ := mem.DiffWord(memory, baseMem)
		t.Fatalf("memory diverges at %#x: %d vs %d", addr, av, bv)
	}
	return opt
}

func TestPreservationWorkloads(t *testing.T) {
	modes := []instrument.Mode{
		instrument.ModeEdgeCount,
		instrument.ModePathFreq,
		instrument.ModePathHW,
		instrument.ModeContextHW,
		instrument.ModeContextFlow,
		instrument.ModeContextProbesOnly,
		instrument.ModeBlockHW,
	}
	for _, w := range workload.Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog := w.Build(workload.Test)
			_, baseOut, baseMem, err := runPlain(prog, sim.DefaultConfig())
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			data, err := Acquire(prog, sim.DefaultConfig())
			if err != nil {
				t.Fatalf("acquire: %v", err)
			}
			var fullOpt *ir.Program
			for _, v := range variants() {
				v := v
				t.Run(v.Name, func(t *testing.T) {
					opt := checkEquivalent(t, prog, data, v.Opts, baseOut, baseMem)
					if v.Name == "full" {
						fullOpt = opt
					}
				})
			}
			if fullOpt == nil {
				t.Fatal("full variant did not run")
			}
			// The optimized program must remain instrumentable: every mode
			// (autovet verifies each plan) and the instrumented run must
			// still produce the baseline output.
			for _, mode := range modes {
				mode := mode
				t.Run(fmt.Sprintf("reinstrument-%s", mode), func(t *testing.T) {
					plan, err := instrument.Instrument(fullOpt, instrument.DefaultOptions(mode))
					if err != nil {
						t.Fatalf("instrument: %v", err)
					}
					m := sim.New(plan.Prog, sim.DefaultConfig())
					plan.Wire(m)
					res, err := m.Run()
					if err != nil {
						t.Fatalf("instrumented run: %v", err)
					}
					if !slices.Equal(res.Output, baseOut) {
						t.Fatalf("instrumented output diverges")
					}
				})
			}
		})
	}
}
