package pgo

import (
	"reflect"
	"testing"

	"pathprof/internal/sim"
	"pathprof/internal/workload"
)

// TestAcquireKInvariant: acquisition at k>1 records a k-path profile but
// projects the same edge frequencies, placement hints, and call counts as
// classic acquisition — so the optimizer's decisions cannot depend on the
// profile's iteration degree, and the optimized program is identical.
func TestAcquireKInvariant(t *testing.T) {
	for _, name := range []string{"interp", "compress"} {
		w, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("no workload %q", name)
		}
		prog := w.Build(workload.Test)
		classic, err := Acquire(prog, sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{2, 3} {
			kd, err := AcquireWith(prog, sim.DefaultConfig(), AcquireOptions{K: k})
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			if kd.Profile.K < 2 {
				t.Fatalf("%s k=%d: acquired profile lost its degree (K=%d)", name, k, kd.Profile.K)
			}
			if !reflect.DeepEqual(kd.Edges, classic.Edges) {
				t.Errorf("%s k=%d: projected edge frequencies differ from classic", name, k)
			}
			if !reflect.DeepEqual(kd.Placement, classic.Placement) {
				t.Errorf("%s k=%d: placement frequencies differ from classic", name, k)
			}
			if !reflect.DeepEqual(kd.Calls, classic.Calls) {
				t.Errorf("%s k=%d: call counts differ from classic", name, k)
			}

			opt, _, err := Optimize(prog, kd, DefaultOptions())
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			base, _, err := Optimize(prog, classic, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if opt.String() != base.String() {
				t.Errorf("%s k=%d: optimized program differs from classic-profile result", name, k)
			}
		}
	}
}
