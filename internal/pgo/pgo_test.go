package pgo

import (
	"testing"

	"pathprof/internal/sim"
	"pathprof/internal/workload"

	_ "pathprof/internal/ppvet/autovet" // self-verify every Instrument call
)

// TestRoundTripWorkloads runs the full profile→optimize→re-profile loop on
// every workload. RoundTrip itself enforces equivalence (outputs and final
// memory byte-identical for every ladder candidate) and never picks a
// winner that regresses cycles, I-cache misses, or mispredicts.
func TestRoundTripWorkloads(t *testing.T) {
	improved := 0
	for _, w := range workload.Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog := w.Build(workload.Test)
			res, err := RoundTrip(prog, sim.DefaultConfig(), DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if res.After.Cycles > res.Before.Cycles {
				t.Errorf("winner regresses cycles: %d -> %d", res.Before.Cycles, res.After.Cycles)
			}
			if res.After.ICacheMiss > res.Before.ICacheMiss {
				t.Errorf("winner regresses icache misses: %d -> %d", res.Before.ICacheMiss, res.After.ICacheMiss)
			}
			if res.After.Mispredicts > res.Before.Mispredicts {
				t.Errorf("winner regresses mispredicts: %d -> %d", res.Before.Mispredicts, res.After.Mispredicts)
			}
			if res.After.Cycles < res.Before.Cycles {
				improved++
			}
			t.Logf("%s: winner=%s cycles %d -> %d (%.1f%%), imiss %d -> %d, misp %d -> %d; %v",
				w.Name, res.Winner, res.Before.Cycles, res.After.Cycles,
				100*(1-float64(res.After.Cycles)/float64(res.Before.Cycles)),
				res.Before.ICacheMiss, res.After.ICacheMiss,
				res.Before.Mispredicts, res.After.Mispredicts, res.Stats)
		})
	}
	t.Logf("workloads improved: %d", improved)
}
