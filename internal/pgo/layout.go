package pgo

import "sort"

// Code layout in the Pettis–Hansen style. The simulator lays instruction
// addresses out in block order (sim.InstrBytes per instruction, procedures
// aligned to sim.ProcAlign), so the order chosen here directly determines
// I-cache line packing and branch-predictor indexing. Chains of
// measured-hot edges keep the dominant path on consecutive cache lines;
// cold chains — including never-executed blocks — sink to the procedure
// tail, which is the cold-block outlining transform: the hot footprint
// shrinks to the lines the hot path actually touches.

// layoutEdge is one candidate fall-through edge during chain building.
type layoutEdge struct {
	from, to *xblock
	freq     int64
}

// layout orders the reachable blocks: greedy chain-merging over edges in
// descending frequency order, then chains ordered hot-to-cold with the
// entry chain first. When coldLast is false, chains keep creation order
// instead of hotness order (plain reordering without outlining). Returns
// the order (entry first) and how many never-executed blocks ended up
// outlined behind all executed ones.
func (xp *xproc) layout(coldLast bool) (order []*xblock, outlined int) {
	live := xp.reachable()

	// Each block starts as its own chain.
	chain := make(map[*xblock]int, len(live))
	chains := make([][]*xblock, len(live))
	for i, b := range live {
		chain[b] = i
		chains[i] = []*xblock{b}
	}

	var edges []layoutEdge
	for _, b := range live {
		for slot, s := range b.succs {
			edges = append(edges, layoutEdge{from: b, to: s, freq: b.ef[slot]})
		}
	}
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].freq != edges[j].freq {
			return edges[i].freq > edges[j].freq
		}
		if edges[i].from.pos != edges[j].from.pos {
			return edges[i].from.pos < edges[j].from.pos
		}
		return edges[i].to.pos < edges[j].to.pos
	})

	// Merge: from must be a chain tail, to a chain head, chains distinct,
	// and the entry must stay a chain head so it can be laid out first.
	for _, e := range edges {
		ci, cj := chain[e.from], chain[e.to]
		if ci == cj || e.to == xp.entry {
			continue
		}
		a, b := chains[ci], chains[cj]
		if a[len(a)-1] != e.from || b[0] != e.to {
			continue
		}
		chains[ci] = append(a, b...)
		chains[cj] = nil
		for _, x := range b {
			chain[x] = ci
		}
	}

	// Order the chains: entry chain first, then by hotness (peak block
	// frequency, creation-order tie-break); never-executed chains last.
	type chainInfo struct {
		blocks []*xblock
		peak   int64
		pos    int
	}
	var infos []chainInfo
	var entryChain []*xblock
	for _, c := range chains {
		if len(c) == 0 {
			continue
		}
		if c[0] == xp.entry {
			entryChain = c
			continue
		}
		ci := chainInfo{blocks: c, pos: c[0].pos}
		for _, b := range c {
			ci.peak = max(ci.peak, b.freq)
		}
		infos = append(infos, ci)
	}
	if coldLast {
		sort.SliceStable(infos, func(i, j int) bool {
			hotI, hotJ := infos[i].peak > 0, infos[j].peak > 0
			if hotI != hotJ {
				return hotI
			}
			if infos[i].peak != infos[j].peak {
				return infos[i].peak > infos[j].peak
			}
			return infos[i].pos < infos[j].pos
		})
	} else {
		sort.SliceStable(infos, func(i, j int) bool { return infos[i].pos < infos[j].pos })
	}

	order = append(order, entryChain...)
	for _, ci := range infos {
		order = append(order, ci.blocks...)
	}
	if coldLast {
		// Count trailing never-executed blocks as outlined.
		for i := len(order) - 1; i >= 0 && order[i].freq == 0; i-- {
			outlined++
		}
	}
	return order, outlined
}
