package pgo

import (
	"slices"

	"pathprof/internal/ir"
)

// Intra-procedural restructuring: jump threading, block merging, and
// superblock formation by tail duplication. In this IR every control
// transfer is an explicit instruction (there is no implicit fall-through),
// so bypassing a bare jump, folding a single-predecessor block into its
// jump predecessor, or replacing a hot jump with a copy of its target each
// remove one dynamic instruction per traversal — direct simulated-cycle
// wins on measured-hot edges, on top of the layout benefits.

// threadJumps retargets every edge whose destination is a bare
// unconditional jump to that jump's final destination, and demotes
// conditional branches whose arms have converged into plain jumps. Returns
// the number of rewrites.
func (xp *xproc) threadJumps() int {
	changed := 0
	// final follows chains of bare jumps, stopping on a cycle (a cycle of
	// bare jumps cannot reach the exit and so cannot occur in valid input,
	// but stay total regardless).
	final := func(x *xblock) *xblock {
		seen := map[*xblock]bool{}
		for x.bareJump() && !seen[x] {
			seen[x] = true
			x = x.succs[0]
		}
		return x
	}
	for _, b := range xp.blocks {
		for i, s := range b.succs {
			if t := final(s); t != s {
				b.succs[i] = t
				changed++
			}
		}
	}
	for _, b := range xp.blocks {
		if b.term().Op == ir.Br && len(b.succs) == 2 && b.succs[0] == b.succs[1] {
			b.instrs[len(b.instrs)-1] = ir.Instr{Op: ir.Jmp}
			b.succs = b.succs[:1]
			b.ef = []int64{b.ef[0] + b.ef[1]}
			changed++
		}
	}
	return changed
}

// mergeBlocks folds every block that is the sole target of an
// unconditional jump into its predecessor, deleting the jump. Runs to a
// fixpoint.
func (xp *xproc) mergeBlocks() int {
	changed := 0
	for {
		live := xp.reachable()
		np := preds(live)
		merged := false
		for _, b := range live {
			if b.term().Op != ir.Jmp {
				continue
			}
			t := b.succs[0]
			if t == xp.entry || t == b || np[t] != 1 {
				continue
			}
			off := len(b.instrs) - 1 // the deleted jump's slot
			b.instrs = append(b.instrs[:len(b.instrs)-1:len(b.instrs)-1], t.instrs...)
			b.succs = slices.Clone(t.succs)
			b.ef = slices.Clone(t.ef)
			b.wevents = append(b.wevents, shiftEvents(t.wevents, off)...)
			if t == xp.exit {
				xp.exit = b
			}
			changed++
			merged = true
			break // edge structure changed; recompute reachability
		}
		if !merged {
			return changed
		}
	}
}

// tailDup forms superblocks: when a hot unconditional jump targets a block
// with multiple predecessors, the target's body is duplicated into the
// jumping block, removing the jump and giving the hot path a private
// straight-line copy (side entrances keep the original). Growth is bounded
// by opts.TailDupGrowth of the procedure's pre-duplication size; targets
// are capped at opts.TailDupMaxBlock instructions and edges below
// opts.TailDupMinFreq are left alone. The exit block is never duplicated
// (the unique-exit invariant) and duplicated frequency estimates are moved
// from the original to the copy. Returns blocks duplicated and
// instructions added.
func (xp *xproc) tailDup(opts Options) (dups, grown int) {
	budget := int(opts.TailDupGrowth * float64(countInstrs(xp.reachable())))
	for {
		live := xp.reachable()
		np := preds(live)
		var best *xblock
		bestFreq := opts.TailDupMinFreq - 1
		for _, b := range live {
			if b.term().Op != ir.Jmp {
				continue
			}
			t := b.succs[0]
			if t == xp.entry || t == xp.exit || t == b || np[t] < 2 {
				continue
			}
			if len(t.instrs) > opts.TailDupMaxBlock || len(t.instrs)-1 > budget {
				continue
			}
			if b.ef[0] > bestFreq {
				bestFreq = b.ef[0]
				best = b
			}
		}
		if best == nil {
			return dups, grown
		}
		t := best.succs[0]
		share := best.ef[0]
		off := len(best.instrs) - 1 // the deleted jump's slot
		best.instrs = append(best.instrs[:len(best.instrs)-1:len(best.instrs)-1], t.instrs...)
		best.succs = slices.Clone(t.succs)
		best.ef = make([]int64, len(t.ef))
		// The copy inherits the duplicated body's seams; the side-entrance
		// original keeps its own.
		best.wevents = append(best.wevents, shiftEvents(t.wevents, off)...)
		// Move the duplicated traffic's share of t's outgoing estimates to
		// the copy, proportionally.
		for i, f := range t.ef {
			moved := int64(0)
			if t.freq > 0 {
				moved = f * share / t.freq
			}
			best.ef[i] = moved
			t.ef[i] = max(0, f-moved)
		}
		t.freq = max(0, t.freq-share)
		added := len(t.instrs) - 1
		budget -= added
		grown += added
		dups++
	}
}
