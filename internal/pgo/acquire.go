package pgo

import (
	"fmt"

	"pathprof/internal/analysis"
	"pathprof/internal/cct"
	"pathprof/internal/instrument"
	"pathprof/internal/ir"
	"pathprof/internal/profile"
	"pathprof/internal/sim"
)

// Profile acquisition: the single entry point that turns a program into
// the profile data every optimization decision reads. Two instrumented
// runs — a Ball-Larus path-frequency run (exact edge frequencies by path
// regeneration) and a CCT run (per-context call counts for inlining) —
// replace the old ad-hoc edge-count collection that used to live in
// internal/instrument.

// SiteKey names one static call site: the calling procedure and the site's
// index in the instrumentation convention (blocks in original order
// starting after the entry, the entry block's sites last, calls in
// instruction order within a block).
type SiteKey struct {
	Caller int
	Site   int
}

// ProfileData is everything Acquire measures about one program on one
// input, in the shapes the optimizer consumes.
type ProfileData struct {
	// Profile is the Ball-Larus path profile from the path-frequency run.
	Profile *profile.Profile
	// Tree is the calling-context tree from the CCT run.
	Tree *cct.Tree
	// Edges holds per-procedure exact edge frequencies projected from the
	// path profile, keyed on each procedure's original CFG.
	Edges []analysis.EdgeFreq
	// Placement holds the same frequencies keyed on the entry-split CFG —
	// the form instrument.Options.ProfiledFreqs wants for profile-guided
	// counter placement when the optimized program is re-instrumented.
	Placement []instrument.EdgeFreqs
	// SiteCalls counts calls per static site, split by callee procedure
	// (context-sensitive: summed over every CCT context of the caller).
	SiteCalls map[SiteKey]map[int]int64
	// Calls counts invocations per procedure (CCT Metrics[0] sums).
	Calls []int64
}

// AcquireOptions tunes profile acquisition.
type AcquireOptions struct {
	// K is the path iteration degree for the path-frequency run (see
	// bl.ExtendK). Edge-frequency projection is degree-invariant — a k>1
	// profile projects to exactly the classic edge counts — so any K yields
	// the same optimizer decisions; the retained Profile simply carries
	// k-path resolution. 0 or 1 selects classic Ball-Larus paths.
	K int
}

// Acquire profiles prog on the given simulator configuration and returns
// the data the optimizer needs. The program itself is not modified (the
// instrumenter works on clones).
func Acquire(prog *ir.Program, simCfg sim.Config) (*ProfileData, error) {
	return AcquireWith(prog, simCfg, AcquireOptions{})
}

// AcquireWith is Acquire with explicit acquisition options.
func AcquireWith(prog *ir.Program, simCfg sim.Config, aopts AcquireOptions) (*ProfileData, error) {
	data := &ProfileData{
		Edges:     make([]analysis.EdgeFreq, len(prog.Procs)),
		Placement: make([]instrument.EdgeFreqs, len(prog.Procs)),
		SiteCalls: make(map[SiteKey]map[int]int64),
		Calls:     make([]int64, len(prog.Procs)),
	}

	// Run 1: path frequencies → exact edge frequencies.
	popts := instrument.DefaultOptions(instrument.ModePathFreq)
	if aopts.K > 1 {
		popts.K = aopts.K
	}
	pathPlan, err := instrument.Instrument(prog, popts)
	if err != nil {
		return nil, fmt.Errorf("pgo: path instrumentation: %w", err)
	}
	m := sim.New(pathPlan.Prog, simCfg)
	rt := pathPlan.Wire(m)
	if _, err := m.Run(); err != nil {
		return nil, fmt.Errorf("pgo: path profiling run: %w", err)
	}
	data.Profile = rt.ExtractProfile()
	for _, pp := range pathPlan.Procs {
		if pp.Numbering == nil {
			continue
		}
		procPaths := data.Profile.Proc(pp.ProcID)
		if procPaths == nil {
			continue
		}
		split, err := analysis.ProjectEdgeFrequencies(procPaths, pp.Numbering)
		if err != nil {
			return nil, fmt.Errorf("pgo: %w", err)
		}
		data.Placement[pp.ProcID] = instrument.EdgeFreqs(split)
		data.Edges[pp.ProcID] = analysis.ToOriginalCFG(split, pp.BaseBlocks)
	}

	// Run 2: calling-context tree → per-site, per-callee call counts.
	cctPlan, err := instrument.Instrument(prog, instrument.DefaultOptions(instrument.ModeContextHW))
	if err != nil {
		return nil, fmt.Errorf("pgo: cct instrumentation: %w", err)
	}
	m2 := sim.New(cctPlan.Prog, simCfg)
	rt2 := cctPlan.Wire(m2)
	if _, err := m2.Run(); err != nil {
		return nil, fmt.Errorf("pgo: cct profiling run: %w", err)
	}
	data.Tree = rt2.Tree
	data.Tree.Walk(func(n *cct.Node) {
		if len(n.Metrics) > 0 {
			data.Calls[n.Proc] += n.Metrics[0]
		}
		for _, sv := range n.Slots() {
			for _, ch := range sv.Children {
				key := SiteKey{Caller: n.Proc, Site: sv.Site}
				per := data.SiteCalls[key]
				if per == nil {
					per = make(map[int]int64)
					data.SiteCalls[key] = per
				}
				if len(ch.Metrics) > 0 {
					per[ch.Proc] += ch.Metrics[0]
				}
			}
			// Recursed edges lead back to an ancestor activation: the
			// callee necessarily has a call on the stack, so it can never
			// be a leaf-inline candidate; skipping them here loses nothing.
		}
	})
	return data, nil
}

// callSite locates one call instruction in a procedure.
type callSite struct {
	Block ir.BlockID
	Index int // instruction index within the block
	Op    ir.Opcode
	// Callee is the static callee procedure index for direct calls, -1 for
	// indirect ones.
	Callee int
}

// callSites enumerates a procedure's call instructions in the site-index
// convention shared with the CCT instrumentation, so SiteCalls keys line
// up: the instrumenter splits the entry, making the original entry block
// the last block it scans — original blocks 1..n-1 first, block 0 last,
// instruction order within each block.
func callSites(p *ir.Proc) []callSite {
	var sites []callSite
	scan := func(b *ir.Block) {
		for i, in := range b.Instrs {
			if in.Op.IsCall() {
				callee := -1
				if in.Op == ir.Call {
					callee = int(in.Imm)
				}
				sites = append(sites, callSite{Block: b.ID, Index: i, Op: in.Op, Callee: callee})
			}
		}
	}
	for _, b := range p.Blocks[1:] {
		scan(b)
	}
	scan(p.Blocks[0])
	return sites
}
