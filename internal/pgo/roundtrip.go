package pgo

import (
	"fmt"
	"slices"
	"strings"

	"pathprof/internal/hpm"
	"pathprof/internal/instrument"
	"pathprof/internal/ir"
	"pathprof/internal/mem"
	"pathprof/internal/sim"
	"pathprof/internal/tv"
)

// The round-trip driver: profile → optimize → verify → re-profile. Every
// candidate option set is built, statically validated against its
// translation-validation witness, run to completion, and checked for
// byte-identical output and final memory against the baseline — an
// equivalence failure is a hard error, never a silent fallback. Among the
// candidates that do not regress any gated metric, the one with the fewest
// simulated cycles wins; the unmodified program is always a candidate, so
// a winner always exists and never regresses the baseline.

// Metrics are the simulated measurements the optimizer is judged on.
type Metrics struct {
	Cycles      uint64 `json:"cycles"`
	Instrs      uint64 `json:"instrs"`
	ICacheMiss  uint64 `json:"icache_miss"`
	Mispredicts uint64 `json:"mispredicts"`
	DCacheMiss  uint64 `json:"dcache_miss"`
}

func metricsOf(res sim.Result) Metrics {
	return Metrics{
		Cycles:      res.Cycles,
		Instrs:      res.Instrs,
		ICacheMiss:  res.Totals[hpm.EvICacheMiss],
		Mispredicts: res.Totals[hpm.EvMispredict],
		DCacheMiss:  res.Totals[hpm.EvDCacheMiss],
	}
}

// Candidate is one evaluated option set.
type Candidate struct {
	Name    string
	Metrics Metrics
	Stats   *Stats
}

// Result is one program's complete round trip.
type Result struct {
	// Before/After are the uninstrumented baseline and winning rewrite.
	Before, After Metrics
	// Winner names the winning candidate ("identity" when no rewrite beat
	// the baseline without regressing a gated metric).
	Winner string
	// Candidates lists every evaluated option set, in ladder order.
	Candidates []Candidate
	// Stats describes the winning rewrite (nil for identity).
	Stats *Stats
	// Optimized is the winning program.
	Optimized *ir.Program
	// ProfileBefore/ProfileAfter are the instrumented (ModePathFreq)
	// cycle counts of original and winning program — the re-profile leg,
	// showing the optimized program still profiles and what profiling
	// costs on it.
	ProfileBefore, ProfileAfter uint64
}

// LadderCandidate is one named option subset in the evaluation ladder.
type LadderCandidate struct {
	Name string
	Opts Options
}

// Ladder returns the candidate option sets in evaluation order: the full
// pipeline first, then progressively safer subsets, so the winner
// gracefully degrades when an aggressive transform regresses a gated
// metric on some workload.
func Ladder(opts Options) []LadderCandidate {
	full := opts
	noDup := full
	noDup.TailDup = false
	noDupNoInl := noDup
	noDupNoInl.Inline = false
	layoutOnly := Options{ThreadJumps: true, MergeBlocks: true, Reorder: opts.Reorder, ColdOutline: opts.ColdOutline}
	threadOnly := Options{ThreadJumps: true, MergeBlocks: true}
	return []LadderCandidate{
		{"full", full},
		{"no-taildup", noDup},
		{"thread+merge+layout", layoutOnly},
		{"no-taildup-no-inline", noDupNoInl},
		{"thread+merge", threadOnly},
	}
}

// CandidateError reports which ladder candidate failed, at which stage
// ("optimize", "validate", "run", "output", "memory"), with the static
// findings when translation validation rejected the rewrite. RoundTrip's
// callers wrap it with the workload name, so the full failure reads
// workload → candidate → stage → findings.
type CandidateError struct {
	Candidate string       // ladder candidate name ("full", "no-taildup", ...)
	Stage     string       // which leg of the verification failed
	Findings  []tv.Finding // static validator findings (Stage "validate")
	Err       error        // underlying error, when there is one
}

func (e *CandidateError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pgo: candidate %s: %s failed", e.Candidate, e.Stage)
	if e.Err != nil {
		fmt.Fprintf(&sb, ": %v", e.Err)
	}
	for _, f := range e.Findings {
		fmt.Fprintf(&sb, "\n  %s", f)
	}
	return sb.String()
}

func (e *CandidateError) Unwrap() error { return e.Err }

// runPlain executes an uninstrumented program and returns its metrics,
// output stream and final memory image.
func runPlain(prog *ir.Program, simCfg sim.Config) (Metrics, []int64, *mem.Memory, error) {
	m := sim.New(prog, simCfg)
	res, err := m.Run()
	if err != nil {
		return Metrics{}, nil, nil, err
	}
	return metricsOf(res), res.Output, m.Mem(), nil
}

// profiledCycles instruments prog for path frequencies (using placement
// when provided) and returns the instrumented run's cycle count.
func profiledCycles(prog *ir.Program, simCfg sim.Config, placement []instrument.EdgeFreqs) (uint64, error) {
	opts := instrument.DefaultOptions(instrument.ModePathFreq)
	opts.ProfiledFreqs = placement
	plan, err := instrument.Instrument(prog, opts)
	if err != nil {
		return 0, err
	}
	m := sim.New(plan.Prog, simCfg)
	plan.Wire(m)
	res, err := m.Run()
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// RoundTrip profiles prog, optimizes it under every ladder candidate,
// statically validates each rewrite against its witness (internal/tv),
// verifies each rewrite's architectural equivalence (outputs and final
// memory byte-identical to the baseline), and picks the cycle-minimal
// candidate whose I-cache misses and branch mispredicts do not exceed the
// baseline's. The re-profile leg then instruments the winner — with
// profile-guided counter placement from the acquisition run — and records
// instrumented cycles before and after.
func RoundTrip(prog *ir.Program, simCfg sim.Config, opts Options) (*Result, error) {
	base, baseOut, baseMem, err := runPlain(prog, simCfg)
	if err != nil {
		return nil, fmt.Errorf("pgo: baseline run: %w", err)
	}
	data, err := Acquire(prog, simCfg)
	if err != nil {
		return nil, err
	}

	res := &Result{Before: base, After: base, Winner: "identity", Optimized: prog}
	for _, cand := range Ladder(opts) {
		optimized, w, stats, err := OptimizeTV(prog, data, cand.Opts)
		if err != nil {
			return nil, &CandidateError{Candidate: cand.Name, Stage: "optimize", Err: err}
		}
		// The static gate: the rewrite must be proved semantics-preserving
		// from its witness before it is allowed anywhere near the simulator.
		// The runtime byte-equivalence checks below remain as a differential
		// backstop behind this proof.
		if findings := tv.Validate(prog, optimized, w); len(findings) > 0 {
			return nil, &CandidateError{Candidate: cand.Name, Stage: "validate", Findings: findings}
		}
		m, out, memory, err := runPlain(optimized, simCfg)
		if err != nil {
			return nil, &CandidateError{Candidate: cand.Name, Stage: "run", Err: err}
		}
		if !slices.Equal(out, baseOut) {
			return nil, &CandidateError{Candidate: cand.Name, Stage: "output",
				Err: fmt.Errorf("output diverges from baseline")}
		}
		if !mem.Equal(memory, baseMem) {
			addr, av, bv, _ := mem.DiffWord(memory, baseMem)
			return nil, &CandidateError{Candidate: cand.Name, Stage: "memory",
				Err: fmt.Errorf("memory diverges at %#x (%d vs %d)", addr, av, bv)}
		}
		res.Candidates = append(res.Candidates, Candidate{Name: cand.Name, Metrics: m, Stats: stats})
		if m.Cycles < res.After.Cycles &&
			m.ICacheMiss <= base.ICacheMiss &&
			m.Mispredicts <= base.Mispredicts {
			res.After = m
			res.Winner = cand.Name
			res.Stats = stats
			res.Optimized = optimized
		}
	}

	if res.ProfileBefore, err = profiledCycles(prog, simCfg, nil); err != nil {
		return nil, fmt.Errorf("pgo: re-profile baseline: %w", err)
	}
	// Re-profiling the winner uses the acquisition run's measured
	// frequencies for counter placement only when the CFGs still line up
	// (identity winner); rewritten programs get the static heuristic.
	var placement []instrument.EdgeFreqs
	if res.Winner == "identity" {
		placement = data.Placement
	}
	if res.ProfileAfter, err = profiledCycles(res.Optimized, simCfg, placement); err != nil {
		return nil, fmt.Errorf("pgo: re-profile optimized: %w", err)
	}
	return res, nil
}
