package pgo

import (
	"sort"

	"pathprof/internal/analysis"
	"pathprof/internal/cfg"
	"pathprof/internal/dataflow"
	"pathprof/internal/ir"
	"pathprof/internal/tv"
)

// Context-sensitive inlining of hot call edges. The CCT tells us, per
// static site, how many calls went to which callee across every calling
// context; sites whose measured traffic clears opts.InlineMinCalls get
// their (leaf) callee body spliced in, eliminating the call/return
// activation machinery on the hot path. Register pressure is handled with
// liveness: the callee's registers map onto caller registers that are dead
// across the call, with explicit copies only where an argument register is
// both overwritten by the callee and still live in the caller.
//
// The pass must run first on a procedure's pipeline: site indices and
// liveness facts are computed against the pristine procedure, and remain
// valid under the application order used here (per-block, descending
// instruction index — earlier sites stay at their original positions, and
// an inlined region neither reads registers the call instruction did not
// already read nor leaves its own scratch registers live).

// inlineCand is one chosen site.
type inlineCand struct {
	order  int // site index, for deterministic tie-breaks
	site   callSite
	callee *ir.Proc
	calls  int64
}

// inlinable reports whether callee's body can be spliced into another
// procedure: a leaf (no calls — also excludes recursion), small enough,
// and free of instructions whose semantics depend on the activation or
// machine state we would be eliding (setjmp captures, counter accesses,
// probes, cycle reads).
func inlinable(callee *ir.Proc, opts Options) bool {
	n := 0
	for _, b := range callee.Blocks {
		n += len(b.Instrs)
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.Call, ir.CallInd, ir.SetJmp, ir.LongJmp,
				ir.Probe, ir.RdPIC, ir.WrPIC, ir.RdTick, ir.Halt:
				return false
			}
		}
	}
	return n <= opts.InlineMaxInstrs
}

// inlinePass splices hot leaf callees into xp. prog is the pristine input
// program: callee bodies, the caller's liveness, and site indices all come
// from it, so the pass is independent of what other procedures' pipelines
// have done. Returns sites inlined and instructions added.
func (xp *xproc) inlinePass(prog *ir.Program, data *ProfileData, opts Options) (count, grown int) {
	caller := prog.Procs[xp.proc.ID]
	for _, b := range caller.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.SetJmp {
				// A longjmp can resume mid-procedure here through edges the
				// CFG does not show; the liveness facts below would be
				// unsound, so leave this caller alone.
				return 0, 0
			}
		}
	}

	var cands []inlineCand
	for i, s := range callSites(caller) {
		if s.Op != ir.Call || s.Callee == caller.ID {
			continue
		}
		callee := prog.Procs[s.Callee]
		if !inlinable(callee, opts) {
			continue
		}
		calls := data.SiteCalls[SiteKey{Caller: caller.ID, Site: i}][s.Callee]
		if calls < opts.InlineMinCalls {
			continue
		}
		cands = append(cands, inlineCand{order: i, site: s, callee: callee, calls: calls})
	}
	if len(cands) == 0 {
		return 0, 0
	}

	// Spend the growth budget on the hottest sites first.
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].calls != cands[j].calls {
			return cands[i].calls > cands[j].calls
		}
		return cands[i].order < cands[j].order
	})
	budget := int(opts.InlineGrowth * float64(countInstrsProc(caller)))
	var chosen []inlineCand
	for _, c := range cands {
		cost := countInstrsProc(c.callee) + 8 // body + prologue/jump estimate
		if cost > budget {
			continue
		}
		budget -= cost
		chosen = append(chosen, c)
	}
	if len(chosen) == 0 {
		return 0, 0
	}

	// Apply per block in descending instruction index, so remaining sites
	// keep their (block, index) addresses.
	sort.SliceStable(chosen, func(i, j int) bool {
		if chosen[i].site.Block != chosen[j].site.Block {
			return chosen[i].site.Block < chosen[j].site.Block
		}
		return chosen[i].site.Index > chosen[j].site.Index
	})
	live := dataflow.Liveness(caller)
	used := caller.UsedRegs()
	for _, c := range chosen {
		if added, ok := xp.inlineOne(caller, live, used, data, c, opts); ok {
			count++
			grown += added
		}
	}
	return count, grown
}

func countInstrsProc(p *ir.Proc) int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// inlineOne splices one callee body in place of the call at c.site.
// Returns false (leaving the site untouched) when no register assignment
// exists within the caps.
func (xp *xproc) inlineOne(caller *ir.Proc, live *dataflow.LivenessResult, used [ir.NumRegs]bool, data *ProfileData, c inlineCand, opts Options) (int, bool) {
	callee := c.callee
	liveAfter := live.LiveAfter(caller, c.site.Block, c.site.Index)

	// Classify the callee's register traffic.
	var reads, writes dataflow.RegSet
	for _, b := range callee.Blocks {
		for _, in := range b.Instrs {
			reads |= dataflow.Uses(in)
			writes |= dataflow.Defs(in)
		}
	}
	usedRegs := reads | writes
	isArg := func(r ir.Reg) bool { return r >= ir.RegArg0 && r < ir.RegArg0+ir.NumArgRegs }

	// Build the register mapping. Identity except where the convention
	// demands otherwise: R1 and SP are copied back by Ret, so identity is
	// exactly right; other argument registers the callee overwrites must
	// be relocated when the caller still needs them; callee-private
	// registers start at zero in a fresh activation and need explicit
	// zeroing, on a caller register that is dead across the call.
	var mapping [ir.NumRegs]ir.Reg
	for r := range mapping {
		mapping[r] = ir.Reg(r)
	}
	var targets dataflow.RegSet
	var copyIn, zeroInit []ir.Reg // callee regs needing a fresh target
	for r := ir.Reg(0); r < ir.NumRegs; r++ {
		if !usedRegs.Has(r) {
			continue
		}
		switch {
		case r == ir.RegSP || r == ir.RegRV:
			targets = targets.Add(r)
		case isArg(r):
			if writes.Has(r) && liveAfter.Has(r) {
				copyIn = append(copyIn, r)
			} else {
				targets = targets.Add(r)
			}
		default:
			if r != 0 && !liveAfter.Has(r) && !targets.Has(r) &&
				(used[r] || r <= opts.MaxInlineReg) {
				targets = targets.Add(r)
				zeroInit = append(zeroInit, r)
			} else {
				copyIn = append(copyIn, r) // fresh target, zero-initialized
			}
		}
	}
	// Fresh targets may not collide with identity-mapped registers, other
	// targets, live caller registers, or argument registers the prologue
	// still needs to read.
	forbidden := targets | liveAfter
	forbidden = forbidden.Add(ir.RegSP).Add(ir.RegRV).Add(0)
	for r := ir.RegArg0; r < ir.RegArg0+ir.NumArgRegs; r++ {
		if reads.Has(r) {
			forbidden = forbidden.Add(r)
		}
	}
	pickFresh := func() (ir.Reg, bool) {
		// Prefer registers the caller already uses (keeps the procedure's
		// register footprint — and the instrumenter's headroom — intact),
		// then untouched ones up to the cap.
		for pass := 0; pass < 2; pass++ {
			for r := ir.Reg(1); r < ir.NumRegs; r++ {
				if forbidden.Has(r) {
					continue
				}
				if pass == 0 && !used[r] {
					continue
				}
				if pass == 1 && (used[r] || r > opts.MaxInlineReg) {
					continue
				}
				forbidden = forbidden.Add(r)
				return r, true
			}
		}
		return 0, false
	}
	var prologue []ir.Instr
	for _, r := range copyIn {
		f, ok := pickFresh()
		if !ok {
			return 0, false
		}
		mapping[r] = f
		if isArg(r) {
			prologue = append(prologue, ir.Instr{Op: ir.Mov, Rd: f, Rs: r})
		} else {
			prologue = append(prologue, ir.Instr{Op: ir.MovI, Rd: f, Imm: 0})
		}
	}
	for _, r := range zeroInit {
		prologue = append(prologue, ir.Instr{Op: ir.MovI, Rd: r, Imm: 0})
	}

	// Frequency estimates for the spliced blocks: the callee's own profile
	// scaled by this site's share of its invocations.
	calleeEF := data.Edges[callee.ID]
	var calleeFreqs []int64
	if calleeEF != nil {
		calleeFreqs = analysis.BlockFrequencies(callee, calleeEF)
	}
	total := max(data.Calls[callee.ID], 1)
	scale := func(v int64) int64 { return v * c.calls / total }

	// Split the call block: b keeps the prefix and jumps into the spliced
	// entry; cont picks up at the instruction after the call.
	b := xp.blocks[int(c.site.Block)]
	idx := c.site.Index
	cont := xp.add(&xblock{
		instrs:  append([]ir.Instr(nil), b.instrs[idx+1:]...),
		succs:   b.succs,
		ef:      b.ef,
		freq:    b.freq,
		wanchor: tv.Point{Block: c.site.Block, Idx: idx + 1},
	})
	// Witness seams after the call move to the continuation, re-based on
	// its first instruction; earlier seams stay with the prefix.
	var keep []tv.InlineEvent
	for _, ev := range b.wevents {
		if ev.OptIdx > idx {
			ev.OptIdx -= idx + 1
			cont.wevents = append(cont.wevents, ev)
		} else {
			keep = append(keep, ev)
		}
	}
	b.wevents = keep
	if xp.exit == b {
		xp.exit = cont
	}

	rename := func(in ir.Instr) ir.Instr {
		in.Rd = mapping[in.Rd]
		in.Rs = mapping[in.Rs]
		in.Rt = mapping[in.Rt]
		return in
	}
	frame := tv.Frame{Callee: callee.ID, RetBlock: c.site.Block, RetIdx: idx + 1, Map: mapping}
	copies := make([]*xblock, len(callee.Blocks))
	for i, cb := range callee.Blocks {
		x := &xblock{
			instrs:  make([]ir.Instr, len(cb.Instrs)),
			wanchor: tv.Point{Frames: []tv.Frame{frame}, Block: cb.ID, Idx: 0},
		}
		for k, in := range cb.Instrs {
			x.instrs[k] = rename(in)
		}
		if calleeFreqs != nil {
			x.freq = scale(calleeFreqs[i])
		}
		copies[i] = xp.add(x)
	}
	for i, cb := range callee.Blocks {
		x := copies[i]
		if cb.Term().Op == ir.Ret {
			x.instrs[len(x.instrs)-1] = ir.Instr{Op: ir.Jmp}
			x.succs = []*xblock{cont}
			x.ef = []int64{x.freq}
			continue
		}
		x.succs = make([]*xblock, len(cb.Succs))
		x.ef = make([]int64, len(cb.Succs))
		for slot, s := range cb.Succs {
			x.succs[slot] = copies[s]
			if calleeEF != nil {
				x.ef[slot] = scale(calleeEF[cfg.Edge{From: cb.ID, To: s, Slot: slot}])
			}
		}
	}

	b.instrs = append(b.instrs[:idx:idx], prologue...)
	b.instrs = append(b.instrs, ir.Instr{Op: ir.Jmp})
	b.succs = []*xblock{copies[0]}
	b.ef = []int64{c.calls}
	b.wevents = append(b.wevents, tv.InlineEvent{
		OptIdx:   idx,
		Prologue: len(prologue),
		Callee:   callee.ID,
		Map:      mapping,
	})
	added := len(prologue) + 1 + countInstrs(copies)
	return added, true
}
