package pgo

import (
	"testing"

	"pathprof/internal/ir"
	"pathprof/internal/sim"
	"pathprof/internal/workload"
)

// TestOptimizeDeterministic re-runs the full pipeline and requires the
// printed programs to be identical: every choice (layout chains, tail-dup
// picks, inline order, fresh registers) must have a stable tie-break.
func TestOptimizeDeterministic(t *testing.T) {
	for _, name := range []string{"interp", "compress", "objdb"} {
		w, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("no workload %q", name)
		}
		prog := w.Build(workload.Test)
		data, err := Acquire(prog, sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		first, _, err := Optimize(prog, data, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			again, _, err := Optimize(prog, data, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if again.String() != first.String() {
				t.Fatalf("%s: run %d produced a different program", name, i)
			}
		}
	}
}

// TestOptimizeTimingSensitive: programs that read the cycle counter must
// come back untouched, with the reason recorded.
func TestOptimizeTimingSensitive(t *testing.T) {
	w, _ := workload.ByName("interp")
	prog := w.Build(workload.Test)
	entry := prog.Procs[prog.Main].Blocks[0]
	entry.Instrs = append([]ir.Instr{{Op: ir.RdTick, Rd: 9}}, entry.Instrs...)
	data, err := Acquire(prog, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opt, stats, err := Optimize(prog, data, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped == "" {
		t.Fatal("expected Skipped reason for RdTick program")
	}
	if opt.String() != prog.String() {
		t.Fatal("timing-sensitive program was modified")
	}
}

// TestOptimizeZeroOptions: with everything disabled the program is
// renumbered through commit but must stay behaviorally identical and
// report zero work.
func TestOptimizeZeroOptions(t *testing.T) {
	w, _ := workload.ByName("strhash")
	prog := w.Build(workload.Test)
	data, err := Acquire(prog, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opt, stats, err := Optimize(prog, data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Threaded+stats.Merged+stats.Duplicated+stats.Inlined+stats.Outlined != 0 {
		t.Fatalf("zero options did work: %v", stats)
	}
	if errs := ir.ValidateAll(opt); len(errs) > 0 {
		t.Fatalf("invalid: %v", errs[0])
	}
}
