package pgo

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"pathprof/internal/ir"
	"pathprof/internal/mem"
	"pathprof/internal/sim"
	"pathprof/internal/testgen"
)

// Randomized differential testing: generated programs — including
// recursive, indirectly-calling, memory-heavy and setjmp/longjmp shapes —
// are profiled, optimized under every variant, and checked for
// byte-identical behavior. Seeds are fixed so failures replay.

func fuzzShapes() []testgen.ProgramOptions {
	return []testgen.ProgramOptions{
		{NumProcs: 3, BlocksPer: 6},
		{NumProcs: 5, BlocksPer: 8, Recursion: true},
		{NumProcs: 4, BlocksPer: 6, IndirectCalls: true, Memory: true},
		{NumProcs: 5, BlocksPer: 10, Recursion: true, Memory: true},
		{NumProcs: 4, BlocksPer: 7, NonLocal: true, Memory: true},
		{NumProcs: 6, BlocksPer: 9, Recursion: true, IndirectCalls: true, NonLocal: true},
	}
}

func TestOptimizeRandomPrograms(t *testing.T) {
	const seedsPerShape = 8
	for si, shape := range fuzzShapes() {
		for seed := int64(0); seed < seedsPerShape; seed++ {
			si, shape, seed := si, shape, seed
			t.Run(fmt.Sprintf("shape%d-seed%d", si, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed*1000 + int64(si)))
				prog := testgen.RandomProgram(rng, fmt.Sprintf("rp%d_%d", si, seed), shape)
				checkOptimizeEquivalence(t, prog)
			})
		}
	}
}

// checkOptimizeEquivalence runs prog, acquires its profile, and verifies
// every optimization variant reproduces the baseline exactly.
func checkOptimizeEquivalence(t *testing.T, prog *ir.Program) {
	t.Helper()
	if errs := ir.ValidateAll(prog); len(errs) > 0 {
		t.Fatalf("generated program invalid: %v", errs[0])
	}
	_, baseOut, baseMem, err := runPlain(prog, sim.DefaultConfig())
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	data, err := Acquire(prog, sim.DefaultConfig())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	for _, v := range variants() {
		opt, _, err := Optimize(prog, data, v.Opts)
		if err != nil {
			t.Fatalf("%s: optimize: %v", v.Name, err)
		}
		if errs := ir.ValidateAll(opt); len(errs) > 0 {
			t.Fatalf("%s: optimized program invalid: %v", v.Name, errs[0])
		}
		_, out, memory, err := runPlain(opt, sim.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: optimized run: %v", v.Name, err)
		}
		if !slices.Equal(out, baseOut) {
			t.Fatalf("%s: output diverges", v.Name)
		}
		if !mem.Equal(memory, baseMem) {
			addr, av, bv, _ := mem.DiffWord(memory, baseMem)
			t.Fatalf("%s: memory diverges at %#x: %d vs %d", v.Name, addr, av, bv)
		}
	}
}

// FuzzOptimize lets the fuzzer explore seeds and shape bits beyond the
// fixed table above.
func FuzzOptimize(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(42), uint8(0x1f))
	f.Add(int64(7), uint8(0x0a))
	f.Fuzz(func(t *testing.T, seed int64, bits uint8) {
		shape := testgen.ProgramOptions{
			NumProcs:      2 + int(bits&0x3),
			BlocksPer:     4 + int(bits>>2&0x7),
			Recursion:     bits&0x20 != 0,
			IndirectCalls: bits&0x40 != 0,
			NonLocal:      bits&0x80 != 0,
			Memory:        true,
		}
		rng := rand.New(rand.NewSource(seed))
		prog := testgen.RandomProgram(rng, "fuzz", shape)
		checkOptimizeEquivalence(t, prog)
	})
}
