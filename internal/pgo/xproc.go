// Package pgo closes the profile→optimize→re-profile loop: it consumes the
// exact Ball-Larus path profiles and calling-context trees the rest of the
// system produces and rewrites program IR to run faster on the simulated
// machine — jump threading and block merging along measured-hot edges,
// superblock formation by bounded tail duplication, Pettis–Hansen-style
// fall-through chaining with cold-block outlining, and context-sensitive
// inlining of hot leaf call edges. Every transform preserves architectural
// semantics; the round-trip driver verifies output equivalence and measured
// speedup on the simulator before accepting a rewrite.
package pgo

import (
	"fmt"

	"pathprof/internal/analysis"
	"pathprof/internal/cfg"
	"pathprof/internal/ir"
	"pathprof/internal/tv"
)

// xblock is a basic block under transformation: instructions (terminator
// last), successor pointers instead of IDs, and profile estimates. Pointer
// successors let transforms splice, duplicate and drop blocks freely; IDs
// are assigned once at commit.
//
// Each block also carries its translation-validation witness: the original
// program point its first instruction implements (wanchor) and the inline
// seams inside it (wevents). Transforms maintain both as they splice, so
// commit can hand internal/tv a complete proof outline for free.
type xblock struct {
	instrs []ir.Instr
	succs  []*xblock
	ef     []int64 // per-successor edge execution counts (estimates)
	freq   int64   // block execution count (estimate)
	pos    int     // creation order, the deterministic tie-break everywhere

	wanchor tv.Point
	wevents []tv.InlineEvent
}

// shiftEvents relocates witness events spliced in at instruction offset
// off of their new block.
func shiftEvents(evs []tv.InlineEvent, off int) []tv.InlineEvent {
	if len(evs) == 0 {
		return nil
	}
	out := make([]tv.InlineEvent, len(evs))
	for i, ev := range evs {
		ev.OptIdx += off
		out[i] = ev
	}
	return out
}

func (x *xblock) term() ir.Instr { return x.instrs[len(x.instrs)-1] }

// bareJump reports whether the block is a single unconditional jump — no
// effects, safe to bypass.
func (x *xblock) bareJump() bool {
	return len(x.instrs) == 1 && x.instrs[0].Op == ir.Jmp
}

// xproc is one procedure's mutable CFG. blocks holds every block ever
// created in creation order; unreachable ones are dropped at commit.
type xproc struct {
	proc   *ir.Proc // the clone that commit rewrites
	entry  *xblock
	exit   *xblock
	blocks []*xblock
}

// newXproc lifts a procedure into pointer form, attaching measured edge
// frequencies (keyed on this procedure's CFG; nil means an unexecuted or
// unprofiled procedure — all estimates zero).
func newXproc(p *ir.Proc, ef analysis.EdgeFreq) *xproc {
	xp := &xproc{proc: p}
	xs := make([]*xblock, len(p.Blocks))
	var freqs []int64
	if ef != nil {
		freqs = analysis.BlockFrequencies(p, ef)
	}
	for i, b := range p.Blocks {
		x := &xblock{
			instrs:  append([]ir.Instr(nil), b.Instrs...),
			pos:     i,
			wanchor: tv.Point{Block: b.ID},
		}
		if freqs != nil {
			x.freq = freqs[i]
		}
		xs[i] = x
	}
	for i, b := range p.Blocks {
		x := xs[i]
		x.succs = make([]*xblock, len(b.Succs))
		x.ef = make([]int64, len(b.Succs))
		for slot, s := range b.Succs {
			x.succs[slot] = xs[s]
			if ef != nil {
				x.ef[slot] = ef[cfg.Edge{From: b.ID, To: s, Slot: slot}]
			}
		}
	}
	xp.blocks = xs
	xp.entry = xs[0]
	xp.exit = xs[p.ExitBlock]
	return xp
}

// add appends a newly created block (giving it the next creation position).
func (xp *xproc) add(x *xblock) *xblock {
	x.pos = len(xp.blocks)
	xp.blocks = append(xp.blocks, x)
	return x
}

// reachable returns the blocks reachable from entry in deterministic
// depth-first order (successor slot order, entry first).
func (xp *xproc) reachable() []*xblock {
	seen := make(map[*xblock]bool, len(xp.blocks))
	var order []*xblock
	var rec func(x *xblock)
	rec = func(x *xblock) {
		if seen[x] {
			return
		}
		seen[x] = true
		order = append(order, x)
		for _, s := range x.succs {
			rec(s)
		}
	}
	rec(xp.entry)
	return order
}

// preds counts predecessors among the given blocks.
func preds(blocks []*xblock) map[*xblock]int {
	n := make(map[*xblock]int, len(blocks))
	for _, b := range blocks {
		for _, s := range b.succs {
			n[s]++
		}
	}
	return n
}

// countInstrs totals instructions over the given blocks.
func countInstrs(blocks []*xblock) int {
	n := 0
	for _, b := range blocks {
		n += len(b.instrs)
	}
	return n
}

// commit writes the blocks back into the procedure in the given order,
// which must start with the entry and contain exactly the reachable set.
// Block IDs are assigned by position; successor pointers become IDs.
func (xp *xproc) commit(order []*xblock) error {
	if len(order) == 0 || order[0] != xp.entry {
		return fmt.Errorf("pgo: %s: commit order must start with the entry", xp.proc.Name)
	}
	id := make(map[*xblock]int, len(order))
	for i, x := range order {
		if _, dup := id[x]; dup {
			return fmt.Errorf("pgo: %s: block %d appears twice in commit order", xp.proc.Name, x.pos)
		}
		id[x] = i
	}
	p := xp.proc
	p.Blocks = make([]*ir.Block, len(order))
	for i, x := range order {
		b := &ir.Block{
			ID:     ir.BlockID(i),
			Instrs: x.instrs,
			Succs:  make([]ir.BlockID, len(x.succs)),
		}
		for slot, s := range x.succs {
			si, ok := id[s]
			if !ok {
				return fmt.Errorf("pgo: %s: successor of block %d missing from commit order", p.Name, x.pos)
			}
			b.Succs[slot] = ir.BlockID(si)
		}
		p.Blocks[i] = b
	}
	ei, ok := id[xp.exit]
	if !ok {
		return fmt.Errorf("pgo: %s: exit block missing from commit order", p.Name)
	}
	p.ExitBlock = ir.BlockID(ei)
	return nil
}

// witness assembles the procedure's translation-validation witness for the
// committed block order (which must be the order just passed to commit).
func (xp *xproc) witness(order []*xblock) tv.ProcWitness {
	pw := tv.ProcWitness{Blocks: make([]tv.BlockWitness, len(order))}
	for i, x := range order {
		pw.Blocks[i] = tv.BlockWitness{Anchor: x.wanchor, Events: x.wevents}
	}
	return pw
}

// edgeFreqs reprojects the current estimates onto committed block IDs —
// used after commit when later stages want frequencies for the rewritten
// CFG.
func (xp *xproc) edgeFreqs(order []*xblock) analysis.EdgeFreq {
	id := make(map[*xblock]int, len(order))
	for i, x := range order {
		id[x] = i
	}
	ef := make(analysis.EdgeFreq)
	for _, x := range order {
		for slot, s := range x.succs {
			ef[cfg.Edge{From: ir.BlockID(id[x]), To: ir.BlockID(id[s]), Slot: slot}] = x.ef[slot]
		}
	}
	return ef
}
