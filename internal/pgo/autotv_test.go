package pgo

// pgo's own tests cannot blank-import internal/tv/autotv (it imports pgo),
// so they install the validation hook directly: every Optimize call in
// this test binary — the preservation harness, the round-trip tests — runs
// behind the static translation validator.

import "pathprof/internal/tv"

func init() {
	DebugValidate = tv.ValidateError
}
