package workload

import "pathprof/internal/ir"

// buildParser is a second 126.gcc-flavoured workload focused on the error
// paths: a recursive-descent parser over a token stream that recovers from
// syntax errors with a non-local return (setjmp/longjmp), the mechanism the
// paper's CCT construction explicitly supports ("non-local returns"). It
// exercises CCT unwinding and path profiling under abandoned activations.
//
// Tokens: 0 = '(', 1 = ')', 2 = atom, 3 = BAD (forces a longjmp).
func buildParser(s Scale) *ir.Program {
	b := ir.NewBuilder("parser")
	nTokens := pick(s, 512, 60_000)

	// Globals layout: tokens at offData; cursor at offOut word 0; jmp
	// handle at offOut word 1.
	// parseExpr(r1 = depth budget) -> r1 = node count. Reads tokens at the
	// shared cursor; on BAD or exhausted depth, longjmps to main's recovery
	// point.
	parse := newFn(b, "parse_expr", 1)
	{
		z := parse.reg()
		depth := parse.reg()
		tok := parse.reg()
		cur := parse.reg()
		cnt := parse.reg()
		c := parse.reg()
		h := parse.reg()
		going := parse.reg()
		one := parse.reg()
		parse.b().MovI(z, 0)
		parse.b().Mov(depth, 1)
		parse.b().MovI(cnt, 0)
		parse.b().MovI(one, 1)

		fail := func() {
			// Load the handle and bail out to main's recovery point.
			parse.b().MovI(h, 1)
			parse.loadArr(h, z, h, offOut)
			parse.b().LongJmp(h, one)
		}

		// cursor fetch-and-advance.
		fetch := func() {
			parse.b().MovI(cur, 0)
			parse.loadArr(tok, z, cur, offOut) // cursor value
			parse.b().AndI(c, tok, int64(nTokens-1))
			parse.b().AddI(tok, tok, 1)
			parse.storeArr(z, cur, offOut, tok) // cursor++
			parse.loadArr(tok, z, c, offData)   // the token
		}

		fetch()
		parse.b().CmpEQI(c, tok, 3)
		parse.ifThen(c, func() {
			fail()
			parse.b().Nop() // unreachable; keeps the block non-empty
		})
		parse.b().CmpLEI(c, depth, 0)
		parse.ifThen(c, fail)

		parse.b().CmpEQI(c, tok, 0)
		parse.ifElse(c, func() {
			// '(' expr* ')': parse children until ')'.
			parse.b().MovI(going, 1)
			parse.whileNZ(going, func() {
				// going stays as computed at loop bottom; recompute by
				// peeking the next token.
				parse.b().MovI(cur, 0)
				parse.loadArr(tok, z, cur, offOut)
				parse.b().AndI(c, tok, int64(nTokens-1))
				parse.loadArr(tok, z, c, offData)
				parse.b().CmpNEI(going, tok, 1) // stop at ')'
			}, func() {
				parse.b().AddI(1, depth, -1)
				parse.b().Call(parse.p)
				parse.b().Add(cnt, cnt, 1)
			})
			// Consume the ')'.
			parse.b().MovI(cur, 0)
			parse.loadArr(tok, z, cur, offOut)
			parse.b().AddI(tok, tok, 1)
			parse.storeArr(z, cur, offOut, tok)
		}, func() {
			// Atom (or stray ')': treated as an atom for simplicity).
			parse.b().AddI(cnt, cnt, 1)
		})
		parse.b().Mov(1, cnt)
		parse.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		h := main.reg()
		flag := main.reg()
		parsed := main.reg()
		errors := main.reg()
		c := main.reg()
		going := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 126126)
		main.b().MovI(parsed, 0)
		main.b().MovI(errors, 0)

		// Token stream: mostly atoms and parens, occasionally BAD.
		main.loop(i, tmp, nTokens, func() {
			main.xorshift(seedR, tmp)
			main.b().AndI(tmp, seedR, 15)
			main.b().CmpLTI(c, tmp, 5)
			main.ifElse(c, func() {
				main.b().MovI(tmp, 0) // '('
			}, func() {
				main.xorshift(seedR, c)
				main.b().AndI(tmp, seedR, 63)
				main.b().CmpLTI(c, tmp, 24)
				main.ifElse(c, func() {
					main.b().MovI(tmp, 1) // ')'
				}, func() {
					main.b().CmpEQI(c, tmp, 63)
					main.ifElse(c, func() {
						main.b().MovI(tmp, 3) // BAD
					}, func() {
						main.b().MovI(tmp, 2) // atom
					})
				})
			})
			main.storeArr(z, i, offData, tmp)
		})

		// Recovery point: flag != 0 means we arrived here via longjmp.
		main.b().SetJmp(h, flag)
		rec := main.p.NewBlock()
		main.cur.Jmp(rec)
		main.cur = rec
		main.b().MovI(tmp, 1)
		main.storeArr(z, tmp, offOut, h) // publish the handle
		main.ifThen(flag, func() {
			main.b().Add(errors, errors, flag)
			main.b().MovI(flag, 0)
		})
		_ = c

		// Parse until the cursor has consumed the budget.
		main.whileNZ(going, func() {
			main.b().MovI(tmp, 0)
			main.loadArr(going, z, tmp, offOut)
			main.b().CmpLTI(going, going, nTokens*pick(s, 2, 4))
		}, func() {
			main.b().MovI(1, 12)
			main.b().Call(parse.p)
			main.b().Add(parsed, parsed, 1)
		})
		main.b().Out(parsed)
		main.b().Out(errors)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}
