package workload

import "pathprof/internal/ir"

// k-iteration workloads: three programs whose interesting behaviour lives
// *across* loop back-edges, built to exercise the k>1 path degree (see
// bl.ExtendK). Classic acyclic Ball-Larus paths truncate at the backedge,
// so each program's per-iteration paths look bland in a k=1 profile; the
// correlation between consecutive iterations — pipeline stage rotation, DFA
// state persistence, event follow-up chains — only shows up as distinct hot
// paths at k ≥ 2. They live in KSuite, not Suite, so the paper-table golden
// results are untouched.

// buildPipeline is a software-pipelined kernel: a three-stage rotation
// where the value branched on in iteration i was loaded in iteration i-2.
// A k=3 path spans exactly the pipeline depth, so the taken/not-taken
// pattern of the stage branch correlates with the loads that caused it.
func buildPipeline(s Scale) *ir.Program {
	b := ir.NewBuilder("pipeline")
	n := pick(s, 256, 120_000)

	// stage(r1 = v) -> r1: the steady-state stage function, branchy so the
	// callee has paths of its own.
	stage := newFn(b, "stage", 1)
	{
		v := ir.Reg(1)
		c := stage.reg()
		stage.b().AndI(c, v, 1)
		stage.ifElse(c, func() {
			stage.b().MulI(v, v, 3)
			stage.b().AddI(v, v, 1)
		}, func() {
			stage.b().ShrI(v, v, 1)
		})
		stage.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		x := main.reg()
		s0 := main.reg()
		s1 := main.reg()
		s2 := main.reg()
		acc := main.reg()
		c := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 777_001)

		// Input vector.
		main.loop(i, tmp, n, func() {
			main.xorshift(seedR, tmp)
			main.b().AndI(tmp, seedR, 1023)
			main.storeArr(z, i, offData, tmp)
		})

		// Prologue: prime the pipeline registers.
		main.b().MovI(s0, 2)
		main.b().MovI(s1, 5)
		main.b().MovI(s2, 11)
		main.b().MovI(acc, 0)

		// Steady state: branch on the two-iterations-old value, rotate.
		main.loop(i, tmp, n, func() {
			main.loadArr(x, z, i, offData)
			main.b().AndI(c, s2, 1)
			main.ifElse(c, func() {
				main.b().MulI(tmp, s2, 3)
				main.b().Add(acc, acc, tmp)
			}, func() {
				main.b().Add(acc, acc, s2)
				main.b().Xor(acc, acc, x)
			})
			main.b().Mov(1, s1)
			main.b().Call(stage.p)
			main.b().Mov(s2, 1)
			main.b().Xor(s1, s0, x)
			main.b().Mov(s0, x)
		})

		// Epilogue: drain the in-flight stages.
		main.b().Add(acc, acc, s2)
		main.b().Add(acc, acc, s1)
		main.b().Add(acc, acc, s0)
		main.b().Out(acc)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}

// buildLexer is a state-machine scanner: a DFA whose state register
// survives the scan loop's backedge. Which per-iteration path runs depends
// almost entirely on the previous iteration's state (inside an identifier,
// a number, or a comment), so k=2 paths separate transitions — e.g.
// letter-after-letter vs letter-after-space — that a k=1 profile merges.
//
// Character classes: 0 letter, 1 digit, 2 space, 3 '#', 4 newline.
// States: 0 start, 1 identifier, 2 number, 3 comment-to-end-of-line.
func buildLexer(s Scale) *ir.Program {
	b := ir.NewBuilder("lexer")
	n := pick(s, 512, 100_000)

	// classify(r1 = raw) -> r1 = class, a branchy helper.
	classify := newFn(b, "classify", 1)
	{
		v := ir.Reg(1)
		c := classify.reg()
		classify.b().AndI(v, v, 15)
		classify.b().CmpLTI(c, v, 6)
		classify.ifElse(c, func() {
			classify.b().MovI(v, 0) // letter
		}, func() {
			classify.b().CmpLTI(c, v, 10)
			classify.ifElse(c, func() {
				classify.b().MovI(v, 1) // digit
			}, func() {
				classify.b().CmpLTI(c, v, 13)
				classify.ifElse(c, func() {
					classify.b().MovI(v, 2) // space
				}, func() {
					classify.b().CmpLTI(c, v, 15)
					classify.ifElse(c, func() {
						classify.b().MovI(v, 4) // newline
					}, func() {
						classify.b().MovI(v, 3) // '#'
					})
				})
			})
		})
		classify.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		cls := main.reg()
		st := main.reg()
		idents := main.reg()
		nums := main.reg()
		cmts := main.reg()
		c := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 134_134)

		// Input text.
		main.loop(i, tmp, n, func() {
			main.xorshift(seedR, tmp)
			main.b().AndI(tmp, seedR, 255)
			main.storeArr(z, i, offData, tmp)
		})

		main.b().MovI(st, 0)
		main.b().MovI(idents, 0)
		main.b().MovI(nums, 0)
		main.b().MovI(cmts, 0)

		main.loop(i, tmp, n, func() {
			main.loadArr(1, z, i, offData)
			main.b().Call(classify.p)
			main.b().Mov(cls, 1)

			main.b().CmpEQI(c, st, 3)
			main.ifElse(c, func() { // comment: count until newline
				main.b().AddI(cmts, cmts, 1)
				main.b().CmpEQI(c, cls, 4)
				main.ifThen(c, func() { main.b().MovI(st, 0) })
			}, func() {
				main.b().CmpEQI(c, st, 1)
				main.ifElse(c, func() { // identifier continues on letter/digit
					main.b().CmpLEI(c, cls, 1)
					main.ifElse(c, func() {
						main.b().Nop()
					}, func() {
						main.b().AddI(idents, idents, 1)
						main.b().CmpEQI(c, cls, 3)
						main.ifElse(c, func() { main.b().MovI(st, 3) },
							func() { main.b().MovI(st, 0) })
					})
				}, func() {
					main.b().CmpEQI(c, st, 2)
					main.ifElse(c, func() { // number continues on digit
						main.b().CmpEQI(c, cls, 1)
						main.ifElse(c, func() {
							main.b().Nop()
						}, func() {
							main.b().AddI(nums, nums, 1)
							main.b().CmpEQI(c, cls, 3)
							main.ifElse(c, func() { main.b().MovI(st, 3) },
								func() { main.b().MovI(st, 0) })
						})
					}, func() { // start state
						main.b().CmpEQI(c, cls, 0)
						main.ifThen(c, func() { main.b().MovI(st, 1) })
						main.b().CmpEQI(c, cls, 1)
						main.ifThen(c, func() { main.b().MovI(st, 2) })
						main.b().CmpEQI(c, cls, 3)
						main.ifThen(c, func() { main.b().MovI(st, 3) })
					})
				})
			})
		})
		main.b().Out(idents)
		main.b().Out(nums)
		main.b().Out(cmts)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}

// buildEventLoop is a dispatch loop over a work queue where handlers
// enqueue follow-up events: a timer tick (type 0) schedules an I/O
// completion (type 1), which schedules a compute step (type 2). The
// follow-up lands at the queue tail, but the *dispatch pattern* across
// consecutive iterations is still far from independent, and the chains
// show up as hot k=2/k=3 paths spanning the loop backedge.
func buildEventLoop(s Scale) *ir.Program {
	b := ir.NewBuilder("eventloop")
	n := pick(s, 128, 40_000)
	capEvents := n * 3 // seeds + at most two follow-ups per seed

	// handle(r1 = type) -> r1 = score. The compute handler has an inner
	// loop, so k-paths nest across two loop levels.
	handle := newFn(b, "handle", 1)
	{
		v := ir.Reg(1)
		c := handle.reg()
		sum := handle.reg()
		j := handle.reg()
		t2 := handle.reg()
		handle.b().CmpEQI(c, v, 0)
		handle.ifElse(c, func() {
			handle.b().MovI(sum, 1)
		}, func() {
			handle.b().CmpEQI(c, v, 1)
			handle.ifElse(c, func() {
				handle.b().MovI(sum, 3)
			}, func() {
				handle.b().CmpEQI(c, v, 2)
				handle.ifElse(c, func() {
					handle.b().MovI(sum, 7)
					handle.loop(j, t2, 4, func() {
						handle.b().MulI(sum, sum, 5)
						handle.b().AndI(sum, sum, 1023)
					})
				}, func() {
					handle.b().MovI(sum, 0) // idle
				})
			})
		})
		handle.b().Mov(v, sum)
		handle.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		head := main.reg()
		tail := main.reg()
		ev := main.reg()
		acc := main.reg()
		c := main.reg()
		going := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 400_400)

		// Seed the queue with random event types.
		main.loop(i, tmp, n, func() {
			main.xorshift(seedR, tmp)
			main.b().AndI(tmp, seedR, 3)
			main.storeArr(z, i, offData, tmp)
		})
		main.b().MovI(head, 0)
		main.b().MovI(tail, n)
		main.b().MovI(acc, 0)

		// Drain the queue; handlers may push follow-ups at the tail.
		main.whileNZ(going, func() {
			main.b().CmpLT(going, head, tail)
		}, func() {
			main.loadArr(ev, z, head, offData)
			main.b().AddI(head, head, 1)
			main.b().Mov(1, ev)
			main.b().Call(handle.p)
			main.b().Add(acc, acc, 1)

			main.b().CmpLTI(c, tail, capEvents)
			main.ifThen(c, func() {
				main.b().CmpEQI(c, ev, 0)
				main.ifThen(c, func() { // timer → I/O completion
					main.b().MovI(going, 1)
					main.storeArr(z, tail, offData, going)
					main.b().AddI(tail, tail, 1)
				})
				main.b().CmpEQI(c, ev, 1)
				main.ifThen(c, func() { // I/O completion → compute step
					main.b().MovI(going, 2)
					main.storeArr(z, tail, offData, going)
					main.b().AddI(tail, tail, 1)
				})
			})
		})
		main.b().Out(acc)
		main.b().Out(head)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}
