package workload

import (
	"reflect"
	"testing"

	"pathprof/internal/hpm"
	"pathprof/internal/instrument"
	"pathprof/internal/ir"
	"pathprof/internal/sim"
)

// TestKSuiteRunsAtTestScale: the k-iteration workloads validate, terminate,
// are deterministic, and produce output — same bar as the paper suite.
func TestKSuiteRunsAtTestScale(t *testing.T) {
	for _, w := range KSuite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog := w.Build(Test)
			if err := ir.Validate(prog); err != nil {
				t.Fatal(err)
			}
			run := func() sim.Result {
				m := sim.New(prog, sim.DefaultConfig())
				res, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			r1 := run()
			r2 := run()
			if len(r1.Output) == 0 {
				t.Fatal("no output")
			}
			if !reflect.DeepEqual(r1.Output, r2.Output) || r1.Cycles != r2.Cycles {
				t.Fatal("nondeterministic run")
			}
			if r1.Instrs < 1000 {
				t.Fatalf("suspiciously small run: %d instructions", r1.Instrs)
			}
			if _, ok := ByName(w.Name); !ok {
				t.Fatalf("ByName does not find %s", w.Name)
			}
		})
	}
}

// TestKSuiteInstrumentableAtK: every k-workload survives the path modes at
// k ∈ {1,2,3} with unchanged semantics, and at k>1 at least one procedure
// actually extends (the workloads exist to exercise cross-backedge paths).
func TestKSuiteInstrumentableAtK(t *testing.T) {
	modes := []instrument.Mode{
		instrument.ModePathFreq,
		instrument.ModePathHW,
		instrument.ModeContextFlow,
	}
	for _, w := range KSuite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog := w.Build(Test)
			m0 := sim.New(prog, sim.DefaultConfig())
			base, err := m0.Run()
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range modes {
				for _, k := range []int{1, 2, 3} {
					opts := instrument.DefaultOptions(mode)
					opts.K = k
					plan, err := instrument.Instrument(prog, opts)
					if err != nil {
						t.Fatalf("mode %v k=%d: %v", mode, k, err)
					}
					if k > 1 {
						extended := false
						for _, pp := range plan.Procs {
							if pp.Numbering != nil && pp.Numbering.K > 1 {
								extended = true
							}
						}
						if !extended {
							t.Fatalf("mode %v k=%d: no procedure extended", mode, k)
						}
					}
					m := sim.New(plan.Prog, sim.DefaultConfig())
					m.PMU().Select(hpm.EvDCacheMiss, hpm.EvInsts)
					plan.Wire(m)
					res, err := m.Run()
					if err != nil {
						t.Fatalf("mode %v k=%d: %v", mode, k, err)
					}
					if !reflect.DeepEqual(base.Output, res.Output) {
						t.Fatalf("mode %v k=%d: semantics changed", mode, k)
					}
				}
			}
		})
	}
}
