package workload

import (
	"reflect"
	"testing"

	"pathprof/internal/hpm"
	"pathprof/internal/instrument"
	"pathprof/internal/ir"
	"pathprof/internal/sim"
)

// TestAllWorkloadsRunAtTestScale: every workload validates, terminates, is
// deterministic, and produces output.
func TestAllWorkloadsRunAtTestScale(t *testing.T) {
	for _, w := range Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog := w.Build(Test)
			if err := ir.Validate(prog); err != nil {
				t.Fatal(err)
			}
			run := func() sim.Result {
				m := sim.New(prog, sim.DefaultConfig())
				res, err := m.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			r1 := run()
			r2 := run()
			if len(r1.Output) == 0 {
				t.Fatal("no output")
			}
			if !reflect.DeepEqual(r1.Output, r2.Output) || r1.Cycles != r2.Cycles {
				t.Fatal("nondeterministic run")
			}
			if r1.Instrs < 1000 {
				t.Fatalf("suspiciously small run: %d instructions", r1.Instrs)
			}
		})
	}
}

// TestAllWorkloadsInstrumentable: every workload survives every
// instrumentation mode with unchanged semantics.
func TestAllWorkloadsInstrumentable(t *testing.T) {
	modes := []instrument.Mode{
		instrument.ModeEdgeCount,
		instrument.ModePathFreq,
		instrument.ModePathHW,
		instrument.ModeContextHW,
		instrument.ModeContextFlow,
		instrument.ModeBlockHW,
	}
	for _, w := range Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog := w.Build(Test)
			m0 := sim.New(prog, sim.DefaultConfig())
			base, err := m0.Run()
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range modes {
				plan, err := instrument.Instrument(prog, instrument.DefaultOptions(mode))
				if err != nil {
					t.Fatalf("mode %v: %v", mode, err)
				}
				m := sim.New(plan.Prog, sim.DefaultConfig())
				m.PMU().Select(hpm.EvDCacheMiss, hpm.EvInsts)
				plan.Wire(m)
				res, err := m.Run()
				if err != nil {
					t.Fatalf("mode %v: %v", mode, err)
				}
				if !reflect.DeepEqual(base.Output, res.Output) {
					t.Fatalf("mode %v: semantics changed", mode)
				}
			}
		})
	}
}

// TestWorkloadSignatures: coarse behavioural checks that the suite exhibits
// the contrasts the experiments rely on.
func TestWorkloadSignatures(t *testing.T) {
	run := func(name string) sim.Result {
		w, ok := ByName(name)
		if !ok {
			t.Fatalf("missing workload %s", name)
		}
		m := sim.New(w.Build(Test), sim.DefaultConfig())
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// FP workloads execute FP work; integer ones essentially none.
	mesh := run("mesh")
	compress := run("compress")
	if mesh.Totals[hpm.EvFPStalls] == 0 {
		t.Error("mesh: no FP stalls")
	}
	if compress.Totals[hpm.EvFPStalls] != 0 {
		t.Error("compress: unexpected FP stalls")
	}

	// compress's hash table defeats the L1; imagepack is block-local.
	img := run("imagepack")
	compressRatio := float64(compress.Totals[hpm.EvDCacheMiss]) / float64(compress.Totals[hpm.EvDCacheRead]+compress.Totals[hpm.EvDCacheWrite])
	imgRatio := float64(img.Totals[hpm.EvDCacheMiss]) / float64(img.Totals[hpm.EvDCacheRead]+img.Totals[hpm.EvDCacheWrite])
	if compressRatio <= imgRatio {
		t.Errorf("compress miss ratio %.4f not above imagepack %.4f", compressRatio, imgRatio)
	}

	// objdb makes far more calls per instruction than fpstraight.
	objdb := run("objdb")
	fps := run("fpstraight")
	objCallRate := float64(objdb.Totals[hpm.EvCalls]) / float64(objdb.Instrs)
	fpsCallRate := float64(fps.Totals[hpm.EvCalls]) / float64(fps.Instrs)
	if objCallRate < 4*fpsCallRate {
		t.Errorf("objdb call rate %.5f not well above fpstraight %.5f", objCallRate, fpsCallRate)
	}
}

// TestPathRichness: compiler (the gcc analogue) has more potential paths
// than the regular FP workloads.
func TestPathRichness(t *testing.T) {
	potentialPaths := func(name string) int64 {
		w, _ := ByName(name)
		plan, err := instrument.Instrument(w.Build(Test), instrument.DefaultOptions(instrument.ModePathFreq))
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, pp := range plan.Procs {
			if pp.Numbering != nil {
				total += pp.Numbering.NumPaths
			}
		}
		return total
	}
	rich := potentialPaths("compiler") + potentialPaths("searcher")
	regular := potentialPaths("mesh") + potentialPaths("shallow")
	if rich < 4*regular {
		t.Errorf("path-rich workloads have %d potential paths vs %d for stencils", rich, regular)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("nope"); ok {
		t.Fatal("found nonexistent workload")
	}
	w, ok := ByName("compress")
	if !ok || w.Analogue != "129.compress" || w.Class != CINT {
		t.Fatalf("compress lookup wrong: %+v", w)
	}
	if CFP.String() != "CFP" || CINT.String() != "CINT" {
		t.Fatal("class strings wrong")
	}
}
