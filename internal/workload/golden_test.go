package workload

import (
	"reflect"
	"testing"

	"pathprof/internal/sim"
)

// goldenOutputs pins each workload's observable output at Test scale on the
// default machine. The whole stack is deterministic, so any drift here
// means a semantic change to a workload or the simulator — which must be a
// conscious decision (regenerate by running the suite and updating the
// table).
var goldenOutputs = map[string][]int64{
	"searcher":   []int64{268},
	"cpuemu":     []int64{432},
	"compiler":   []int64{-5275},
	"compress":   []int64{1307},
	"interp":     []int64{50473},
	"imagepack":  []int64{1},
	"strhash":    []int64{208},
	"objdb":      []int64{60},
	"parser":     []int64{437, 10},
	"mesh":       []int64{2},
	"shallow":    []int64{2},
	"lattice":    []int64{2},
	"hydro":      []int64{2},
	"grid":       []int64{1},
	"lusolve":    []int64{1},
	"turbulence": []int64{1},
	"weather":    []int64{2},
	"fpstraight": []int64{4},
	"plasma":     []int64{2},
}

func TestGoldenOutputs(t *testing.T) {
	for _, w := range Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			want, ok := goldenOutputs[w.Name]
			if !ok {
				t.Fatalf("no golden recorded for %s", w.Name)
			}
			m := sim.New(w.Build(Test), sim.DefaultConfig())
			res, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Output, want) {
				t.Fatalf("output drifted:\n got  %v\n want %v", res.Output, want)
			}
		})
	}
	if len(goldenOutputs) != len(Suite()) {
		t.Fatalf("golden table has %d entries for %d workloads", len(goldenOutputs), len(Suite()))
	}
}
