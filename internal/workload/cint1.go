package workload

import "pathprof/internal/ir"

// Array layout offsets (bytes from the global base) shared by the integer
// workloads. Each workload uses its own program, so overlaps across
// workloads are irrelevant; offsets within one workload must not collide.
const (
	offBoard = 0         // searcher: 64-word board
	offCode  = 0         // cpuemu: instruction memory
	offRegs  = 64 << 10  // cpuemu: register file (past code)
	offTab   = 512 << 10 // dispatch / hash tables
	offData  = 0         // compress/compiler input
	offOut   = 1 << 20   // output regions
)

// buildSearcher is the 099.go analogue: a recursive game-tree search whose
// evaluation procedure is a chain of data-dependent diamonds — a large
// number of potential and executed paths, poor branch predictability, and
// cache misses spread over many paths.
func buildSearcher(s Scale) *ir.Program {
	b := ir.NewBuilder("searcher")

	// evaluate(r1 = position hash) -> r1 = score.
	// Eight data-dependent diamonds over board cells: up to 2^8 paths.
	eval := newFn(b, "evaluate", 1)
	{
		z := eval.reg()
		h := eval.reg()
		idx := eval.reg()
		cell := eval.reg()
		score := eval.reg()
		c := eval.reg()
		eval.b().MovI(z, 0)
		eval.b().Mov(h, 1)
		eval.b().MovI(score, 0)
		for round := 0; round < 8; round++ {
			eval.b().ShrI(idx, h, int64(round*3))
			eval.b().AndI(idx, idx, 63)
			eval.loadArr(cell, z, idx, offBoard)
			eval.b().CmpLTI(c, cell, 32)
			eval.ifElse(c, func() {
				eval.b().Add(score, score, cell)
				eval.b().ShlI(cell, cell, 1)
			}, func() {
				eval.b().Sub(score, score, cell)
				eval.b().XorI(score, score, 0x55)
			})
		}
		eval.b().Mov(1, score)
		eval.ret()
	}

	// search(r1 = state, r2 = depth) -> r1 = best score.
	search := newFn(b, "search", 2)
	{
		state := ir.Reg(1)
		depth := ir.Reg(2)
		z := search.reg()
		best := search.reg()
		move := search.reg()
		tmp := search.reg()
		child := search.reg()
		saveState := search.reg()
		saveDepth := search.reg()
		c := search.reg()
		search.b().MovI(z, 0)
		search.b().CmpLEI(c, depth, 0)
		search.ifElse(c, func() {
			// Leaf: evaluate the position.
			search.b().Call(eval.p)
		}, func() {
			search.b().Mov(saveState, state)
			search.b().Mov(saveDepth, depth)
			search.b().MovI(best, -1<<30)
			search.loop(move, tmp, 4, func() {
				// child = mix(state, move)
				search.b().MulI(child, saveState, 1103515245)
				search.b().Add(child, child, move)
				search.b().AddI(child, child, 12345)
				search.b().ShrI(tmp, child, 16)
				search.b().Xor(child, child, tmp)
				// Prune: skip uninteresting children (alpha-beta stand-in).
				search.b().AndI(tmp, child, 7)
				search.b().CmpLTI(c, tmp, 6)
				search.ifThen(c, func() {
					search.b().Mov(1, child)
					search.b().AddI(2, saveDepth, -1)
					search.b().Call(search.p)
					// Negamax flavour: alternate sign by move parity.
					search.b().AndI(tmp, move, 1)
					search.ifThen(tmp, func() {
						search.b().MovI(tmp, 0)
						search.b().Sub(1, tmp, 1)
					})
					search.b().CmpLT(c, best, 1)
					search.ifThen(c, func() {
						search.b().Mov(best, 1)
					})
				})
			})
			search.b().Mov(1, best)
		})
		search.ret()
	}

	// main: initialize the board, run several root searches.
	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		games := main.reg()
		acc := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 0x9E3779B97F4A7C15>>1)
		main.b().MovI(acc, 0)
		main.loop(i, tmp, 64, func() {
			main.xorshift(seedR, tmp)
			main.b().AndI(tmp, seedR, 63)
			main.storeArr(z, i, offBoard, tmp)
		})
		main.loop(games, tmp, pick(s, 2, 48), func() {
			main.xorshift(seedR, tmp)
			main.b().Mov(1, seedR)
			main.b().MovI(2, pick(s, 3, 5))
			main.b().Call(search.p)
			main.b().Add(acc, acc, 1)
		})
		main.b().Out(acc)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}

// buildCPUEmu is the 124.m88ksim analogue: an instruction-set emulator with
// an indirect-dispatch decode loop over four execution units, a register
// file in memory, and moderate path counts per unit.
func buildCPUEmu(s Scale) *ir.Program {
	b := ir.NewBuilder("cpuemu")
	codeWords := int64(4096)

	// Unit procedures take r1 = packed instruction, operate on the
	// register file at offRegs, and return a pc delta in r1.
	// Packing: op[0:4] rd[4:8] rs[8:12] imm[12:20].
	declUnit := func(name string, gen func(f *fb, opLow, rd, rs, imm, z ir.Reg)) *fb {
		f := newFn(b, name, 1)
		z := f.reg()
		opLow := f.reg()
		rd := f.reg()
		rs := f.reg()
		imm := f.reg()
		f.b().MovI(z, 0)
		f.b().AndI(opLow, 1, 3)
		f.b().ShrI(rd, 1, 4)
		f.b().AndI(rd, rd, 15)
		f.b().ShrI(rs, 1, 8)
		f.b().AndI(rs, rs, 15)
		f.b().ShrI(imm, 1, 12)
		f.b().AndI(imm, imm, 255)
		gen(f, opLow, rd, rs, imm, z)
		f.ret()
		return f
	}

	alu := declUnit("alu_unit", func(f *fb, opLow, rd, rs, imm, z ir.Reg) {
		a := f.reg()
		bb := f.reg()
		c := f.reg()
		f.loadArr(a, z, rd, offRegs)
		f.loadArr(bb, z, rs, offRegs)
		f.b().CmpEQI(c, opLow, 0)
		f.ifElse(c, func() {
			f.b().Add(a, a, bb)
		}, func() {
			f.b().CmpEQI(c, opLow, 1)
			f.ifElse(c, func() {
				f.b().Sub(a, a, bb)
			}, func() {
				f.b().CmpEQI(c, opLow, 2)
				f.ifElse(c, func() {
					f.b().Xor(a, a, bb)
				}, func() {
					f.b().And(a, a, bb)
				})
			})
		})
		f.b().Add(a, a, imm)
		f.storeArr(z, rd, offRegs, a)
		f.b().MovI(1, 1)
	})

	memu := declUnit("mem_unit", func(f *fb, opLow, rd, rs, imm, z ir.Reg) {
		addr := f.reg()
		v := f.reg()
		c := f.reg()
		f.loadArr(addr, z, rs, offRegs)
		f.b().Add(addr, addr, imm)
		f.b().AndI(addr, addr, 2047) // data segment: 2K words at offTab
		f.b().AndI(c, opLow, 1)
		f.ifElse(c, func() { // load
			f.loadArr(v, z, addr, offTab)
			f.storeArr(z, rd, offRegs, v)
		}, func() { // store
			f.loadArr(v, z, rd, offRegs)
			f.storeArr(z, addr, offTab, v)
		})
		f.b().MovI(1, 1)
	})

	bru := declUnit("branch_unit", func(f *fb, opLow, rd, rs, imm, z ir.Reg) {
		v := f.reg()
		c := f.reg()
		f.loadArr(v, z, rs, offRegs)
		f.b().CmpEQI(c, opLow, 0)
		f.ifElse(c, func() {
			f.b().CmpEQI(c, v, 0)
		}, func() {
			f.b().CmpLTI(c, v, 0)
		})
		f.ifElse(c, func() {
			// Taken: jump forward by imm&15 (+1 to guarantee progress).
			f.b().AndI(1, imm, 15)
			f.b().AddI(1, 1, 1)
		}, func() {
			f.b().MovI(1, 1)
		})
	})

	sys := declUnit("sys_unit", func(f *fb, opLow, rd, rs, imm, z ir.Reg) {
		v := f.reg()
		f.loadArr(v, z, rd, offRegs)
		f.b().Xor(v, v, imm)
		f.b().ShrI(v, v, 1)
		f.storeArr(z, rd, offRegs, v)
		f.b().MovI(1, 1)
	})

	// step(r1 = pc) -> r1 = new pc: fetch, decode, dispatch indirectly.
	step := newFn(b, "step", 1)
	{
		z := step.reg()
		pc := step.reg()
		insn := step.reg()
		op := step.reg()
		handler := step.reg()
		step.b().MovI(z, 0)
		step.b().Mov(pc, 1)
		step.b().AndI(insn, pc, codeWords-1)
		step.loadArr(insn, z, insn, offCode)
		step.b().ShrI(op, insn, 2)
		step.b().AndI(op, op, 3)
		// handler = dispatch[op] (function pointers in memory).
		step.loadArr(handler, z, op, offOut)
		step.b().Mov(1, insn)
		step.b().CallInd(handler)
		step.b().Add(1, 1, pc)
		step.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		pc := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 88)
		// Code memory: biased opcode mix (ALU-heavy, like real code).
		main.loop(i, tmp, codeWords, func() {
			main.xorshift(seedR, tmp)
			v := seedR
			main.b().AndI(tmp, v, 0xFFFFF)
			main.storeArr(z, i, offCode, tmp)
		})
		// Dispatch table.
		for op, unit := range []*fb{alu, memu, bru, sys} {
			main.b().MovI(tmp, int64(op))
			main.b().MovI(i, int64(unit.p.ID()))
			main.storeArr(z, tmp, offOut, i)
		}
		// Emulation loop.
		main.b().MovI(pc, 0)
		main.loop(i, tmp, pick(s, 400, 120_000), func() {
			main.b().Mov(1, pc)
			main.b().Call(step.p)
			main.b().Mov(pc, 1)
		})
		main.b().Out(pc)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}

// buildCompress is the 129.compress analogue: LZ-style compression over a
// semi-repetitive buffer with a hash table sized past the L1 cache, so a
// handful of paths (hash probe hit/miss, match extension) carry nearly all
// the data-cache misses.
func buildCompress(s Scale) *ir.Program {
	b := ir.NewBuilder("compress")
	n := pick(s, 2048, 300_000)
	tabWords := int64(8192) // 64 KB table: 4x the L1 D-cache

	// matchlen(r1 = posA, r2 = posB) -> r1 = length of common run (max 16).
	matchlen := newFn(b, "matchlen", 2)
	{
		z := matchlen.reg()
		l := matchlen.reg()
		a := matchlen.reg()
		bb := matchlen.reg()
		va := matchlen.reg()
		vb := matchlen.reg()
		c := matchlen.reg()
		going := matchlen.reg()
		matchlen.b().MovI(z, 0)
		matchlen.b().MovI(l, 0)
		matchlen.b().Mov(a, 1)
		matchlen.b().Mov(bb, 2)
		matchlen.whileNZ(going, func() {
			matchlen.b().CmpLTI(c, l, 16)
			matchlen.b().Mov(going, c)
			matchlen.ifThen(c, func() {
				matchlen.loadArr(va, z, a, offData)
				matchlen.loadArr(vb, z, bb, offData)
				matchlen.b().CmpEQ(going, va, vb)
			})
		}, func() {
			matchlen.b().AddI(l, l, 1)
			matchlen.b().AddI(a, a, 1)
			matchlen.b().AddI(bb, bb, 1)
		})
		matchlen.b().Mov(1, l)
		matchlen.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		h := main.reg()
		v0 := main.reg()
		v1 := main.reg()
		cand := main.reg()
		c := main.reg()
		emitted := main.reg()
		pos := main.reg()
		going := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 777)
		main.b().MovI(emitted, 0)

		// Semi-repetitive input: fresh random byte 1 time in 4, otherwise a
		// copy from 64 positions back.
		main.loop(i, tmp, n, func() {
			main.xorshift(seedR, tmp)
			main.b().AndI(c, seedR, 3)
			main.b().CmpEQI(c, c, 0)
			main.ifElse(c, func() {
				main.b().AndI(tmp, seedR, 255)
				main.storeArr(z, i, offData, tmp)
			}, func() {
				main.b().AddI(tmp, i, -64)
				main.b().CmpLTI(c, i, 64)
				main.ifElse(c, func() {
					main.b().AndI(tmp, i, 7)
					main.storeArr(z, i, offData, tmp)
				}, func() {
					main.loadArr(v0, z, tmp, offData)
					main.storeArr(z, i, offData, v0)
				})
			})
		})

		// Compression scan.
		main.b().MovI(pos, 0)
		main.whileNZ(going, func() {
			main.b().CmpLTI(going, pos, n-20)
		}, func() {
			// h = hash of the 2-word window at pos.
			main.loadArr(v0, z, pos, offData)
			main.b().AddI(tmp, pos, 1)
			main.loadArr(v1, z, tmp, offData)
			main.b().ShlI(h, v0, 5)
			main.b().Xor(h, h, v1)
			main.b().MulI(h, h, 2654435761)
			main.b().ShrI(h, h, 8)
			main.b().AndI(h, h, tabWords-1)
			// Probe (the dense-miss path: table exceeds the cache).
			main.loadArr(cand, z, h, offTab)
			main.b().AddI(tmp, pos, 1)
			main.storeArr(z, h, offTab, tmp) // store pos+1 (0 = empty)
			main.b().CmpEQI(c, cand, 0)
			main.ifElse(c, func() {
				// Miss: emit literal.
				main.b().AddI(emitted, emitted, 1)
				main.b().AddI(pos, pos, 1)
			}, func() {
				// Try to extend a match at cand-1.
				main.b().AddI(1, cand, -1)
				main.b().Mov(2, pos)
				main.b().Call(matchlen.p)
				main.b().CmpLTI(c, 1, 3)
				main.ifElse(c, func() {
					main.b().AddI(emitted, emitted, 1)
					main.b().AddI(pos, pos, 1)
				}, func() {
					// Match: emit a (distance, length) token.
					main.b().AddI(emitted, emitted, 2)
					main.b().Add(pos, pos, 1)
				})
			})
		})
		main.b().Out(emitted)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}
