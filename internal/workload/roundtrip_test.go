package workload

import (
	"reflect"
	"testing"

	"pathprof/internal/instrument"
	"pathprof/internal/ir"
	"pathprof/internal/sim"
)

// TestSuiteTextRoundTrip: every workload survives disassembly and
// reassembly unchanged, and the reassembled program runs identically —
// exercising the assembler over every instruction form the suite uses,
// including instrumented programs with probes and negative displacements.
func TestSuiteTextRoundTrip(t *testing.T) {
	for _, w := range Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog := w.Build(Test)
			text := prog.String()
			got, err := ir.ParseString(text)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if got.String() != text {
				t.Fatal("text round trip diverged")
			}
			m1 := sim.New(prog, sim.DefaultConfig())
			r1, err := m1.Run()
			if err != nil {
				t.Fatal(err)
			}
			m2 := sim.New(got, sim.DefaultConfig())
			r2, err := m2.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1.Output, r2.Output) || r1.Cycles != r2.Cycles {
				t.Fatal("reassembled program behaves differently")
			}
		})
	}
}

// TestInstrumentedTextRoundTrip: instrumented programs (probes, spills,
// counter ops) also round trip.
func TestInstrumentedTextRoundTrip(t *testing.T) {
	w, _ := ByName("compress")
	for _, mode := range []instrument.Mode{instrument.ModePathHW, instrument.ModeContextFlow} {
		plan, err := instrument.Instrument(w.Build(Test), instrument.DefaultOptions(mode))
		if err != nil {
			t.Fatal(err)
		}
		text := plan.Prog.String()
		got, err := ir.ParseString(text)
		if err != nil {
			t.Fatalf("mode %v: parse: %v", mode, err)
		}
		if got.String() != text {
			t.Fatalf("mode %v: round trip diverged", mode)
		}
	}
}
