// Package workload provides the synthetic benchmark suite standing in for
// SPEC95: twelve deterministic programs whose behavioural signatures mirror
// the integer and floating-point workloads the paper measured — interpreter
// dispatch, compression with hash probing, path-rich search and compilation,
// pointer chasing, object-database call depth, stencil sweeps, hierarchical
// grids and straight-line FP blocks.
//
// Each workload is constructed at a Scale: Test keeps unit tests fast,
// Ref approximates the relative magnitudes the experiments need.
package workload

import (
	"fmt"

	"pathprof/internal/ir"
	"pathprof/internal/mem"
)

// Scale selects workload input size.
type Scale int

const (
	// Test is a small configuration for unit tests.
	Test Scale = iota
	// Ref is the full experiment configuration.
	Ref
)

// Class tags a workload as integer-like or floating-point-like, mirroring
// the paper's CINT95/CFP95 split.
type Class int

const (
	// CINT marks integer workloads.
	CINT Class = iota
	// CFP marks floating-point workloads.
	CFP
)

func (c Class) String() string {
	if c == CFP {
		return "CFP"
	}
	return "CINT"
}

// Workload is one synthetic benchmark.
type Workload struct {
	Name  string
	Class Class
	// Analogue names the SPEC95 program whose behaviour this mirrors.
	Analogue string
	// Build constructs the program at the given scale.
	Build func(Scale) *ir.Program
}

// fb is a structured-programming veneer over the raw block builder: it
// tracks a current block and provides loops and conditionals, which keeps
// the twelve workload generators readable.
type fb struct {
	p    *ir.ProcBuilder
	cur  *ir.BlockBuilder
	next ir.Reg
}

// newFn starts a procedure and positions the cursor at its entry block.
func newFn(b *ir.Builder, name string, numArgs int) *fb {
	p := b.NewProc(name, numArgs)
	return &fb{p: p, cur: p.NewBlock(), next: 9}
}

// reg allocates a fresh scratch register. Registers r1..r8 are the calling
// convention; allocation starts at r9 and must leave headroom for
// instrumentation (the builder panics past r25).
func (f *fb) reg() ir.Reg {
	r := f.next
	if r > 25 {
		panic(fmt.Sprintf("workload proc #%d: out of scratch registers", f.p.ID()))
	}
	f.next++
	return r
}

// b returns the current block builder for direct instruction emission.
func (f *fb) b() *ir.BlockBuilder { return f.cur }

// loop emits `for cnt = 0; cnt < n; cnt++ { body }`. The body callback may
// emit into f.b() and open nested structures; tmp is a scratch register for
// the comparison.
func (f *fb) loop(cnt, tmp ir.Reg, n int64, body func()) {
	head := f.p.NewBlock()
	bodyB := f.p.NewBlock()
	after := f.p.NewBlock()
	f.cur.MovI(cnt, 0)
	f.cur.Jmp(head)
	head.CmpLTI(tmp, cnt, n)
	head.Br(tmp, bodyB, after)
	f.cur = bodyB
	body()
	f.cur.AddI(cnt, cnt, 1)
	f.cur.Jmp(head)
	f.cur = after
}

// loopReg is loop with a register bound (n already in a register).
func (f *fb) loopReg(cnt, tmp, bound ir.Reg, body func()) {
	head := f.p.NewBlock()
	bodyB := f.p.NewBlock()
	after := f.p.NewBlock()
	f.cur.MovI(cnt, 0)
	f.cur.Jmp(head)
	head.CmpLT(tmp, cnt, bound)
	head.Br(tmp, bodyB, after)
	f.cur = bodyB
	body()
	f.cur.AddI(cnt, cnt, 1)
	f.cur.Jmp(head)
	f.cur = after
}

// whileNZ emits `while (cond() != 0) { body }`, where cond emits code
// leaving its value in the given register.
func (f *fb) whileNZ(condReg ir.Reg, cond func(), body func()) {
	head := f.p.NewBlock()
	bodyB := f.p.NewBlock()
	after := f.p.NewBlock()
	f.cur.Jmp(head)
	f.cur = head
	cond()
	f.cur.Br(condReg, bodyB, after)
	f.cur = bodyB
	body()
	f.cur.Jmp(head)
	f.cur = after
}

// ifElse emits a two-armed conditional on cond != 0.
func (f *fb) ifElse(cond ir.Reg, then func(), els func()) {
	thenB := f.p.NewBlock()
	elseB := f.p.NewBlock()
	join := f.p.NewBlock()
	f.cur.Br(cond, thenB, elseB)
	f.cur = thenB
	then()
	f.cur.Jmp(join)
	f.cur = elseB
	els()
	f.cur.Jmp(join)
	f.cur = join
}

// ifThen emits a one-armed conditional.
func (f *fb) ifThen(cond ir.Reg, then func()) {
	f.ifElse(cond, then, func() {})
}

// ret ends the procedure, marking the current block as exit.
func (f *fb) ret() { f.cur.Ret() }

// halt ends main.
func (f *fb) halt() { f.cur.Halt() }

// xorshift emits a xorshift64 PRNG step on register s (the workloads'
// deterministic data generator).
func (f *fb) xorshift(s, tmp ir.Reg) {
	f.cur.ShlI(tmp, s, 13)
	f.cur.Xor(s, s, tmp)
	f.cur.ShrI(tmp, s, 7)
	f.cur.Xor(s, s, tmp)
	f.cur.ShlI(tmp, s, 17)
	f.cur.Xor(s, s, tmp)
}

// Array region helpers: workloads place arrays at fixed offsets above the
// global base; idx is a word index.
const arrBase = int64(mem.GlobalBase)

// loadArr emits dst = arr[idx] for an array at byte offset off.
func (f *fb) loadArr(dst, zero, idx ir.Reg, off int64) {
	f.cur.LoadIdx(dst, zero, idx, arrBase+off)
}

// storeArr emits arr[idx] = val.
func (f *fb) storeArr(zero, idx ir.Reg, off int64, val ir.Reg) {
	f.cur.StoreIdx(zero, idx, arrBase+off, val)
}

// pick returns n for Test scale and r for Ref scale.
func pick(s Scale, testVal, refVal int64) int64 {
	if s == Ref {
		return refVal
	}
	return testVal
}
