package workload

import "pathprof/internal/ir"

// buildImagePack is the 132.ijpeg analogue: blockwise image transforms —
// an 8x8 butterfly pass, data-dependent quantization clamping, and a
// zigzag-order repack. Good locality inside a block, strided access across
// rows, and a small number of hot loop paths.
func buildImagePack(s Scale) *ir.Program {
	b := ir.NewBuilder("imagepack")
	dim := pick(s, 32, 256) // image is dim x dim words

	// transform(r1 = block row, r2 = block col): butterfly + quantize one
	// 8x8 block in place, then write the packed plane.
	transform := newFn(b, "transform", 2)
	{
		z := transform.reg()
		baseIdx := transform.reg()
		i := transform.reg()
		j := transform.reg()
		tmp := transform.reg()
		idx := transform.reg()
		a := transform.reg()
		bv := transform.reg()
		c := transform.reg()
		acc := transform.reg()
		transform.b().MovI(z, 0)
		// baseIdx = (row*8)*dim + col*8
		transform.b().MulI(baseIdx, 1, 8)
		transform.b().MulI(baseIdx, baseIdx, dim)
		transform.b().MulI(tmp, 2, 8)
		transform.b().Add(baseIdx, baseIdx, tmp)

		// Row butterflies: a' = a+b, b' = a-b over column pairs.
		transform.loop(i, tmp, 8, func() {
			transform.loop(j, tmp, 4, func() {
				// idx = base + i*dim + j; pair at j+4.
				transform.b().MulI(idx, i, dim)
				transform.b().Add(idx, idx, baseIdx)
				transform.b().Add(idx, idx, j)
				transform.loadArr(a, z, idx, offImg)
				transform.b().AddI(idx, idx, 4)
				transform.loadArr(bv, z, idx, offImg)
				transform.b().Add(acc, a, bv)
				transform.b().Sub(bv, a, bv)
				transform.storeArr(z, idx, offImg, bv)
				transform.b().AddI(idx, idx, -4)
				transform.storeArr(z, idx, offImg, acc)
			})
		})

		// Quantize with clamping branches (data-dependent paths).
		transform.loop(i, tmp, 8, func() {
			transform.loop(j, tmp, 8, func() {
				transform.b().MulI(idx, i, dim)
				transform.b().Add(idx, idx, baseIdx)
				transform.b().Add(idx, idx, j)
				transform.loadArr(a, z, idx, offImg)
				transform.b().ShrI(a, a, 2)
				transform.b().CmpLTI(c, a, -255)
				transform.ifThen(c, func() {
					transform.b().MovI(a, -255)
				})
				transform.b().CmpLTI(c, a, 256)
				transform.ifElse(c, func() {}, func() {
					transform.b().MovI(a, 255)
				})
				transform.storeArr(z, idx, offImg, a)
				// Packed output plane (sequential writes).
				transform.b().MulI(c, i, 8)
				transform.b().Add(c, c, j)
				transform.storeArr(z, c, offImg2, a)
			})
		})
		transform.b().MovI(1, 0)
		transform.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		r := main.reg()
		cc := main.reg()
		passes := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 132)
		main.loop(i, tmp, dim*dim, func() {
			main.xorshift(seedR, tmp)
			main.b().AndI(tmp, seedR, 511)
			main.storeArr(z, i, offImg, tmp)
		})
		main.loop(passes, tmp, pick(s, 1, 8), func() {
			main.loop(r, tmp, dim/8, func() {
				main.loop(cc, tmp, dim/8, func() {
					main.b().Mov(1, r)
					main.b().Mov(2, cc)
					main.b().Call(transform.p)
				})
			})
		})
		main.b().Out(passes)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}

// buildStrHash is the 134.perl analogue: string processing — hash a word
// pool into a chained table with string comparison on collision, plus a
// branchy per-character translation pass.
func buildStrHash(s Scale) *ir.Program {
	b := ir.NewBuilder("strhash")
	words := pick(s, 256, 20_000)
	wordLen := int64(6) // words per "string"
	tabSize := int64(4096)

	// strEq(r1 = strA index, r2 = strB index) -> r1 = 1 if equal.
	strEq := newFn(b, "streq", 2)
	{
		z := strEq.reg()
		a := strEq.reg()
		bb := strEq.reg()
		i := strEq.reg()
		tmp := strEq.reg()
		va := strEq.reg()
		vb := strEq.reg()
		eq := strEq.reg()
		c := strEq.reg()
		strEq.b().MovI(z, 0)
		strEq.b().MulI(a, 1, wordLen)
		strEq.b().MulI(bb, 2, wordLen)
		strEq.b().MovI(eq, 1)
		strEq.loop(i, tmp, wordLen, func() {
			strEq.b().Add(tmp, a, i)
			strEq.loadArr(va, z, tmp, offStr)
			strEq.b().Add(tmp, bb, i)
			strEq.loadArr(vb, z, tmp, offStr)
			strEq.b().CmpEQ(c, va, vb)
			strEq.ifElse(c, func() {}, func() {
				strEq.b().MovI(eq, 0)
			})
		})
		strEq.b().Mov(1, eq)
		strEq.ret()
	}

	// hash(r1 = str index) -> r1 = bucket.
	hash := newFn(b, "hash", 1)
	{
		z := hash.reg()
		base := hash.reg()
		i := hash.reg()
		tmp := hash.reg()
		h := hash.reg()
		v := hash.reg()
		hash.b().MovI(z, 0)
		hash.b().MulI(base, 1, wordLen)
		hash.b().MovI(h, 5381)
		hash.loop(i, tmp, wordLen, func() {
			hash.b().Add(tmp, base, i)
			hash.loadArr(v, z, tmp, offStr)
			hash.b().ShlI(tmp, h, 5)
			hash.b().Add(h, h, tmp)
			hash.b().Xor(h, h, v)
		})
		hash.b().AndI(1, h, tabSize-1)
		hash.ret()
	}

	// translate(r1 = str index): per-word case-chain rewriting.
	translate := newFn(b, "translate", 1)
	{
		z := translate.reg()
		base := translate.reg()
		i := translate.reg()
		tmp := translate.reg()
		v := translate.reg()
		c := translate.reg()
		translate.b().MovI(z, 0)
		translate.b().MulI(base, 1, wordLen)
		translate.loop(i, tmp, wordLen, func() {
			translate.b().Add(tmp, base, i)
			translate.loadArr(v, z, tmp, offStr)
			translate.b().AndI(c, v, 3)
			translate.b().CmpEQI(c, c, 0)
			translate.ifElse(c, func() {
				translate.b().AddI(v, v, 13)
			}, func() {
				translate.b().AndI(c, v, 1)
				translate.ifElse(c, func() {
					translate.b().XorI(v, v, 0x20)
				}, func() {
					translate.b().ShrI(v, v, 1)
				})
			})
			translate.b().Add(tmp, base, i)
			translate.storeArr(z, tmp, offStr, v)
		})
		translate.b().MovI(1, 0)
		translate.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		bucket := main.reg()
		cur := main.reg()
		c := main.reg()
		hits := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 134)
		main.b().MovI(hits, 0)
		// Word pool: a modest vocabulary (every 16th word is fresh) so
		// lookups hit existing entries often.
		main.loop(i, tmp, words*wordLen, func() {
			main.xorshift(seedR, tmp)
			main.b().AndI(tmp, seedR, 127)
			main.storeArr(z, i, offStr, tmp)
		})
		main.loop(i, tmp, words, func() {
			main.b().AndI(1, i, int64(words/16)|15) // skewed reuse
			main.b().Call(hash.p)
			main.b().Mov(bucket, 1)
			main.loadArr(cur, z, bucket, offSTab)
			main.b().CmpEQI(c, cur, 0)
			main.ifElse(c, func() {
				// Insert: store index+1.
				main.b().AndI(tmp, i, int64(words/16)|15)
				main.b().AddI(tmp, tmp, 1)
				main.storeArr(z, bucket, offSTab, tmp)
			}, func() {
				// Compare on collision.
				main.b().AddI(1, cur, -1)
				main.b().AndI(2, i, int64(words/16)|15)
				main.b().Call(strEq.p)
				main.ifThen(1, func() {
					main.b().AddI(hits, hits, 1)
				})
			})
			// Translate every 4th word.
			main.b().AndI(c, i, 3)
			main.b().CmpEQI(c, c, 0)
			main.ifThen(c, func() {
				main.b().AndI(1, i, int64(words/16)|15)
				main.b().Call(translate.p)
			})
		})
		main.b().Out(hits)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}

// buildObjDB is the 147.vortex analogue: an object store with three object
// kinds, per-kind accessor and validator procedures, deep call chains
// (main → transaction → operation → kind handler → field access), many call
// sites, and therefore the largest calling context tree of the suite.
func buildObjDB(s Scale) *ir.Program {
	b := ir.NewBuilder("objdb")
	numObjs := int64(2048)
	objWords := int64(8)

	// field(r1 = obj, r2 = field) -> r1 = value.
	field := newFn(b, "field", 2)
	{
		z := field.reg()
		idx := field.reg()
		field.b().MovI(z, 0)
		field.b().MulI(idx, 1, objWords)
		field.b().Add(idx, idx, 2)
		field.loadArr(1, z, idx, offObj)
		field.ret()
	}
	// setfield(r1 = obj, r2 = field, r3 = value).
	setfield := newFn(b, "setfield", 3)
	{
		z := setfield.reg()
		idx := setfield.reg()
		setfield.b().MovI(z, 0)
		setfield.b().MulI(idx, 1, objWords)
		setfield.b().Add(idx, idx, 2)
		setfield.storeArr(z, idx, offObj, 3)
		setfield.b().MovI(1, 0)
		setfield.ret()
	}

	// Three kind handlers, each with its own validation shape.
	mkKind := func(name string, mix int64) *fb {
		f := newFn(b, name, 1)
		obj := f.reg()
		v := f.reg()
		c := f.reg()
		f.b().Mov(obj, 1)
		// Read field (mix&3), validate, write field ((mix>>2)&3).
		f.b().Mov(1, obj)
		f.b().MovI(2, mix&3)
		f.b().Call(field.p)
		f.b().Mov(v, 1)
		f.b().CmpLTI(c, v, 1<<20)
		f.ifElse(c, func() {
			f.b().MulI(v, v, 3)
			f.b().AddI(v, v, mix)
		}, func() {
			f.b().ShrI(v, v, 3)
		})
		f.b().Mov(1, obj)
		f.b().MovI(2, (mix>>2)&3)
		f.b().Mov(3, v)
		f.b().Call(setfield.p)
		f.b().Mov(1, v)
		f.ret()
		return f
	}
	kindA := mkKind("kind_part", 5)
	kindB := mkKind("kind_assembly", 9)
	kindC := mkKind("kind_document", 14)

	// validate(r1 = obj) -> r1 = 1 if the object passes its kind's check.
	validate := newFn(b, "validate", 1)
	{
		obj := validate.reg()
		v := validate.reg()
		c := validate.reg()
		validate.b().Mov(obj, 1)
		validate.b().Mov(1, obj)
		validate.b().MovI(2, 1)
		validate.b().Call(field.p)
		validate.b().Mov(v, 1)
		validate.b().CmpLTI(c, v, 0)
		validate.ifElse(c, func() {
			validate.b().MovI(1, 0)
		}, func() {
			validate.b().MovI(1, 1)
		})
		validate.ret()
	}

	// audit(r1 = obj): log a fingerprint of the access into the index area.
	audit := newFn(b, "audit", 1)
	{
		z := audit.reg()
		obj := audit.reg()
		slot := audit.reg()
		v := audit.reg()
		audit.b().MovI(z, 0)
		audit.b().Mov(obj, 1)
		audit.b().Mov(1, obj)
		audit.b().MovI(2, 3)
		audit.b().Call(field.p)
		audit.b().Mov(v, 1)
		audit.b().AndI(slot, obj, 255)
		audit.b().AddI(slot, slot, numObjs)
		audit.storeArr(z, slot, offIndex, v)
		audit.b().MovI(1, 0)
		audit.ret()
	}

	// operation(r1 = obj): dispatch on the object's kind tag (word 0).
	operation := newFn(b, "operation", 1)
	{
		z := operation.reg()
		obj := operation.reg()
		kind := operation.reg()
		idx := operation.reg()
		c := operation.reg()
		operation.b().MovI(z, 0)
		operation.b().Mov(obj, 1)
		operation.b().MulI(idx, obj, objWords)
		operation.loadArr(kind, z, idx, offObj)
		operation.b().AndI(kind, kind, 3)
		operation.b().Mov(1, obj)
		operation.b().Call(validate.p)
		operation.ifElse(1, func() {
			operation.b().CmpEQI(c, kind, 0)
			operation.ifElse(c, func() {
				operation.b().Mov(1, obj)
				operation.b().Call(kindA.p)
			}, func() {
				operation.b().CmpEQI(c, kind, 1)
				operation.ifElse(c, func() {
					operation.b().Mov(1, obj)
					operation.b().Call(kindB.p)
				}, func() {
					operation.b().Mov(1, obj)
					operation.b().Call(kindC.p)
				})
			})
		}, func() {
			operation.b().MovI(1, 0)
		})
		operation.b().Mov(1, obj)
		operation.b().Call(audit.p)
		operation.ret()
	}

	// transaction(r1 = seed): touch a run of objects through the index.
	txn := newFn(b, "transaction", 1)
	{
		z := txn.reg()
		seedR := txn.reg()
		i := txn.reg()
		tmp := txn.reg()
		obj := txn.reg()
		txn.b().MovI(z, 0)
		txn.b().Mov(seedR, 1)
		txn.loop(i, tmp, 8, func() {
			txn.xorshift(seedR, tmp)
			txn.b().AndI(obj, seedR, numObjs-1)
			// Indirection through the index (extra dependent load).
			txn.loadArr(obj, z, obj, offIndex)
			txn.b().Mov(1, obj)
			txn.b().Call(operation.p)
		})
		txn.b().MovI(1, 0)
		txn.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 147)
		// Objects: kind tag + payload.
		main.loop(i, tmp, numObjs, func() {
			main.xorshift(seedR, tmp)
			main.b().MulI(1, i, objWords)
			main.storeArr(z, 1, offObj, seedR)
		})
		// Index: a permutation-ish mapping.
		main.loop(i, tmp, numObjs, func() {
			main.b().MulI(tmp, i, 17)
			main.b().AddI(tmp, tmp, 7)
			main.b().AndI(tmp, tmp, numObjs-1)
			main.storeArr(z, i, offIndex, tmp)
		})
		main.loop(i, tmp, pick(s, 60, 4000), func() {
			main.b().Mov(1, i)
			main.b().AddI(1, 1, 1)
			main.b().Call(txn.p)
		})
		main.b().Out(i)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}
