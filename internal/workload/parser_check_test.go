package workload

import (
	"testing"

	"pathprof/internal/sim"
)

func TestParserTriggersLongjmp(t *testing.T) {
	for _, sc := range []Scale{Test, Ref} {
		w, _ := ByName("parser")
		m := sim.New(w.Build(sc), sim.DefaultConfig())
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		parsed, errors := res.Output[0], res.Output[1]
		t.Logf("scale %v: parsed=%d errors=%d instrs=%d", sc, parsed, errors, res.Instrs)
		if errors == 0 {
			t.Errorf("scale %v: no longjmp recoveries; the error path is dead", sc)
		}
		if parsed == 0 {
			t.Errorf("scale %v: nothing parsed", sc)
		}
	}
}
