package workload

import "pathprof/internal/ir"

// Layout offsets for the second integer group.
const (
	offTree  = 0       // compiler: expression nodes; interp: cons cells
	offEmit  = 1 << 20 // compiler: emitted ops
	offHeap  = 0       // interp: heap
	offImg   = 0       // imagepack: image
	offImg2  = 1 << 20 // imagepack: output plane
	offStr   = 0       // strhash: string pool
	offSTab  = 1 << 20 // strhash: hash table
	offObj   = 0       // objdb: object store
	offIndex = 1 << 20 // objdb: index
)

// buildCompiler is the 126.gcc analogue: a toy expression compiler —
// generate random expression trees, fold constants, lower to a linear op
// stream, then run a branchy linear-scan "register allocator" over it. Its
// procedures are larger and branchier than the rest of the suite, so it
// executes roughly an order of magnitude more distinct paths, reproducing
// the go/gcc outlier behaviour of Tables 4 and 5.
//
// Node encoding (3 words per node at offTree): kind, left|value, right.
// Kinds: 0..3 binary (+ - * &), 4 constant, 5 variable.
func buildCompiler(s Scale) *ir.Program {
	b := ir.NewBuilder("compiler")

	// gen(r1 = node index base, r2 = depth, r3 = seed) -> r1 = next free index.
	gen := newFn(b, "gen", 3)
	{
		z := gen.reg()
		node := gen.reg()
		depth := gen.reg()
		seedR := gen.reg()
		tmp := gen.reg()
		kind := gen.reg()
		c := gen.reg()
		idx3 := gen.reg()
		next := gen.reg()
		gen.b().MovI(z, 0)
		gen.b().Mov(node, 1)
		gen.b().Mov(depth, 2)
		gen.b().Mov(seedR, 3)
		gen.xorshift(seedR, tmp)
		gen.b().MulI(idx3, node, 3)
		gen.b().CmpLEI(c, depth, 0)
		gen.ifElse(c, func() {
			// Leaf: constant or variable.
			gen.b().AndI(kind, seedR, 1)
			gen.b().AddI(kind, kind, 4)
			gen.storeArr(z, idx3, offTree, kind)
			gen.b().AddI(tmp, idx3, 1)
			gen.b().AndI(kind, seedR, 255)
			gen.storeArr(z, tmp, offTree, kind)
			gen.b().AddI(1, node, 1) // return the next free index
		}, func() {
			gen.b().AndI(kind, seedR, 3)
			gen.storeArr(z, idx3, offTree, kind)
			// Left child sits at node+1; record it, then generate it.
			gen.b().AddI(tmp, idx3, 1)
			gen.b().AddI(c, node, 1)
			gen.storeArr(z, tmp, offTree, c)
			gen.b().AddI(1, node, 1)
			gen.b().AddI(2, depth, -1)
			gen.b().Mov(3, seedR)
			gen.b().Call(gen.p)
			// r1 = next free index = the right child's base; record it and
			// generate the right subtree with a decorrelated seed.
			gen.b().Mov(next, 1)
			gen.b().AddI(tmp, idx3, 2)
			gen.storeArr(z, tmp, offTree, next)
			gen.b().Mov(1, next)
			gen.b().AddI(2, depth, -1)
			gen.b().MulI(3, seedR, 6364136223846793005)
			gen.b().AddI(3, 3, 1442695040888963407)
			gen.b().Call(gen.p)
			// r1 already holds the next free index: the return value.
		})
		gen.ret()
	}

	// fold(r1 = node) -> r1 = value, r2 = isConst. A recursive constant
	// folder with per-operator branches: the path-rich core.
	fold := newFn(b, "fold", 1)
	{
		z := fold.reg()
		node := fold.reg()
		kind := fold.reg()
		idx3 := fold.reg()
		tmp := fold.reg()
		lv := fold.reg()
		lc := fold.reg()
		rv := fold.reg()
		rc := fold.reg()
		c := fold.reg()
		fold.b().MovI(z, 0)
		fold.b().Mov(node, 1)
		fold.b().MulI(idx3, node, 3)
		fold.loadArr(kind, z, idx3, offTree)
		fold.b().CmpEQI(c, kind, 4)
		fold.ifElse(c, func() {
			fold.b().AddI(tmp, idx3, 1)
			fold.loadArr(1, z, tmp, offTree)
			fold.b().MovI(2, 1)
		}, func() {
			fold.b().CmpEQI(c, kind, 5)
			fold.ifElse(c, func() {
				fold.b().AddI(tmp, idx3, 1)
				fold.loadArr(1, z, tmp, offTree)
				fold.b().MovI(2, 0)
			}, func() {
				// Binary: fold children.
				fold.b().AddI(tmp, idx3, 1)
				fold.loadArr(1, z, tmp, offTree)
				fold.b().Call(fold.p)
				fold.b().Mov(lv, 1)
				fold.b().Mov(lc, 2)
				fold.b().AddI(tmp, idx3, 2)
				fold.loadArr(1, z, tmp, offTree)
				fold.b().Call(fold.p)
				fold.b().Mov(rv, 1)
				fold.b().Mov(rc, 2)
				// Operator dispatch.
				fold.b().CmpEQI(c, kind, 0)
				fold.ifElse(c, func() {
					fold.b().Add(1, lv, rv)
				}, func() {
					fold.b().CmpEQI(c, kind, 1)
					fold.ifElse(c, func() {
						fold.b().Sub(1, lv, rv)
					}, func() {
						fold.b().CmpEQI(c, kind, 2)
						fold.ifElse(c, func() {
							fold.b().Mul(1, lv, rv)
							// Strength reduction branch: x*1, x*0.
							fold.b().CmpEQI(c, rv, 0)
							fold.ifThen(c, func() {
								fold.b().MovI(1, 0)
							})
						}, func() {
							fold.b().And(1, lv, rv)
						})
					})
				})
				fold.b().And(2, lc, rc) // const iff both const
				// Algebraic identity branches add path variety.
				fold.b().CmpEQI(c, lv, 0)
				fold.ifThen(c, func() {
					fold.b().XorI(2, 2, 0) // no-op, but a distinct path
				})
			})
		})
		fold.ret()
	}

	// emit(r1 = node) -> r1 = ops emitted. Lowers the tree to a linear op
	// buffer with a small peephole branch per op.
	emit := newFn(b, "emit", 1)
	{
		z := emit.reg()
		node := emit.reg()
		kind := emit.reg()
		idx3 := emit.reg()
		tmp := emit.reg()
		cnt := emit.reg()
		c := emit.reg()
		slot := emit.reg()
		emit.b().MovI(z, 0)
		emit.b().Mov(node, 1)
		emit.b().MulI(idx3, node, 3)
		emit.loadArr(kind, z, idx3, offTree)
		emit.b().CmpLTI(c, kind, 4)
		emit.ifElse(c, func() {
			emit.b().AddI(tmp, idx3, 1)
			emit.loadArr(1, z, tmp, offTree)
			emit.b().Call(emit.p)
			emit.b().Mov(cnt, 1)
			emit.b().AddI(tmp, idx3, 2)
			emit.loadArr(1, z, tmp, offTree)
			emit.b().Call(emit.p)
			emit.b().Add(cnt, cnt, 1)
			// Append the operator to the op buffer (bounded ring).
			emit.b().AndI(slot, cnt, 4095)
			emit.storeArr(z, slot, offEmit, kind)
		}, func() {
			emit.b().MovI(cnt, 1)
			emit.b().AndI(slot, node, 4095)
			emit.storeArr(z, slot, offEmit, kind)
		})
		emit.b().Mov(1, cnt)
		emit.ret()
	}

	// regalloc(r1 = nops): a linear pass with a branchy state machine —
	// every iteration picks one of many paths based on the op stream.
	regalloc := newFn(b, "regalloc", 1)
	{
		z := regalloc.reg()
		nops := regalloc.reg()
		i := regalloc.reg()
		tmp := regalloc.reg()
		op := regalloc.reg()
		live := regalloc.reg()
		spills := regalloc.reg()
		c := regalloc.reg()
		regalloc.b().MovI(z, 0)
		regalloc.b().Mov(nops, 1)
		regalloc.b().MovI(live, 0)
		regalloc.b().MovI(spills, 0)
		regalloc.b().AndI(nops, nops, 4095)
		regalloc.loopReg(i, tmp, nops, func() {
			regalloc.loadArr(op, z, i, offEmit)
			regalloc.b().CmpLTI(c, op, 4)
			regalloc.ifElse(c, func() {
				regalloc.b().AddI(live, live, -1) // binary op kills one value
			}, func() {
				regalloc.b().AddI(live, live, 1) // leaf defines a value
			})
			regalloc.b().CmpLTI(c, live, 0)
			regalloc.ifThen(c, func() {
				regalloc.b().MovI(live, 0)
			})
			regalloc.b().CmpLTI(c, live, 7)
			regalloc.ifElse(c, func() {
				regalloc.b().AndI(tmp, op, 1)
				regalloc.ifThen(tmp, func() {
					regalloc.b().AddI(spills, spills, 0) // coalesce path
				})
			}, func() {
				regalloc.b().AddI(spills, spills, 1) // spill path
				regalloc.b().AddI(live, live, -2)
			})
		})
		regalloc.b().Mov(1, spills)
		regalloc.ret()
	}

	// peephole(r1 = window base): a long chain of data-dependent diamonds
	// over the op buffer — the path-rich core that gives this workload its
	// gcc-like executed-path counts (2^10 potential paths through one body).
	peephole := newFn(b, "peephole", 1)
	{
		z := peephole.reg()
		base := peephole.reg()
		v := peephole.reg()
		c := peephole.reg()
		acc := peephole.reg()
		idx := peephole.reg()
		peephole.b().MovI(z, 0)
		peephole.b().AndI(base, 1, 4095-16)
		peephole.b().MovI(acc, 0)
		for k := int64(0); k < 10; k++ {
			peephole.b().AddI(idx, base, k)
			peephole.loadArr(v, z, idx, offEmit)
			peephole.b().CmpLEI(c, v, 2)
			peephole.ifElse(c, func() {
				peephole.b().ShlI(acc, acc, 1)
				peephole.b().Add(acc, acc, v)
				peephole.storeArr(z, idx, offEmit, acc)
			}, func() {
				peephole.b().XorI(acc, acc, 0x3F)
				peephole.b().AddI(acc, acc, 1)
			})
		}
		peephole.b().Mov(1, acc)
		peephole.ret()
	}

	main := newFn(b, "main", 0)
	{
		seedR := main.reg()
		t := main.reg()
		tmp := main.reg()
		acc := main.reg()
		main.b().MovI(seedR, 126)
		main.b().MovI(acc, 0)
		main.loop(t, tmp, pick(s, 3, 220), func() {
			main.xorshift(seedR, tmp)
			main.b().MovI(1, 0)
			main.b().MovI(2, pick(s, 4, 7))
			main.b().Mov(3, seedR)
			main.b().Call(gen.p)
			main.b().MovI(1, 0)
			main.b().Call(fold.p)
			main.b().Add(acc, acc, 1)
			main.b().MovI(1, 0)
			main.b().Call(emit.p)
			main.b().Call(regalloc.p) // r1 = ops emitted
			main.b().Add(acc, acc, 1)
			// Peephole over several windows of the op stream.
			main.b().Mov(1, seedR)
			main.b().Call(peephole.p)
			main.b().Add(1, 1, t)
			main.b().Call(peephole.p)
			main.b().Add(acc, acc, 1)
		})
		main.b().Out(acc)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}

// buildInterp is the 130.li analogue: a cons-cell interpreter — recursive
// evaluation over linked lists in the heap, dependent-load pointer chasing,
// and a small operator dispatch.
//
// Cell encoding (2 words at offHeap): car, cdr (indices; 0 = nil; values
// are tagged odd as 2v+1).
func buildInterp(s Scale) *ir.Program {
	b := ir.NewBuilder("interp")
	heapCells := int64(32768)

	// eval(r1 = cell) -> r1 = value. Sums tagged values through the spine,
	// with per-element operator branches and recursion into nested lists.
	eval := newFn(b, "eval", 1)
	{
		z := eval.reg()
		cell := eval.reg()
		car := eval.reg()
		acc := eval.reg()
		tmp := eval.reg()
		c := eval.reg()
		going := eval.reg()
		eval.b().MovI(z, 0)
		eval.b().Mov(cell, 1)
		eval.b().MovI(acc, 0)
		eval.whileNZ(going, func() {
			eval.b().CmpNEI(going, cell, 0)
		}, func() {
			eval.b().ShlI(tmp, cell, 1)
			eval.loadArr(car, z, tmp, offHeap)
			eval.b().AndI(c, car, 1)
			eval.ifElse(c, func() {
				// Tagged value: fold into the accumulator with a
				// value-dependent operator.
				eval.b().ShrI(tmp, car, 1)
				eval.b().AndI(c, tmp, 3)
				eval.b().CmpEQI(c, c, 0)
				eval.ifElse(c, func() {
					eval.b().Sub(acc, acc, tmp)
				}, func() {
					eval.b().Add(acc, acc, tmp)
				})
			}, func() {
				// Sublist: recurse.
				eval.b().CmpNEI(c, car, 0)
				eval.ifThen(c, func() {
					eval.b().ShrI(1, car, 1)
					eval.b().Call(eval.p)
					eval.b().Add(acc, acc, 1)
				})
			})
			// cdr
			eval.b().ShlI(tmp, cell, 1)
			eval.b().AddI(tmp, tmp, 1)
			eval.loadArr(cell, z, tmp, offHeap)
		})
		eval.b().Mov(1, acc)
		eval.ret()
	}

	// build(r1 = seed, r2 = length, r3 = depth) -> r1 = head cell index.
	build := newFn(b, "build", 3)
	{
		z := build.reg()
		seedR := build.reg()
		length := build.reg()
		depth := build.reg()
		head := build.reg()
		tmp := build.reg()
		i := build.reg()
		cellIdx := build.reg()
		c := build.reg()
		prev := build.reg()
		build.b().MovI(z, 0)
		build.b().Mov(seedR, 1)
		build.b().Mov(length, 2)
		build.b().Mov(depth, 3)
		build.b().MovI(head, 0)
		build.b().MovI(prev, 0)
		build.loopReg(i, tmp, length, func() {
			// Allocate: bump pointer kept in heap slot 1 (cell 0 reserved
			// as nil).
			build.b().MovI(tmp, 1)
			build.loadArr(cellIdx, z, tmp, offHeap)
			build.b().AddI(cellIdx, cellIdx, 1)
			build.b().CmpLTI(c, cellIdx, heapCells/2-2)
			build.ifElse(c, func() {}, func() {
				build.b().MovI(cellIdx, 2) // wrap: reuse the arena
			})
			build.b().MovI(tmp, 1)
			build.storeArr(z, tmp, offHeap, cellIdx)
			build.xorshift(seedR, tmp)
			// car: nested list 1 time in 8 (when depth remains), else value.
			build.b().AndI(c, seedR, 7)
			build.b().CmpEQI(c, c, 0)
			build.ifElse(c, func() {
				build.b().CmpLEI(tmp, depth, 0)
				build.ifElse(tmp, func() {
					// No depth left: tagged value.
					build.b().AndI(tmp, seedR, 1023)
					build.b().ShlI(tmp, tmp, 1)
					build.b().OrI(tmp, tmp, 1)
					build.b().ShlI(c, cellIdx, 1)
					build.storeArr(z, c, offHeap, tmp)
				}, func() {
					// Recurse: sublist of length 3.
					build.b().Mov(tmp, cellIdx)
					build.b().Mov(1, seedR)
					build.b().MovI(2, 3)
					build.b().AddI(3, depth, -1)
					build.b().Mov(prev, tmp) // keep cellIdx live across call
					build.b().Call(build.p)
					build.b().Mov(cellIdx, prev)
					build.b().ShlI(tmp, 1, 1) // store sublist untagged (even)
					build.b().ShlI(c, cellIdx, 1)
					build.storeArr(z, c, offHeap, tmp)
				})
			}, func() {
				build.b().AndI(tmp, seedR, 1023)
				build.b().ShlI(tmp, tmp, 1)
				build.b().OrI(tmp, tmp, 1)
				build.b().ShlI(c, cellIdx, 1)
				build.storeArr(z, c, offHeap, tmp)
			})
			// cdr: link to the previous head (building in reverse).
			build.b().ShlI(tmp, cellIdx, 1)
			build.b().AddI(tmp, tmp, 1)
			build.storeArr(z, tmp, offHeap, head)
			build.b().Mov(head, cellIdx)
		})
		build.b().Mov(1, head)
		build.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		acc := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 130)
		main.b().MovI(acc, 0)
		// Initialize the bump pointer past nil.
		main.b().MovI(tmp, 1)
		main.b().MovI(i, 1)
		main.storeArr(z, tmp, offHeap, i)
		main.loop(i, tmp, pick(s, 4, 700), func() {
			main.xorshift(seedR, tmp)
			main.b().Mov(1, seedR)
			main.b().MovI(2, 40)
			main.b().MovI(3, 2)
			main.b().Call(build.p)
			main.b().Call(eval.p)
			main.b().Add(acc, acc, 1)
		})
		main.b().Out(acc)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}
