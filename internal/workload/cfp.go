package workload

import "pathprof/internal/ir"

// Layout offsets for the floating-point group.
const (
	offA = 0
	offB = 4 << 20
	offC = 8 << 20
)

// initFPArray emits code filling `words` words at off with small positive
// floats derived from the seed register.
func initFPArray(f *fb, z, seedR, i, tmp, fv ir.Reg, off int64, words int64) {
	f.loop(i, tmp, words, func() {
		f.xorshift(seedR, tmp)
		f.b().AndI(tmp, seedR, 1023)
		f.b().AddI(tmp, tmp, 1)
		f.b().CvtIF(fv, tmp)
		f.storeArr(z, i, off, fv)
	})
}

// buildMesh is the 101.tomcatv analogue: repeated five-point stencil sweeps
// over an N×N mesh with a boundary branch — one dominant interior path that
// carries nearly all execution and most data-cache misses.
func buildMesh(s Scale) *ir.Program {
	b := ir.NewBuilder("mesh")
	n := pick(s, 24, 160)

	// sweep(): one relaxation pass A -> B, then copy back.
	sweep := newFn(b, "sweep", 0)
	{
		z := sweep.reg()
		i := sweep.reg()
		j := sweep.reg()
		tmp := sweep.reg()
		idx := sweep.reg()
		ctr := sweep.reg()
		up := sweep.reg()
		down := sweep.reg()
		left := sweep.reg()
		acc := sweep.reg()
		c := sweep.reg()
		quarter := sweep.reg()
		sweep.b().MovI(z, 0)
		// quarter = 0.25
		sweep.b().MovI(tmp, 1)
		sweep.b().CvtIF(quarter, tmp)
		sweep.b().MovI(tmp, 4)
		sweep.b().CvtIF(c, tmp)
		sweep.b().FDiv(quarter, quarter, c)
		sweep.loop(i, tmp, n, func() {
			sweep.loop(j, tmp, n, func() {
				sweep.b().MulI(idx, i, n)
				sweep.b().Add(idx, idx, j)
				// Boundary test: i==0 || i==n-1 || j==0 || j==n-1.
				sweep.b().CmpEQI(c, i, 0)
				sweep.b().CmpEQI(tmp, j, 0)
				sweep.b().Or(c, c, tmp)
				sweep.b().CmpEQI(tmp, i, n-1)
				sweep.b().Or(c, c, tmp)
				sweep.b().CmpEQI(tmp, j, n-1)
				sweep.b().Or(c, c, tmp)
				sweep.ifElse(c, func() {
					// Boundary: copy through.
					sweep.loadArr(ctr, z, idx, offA)
					sweep.storeArr(z, idx, offB, ctr)
				}, func() {
					// Interior: the hot path.
					sweep.loadArr(ctr, z, idx, offA)
					sweep.b().AddI(tmp, idx, -1)
					sweep.loadArr(left, z, tmp, offA)
					sweep.b().AddI(tmp, idx, 1)
					sweep.loadArr(acc, z, tmp, offA)
					sweep.b().FAdd(acc, acc, left)
					sweep.b().AddI(tmp, idx, -int64(n))
					sweep.loadArr(up, z, tmp, offA)
					sweep.b().FAdd(acc, acc, up)
					sweep.b().AddI(tmp, idx, int64(n))
					sweep.loadArr(down, z, tmp, offA)
					sweep.b().FAdd(acc, acc, down)
					sweep.b().FMul(acc, acc, quarter)
					sweep.b().FAdd(acc, acc, ctr)
					sweep.b().FMul(acc, acc, quarter)
					sweep.storeArr(z, idx, offB, acc)
				})
			})
		})
		// Copy B back to A.
		sweep.loop(idx, tmp, n*n, func() {
			sweep.loadArr(ctr, z, idx, offB)
			sweep.storeArr(z, idx, offA, ctr)
		})
		sweep.b().MovI(1, 0)
		sweep.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		fv := main.reg()
		iter := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 101)
		initFPArray(main, z, seedR, i, tmp, fv, offA, n*n)
		main.loop(iter, tmp, pick(s, 2, 12), func() {
			main.b().Call(sweep.p)
		})
		main.b().Out(iter)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}

// buildShallow is the 102.swim analogue: three coupled planes updated by
// two separate stencil loops per timestep — FP heavy, highly regular, very
// few paths.
func buildShallow(s Scale) *ir.Program {
	b := ir.NewBuilder("shallow")
	n := pick(s, 24, 150)

	// stepUV(): U += f(V, C); V += g(U, C).
	step := newFn(b, "timestep", 0)
	{
		z := step.reg()
		i := step.reg()
		tmp := step.reg()
		u := step.reg()
		v := step.reg()
		cc := step.reg()
		t2 := step.reg()
		step.b().MovI(z, 0)
		inner := n*n - int64(n) - 1
		step.loop(i, tmp, inner, func() {
			step.loadArr(u, z, i, offA)
			step.loadArr(v, z, i, offB)
			step.b().AddI(tmp, i, 1)
			step.loadArr(cc, z, tmp, offC)
			step.b().FMul(t2, v, cc)
			step.b().FAdd(u, u, t2)
			step.storeArr(z, i, offA, u)
		})
		step.loop(i, tmp, inner, func() {
			step.loadArr(v, z, i, offB)
			step.b().AddI(tmp, i, int64(n))
			step.loadArr(u, z, tmp, offA)
			step.loadArr(cc, z, i, offC)
			step.b().FMul(t2, u, cc)
			step.b().FSub(v, v, t2)
			step.storeArr(z, i, offB, v)
		})
		step.b().MovI(1, 0)
		step.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		fv := main.reg()
		iter := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 102)
		initFPArray(main, z, seedR, i, tmp, fv, offA, n*n)
		initFPArray(main, z, seedR, i, tmp, fv, offB, n*n)
		initFPArray(main, z, seedR, i, tmp, fv, offC, n*n)
		main.loop(iter, tmp, pick(s, 2, 14), func() {
			main.b().Call(step.p)
		})
		main.b().Out(iter)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}

// buildGrid is the 107.mgrid analogue: relaxation at a hierarchy of
// power-of-two strides over one large array. The strided levels turn
// sequential locality into conflict and capacity misses, concentrating
// misses in the coarse-level paths.
func buildGrid(s Scale) *ir.Program {
	b := ir.NewBuilder("grid")
	n := pick(s, 1<<12, 1<<17) // words

	// relax(r1 = stride): one smoothing pass at the given stride.
	relax := newFn(b, "relax", 1)
	{
		z := relax.reg()
		stride := relax.reg()
		i := relax.reg()
		tmp := relax.reg()
		a := relax.reg()
		bv := relax.reg()
		c := relax.reg()
		going := relax.reg()
		half := relax.reg()
		relax.b().MovI(z, 0)
		relax.b().Mov(stride, 1)
		relax.b().MovI(tmp, 2)
		relax.b().CvtIF(half, tmp)
		relax.b().MovI(i, 0)
		relax.whileNZ(going, func() {
			relax.b().MovI(tmp, n)
			relax.b().Sub(tmp, tmp, stride)
			relax.b().CmpLT(going, i, tmp)
		}, func() {
			relax.loadArr(a, z, i, offA)
			relax.b().Add(tmp, i, stride)
			relax.loadArr(bv, z, tmp, offA)
			relax.b().FAdd(c, a, bv)
			relax.b().FDiv(c, c, half)
			relax.storeArr(z, i, offA, c)
			relax.b().Add(i, i, stride)
		})
		relax.b().MovI(1, 0)
		relax.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		fv := main.reg()
		cycle := main.reg()
		stride := main.reg()
		c := main.reg()
		going := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 107)
		initFPArray(main, z, seedR, i, tmp, fv, offA, n)
		main.loop(cycle, tmp, pick(s, 1, 3), func() {
			// V-cycle: stride 1,2,4,...,64 then back down.
			main.b().MovI(stride, 1)
			main.whileNZ(going, func() {
				main.b().CmpLEI(going, stride, 64)
			}, func() {
				main.b().Mov(1, stride)
				main.b().Call(relax.p)
				main.b().ShlI(stride, stride, 1)
			})
			main.b().MovI(stride, 64)
			main.whileNZ(going, func() {
				main.b().CmpLEI(c, stride, 0)
				main.b().XorI(going, c, 1)
			}, func() {
				main.b().Mov(1, stride)
				main.b().Call(relax.p)
				main.b().ShrI(stride, stride, 1)
			})
		})
		main.b().Out(cycle)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}

// buildFPStraight is the 145.fpppp analogue: enormous straight-line blocks
// of dependent floating-point arithmetic with almost no control flow — the
// lowest path count of the suite, FP-stall bound, with I-cache pressure
// from sheer code size.
func buildFPStraight(s Scale) *ir.Program {
	b := ir.NewBuilder("fpstraight")
	n := int64(512)

	// kernel(r1 = base index): a long unrolled dependent FP chain over 32
	// consecutive elements.
	kernel := newFn(b, "kernel", 1)
	{
		z := kernel.reg()
		base := kernel.reg()
		idx := kernel.reg()
		a := kernel.reg()
		bv := kernel.reg()
		acc := kernel.reg()
		kernel.b().MovI(z, 0)
		kernel.b().Mov(base, 1)
		kernel.loadArr(acc, z, base, offA)
		for k := int64(0); k < 32; k++ {
			kernel.b().AddI(idx, base, k)
			kernel.loadArr(a, z, idx, offA)
			kernel.b().AddI(idx, base, (k+7)&255)
			kernel.loadArr(bv, z, idx, offB)
			// Dependent chain: acc flows through every step.
			kernel.b().FMul(a, a, bv)
			kernel.b().FAdd(acc, acc, a)
			kernel.b().FMul(acc, acc, bv)
			kernel.b().FSub(acc, acc, a)
			kernel.b().FAdd(a, acc, bv)
			kernel.b().FMul(acc, acc, a)
		}
		kernel.b().FSqrt(acc, acc)
		kernel.storeArr(z, base, offC, acc)
		kernel.b().MovI(1, 0)
		kernel.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		fv := main.reg()
		iter := main.reg()
		c0 := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 145)
		initFPArray(main, z, seedR, i, tmp, fv, offA, n)
		initFPArray(main, z, seedR, i, tmp, fv, offB, n)
		main.loop(iter, tmp, pick(s, 4, 180), func() {
			main.loop(i, tmp, n-40, func() {
				main.b().AndI(c0, i, 7)
				main.b().CmpEQI(c0, c0, 0)
				main.ifThen(c0, func() {
					main.b().Mov(1, i)
					main.b().Call(kernel.p)
				})
			})
		})
		main.b().Out(iter)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}
