package workload

import "pathprof/internal/ir"

// Second floating-point group: lattice (su2cor), hydro (hydro2d), lusolve
// (applu), turbulence (turb3d), weather (apsi), plasma (wave5). They share
// the offA/offB/offC plane layout of cfp.go.

// buildLattice is the 103.su2cor analogue: gather-style updates through an
// index array — FP arithmetic whose operands arrive via data-dependent
// indirection, spreading misses across a gather path.
func buildLattice(s Scale) *ir.Program {
	b := ir.NewBuilder("lattice")
	n := pick(s, 1<<10, 1<<15)

	// gatherStep(r1 = offset seed): one sweep of x[i] += y[idx[i]] * c.
	step := newFn(b, "gather_step", 1)
	{
		z := step.reg()
		i := step.reg()
		tmp := step.reg()
		idx := step.reg()
		x := step.reg()
		y := step.reg()
		cc := step.reg()
		step.b().MovI(z, 0)
		// cc = 1.0 + small
		step.b().MovI(tmp, 3)
		step.b().CvtIF(cc, tmp)
		step.loop(i, tmp, n, func() {
			step.loadArr(idx, z, i, offC) // index plane (integers)
			step.b().Add(idx, idx, 1)     // r1 = offset seed
			step.b().AndI(idx, idx, n-1)
			step.loadArr(y, z, idx, offB)
			step.b().FMul(y, y, cc)
			step.loadArr(x, z, i, offA)
			step.b().FAdd(x, x, y)
			step.storeArr(z, i, offA, x)
		})
		step.b().MovI(1, 0)
		step.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		fv := main.reg()
		iter := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 103)
		initFPArray(main, z, seedR, i, tmp, fv, offA, n)
		initFPArray(main, z, seedR, i, tmp, fv, offB, n)
		// Index plane: a scrambled permutation-ish gather map.
		main.loop(i, tmp, n, func() {
			main.xorshift(seedR, tmp)
			main.b().AndI(tmp, seedR, n-1)
			main.storeArr(z, i, offC, tmp)
		})
		main.loop(iter, tmp, pick(s, 2, 12), func() {
			main.b().Mov(1, iter)
			main.b().Call(step.p)
		})
		main.b().Out(iter)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}

// buildHydro is the 104.hydro2d analogue: several distinct coupled loop
// nests per timestep (flux, advance, boundary), each its own procedure —
// more procedures and loop paths than the pure stencils.
func buildHydro(s Scale) *ir.Program {
	b := ir.NewBuilder("hydro")
	n := pick(s, 20, 120)

	flux := newFn(b, "flux", 0)
	{
		z := flux.reg()
		i := flux.reg()
		tmp := flux.reg()
		a := flux.reg()
		bv := flux.reg()
		flux.b().MovI(z, 0)
		flux.loop(i, tmp, n*n-1, func() {
			flux.loadArr(a, z, i, offA)
			flux.b().AddI(tmp, i, 1)
			flux.loadArr(bv, z, tmp, offA)
			flux.b().FSub(bv, bv, a)
			flux.storeArr(z, i, offB, bv)
		})
		flux.b().MovI(1, 0)
		flux.ret()
	}

	advance := newFn(b, "advance", 0)
	{
		z := advance.reg()
		i := advance.reg()
		tmp := advance.reg()
		a := advance.reg()
		f0 := advance.reg()
		f1 := advance.reg()
		c := advance.reg()
		advance.b().MovI(z, 0)
		advance.loop(i, tmp, n*n-int64(n), func() {
			advance.loadArr(a, z, i, offA)
			advance.loadArr(f0, z, i, offB)
			advance.b().AddI(tmp, i, int64(n))
			advance.loadArr(f1, z, tmp, offB)
			advance.b().FSub(f1, f1, f0)
			advance.b().FAdd(a, a, f1)
			// Limiter branch: clamp runaway cells (a data-dependent path).
			advance.b().CvtFI(c, a)
			advance.b().CmpLTI(c, c, 1<<20)
			advance.ifElse(c, func() {
				advance.storeArr(z, i, offA, a)
			}, func() {
				advance.b().MovI(c, 1000)
				advance.b().CvtIF(a, c)
				advance.storeArr(z, i, offA, a)
			})
		})
		advance.b().MovI(1, 0)
		advance.ret()
	}

	boundary := newFn(b, "boundary", 0)
	{
		z := boundary.reg()
		i := boundary.reg()
		tmp := boundary.reg()
		v := boundary.reg()
		boundary.b().MovI(z, 0)
		boundary.loop(i, tmp, int64(n), func() {
			// Copy row 1 into row 0, row n-2 into row n-1.
			boundary.b().AddI(tmp, i, int64(n))
			boundary.loadArr(v, z, tmp, offA)
			boundary.storeArr(z, i, offA, v)
			boundary.b().MovI(tmp, (int64(n)-2)*int64(n))
			boundary.b().Add(tmp, tmp, i)
			boundary.loadArr(v, z, tmp, offA)
			boundary.b().AddI(tmp, tmp, int64(n))
			boundary.storeArr(z, tmp, offA, v)
		})
		boundary.b().MovI(1, 0)
		boundary.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		fv := main.reg()
		iter := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 104)
		initFPArray(main, z, seedR, i, tmp, fv, offA, n*n)
		main.loop(iter, tmp, pick(s, 2, 16), func() {
			main.b().Call(flux.p)
			main.b().Call(advance.p)
			main.b().Call(boundary.p)
		})
		main.b().Out(iter)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}

// buildLUSolve is the 110.applu analogue: blocked lower/upper triangular
// sweeps with dependent FP chains — long serial dependences produce FP
// stalls the paper's stall metrics capture.
func buildLUSolve(s Scale) *ir.Program {
	b := ir.NewBuilder("lusolve")
	n := pick(s, 24, 140)

	lower := newFn(b, "lower_sweep", 0)
	{
		z := lower.reg()
		i := lower.reg()
		j := lower.reg()
		tmp := lower.reg()
		acc := lower.reg()
		v := lower.reg()
		idx := lower.reg()
		lower.b().MovI(z, 0)
		lower.loop(i, tmp, int64(n), func() {
			// acc = row i's running value; serial in j.
			lower.b().MulI(idx, i, int64(n))
			lower.loadArr(acc, z, idx, offA)
			lower.loop(j, tmp, int64(n)-1, func() {
				lower.b().MulI(idx, i, int64(n))
				lower.b().Add(idx, idx, j)
				lower.b().AddI(idx, idx, 1)
				lower.loadArr(v, z, idx, offA)
				lower.b().FMul(v, v, acc) // depends on previous iteration
				lower.b().FSub(acc, v, acc)
				lower.storeArr(z, idx, offB, acc)
			})
		})
		lower.b().MovI(1, 0)
		lower.ret()
	}

	upper := newFn(b, "upper_sweep", 0)
	{
		z := upper.reg()
		i := upper.reg()
		tmp := upper.reg()
		acc := upper.reg()
		v := upper.reg()
		idx := upper.reg()
		going := upper.reg()
		upper.b().MovI(z, 0)
		upper.b().MovI(i, int64(n*n-1))
		upper.whileNZ(going, func() {
			upper.b().CmpLEI(tmp, i, 0)
			upper.b().XorI(going, tmp, 1)
		}, func() {
			upper.b().Mov(idx, i)
			upper.loadArr(v, z, idx, offB)
			upper.b().AddI(idx, i, -1)
			upper.loadArr(acc, z, idx, offB)
			upper.b().FAdd(acc, acc, v)
			upper.storeArr(z, idx, offA, acc)
			upper.b().AddI(i, i, -1)
		})
		upper.b().MovI(1, 0)
		upper.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		fv := main.reg()
		iter := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 110)
		initFPArray(main, z, seedR, i, tmp, fv, offA, n*n)
		main.loop(iter, tmp, pick(s, 1, 4), func() {
			main.b().Call(lower.p)
			main.b().Call(upper.p)
		})
		main.b().Out(iter)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}

// buildTurbulence is the 125.turb3d analogue: FFT-style butterfly passes
// with power-of-two strides — the stride ladder shifts misses between
// passes, one hot path per level.
func buildTurbulence(s Scale) *ir.Program {
	b := ir.NewBuilder("turbulence")
	logN := pick(s, 10, 15)
	n := int64(1) << uint(logN)

	// butterfly(r1 = stride): pairwise add/sub at the given stride.
	butterfly := newFn(b, "butterfly", 1)
	{
		z := butterfly.reg()
		stride := butterfly.reg()
		i := butterfly.reg()
		tmp := butterfly.reg()
		a := butterfly.reg()
		bb := butterfly.reg()
		pair := butterfly.reg()
		mask := butterfly.reg()
		going := butterfly.reg()
		butterfly.b().MovI(z, 0)
		butterfly.b().Mov(stride, 1)
		butterfly.b().MovI(i, 0)
		butterfly.whileNZ(going, func() {
			butterfly.b().CmpLTI(going, i, n)
		}, func() {
			// pair = i ^ stride; operate only when i < pair.
			butterfly.b().Xor(pair, i, stride)
			butterfly.b().CmpLT(mask, i, pair)
			butterfly.ifThen(mask, func() {
				butterfly.loadArr(a, z, i, offA)
				butterfly.loadArr(bb, z, pair, offA)
				butterfly.b().FAdd(tmp, a, bb)
				butterfly.b().FSub(bb, a, bb)
				butterfly.storeArr(z, i, offA, tmp)
				butterfly.storeArr(z, pair, offA, bb)
			})
			butterfly.b().AddI(i, i, 1)
		})
		butterfly.b().MovI(1, 0)
		butterfly.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		fv := main.reg()
		iter := main.reg()
		stride := main.reg()
		going := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 125)
		initFPArray(main, z, seedR, i, tmp, fv, offA, n)
		main.loop(iter, tmp, pick(s, 1, 2), func() {
			main.b().MovI(stride, 1)
			main.whileNZ(going, func() {
				main.b().CmpLTI(going, stride, n)
			}, func() {
				main.b().Mov(1, stride)
				main.b().Call(butterfly.p)
				main.b().ShlI(stride, stride, 1)
			})
		})
		main.b().Out(iter)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}

// buildWeather is the 141.apsi analogue: many small mixed loop nests
// (advection, diffusion, sources) with moderate branching — a middle ground
// between the stencils and the integer codes.
func buildWeather(s Scale) *ir.Program {
	b := ir.NewBuilder("weather")
	n := pick(s, 24, 130)

	mkPass := func(name string, off1, off2 int64, sub bool) *fb {
		f := newFn(b, name, 0)
		z := f.reg()
		i := f.reg()
		tmp := f.reg()
		a := f.reg()
		bv := f.reg()
		c := f.reg()
		f.b().MovI(z, 0)
		f.loop(i, tmp, n*n-1, func() {
			f.loadArr(a, z, i, off1)
			f.b().AddI(tmp, i, 1)
			f.loadArr(bv, z, tmp, off2)
			if sub {
				f.b().FSub(a, a, bv)
			} else {
				f.b().FAdd(a, a, bv)
			}
			// Source term on a sparse subset of cells.
			f.b().AndI(c, i, 31)
			f.b().CmpEQI(c, c, 0)
			f.ifThen(c, func() {
				f.b().FAdd(a, a, bv)
			})
			f.storeArr(z, i, off1, a)
		})
		f.b().MovI(1, 0)
		f.ret()
		return f
	}
	advect := mkPass("advect", offA, offB, false)
	diffuse := mkPass("diffuse", offB, offC, true)
	source := mkPass("sources", offC, offA, false)

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		fv := main.reg()
		iter := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 141)
		initFPArray(main, z, seedR, i, tmp, fv, offA, n*n)
		initFPArray(main, z, seedR, i, tmp, fv, offB, n*n)
		initFPArray(main, z, seedR, i, tmp, fv, offC, n*n)
		main.loop(iter, tmp, pick(s, 2, 10), func() {
			main.b().Call(advect.p)
			main.b().Call(diffuse.p)
			main.b().Call(source.p)
		})
		main.b().Out(iter)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}

// buildPlasma is the 146.wave5 analogue: a particle-in-cell step —
// particles gather field values (indirection), push, and scatter charge
// back. Scatter writes are the write-miss-heavy path.
func buildPlasma(s Scale) *ir.Program {
	b := ir.NewBuilder("plasma")
	cells := int64(1) << 13
	parts := pick(s, 1<<10, 1<<15)

	push := newFn(b, "push", 0)
	{
		z := push.reg()
		i := push.reg()
		tmp := push.reg()
		pos := push.reg()
		vel := push.reg()
		e := push.reg()
		cell := push.reg()
		push.b().MovI(z, 0)
		push.loop(i, tmp, parts, func() {
			// Positions in plane B (integers), velocities in plane A (FP).
			push.loadArr(pos, z, i, offB)
			push.b().AndI(cell, pos, cells-1)
			push.loadArr(e, z, cell, offC) // gather field
			push.loadArr(vel, z, i, offA)
			push.b().FAdd(vel, vel, e)
			push.storeArr(z, i, offA, vel)
			// Move: pos += int(vel) & small.
			push.b().CvtFI(tmp, vel)
			push.b().AndI(tmp, tmp, 63)
			push.b().Add(pos, pos, tmp)
			push.b().AddI(pos, pos, 1)
			push.storeArr(z, i, offB, pos)
		})
		push.b().MovI(1, 0)
		push.ret()
	}

	scatter := newFn(b, "scatter", 0)
	{
		z := scatter.reg()
		i := scatter.reg()
		tmp := scatter.reg()
		pos := scatter.reg()
		q := scatter.reg()
		cell := scatter.reg()
		scatter.b().MovI(z, 0)
		scatter.loop(i, tmp, parts, func() {
			scatter.loadArr(pos, z, i, offB)
			scatter.b().AndI(cell, pos, cells-1)
			scatter.loadArr(q, z, cell, offC)
			scatter.b().AddI(q, q, 1) // integer charge deposit
			scatter.storeArr(z, cell, offC, q)
		})
		scatter.b().MovI(1, 0)
		scatter.ret()
	}

	main := newFn(b, "main", 0)
	{
		z := main.reg()
		seedR := main.reg()
		i := main.reg()
		tmp := main.reg()
		fv := main.reg()
		iter := main.reg()
		main.b().MovI(z, 0)
		main.b().MovI(seedR, 146)
		initFPArray(main, z, seedR, i, tmp, fv, offA, parts)
		main.loop(i, tmp, parts, func() {
			main.xorshift(seedR, tmp)
			main.b().AndI(tmp, seedR, cells-1)
			main.storeArr(z, i, offB, tmp)
		})
		main.loop(iter, tmp, pick(s, 2, 10), func() {
			main.b().Call(push.p)
			main.b().Call(scatter.p)
		})
		main.b().Out(iter)
		main.halt()
	}
	b.SetMain(main.p)
	return b.MustFinish()
}
