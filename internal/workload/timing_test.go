package workload

import (
	"testing"
	"time"

	"pathprof/internal/sim"
)

func TestRefScaleTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("ref-scale timing skipped in short mode")
	}
	for _, w := range Suite() {
		prog := w.Build(Ref)
		m := sim.New(prog, sim.DefaultConfig())
		start := time.Now()
		res, err := m.Run()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		t.Logf("%-12s %10d instrs %12d cycles  %7.2fs wall  %5.1fM instr/s",
			w.Name, res.Instrs, res.Cycles, time.Since(start).Seconds(),
			float64(res.Instrs)/time.Since(start).Seconds()/1e6)
	}
}
