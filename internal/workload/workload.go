package workload

// Suite returns the synthetic benchmark suite in report order: nine
// integer-like programs followed by ten floating-point-like programs,
// mirroring the paper's CINT95/CFP95 presentation (18 SPEC95 programs plus
// a longjmp-heavy parser exercising non-local returns).
func Suite() []Workload {
	return []Workload{
		{Name: "searcher", Class: CINT, Analogue: "099.go", Build: buildSearcher},
		{Name: "cpuemu", Class: CINT, Analogue: "124.m88ksim", Build: buildCPUEmu},
		{Name: "compiler", Class: CINT, Analogue: "126.gcc", Build: buildCompiler},
		{Name: "compress", Class: CINT, Analogue: "129.compress", Build: buildCompress},
		{Name: "interp", Class: CINT, Analogue: "130.li", Build: buildInterp},
		{Name: "imagepack", Class: CINT, Analogue: "132.ijpeg", Build: buildImagePack},
		{Name: "strhash", Class: CINT, Analogue: "134.perl", Build: buildStrHash},
		{Name: "objdb", Class: CINT, Analogue: "147.vortex", Build: buildObjDB},
		{Name: "parser", Class: CINT, Analogue: "126.gcc (error paths)", Build: buildParser},
		{Name: "mesh", Class: CFP, Analogue: "101.tomcatv", Build: buildMesh},
		{Name: "shallow", Class: CFP, Analogue: "102.swim", Build: buildShallow},
		{Name: "lattice", Class: CFP, Analogue: "103.su2cor", Build: buildLattice},
		{Name: "hydro", Class: CFP, Analogue: "104.hydro2d", Build: buildHydro},
		{Name: "grid", Class: CFP, Analogue: "107.mgrid", Build: buildGrid},
		{Name: "lusolve", Class: CFP, Analogue: "110.applu", Build: buildLUSolve},
		{Name: "turbulence", Class: CFP, Analogue: "125.turb3d", Build: buildTurbulence},
		{Name: "weather", Class: CFP, Analogue: "141.apsi", Build: buildWeather},
		{Name: "fpstraight", Class: CFP, Analogue: "145.fpppp", Build: buildFPStraight},
		{Name: "plasma", Class: CFP, Analogue: "146.wave5", Build: buildPlasma},
	}
}

// KSuite returns the k-iteration workloads: programs whose hot behaviour
// spans loop back-edges, added for the k>1 path-degree experiments. They
// are kept out of Suite so the paper-table golden results stay fixed.
func KSuite() []Workload {
	return []Workload{
		{Name: "pipeline", Class: CFP, Analogue: "modulo-scheduled kernel", Build: buildPipeline},
		{Name: "lexer", Class: CINT, Analogue: "flex-style scanner", Build: buildLexer},
		{Name: "eventloop", Class: CINT, Analogue: "event-driven dispatcher", Build: buildEventLoop},
	}
}

// ByName returns the workload with the given name, searching the paper
// suite and then the k-iteration suite, or false.
func ByName(name string) (Workload, bool) {
	for _, w := range Suite() {
		if w.Name == name {
			return w, true
		}
	}
	for _, w := range KSuite() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}
