// Package testgen builds randomized but deterministic IR procedures and
// programs for property-based tests: random CFG shapes for the path
// numbering invariants, and random terminating programs (with loops, calls,
// guarded recursion, indirect calls and memory traffic) for
// semantics-preservation tests of the instrumenter and simulator.
package testgen

import (
	"math/rand"

	"pathprof/internal/ir"
	"pathprof/internal/mem"
)

// RandomProc builds a valid procedure with nBlocks blocks whose CFG
// contains random forward and backward edges. Every block i keeps a "chain"
// edge to block i+1, guaranteeing entry-reaches-all and all-reach-exit; a
// second random successor (when the block branches) may target any block,
// producing loops, irreducible regions and diamonds.
func RandomProc(rng *rand.Rand, name string, nBlocks int) *ir.Proc {
	if nBlocks < 2 {
		nBlocks = 2
	}
	b := ir.NewBuilder("tmp")
	pb := b.NewProc(name, 0)
	blocks := make([]*ir.BlockBuilder, nBlocks)
	for i := range blocks {
		blocks[i] = pb.NewBlock()
	}
	for i := 0; i < nBlocks-1; i++ {
		bb := blocks[i]
		bb.AddI(2, 2, int64(rng.Intn(7)+1))
		if rng.Intn(100) < 65 {
			// Branch: random target (never the entry block, which must
			// have no incoming edges for the path-numbering transform)
			// plus the chain edge.
			bb.CmpLTI(3, 2, int64(rng.Intn(50)))
			target := blocks[rng.Intn(nBlocks-1)+1]
			bb.Br(3, target, blocks[i+1])
		} else {
			bb.Jmp(blocks[i+1])
		}
	}
	blocks[nBlocks-1].Ret()
	b.SetMain(pb)
	prog := b.MustFinish()
	return prog.Procs[0]
}

// RandomAcyclicProc is RandomProc restricted to forward edges only.
func RandomAcyclicProc(rng *rand.Rand, name string, nBlocks int) *ir.Proc {
	if nBlocks < 2 {
		nBlocks = 2
	}
	b := ir.NewBuilder("tmp")
	pb := b.NewProc(name, 0)
	blocks := make([]*ir.BlockBuilder, nBlocks)
	for i := range blocks {
		blocks[i] = pb.NewBlock()
	}
	for i := 0; i < nBlocks-1; i++ {
		bb := blocks[i]
		bb.AddI(2, 2, 1)
		if rng.Intn(100) < 70 && i+2 < nBlocks {
			bb.CmpLTI(3, 2, int64(rng.Intn(50)))
			target := blocks[i+1+rng.Intn(nBlocks-i-1)]
			bb.Br(3, target, blocks[i+1])
		} else {
			bb.Jmp(blocks[i+1])
		}
	}
	blocks[nBlocks-1].Ret()
	b.SetMain(pb)
	return b.MustFinish().Procs[0]
}

// ProgramOptions tunes RandomProgram.
type ProgramOptions struct {
	NumProcs      int // leaf + interior procedures (≥ 2)
	BlocksPer     int // CFG size per procedure
	Recursion     bool
	IndirectCalls bool
	Memory        bool // loads/stores against a scratch global region
	NonLocal      bool // setjmp in main, occasional longjmp from a thrower
}

// RandomProgram builds a deterministic, terminating program that exercises
// loops, calls (direct and optionally indirect), optional guarded recursion
// and memory traffic, and emits output values so that two executions can be
// compared for semantic equality.
//
// Register conventions inside generated code: r1 carries arguments/return
// values, r2 is a monotone step counter that bounds every loop, r3-r6 are
// data registers, r7 holds indirect-call targets.
func RandomProgram(rng *rand.Rand, name string, opts ProgramOptions) *ir.Program {
	if opts.NumProcs < 2 {
		opts.NumProcs = 2
	}
	if opts.BlocksPer < 3 {
		opts.BlocksPer = 3
	}
	b := ir.NewBuilder(name)

	// Leaf procedures: mix the argument with constants through a small
	// loop; optionally touch memory.
	nLeaf := opts.NumProcs / 2
	leaves := make([]*ir.ProcBuilder, 0, nLeaf)
	for i := 0; i < nLeaf; i++ {
		leaves = append(leaves, buildLeaf(b, rng, i, opts))
	}

	// Optional guarded recursive procedure.
	var recursive *ir.ProcBuilder
	if opts.Recursion {
		recursive = buildRecursive(b, rng, leaves)
	}

	// Optional thrower: longjmps back to main's recovery point when its
	// argument hits a sparse pattern. The handle is always 1 (main's
	// setjmp is the only one).
	var thrower *ir.ProcBuilder
	if opts.NonLocal {
		thrower = b.NewProc("thrower", 1)
		te := thrower.NewBlock()
		tb := thrower.NewBlock()
		tx := thrower.NewBlock()
		te.AndI(2, 1, 31)
		te.CmpEQI(2, 2, 7)
		te.Br(2, tb, tx)
		tb.MovI(3, 1) // handle
		tb.MovI(4, 1) // delivered value
		tb.LongJmp(3, 4)
		tb.Jmp(tx)
		tx.AddI(1, 1, 2)
		tx.Ret()
	}

	// Interior procedures call leaves (and the recursive proc).
	interior := make([]*ir.ProcBuilder, 0)
	for i := nLeaf; i < opts.NumProcs; i++ {
		interior = append(interior, buildInterior(b, rng, i, leaves, recursive, opts))
	}
	if len(interior) == 0 {
		interior = leaves
	}

	// Main: loop over interior procedures, seed r1 differently each
	// iteration, emit results.
	main := b.NewProc("main", 0)
	entry := main.NewBlock()
	loop := main.NewBlock()
	body := main.NewBlock()
	done := main.NewBlock()

	entry.MovI(2, 0)
	entry.MovI(6, 0)
	if opts.NonLocal {
		// Recovery point: longjmp delivers r11 != 0; count recoveries in
		// r12 and continue the loop (r2 survives as of the call site).
		entry.SetJmp(10, 11)
		entry.Add(12, 12, 11)
		entry.MovI(11, 0)
	}
	entry.Jmp(loop)
	iters := int64(rng.Intn(20) + 8)
	loop.CmpLTI(3, 2, iters)
	loop.Br(3, body, done)
	body.MulI(1, 2, 37)
	body.AddI(1, 1, int64(rng.Intn(100)))
	for _, p := range interior {
		if rng.Intn(100) < 80 {
			body.Call(p)
			body.Add(6, 6, 1)
		}
	}
	if opts.IndirectCalls && len(leaves) > 0 {
		// r7 = leaf chosen by loop counter.
		body.MovI(7, int64(len(leaves)))
		body.Rem(7, 2, 7)
		body.AddI(7, 7, int64(leaves[0].ID()))
		body.CallInd(7)
		body.Add(6, 6, 1)
	}
	if opts.NonLocal && thrower != nil {
		// Mix the recovery count (r12) into the argument so a retried
		// iteration eventually stops throwing and the loop makes progress.
		body.MulI(1, 2, 13)
		body.AddI(1, 1, 5)
		body.Add(1, 1, 12)
		body.Call(thrower)
		body.Add(6, 6, 1)
	}
	body.Out(1)
	body.AddI(2, 2, 1)
	body.Jmp(loop)
	done.Out(6)
	done.Out(12)
	done.Halt()
	b.SetMain(main)

	if opts.Memory {
		words := make([]int64, 256)
		for i := range words {
			words[i] = rng.Int63n(1 << 20)
		}
		b.Globals(words, mem.GlobalBase)
	}
	return b.MustFinish()
}

func buildLeaf(b *ir.Builder, rng *rand.Rand, i int, opts ProgramOptions) *ir.ProcBuilder {
	p := b.NewProc("leaf"+string(rune('A'+i)), 1)
	entry := p.NewBlock()
	loop := p.NewBlock()
	odd := p.NewBlock()
	even := p.NewBlock()
	latch := p.NewBlock()
	exit := p.NewBlock()

	entry.MovI(2, 0)
	entry.AndI(3, 1, 1023)
	entry.Jmp(loop)

	bound := int64(rng.Intn(12) + 2)
	loop.CmpLTI(4, 2, bound)
	loop.Br(4, odd, exit)

	odd.AndI(5, 3, 1)
	odd.Br(5, even, latch)

	even.MulI(3, 3, 3)
	even.AddI(3, 3, 1)
	if opts.Memory {
		even.AndI(6, 3, 63)
		even.MovI(9, 0)
		even.LoadIdx(5, 9, 6, int64(mem.GlobalBase))
		even.Add(3, 3, 5)
	}
	even.Jmp(latch)

	latch.ShrI(3, 3, 1)
	if opts.Memory && rng.Intn(2) == 0 {
		latch.AndI(6, 2, 63)
		latch.MovI(9, 0)
		latch.StoreIdx(9, 6, int64(mem.GlobalBase), 3)
	}
	latch.AddI(2, 2, 1)
	latch.Jmp(loop)

	exit.Mov(1, 3)
	exit.Ret()
	return p
}

func buildRecursive(b *ir.Builder, rng *rand.Rand, leaves []*ir.ProcBuilder) *ir.ProcBuilder {
	p := b.NewProc("recur", 1)
	entry := p.NewBlock()
	rec := p.NewBlock()
	base := p.NewBlock()
	exit := p.NewBlock()

	entry.AndI(2, 1, 7) // depth bound 0..7
	entry.CmpLTI(3, 2, 1)
	entry.Br(3, base, rec)

	rec.AddI(1, 2, -1)
	rec.Call(p) // self-recursion with decreasing argument
	rec.AddI(1, 1, 3)
	if len(leaves) > 0 && rng.Intn(2) == 0 {
		rec.Call(leaves[0])
	}
	rec.Jmp(exit)

	base.MovI(1, 1)
	base.Jmp(exit)

	exit.AddI(1, 1, 1)
	exit.Ret()
	return p
}

func buildInterior(b *ir.Builder, rng *rand.Rand, i int, leaves []*ir.ProcBuilder, recursive *ir.ProcBuilder, opts ProgramOptions) *ir.ProcBuilder {
	p := b.NewProc("mid"+string(rune('A'+i)), 1)
	entry := p.NewBlock()
	thenB := p.NewBlock()
	elseB := p.NewBlock()
	exit := p.NewBlock()

	entry.AndI(2, 1, 15)
	entry.CmpLTI(3, 2, int64(rng.Intn(12)+2))
	entry.Br(3, thenB, elseB)

	pick := func(bb *ir.BlockBuilder) {
		if len(leaves) > 0 {
			bb.Call(leaves[rng.Intn(len(leaves))])
		}
		if recursive != nil && rng.Intn(2) == 0 {
			bb.Call(recursive)
		}
	}
	thenB.MulI(1, 1, 5)
	pick(thenB)
	thenB.Jmp(exit)
	elseB.AddI(1, 1, 11)
	pick(elseB)
	elseB.Jmp(exit)

	exit.AddI(1, 1, 1)
	exit.Ret()
	return p
}
