package wire_test

import (
	"bytes"
	"testing"

	"pathprof/internal/profile"
	"pathprof/internal/wire"
)

func kSeedProfile(k int) *profile.Profile {
	p := &profile.Profile{
		Program: "kwire", Mode: "flow", Events: []string{"dcache-miss", "insts"},
		Procs: []*profile.ProcPaths{
			{ProcID: 0, Name: "main", NumPaths: 6, Entries: []profile.PathEntry{
				profile.NewEntry(0, 3, 7, 41),
				profile.NewEntry(5, 1, 0, 9),
			}},
			{ProcID: 1, Name: "leaf", NumPaths: 2, Entries: []profile.PathEntry{
				profile.NewEntry(1, 2, 4, 4),
			}},
		},
	}
	if k > 1 {
		p.K = k
		p.Procs[0].K = k
		p.Procs[1].K = 1 // clamped: no backedges
	}
	return p
}

// TestProfileKRoundTrip: the envelope codec preserves the iteration degree
// and per-proc effective degrees exactly.
func TestProfileKRoundTrip(t *testing.T) {
	p := kSeedProfile(3)
	var bin bytes.Buffer
	if err := wire.EncodeProfile(&bin, p); err != nil {
		t.Fatal(err)
	}
	got, err := wire.DecodeProfile(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.K != 3 {
		t.Fatalf("decoded K = %d, want 3", got.K)
	}
	if got.Procs[0].K != 3 || got.Procs[1].K != 1 {
		t.Fatalf("decoded proc degrees %d,%d, want 3,1", got.Procs[0].K, got.Procs[1].K)
	}
	if got.SchemaKey() != p.SchemaKey() {
		t.Fatalf("schema key changed across the wire: %q != %q", got.SchemaKey(), p.SchemaKey())
	}
}

// TestProfileClassicBytesUnchangedByK: a classic profile must encode
// byte-identically whether its K field is 0 (decoded form) or 1 (the
// instrument default) — the k extension may not disturb existing frames.
func TestProfileClassicBytesUnchangedByK(t *testing.T) {
	var b0, b1 bytes.Buffer
	if err := wire.EncodeProfile(&b0, kSeedProfile(0)); err != nil {
		t.Fatal(err)
	}
	p1 := kSeedProfile(0)
	p1.K = 1
	if err := wire.EncodeProfile(&b1, p1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b0.Bytes(), b1.Bytes()) {
		t.Fatal("K=1 changed a classic profile's envelope bytes")
	}

	w0, w1 := wire.NewBatchWriter(), wire.NewBatchWriter()
	if err := w0.AddProfile(kSeedProfile(0)); err != nil {
		t.Fatal(err)
	}
	if err := w1.AddProfile(p1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w0.Frame(), w1.Frame()) {
		t.Fatal("K=1 changed a classic profile's frame bytes")
	}
}

// TestBatchKRoundTrip: the v3 frame codec carries the degrees through both
// the scratch decode and the materialized form.
func TestBatchKRoundTrip(t *testing.T) {
	w := wire.NewBatchWriter()
	if err := w.AddProfile(kSeedProfile(2)); err != nil {
		t.Fatal(err)
	}
	if err := w.AddProfile(kSeedProfile(0)); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ParseFrame(w.Frame())
	if err != nil {
		t.Fatal(err)
	}
	var s wire.BatchProfile
	if err := f.DecodeProfile(0, &s); err != nil {
		t.Fatal(err)
	}
	if s.K != 2 || s.Procs[0].K != 2 || s.Procs[1].K != 1 {
		t.Fatalf("scratch decode: K=%d procs %d,%d, want 2 and 2,1", s.K, s.Procs[0].K, s.Procs[1].K)
	}
	// The scratch struct is reused across items: the classic profile must
	// clear the degrees the k-profile left behind.
	if err := f.DecodeProfile(1, &s); err != nil {
		t.Fatal(err)
	}
	if s.K != 0 || s.Procs[0].K != 0 {
		t.Fatalf("scratch reuse leaked degrees: K=%d proc0=%d", s.K, s.Procs[0].K)
	}
	p, err := f.ProfileAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 2 || p.Procs[0].K != 2 || p.Procs[1].K != 1 {
		t.Fatalf("materialized: K=%d procs %d,%d, want 2 and 2,1", p.K, p.Procs[0].K, p.Procs[1].K)
	}
}
