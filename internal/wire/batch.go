package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"pathprof/internal/cct"
	"pathprof/internal/flat"
	"pathprof/internal/profile"
)

// Wire version 3: batched multi-profile frames.
//
// A frame carries many envelopes in one POST so the per-request costs
// (HTTP round trip, header parse, checksum, admission) amortize across
// the batch, and so the decoder can work zero-copy over one contiguous
// buffer instead of pulling a checksummed byte stream. Layout:
//
//	"PPW1"                         magic (shared with v1/v2)
//	version  byte                  3
//	kind     byte                  3 (KindBatch)
//	section  secBatchStrings       shared string table (one, first)
//	sections { secBatchProfile | secBatchCCT }*   one item per envelope
//	end      byte 0
//	crc      uint32 little-endian  CRC-32C of every preceding byte
//
// All program names, modes and event names live in the string table and
// items reference them by index, so a batch of N profiles of the same
// program carries each string once. Path identifiers are delta-encoded:
// profile entries as signed deltas in stored order, CCT path-count sums
// as strictly-ascending gaps. Metric words stay uvarints.
//
// String table (secBatchStrings):
//
//	uvarint count, count x (uvarint len, bytes)
//
// Profile item (secBatchProfile):
//
//	uvarint programIdx, uvarint modeIdx,
//	uvarint numEvents, numEvents x uvarint eventIdx,
//	uvarint numProcs, per proc:
//	  varint procID, uvarint nameIdx, varint numPaths, uvarint numEntries,
//	  per entry: varint dSum (sum - prev, prev starts at 0),
//	             uvarint freq, numEvents x uvarint metric
//	[uvarint k, numProcs x uvarint procK]   trailing, only when k > 1
//
// The trailing k fields carry a k-iteration profile's degree (and each
// procedure's effective degree, which clamping may leave below it).
// Classic profiles omit them and encode byte-identically to before; the
// decoder detects them by leftover payload bytes.
//
// CCT item (secBatchCCT):
//
//	uvarint programIdx,
//	uvarint numProcs, bool distinguishSites, uvarint numMetrics, byte flags,
//	when structural (flags bit 0): uvarint sizeBytes, uvarint listElems,
//	uvarint numNodes, per node (preorder, implicit id 1..numNodes):
//	  uvarint parentID (< id; 0 is the root),
//	  varint proc,
//	  uvarint nMetrics, nMetrics x varint,
//	  uvarint nPathCounts, first: varint sum, varint count,
//	                       rest:  uvarint gap (sum = prev + gap + 1), varint count,
//	  when structural: uvarint size, uvarint nSlots,
//	                   per slot: byte state, varint prefix when one-path
//	uvarint numBackedges, numBackedges x (uvarint fromID, uvarint toID)
//
// The decoder (Frame) parses in place: string-table entries and item
// payloads are subslices of the caller's buffer, and the item decoders
// fill caller-owned scratch structs whose backing arrays are reused
// across frames, so a steady-state batch ingest performs no allocation.

// FrameVersion is the wire version of batched frames.
const FrameVersion = 3

// KindBatch marks a batched multi-envelope frame.
const KindBatch Kind = 3

// Batch section IDs (disjoint from the v1/v2 envelope sections).
const (
	secBatchStrings = 7
	secBatchProfile = 8
	secBatchCCT     = 9
)

// maxBatchStrings bounds the string-table size a frame may declare.
const maxBatchStrings = 1 << 20

// IsFrame reports whether data begins like a version-3 batched frame.
// Collectors use it to route a request body between the streaming
// envelope decoder and the frame parser.
func IsFrame(data []byte) bool {
	return len(data) >= 6 && [4]byte(data[:4]) == magic &&
		data[4] == FrameVersion && Kind(data[5]) == KindBatch
}

// --- writer ---

// BatchWriter accumulates envelopes into one version-3 frame. The zero
// value is ready to use; Reset makes a writer reusable without
// reallocating its buffers.
type BatchWriter struct {
	strIdx map[string]uint64
	strs   []string
	strLen int    // total bytes of table strings
	items  []byte // encoded item sections, ready to splice into the frame
	nitems int
	tmp    []byte  // per-item payload scratch
	sums   []int64 // path-count sort scratch
}

// NewBatchWriter returns an empty writer.
func NewBatchWriter() *BatchWriter { return &BatchWriter{} }

// Reset discards buffered items, keeping capacity.
func (w *BatchWriter) Reset() {
	for k := range w.strIdx {
		delete(w.strIdx, k)
	}
	w.strs = w.strs[:0]
	w.strLen = 0
	w.items = w.items[:0]
	w.nitems = 0
}

// Items returns the number of envelopes buffered so far.
func (w *BatchWriter) Items() int { return w.nitems }

// Len returns an upper bound on the assembled frame size in bytes.
func (w *BatchWriter) Len() int {
	// header + items + string table (count + per-string length prefix)
	// + end marker + trailer, with 10 bytes of varint slack per string.
	return 6 + len(w.items) + w.strLen + 10*len(w.strs) + 20
}

// intern returns s's string-table index, adding it on first use.
func (w *BatchWriter) intern(s string) uint64 {
	if w.strIdx == nil {
		w.strIdx = make(map[string]uint64)
	}
	if i, ok := w.strIdx[s]; ok {
		return i
	}
	i := uint64(len(w.strs))
	w.strIdx[s] = i
	w.strs = append(w.strs, s)
	w.strLen += len(s)
	return i
}

// section appends one item section to the buffered items.
func (w *BatchWriter) section(id byte, payload []byte) {
	w.items = append(w.items, id)
	w.items = binary.AppendUvarint(w.items, uint64(len(payload)))
	w.items = append(w.items, payload...)
	w.nitems++
}

// AddProfile appends p as one profile item.
func (w *BatchWriter) AddProfile(p *profile.Profile) error {
	b := w.tmp[:0]
	b = putUvarint(b, w.intern(p.Program))
	b = putUvarint(b, w.intern(p.Mode))
	b = putUvarint(b, uint64(len(p.Events)))
	for _, ev := range p.Events {
		b = putUvarint(b, w.intern(ev))
	}
	b = putUvarint(b, uint64(len(p.Procs)))
	for _, pp := range p.Procs {
		b = putVarint(b, int64(pp.ProcID))
		b = putUvarint(b, w.intern(pp.Name))
		b = putVarint(b, pp.NumPaths)
		b = putUvarint(b, uint64(len(pp.Entries)))
		prev := int64(0)
		for i := range pp.Entries {
			en := &pp.Entries[i]
			b = putVarint(b, en.Sum-prev)
			prev = en.Sum
			b = putUvarint(b, en.Freq)
			for k := range p.Events {
				b = putUvarint(b, en.Metric(k))
			}
		}
	}
	if p.K > 1 {
		b = putUvarint(b, uint64(p.K))
		for _, pp := range p.Procs {
			b = putUvarint(b, uint64(max(pp.K, 1)))
		}
	}
	w.tmp = b
	w.section(secBatchProfile, b)
	return nil
}

// AddExport appends ex as one CCT item. Nodes are renumbered into
// preorder so the frame never carries explicit node IDs.
func (w *BatchWriter) AddExport(ex *cct.Export) error {
	b := w.tmp[:0]
	b = putUvarint(b, w.intern(ex.Program))
	b = putUvarint(b, uint64(ex.NumProcs))
	b = putBool(b, ex.DistinguishSites)
	b = putUvarint(b, uint64(ex.NumMetrics))
	var flags byte
	if ex.HasStructure {
		flags |= flagStructure
	}
	b = append(b, flags)
	if ex.HasStructure {
		b = putUvarint(b, ex.SizeBytes)
		b = putUvarint(b, uint64(ex.ListElems))
	}

	// Count nodes, then walk in preorder assigning implicit IDs. Backedge
	// targets are ancestors in well-formed trees, so they are always
	// numbered before the node that references them and resolve inline;
	// a backedge to anything else is dropped, exactly as cct.MergeExports
	// drops backedges it cannot resolve to an ancestor.
	var count func(n *cct.ExportedNode) int
	count = func(n *cct.ExportedNode) int {
		total := len(n.Children)
		for _, ch := range n.Children {
			total += count(ch)
		}
		return total
	}
	numNodes := count(ex.Root)
	b = putUvarint(b, uint64(numNodes))

	newID := make(map[int]uint64, numNodes+1)
	newID[ex.Root.ID] = 0
	type backedge struct{ from, to uint64 }
	var backedges []backedge
	next := uint64(1)
	var rec func(n *cct.ExportedNode)
	rec = func(n *cct.ExportedNode) {
		if from := newID[n.ID]; from != 0 {
			for _, to := range n.Backedges {
				t, ok := newID[to]
				if !ok || t == 0 {
					continue
				}
				backedges = append(backedges, backedge{from: from, to: t})
			}
		}
		for _, ch := range n.Children {
			id := next
			next++
			newID[ch.ID] = id
			b = putUvarint(b, newID[n.ID])
			b = putVarint(b, int64(ch.Proc))
			b = putUvarint(b, uint64(len(ch.Metrics)))
			for _, m := range ch.Metrics {
				b = putVarint(b, m)
			}
			sums := w.sums[:0]
			ch.PathCounts.Range(func(s, _ int64) bool {
				sums = append(sums, s)
				return true
			})
			sortInt64s(sums)
			w.sums = sums
			b = putUvarint(b, uint64(len(sums)))
			prev := int64(0)
			for i, s := range sums {
				cnt, _ := ch.PathCounts.Get(s)
				if i == 0 {
					b = putVarint(b, s)
				} else {
					b = putUvarint(b, uint64(s-prev-1))
				}
				prev = s
				b = putVarint(b, cnt)
			}
			if ex.HasStructure {
				b = putUvarint(b, ch.Size)
				b = putUvarint(b, uint64(len(ch.Slots)))
				for _, sl := range ch.Slots {
					st := byte(0)
					if sl.Used {
						st |= 1
					}
					st |= sl.PathState << 1
					b = append(b, st)
					if sl.PathState == 1 {
						b = putVarint(b, sl.PathPrefix)
					}
				}
			}
			rec(ch)
		}
	}
	rec(ex.Root)
	b = putUvarint(b, uint64(len(backedges)))
	for _, be := range backedges {
		b = putUvarint(b, be.from)
		b = putUvarint(b, be.to)
	}
	w.tmp = b
	w.section(secBatchCCT, b)
	return nil
}

// AppendFrame assembles the buffered items into one complete frame
// appended to dst and returns the extended slice.
func (w *BatchWriter) AppendFrame(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, magic[0], magic[1], magic[2], magic[3], FrameVersion, byte(KindBatch))
	// String table section.
	tmp := w.tmp[:0]
	tmp = putUvarint(tmp, uint64(len(w.strs)))
	for _, s := range w.strs {
		tmp = putString(tmp, s)
	}
	w.tmp = tmp
	dst = append(dst, secBatchStrings)
	dst = binary.AppendUvarint(dst, uint64(len(tmp)))
	dst = append(dst, tmp...)
	dst = append(dst, w.items...)
	dst = append(dst, secEnd)
	sum := crc32.Checksum(dst[start:], crcTable)
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], sum)
	return append(dst, tr[:]...)
}

// Frame assembles and returns the encoded frame.
func (w *BatchWriter) Frame() []byte { return w.AppendFrame(nil) }

// sortInt64s is an insertion sort: path-count sets per CCT node are small
// and usually already sorted, so this beats slices.Sort's overhead and
// allocates nothing.
func sortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// --- reader ---

// frameItem records one item's kind and payload extent inside the frame
// buffer.
type frameItem struct {
	kind     Kind
	off, end int
}

// Frame is a parsed version-3 batched frame. It references the buffer
// passed to Reset — the caller must keep the buffer alive and unmodified
// while the frame is in use. A Frame is reusable: Reset clears and
// refills its internal tables without reallocating them in steady state.
type Frame struct {
	data  []byte
	strs  [][]byte
	items []frameItem
	cur   cursor // reused by parseStrings so Reset never allocates one
}

// ParseFrame parses data as one batched frame.
func ParseFrame(data []byte) (*Frame, error) {
	f := &Frame{}
	if err := f.Reset(data); err != nil {
		return nil, err
	}
	return f, nil
}

func frameErr(off int, format string, args ...interface{}) error {
	return fmt.Errorf("wire: frame offset %d: %s", off, fmt.Sprintf(format, args...))
}

// Reset re-points the frame at data, parsing the header, verifying the
// CRC-32C trailer, indexing the string table and locating every item.
func (f *Frame) Reset(data []byte) error {
	f.data = data
	f.strs = f.strs[:0]
	f.items = f.items[:0]
	if len(data) < 6+1+4 {
		return frameErr(0, "truncated frame (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != magic {
		return frameErr(0, "bad magic %q", data[:4])
	}
	if data[4] != FrameVersion {
		return frameErr(4, "unsupported frame version %d (want %d)", data[4], FrameVersion)
	}
	if Kind(data[5]) != KindBatch {
		return frameErr(5, "frame kind %d is not a batch", data[5])
	}
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, crcTable); got != want {
		return frameErr(len(body), "checksum mismatch: trailer %08x, computed %08x", want, got)
	}

	pos := 6
	sawStrings, sawEnd := false, false
	for pos < len(body) {
		id := body[pos]
		pos++
		if id == secEnd {
			sawEnd = true
			break
		}
		n, sz := binary.Uvarint(body[pos:])
		if sz <= 0 {
			return frameErr(pos, "bad section length")
		}
		pos += sz
		if n > maxSectionLen || n > uint64(len(body)-pos) {
			return frameErr(pos, "section %d length %d exceeds frame", id, n)
		}
		off, end := pos, pos+int(n)
		pos = end
		switch id {
		case secBatchStrings:
			if sawStrings {
				return frameErr(off, "duplicate string table section")
			}
			if len(f.items) > 0 {
				return frameErr(off, "string table after items")
			}
			sawStrings = true
			if err := f.parseStrings(body[off:end], off); err != nil {
				return err
			}
		case secBatchProfile:
			if !sawStrings {
				return frameErr(off, "profile item before string table")
			}
			f.items = append(f.items, frameItem{kind: KindProfile, off: off, end: end})
		case secBatchCCT:
			if !sawStrings {
				return frameErr(off, "cct item before string table")
			}
			f.items = append(f.items, frameItem{kind: KindCCT, off: off, end: end})
		default:
			return frameErr(off, "unexpected section %d in batch frame", id)
		}
	}
	if !sawEnd {
		return frameErr(pos, "frame has no end marker")
	}
	if pos != len(body) {
		return frameErr(pos, "%d trailing bytes after end marker", len(body)-pos)
	}
	if !sawStrings {
		return frameErr(6, "frame has no string table")
	}
	return nil
}

func (f *Frame) parseStrings(payload []byte, base int) error {
	c := &f.cur
	*c = cursor{b: payload}
	n, err := c.count(1)
	if err != nil {
		return frameErr(base, "string table: %v", err)
	}
	if n > maxBatchStrings {
		return frameErr(base, "string table declares %d entries", n)
	}
	for i := 0; i < n; i++ {
		l, err := c.uvarint()
		if err != nil {
			return frameErr(base+c.pos, "string table: %v", err)
		}
		if l > uint64(c.remaining()) {
			return frameErr(base+c.pos, "string %d length %d exceeds section", i, l)
		}
		f.strs = append(f.strs, payload[c.pos:c.pos+int(l)])
		c.pos += int(l)
	}
	if err := c.done(); err != nil {
		return frameErr(base+c.pos, "string table: %v", err)
	}
	return nil
}

// Items returns the number of envelopes in the frame.
func (f *Frame) Items() int { return len(f.items) }

// Kind returns item i's payload kind (KindProfile or KindCCT).
func (f *Frame) Kind(i int) Kind { return f.items[i].kind }

// str resolves a string-table index, or errors.
func (f *Frame) str(idx uint64) ([]byte, error) {
	if idx >= uint64(len(f.strs)) {
		return nil, fmt.Errorf("string index %d out of table (size %d)", idx, len(f.strs))
	}
	return f.strs[idx], nil
}

// BatchProfile is the scratch target of a profile-item decode. All
// fields reference either the frame buffer (the byte slices) or the
// struct's own backing arrays, which are reused across decodes.
type BatchProfile struct {
	Program []byte
	Mode    []byte
	Events  [][]byte
	K       int // iteration degree; 0 or 1 means classic
	Procs   []BatchProc

	// Per-entry columns: entry j of proc p lives at index Procs[p].Off+j;
	// its metrics occupy Metrics[(Off+j)*len(Events) : ...+len(Events)].
	Sums    []int64
	Freqs   []uint64
	Metrics []uint64

	cur cursor // reused across decodes so DecodeProfile never allocates one
}

// BatchProc is one procedure's slice of a decoded profile item.
type BatchProc struct {
	ProcID   int
	Name     []byte
	NumPaths int64
	K        int // effective degree; 0 in classic profiles
	Off, N   int
}

// EntryMetrics returns the metric words of entry j (absolute index into
// the item's entry columns).
func (bp *BatchProfile) EntryMetrics(j int) []uint64 {
	w := len(bp.Events)
	return bp.Metrics[j*w : (j+1)*w : (j+1)*w]
}

// DecodeProfile parses item i (which must be a profile item) into s.
func (f *Frame) DecodeProfile(i int, s *BatchProfile) error {
	it := f.items[i]
	if it.kind != KindProfile {
		return errKind(KindProfile, it.kind)
	}
	s.Events = s.Events[:0]
	s.K = 0
	s.Procs = s.Procs[:0]
	s.Sums = s.Sums[:0]
	s.Freqs = s.Freqs[:0]
	s.Metrics = s.Metrics[:0]
	c := &s.cur
	*c = cursor{b: f.data[it.off:it.end]}
	fail := func(err error) error {
		return frameErr(it.off+c.pos, "profile item: %v", err)
	}
	idx, err := c.uvarint()
	if err != nil {
		return fail(err)
	}
	if s.Program, err = f.str(idx); err != nil {
		return fail(err)
	}
	if idx, err = c.uvarint(); err != nil {
		return fail(err)
	}
	if s.Mode, err = f.str(idx); err != nil {
		return fail(err)
	}
	nEvents, err := c.count(1)
	if err != nil {
		return fail(err)
	}
	if nEvents > maxWireEvents {
		return fail(fmt.Errorf("%d events exceeds limit", nEvents))
	}
	for k := 0; k < nEvents; k++ {
		if idx, err = c.uvarint(); err != nil {
			return fail(err)
		}
		ev, err := f.str(idx)
		if err != nil {
			return fail(err)
		}
		s.Events = append(s.Events, ev)
	}
	nProcs, err := c.count(4)
	if err != nil {
		return fail(err)
	}
	for p := 0; p < nProcs; p++ {
		var pr BatchProc
		id, err := c.varint()
		if err != nil {
			return fail(err)
		}
		pr.ProcID = int(id)
		if idx, err = c.uvarint(); err != nil {
			return fail(err)
		}
		if pr.Name, err = f.str(idx); err != nil {
			return fail(err)
		}
		if pr.NumPaths, err = c.varint(); err != nil {
			return fail(err)
		}
		n, err := c.count(2 + nEvents)
		if err != nil {
			return fail(err)
		}
		pr.Off, pr.N = len(s.Sums), n
		prev := int64(0)
		for j := 0; j < n; j++ {
			d, err := c.varint()
			if err != nil {
				return fail(err)
			}
			prev += d
			s.Sums = append(s.Sums, prev)
			fr, err := c.uvarint()
			if err != nil {
				return fail(err)
			}
			s.Freqs = append(s.Freqs, fr)
			for k := 0; k < nEvents; k++ {
				m, err := c.uvarint()
				if err != nil {
					return fail(err)
				}
				s.Metrics = append(s.Metrics, m)
			}
		}
		s.Procs = append(s.Procs, pr)
	}
	if c.remaining() > 0 {
		// Trailing k-iteration degrees (k>1 profiles only).
		k, err := c.uvarint()
		if err != nil {
			return fail(err)
		}
		if k < 2 || k > maxWireK {
			return fail(fmt.Errorf("bad iteration degree %d", k))
		}
		s.K = int(k)
		for p := range s.Procs {
			pk, err := c.uvarint()
			if err != nil {
				return fail(err)
			}
			if pk < 1 || pk > k {
				return fail(fmt.Errorf("proc %d: effective degree %d outside [1,%d]", p, pk, k))
			}
			s.Procs[p].K = int(pk)
		}
	}
	if err := c.done(); err != nil {
		return fail(err)
	}
	return nil
}

// BatchCCT is the scratch target of a CCT-item decode. Node i of Nodes
// has implicit ID i+1; ID 0 is the synthetic root.
type BatchCCT struct {
	Program          []byte
	NumProcs         int
	DistinguishSites bool
	NumMetrics       int
	HasStructure     bool
	SizeBytes        uint64
	ListElems        int

	Nodes     []BatchNode
	Metrics   []int64
	PCSums    []int64
	PCCounts  []int64
	Slots     []cct.SlotStat
	Backedges []BatchBackedge

	// Children adjacency: node id p (0-based including the root) has
	// children ChildIDs[ChildOff[p]:ChildOff[p+1]], in sibling order.
	ChildOff []int32
	ChildIDs []int32

	cur cursor // reused across decodes so DecodeCCT never allocates one
}

// BatchNode is one decoded CCT record; offsets index the owning
// BatchCCT's column arrays.
type BatchNode struct {
	Parent         int32 // node ID of the parent (0 = root)
	Proc           int32
	MetOff, MetN   int32
	PCOff, PCN     int32
	SlotOff, SlotN int32
	Size           uint64
}

// BatchBackedge is one recursion edge between node IDs.
type BatchBackedge struct{ From, To int32 }

// Children returns the child IDs of node id (0 = root).
func (bc *BatchCCT) Children(id int32) []int32 {
	return bc.ChildIDs[bc.ChildOff[id]:bc.ChildOff[id+1]]
}

// DecodeCCT parses item i (which must be a CCT item) into s.
func (f *Frame) DecodeCCT(i int, s *BatchCCT) error {
	it := f.items[i]
	if it.kind != KindCCT {
		return errKind(KindCCT, it.kind)
	}
	s.Nodes = s.Nodes[:0]
	s.Metrics = s.Metrics[:0]
	s.PCSums = s.PCSums[:0]
	s.PCCounts = s.PCCounts[:0]
	s.Slots = s.Slots[:0]
	s.Backedges = s.Backedges[:0]
	c := &s.cur
	*c = cursor{b: f.data[it.off:it.end]}
	fail := func(err error) error {
		return frameErr(it.off+c.pos, "cct item: %v", err)
	}
	idx, err := c.uvarint()
	if err != nil {
		return fail(err)
	}
	if s.Program, err = f.str(idx); err != nil {
		return fail(err)
	}
	np, err := c.uvarint()
	if err != nil {
		return fail(err)
	}
	s.NumProcs = int(np)
	if s.DistinguishSites, err = c.bool(); err != nil {
		return fail(err)
	}
	nm, err := c.uvarint()
	if err != nil {
		return fail(err)
	}
	if nm > maxWireEvents {
		return fail(fmt.Errorf("%d metrics exceeds limit", nm))
	}
	s.NumMetrics = int(nm)
	flags, err := c.ReadByte()
	if err != nil {
		return fail(fmt.Errorf("truncated flags"))
	}
	s.HasStructure = flags&flagStructure != 0
	s.SizeBytes, s.ListElems = 0, 0
	if s.HasStructure {
		if s.SizeBytes, err = c.uvarint(); err != nil {
			return fail(err)
		}
		le, err := c.uvarint()
		if err != nil {
			return fail(err)
		}
		s.ListElems = int(le)
	}
	numNodes, err := c.count(4)
	if err != nil {
		return fail(err)
	}
	for id := 1; id <= numNodes; id++ {
		var n BatchNode
		parent, err := c.uvarint()
		if err != nil {
			return fail(err)
		}
		if parent >= uint64(id) {
			return fail(fmt.Errorf("node %d: parent %d is not an earlier node", id, parent))
		}
		n.Parent = int32(parent)
		proc, err := c.varint()
		if err != nil {
			return fail(err)
		}
		n.Proc = int32(proc)
		nMet, err := c.count(1)
		if err != nil {
			return fail(err)
		}
		if nMet > maxWireEvents {
			return fail(fmt.Errorf("node %d: %d metrics exceeds limit", id, nMet))
		}
		n.MetOff, n.MetN = int32(len(s.Metrics)), int32(nMet)
		for k := 0; k < nMet; k++ {
			m, err := c.varint()
			if err != nil {
				return fail(err)
			}
			s.Metrics = append(s.Metrics, m)
		}
		nPC, err := c.count(2)
		if err != nil {
			return fail(err)
		}
		n.PCOff, n.PCN = int32(len(s.PCSums)), int32(nPC)
		prev := int64(0)
		for k := 0; k < nPC; k++ {
			var sum int64
			if k == 0 {
				if sum, err = c.varint(); err != nil {
					return fail(err)
				}
			} else {
				gap, err := c.uvarint()
				if err != nil {
					return fail(err)
				}
				sum = prev + int64(gap) + 1
				if sum <= prev {
					return fail(fmt.Errorf("node %d: path-count sum overflow", id))
				}
			}
			prev = sum
			cnt, err := c.varint()
			if err != nil {
				return fail(err)
			}
			s.PCSums = append(s.PCSums, sum)
			s.PCCounts = append(s.PCCounts, cnt)
		}
		if s.HasStructure {
			if n.Size, err = c.uvarint(); err != nil {
				return fail(err)
			}
			nSlots, err := c.count(1)
			if err != nil {
				return fail(err)
			}
			n.SlotOff, n.SlotN = int32(len(s.Slots)), int32(nSlots)
			for k := 0; k < nSlots; k++ {
				st, err := c.ReadByte()
				if err != nil {
					return fail(fmt.Errorf("truncated slot"))
				}
				var sl cct.SlotStat
				sl.Used = st&1 != 0
				sl.PathState = st >> 1
				if sl.PathState > 2 {
					return fail(fmt.Errorf("node %d: bad slot state %d", id, st>>1))
				}
				if sl.PathState == 1 {
					if sl.PathPrefix, err = c.varint(); err != nil {
						return fail(err)
					}
				}
				s.Slots = append(s.Slots, sl)
			}
		}
		s.Nodes = append(s.Nodes, n)
	}
	nBE, err := c.count(2)
	if err != nil {
		return fail(err)
	}
	for k := 0; k < nBE; k++ {
		from, err := c.uvarint()
		if err != nil {
			return fail(err)
		}
		to, err := c.uvarint()
		if err != nil {
			return fail(err)
		}
		if from == 0 || from > uint64(numNodes) || to == 0 || to > uint64(numNodes) {
			return fail(fmt.Errorf("backedge %d-%d out of node range", from, to))
		}
		s.Backedges = append(s.Backedges, BatchBackedge{From: int32(from), To: int32(to)})
	}
	if err := c.done(); err != nil {
		return fail(err)
	}

	// Build the children adjacency (counting sort by parent, preserving
	// sibling order because nodes arrive in preorder).
	s.ChildOff = s.ChildOff[:0]
	s.ChildIDs = s.ChildIDs[:0]
	for i := 0; i <= numNodes+1; i++ {
		s.ChildOff = append(s.ChildOff, 0)
	}
	for _, n := range s.Nodes {
		s.ChildOff[n.Parent+1]++
	}
	for i := 1; i <= numNodes+1; i++ {
		s.ChildOff[i] += s.ChildOff[i-1]
	}
	for i := 0; i < numNodes; i++ {
		s.ChildIDs = append(s.ChildIDs, 0)
	}
	// Second pass tracks per-parent fill cursors in ChildOff itself; after
	// the pass each ChildOff[p] holds the end of p's range, so one shift
	// restores the starts without a scratch copy.
	for id := int32(1); id <= int32(numNodes); id++ {
		p := s.Nodes[id-1].Parent
		s.ChildIDs[s.ChildOff[p]] = id
		s.ChildOff[p]++
	}
	// ChildOff[p] now holds the END of p's range; shift back to starts.
	for p := numNodes; p > 0; p-- {
		s.ChildOff[p] = s.ChildOff[p-1]
	}
	s.ChildOff[0] = 0
	return nil
}

// ProfileAt materializes item i as a profile.Profile (the convenience
// path used by tests and offline tooling; the collector hot path folds
// the scratch form directly into its aggregates instead).
func (f *Frame) ProfileAt(i int) (*profile.Profile, error) {
	var s BatchProfile
	if err := f.DecodeProfile(i, &s); err != nil {
		return nil, err
	}
	p := &profile.Profile{Program: string(s.Program), Mode: string(s.Mode), K: s.K}
	if len(s.Events) > 0 {
		p.Events = make([]string, len(s.Events))
		for k, ev := range s.Events {
			p.Events[k] = string(ev)
		}
	}
	p.Procs = make([]*profile.ProcPaths, len(s.Procs))
	for pi := range s.Procs {
		pr := &s.Procs[pi]
		pp := &profile.ProcPaths{ProcID: pr.ProcID, Name: string(pr.Name), NumPaths: pr.NumPaths, K: pr.K}
		pp.Entries = make([]profile.PathEntry, pr.N)
		for j := 0; j < pr.N; j++ {
			e := &pp.Entries[j]
			e.Sum = s.Sums[pr.Off+j]
			e.Freq = s.Freqs[pr.Off+j]
			if len(s.Events) > 0 {
				e.Metrics = pp.NewMetrics(len(s.Events))
				copy(e.Metrics, s.EntryMetrics(pr.Off+j))
			}
		}
		p.Procs[pi] = pp
	}
	return p, nil
}

// ExportAt materializes item i as a cct.Export.
func (f *Frame) ExportAt(i int) (*cct.Export, error) {
	var s BatchCCT
	if err := f.DecodeCCT(i, &s); err != nil {
		return nil, err
	}
	return s.Export()
}

// Export converts decoded scratch into a cct.Export.
func (s *BatchCCT) Export() (*cct.Export, error) {
	ex := &cct.Export{
		NumProcs:         s.NumProcs,
		DistinguishSites: s.DistinguishSites,
		NumMetrics:       s.NumMetrics,
		Program:          string(s.Program),
		HasStructure:     s.HasStructure,
		SizeBytes:        s.SizeBytes,
		ListElems:        s.ListElems,
	}
	nodes := make([]*cct.ExportedNode, len(s.Nodes)+1)
	root := &cct.ExportedNode{ID: 0, Proc: -1, PathCounts: flat.New(0)}
	nodes[0] = root
	ex.Root = root
	ex.Nodes = make(map[int]*cct.ExportedNode, len(nodes))
	ex.Nodes[0] = root
	for i := range s.Nodes {
		bn := &s.Nodes[i]
		id := i + 1
		n := &cct.ExportedNode{ID: id, ParentID: int(bn.Parent), Proc: int(bn.Proc)}
		if bn.MetN > 0 {
			n.Metrics = append([]int64(nil), s.Metrics[bn.MetOff:bn.MetOff+bn.MetN]...)
		}
		n.PathCounts = flat.New(int(bn.PCN))
		for k := int32(0); k < bn.PCN; k++ {
			n.PathCounts.Set(s.PCSums[bn.PCOff+k], s.PCCounts[bn.PCOff+k])
		}
		if s.HasStructure {
			n.Size = bn.Size
			n.Slots = append([]cct.SlotStat(nil), s.Slots[bn.SlotOff:bn.SlotOff+bn.SlotN]...)
		}
		parent := nodes[bn.Parent]
		parent.Children = append(parent.Children, n)
		nodes[id] = n
		ex.Nodes[id] = n
	}
	for _, be := range s.Backedges {
		nodes[be.From].Backedges = append(nodes[be.From].Backedges, int(be.To))
	}
	return ex, nil
}
