package wire_test

import (
	"bytes"
	"testing"

	"pathprof/internal/cct"
	"pathprof/internal/profile"
	"pathprof/internal/wire"
)

// seedEnvelopes builds small valid envelopes of both kinds without the
// simulator, so the corpus is cheap and deterministic.
func seedEnvelopes() [][]byte {
	p := &profile.Profile{
		Program: "seed", Mode: "flow+hw", Events: []string{"dcache-miss", "insts"},
		Procs: []*profile.ProcPaths{
			{ProcID: 0, Name: "main", NumPaths: 4, Entries: []profile.PathEntry{
				profile.NewEntry(0, 3, 7, 41),
				profile.NewEntry(2, 1, 0, 9),
			}},
			{ProcID: 1, Name: "leaf", NumPaths: 2},
		},
	}
	// A wide v2 schema: five events on one entry exercises the schema
	// section with more metric columns than the classic pair.
	wide := &profile.Profile{
		Program: "seed5", Mode: "flow+hw",
		Events: []string{"cycles", "insts", "dcache-miss", "icache-miss", "branches"},
		Procs: []*profile.ProcPaths{
			{ProcID: 0, Name: "main", NumPaths: 2, Entries: []profile.PathEntry{
				profile.NewEntry(0, 4, 9, 8, 7, 6, 5),
			}},
		},
	}
	tr := cct.New([]cct.ProcInfo{
		{Name: "main", NumSites: 2, NumPaths: 4},
		{Name: "leaf", NumSites: 1, NumPaths: 2},
	}, cct.Options{DistinguishCallSites: true, NumMetrics: 1, PathCounts: true}, 0)
	tr.AtCall(0, cct.NoPrefix, nil)
	tr.Enter(0, nil)
	tr.AddMetric(0, 1, nil)
	tr.CountPath(1, nil)
	tr.AtCall(1, cct.NoPrefix, nil)
	tr.Enter(1, nil)
	tr.AddMetric(0, 2, nil)
	tr.AtCall(0, cct.NoPrefix, nil)
	tr.Enter(0, nil) // recursive: becomes a backedge
	tr.Exit(nil)
	tr.Exit(nil)
	tr.Exit(nil)

	var pb, wb, xb bytes.Buffer
	if err := wire.EncodeProfile(&pb, p); err != nil {
		panic(err)
	}
	if err := wire.EncodeProfile(&wb, wide); err != nil {
		panic(err)
	}
	if err := wire.EncodeExport(&xb, tr.Export("seed")); err != nil {
		panic(err)
	}
	return [][]byte{pb.Bytes(), wb.Bytes(), xb.Bytes()}
}

// FuzzDecode: arbitrary input must produce either a decoded payload or a
// descriptive error — never a panic, and never unbounded allocation. A
// successful decode must also re-encode.
func FuzzDecode(f *testing.F) {
	for _, seed := range seedEnvelopes() {
		f.Add(seed)
		f.Add(seed[:len(seed)/2])
	}
	f.Add([]byte("PPW1"))
	f.Add([]byte("PPW1\x01\x02\x00"))
	f.Add([]byte("not an envelope at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		pl, err := wire.Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		switch pl.Kind {
		case wire.KindProfile:
			err = wire.EncodeProfile(&buf, pl.Profile)
		case wire.KindCCT:
			err = wire.EncodeExport(&buf, pl.Export)
		default:
			t.Fatalf("decode accepted unknown kind %v", pl.Kind)
		}
		if err != nil {
			t.Fatalf("decoded payload failed to re-encode: %v", err)
		}
	})
}
