package wire_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"pathprof/internal/cct"
	"pathprof/internal/profile"
	"pathprof/internal/wire"
)

// seedEnvelopes builds small valid envelopes of both kinds without the
// simulator, so the corpus is cheap and deterministic.
func seedEnvelopes() [][]byte {
	p := &profile.Profile{
		Program: "seed", Mode: "flow+hw", Events: []string{"dcache-miss", "insts"},
		Procs: []*profile.ProcPaths{
			{ProcID: 0, Name: "main", NumPaths: 4, Entries: []profile.PathEntry{
				profile.NewEntry(0, 3, 7, 41),
				profile.NewEntry(2, 1, 0, 9),
			}},
			{ProcID: 1, Name: "leaf", NumPaths: 2},
		},
	}
	// A wide v2 schema: five events on one entry exercises the schema
	// section with more metric columns than the classic pair.
	wide := &profile.Profile{
		Program: "seed5", Mode: "flow+hw",
		Events: []string{"cycles", "insts", "dcache-miss", "icache-miss", "branches"},
		Procs: []*profile.ProcPaths{
			{ProcID: 0, Name: "main", NumPaths: 2, Entries: []profile.PathEntry{
				profile.NewEntry(0, 4, 9, 8, 7, 6, 5),
			}},
		},
	}
	// A k-iteration profile: degree 2 overall, the second proc clamped
	// classic — exercises the trailing schema/proc degree fields.
	kp := &profile.Profile{
		Program: "seedk", Mode: "flow", K: 2, Events: []string{"insts"},
		Procs: []*profile.ProcPaths{
			{ProcID: 0, Name: "main", NumPaths: 6, K: 2, Entries: []profile.PathEntry{
				profile.NewEntry(0, 3, 11),
				profile.NewEntry(5, 1, 2),
			}},
			{ProcID: 1, Name: "leaf", NumPaths: 2, K: 1},
		},
	}
	tr := cct.New([]cct.ProcInfo{
		{Name: "main", NumSites: 2, NumPaths: 4},
		{Name: "leaf", NumSites: 1, NumPaths: 2},
	}, cct.Options{DistinguishCallSites: true, NumMetrics: 1, PathCounts: true}, 0)
	tr.AtCall(0, cct.NoPrefix, nil)
	tr.Enter(0, nil)
	tr.AddMetric(0, 1, nil)
	tr.CountPath(1, nil)
	tr.AtCall(1, cct.NoPrefix, nil)
	tr.Enter(1, nil)
	tr.AddMetric(0, 2, nil)
	tr.AtCall(0, cct.NoPrefix, nil)
	tr.Enter(0, nil) // recursive: becomes a backedge
	tr.Exit(nil)
	tr.Exit(nil)
	tr.Exit(nil)

	var pb, wb, kb, xb bytes.Buffer
	if err := wire.EncodeProfile(&pb, p); err != nil {
		panic(err)
	}
	if err := wire.EncodeProfile(&wb, wide); err != nil {
		panic(err)
	}
	if err := wire.EncodeProfile(&kb, kp); err != nil {
		panic(err)
	}
	if err := wire.EncodeExport(&xb, tr.Export("seed")); err != nil {
		panic(err)
	}

	// A v3 batched frame carrying all three payloads twice, so the corpus
	// exercises the shared string table and both item kinds.
	bw := wire.NewBatchWriter()
	for i := 0; i < 2; i++ {
		if err := bw.AddProfile(p); err != nil {
			panic(err)
		}
		if err := bw.AddProfile(wide); err != nil {
			panic(err)
		}
		if err := bw.AddProfile(kp); err != nil {
			panic(err)
		}
		if err := bw.AddExport(tr.Export("seed")); err != nil {
			panic(err)
		}
	}
	frame := bw.Frame()

	// Deliberately damaged frame variants: truncated mid-batch, a flipped
	// byte (CRC mismatch), and a duplicated section run with a valid CRC
	// (so the duplicate-string-table validator is reached, not the
	// checksum).
	truncated := frame[:len(frame)*2/3]
	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)/2] ^= 0x20
	dupStrings := append([]byte(nil), frame[:6]...)
	dupStrings = append(dupStrings, frame[6:len(frame)-5]...) // sections, sans end + CRC
	dupStrings = append(dupStrings, frame[6:len(frame)-4]...) // sections again + end
	sum := crc32.Checksum(dupStrings, crc32.MakeTable(crc32.Castagnoli))
	dupStrings = binary.LittleEndian.AppendUint32(dupStrings, sum)

	return [][]byte{pb.Bytes(), wb.Bytes(), kb.Bytes(), xb.Bytes(), frame, truncated, flipped, dupStrings}
}

// FuzzDecode: arbitrary input must produce either a decoded payload or a
// descriptive error — never a panic, and never unbounded allocation. A
// successful decode must also re-encode, and batched frames must both
// parse structurally and materialize every item (or error cleanly).
func FuzzDecode(f *testing.F) {
	for _, seed := range seedEnvelopes() {
		f.Add(seed)
		f.Add(seed[:len(seed)/2])
	}
	f.Add([]byte("PPW1"))
	f.Add([]byte("PPW1\x01\x02\x00"))
	f.Add([]byte("PPW1\x03\x03\x00"))
	f.Add([]byte("not an envelope at all"))
	// Store segment files (internal/store) hold wire payloads behind a
	// 16-byte "PPWALSEG" header and 17-byte record frames. A decoder
	// handed a whole segment, or an envelope at a record-frame offset,
	// must reject cleanly — these seeds keep the two on-disk formats from
	// ever being confused.
	for _, env := range seedEnvelopes()[:1] {
		seg := append([]byte("PPWALSEG\x01\x00\x00\x00\x00\x00\x00\x00"), 1)  // header, kind
		seg = append(seg, 0x2a, 0, 0, 0, 0, 0, 0, 0)                          // push id
		seg = binary.LittleEndian.AppendUint32(seg, uint32(len(env)))         // length
		crc := crc32.Checksum(seg[16:], crc32.MakeTable(crc32.Castagnoli))    // kind+id+len
		crc = crc32.Update(crc, crc32.MakeTable(crc32.Castagnoli), env)
		seg = binary.LittleEndian.AppendUint32(seg, crc)
		seg = append(seg, env...)
		f.Add(seg)
		f.Add(seg[16:]) // record frame without the file header
	}
	f.Add([]byte("PPWALSNP\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x03"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if wire.IsFrame(data) {
			fr, err := wire.ParseFrame(data)
			if err != nil {
				return
			}
			bw := wire.NewBatchWriter()
			for i := 0; i < fr.Items(); i++ {
				switch fr.Kind(i) {
				case wire.KindProfile:
					p, err := fr.ProfileAt(i)
					if err != nil {
						continue
					}
					if err := bw.AddProfile(p); err != nil {
						t.Fatalf("decoded profile item failed to re-encode: %v", err)
					}
				case wire.KindCCT:
					ex, err := fr.ExportAt(i)
					if err != nil {
						continue
					}
					if err := bw.AddExport(ex); err != nil {
						t.Fatalf("decoded cct item failed to re-encode: %v", err)
					}
				default:
					t.Fatalf("frame reported unknown item kind %v", fr.Kind(i))
				}
			}
			if bw.Items() > 0 {
				if _, err := wire.ParseFrame(bw.Frame()); err != nil {
					t.Fatalf("re-encoded frame failed to parse: %v", err)
				}
			}
			return
		}
		pl, err := wire.Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		switch pl.Kind {
		case wire.KindProfile:
			err = wire.EncodeProfile(&buf, pl.Profile)
		case wire.KindCCT:
			err = wire.EncodeExport(&buf, pl.Export)
		default:
			t.Fatalf("decode accepted unknown kind %v", pl.Kind)
		}
		if err != nil {
			t.Fatalf("decoded payload failed to re-encode: %v", err)
		}
	})
}
