package wire_test

import (
	"bytes"
	"os"
	"slices"
	"strings"
	"testing"

	"pathprof/internal/cct"
	"pathprof/internal/experiments"
	"pathprof/internal/instrument"
	"pathprof/internal/profile"
	"pathprof/internal/wire"
	"pathprof/internal/workload"
)

// testWorkloads keeps the round-trip tests fast: two programs with very
// different shapes (deep call tree vs. path-rich search).
var testWorkloads = []string{"objdb", "compress"}

func newSession(t *testing.T) *experiments.Session {
	t.Helper()
	s := experiments.NewSession(workload.Test)
	var ws []workload.Workload
	for _, name := range testWorkloads {
		w, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		ws = append(ws, w)
	}
	s.Workloads = ws
	return s
}

func realProfile(t *testing.T, s *experiments.Session, name string) *profile.Profile {
	t.Helper()
	w, _ := workload.ByName(name)
	cell, err := s.Run(w, instrument.ModePathHW, experiments.StandardEvents[0], experiments.StandardEvents[1])
	if err != nil {
		t.Fatal(err)
	}
	return cell.Profile
}

func realTree(t *testing.T, s *experiments.Session, name string) *cct.Tree {
	t.Helper()
	w, _ := workload.ByName(name)
	cell, err := s.Run(w, instrument.ModeContextFlow, experiments.StandardEvents[0], experiments.StandardEvents[1])
	if err != nil {
		t.Fatal(err)
	}
	return cell.Tree
}

// TestProfileRoundTrip: wire encode/decode preserves a real flow+HW profile
// byte-identically under the text encoder, and the wire form is smaller.
func TestProfileRoundTrip(t *testing.T) {
	s := newSession(t)
	for _, name := range testWorkloads {
		p := realProfile(t, s, name)
		var text bytes.Buffer
		if err := p.Write(&text); err != nil {
			t.Fatal(err)
		}
		var bin bytes.Buffer
		if err := wire.EncodeProfile(&bin, p); err != nil {
			t.Fatal(err)
		}
		got, err := wire.DecodeProfile(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		var text2 bytes.Buffer
		if err := got.Write(&text2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(text.Bytes(), text2.Bytes()) {
			t.Fatalf("%s: profile text differs after wire round trip", name)
		}
		if bin.Len() >= text.Len() {
			t.Errorf("%s: wire form %d bytes, text form %d — wire should be compact",
				name, bin.Len(), text.Len())
		}
	}
}

// TestExportRoundTrip: wire encode/decode preserves a real CCT export both
// byte-identically under the text encoder and exactly under Stats().
func TestExportRoundTrip(t *testing.T) {
	s := newSession(t)
	for _, name := range testWorkloads {
		tr := realTree(t, s, name)
		ex := tr.Export(name)
		if !ex.HasStructure {
			t.Fatalf("%s: Tree.Export did not mark structure", name)
		}
		var text bytes.Buffer
		if err := ex.WriteText(&text); err != nil {
			t.Fatal(err)
		}
		var bin bytes.Buffer
		if err := wire.EncodeExport(&bin, ex); err != nil {
			t.Fatal(err)
		}
		got, err := wire.DecodeExport(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		var text2 bytes.Buffer
		if err := got.WriteText(&text2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(text.Bytes(), text2.Bytes()) {
			t.Fatalf("%s: cct text differs after wire round trip", name)
		}
		if want, gotStats := tr.ComputeStats(), got.Stats(); gotStats != want {
			t.Fatalf("%s: stats after round trip\n got %+v\nwant %+v", name, gotStats, want)
		}
		if bin.Len() >= text.Len() {
			t.Errorf("%s: wire form %d bytes, text form %d — wire should be compact",
				name, bin.Len(), text.Len())
		}
	}
}

// TestExportMatchesTextCodec: decoding the wire form equals decoding the
// text form for everything the text form carries.
func TestExportMatchesTextCodec(t *testing.T) {
	s := newSession(t)
	tr := realTree(t, s, testWorkloads[0])
	ex := tr.Export(testWorkloads[0])

	var text bytes.Buffer
	if err := ex.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	fromText, err := cct.Read(bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := wire.EncodeExport(&bin, ex); err != nil {
		t.Fatal(err)
	}
	fromWire, err := wire.DecodeExport(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := fromText.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := fromWire.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("wire decode and text decode disagree")
	}
}

// TestDecodeGenericEnvelope: Decode dispatches on the kind byte.
func TestDecodeGenericEnvelope(t *testing.T) {
	s := newSession(t)
	p := realProfile(t, s, testWorkloads[0])
	tr := realTree(t, s, testWorkloads[0])

	var bin bytes.Buffer
	if err := wire.Encode(&bin, p); err != nil {
		t.Fatal(err)
	}
	pl, err := wire.Decode(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if pl.Kind != wire.KindProfile || pl.Profile == nil || pl.Export != nil {
		t.Fatalf("bad profile payload: %+v", pl)
	}
	if pl.Program() != p.Program {
		t.Fatalf("program %q, want %q", pl.Program(), p.Program)
	}

	bin.Reset()
	if err := wire.Encode(&bin, tr.Export("x")); err != nil {
		t.Fatal(err)
	}
	pl, err = wire.Decode(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if pl.Kind != wire.KindCCT || pl.Export == nil || pl.Profile != nil {
		t.Fatalf("bad cct payload: %+v", pl)
	}
	if pl.Program() != "x" {
		t.Fatalf("program %q, want x", pl.Program())
	}
}

// TestKindMismatch: the typed decoders reject the other payload kind.
func TestKindMismatch(t *testing.T) {
	s := newSession(t)
	p := realProfile(t, s, testWorkloads[0])
	var bin bytes.Buffer
	if err := wire.EncodeProfile(&bin, p); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.DecodeExport(bytes.NewReader(bin.Bytes())); err == nil {
		t.Fatal("DecodeExport accepted a profile envelope")
	} else if !strings.Contains(err.Error(), "profile") {
		t.Fatalf("unhelpful kind error: %v", err)
	}
}

// TestDecodeTruncated: every proper prefix of a valid envelope errors and
// never panics.
func TestDecodeTruncated(t *testing.T) {
	s := newSession(t)
	p := realProfile(t, s, testWorkloads[1])
	var bin bytes.Buffer
	if err := wire.EncodeProfile(&bin, p); err != nil {
		t.Fatal(err)
	}
	data := bin.Bytes()
	for n := 0; n < len(data); n++ {
		if _, err := wire.Decode(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("accepted %d-byte prefix of a %d-byte envelope", n, len(data))
		}
	}
}

// TestDecodeCorrupt: flipping any single bit is caught (structurally or by
// the CRC-32C trailer).
func TestDecodeCorrupt(t *testing.T) {
	s := newSession(t)
	tr := realTree(t, s, testWorkloads[0])
	var bin bytes.Buffer
	if err := wire.EncodeExport(&bin, tr.Export("x")); err != nil {
		t.Fatal(err)
	}
	data := bin.Bytes()
	step := 1
	if len(data) > 4096 {
		step = len(data) / 4096
	}
	for i := 0; i < len(data); i += step {
		mut := bytes.Clone(data)
		mut[i] ^= 0x40
		if _, err := wire.Decode(bytes.NewReader(mut)); err == nil {
			t.Fatalf("accepted envelope with byte %d corrupted", i)
		}
	}
}

// TestDecodeV1GoldenProfile: a committed version-1 envelope (fixed
// two-event header, no schema section) must keep decoding under the v2
// reader, mapping onto a two-event schema.
func TestDecodeV1GoldenProfile(t *testing.T) {
	data, err := os.ReadFile("testdata/v1_profile.bin")
	if err != nil {
		t.Fatal(err)
	}
	p, err := wire.DecodeProfile(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("v1 profile blob no longer decodes: %v", err)
	}
	if p.Program != "golden" || p.Mode != "flow+hw" {
		t.Fatalf("header: %q %q", p.Program, p.Mode)
	}
	if want := []string{"dcache-miss", "insts"}; !slices.Equal(p.Events, want) {
		t.Fatalf("events = %v, want %v", p.Events, want)
	}
	if len(p.Procs) != 2 || p.Procs[0].Name != "main" || p.Procs[1].Name != "leaf" {
		t.Fatalf("procs: %+v", p.Procs)
	}
	main := p.Procs[0]
	if len(main.Entries) != 2 {
		t.Fatalf("main entries: %+v", main.Entries)
	}
	if e := main.Entries[0]; e.Sum != 0 || e.Freq != 3 || e.Metric(0) != 17 || e.Metric(1) != 420 {
		t.Fatalf("main entry 0: %+v", e)
	}
	if e := main.Entries[1]; e.Sum != 2 || e.Freq != 1 || e.Metric(0) != 0 || e.Metric(1) != 99 {
		t.Fatalf("main entry 1: %+v", e)
	}
	if e := p.Procs[1].Entries[0]; e.Sum != 0 || e.Freq != 7 || e.Metric(0) != 5 || e.Metric(1) != 70 {
		t.Fatalf("leaf entry: %+v", e)
	}
	// Re-encoding yields a v2 envelope that decodes to the same profile.
	var re bytes.Buffer
	if err := wire.EncodeProfile(&re, p); err != nil {
		t.Fatal(err)
	}
	p2, err := wire.DecodeProfile(bytes.NewReader(re.Bytes()))
	if err != nil {
		t.Fatalf("re-encoded v1 profile: %v", err)
	}
	var a, b bytes.Buffer
	if err := p.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := p2.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("v1 -> v2 re-encode changed the profile")
	}
}

// TestDecodeV1GoldenCCT: the committed version-1 CCT export still decodes.
func TestDecodeV1GoldenCCT(t *testing.T) {
	data, err := os.ReadFile("testdata/v1_cct.bin")
	if err != nil {
		t.Fatal(err)
	}
	ex, err := wire.DecodeExport(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("v1 cct blob no longer decodes: %v", err)
	}
	if ex.Program != "golden" {
		t.Fatalf("program = %q", ex.Program)
	}
	if ex.NumMetrics != 3 {
		t.Fatalf("metrics = %d", ex.NumMetrics)
	}
	st := ex.Stats()
	if st.Nodes == 0 {
		t.Fatalf("empty tree: %+v", st)
	}
}

// TestV2RejectsV1Header: a v2 envelope may not smuggle the legacy fixed
// two-event header section.
func TestV2RejectsV1Header(t *testing.T) {
	data, err := os.ReadFile("testdata/v1_profile.bin")
	if err != nil {
		t.Fatal(err)
	}
	mut := bytes.Clone(data)
	mut[4] = 2 // envelope claims v2; CRC now fails, but the header section
	// check must fire first if we also fix the trailer — simplest is to
	// assert the decode fails either way.
	if _, err := wire.Decode(bytes.NewReader(mut)); err == nil {
		t.Fatal("v2 envelope with v1 header section accepted")
	}
}

// TestBadHeader: wrong magic and unsupported versions are rejected up front.
func TestBadHeader(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("PPW"),
		[]byte("XXXX\x01\x01"),
		[]byte("PPW1\x07\x01"), // future version
		[]byte("PPW1\x01\x09"), // unknown kind
	}
	for _, c := range cases {
		if _, err := wire.Decode(bytes.NewReader(c)); err == nil {
			t.Errorf("accepted header %q", c)
		}
	}
}
