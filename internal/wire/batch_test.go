package wire_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"

	"pathprof/internal/cct"
	"pathprof/internal/profile"
	"pathprof/internal/wire"
)

// profileText renders p with the text encoder (the byte-identity oracle).
func profileText(t *testing.T, p *profile.Profile) string {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func exportText(t *testing.T, ex *cct.Export) string {
	t.Helper()
	var buf bytes.Buffer
	if err := ex.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestBatchRoundTrip: a frame of mixed profile and CCT items decodes to
// payloads byte-identical under the text encoders, with Stats preserved
// exactly (including the structural extras the text codec drops).
func TestBatchRoundTrip(t *testing.T) {
	s := newSession(t)
	var profiles []*profile.Profile
	var exports []*cct.Export
	var trees []*cct.Tree
	for _, name := range testWorkloads {
		profiles = append(profiles, realProfile(t, s, name))
		tr := realTree(t, s, name)
		trees = append(trees, tr)
		exports = append(exports, tr.Export(name))
	}

	w := wire.NewBatchWriter()
	// Interleave and repeat so the string table is shared across items.
	for rep := 0; rep < 2; rep++ {
		for i := range profiles {
			if err := w.AddProfile(profiles[i]); err != nil {
				t.Fatal(err)
			}
			if err := w.AddExport(exports[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	wantItems := 2 * 2 * len(profiles)
	if w.Items() != wantItems {
		t.Fatalf("Items() = %d, want %d", w.Items(), wantItems)
	}
	data := w.Frame()
	if !wire.IsFrame(data) {
		t.Fatal("IsFrame rejected an encoded frame")
	}

	f, err := wire.ParseFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Items() != wantItems {
		t.Fatalf("frame has %d items, want %d", f.Items(), wantItems)
	}
	for it := 0; it < f.Items(); it++ {
		i := (it / 2) % len(profiles)
		if it%2 == 0 {
			if f.Kind(it) != wire.KindProfile {
				t.Fatalf("item %d kind = %v, want profile", it, f.Kind(it))
			}
			got, err := f.ProfileAt(it)
			if err != nil {
				t.Fatalf("item %d: %v", it, err)
			}
			if gotText, wantText := profileText(t, got), profileText(t, profiles[i]); gotText != wantText {
				t.Fatalf("item %d: profile text differs after batch round trip", it)
			}
		} else {
			if f.Kind(it) != wire.KindCCT {
				t.Fatalf("item %d kind = %v, want cct", it, f.Kind(it))
			}
			got, err := f.ExportAt(it)
			if err != nil {
				t.Fatalf("item %d: %v", it, err)
			}
			if gotText, wantText := exportText(t, got), exportText(t, exports[i]); gotText != wantText {
				t.Fatalf("item %d: cct text differs after batch round trip", it)
			}
			if want, gotStats := trees[i].ComputeStats(), got.Stats(); gotStats != want {
				t.Fatalf("item %d: stats after batch round trip\n got %+v\nwant %+v", it, gotStats, want)
			}
		}
	}
}

// TestBatchCompact: string sharing and delta coding make a frame of N
// same-program envelopes materially smaller than N single envelopes.
func TestBatchCompact(t *testing.T) {
	s := newSession(t)
	p := realProfile(t, s, "compress")
	const n = 16
	var singles bytes.Buffer
	w := wire.NewBatchWriter()
	for i := 0; i < n; i++ {
		if err := wire.EncodeProfile(&singles, p); err != nil {
			t.Fatal(err)
		}
		if err := w.AddProfile(p); err != nil {
			t.Fatal(err)
		}
	}
	frame := w.Frame()
	if len(frame) >= singles.Len() {
		t.Fatalf("frame of %d profiles is %d bytes, singles total %d — batching should shrink",
			n, len(frame), singles.Len())
	}
}

// TestBatchWriterReuse: Reset lets one writer (and one Frame) serve many
// batches; the second use must produce identical bytes.
func TestBatchWriterReuse(t *testing.T) {
	s := newSession(t)
	p := realProfile(t, s, "objdb")
	ex := realTree(t, s, "objdb").Export("objdb")

	w := wire.NewBatchWriter()
	build := func() []byte {
		w.Reset()
		if err := w.AddProfile(p); err != nil {
			t.Fatal(err)
		}
		if err := w.AddExport(ex); err != nil {
			t.Fatal(err)
		}
		return w.Frame()
	}
	first := build()
	second := build()
	if !bytes.Equal(first, second) {
		t.Fatal("frame bytes differ across writer reuse")
	}

	var f wire.Frame
	if err := f.Reset(first); err != nil {
		t.Fatal(err)
	}
	if err := f.Reset(second); err != nil {
		t.Fatalf("frame reuse: %v", err)
	}
	if f.Items() != 2 {
		t.Fatalf("reused frame has %d items, want 2", f.Items())
	}
}

// TestIsFrame: single envelopes are not frames and vice versa; the
// streaming decoder refuses frame input with a useful error.
func TestIsFrame(t *testing.T) {
	s := newSession(t)
	p := realProfile(t, s, "compress")
	var single bytes.Buffer
	if err := wire.EncodeProfile(&single, p); err != nil {
		t.Fatal(err)
	}
	if wire.IsFrame(single.Bytes()) {
		t.Fatal("IsFrame accepted a v2 single envelope")
	}
	w := wire.NewBatchWriter()
	if err := w.AddProfile(p); err != nil {
		t.Fatal(err)
	}
	frame := w.Frame()
	if !wire.IsFrame(frame) {
		t.Fatal("IsFrame rejected a frame")
	}
	if _, err := wire.Decode(bytes.NewReader(frame)); err == nil {
		t.Fatal("streaming Decode accepted a v3 frame")
	} else if !strings.Contains(err.Error(), "version") {
		t.Fatalf("streaming Decode error %q does not mention the version", err)
	}
}

// reframe recomputes the CRC trailer after a mutation, so corruption
// tests exercise the structural validators rather than the checksum.
func reframe(data []byte) []byte {
	body := data[:len(data)-4]
	sum := crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli))
	out := append([]byte(nil), body...)
	return binary.LittleEndian.AppendUint32(out, sum)
}

// TestBatchCorruption: corrupt frames error descriptively, never panic,
// and the CRC catches plain bit flips.
func TestBatchCorruption(t *testing.T) {
	s := newSession(t)
	p := realProfile(t, s, "compress")
	ex := realTree(t, s, "compress").Export("compress")
	w := wire.NewBatchWriter()
	if err := w.AddProfile(p); err != nil {
		t.Fatal(err)
	}
	if err := w.AddExport(ex); err != nil {
		t.Fatal(err)
	}
	valid := w.Frame()
	if _, err := wire.ParseFrame(valid); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}

	// Raw section IDs from the frame layout (see batch.go): 7 = string
	// table, 8 = profile item, 9 = cct item.
	const (
		secStrings = 7
		secProfile = 8
	)
	// buildFrame assembles header + sections + end + CRC by hand.
	buildFrame := func(sections ...[]byte) []byte {
		b := []byte{'P', 'P', 'W', '1', 3, 3}
		for _, s := range sections {
			b = append(b, s...)
		}
		b = append(b, 0)
		return reframe(append(b, 0, 0, 0, 0))
	}
	section := func(id byte, payload []byte) []byte {
		b := binary.AppendUvarint([]byte{id}, uint64(len(payload)))
		return append(b, payload...)
	}
	emptyStrings := section(secStrings, []byte{0})

	cases := []struct {
		name string
		data []byte
		want string // substring of the expected error; "" = any error
	}{
		{"empty", nil, "truncated"},
		{"truncated header", valid[:5], "truncated"},
		{"truncated mid-frame", reframe(valid[:len(valid)/2]), ""},
		{"crc flip", flipByte(valid, len(valid)/2), "checksum"},
		{"bad magic", flipByte(valid, 0), "magic"},
		{"wrong kind for parse", encodeSingle(t, p), "version"},
		{
			"duplicate string table",
			buildFrame(emptyStrings, emptyStrings),
			"duplicate string table",
		},
		{
			"item before string table",
			buildFrame(section(secProfile, []byte{0})),
			"before string table",
		},
		{
			"no string table",
			buildFrame(),
			"no string table",
		},
		{
			// String table claims 100 entries in a 1-byte payload.
			"string table overcount",
			buildFrame(section(secStrings, []byte{100})),
			"count",
		},
		{
			"unknown section id",
			buildFrame(emptyStrings, section(42, []byte{0})),
			"unexpected section",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := wire.ParseFrame(tc.data)
			if err == nil {
				t.Fatal("corrupt frame accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}

	// Item-level corruption: these frames parse (valid structure and CRC)
	// but materializing the item must fail.
	itemCases := []struct {
		name string
		data []byte
		want string
	}{
		{
			// One-entry table, but the item references string index 5.
			"string index out of range",
			buildFrame(
				section(secStrings, append([]byte{1, 1}, 'x')),
				section(secProfile, []byte{5}),
			),
			"string index",
		},
		{
			// Item payload ends after the program index.
			"truncated profile item",
			buildFrame(
				section(secStrings, append([]byte{1, 1}, 'x')),
				section(secProfile, []byte{0}),
			),
			"truncated",
		},
	}
	for _, tc := range itemCases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := wire.ParseFrame(tc.data)
			if err != nil {
				t.Fatalf("frame-level parse failed: %v", err)
			}
			if f.Items() != 1 {
				t.Fatalf("frame has %d items, want 1", f.Items())
			}
			if _, err := f.ProfileAt(0); err == nil {
				t.Fatal("corrupt item accepted")
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func flipByte(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0x40
	return out
}

func encodeSingle(t *testing.T, p *profile.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := wire.EncodeProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
