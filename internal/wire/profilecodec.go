package wire

import (
	"io"

	"pathprof/internal/profile"
)

// Profile payload layout.
//
// Section secProfileHeader (one, first):
//
//	string program, string mode, string event0, string event1
//
// Section secProfileProc (one per procedure, in profile order):
//
//	varint procID, string name, varint numPaths,
//	uvarint numEntries, then per entry (in stored order):
//	varint sum, uvarint freq, uvarint m0, uvarint m1

// EncodeProfile writes p as one wire envelope.
func EncodeProfile(w io.Writer, p *profile.Profile) error {
	e := newEncoder(w)
	if err := e.header(KindProfile); err != nil {
		return err
	}
	b := e.tmp[:0]
	b = putString(b, p.Program)
	b = putString(b, p.Mode)
	b = putString(b, p.Event0)
	b = putString(b, p.Event1)
	if err := e.section(secProfileHeader, b); err != nil {
		return err
	}
	for _, pp := range p.Procs {
		b = b[:0]
		b = putVarint(b, int64(pp.ProcID))
		b = putString(b, pp.Name)
		b = putVarint(b, pp.NumPaths)
		b = putUvarint(b, uint64(len(pp.Entries)))
		for _, en := range pp.Entries {
			b = putVarint(b, en.Sum)
			b = putUvarint(b, en.Freq)
			b = putUvarint(b, en.M0)
			b = putUvarint(b, en.M1)
		}
		if err := e.section(secProfileProc, b); err != nil {
			return err
		}
	}
	e.tmp = b
	return e.finish()
}

// DecodeProfile reads one envelope that must carry a profile.
func DecodeProfile(r io.Reader) (*profile.Profile, error) {
	pl, err := Decode(r)
	if err != nil {
		return nil, err
	}
	if pl.Kind != KindProfile {
		return nil, errKind(KindProfile, pl.Kind)
	}
	return pl.Profile, nil
}

func errKind(want, got Kind) error {
	return &KindError{Want: want, Got: got}
}

// KindError reports an envelope carrying the wrong payload kind.
type KindError struct{ Want, Got Kind }

func (e *KindError) Error() string {
	return "wire: payload is a " + e.Got.String() + ", want " + e.Want.String()
}

func decodeProfileSections(d *decoder) (*profile.Profile, error) {
	var p *profile.Profile
	for {
		id, payload, err := d.nextSection()
		if err != nil {
			return nil, err
		}
		if id == secEnd {
			break
		}
		c := &cursor{b: payload}
		switch id {
		case secProfileHeader:
			if p != nil {
				return nil, d.errorf("duplicate profile header section")
			}
			p = &profile.Profile{}
			if p.Program, err = c.string(); err == nil {
				if p.Mode, err = c.string(); err == nil {
					if p.Event0, err = c.string(); err == nil {
						p.Event1, err = c.string()
					}
				}
			}
			if err == nil {
				err = c.done()
			}
			if err != nil {
				return nil, d.errorf("profile header: %v", err)
			}
		case secProfileProc:
			if p == nil {
				return nil, d.errorf("proc section before profile header")
			}
			pp, err := decodeProcSection(c)
			if err != nil {
				return nil, d.errorf("proc section: %v", err)
			}
			p.Procs = append(p.Procs, pp)
		default:
			return nil, d.errorf("unexpected section %d in profile payload", id)
		}
	}
	if p == nil {
		return nil, d.errorf("profile payload has no header section")
	}
	return p, nil
}

func decodeProcSection(c *cursor) (*profile.ProcPaths, error) {
	pp := &profile.ProcPaths{}
	id, err := c.varint()
	if err != nil {
		return nil, err
	}
	pp.ProcID = int(id)
	if pp.Name, err = c.string(); err != nil {
		return nil, err
	}
	if pp.NumPaths, err = c.varint(); err != nil {
		return nil, err
	}
	n, err := c.count(4) // sum + freq + m0 + m1, one byte each minimum
	if err != nil {
		return nil, err
	}
	pp.Entries = make([]profile.PathEntry, n)
	for i := range pp.Entries {
		en := &pp.Entries[i]
		if en.Sum, err = c.varint(); err != nil {
			return nil, err
		}
		if en.Freq, err = c.uvarint(); err != nil {
			return nil, err
		}
		if en.M0, err = c.uvarint(); err != nil {
			return nil, err
		}
		if en.M1, err = c.uvarint(); err != nil {
			return nil, err
		}
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return pp, nil
}
