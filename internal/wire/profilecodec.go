package wire

import (
	"fmt"
	"io"

	"pathprof/internal/profile"
)

// Profile payload layout.
//
// Version 2, section secProfileSchema (one, first):
//
//	string program, string mode, uvarint numEvents, string event...,
//	[uvarint k]                    trailing, only when k > 1
//
// Version 1, section secProfileHeader (one, first):
//
//	string program, string mode, string event0, string event1
//
// Section secProfileProc (one per procedure, in profile order):
//
//	varint procID, string name, varint numPaths,
//	uvarint numEntries, then per entry (in stored order):
//	varint sum, uvarint freq, uvarint metric × numEvents,
//	[varint k]                     trailing, only in k>1 profiles
//
// (numEvents is fixed at 2 for version-1 envelopes.)
//
// The k fields extend the schema to k-iteration path profiles without a
// version bump: classic (k=1) profiles encode byte-identically to before,
// and old decoders never see the trailing fields because k>1 profiles are
// a new schema. Decoders detect the fields by leftover payload bytes.

// maxWireEvents bounds the schema width a decoded envelope may declare —
// generous against hpm.MaxCounters, tight against hostile headers.
const maxWireEvents = 256

// maxWireK bounds the iteration degree a decoded profile may declare —
// far above instrument's own ceiling, tight against hostile payloads.
const maxWireK = 255

// EncodeProfile writes p as one wire envelope.
func EncodeProfile(w io.Writer, p *profile.Profile) error {
	e := newEncoder(w)
	if err := e.header(KindProfile); err != nil {
		return err
	}
	b := e.tmp[:0]
	b = putString(b, p.Program)
	b = putString(b, p.Mode)
	b = putUvarint(b, uint64(len(p.Events)))
	for _, ev := range p.Events {
		b = putString(b, ev)
	}
	if p.K > 1 {
		b = putUvarint(b, uint64(p.K))
	}
	if err := e.section(secProfileSchema, b); err != nil {
		return err
	}
	for _, pp := range p.Procs {
		b = b[:0]
		b = putVarint(b, int64(pp.ProcID))
		b = putString(b, pp.Name)
		b = putVarint(b, pp.NumPaths)
		b = putUvarint(b, uint64(len(pp.Entries)))
		for i := range pp.Entries {
			en := &pp.Entries[i]
			b = putVarint(b, en.Sum)
			b = putUvarint(b, en.Freq)
			for k := range p.Events {
				b = putUvarint(b, en.Metric(k))
			}
		}
		if p.K > 1 {
			b = putVarint(b, int64(max(pp.K, 1)))
		}
		if err := e.section(secProfileProc, b); err != nil {
			return err
		}
	}
	e.tmp = b
	return e.finish()
}

// DecodeProfile reads one envelope that must carry a profile.
func DecodeProfile(r io.Reader) (*profile.Profile, error) {
	pl, err := Decode(r)
	if err != nil {
		return nil, err
	}
	if pl.Kind != KindProfile {
		return nil, errKind(KindProfile, pl.Kind)
	}
	return pl.Profile, nil
}

func errKind(want, got Kind) error {
	return &KindError{Want: want, Got: got}
}

// KindError reports an envelope carrying the wrong payload kind.
type KindError struct{ Want, Got Kind }

func (e *KindError) Error() string {
	return "wire: payload is a " + e.Got.String() + ", want " + e.Want.String()
}

func decodeProfileSections(d *decoder) (*profile.Profile, error) {
	var p *profile.Profile
	for {
		id, payload, err := d.nextSection()
		if err != nil {
			return nil, err
		}
		if id == secEnd {
			break
		}
		c := &cursor{b: payload}
		switch id {
		case secProfileHeader:
			// Version-1 header: a fixed two-event schema.
			if d.version != 1 {
				return nil, d.errorf("v1 profile header in version %d envelope", d.version)
			}
			if p != nil {
				return nil, d.errorf("duplicate profile header section")
			}
			p = &profile.Profile{Events: make([]string, 2)}
			if p.Program, err = c.string(); err == nil {
				if p.Mode, err = c.string(); err == nil {
					if p.Events[0], err = c.string(); err == nil {
						p.Events[1], err = c.string()
					}
				}
			}
			if err == nil {
				err = c.done()
			}
			if err != nil {
				return nil, d.errorf("profile header: %v", err)
			}
		case secProfileSchema:
			if d.version < 2 {
				return nil, d.errorf("schema section in version %d envelope", d.version)
			}
			if p != nil {
				return nil, d.errorf("duplicate profile header section")
			}
			p = &profile.Profile{}
			if p.Program, err = c.string(); err == nil {
				p.Mode, err = c.string()
			}
			if err == nil {
				var n int
				if n, err = c.count(1); err == nil {
					if n > maxWireEvents {
						return nil, d.errorf("profile schema: %d events exceeds limit", n)
					}
					p.Events = make([]string, n)
					for i := range p.Events {
						if p.Events[i], err = c.string(); err != nil {
							break
						}
					}
				}
			}
			if err == nil && c.remaining() > 0 {
				// Trailing iteration degree (k>1 schemas only).
				var k uint64
				if k, err = c.uvarint(); err == nil {
					if k < 2 || k > maxWireK {
						return nil, d.errorf("profile schema: bad iteration degree %d", k)
					}
					p.K = int(k)
				}
			}
			if err == nil {
				err = c.done()
			}
			if err != nil {
				return nil, d.errorf("profile schema: %v", err)
			}
		case secProfileProc:
			if p == nil {
				return nil, d.errorf("proc section before profile header")
			}
			pp, err := decodeProcSection(c, len(p.Events))
			if err != nil {
				return nil, d.errorf("proc section: %v", err)
			}
			if p.Procs == nil {
				// Sections stream, so the proc count is unknown up front;
				// start at a capacity that covers typical workloads in one
				// allocation instead of growing through the doublings.
				p.Procs = make([]*profile.ProcPaths, 0, 64)
			}
			p.Procs = append(p.Procs, pp)
		default:
			return nil, d.errorf("unexpected section %d in profile payload", id)
		}
	}
	if p == nil {
		return nil, d.errorf("profile payload has no header section")
	}
	return p, nil
}

func decodeProcSection(c *cursor, numMetrics int) (*profile.ProcPaths, error) {
	pp := &profile.ProcPaths{}
	id, err := c.varint()
	if err != nil {
		return nil, err
	}
	pp.ProcID = int(id)
	if pp.Name, err = c.string(); err != nil {
		return nil, err
	}
	if pp.NumPaths, err = c.varint(); err != nil {
		return nil, err
	}
	n, err := c.count(2 + numMetrics) // sum + freq + metrics, one byte each minimum
	if err != nil {
		return nil, err
	}
	pp.Entries = make([]profile.PathEntry, n)
	for i := range pp.Entries {
		en := &pp.Entries[i]
		if en.Sum, err = c.varint(); err != nil {
			return nil, err
		}
		if en.Freq, err = c.uvarint(); err != nil {
			return nil, err
		}
		if numMetrics > 0 {
			en.Metrics = pp.NewMetrics(numMetrics)
			for k := 0; k < numMetrics; k++ {
				if en.Metrics[k], err = c.uvarint(); err != nil {
					return nil, err
				}
			}
		}
	}
	if c.remaining() > 0 {
		// Trailing per-proc effective degree (k>1 profiles only).
		k, err := c.varint()
		if err != nil {
			return nil, err
		}
		if k < 1 || k > maxWireK {
			return nil, fmt.Errorf("bad proc iteration degree %d", k)
		}
		pp.K = int(k)
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return pp, nil
}
