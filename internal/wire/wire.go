// Package wire implements the compact binary encoding profiles travel in
// between producers and the collection tier (internal/collector): a
// versioned envelope of varint-encoded, length-prefixed sections with a
// CRC-32C trailer, carrying either a flow-sensitive path profile
// (profile.Profile) or a calling context tree export (cct.Export).
//
// Layout:
//
//	"PPW1"                         magic
//	version  byte                  format version (currently 2; 1 still decodes)
//	kind     byte                  1 = profile, 2 = CCT export
//	sections { id byte, uvarint length, payload }*
//	end      byte 0                end-of-sections marker
//	crc      uint32 little-endian  CRC-32C of every preceding byte
//
// Version 2 replaces the profile header section with a schema-carrying
// variant (secProfileSchema): instead of exactly two event-name strings it
// holds the full N-event metric schema, and each path entry carries N
// metric accumulators. Version 1 envelopes — fixed two-metric layout — are
// still decoded (the reader maps them onto a two-event schema), so blobs
// produced by old producers keep working; see testdata/v1_*.bin.
//
// Sections stream: encoders emit one section per procedure (profiles) or
// per call record (CCTs), and decoders consume section by section, so
// neither side holds more than one section's payload beyond the decoded
// result itself. The codec round-trips byte-identically against the text
// encoders: re-encoding a decoded value with profile.(*Profile).Write or
// cct.(*Export).WriteText reproduces the original text file. Unlike the
// text format, the CCT message also carries the structural detail Table 3
// needs (record sizes, per-site slot states, heap footprint), so merged
// aggregates report exact statistics.
//
// Corrupt, truncated or oversized input yields a descriptive error (never
// a panic); the trailing checksum rejects bit flips that still parse.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"pathprof/internal/cct"
	"pathprof/internal/profile"
)

// Version is the format version this package writes.
const Version = 2

// minVersion is the oldest format version the decoder accepts.
const minVersion = 1

var magic = [4]byte{'P', 'P', 'W', '1'}

// Kind discriminates the payload carried by an envelope.
type Kind byte

const (
	KindProfile Kind = 1
	KindCCT     Kind = 2
)

func (k Kind) String() string {
	switch k {
	case KindProfile:
		return "profile"
	case KindCCT:
		return "cct"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// Section IDs.
const (
	secEnd           = 0
	secProfileHeader = 1 // v1 profile header: exactly two event names
	secProfileProc   = 2
	secCCTHeader     = 3
	secCCTNode       = 4
	secCCTBackedges  = 5
	secProfileSchema = 6 // v2 profile header: N-event metric schema
)

// maxSectionLen bounds a single section's declared payload length; it is
// far above anything the encoders produce and exists so hostile length
// fields cannot demand absurd allocations.
const maxSectionLen = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Payload is a decoded envelope: exactly one of Profile / Export is set,
// per Kind.
type Payload struct {
	Kind    Kind
	Profile *profile.Profile
	Export  *cct.Export
}

// Program returns the name of the program the payload profiles.
func (p *Payload) Program() string {
	switch p.Kind {
	case KindProfile:
		return p.Profile.Program
	case KindCCT:
		return p.Export.Program
	}
	return ""
}

// Encode writes v — a *profile.Profile or *cct.Export — as one envelope.
func Encode(w io.Writer, v any) error {
	switch v := v.(type) {
	case *profile.Profile:
		return EncodeProfile(w, v)
	case *cct.Export:
		return EncodeExport(w, v)
	default:
		return fmt.Errorf("wire: cannot encode %T", v)
	}
}

// Decode reads one envelope and returns its payload.
func Decode(r io.Reader) (*Payload, error) {
	d := newDecoder(r)
	kind, err := d.header()
	if err != nil {
		return nil, err
	}
	pl := &Payload{Kind: kind}
	switch kind {
	case KindProfile:
		pl.Profile, err = decodeProfileSections(d)
	case KindCCT:
		pl.Export, err = decodeExportSections(d)
	default:
		return nil, d.errorf("unknown payload kind %d", byte(kind))
	}
	if err != nil {
		return nil, err
	}
	if err := d.verifyTrailer(); err != nil {
		return nil, err
	}
	return pl, nil
}

// --- encoder ---

type encoder struct {
	w   io.Writer
	crc hash.Hash32
	tmp []byte
}

func newEncoder(w io.Writer) *encoder {
	return &encoder{w: w, crc: crc32.New(crcTable)}
}

func (e *encoder) raw(b []byte) error {
	e.crc.Write(b)
	_, err := e.w.Write(b)
	return err
}

func (e *encoder) header(kind Kind) error {
	return e.raw([]byte{magic[0], magic[1], magic[2], magic[3], Version, byte(kind)})
}

// section emits one length-prefixed section. The payload buffer is reused
// across sections (callers rebuild it via e.tmp).
func (e *encoder) section(id byte, payload []byte) error {
	hdr := binary.AppendUvarint([]byte{id}, uint64(len(payload)))
	if err := e.raw(hdr); err != nil {
		return err
	}
	return e.raw(payload)
}

// finish writes the end marker and the checksum trailer.
func (e *encoder) finish() error {
	if err := e.raw([]byte{secEnd}); err != nil {
		return err
	}
	sum := e.crc.Sum32()
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], sum)
	_, err := e.w.Write(tr[:]) // the trailer is not part of its own checksum
	return err
}

// Buffer append helpers.

func putUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func putVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func putString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func putBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// --- decoder ---

type decoder struct {
	r       *bufio.Reader
	crc     hash.Hash32
	offset  int64
	version byte   // envelope format version, set by header()
	buf     []byte // section payload buffer, reused across sections
}

func newDecoder(r io.Reader) *decoder {
	return &decoder{r: bufio.NewReader(r), crc: crc32.New(crcTable)}
}

func (d *decoder) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("wire: offset %d: %s", d.offset, fmt.Sprintf(format, args...))
}

// ReadByte implements io.ByteReader over the checksummed stream.
func (d *decoder) ReadByte() (byte, error) {
	b, err := d.r.ReadByte()
	if err != nil {
		return 0, err
	}
	d.crc.Write([]byte{b})
	d.offset++
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(d)
	if err != nil {
		return 0, d.eof(err, "varint")
	}
	return v, nil
}

// eof normalizes read errors: a clean EOF mid-structure is truncation.
func (d *decoder) eof(err error, what string) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return d.errorf("truncated input reading %s", what)
	}
	return fmt.Errorf("wire: offset %d: reading %s: %w", d.offset, what, err)
}

// readFull reads exactly n bytes through the checksum into the decoder's
// reusable payload buffer — section decoders copy everything they keep, so
// one buffer serves every section of the envelope. Growth is chunked with
// the bytes actually present, so a lying length field fails at the true
// end of input instead of pre-allocating n bytes.
func (d *decoder) readFull(n int) ([]byte, error) {
	const chunk = 64 << 10
	buf := d.buf[:0]
	if cap(buf) < n && cap(buf) < chunk {
		buf = make([]byte, 0, min(n, chunk))
	}
	for len(buf) < n {
		c := min(n-len(buf), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, c)...)
		if _, err := io.ReadFull(d.r, buf[start:]); err != nil {
			return nil, d.eof(err, "section payload")
		}
		d.crc.Write(buf[start:])
		d.offset += int64(c)
	}
	d.buf = buf
	return buf, nil
}

func (d *decoder) header() (Kind, error) {
	var m [6]byte
	if _, err := io.ReadFull(d.r, m[:]); err != nil {
		return 0, d.eof(err, "envelope header")
	}
	d.crc.Write(m[:])
	d.offset += 6
	if [4]byte(m[:4]) != magic {
		return 0, d.errorf("bad magic %q", m[:4])
	}
	if m[4] < minVersion || m[4] > Version {
		return 0, d.errorf("unsupported version %d (accept %d..%d)", m[4], minVersion, Version)
	}
	d.version = m[4]
	return Kind(m[5]), nil
}

// nextSection reads a section header and payload; it returns id secEnd
// with a nil payload at the end marker.
func (d *decoder) nextSection() (byte, []byte, error) {
	id, err := d.ReadByte()
	if err != nil {
		return 0, nil, d.eof(err, "section id")
	}
	if id == secEnd {
		return secEnd, nil, nil
	}
	n, err := d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if n > maxSectionLen {
		return 0, nil, d.errorf("section %d length %d exceeds limit", id, n)
	}
	payload, err := d.readFull(int(n))
	if err != nil {
		return 0, nil, err
	}
	return id, payload, nil
}

// verifyTrailer reads the 4-byte checksum (outside the checksummed stream)
// and compares it with the accumulated CRC.
func (d *decoder) verifyTrailer() error {
	want := d.crc.Sum32()
	var tr [4]byte
	if _, err := io.ReadFull(d.r, tr[:]); err != nil {
		return d.eof(err, "checksum trailer")
	}
	got := binary.LittleEndian.Uint32(tr[:])
	if got != want {
		return d.errorf("checksum mismatch: trailer %08x, computed %08x", got, want)
	}
	return nil
}

// --- section payload cursor ---

// cursor parses primitives out of one section's payload.
type cursor struct {
	b   []byte
	pos int
}

func (c *cursor) remaining() int { return len(c.b) - c.pos }

func (c *cursor) ReadByte() (byte, error) {
	if c.pos >= len(c.b) {
		return 0, io.ErrUnexpectedEOF
	}
	b := c.b[c.pos]
	c.pos++
	return b, nil
}

func (c *cursor) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(c)
	if err != nil {
		return 0, fmt.Errorf("truncated varint")
	}
	return v, nil
}

func (c *cursor) varint() (int64, error) {
	v, err := binary.ReadVarint(c)
	if err != nil {
		return 0, fmt.Errorf("truncated varint")
	}
	return v, nil
}

func (c *cursor) bool() (bool, error) {
	b, err := c.ReadByte()
	if err != nil {
		return false, fmt.Errorf("truncated bool")
	}
	if b > 1 {
		return false, fmt.Errorf("bad bool byte %d", b)
	}
	return b == 1, nil
}

func (c *cursor) string() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(c.remaining()) {
		return "", fmt.Errorf("string length %d exceeds section", n)
	}
	s := string(c.b[c.pos : c.pos+int(n)])
	c.pos += int(n)
	return s, nil
}

// count reads a collection length and validates it against the bytes left
// in the section (each element needs at least minBytes), so corrupt counts
// cannot demand absurd allocations.
func (c *cursor) count(minBytes int) (int, error) {
	n, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(c.remaining()/minBytes) {
		return 0, fmt.Errorf("count %d exceeds section size", n)
	}
	return int(n), nil
}

func (c *cursor) done() error {
	if c.pos != len(c.b) {
		return fmt.Errorf("%d trailing bytes in section", len(c.b)-c.pos)
	}
	return nil
}
