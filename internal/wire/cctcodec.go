package wire

import (
	"io"
	"slices"

	"pathprof/internal/cct"
	"pathprof/internal/flat"
)

// CCT payload layout.
//
// Section secCCTHeader (one, first):
//
//	string program, uvarint numProcs, bool distinguishSites,
//	uvarint numMetrics, byte flags (bit 0: structural extras present),
//	then when structural: uvarint sizeBytes, uvarint listElems
//
// Section secCCTNode (one per record, depth-first preorder):
//
//	uvarint id, uvarint parentID, varint proc,
//	uvarint numMetrics + varint each,
//	uvarint numPathCounts + (varint sum, varint count)* sorted by sum,
//	then when structural: uvarint size, uvarint numSlots +
//	per slot: byte (bit 0 used, bits 1-2 path state),
//	          varint prefix when path state == 1
//
// Section secCCTBackedges (one, last, present when any backedges exist):
//
//	uvarint count, (uvarint fromID, uvarint toID)*

const flagStructure = 1

// EncodeExport writes ex as one wire envelope.
func EncodeExport(w io.Writer, ex *cct.Export) error {
	e := newEncoder(w)
	if err := e.header(KindCCT); err != nil {
		return err
	}
	b := e.tmp[:0]
	b = putString(b, ex.Program)
	b = putUvarint(b, uint64(ex.NumProcs))
	b = putBool(b, ex.DistinguishSites)
	b = putUvarint(b, uint64(ex.NumMetrics))
	var flags byte
	if ex.HasStructure {
		flags |= flagStructure
	}
	b = append(b, flags)
	if ex.HasStructure {
		b = putUvarint(b, ex.SizeBytes)
		b = putUvarint(b, uint64(ex.ListElems))
	}
	if err := e.section(secCCTHeader, b); err != nil {
		return err
	}

	var backedges [][2]int
	var encErr error
	var rec func(n *cct.ExportedNode)
	rec = func(n *cct.ExportedNode) {
		if encErr != nil {
			return
		}
		for _, be := range n.Backedges {
			backedges = append(backedges, [2]int{n.ID, be})
		}
		for _, ch := range n.Children {
			b = b[:0]
			b = putUvarint(b, uint64(ch.ID))
			b = putUvarint(b, uint64(n.ID))
			b = putVarint(b, int64(ch.Proc))
			b = putUvarint(b, uint64(len(ch.Metrics)))
			for _, m := range ch.Metrics {
				b = putVarint(b, m)
			}
			sums := make([]int64, 0, ch.PathCounts.Len())
			ch.PathCounts.Range(func(s, _ int64) bool {
				sums = append(sums, s)
				return true
			})
			slices.Sort(sums)
			b = putUvarint(b, uint64(len(sums)))
			for _, s := range sums {
				cnt, _ := ch.PathCounts.Get(s)
				b = putVarint(b, s)
				b = putVarint(b, cnt)
			}
			if ex.HasStructure {
				b = putUvarint(b, ch.Size)
				b = putUvarint(b, uint64(len(ch.Slots)))
				for _, s := range ch.Slots {
					st := byte(0)
					if s.Used {
						st |= 1
					}
					st |= s.PathState << 1
					b = append(b, st)
					if s.PathState == 1 {
						b = putVarint(b, s.PathPrefix)
					}
				}
			}
			if err := e.section(secCCTNode, b); err != nil {
				encErr = err
				return
			}
			rec(ch)
		}
	}
	rec(ex.Root)
	if encErr != nil {
		return encErr
	}
	if len(backedges) > 0 {
		b = b[:0]
		b = putUvarint(b, uint64(len(backedges)))
		for _, be := range backedges {
			b = putUvarint(b, uint64(be[0]))
			b = putUvarint(b, uint64(be[1]))
		}
		if err := e.section(secCCTBackedges, b); err != nil {
			return err
		}
	}
	e.tmp = b
	return e.finish()
}

// DecodeExport reads one envelope that must carry a CCT export.
func DecodeExport(r io.Reader) (*cct.Export, error) {
	pl, err := Decode(r)
	if err != nil {
		return nil, err
	}
	if pl.Kind != KindCCT {
		return nil, errKind(KindCCT, pl.Kind)
	}
	return pl.Export, nil
}

func decodeExportSections(d *decoder) (*cct.Export, error) {
	var ex *cct.Export
	sawBackedges := false
	for {
		id, payload, err := d.nextSection()
		if err != nil {
			return nil, err
		}
		if id == secEnd {
			break
		}
		c := &cursor{b: payload}
		switch id {
		case secCCTHeader:
			if ex != nil {
				return nil, d.errorf("duplicate cct header section")
			}
			if ex, err = decodeCCTHeader(c); err != nil {
				return nil, d.errorf("cct header: %v", err)
			}
		case secCCTNode:
			if ex == nil {
				return nil, d.errorf("node section before cct header")
			}
			if sawBackedges {
				return nil, d.errorf("node section after backedges")
			}
			if err := decodeCCTNode(c, ex); err != nil {
				return nil, d.errorf("cct node: %v", err)
			}
		case secCCTBackedges:
			if ex == nil {
				return nil, d.errorf("backedge section before cct header")
			}
			if sawBackedges {
				return nil, d.errorf("duplicate backedge section")
			}
			sawBackedges = true
			if err := decodeCCTBackedges(c, ex); err != nil {
				return nil, d.errorf("cct backedges: %v", err)
			}
		default:
			return nil, d.errorf("unexpected section %d in cct payload", id)
		}
	}
	if ex == nil {
		return nil, d.errorf("cct payload has no header section")
	}
	return ex, nil
}

func decodeCCTHeader(c *cursor) (*cct.Export, error) {
	ex := &cct.Export{}
	var err error
	if ex.Program, err = c.string(); err != nil {
		return nil, err
	}
	np, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	ex.NumProcs = int(np)
	if ex.DistinguishSites, err = c.bool(); err != nil {
		return nil, err
	}
	nm, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	ex.NumMetrics = int(nm)
	flags, err := c.ReadByte()
	if err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	if flags&flagStructure != 0 {
		ex.HasStructure = true
		if ex.SizeBytes, err = c.uvarint(); err != nil {
			return nil, err
		}
		le, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		ex.ListElems = int(le)
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	root := &cct.ExportedNode{ID: 0, Proc: -1, PathCounts: flat.New(0)}
	ex.Root = root
	ex.Nodes = map[int]*cct.ExportedNode{0: root}
	return ex, nil
}

func decodeCCTNode(c *cursor, ex *cct.Export) error {
	id64, err := c.uvarint()
	if err != nil {
		return err
	}
	pid64, err := c.uvarint()
	if err != nil {
		return err
	}
	id, pid := int(id64), int(pid64)
	if id == 0 {
		return errNodeIDZero
	}
	if _, dup := ex.Nodes[id]; dup {
		return &nodeError{id: id, msg: "duplicate node id"}
	}
	parent, ok := ex.Nodes[pid]
	if !ok {
		return &nodeError{id: id, msg: "unknown parent"}
	}
	proc, err := c.varint()
	if err != nil {
		return err
	}
	n := &cct.ExportedNode{ID: id, ParentID: pid, Proc: int(proc)}
	nm, err := c.count(1)
	if err != nil {
		return err
	}
	if nm > 0 {
		n.Metrics = make([]int64, nm)
		for i := range n.Metrics {
			if n.Metrics[i], err = c.varint(); err != nil {
				return err
			}
		}
	}
	np, err := c.count(2)
	if err != nil {
		return err
	}
	n.PathCounts = flat.New(np)
	for i := 0; i < np; i++ {
		s, err := c.varint()
		if err != nil {
			return err
		}
		cnt, err := c.varint()
		if err != nil {
			return err
		}
		n.PathCounts.Set(s, cnt)
	}
	if ex.HasStructure {
		if n.Size, err = c.uvarint(); err != nil {
			return err
		}
		ns, err := c.count(1)
		if err != nil {
			return err
		}
		n.Slots = make([]cct.SlotStat, ns)
		for i := range n.Slots {
			st, err := c.ReadByte()
			if err != nil {
				return io.ErrUnexpectedEOF
			}
			n.Slots[i].Used = st&1 != 0
			n.Slots[i].PathState = st >> 1
			if n.Slots[i].PathState > 2 {
				return &nodeError{id: id, msg: "bad slot state"}
			}
			if n.Slots[i].PathState == 1 {
				if n.Slots[i].PathPrefix, err = c.varint(); err != nil {
					return err
				}
			}
		}
	}
	if err := c.done(); err != nil {
		return err
	}
	parent.Children = append(parent.Children, n)
	ex.Nodes[id] = n
	return nil
}

func decodeCCTBackedges(c *cursor, ex *cct.Export) error {
	n, err := c.count(2)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		from64, err := c.uvarint()
		if err != nil {
			return err
		}
		to64, err := c.uvarint()
		if err != nil {
			return err
		}
		from, ok := ex.Nodes[int(from64)]
		if !ok {
			return &nodeError{id: int(from64), msg: "backedge from unknown node"}
		}
		if _, ok := ex.Nodes[int(to64)]; !ok {
			return &nodeError{id: int(to64), msg: "backedge to unknown node"}
		}
		from.Backedges = append(from.Backedges, int(to64))
	}
	return c.done()
}

type nodeError struct {
	id  int
	msg string
}

func (e *nodeError) Error() string { return e.msg + " (node " + itoa(e.id) + ")" }

var errNodeIDZero = &nodeError{id: 0, msg: "node id 0 is reserved for the root"}

// itoa avoids importing strconv for one error path.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
