package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pathprof/internal/cache"
	"pathprof/internal/hpm"
	"pathprof/internal/ir"
	"pathprof/internal/mem"
	"pathprof/internal/testgen"
)

func run(t *testing.T, prog *ir.Program) Result {
	t.Helper()
	m := New(prog, DefaultConfig())
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestArithmeticAndOutput(t *testing.T) {
	b := ir.NewBuilder("arith")
	p := b.NewProc("main", 0)
	e := p.NewBlock()
	e.MovI(1, 6)
	e.MovI(2, 7)
	e.Mul(3, 1, 2)
	e.Out(3)
	e.MovI(4, 0)
	e.Div(5, 3, 4) // divide by zero is defined as 0
	e.Out(5)
	e.XorI(6, 3, 0xFF)
	e.Out(6)
	e.Halt()
	b.SetMain(p)
	res := run(t, b.MustFinish())
	want := []int64{42, 0, 42 ^ 0xFF}
	if len(res.Output) != len(want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Fatalf("output[%d] = %d, want %d", i, res.Output[i], want[i])
		}
	}
}

func TestLoopAndCounting(t *testing.T) {
	b := ir.NewBuilder("loop")
	p := b.NewProc("main", 0)
	e := p.NewBlock()
	h := p.NewBlock()
	body := p.NewBlock()
	x := p.NewBlock()
	e.MovI(2, 0)
	e.MovI(3, 0)
	e.Jmp(h)
	h.CmpLTI(4, 2, 100)
	h.Br(4, body, x)
	body.Add(3, 3, 2)
	body.AddI(2, 2, 1)
	body.Jmp(h)
	x.Out(3)
	x.Halt()
	b.SetMain(p)
	res := run(t, b.MustFinish())
	if res.Output[0] != 4950 {
		t.Fatalf("sum = %d, want 4950", res.Output[0])
	}
	if res.Totals[hpm.EvBranches] != 101 {
		t.Fatalf("branches = %d, want 101", res.Totals[hpm.EvBranches])
	}
	if res.Instrs == 0 || res.Cycles < res.Instrs {
		t.Fatalf("cycles %d < instrs %d", res.Cycles, res.Instrs)
	}
}

func TestCallsAndRegisterIsolation(t *testing.T) {
	b := ir.NewBuilder("calls")
	callee := b.NewProc("clobber", 1)
	ce := callee.NewBlock()
	ce.MovI(9, 12345) // clobbers r9 in its own frame only
	ce.AddI(1, 1, 1)
	ce.Ret()

	main := b.NewProc("main", 0)
	e := main.NewBlock()
	e.MovI(9, 7) // caller's r9 must survive the call
	e.MovI(1, 10)
	e.Call(callee)
	e.Out(1) // 11 (return value)
	e.Out(9) // 7 (preserved)
	e.Halt()
	b.SetMain(main)
	res := run(t, b.MustFinish())
	if res.Output[0] != 11 || res.Output[1] != 7 {
		t.Fatalf("output = %v, want [11 7]", res.Output)
	}
	if res.Totals[hpm.EvCalls] != 1 {
		t.Fatalf("calls = %d", res.Totals[hpm.EvCalls])
	}
}

func TestRecursionFibonacci(t *testing.T) {
	b := ir.NewBuilder("fib")
	fib := b.NewProc("fib", 1)
	fe := fib.NewBlock()
	rec := fib.NewBlock()
	base := fib.NewBlock()
	x := fib.NewBlock()
	fe.CmpLTI(2, 1, 2)
	fe.Br(2, base, rec)
	rec.Mov(10, 1) // save n
	rec.AddI(1, 10, -1)
	rec.Call(fib)
	rec.Mov(11, 1) // fib(n-1)
	rec.AddI(1, 10, -2)
	rec.Call(fib)
	rec.Add(1, 1, 11)
	rec.Jmp(x)
	base.Jmp(x)
	x.Ret()

	main := b.NewProc("main", 0)
	e := main.NewBlock()
	e.MovI(1, 12)
	e.Call(fib)
	e.Out(1)
	e.Halt()
	b.SetMain(main)
	res := run(t, b.MustFinish())
	if res.Output[0] != 144 {
		t.Fatalf("fib(12) = %d, want 144", res.Output[0])
	}
}

func TestIndirectCall(t *testing.T) {
	b := ir.NewBuilder("ind")
	f1 := b.NewProc("f1", 0)
	f1b := f1.NewBlock()
	f1b.MovI(1, 111)
	f1b.Ret()
	f2 := b.NewProc("f2", 0)
	f2b := f2.NewBlock()
	f2b.MovI(1, 222)
	f2b.Ret()

	main := b.NewProc("main", 0)
	e := main.NewBlock()
	e.MovI(7, int64(f2.ID()))
	e.CallInd(7)
	e.Out(1)
	e.MovI(7, int64(f1.ID()))
	e.CallInd(7)
	e.Out(1)
	e.Halt()
	b.SetMain(main)
	res := run(t, b.MustFinish())
	if res.Output[0] != 222 || res.Output[1] != 111 {
		t.Fatalf("output = %v", res.Output)
	}
}

func TestMemoryAndGlobals(t *testing.T) {
	b := ir.NewBuilder("mem")
	p := b.NewProc("main", 0)
	e := p.NewBlock()
	e.MovI(2, int64(mem.GlobalBase))
	e.Load(3, 2, 8) // globals[1]
	e.Out(3)
	e.MovI(4, 5)
	e.StoreIdx(2, 4, 0, 3) // globals[5] = r3
	e.LoadIdx(5, 2, 4, 0)
	e.Out(5)
	e.Halt()
	b.SetMain(p)
	b.Globals([]int64{10, 20, 30}, mem.GlobalBase)
	res := run(t, b.MustFinish())
	if res.Output[0] != 20 || res.Output[1] != 20 {
		t.Fatalf("output = %v", res.Output)
	}
	if res.Totals[hpm.EvLoads] != 2 || res.Totals[hpm.EvStores] != 1 {
		t.Fatalf("loads=%d stores=%d", res.Totals[hpm.EvLoads], res.Totals[hpm.EvStores])
	}
}

func TestFloatingPoint(t *testing.T) {
	b := ir.NewBuilder("fp")
	p := b.NewProc("main", 0)
	e := p.NewBlock()
	e.MovI(2, 9)
	e.CvtIF(3, 2)
	e.FSqrt(4, 3)
	e.CvtFI(5, 4)
	e.Out(5) // 3
	e.MovI(2, 3)
	e.CvtIF(6, 2)
	e.FMul(7, 6, 6)
	e.FAdd(7, 7, 6) // 9 + 3 = 12
	e.CvtFI(8, 7)
	e.Out(8)
	e.Halt()
	b.SetMain(p)
	res := run(t, b.MustFinish())
	if res.Output[0] != 3 || res.Output[1] != 12 {
		t.Fatalf("output = %v", res.Output)
	}
	if res.Totals[hpm.EvFPStalls] == 0 {
		t.Fatal("dependent FP chain produced no FP stalls")
	}
}

func TestSetJmpLongJmp(t *testing.T) {
	b := ir.NewBuilder("sj")
	// thrower longjmps back to main through two frames.
	thrower := b.NewProc("thrower", 1)
	te := thrower.NewBlock()
	te.MovI(2, 1) // handle is always 1 here (first setjmp)
	te.MovI(3, 77)
	te.LongJmp(2, 3)
	// Unreachable structurally, but the CFG needs a path to exit.
	te.Ret()

	midp := b.NewProc("mid", 1)
	me := midp.NewBlock()
	me.Call(thrower)
	me.Out(1) // must NOT execute
	me.Ret()

	main := b.NewProc("main", 0)
	e := main.NewBlock()
	after := main.NewBlock()
	callBlk := main.NewBlock()
	thrown := main.NewBlock()
	stop := main.NewBlock()
	e.SetJmp(4, 5) // r4 = handle, r5 = 0 first time / thrown value after
	e.Jmp(after)
	after.CmpEQI(6, 5, 0)
	after.Br(6, callBlk, thrown)
	callBlk.Call(midp) // mid calls thrower, which longjmps back to e
	callBlk.Out(1)     // must NOT execute
	callBlk.Jmp(stop)
	thrown.Out(5)
	thrown.Jmp(stop)
	stop.Halt()
	b.SetMain(main)
	prog := b.MustFinish()
	m := New(prog, DefaultConfig())
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 77 {
		t.Fatalf("output = %v, want [77]", res.Output)
	}
}

func TestUnwindCallbackFires(t *testing.T) {
	b := ir.NewBuilder("unwind")
	thrower := b.NewProc("thrower", 1)
	te := thrower.NewBlock()
	te.MovI(2, 1)
	te.MovI(3, 1)
	te.LongJmp(2, 3)
	te.Ret()

	main := b.NewProc("main", 0)
	e := main.NewBlock()
	next := main.NewBlock()
	callBlk := main.NewBlock()
	stop := main.NewBlock()
	e.SetJmp(4, 5)
	e.Jmp(next)
	next.CmpEQI(6, 5, 0)
	next.Br(6, callBlk, stop)
	callBlk.Call(thrower) // longjmps back to e
	callBlk.Jmp(stop)
	stop.Halt()
	b.SetMain(main)
	prog := b.MustFinish()

	m := New(prog, DefaultConfig())
	depths := []int{}
	m.OnUnwind(func(d int) { depths = append(depths, d) })
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(depths) != 1 || depths[0] != 1 {
		t.Fatalf("unwind depths = %v, want [1]", depths)
	}
}

func TestCacheBehaviourSequentialVsConflict(t *testing.T) {
	// Sequential sweep over 64KB: every 4th load misses (32B lines, 8B
	// words). Conflict pattern (stride 16KB in a 16KB direct-mapped cache):
	// every load misses.
	build := func(stride int64, iters int64) *ir.Program {
		b := ir.NewBuilder("sweep")
		p := b.NewProc("main", 0)
		e := p.NewBlock()
		h := p.NewBlock()
		body := p.NewBlock()
		x := p.NewBlock()
		e.MovI(2, 0)
		e.MovI(3, int64(mem.GlobalBase))
		e.Jmp(h)
		h.CmpLTI(4, 2, iters)
		h.Br(4, body, x)
		body.MulI(5, 2, stride)
		body.Add(5, 5, 3)
		body.AndI(5, 5, ^int64(7))
		body.Load(6, 5, 0)
		body.AddI(2, 2, 1)
		body.Jmp(h)
		x.Halt()
		b.SetMain(p)
		return b.MustFinish()
	}
	seq := run(t, build(8, 4096))
	conflict := run(t, build(16<<10, 4096))
	seqMiss := seq.Totals[hpm.EvDCacheReadMiss]
	confMiss := conflict.Totals[hpm.EvDCacheReadMiss]
	if seqMiss < 900 || seqMiss > 1200 {
		t.Fatalf("sequential misses = %d, want ~1024 (every 4th of 4096)", seqMiss)
	}
	if confMiss < 4000 {
		t.Fatalf("conflict misses = %d, want ~4096 (every access)", confMiss)
	}
	if conflict.Cycles <= seq.Cycles {
		t.Fatal("conflict pattern should cost more cycles")
	}
}

func TestPICInstructions(t *testing.T) {
	b := ir.NewBuilder("pic")
	p := b.NewProc("main", 0)
	e := p.NewBlock()
	e.MovI(2, 0)
	e.WrPIC(2)
	e.RdPIC(3) // confirm the write
	e.AddI(4, 4, 1)
	e.AddI(4, 4, 1)
	e.AddI(4, 4, 1)
	e.RdPIC(5)
	e.Out(5) // PIC0 counts instructions executed since the zeroing read
	e.Halt()
	b.SetMain(p)
	prog := b.MustFinish()
	m := New(prog, DefaultConfig())
	m.PMU().Select(hpm.EvInsts, hpm.EvNone)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Between the confirming RdPIC and the second RdPIC: rdpic(r3) retires
	// after read, then 3 AddIs, then the RdPIC itself reads before retiring.
	got := res.Output[0] & 0xffffffff
	if got < 3 || got > 5 {
		t.Fatalf("counted %d instructions, want 3-5", got)
	}
}

func TestStoreBufferStalls(t *testing.T) {
	b := ir.NewBuilder("stores")
	p := b.NewProc("main", 0)
	e := p.NewBlock()
	h := p.NewBlock()
	body := p.NewBlock()
	x := p.NewBlock()
	e.MovI(2, 0)
	e.MovI(3, int64(mem.GlobalBase))
	e.Jmp(h)
	h.CmpLTI(4, 2, 2000)
	h.Br(4, body, x)
	// Back-to-back conflicting stores (stride = cache size) overwhelm a
	// shallow store buffer.
	body.MulI(5, 2, 16<<10)
	body.Add(5, 5, 3)
	body.AndI(5, 5, ^int64(7))
	for i := int64(0); i < 6; i++ {
		body.Store(5, (16<<10)*i, 2)
	}
	body.AddI(2, 2, 1)
	body.Jmp(h)
	x.Halt()
	b.SetMain(p)
	cfg := DefaultConfig()
	cfg.StoreBufDepth = 2
	m := New(b.MustFinish(), cfg)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals[hpm.EvStoreBufStalls] == 0 {
		t.Fatal("conflicting store storm produced no store-buffer stalls")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prog := testgen.RandomProgram(rng, "det", testgen.ProgramOptions{
		NumProcs: 6, BlocksPer: 5, Recursion: true, IndirectCalls: true, Memory: true,
	})
	r1 := run(t, prog)
	r2 := run(t, prog)
	if r1.Cycles != r2.Cycles || r1.Instrs != r2.Instrs {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d cycles/instrs", r1.Cycles, r1.Instrs, r2.Cycles, r2.Instrs)
	}
	if r1.Totals != r2.Totals {
		t.Fatal("nondeterministic event totals")
	}
}

// TestRandomProgramsTerminate: generated programs run to completion within
// budget, with matching outputs across runs.
func TestRandomProgramsTerminate(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := testgen.RandomProgram(rng, "r", testgen.ProgramOptions{
			NumProcs:      int(rng.Intn(6) + 2),
			BlocksPer:     4,
			Recursion:     seed%2 == 0,
			IndirectCalls: seed%3 == 0,
			Memory:        true,
		})
		m := New(prog, DefaultConfig())
		_, err := m.Run()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStepBudgetEnforced(t *testing.T) {
	b := ir.NewBuilder("spin")
	p := b.NewProc("main", 0)
	e := p.NewBlock()
	loop := p.NewBlock()
	x := p.NewBlock()
	e.MovI(2, 1)
	e.Jmp(loop)
	loop.Nop()
	loop.Br(2, loop, x) // r2 always 1: infinite
	x.Halt()
	b.SetMain(p)
	cfg := DefaultConfig()
	cfg.MaxSteps = 10000
	m := New(b.MustFinish(), cfg)
	if _, err := m.Run(); err == nil {
		t.Fatal("infinite loop did not hit the step budget")
	}
}

func TestProbeInvocation(t *testing.T) {
	b := ir.NewBuilder("probe")
	p := b.NewProc("main", 0)
	e := p.NewBlock()
	e.MovI(2, 21)
	e.Probe(7, 2, 3)
	e.Out(3)
	e.Halt()
	b.SetMain(p)
	m := New(b.MustFinish(), DefaultConfig())
	m.RegisterProbe(7, func(ctx ProbeCtx, arg int64) int64 {
		ctx.ChargeInstrs(5)
		return arg * 2
	})
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 42 {
		t.Fatalf("probe result = %d", res.Output[0])
	}
}

func TestUnknownProbeErrors(t *testing.T) {
	b := ir.NewBuilder("probe2")
	p := b.NewProc("main", 0)
	e := p.NewBlock()
	e.Probe(99, 2, 3)
	e.Halt()
	b.SetMain(p)
	m := New(b.MustFinish(), DefaultConfig())
	if _, err := m.Run(); err == nil {
		t.Fatal("unknown probe did not error")
	}
}

type recordingTracer struct {
	enters, exits int
	edges         int
}

func (r *recordingTracer) Edge(proc int, from ir.BlockID, slot int) { r.edges++ }
func (r *recordingTracer) Enter(proc int)                           { r.enters++ }
func (r *recordingTracer) Exit(proc int)                            { r.exits++ }

func TestTracerSeesCallsAndEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prog := testgen.RandomProgram(rng, "tr", testgen.ProgramOptions{
		NumProcs: 5, BlocksPer: 4, Recursion: true, Memory: false,
	})
	m := New(prog, DefaultConfig())
	tr := &recordingTracer{}
	m.SetTracer(tr)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.enters == 0 || tr.edges == 0 {
		t.Fatalf("tracer saw enters=%d edges=%d", tr.enters, tr.edges)
	}
	// Every call plus the initial main entry.
	if got, want := uint64(tr.enters), res.Totals[hpm.EvCalls]+1; got != want {
		t.Fatalf("enters = %d, want calls+1 = %d", got, want)
	}
	if tr.exits != tr.enters {
		// main's Ret-as-halt still traces an exit only if main ends in Ret;
		// RandomProgram mains end in Halt, so exits == calls.
		if uint64(tr.exits) != res.Totals[hpm.EvCalls] {
			t.Fatalf("exits = %d, want %d", tr.exits, res.Totals[hpm.EvCalls])
		}
	}
}

func TestL2CacheReducesMissCost(t *testing.T) {
	// A working set larger than L1 (16KB) but well within L2 (512KB):
	// without L2 every L1 capacity miss pays the full memory penalty; with
	// L2 the repeated sweeps hit L2 after the first pass.
	build := func() *ir.Program {
		b := ir.NewBuilder("l2")
		p := b.NewProc("main", 0)
		e := p.NewBlock()
		h := p.NewBlock()
		body := p.NewBlock()
		x := p.NewBlock()
		e.MovI(2, 0)
		e.MovI(3, int64(mem.GlobalBase))
		e.Jmp(h)
		h.CmpLTI(4, 2, 8*8192) // 8 sweeps over 64KB
		h.Br(4, body, x)
		body.AndI(5, 2, 8191)
		body.LoadIdx(6, 3, 5, 0)
		body.AddI(2, 2, 1)
		body.Jmp(h)
		x.Halt()
		b.SetMain(p)
		return b.MustFinish()
	}
	noL2 := DefaultConfig()
	m1 := New(build(), noL2)
	res1, err := m1.Run()
	if err != nil {
		t.Fatal(err)
	}
	withL2 := DefaultConfig()
	withL2.L2 = cache.DefaultL2
	withL2.L2HitPenalty = 3
	withL2.DMissPenalty = 30 // true memory penalty once an L2 exists
	m2 := New(build(), withL2)
	res2, err := m2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Totals[hpm.EvL2Hit] == 0 {
		t.Fatal("no L2 hits on a 64KB working set")
	}
	if res2.L2.Accesses() != res2.Totals[hpm.EvL2Hit]+res2.Totals[hpm.EvL2Miss] {
		t.Fatal("L2 stats disagree with event totals")
	}
	if res1.L2.Accesses() != 0 {
		t.Fatal("disabled L2 reported accesses")
	}
	if res1.Totals[hpm.EvL2Hit] != 0 || res1.Totals[hpm.EvL2Miss] != 0 {
		t.Fatal("disabled L2 counted events")
	}
	// After the first sweep, L2 hits dominate: with a 30-cycle memory
	// penalty the L2 machine must still be cheaper per miss on average.
	if res2.Cycles >= res1.Cycles*4 {
		t.Fatalf("L2 config unexpectedly slow: %d vs %d cycles", res2.Cycles, res1.Cycles)
	}
}

func TestCallDepthLimit(t *testing.T) {
	b := ir.NewBuilder("deep")
	f := b.NewProc("f", 1)
	fe := f.NewBlock()
	fe.AddI(1, 1, 1)
	fe.Call(f) // unguarded recursion
	fe.Ret()
	main := b.NewProc("main", 0)
	e := main.NewBlock()
	e.MovI(1, 0)
	e.Call(f)
	e.Halt()
	b.SetMain(main)
	cfg := DefaultConfig()
	cfg.MaxDepth = 100
	m := New(b.MustFinish(), cfg)
	_, err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("err = %v, want call-depth error", err)
	}
}

func TestInvalidIndirectTarget(t *testing.T) {
	b := ir.NewBuilder("badind")
	p := b.NewProc("main", 0)
	e := p.NewBlock()
	e.MovI(7, 999)
	e.CallInd(7)
	e.Halt()
	b.SetMain(p)
	m := New(b.MustFinish(), DefaultConfig())
	if _, err := m.Run(); err == nil {
		t.Fatal("invalid indirect target accepted")
	}
}

func TestLongjmpInvalidHandle(t *testing.T) {
	b := ir.NewBuilder("badlj")
	p := b.NewProc("main", 0)
	e := p.NewBlock()
	e.MovI(2, 42) // never returned by SetJmp
	e.MovI(3, 1)
	e.LongJmp(2, 3)
	e.Halt()
	b.SetMain(p)
	m := New(b.MustFinish(), DefaultConfig())
	if _, err := m.Run(); err == nil {
		t.Fatal("invalid longjmp handle accepted")
	}
}

func TestLongjmpToDeadFrame(t *testing.T) {
	// setter runs setjmp and returns; main then longjmps to the dead frame.
	b := ir.NewBuilder("deadframe")
	setter := b.NewProc("setter", 0)
	se := setter.NewBlock()
	se.SetJmp(1, 2) // handle returned in r1
	se.Ret()
	main := b.NewProc("main", 0)
	e := main.NewBlock()
	e.Call(setter)
	e.MovI(3, 1)
	e.LongJmp(1, 3) // the setjmp frame is gone
	e.Halt()
	b.SetMain(main)
	m := New(b.MustFinish(), DefaultConfig())
	if _, err := m.Run(); err == nil {
		t.Fatal("longjmp to dead frame accepted")
	}
}

func TestOutputLimit(t *testing.T) {
	b := ir.NewBuilder("chatty")
	p := b.NewProc("main", 0)
	e := p.NewBlock()
	h := p.NewBlock()
	body := p.NewBlock()
	x := p.NewBlock()
	e.MovI(2, 0)
	e.Jmp(h)
	h.CmpLTI(3, 2, 1000)
	h.Br(3, body, x)
	body.Out(2)
	body.AddI(2, 2, 1)
	body.Jmp(h)
	x.Halt()
	b.SetMain(p)
	cfg := DefaultConfig()
	cfg.MaxOutput = 100
	m := New(b.MustFinish(), cfg)
	if _, err := m.Run(); err == nil {
		t.Fatal("output limit not enforced")
	}
}

func TestUnalignedAccessError(t *testing.T) {
	b := ir.NewBuilder("unaligned")
	p := b.NewProc("main", 0)
	e := p.NewBlock()
	e.MovI(2, int64(mem.GlobalBase)+3)
	e.Load(3, 2, 0)
	e.Halt()
	b.SetMain(p)
	m := New(b.MustFinish(), DefaultConfig())
	_, err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "unaligned") {
		t.Fatalf("err = %v, want unaligned-access error", err)
	}
}

// TestPICSurvivesAcrossCall: the PMU is global (not per activation), so a
// callee's counter activity is visible to the caller — the reason the
// paper's instrumentation must save and restore around procedure bodies.
func TestPICSurvivesAcrossCall(t *testing.T) {
	b := ir.NewBuilder("picglobal")
	callee := b.NewProc("work", 0)
	ce := callee.NewBlock()
	ce.AddI(9, 9, 1)
	ce.AddI(9, 9, 1)
	ce.Ret()
	main := b.NewProc("main", 0)
	e := main.NewBlock()
	e.MovI(2, 0)
	e.WrPIC(2)
	e.RdPIC(3)
	e.Call(callee)
	e.RdPIC(4)
	e.Out(4)
	e.Halt()
	b.SetMain(main)
	m := New(b.MustFinish(), DefaultConfig())
	m.PMU().Select(hpm.EvInsts, hpm.EvNone)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The callee's instructions (plus call/ret overhead) are in the count.
	if low := res.Output[0] & 0xffffffff; low < 4 {
		t.Fatalf("counter did not see callee activity: %d", low)
	}
}

func TestIssueWidthSpeedsRetirement(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	prog := testgen.RandomProgram(rng, "iw", testgen.ProgramOptions{
		NumProcs: 5, BlocksPer: 5, Memory: true,
	})
	run := func(width int) Result {
		cfg := DefaultConfig()
		cfg.IssueWidth = width
		m := New(prog, cfg)
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	scalar := run(1)
	quad := run(4)
	if scalar.Instrs != quad.Instrs {
		t.Fatal("issue width changed architectural behaviour")
	}
	if quad.Cycles >= scalar.Cycles {
		t.Fatalf("4-wide (%d cycles) not faster than scalar (%d)", quad.Cycles, scalar.Cycles)
	}
	// Cache and branch behaviour is identical: only timing changes.
	if scalar.Totals[hpm.EvDCacheMiss] != quad.Totals[hpm.EvDCacheMiss] ||
		scalar.Totals[hpm.EvMispredict] != quad.Totals[hpm.EvMispredict] {
		t.Fatal("issue width perturbed microarchitectural event counts")
	}
	// Determinism at width 4.
	if run(4).Cycles != quad.Cycles {
		t.Fatal("superscalar timing nondeterministic")
	}
}
