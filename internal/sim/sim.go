// Package sim is the execution-driven machine simulator: an in-order
// interpreter for ir programs that drives the L1 data and instruction cache
// models, a branch predictor, a store buffer, an FP latency scoreboard, and
// the hardware performance counter unit. It stands in for the UltraSPARC
// hardware of the paper: every claim about cycles, cache misses and stalls
// is measured against this machine.
//
// The cost model is deliberately simple and deterministic: one cycle per
// retired instruction, plus fixed penalties for I-cache misses, D-cache load
// misses, branch mispredicts, store-buffer overflow and FP result latency.
// The paper's results depend on *where* events concentrate, not on exact
// UltraSPARC timings, so a stable first-order model suffices.
package sim

import (
	"fmt"
	"math"

	"pathprof/internal/branch"
	"pathprof/internal/cache"
	"pathprof/internal/hpm"
	"pathprof/internal/ir"
	"pathprof/internal/mem"
)

// Config selects machine parameters. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	L1D cache.Config
	L1I cache.Config

	// L2, when SizeBytes > 0, interposes a unified second-level cache on
	// the data path: L1 misses that hit L2 cost L2HitPenalty instead of the
	// full DMissPenalty.
	L2           cache.Config
	L2HitPenalty uint64

	PredictorBits uint
	StoreBufDepth int

	// IssueWidth models a superscalar front end: up to IssueWidth retired
	// instructions share one base cycle (penalties are unaffected). 0 or 1
	// is the scalar in-order default used by all the paper experiments.
	IssueWidth int

	// NumCounters is the PMU bank width K (0 means the UltraSPARC's classic
	// two PICs). Wider banks let instrumentation collect more events per
	// run; a MetricSet wider than the bank needs the multiplexing scheduler
	// (AttachScheduler).
	NumCounters int

	// Penalties, in cycles.
	DMissPenalty      uint64 // load miss stall (memory, or L2 miss)
	IMissPenalty      uint64 // instruction fetch miss stall
	MispredictPenalty uint64
	FPLatency         uint64 // cycles before an FP result is usable
	StoreDrainHit     uint64 // store buffer occupancy per store that hits
	StoreDrainMiss    uint64 // and per store that misses

	// Limits.
	MaxSteps  uint64 // dynamic instruction budget (0 = default)
	MaxDepth  int    // call depth limit (0 = default)
	MaxOutput int    // output buffer limit (0 = default)
}

// Instruction layout constants. Code is laid out sequentially from
// mem.TextBase in block order — InstrBytes per instruction, each procedure
// aligned to a fresh ProcAlign-byte I-cache line — so a program's block
// order determines its instruction addresses, and with them its I-cache
// footprint and branch-predictor indexing. The pgo layout passes rely on
// this model when packing hot chains.
const (
	InstrBytes uint64 = 4
	ProcAlign  uint64 = 32
)

// DefaultConfig returns the UltraSPARC-like default machine.
func DefaultConfig() Config {
	return Config{
		L1D:               cache.DefaultL1D,
		L1I:               cache.DefaultL1I,
		PredictorBits:     12,
		StoreBufDepth:     8,
		DMissPenalty:      6,
		IMissPenalty:      8,
		MispredictPenalty: 4,
		FPLatency:         3,
		StoreDrainHit:     1,
		StoreDrainMiss:    6,
		MaxSteps:          2_000_000_000,
		MaxDepth:          1 << 16,
		MaxOutput:         1 << 22,
	}
}

// ProbeCtx is the restricted machine interface exposed to probe handlers
// (the CCT runtime). Probes charge representative costs so that context
// sensitive profiling has realistic overhead and perturbation.
type ProbeCtx interface {
	// TouchRead simulates a data-cache read of addr, charging any miss
	// penalty and counting events.
	TouchRead(addr uint64)
	// TouchWrite simulates a data-cache write of addr.
	TouchWrite(addr uint64)
	// ChargeInstrs accounts for n inline instrumentation instructions
	// (instructions + cycles), modelling code the probe stands in for.
	ChargeInstrs(n uint64)
	// Mem exposes simulated memory (probes keep runtime state there).
	Mem() *mem.Memory
	// Depth returns the current activation depth (1 = main only).
	Depth() int
	// Cycles returns the current cycle count.
	Cycles() uint64
}

// Probe is a runtime hook invoked by the Probe instruction.
type Probe func(ctx ProbeCtx, arg int64) int64

// UnwindFn is notified when LongJmp discards activations; depth is the
// number of activations remaining after the unwind.
type UnwindFn func(depth int)

// Tracer observes control flow as the machine executes: every CFG edge
// taken (identified by source block and successor slot, so parallel edges
// stay distinct), every procedure entry, and every return. Tests use it to
// build ground-truth path and context profiles to compare instrumentation
// against; baseline profilers use it where the paper's counterparts used
// process-level mechanisms.
type Tracer interface {
	Edge(proc int, from ir.BlockID, slot int)
	Enter(proc int)
	Exit(proc int)
}

// activation is one procedure activation's complete state.
type activation struct {
	proc *ir.Proc
	blk  ir.BlockID
	idx  int // next instruction index within blk
	regs [ir.NumRegs]int64
}

type jmpbuf struct {
	depth int // stack depth (suspended callers) when SetJmp ran
	blk   ir.BlockID
	idx   int // resume index (instruction after the SetJmp)
	rt    ir.Reg
}

// Machine executes one program.
type Machine struct {
	cfg  Config
	prog *ir.Program

	memory *mem.Memory
	l1d    *cache.Cache
	l1i    *cache.Cache
	l2     *cache.Cache // nil when not configured
	pred   *branch.Predictor
	pmu    *hpm.Unit

	cycles uint64
	steps  uint64

	cur   activation
	stack []activation

	// Hot-loop block cache: the current block and its base instruction
	// address, refreshed on every control transfer so the per-instruction
	// path avoids re-indexing proc.Blocks and blockAddr each step.
	curBlock *ir.Block
	curBase  uint64

	// Instruction addresses: base address per (proc, block); instruction i
	// of a block sits at blockAddr + 4*i.
	blockAddr [][]uint64

	// Store buffer slot free times.
	storeFree []uint64

	// Superscalar issue slot accumulator (see Config.IssueWidth).
	issueSlots int

	// FP scoreboard: cycle at which each register's value is ready.
	fpReady [ir.NumRegs]uint64

	probes   map[int64]Probe
	onUnwind []UnwindFn
	tracer   Tracer

	// Counter-multiplexing state (AttachScheduler): the scheduler rotates
	// every muxQuantum retired instructions, so the schedule is a pure
	// function of the instruction stream — deterministic across runs.
	mux        *hpm.Scheduler
	muxQuantum uint64
	muxSpent   uint64

	jmpbufs []jmpbuf

	output []int64
	halted bool
}

// New builds a machine for prog: lays out instruction addresses, maps the
// global segment, and initializes the stack pointer.
func New(prog *ir.Program, cfg Config) *Machine {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultConfig().MaxSteps
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = DefaultConfig().MaxDepth
	}
	if cfg.MaxOutput == 0 {
		cfg.MaxOutput = DefaultConfig().MaxOutput
	}
	if cfg.NumCounters == 0 {
		cfg.NumCounters = 2
	}
	m := &Machine{
		cfg:    cfg,
		prog:   prog,
		memory: mem.New(),
		l1d:    cache.New(cfg.L1D),
		l1i:    cache.New(cfg.L1I),
		pred:   branch.NewPredictor(cfg.PredictorBits),
		pmu:    hpm.NewK(cfg.NumCounters),
		probes: make(map[int64]Probe),
	}
	if cfg.L2.SizeBytes > 0 {
		m.l2 = cache.New(cfg.L2)
	}
	m.storeFree = make([]uint64, cfg.StoreBufDepth)

	addr := mem.TextBase
	m.blockAddr = make([][]uint64, len(prog.Procs))
	for pi, p := range prog.Procs {
		m.blockAddr[pi] = make([]uint64, len(p.Blocks))
		for bi, b := range p.Blocks {
			m.blockAddr[pi][bi] = addr
			addr += uint64(len(b.Instrs)) * InstrBytes
		}
		addr = (addr + ProcAlign - 1) &^ (ProcAlign - 1) // procedures start on fresh cache lines
	}

	base := prog.GlobalBase
	if base == 0 {
		base = mem.GlobalBase
	}
	m.memory.CopyRegion(base, prog.Globals)

	m.cur = activation{proc: prog.Procs[prog.Main]}
	m.cur.regs[ir.RegSP] = int64(mem.StackTop)
	m.reloadBlock()
	return m
}

// reloadBlock refreshes the cached current-block state after any change to
// m.cur's procedure or block.
func (m *Machine) reloadBlock() {
	m.curBlock = m.cur.proc.Blocks[m.cur.blk]
	m.curBase = m.blockAddr[m.cur.proc.ID][m.cur.blk]
}

// PMU returns the machine's performance monitor (to program event
// selections before running).
func (m *Machine) PMU() *hpm.Unit { return m.pmu }

// AttachScheduler multiplexes set over the machine's counter bank for the
// coming run: the bank rotates through the set's groups every quantum
// retired instructions (0 means DefaultMuxQuantum). Because rotation is
// driven by the deterministic instruction stream, the schedule — and the
// scaled estimates — are identical on every run of the same program. Run
// closes the final interval automatically; query the returned scheduler
// for Estimates afterwards. Attach before running, not mid-run.
func (m *Machine) AttachScheduler(set hpm.MetricSet, quantum uint64) *hpm.Scheduler {
	if quantum == 0 {
		quantum = DefaultMuxQuantum
	}
	m.mux = hpm.NewScheduler(m.pmu, set)
	m.muxQuantum = quantum
	m.muxSpent = 0
	return m.mux
}

// DefaultMuxQuantum is the rotation interval, in retired instructions, used
// when AttachScheduler is given a zero quantum. Small enough that even the
// test-scale workloads see every group many times, large enough that
// rotation overhead would be negligible on real hardware.
const DefaultMuxQuantum = 10_000

// EventCatalog returns the countable hardware events the machine model
// exposes, in menu order (EvNone excluded) — the universe a MetricSet can
// draw from.
func EventCatalog() []hpm.Event {
	evs := make([]hpm.Event, 0, hpm.NumEvents-1)
	for e := hpm.Event(1); e < hpm.NumEvents; e++ {
		evs = append(evs, e)
	}
	return evs
}

// RegisterProbe installs fn as the handler for Probe instructions carrying
// id.
func (m *Machine) RegisterProbe(id int64, fn Probe) {
	m.probes[id] = fn
}

// OnUnwind registers a longjmp-unwind listener.
func (m *Machine) OnUnwind(fn UnwindFn) { m.onUnwind = append(m.onUnwind, fn) }

// SetTracer installs a control-flow tracer (nil disables tracing).
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

// --- ProbeCtx ---

// Mem returns the simulated memory.
func (m *Machine) Mem() *mem.Memory { return m.memory }

// Depth returns the current activation depth (1 = main only).
func (m *Machine) Depth() int { return len(m.stack) + 1 }

// Cycles returns the current cycle count.
func (m *Machine) Cycles() uint64 { return m.cycles }

// CallStack returns the procedure IDs of all live activations, outermost
// first (ending with the currently running procedure). The sampling
// profiler baseline walks it the way Goldberg and Hall walked the process
// stack.
func (m *Machine) CallStack() []int {
	out := make([]int, 0, len(m.stack)+1)
	for _, a := range m.stack {
		out = append(out, a.proc.ID)
	}
	return append(out, m.cur.proc.ID)
}

// TouchRead simulates a D-cache read access.
func (m *Machine) TouchRead(addr uint64) {
	m.pmu.Count(hpm.EvLoads, 1)
	m.pmu.Count(hpm.EvDCacheRead, 1)
	if !m.l1d.Read(addr) {
		m.pmu.Count(hpm.EvDCacheReadMiss, 1)
		m.addCycles(m.missPenalty(addr, false))
	}
}

// missPenalty charges an L1 miss through the L2, when configured.
func (m *Machine) missPenalty(addr uint64, write bool) uint64 {
	if m.l2 == nil {
		return m.cfg.DMissPenalty
	}
	if m.l2.Access(addr, write) {
		m.pmu.Count(hpm.EvL2Hit, 1)
		return m.cfg.L2HitPenalty
	}
	m.pmu.Count(hpm.EvL2Miss, 1)
	return m.cfg.DMissPenalty
}

// TouchWrite simulates a D-cache write access (through the store buffer).
func (m *Machine) TouchWrite(addr uint64) {
	m.pmu.Count(hpm.EvStores, 1)
	m.pmu.Count(hpm.EvDCacheWrite, 1)
	hit := m.l1d.Write(addr)
	if !hit {
		m.pmu.Count(hpm.EvDCacheWriteMiss, 1)
		if m.l2 != nil {
			// Write misses allocate through the L2 (latency is absorbed by
			// the store buffer's drain time, as for L1 write misses).
			m.missPenalty(addr, true)
		}
	}
	m.storeBufferPush(hit)
}

// ChargeInstrs accounts for n instrumentation instructions.
func (m *Machine) ChargeInstrs(n uint64) {
	m.pmu.Count(hpm.EvInsts, n)
	m.addCycles(n)
	for i := uint64(0); i < n; i++ {
		m.pmu.Retire()
	}
}

// --- core accounting ---

func (m *Machine) addCycles(n uint64) {
	m.cycles += n
	m.pmu.Count(hpm.EvCycles, n)
}

func (m *Machine) storeBufferPush(hit bool) {
	// Find the earliest-free slot; stall if it frees in the future.
	best := 0
	for i, f := range m.storeFree {
		if f < m.storeFree[best] {
			best = i
		}
	}
	now := m.cycles
	if m.storeFree[best] > now {
		stall := m.storeFree[best] - now
		m.addCycles(stall)
		m.pmu.Count(hpm.EvStoreBufStalls, stall)
		now = m.cycles
	}
	drain := m.cfg.StoreDrainHit
	if !hit {
		drain = m.cfg.StoreDrainMiss
	}
	m.storeFree[best] = now + drain
}

func (m *Machine) waitFP(r ir.Reg) {
	if ready := m.fpReady[r]; ready > m.cycles {
		stall := ready - m.cycles
		m.addCycles(stall)
		m.pmu.Count(hpm.EvFPStalls, stall)
	}
}

// Result summarizes a completed run.
type Result struct {
	Cycles   uint64
	Instrs   uint64
	Output   []int64
	Totals   [hpm.NumEvents]uint64
	L1D      cache.Stats
	L1I      cache.Stats
	L2       cache.Stats // zero when no L2 is configured
	MemBytes uint64
}

// Run executes the program to completion (Halt) and returns the result. It
// returns an error for runtime faults: step budget exhausted, call depth
// exceeded, invalid longjmp, or an unknown probe.
func (m *Machine) Run() (Result, error) {
	if m.tracer != nil {
		m.tracer.Enter(m.cur.proc.ID)
	}
	for !m.halted {
		if m.steps >= m.cfg.MaxSteps {
			return Result{}, fmt.Errorf("sim: %s: step budget %d exhausted in %s", m.prog.Name, m.cfg.MaxSteps, m.cur.proc.Name)
		}
		if err := m.step(); err != nil {
			return Result{}, fmt.Errorf("sim: %s: %w", m.prog.Name, err)
		}
	}
	if m.mux != nil && m.muxSpent > 0 {
		m.mux.Finish(m.muxSpent)
		m.muxSpent = 0
	}
	res := Result{
		Cycles:   m.cycles,
		Instrs:   m.pmu.Total(hpm.EvInsts),
		Output:   m.output,
		Totals:   m.pmu.Totals(),
		L1D:      m.l1d.Stats(),
		L1I:      m.l1i.Stats(),
		MemBytes: m.memory.FootprintBytes(),
	}
	if m.l2 != nil {
		res.L2 = m.l2.Stats()
	}
	return res, nil
}

// Step executes exactly one instruction. It is the single-step form of Run
// for debuggers and micro-benchmarks; unlike Run it does not enforce the
// step budget. Stepping a halted machine is a no-op-free error in the sense
// that behaviour is undefined; check Halted first.
func (m *Machine) Step() error { return m.step() }

// Halted reports whether the machine has executed Halt (or returned from
// main).
func (m *Machine) Halted() bool { return m.halted }

// Steps returns the number of instructions executed so far.
func (m *Machine) Steps() uint64 { return m.steps }

func (m *Machine) step() error {
	blk := m.curBlock
	in := &blk.Instrs[m.cur.idx]
	iaddr := m.curBase + uint64(m.cur.idx)*4

	// Fetch.
	if !m.l1i.Read(iaddr) {
		m.pmu.Count(hpm.EvICacheMiss, 1)
		m.addCycles(m.cfg.IMissPenalty)
	}

	// Retire accounting: one instruction; the base cycle is shared across
	// IssueWidth instructions when a superscalar width is configured.
	m.steps++
	m.pmu.Count(hpm.EvInsts, 1)
	if m.cfg.IssueWidth <= 1 {
		m.addCycles(1)
	} else {
		m.issueSlots++
		if m.issueSlots >= m.cfg.IssueWidth {
			m.addCycles(1)
			m.issueSlots = 0
		}
	}

	regs := &m.cur.regs
	advance := true

	switch in.Op {
	case ir.Nop:

	case ir.Add:
		regs[in.Rd] = regs[in.Rs] + regs[in.Rt]
	case ir.Sub:
		regs[in.Rd] = regs[in.Rs] - regs[in.Rt]
	case ir.Mul:
		regs[in.Rd] = regs[in.Rs] * regs[in.Rt]
	case ir.Div:
		if regs[in.Rt] == 0 {
			regs[in.Rd] = 0
		} else {
			regs[in.Rd] = regs[in.Rs] / regs[in.Rt]
		}
	case ir.Rem:
		if regs[in.Rt] == 0 {
			regs[in.Rd] = 0
		} else {
			regs[in.Rd] = regs[in.Rs] % regs[in.Rt]
		}
	case ir.And:
		regs[in.Rd] = regs[in.Rs] & regs[in.Rt]
	case ir.Or:
		regs[in.Rd] = regs[in.Rs] | regs[in.Rt]
	case ir.Xor:
		regs[in.Rd] = regs[in.Rs] ^ regs[in.Rt]
	case ir.Shl:
		regs[in.Rd] = regs[in.Rs] << (uint64(regs[in.Rt]) & 63)
	case ir.Shr:
		regs[in.Rd] = int64(uint64(regs[in.Rs]) >> (uint64(regs[in.Rt]) & 63))

	case ir.AddI:
		regs[in.Rd] = regs[in.Rs] + in.Imm
	case ir.MulI:
		regs[in.Rd] = regs[in.Rs] * in.Imm
	case ir.AndI:
		regs[in.Rd] = regs[in.Rs] & in.Imm
	case ir.OrI:
		regs[in.Rd] = regs[in.Rs] | in.Imm
	case ir.XorI:
		regs[in.Rd] = regs[in.Rs] ^ in.Imm
	case ir.ShlI:
		regs[in.Rd] = regs[in.Rs] << (uint64(in.Imm) & 63)
	case ir.ShrI:
		regs[in.Rd] = int64(uint64(regs[in.Rs]) >> (uint64(in.Imm) & 63))

	case ir.MovI:
		regs[in.Rd] = in.Imm
	case ir.Mov:
		regs[in.Rd] = regs[in.Rs]

	case ir.CmpLT:
		regs[in.Rd] = b2i(regs[in.Rs] < regs[in.Rt])
	case ir.CmpLE:
		regs[in.Rd] = b2i(regs[in.Rs] <= regs[in.Rt])
	case ir.CmpEQ:
		regs[in.Rd] = b2i(regs[in.Rs] == regs[in.Rt])
	case ir.CmpNE:
		regs[in.Rd] = b2i(regs[in.Rs] != regs[in.Rt])
	case ir.CmpLTI:
		regs[in.Rd] = b2i(regs[in.Rs] < in.Imm)
	case ir.CmpLEI:
		regs[in.Rd] = b2i(regs[in.Rs] <= in.Imm)
	case ir.CmpEQI:
		regs[in.Rd] = b2i(regs[in.Rs] == in.Imm)
	case ir.CmpNEI:
		regs[in.Rd] = b2i(regs[in.Rs] != in.Imm)

	case ir.FAdd, ir.FSub, ir.FMul, ir.FDiv, ir.FCmpLT:
		m.waitFP(in.Rs)
		m.waitFP(in.Rt)
		a := math.Float64frombits(uint64(regs[in.Rs]))
		b := math.Float64frombits(uint64(regs[in.Rt]))
		var v float64
		switch in.Op {
		case ir.FAdd:
			v = a + b
		case ir.FSub:
			v = a - b
		case ir.FMul:
			v = a * b
		case ir.FDiv:
			v = a / b
		case ir.FCmpLT:
			regs[in.Rd] = b2i(a < b)
		}
		if in.Op != ir.FCmpLT {
			regs[in.Rd] = int64(math.Float64bits(v))
			m.fpReady[in.Rd] = m.cycles + m.cfg.FPLatency
		}
	case ir.FNeg:
		m.waitFP(in.Rs)
		regs[in.Rd] = int64(math.Float64bits(-math.Float64frombits(uint64(regs[in.Rs]))))
		m.fpReady[in.Rd] = m.cycles + m.cfg.FPLatency
	case ir.FSqrt:
		m.waitFP(in.Rs)
		regs[in.Rd] = int64(math.Float64bits(math.Sqrt(math.Float64frombits(uint64(regs[in.Rs])))))
		m.fpReady[in.Rd] = m.cycles + 2*m.cfg.FPLatency
	case ir.CvtIF:
		regs[in.Rd] = int64(math.Float64bits(float64(regs[in.Rs])))
		m.fpReady[in.Rd] = m.cycles + m.cfg.FPLatency
	case ir.CvtFI:
		m.waitFP(in.Rs)
		f := math.Float64frombits(uint64(regs[in.Rs]))
		regs[in.Rd] = int64(f)

	case ir.Load:
		addr := uint64(regs[in.Rs] + in.Imm)
		if addr&7 != 0 {
			return fmt.Errorf("unaligned load at %#x in %s b%d", addr, m.cur.proc.Name, m.cur.blk)
		}
		m.TouchRead(addr)
		regs[in.Rd] = m.memory.Load(addr)
	case ir.LoadIdx:
		addr := uint64(regs[in.Rs] + regs[in.Rt]*8 + in.Imm)
		if addr&7 != 0 {
			return fmt.Errorf("unaligned load at %#x in %s b%d", addr, m.cur.proc.Name, m.cur.blk)
		}
		m.TouchRead(addr)
		regs[in.Rd] = m.memory.Load(addr)
	case ir.Store:
		addr := uint64(regs[in.Rs] + in.Imm)
		if addr&7 != 0 {
			return fmt.Errorf("unaligned store at %#x in %s b%d", addr, m.cur.proc.Name, m.cur.blk)
		}
		m.TouchWrite(addr)
		m.memory.Store(addr, regs[in.Rd])
	case ir.StoreIdx:
		addr := uint64(regs[in.Rs] + regs[in.Rt]*8 + in.Imm)
		if addr&7 != 0 {
			return fmt.Errorf("unaligned store at %#x in %s b%d", addr, m.cur.proc.Name, m.cur.blk)
		}
		m.TouchWrite(addr)
		m.memory.Store(addr, regs[in.Rd])

	case ir.Call, ir.CallInd:
		target := in.Imm
		if in.Op == ir.CallInd {
			target = regs[in.Rs]
		}
		if target < 0 || int(target) >= len(m.prog.Procs) {
			return fmt.Errorf("call to invalid procedure %d at %s b%d", target, m.cur.proc.Name, m.cur.blk)
		}
		if len(m.stack)+1 >= m.cfg.MaxDepth {
			return fmt.Errorf("call depth limit %d exceeded calling %s", m.cfg.MaxDepth, m.prog.Procs[target].Name)
		}
		m.pmu.Count(hpm.EvCalls, 1)
		m.addCycles(1) // call overhead
		if m.tracer != nil {
			m.tracer.Enter(int(target))
		}
		caller := m.cur
		caller.idx++ // resume after the call
		m.stack = append(m.stack, caller)
		next := activation{proc: m.prog.Procs[target]}
		for r := ir.RegArg0; r < ir.RegArg0+ir.NumArgRegs; r++ {
			next.regs[r] = caller.regs[r]
		}
		next.regs[ir.RegSP] = caller.regs[ir.RegSP]
		m.cur = next
		m.reloadBlock()
		m.fpReady = [ir.NumRegs]uint64{}
		advance = false

	case ir.Ret:
		if m.tracer != nil {
			m.tracer.Exit(m.cur.proc.ID)
		}
		if len(m.stack) == 0 {
			// Returning from main halts the machine.
			m.halted = true
			advance = false
			break
		}
		rv := regs[ir.RegRV]
		sp := regs[ir.RegSP]
		m.cur = m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-1]
		m.cur.regs[ir.RegRV] = rv
		m.cur.regs[ir.RegSP] = sp
		m.reloadBlock()
		m.fpReady = [ir.NumRegs]uint64{}
		advance = false

	case ir.Out:
		if len(m.output) >= m.cfg.MaxOutput {
			return fmt.Errorf("output limit %d exceeded", m.cfg.MaxOutput)
		}
		m.output = append(m.output, regs[in.Rs])

	case ir.RdPIC:
		// Imm selects the counter pair; the classic instrumentation leaves
		// it zero (PIC0/PIC1), wider metric sets address pairs 1, 2, ...
		regs[in.Rd] = int64(m.pmu.ReadPair(int(in.Imm)))
	case ir.WrPIC:
		m.pmu.WritePair(int(in.Imm), uint64(regs[in.Rs]))
	case ir.RdTick:
		regs[in.Rd] = int64(m.cycles)

	case ir.SetJmp:
		m.jmpbufs = append(m.jmpbufs, jmpbuf{
			depth: len(m.stack),
			blk:   m.cur.blk,
			idx:   m.cur.idx + 1,
			rt:    in.Rt,
		})
		regs[in.Rd] = int64(len(m.jmpbufs)) // handle (1-based)
		regs[in.Rt] = 0
	case ir.LongJmp:
		h := regs[in.Rs]
		if h < 1 || int(h) > len(m.jmpbufs) {
			return fmt.Errorf("longjmp with invalid handle %d", h)
		}
		buf := m.jmpbufs[h-1]
		if buf.depth > len(m.stack) {
			return fmt.Errorf("longjmp to dead frame (handle %d)", h)
		}
		val := regs[in.Rt]
		for len(m.stack) > buf.depth {
			m.cur = m.stack[len(m.stack)-1]
			m.stack = m.stack[:len(m.stack)-1]
		}
		m.cur.blk = buf.blk
		m.cur.idx = buf.idx
		m.cur.regs[buf.rt] = val
		m.reloadBlock()
		for _, fn := range m.onUnwind {
			fn(len(m.stack) + 1)
		}
		m.fpReady = [ir.NumRegs]uint64{}
		advance = false

	case ir.Probe:
		fn := m.probes[in.Imm]
		if fn == nil {
			return fmt.Errorf("unknown probe %d in %s", in.Imm, m.cur.proc.Name)
		}
		regs[in.Rd] = fn(m, regs[in.Rs])

	case ir.Br:
		taken := regs[in.Rs] != 0
		m.pmu.Count(hpm.EvBranches, 1)
		if !m.pred.Predict(iaddr, taken) {
			m.pmu.Count(hpm.EvMispredict, 1)
			m.pmu.Count(hpm.EvMispredictStalls, m.cfg.MispredictPenalty)
			m.addCycles(m.cfg.MispredictPenalty)
		}
		slot := 1
		if taken {
			slot = 0
		}
		m.issueSlots = 0 // control transfers end an issue group
		if m.tracer != nil {
			m.tracer.Edge(m.cur.proc.ID, m.cur.blk, slot)
		}
		m.cur.blk = blk.Succs[slot]
		m.cur.idx = 0
		m.reloadBlock()
		advance = false

	case ir.Jmp:
		if m.tracer != nil {
			m.tracer.Edge(m.cur.proc.ID, m.cur.blk, 0)
		}
		m.cur.blk = blk.Succs[0]
		m.cur.idx = 0
		m.reloadBlock()
		advance = false

	case ir.Halt:
		m.halted = true
		advance = false

	default:
		return fmt.Errorf("unimplemented opcode %s", in.Op)
	}

	m.pmu.Retire()
	if m.mux != nil {
		m.muxSpent++
		if m.muxSpent >= m.muxQuantum {
			m.mux.Rotate(m.muxSpent)
			m.muxSpent = 0
		}
	}
	if advance {
		m.cur.idx++
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
