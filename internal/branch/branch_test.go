package branch

import "testing"

func TestLoopBranchLearns(t *testing.T) {
	p := NewPredictor(10)
	// A loop branch taken 100 times then not taken: with weakly-taken
	// initialization, every taken iteration predicts correctly; only the
	// final fall-through mispredicts.
	for i := 0; i < 100; i++ {
		p.Predict(0x1000, true)
	}
	p.Predict(0x1000, false)
	_, mis := p.Stats()
	if mis != 1 {
		t.Fatalf("mispredicts = %d, want 1", mis)
	}
}

func TestAlternatingBranchSaturation(t *testing.T) {
	p := NewPredictor(10)
	// Strictly alternating directions defeat a 2-bit counter about half
	// the time.
	mis0 := 0
	for i := 0; i < 200; i++ {
		if !p.Predict(0x2000, i%2 == 0) {
			mis0++
		}
	}
	if mis0 < 80 {
		t.Fatalf("alternating branch mispredicted only %d/200", mis0)
	}
}

func TestDistinctBranchesIndependent(t *testing.T) {
	p := NewPredictor(10)
	for i := 0; i < 50; i++ {
		p.Predict(0x100, true)
		p.Predict(0x200, false)
	}
	_, mis := p.Stats()
	// 0x100 always predicts taken correctly from weakly-taken; 0x200 needs
	// two wrong predictions before the counter crosses to not-taken.
	if mis > 4 {
		t.Fatalf("independent branches mispredicted %d times", mis)
	}
}

func TestAliasing(t *testing.T) {
	p := NewPredictor(2) // only 4 counters: heavy aliasing by design
	// Two branches 4 words apart share a counter (index uses pc>>2 & 3).
	a, b := uint64(0), uint64(16)
	if (a>>2)&3 != (b>>2)&3 {
		t.Skip("addresses chosen do not alias in this geometry")
	}
	for i := 0; i < 20; i++ {
		p.Predict(a, true)
		p.Predict(b, false)
	}
	_, mis := p.Stats()
	if mis < 10 {
		t.Fatalf("aliased branches should interfere; mispredicts = %d", mis)
	}
}

func TestReset(t *testing.T) {
	p := NewPredictor(8)
	p.Predict(0, false)
	p.Reset()
	pr, mis := p.Stats()
	if pr != 0 || mis != 0 {
		t.Fatal("reset did not clear stats")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range bits did not panic")
		}
	}()
	NewPredictor(0)
}
