// Package branch simulates a branch direction predictor: a table of 2-bit
// saturating counters indexed by branch address, the classic bimodal scheme
// comparable in spirit to the UltraSPARC's per-branch prediction state. The
// simulator consults it to count the mispredict events that back the
// "Mispredict Stalls" column of Table 2.
package branch

// Predictor is a bimodal (2-bit saturating counter) branch predictor.
type Predictor struct {
	table []uint8 // 0,1 predict not-taken; 2,3 predict taken
	mask  uint64

	predicts    uint64
	mispredicts uint64
}

// NewPredictor returns a predictor with 2^bits entries. bits must be in
// [1, 24]; typical is 12 (4096 counters).
func NewPredictor(bits uint) *Predictor {
	if bits < 1 || bits > 24 {
		panic("branch: predictor bits out of range")
	}
	n := 1 << bits
	p := &Predictor{table: make([]uint8, n), mask: uint64(n - 1)}
	// Initialize to weakly-taken: loops predict well from the start, as
	// with a real predictor warmed by typical code.
	for i := range p.table {
		p.table[i] = 2
	}
	return p
}

func (p *Predictor) index(pc uint64) uint64 {
	// Instruction addresses are 4-byte aligned; drop the low bits.
	return (pc >> 2) & p.mask
}

// Predict records a dynamic branch at pc with actual direction taken, and
// reports whether the prediction was correct. The counter is updated
// afterwards (predict-then-train).
func (p *Predictor) Predict(pc uint64, taken bool) bool {
	i := p.index(pc)
	c := p.table[i]
	predictedTaken := c >= 2
	correct := predictedTaken == taken
	p.predicts++
	if !correct {
		p.mispredicts++
	}
	if taken {
		if c < 3 {
			p.table[i] = c + 1
		}
	} else {
		if c > 0 {
			p.table[i] = c - 1
		}
	}
	return correct
}

// Stats returns (dynamic branches, mispredicts).
func (p *Predictor) Stats() (predicts, mispredicts uint64) {
	return p.predicts, p.mispredicts
}

// Reset clears statistics and re-initializes counters to weakly-taken.
func (p *Predictor) Reset() {
	p.predicts, p.mispredicts = 0, 0
	for i := range p.table {
		p.table[i] = 2
	}
}
