package cct

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildTreeFromTrace(rng *rand.Rand, nProcs, nSites, length int, paths bool) *Tree {
	opts := Options{DistinguishCallSites: true, NumMetrics: 2, PathCounts: paths}
	pr := procs(nProcs, nSites)
	tr := New(pr, opts, 0)
	trace := randomTrace(rng, nProcs, nSites, length)
	for _, c := range trace {
		if c.site >= 0 {
			tr.AtCall(c.site, NoPrefix, nil)
			tr.Enter(c.proc, nil)
			tr.AddMetric(0, 1, nil)
			tr.AddMetric(1, int64(rng.Intn(50)), nil)
			if paths {
				tr.CountPath(int64(rng.Intn(4)), nil)
			}
		} else {
			tr.Exit(nil)
		}
	}
	return tr
}

// TestExportRoundTrip: node counts, metrics totals, path counts and
// backedge counts survive Write/Read.
func TestExportRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := buildTreeFromTrace(rng, rng.Intn(4)+2, rng.Intn(3)+1, rng.Intn(400)+20, true)

		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Logf("seed %d: write: %v", seed, err)
			return false
		}
		ex, err := Read(&buf)
		if err != nil {
			t.Logf("seed %d: read: %v", seed, err)
			return false
		}
		if ex.NumNodes() != tr.NumNodes() {
			t.Logf("seed %d: nodes %d != %d", seed, ex.NumNodes(), tr.NumNodes())
			return false
		}
		// Metric and path totals agree.
		var wantM, gotM int64
		var wantP, gotP int64
		var wantBack, gotBack int
		tr.Walk(func(n *Node) {
			wantM += n.Metrics[0] + n.Metrics[1]
			n.RangePathCounts(func(_, c int64) bool {
				wantP += c
				return true
			})
			_, backs := n.Children()
			wantBack += len(backs)
		})
		for id, n := range ex.Nodes {
			if id == 0 {
				continue
			}
			for _, m := range n.Metrics {
				gotM += m
			}
			n.PathCounts.Range(func(_, c int64) bool {
				gotP += c
				return true
			})
			gotBack += len(n.Backedges)
		}
		if wantM != gotM || wantP != gotP || wantBack != gotBack {
			t.Logf("seed %d: totals differ: m %d/%d p %d/%d b %d/%d",
				seed, wantM, gotM, wantP, gotP, wantBack, gotBack)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"node 1 0 2",               // node before header
		"cct 3 true",               // short header
		"cct 3 true 1\nnode 5 9 0", // unknown parent
		"cct 3 true 1\npath 7 0 1", // path for unknown node
		"cct 3 true 1\nback 1 2",   // backedge between unknown nodes
		"cct 3 true 1\nwat",
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestDump(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := buildTreeFromTrace(rng, 3, 2, 60, false)
	var sb strings.Builder
	tr.Dump(&sb, func(id int) string { return tr.ProcName(id) })
	out := sb.String()
	if !strings.Contains(out, "<root>") {
		t.Fatalf("dump missing root:\n%s", out)
	}
	if !strings.Contains(out, "metrics=") {
		t.Fatal("dump missing metrics")
	}
	if len(strings.Split(out, "\n")) < tr.NumNodes() {
		t.Fatal("dump shorter than the tree")
	}
}

// TestExportStatsMatchTree: Table 3 statistics computed from a decoded file
// match the in-memory tree's (for the fields the file encodes).
func TestExportStatsMatchTree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := buildTreeFromTrace(rng, 5, 2, 800, false)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	ex, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.ComputeStats()
	got := ex.Stats()
	if got.Nodes != want.Nodes {
		t.Fatalf("nodes %d != %d", got.Nodes, want.Nodes)
	}
	if got.MaxHeight != want.MaxHeight {
		t.Fatalf("max height %d != %d", got.MaxHeight, want.MaxHeight)
	}
	if got.MaxReplication != want.MaxReplication {
		t.Fatalf("replication %d != %d", got.MaxReplication, want.MaxReplication)
	}
	if got.AvgOutDegree != want.AvgOutDegree {
		t.Fatalf("out-degree %v != %v", got.AvgOutDegree, want.AvgOutDegree)
	}
	if got.AvgHeight != want.AvgHeight {
		t.Fatalf("avg height %v != %v", got.AvgHeight, want.AvgHeight)
	}
}

// TestMergeExports: merging a tree with itself doubles every metric and
// path count while preserving the shape.
func TestMergeExports(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr := buildTreeFromTrace(rng, 4, 2, 600, true)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	a, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	m, err := MergeExports(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != a.NumNodes() {
		t.Fatalf("merged nodes %d != %d", m.NumNodes(), a.NumNodes())
	}
	if got, want := m.TotalMetric(0), 2*a.TotalMetric(0); got != want {
		t.Fatalf("metric 0: %d, want %d", got, want)
	}
	var aPaths, mPaths int64
	for _, n := range a.Nodes {
		n.PathCounts.Range(func(_, c int64) bool {
			aPaths += c
			return true
		})
	}
	for _, n := range m.Nodes {
		n.PathCounts.Range(func(_, c int64) bool {
			mPaths += c
			return true
		})
	}
	if mPaths != 2*aPaths {
		t.Fatalf("path counts: %d, want %d", mPaths, 2*aPaths)
	}
	// Shape statistics unchanged.
	if m.Stats().MaxHeight != a.Stats().MaxHeight {
		t.Fatal("merge changed tree height")
	}
}

func TestMergeExportsShapeMismatch(t *testing.T) {
	a := &Export{NumProcs: 3, Root: &ExportedNode{}, Nodes: map[int]*ExportedNode{}}
	b := &Export{NumProcs: 4, Root: &ExportedNode{}, Nodes: map[int]*ExportedNode{}}
	if _, err := MergeExports(a, b); err == nil {
		t.Fatal("mismatched exports merged")
	}
}
