package cct

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildTreeFromTrace(rng *rand.Rand, nProcs, nSites, length int, paths bool) *Tree {
	opts := Options{DistinguishCallSites: true, NumMetrics: 2, PathCounts: paths}
	pr := procs(nProcs, nSites)
	tr := New(pr, opts, 0)
	trace := randomTrace(rng, nProcs, nSites, length)
	for _, c := range trace {
		if c.site >= 0 {
			tr.AtCall(c.site, NoPrefix, nil)
			tr.Enter(c.proc, nil)
			tr.AddMetric(0, 1, nil)
			tr.AddMetric(1, int64(rng.Intn(50)), nil)
			if paths {
				tr.CountPath(int64(rng.Intn(4)), nil)
			}
		} else {
			tr.Exit(nil)
		}
	}
	return tr
}

// TestExportRoundTrip: node counts, metrics totals, path counts and
// backedge counts survive Write/Read.
func TestExportRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := buildTreeFromTrace(rng, rng.Intn(4)+2, rng.Intn(3)+1, rng.Intn(400)+20, true)

		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Logf("seed %d: write: %v", seed, err)
			return false
		}
		ex, err := Read(&buf)
		if err != nil {
			t.Logf("seed %d: read: %v", seed, err)
			return false
		}
		if ex.NumNodes() != tr.NumNodes() {
			t.Logf("seed %d: nodes %d != %d", seed, ex.NumNodes(), tr.NumNodes())
			return false
		}
		// Metric and path totals agree.
		var wantM, gotM int64
		var wantP, gotP int64
		var wantBack, gotBack int
		tr.Walk(func(n *Node) {
			wantM += n.Metrics[0] + n.Metrics[1]
			n.RangePathCounts(func(_, c int64) bool {
				wantP += c
				return true
			})
			_, backs := n.Children()
			wantBack += len(backs)
		})
		for id, n := range ex.Nodes {
			if id == 0 {
				continue
			}
			for _, m := range n.Metrics {
				gotM += m
			}
			n.PathCounts.Range(func(_, c int64) bool {
				gotP += c
				return true
			})
			gotBack += len(n.Backedges)
		}
		if wantM != gotM || wantP != gotP || wantBack != gotBack {
			t.Logf("seed %d: totals differ: m %d/%d p %d/%d b %d/%d",
				seed, wantM, gotM, wantP, gotP, wantBack, gotBack)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"node 1 0 2",               // node before header
		"cct 3 true",               // short header
		"cct 3 true 1\nnode 5 9 0", // unknown parent
		"cct 3 true 1\npath 7 0 1", // path for unknown node
		"cct 3 true 1\nback 1 2",   // backedge between unknown nodes
		"cct 3 true 1\nwat",
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestDump(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := buildTreeFromTrace(rng, 3, 2, 60, false)
	var sb strings.Builder
	tr.Dump(&sb, func(id int) string { return tr.ProcName(id) })
	out := sb.String()
	if !strings.Contains(out, "<root>") {
		t.Fatalf("dump missing root:\n%s", out)
	}
	if !strings.Contains(out, "metrics=") {
		t.Fatal("dump missing metrics")
	}
	if len(strings.Split(out, "\n")) < tr.NumNodes() {
		t.Fatal("dump shorter than the tree")
	}
}

// TestExportStatsMatchTree: Table 3 statistics computed from a decoded file
// match the in-memory tree's (for the fields the file encodes).
func TestExportStatsMatchTree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := buildTreeFromTrace(rng, 5, 2, 800, false)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	ex, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.ComputeStats()
	got := ex.Stats()
	if got.Nodes != want.Nodes {
		t.Fatalf("nodes %d != %d", got.Nodes, want.Nodes)
	}
	if got.MaxHeight != want.MaxHeight {
		t.Fatalf("max height %d != %d", got.MaxHeight, want.MaxHeight)
	}
	if got.MaxReplication != want.MaxReplication {
		t.Fatalf("replication %d != %d", got.MaxReplication, want.MaxReplication)
	}
	if got.AvgOutDegree != want.AvgOutDegree {
		t.Fatalf("out-degree %v != %v", got.AvgOutDegree, want.AvgOutDegree)
	}
	if got.AvgHeight != want.AvgHeight {
		t.Fatalf("avg height %v != %v", got.AvgHeight, want.AvgHeight)
	}
}

// TestMergeExports: merging a tree with itself doubles every metric and
// path count while preserving the shape.
func TestMergeExports(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr := buildTreeFromTrace(rng, 4, 2, 600, true)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	a, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	m, err := MergeExports(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != a.NumNodes() {
		t.Fatalf("merged nodes %d != %d", m.NumNodes(), a.NumNodes())
	}
	if got, want := m.TotalMetric(0), 2*a.TotalMetric(0); got != want {
		t.Fatalf("metric 0: %d, want %d", got, want)
	}
	var aPaths, mPaths int64
	for _, n := range a.Nodes {
		n.PathCounts.Range(func(_, c int64) bool {
			aPaths += c
			return true
		})
	}
	for _, n := range m.Nodes {
		n.PathCounts.Range(func(_, c int64) bool {
			mPaths += c
			return true
		})
	}
	if mPaths != 2*aPaths {
		t.Fatalf("path counts: %d, want %d", mPaths, 2*aPaths)
	}
	// Shape statistics unchanged.
	if m.Stats().MaxHeight != a.Stats().MaxHeight {
		t.Fatal("merge changed tree height")
	}
}

func TestMergeExportsShapeMismatch(t *testing.T) {
	a := &Export{NumProcs: 3, Root: &ExportedNode{}, Nodes: map[int]*ExportedNode{}}
	b := &Export{NumProcs: 4, Root: &ExportedNode{}, Nodes: map[int]*ExportedNode{}}
	if _, err := MergeExports(a, b); err == nil {
		t.Fatal("mismatched exports merged")
	}
}

// TestWriteTextMatchesTreeWrite: Export.WriteText reproduces Tree.Write
// byte-identically, both for a live snapshot and after a Read round trip.
func TestWriteTextMatchesTreeWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		tr := buildTreeFromTrace(rng, rng.Intn(5)+2, rng.Intn(3)+1, rng.Intn(500)+50, true)
		var want bytes.Buffer
		if err := tr.Write(&want); err != nil {
			t.Fatal(err)
		}
		var fromLive bytes.Buffer
		if err := tr.Export("x").WriteText(&fromLive); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), fromLive.Bytes()) {
			t.Fatalf("trial %d: live export text differs from Tree.Write:\n%s\n---\n%s",
				trial, want.String(), fromLive.String())
		}
		ex, err := Read(bytes.NewReader(want.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var fromRead bytes.Buffer
		if err := ex.WriteText(&fromRead); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), fromRead.Bytes()) {
			t.Fatalf("trial %d: re-read export text differs from Tree.Write", trial)
		}
	}
}

// TestExportStructuralStats: a live snapshot carries the structural extras
// and reproduces ComputeStats exactly, including the size and call-site
// columns the text codec drops.
func TestExportStructuralStats(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		tr := buildTreeFromTrace(rng, rng.Intn(5)+2, rng.Intn(3)+1, rng.Intn(600)+50, true)
		ex := tr.Export("x")
		if !ex.HasStructure {
			t.Fatal("Export did not mark structure")
		}
		if got, want := ex.Stats(), tr.ComputeStats(); got != want {
			t.Fatalf("trial %d: structural stats\n got %+v\nwant %+v", trial, got, want)
		}
	}
}

// TestReadDescriptiveErrors: malformed input names the line, offset and
// offending token.
func TestReadDescriptiveErrors(t *testing.T) {
	cases := []struct {
		in   string
		want []string // substrings of the error
	}{
		{"node 1 0 2", []string{"line 1", "offset 0", "before the cct header"}},
		{"cct 3 true", []string{"line 1", "offset 0", "malformed header"}},
		{"cct 3 true 1\nnode 5 9 0", []string{"line 2", "offset 13", "unknown parent 9"}},
		{"cct 3 true 1\nnode 1 0 0\nnode 1 0 1", []string{"line 3", "offset 24", "duplicate node id 1"}},
		{"cct 3 true 1\npath 7 0 1", []string{"line 2", "offset 13", "unknown node 7"}},
		{"cct 3 true 1\nback 1 2", []string{"line 2", "offset 13", "backedge from unknown node 1"}},
		{"cct 3 true 1\nwat", []string{"line 2", "offset 13", `unknown record "wat"`}},
		{"cct 3 true 1\nnode 1 0 zero", []string{"line 2", "bad node fields"}},
		{"cct 3 true 1\nnode 1 0 0 12 x", []string{"line 2", `bad metric "x"`}},
	}
	for _, c := range cases {
		_, err := Read(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("accepted %q", c.in)
			continue
		}
		for _, frag := range c.want {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("Read(%q) error %q misses %q", c.in, err, frag)
			}
		}
	}
}

// TestMergeExportsPreservesBackedges: merging keeps recursion edges, so
// AvgOutDegree (which counts them) survives collection-tier merging.
func TestMergeExportsPreservesBackedges(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 30; trial++ {
		tr := buildTreeFromTrace(rng, rng.Intn(4)+2, rng.Intn(3)+1, rng.Intn(700)+100, true)
		a := tr.Export("x")
		b := tr.Export("x")
		var backs int
		for _, n := range a.Nodes {
			backs += len(n.Backedges)
		}
		m, err := MergeExports(a, b)
		if err != nil {
			t.Fatal(err)
		}
		var got int
		for _, n := range m.Nodes {
			got += len(n.Backedges)
		}
		if got != backs {
			t.Fatalf("trial %d: merged backedges %d, want %d", trial, got, backs)
		}
		if got, want := m.Stats(), tr.ComputeStats(); got != want {
			t.Fatalf("trial %d: merged structural stats\n got %+v\nwant %+v", trial, got, want)
		}
		var text, mergedText bytes.Buffer
		if err := a.WriteText(&text); err != nil {
			t.Fatal(err)
		}
		// Halving the merged counters must reproduce the original text.
		for _, n := range m.Nodes {
			for i := range n.Metrics {
				n.Metrics[i] /= 2
			}
			n.PathCounts.Range(func(s, c int64) bool {
				n.PathCounts.Set(s, c/2)
				return true
			})
		}
		if err := m.WriteText(&mergedText); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(text.Bytes(), mergedText.Bytes()) {
			t.Fatalf("trial %d: merged tree text (halved) differs from input", trial)
		}
	}
}
