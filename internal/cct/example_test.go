package cct_test

import (
	"fmt"
	"os"

	"pathprof/internal/cct"
)

// Example builds the calling context tree of the paper's Figure 4 by hand
// and dumps it: procedure C keeps its two distinct contexts while the
// repeated A subtree merges.
func Example() {
	procs := []cct.ProcInfo{
		{Name: "M", NumSites: 2},
		{Name: "A", NumSites: 1},
		{Name: "B", NumSites: 1},
		{Name: "C", NumSites: 0},
		{Name: "D", NumSites: 1},
	}
	tree := cct.New(procs, cct.Options{DistinguishCallSites: true, NumMetrics: 1}, 0)

	enter := func(site, proc int) {
		tree.AtCall(site, cct.NoPrefix, nil)
		tree.Enter(proc, nil)
		tree.AddMetric(0, 1, nil)
	}
	exit := func() { tree.Exit(nil) }

	// M{ A{ B{ C } }, A{ B{ C } }, D{ C } }
	enter(0, 0) // M
	for i := 0; i < 2; i++ {
		enter(0, 1) // A (same context both times: one record)
		enter(0, 2) // B
		enter(0, 3) // C
		exit()
		exit()
		exit()
	}
	enter(1, 4) // D
	enter(0, 3) // C — a second, distinct context
	exit()
	exit()
	exit()

	fmt.Println("records:", tree.NumNodes())
	tree.Dump(os.Stdout, func(id int) string {
		if id < 0 {
			return "T"
		}
		return procs[id].Name
	})
	// Output:
	// records: 6
	// <root>
	//   M  metrics=[1]
	//     A  metrics=[2]
	//       B  metrics=[2]
	//         C  metrics=[2]
	//     D  metrics=[1]
	//       C  metrics=[1]
}
