package cct

import (
	"pathprof/internal/flat"

	"fmt"
	"sync"
)

// MergeExports combines two decoded CCT files from runs of the same
// program, summing metrics and path counts over structurally matching
// records (same procedure reached through the same child position of a
// matching parent). Records present in only one tree are kept. This is the
// multi-run aggregation workflow: each run writes its heap at program exit
// (as the paper's instrumentation does) and the files are merged offline.
func MergeExports(a, b *Export) (*Export, error) {
	if a.NumProcs != b.NumProcs || a.DistinguishSites != b.DistinguishSites {
		return nil, fmt.Errorf("cct: merge shape mismatch: %d/%v procs vs %d/%v",
			a.NumProcs, a.DistinguishSites, b.NumProcs, b.DistinguishSites)
	}
	out := &Export{
		NumProcs:         a.NumProcs,
		DistinguishSites: a.DistinguishSites,
		NumMetrics:       a.NumMetrics,
		Nodes:            map[int]*ExportedNode{},
		Program:          a.Program,
		HasStructure:     a.HasStructure && b.HasStructure,
	}
	if out.Program == "" {
		out.Program = b.Program
	}
	nextID := 1
	// graftedBytes accumulates the simulated size of records present only in
	// b; for same-shape inputs (the sharded-collection case) it stays zero
	// and the merged heap footprint equals a's exactly.
	var graftedBytes uint64
	// Backedge targets are node IDs in their source export's numbering, so
	// they are resolved to merged nodes by target procedure (unique along a
	// root path by the recursion rule) and converted back to IDs after the
	// final renumbering.
	type pendingBack struct{ from, to *ExportedNode }
	var pending []pendingBack
	ancestors := map[int]*ExportedNode{}
	var merge func(x, y *ExportedNode) *ExportedNode
	merge = func(x, y *ExportedNode) *ExportedNode {
		n := &ExportedNode{}
		addCounts := func(src *ExportedNode) {
			src.PathCounts.Range(func(s, c int64) bool {
				n.PathCounts.Add(s, c)
				return true
			})
		}
		switch {
		case x != nil && y != nil:
			n.Proc = x.Proc
			n.Metrics = append(make([]int64, 0, max(len(x.Metrics), len(y.Metrics))), x.Metrics...)
			for i, m := range y.Metrics {
				if i < len(n.Metrics) {
					n.Metrics[i] += m
				} else {
					n.Metrics = append(n.Metrics, m)
				}
			}
			n.PathCounts = flat.New(x.PathCounts.Len() + y.PathCounts.Len())
			addCounts(x)
			addCounts(y)
			n.Size = x.Size
			n.Slots = mergeSlotStats(x.Slots, y.Slots)
		case x != nil:
			n.Proc = x.Proc
			n.Metrics = append(make([]int64, 0, len(x.Metrics)), x.Metrics...)
			n.PathCounts = flat.New(x.PathCounts.Len())
			addCounts(x)
			n.Size = x.Size
			n.Slots = append([]SlotStat(nil), x.Slots...)
		default:
			n.Proc = y.Proc
			n.Metrics = append(make([]int64, 0, len(y.Metrics)), y.Metrics...)
			n.PathCounts = flat.New(y.PathCounts.Len())
			addCounts(y)
			n.Size = y.Size
			n.Slots = append([]SlotStat(nil), y.Slots...)
			graftedBytes += y.Size
		}

		// Union the backedges by target procedure with multiplicity (one
		// per originating call site): all of x's, plus y's that have no
		// counterpart in x.
		var backProcs []int
		matched := map[int]int{}
		if x != nil {
			for _, to := range x.Backedges {
				if t, ok := a.Nodes[to]; ok {
					backProcs = append(backProcs, t.Proc)
					matched[t.Proc]++
				}
			}
		}
		if y != nil {
			for _, to := range y.Backedges {
				t, ok := b.Nodes[to]
				if !ok {
					continue
				}
				if matched[t.Proc] > 0 {
					matched[t.Proc]--
				} else {
					backProcs = append(backProcs, t.Proc)
				}
			}
		}

		prev, hadPrev := ancestors[n.Proc]
		ancestors[n.Proc] = n
		defer func() {
			if hadPrev {
				ancestors[n.Proc] = prev
			} else {
				delete(ancestors, n.Proc)
			}
		}()
		for _, p := range backProcs {
			if anc := ancestors[p]; anc != nil {
				pending = append(pending, pendingBack{from: n, to: anc})
			}
		}

		// Children match by procedure within the parent (one record per
		// procedure per context, as the CCT equivalence guarantees).
		var xs, ys []*ExportedNode
		if x != nil {
			xs = x.Children
		}
		if y != nil {
			ys = y.Children
		}
		byProc := map[int]*ExportedNode{}
		for _, c := range ys {
			if _, dup := byProc[c.Proc]; dup {
				// Site-distinguished trees can hold several records of the
				// same procedure under one parent (different sites). Fall
				// back to positional pairing for those.
				byProc = nil
				break
			}
			byProc[c.Proc] = c
		}
		if byProc != nil {
			n.Children = make([]*ExportedNode, 0, max(len(xs), len(ys)))
			seen := map[int]bool{}
			for _, cx := range xs {
				cy := byProc[cx.Proc]
				if cy != nil && !seen[cx.Proc] {
					seen[cx.Proc] = true
				} else {
					cy = nil
				}
				n.Children = append(n.Children, merge(cx, cy))
			}
			for _, cy := range ys {
				if !seen[cy.Proc] {
					n.Children = append(n.Children, merge(nil, cy))
				}
			}
		} else {
			n.Children = make([]*ExportedNode, 0, max(len(xs), len(ys)))
			for i := 0; i < len(xs) || i < len(ys); i++ {
				var cx, cy *ExportedNode
				if i < len(xs) {
					cx = xs[i]
				}
				if i < len(ys) {
					cy = ys[i]
				}
				n.Children = append(n.Children, merge(cx, cy))
			}
		}
		return n
	}
	out.Root = merge(a.Root, b.Root)
	out.Root.ID = 0
	// Re-number depth-first and rebuild the index.
	var index func(n *ExportedNode)
	index = func(n *ExportedNode) {
		out.Nodes[n.ID] = n
		for _, c := range n.Children {
			c.ID = nextID
			c.ParentID = n.ID
			nextID++
			index(c)
		}
	}
	index(out.Root)
	for _, pb := range pending {
		pb.from.Backedges = append(pb.from.Backedges, pb.to.ID)
	}
	if out.HasStructure {
		// Exact for same-shape inputs; for grafted subtrees the footprint
		// grows by the grafted records (list reallocations, which the export
		// does not model per-slot, are not charged).
		out.SizeBytes = a.SizeBytes + graftedBytes
		out.ListElems = a.ListElems
	}
	return out, nil
}

// mergeSlotStats folds y's per-site states into a copy of x's, with the
// same one-path rules Tree.MergeFrom applies: a site stays "one path" only
// if both sides saw the same single prefix.
func mergeSlotStats(xs, ys []SlotStat) []SlotStat {
	out := make([]SlotStat, max(len(xs), len(ys)))
	copy(out, xs)
	for i := range ys {
		if i >= len(out) {
			break
		}
		s := &out[i]
		s.Used = s.Used || ys[i].Used
		switch ys[i].PathState {
		case 1:
			switch s.PathState {
			case 0:
				s.PathState = 1
				s.PathPrefix = ys[i].PathPrefix
			case 1:
				if s.PathPrefix != ys[i].PathPrefix {
					s.PathState = 2
					s.PathPrefix = 0
				}
			}
		case 2:
			s.PathState = 2
			s.PathPrefix = 0
		}
	}
	return out
}

// MergeAllExports reduces a set of decoded CCT files into one by a
// tree-structured pairwise merge. Pairs at the same level are independent
// and merge concurrently; the pairing pattern is fixed (neighbours at
// doubling strides), so the result is identical to a left-to-right serial
// fold regardless of scheduling.
func MergeAllExports(exports []*Export) (*Export, error) {
	switch len(exports) {
	case 0:
		return nil, fmt.Errorf("cct: no exports to merge")
	case 1:
		return exports[0], nil
	}
	work := append([]*Export(nil), exports...)
	for stride := 1; stride < len(work); stride *= 2 {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		for i := 0; i+stride < len(work); i += 2 * stride {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				m, err := MergeExports(work[i], work[i+stride])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				work[i] = m
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}
	return work[0], nil
}

// noopCosts satisfies Costs without charging anything. Merge operations use
// it so structural bookkeeping gated on a non-nil Costs (list-element counts,
// simulated list allocations) stays consistent with an instrumented build,
// while the merge itself adds no simulated cache traffic.
type noopCosts struct{}

func (noopCosts) TouchRead(uint64)    {}
func (noopCosts) TouchWrite(uint64)   {}
func (noopCosts) ChargeInstrs(uint64) {}

// MergeFrom folds another live tree into t, summing metrics and path
// counters over structurally matching records and grafting records that
// exist only in o. Both trees must come from the same program shape (same
// procedure table and options). Merging k trees built from identical runs
// leaves t's structure — node count, sizes, list elements, one-path slots —
// exactly as a single run left it, with every counter k times larger; this
// is what keeps sharded collection byte-identical in Table 3 (see
// EXPERIMENTS.md).
func (t *Tree) MergeFrom(o *Tree) error {
	if len(t.procs) != len(o.procs) ||
		t.opts.DistinguishCallSites != o.opts.DistinguishCallSites ||
		t.opts.NumMetrics != o.opts.NumMetrics ||
		t.opts.PathCounts != o.opts.PathCounts {
		return fmt.Errorf("cct: tree merge shape mismatch")
	}
	t.mergeNode(t.root, o.root)
	return nil
}

// mergeNode folds o's record (and subtree) into t's matching record x.
func (t *Tree) mergeNode(x *Node, y *Node) {
	for i, m := range y.Metrics {
		if i < len(x.Metrics) {
			x.Metrics[i] += m
		}
	}
	switch {
	case y.pathArray != nil && x.pathArray != nil:
		for s, c := range y.pathArray {
			if c != 0 {
				x.pathArray[s] += c
			}
		}
	case y.pathHash != nil && x.pathHash != nil:
		y.pathHash.Range(func(s, c int64) bool {
			x.pathHash.Add(s, c)
			return true
		})
	}

	for si := range y.slots {
		if si >= len(x.slots) {
			break
		}
		ys := &y.slots[si]
		if ys.tag == TagEmpty {
			continue
		}
		xs := &x.slots[si]
		// Fold the one-path tracking: a slot stays "one path" only if both
		// shards saw the same single prefix.
		switch ys.pathState {
		case 1:
			switch xs.pathState {
			case 0:
				xs.pathState = 1
				xs.pathPrefix = ys.pathPrefix
			case 1:
				if xs.pathPrefix != ys.pathPrefix {
					xs.pathState = 2
				}
			}
		case 2:
			xs.pathState = 2
		}
		t.mergeSlot(x, xs, si, ys)
	}
}

// mergeSlot folds every child reached through y's slot into x's slot si.
func (t *Tree) mergeSlot(x *Node, xs *slot, si int, ys *slot) {
	mergeChild := func(yc child) {
		// Find the matching child in x's slot.
		var xc *child
		switch xs.tag {
		case TagRecord:
			if xs.one.proc == yc.proc {
				xc = &xs.one
			}
		case TagList:
			for i := range xs.keys {
				if int32(uint32(xs.keys[i])) == yc.proc {
					ch := xs.childAt(i)
					xc = &ch
					break
				}
			}
		}
		if xc != nil {
			if !yc.backedge && !xc.backedge {
				t.mergeNode(xc.node, yc.node)
			}
			// Matched backedges need no work: the target record is merged
			// when its own pair is visited.
			return
		}
		// Child exists only in y: graft it. Bookkeeping (list elements,
		// simulated list allocation) uses noopCosts so accounting matches a
		// build that had taken this path, without charging cache traffic.
		if yc.backedge {
			for a := x; a != nil; a = a.Parent {
				if a.Proc == int(yc.proc) {
					t.installChild(xs, si, x, child{node: a, proc: yc.proc, backedge: true}, noopCosts{})
					return
				}
			}
			return // no matching ancestor in x; drop the backedge
		}
		n := t.newNode(int(yc.proc), x)
		t.installChild(xs, si, x, child{node: n, proc: yc.proc}, noopCosts{})
		t.mergeNode(n, yc.node)
	}

	switch ys.tag {
	case TagRecord:
		mergeChild(ys.one)
	case TagList:
		// Walk back-to-front so installChild's prepends leave grafted
		// children in y's move-to-front order.
		for i := len(ys.keys) - 1; i >= 0; i-- {
			mergeChild(ys.childAt(i))
		}
	}
}

// MergeTrees reduces per-shard trees into shards[0] by a tree-structured
// pairwise merge: pairs at the same level are independent and merge
// concurrently, and the fixed pairing (neighbours at doubling strides)
// makes the result independent of goroutine scheduling. Returns the merged
// tree (shards[0]).
func MergeTrees(shards []*Tree) (*Tree, error) {
	switch len(shards) {
	case 0:
		return nil, fmt.Errorf("cct: no trees to merge")
	case 1:
		return shards[0], nil
	}
	for stride := 1; stride < len(shards); stride *= 2 {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		for i := 0; i+stride < len(shards); i += 2 * stride {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := shards[i].MergeFrom(shards[i+stride]); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}
	return shards[0], nil
}

// TotalMetric sums metric slot i over all records.
func (ex *Export) TotalMetric(i int) int64 {
	var sum int64
	for id, n := range ex.Nodes {
		if id == 0 {
			continue
		}
		if i < len(n.Metrics) {
			sum += n.Metrics[i]
		}
	}
	return sum
}
