package cct

import "fmt"

// MergeExports combines two decoded CCT files from runs of the same
// program, summing metrics and path counts over structurally matching
// records (same procedure reached through the same child position of a
// matching parent). Records present in only one tree are kept. This is the
// multi-run aggregation workflow: each run writes its heap at program exit
// (as the paper's instrumentation does) and the files are merged offline.
func MergeExports(a, b *Export) (*Export, error) {
	if a.NumProcs != b.NumProcs || a.DistinguishSites != b.DistinguishSites {
		return nil, fmt.Errorf("cct: merge shape mismatch: %d/%v procs vs %d/%v",
			a.NumProcs, a.DistinguishSites, b.NumProcs, b.DistinguishSites)
	}
	out := &Export{
		NumProcs:         a.NumProcs,
		DistinguishSites: a.DistinguishSites,
		NumMetrics:       a.NumMetrics,
		Nodes:            map[int]*ExportedNode{},
	}
	nextID := 1
	var merge func(x, y *ExportedNode) *ExportedNode
	merge = func(x, y *ExportedNode) *ExportedNode {
		n := &ExportedNode{PathCounts: map[int64]int64{}}
		switch {
		case x != nil && y != nil:
			n.Proc = x.Proc
			n.Metrics = append([]int64(nil), x.Metrics...)
			for i, m := range y.Metrics {
				if i < len(n.Metrics) {
					n.Metrics[i] += m
				} else {
					n.Metrics = append(n.Metrics, m)
				}
			}
			for s, c := range x.PathCounts {
				n.PathCounts[s] += c
			}
			for s, c := range y.PathCounts {
				n.PathCounts[s] += c
			}
		case x != nil:
			n.Proc = x.Proc
			n.Metrics = append([]int64(nil), x.Metrics...)
			for s, c := range x.PathCounts {
				n.PathCounts[s] = c
			}
		default:
			n.Proc = y.Proc
			n.Metrics = append([]int64(nil), y.Metrics...)
			for s, c := range y.PathCounts {
				n.PathCounts[s] = c
			}
		}

		// Children match by procedure within the parent (one record per
		// procedure per context, as the CCT equivalence guarantees).
		var xs, ys []*ExportedNode
		if x != nil {
			xs = x.Children
		}
		if y != nil {
			ys = y.Children
		}
		byProc := map[int]*ExportedNode{}
		for _, c := range ys {
			if _, dup := byProc[c.Proc]; dup {
				// Site-distinguished trees can hold several records of the
				// same procedure under one parent (different sites). Fall
				// back to positional pairing for those.
				byProc = nil
				break
			}
			byProc[c.Proc] = c
		}
		if byProc != nil {
			seen := map[int]bool{}
			for _, cx := range xs {
				cy := byProc[cx.Proc]
				if cy != nil && !seen[cx.Proc] {
					seen[cx.Proc] = true
				} else {
					cy = nil
				}
				n.Children = append(n.Children, merge(cx, cy))
			}
			for _, cy := range ys {
				if !seen[cy.Proc] {
					n.Children = append(n.Children, merge(nil, cy))
				}
			}
		} else {
			for i := 0; i < len(xs) || i < len(ys); i++ {
				var cx, cy *ExportedNode
				if i < len(xs) {
					cx = xs[i]
				}
				if i < len(ys) {
					cy = ys[i]
				}
				n.Children = append(n.Children, merge(cx, cy))
			}
		}
		return n
	}
	out.Root = merge(a.Root, b.Root)
	out.Root.ID = 0
	// Re-number depth-first and rebuild the index.
	var index func(n *ExportedNode)
	index = func(n *ExportedNode) {
		out.Nodes[n.ID] = n
		for _, c := range n.Children {
			c.ID = nextID
			c.ParentID = n.ID
			nextID++
			index(c)
		}
	}
	index(out.Root)
	return out, nil
}

// TotalMetric sums metric slot i over all records.
func (ex *Export) TotalMetric(i int) int64 {
	var sum int64
	for id, n := range ex.Nodes {
		if id == 0 {
			continue
		}
		if i < len(n.Metrics) {
			sum += n.Metrics[i]
		}
	}
	return sum
}
