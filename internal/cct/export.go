package cct

import (
	"bufio"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"

	"pathprof/internal/flat"
)

// This file implements what the paper's "Program exit" instrumentation
// does: "the instrumentation writes the heap containing the CCT to a file
// from which the CCT can be reconstructed" — a line-oriented encoding plus
// the inverse reader, a structural snapshot for the binary wire format
// (package wire), and a human-readable tree dump.

// Write encodes the tree:
//
//	cct <numProcs> <distinguishSites> <numMetrics>
//	node <id> <parent-id> <proc> <site> <backedge-parent 0|1-unused> <metrics...>
//	path <node-id> <sum> <count>
//	back <from-id> <to-id>
//
// Node IDs are depth-first preorder numbers; the root is 0 and is not
// emitted as a node line.
func (t *Tree) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "cct %d %t %d\n", len(t.procs), t.opts.DistinguishCallSites, t.opts.NumMetrics)

	ids := map[*Node]int{t.root: 0}
	next := 1
	var backedges [][2]int

	var rec func(n *Node)
	rec = func(n *Node) {
		tree, backs := n.Children()
		for _, ch := range tree {
			ids[ch] = next
			next++
			fmt.Fprintf(bw, "node %d %d %d", ids[ch], ids[n], ch.Proc)
			for _, m := range ch.Metrics {
				fmt.Fprintf(bw, " %d", m)
			}
			fmt.Fprintln(bw)
			sums := make([]int64, 0, ch.NumPathCounts())
			ch.RangePathCounts(func(s, _ int64) bool {
				sums = append(sums, s)
				return true
			})
			slices.Sort(sums)
			for _, s := range sums {
				fmt.Fprintf(bw, "path %d %d %d\n", ids[ch], s, ch.PathCount(s))
			}
			rec(ch)
		}
		for _, b := range backs {
			backedges = append(backedges, [2]int{ids[n], ids[b]})
		}
	}
	rec(t.root)
	for _, be := range backedges {
		fmt.Fprintf(bw, "back %d %d\n", be[0], be[1])
	}
	return bw.Flush()
}

// SlotStat is the per-call-site structural state of a decoded record: the
// slot's usage and which intraprocedural path prefixes reached it (the
// Table 3 "One Path" accounting). It is carried by the binary wire format;
// the text codec does not encode it.
type SlotStat struct {
	Used       bool
	PathState  uint8 // 0 = no prefix seen, 1 = exactly one, 2 = multiple
	PathPrefix int64 // the unique prefix when PathState == 1
}

// ExportedNode is one record of a decoded CCT file. PathCounts is a flat
// open-addressing table (see package flat) so that merging many exports
// does not churn per-node Go maps.
type ExportedNode struct {
	ID         int
	ParentID   int
	Proc       int
	Metrics    []int64
	PathCounts *flat.Table
	Children   []*ExportedNode
	Backedges  []int // target node IDs

	// Structural extras carried by the binary wire format (zero / nil when
	// the export came from the text codec): the record's simulated size and
	// its per-site slot states.
	Size  uint64
	Slots []SlotStat
}

// Export is a decoded CCT file.
type Export struct {
	NumProcs         int
	DistinguishSites bool
	NumMetrics       int
	Root             *ExportedNode // synthetic root with ID 0
	Nodes            map[int]*ExportedNode

	// Program names the profiled program; set by Tree.Export and the wire
	// codec, empty for text-codec files (the text format has no name field).
	Program string

	// HasStructure reports whether the structural extras below (and the
	// per-node Size/Slots) are populated, making Stats exact rather than
	// shape-only.
	HasStructure bool
	SizeBytes    uint64 // simulated profile heap (records + lists)
	ListElems    int
}

// Export snapshots the live tree as a decoded-file structure, including
// the structural detail the text codec drops (record sizes, slot usage,
// one-path states, the heap footprint). An export taken with Export renders
// Table 3 statistics byte-identical to the tree's own ComputeStats, which
// is what lets a collection tier merge uploaded trees and reproduce the
// single-process report exactly.
func (t *Tree) Export(program string) *Export {
	root := &ExportedNode{ID: 0, Proc: -1, PathCounts: flat.New(0)}
	ex := &Export{
		NumProcs:         len(t.procs),
		DistinguishSites: t.opts.DistinguishCallSites,
		NumMetrics:       t.opts.NumMetrics,
		Root:             root,
		Nodes:            map[int]*ExportedNode{0: root},
		Program:          program,
		HasStructure:     true,
		SizeBytes:        t.HeapBytes(),
		ListElems:        t.listElems,
	}
	next := 1
	var rec func(n *Node, en *ExportedNode)
	rec = func(n *Node, en *ExportedNode) {
		tree, backs := n.Children()
		for _, ch := range tree {
			e := &ExportedNode{
				ID:       next,
				ParentID: en.ID,
				Proc:     ch.Proc,
				Metrics:  append([]int64(nil), ch.Metrics...),
				Size:     ch.Size,
				Slots:    make([]SlotStat, len(ch.slots)),
			}
			next++
			for i := range ch.slots {
				s := &ch.slots[i]
				e.Slots[i] = SlotStat{Used: s.tag != TagEmpty, PathState: s.pathState, PathPrefix: s.pathPrefix}
				if s.pathState != 1 {
					e.Slots[i].PathPrefix = 0
				}
			}
			e.PathCounts = flat.New(ch.NumPathCounts())
			ch.RangePathCounts(func(s, c int64) bool {
				e.PathCounts.Set(s, c)
				return true
			})
			en.Children = append(en.Children, e)
			ex.Nodes[e.ID] = e
			rec(ch, e)
		}
		// Backedge targets are ancestors, so their preorder IDs are already
		// assigned; record them on the from-node like the text reader does.
		for _, b := range backs {
			en.Backedges = append(en.Backedges, ex.idOfAncestor(en, b.Proc))
		}
	}
	rec(t.root, root)
	return ex
}

// idOfAncestor resolves the exported ID of the nearest ancestor of n (or n
// itself) recording the given procedure. The recursion rule guarantees each
// procedure appears at most once on a root path, so the match is unique.
func (ex *Export) idOfAncestor(n *ExportedNode, proc int) int {
	for a := n; a != nil && a.ID != 0; a = ex.Nodes[a.ParentID] {
		if a.Proc == proc {
			return a.ID
		}
	}
	return 0
}

// WriteText re-encodes the export in the text format Tree.Write produces.
// For an export decoded from (or snapshotted alongside) a written tree the
// output is byte-identical to the original file; this is the equivalence
// the binary wire codec's round-trip tests are checked against.
func (ex *Export) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "cct %d %t %d\n", ex.NumProcs, ex.DistinguishSites, ex.NumMetrics)
	var backedges [][2]int
	var rec func(n *ExportedNode)
	rec = func(n *ExportedNode) {
		for _, ch := range n.Children {
			fmt.Fprintf(bw, "node %d %d %d", ch.ID, n.ID, ch.Proc)
			for _, m := range ch.Metrics {
				fmt.Fprintf(bw, " %d", m)
			}
			fmt.Fprintln(bw)
			sums := make([]int64, 0, ch.PathCounts.Len())
			ch.PathCounts.Range(func(s, c int64) bool {
				if c != 0 {
					sums = append(sums, s)
				}
				return true
			})
			slices.Sort(sums)
			for _, s := range sums {
				c, _ := ch.PathCounts.Get(s)
				fmt.Fprintf(bw, "path %d %d %d\n", ch.ID, s, c)
			}
			rec(ch)
		}
		for _, to := range n.Backedges {
			backedges = append(backedges, [2]int{n.ID, to})
		}
	}
	rec(ex.Root)
	for _, be := range backedges {
		fmt.Fprintf(bw, "back %d %d\n", be[0], be[1])
	}
	return bw.Flush()
}

// readError builds the descriptive malformed-input error Read reports: the
// line number, the byte offset of the line start, what was wrong, and the
// underlying cause when there is one.
func readError(line int, offset int64, cause error, format string, args ...interface{}) error {
	msg := fmt.Sprintf(format, args...)
	if cause != nil {
		return fmt.Errorf("cct: line %d (offset %d): %s: %w", line, offset, msg, cause)
	}
	return fmt.Errorf("cct: line %d (offset %d): %s", line, offset, msg)
}

// firstErr returns the first non-nil error.
func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Read decodes a tree written by Write. Malformed input yields an error
// naming the line number and file offset of the offending record and the
// token that failed to parse.
func Read(r io.Reader) (*Export, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var ex *Export
	line := 0
	var offset int64 // byte offset of the current line's start
	for sc.Scan() {
		line++
		lineStart := offset
		offset += int64(len(sc.Bytes())) + 1
		f := strings.Fields(sc.Text())
		if len(f) == 0 {
			continue
		}
		if ex == nil && f[0] != "cct" {
			return nil, readError(line, lineStart, nil, "%q record before the cct header", f[0])
		}
		switch f[0] {
		case "cct":
			if len(f) != 4 {
				return nil, readError(line, lineStart, nil, "malformed header: want 4 fields, have %d", len(f))
			}
			np, err1 := strconv.Atoi(f[1])
			ds, err2 := strconv.ParseBool(f[2])
			nm, err3 := strconv.Atoi(f[3])
			if err := firstErr(err1, err2, err3); err != nil {
				return nil, readError(line, lineStart, err, "bad header fields %q", f[1:])
			}
			root := &ExportedNode{ID: 0, Proc: -1, PathCounts: flat.New(0)}
			ex = &Export{
				NumProcs: np, DistinguishSites: ds, NumMetrics: nm,
				Root:  root,
				Nodes: map[int]*ExportedNode{0: root},
			}
		case "node":
			if len(f) < 4 {
				return nil, readError(line, lineStart, nil, "malformed node: want >= 4 fields, have %d", len(f))
			}
			id, err1 := strconv.Atoi(f[1])
			pid, err2 := strconv.Atoi(f[2])
			proc, err3 := strconv.Atoi(f[3])
			if err := firstErr(err1, err2, err3); err != nil {
				return nil, readError(line, lineStart, err, "bad node fields %q", f[1:4])
			}
			n := &ExportedNode{ID: id, ParentID: pid, Proc: proc, PathCounts: flat.New(0)}
			for _, ms := range f[4:] {
				m, err := strconv.ParseInt(ms, 10, 64)
				if err != nil {
					return nil, readError(line, lineStart, err, "bad metric %q", ms)
				}
				n.Metrics = append(n.Metrics, m)
			}
			if _, dup := ex.Nodes[id]; dup {
				return nil, readError(line, lineStart, nil, "duplicate node id %d", id)
			}
			parent, ok := ex.Nodes[pid]
			if !ok {
				return nil, readError(line, lineStart, nil, "node %d has unknown parent %d", id, pid)
			}
			parent.Children = append(parent.Children, n)
			ex.Nodes[id] = n
		case "path":
			if len(f) != 4 {
				return nil, readError(line, lineStart, nil, "malformed path: want 4 fields, have %d", len(f))
			}
			id, err1 := strconv.Atoi(f[1])
			sum, err2 := strconv.ParseInt(f[2], 10, 64)
			cnt, err3 := strconv.ParseInt(f[3], 10, 64)
			if err := firstErr(err1, err2, err3); err != nil {
				return nil, readError(line, lineStart, err, "bad path fields %q", f[1:])
			}
			n, ok := ex.Nodes[id]
			if !ok {
				return nil, readError(line, lineStart, nil, "path for unknown node %d", id)
			}
			n.PathCounts.Set(sum, cnt)
		case "back":
			if len(f) != 3 {
				return nil, readError(line, lineStart, nil, "malformed back: want 3 fields, have %d", len(f))
			}
			from, err1 := strconv.Atoi(f[1])
			to, err2 := strconv.Atoi(f[2])
			if err := firstErr(err1, err2); err != nil {
				return nil, readError(line, lineStart, err, "bad back fields %q", f[1:])
			}
			n, ok := ex.Nodes[from]
			if !ok {
				return nil, readError(line, lineStart, nil, "backedge from unknown node %d", from)
			}
			if _, ok := ex.Nodes[to]; !ok {
				return nil, readError(line, lineStart, nil, "backedge to unknown node %d", to)
			}
			n.Backedges = append(n.Backedges, to)
		default:
			return nil, readError(line, lineStart, nil, "unknown record %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cct: read at offset %d: %w", offset, err)
	}
	if ex == nil {
		return nil, fmt.Errorf("cct: empty input")
	}
	return ex, nil
}

// NumNodes counts decoded records (excluding the root).
func (ex *Export) NumNodes() int { return len(ex.Nodes) - 1 }

// Stats computes Table 3-style statistics from a decoded file: node count,
// height, out-degree and per-procedure replication. Exports that carry the
// wire format's structural extras (HasStructure) additionally report exact
// sizes and call-site columns, making the result identical to the source
// tree's ComputeStats; text-codec exports read those columns as zero.
func (ex *Export) Stats() Stats {
	var st Stats
	st.ListElems = ex.ListElems
	st.SizeBytes = ex.SizeBytes
	repl := map[int]int{}
	var sizeSum uint64
	var degSum, interior, leafDepthSum, leaves, maxH int
	var rec func(n *ExportedNode, depth int)
	rec = func(n *ExportedNode, depth int) {
		if n.ID != 0 {
			st.Nodes++
			repl[n.Proc]++
			sizeSum += n.Size
			deg := len(n.Children) + len(n.Backedges)
			if deg > 0 {
				degSum += deg
				interior++
			} else {
				leaves++
				leafDepthSum += depth
			}
			if depth > maxH {
				maxH = depth
			}
			st.CallSitesTotal += len(n.Slots)
			for _, s := range n.Slots {
				if s.Used {
					st.CallSitesUsed++
					if s.PathState == 1 {
						st.OnePathSites++
					}
				}
			}
		}
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(ex.Root, 0)
	st.AvgNodeSize = avgOrZero(float64(sizeSum), float64(st.Nodes))
	st.AvgOutDegree = avgOrZero(float64(degSum), float64(interior))
	st.AvgHeight = avgOrZero(float64(leafDepthSum), float64(leaves))
	if leaves == 0 {
		// Mirror ComputeStats: with no pure leaves (every record has a
		// backedge) fall back to the average depth over all records.
		var depthSum int
		var all func(n *ExportedNode, depth int)
		all = func(n *ExportedNode, depth int) {
			if n.ID != 0 {
				depthSum += depth
			}
			for _, c := range n.Children {
				all(c, depth+1)
			}
		}
		all(ex.Root, 0)
		st.AvgHeight = avgOrZero(float64(depthSum), float64(st.Nodes))
	}
	st.MaxHeight = maxH
	for _, c := range repl {
		if c > st.MaxReplication {
			st.MaxReplication = c
		}
	}
	if st.Nodes == 0 {
		st.AvgHeight = 0
		st.MaxHeight = 0
	}
	return st
}

// Dump renders the tree as an indented listing (procName resolves IDs),
// with per-record metrics; handy for reports and debugging.
func (t *Tree) Dump(w io.Writer, procName func(int) string) {
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		indent := strings.Repeat("  ", depth)
		name := procName(n.Proc)
		if n == t.root {
			name = "<root>"
		}
		fmt.Fprintf(w, "%s%s", indent, name)
		if len(n.Metrics) > 0 {
			fmt.Fprintf(w, "  metrics=%v", n.Metrics)
		}
		if pc := n.NumPathCounts(); pc > 0 {
			fmt.Fprintf(w, "  paths=%d", pc)
		}
		fmt.Fprintln(w)
		tree, backs := n.Children()
		for _, ch := range tree {
			rec(ch, depth+1)
		}
		for _, b := range backs {
			fmt.Fprintf(w, "%s  ↻ %s\n", indent, procName(b.Proc))
		}
	}
	rec(t.root, 0)
}
