package cct

import (
	"bufio"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"

	"pathprof/internal/flat"
)

// This file implements what the paper's "Program exit" instrumentation
// does: "the instrumentation writes the heap containing the CCT to a file
// from which the CCT can be reconstructed" — a line-oriented encoding plus
// the inverse reader, and a human-readable tree dump.

// Write encodes the tree:
//
//	cct <numProcs> <distinguishSites> <numMetrics>
//	node <id> <parent-id> <proc> <site> <backedge-parent 0|1-unused> <metrics...>
//	path <node-id> <sum> <count>
//	back <from-id> <to-id>
//
// Node IDs are depth-first preorder numbers; the root is 0 and is not
// emitted as a node line.
func (t *Tree) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "cct %d %t %d\n", len(t.procs), t.opts.DistinguishCallSites, t.opts.NumMetrics)

	ids := map[*Node]int{t.root: 0}
	next := 1
	var backedges [][2]int

	var rec func(n *Node)
	rec = func(n *Node) {
		tree, backs := n.Children()
		for _, ch := range tree {
			ids[ch] = next
			next++
			fmt.Fprintf(bw, "node %d %d %d", ids[ch], ids[n], ch.Proc)
			for _, m := range ch.Metrics {
				fmt.Fprintf(bw, " %d", m)
			}
			fmt.Fprintln(bw)
			sums := make([]int64, 0, ch.NumPathCounts())
			ch.RangePathCounts(func(s, _ int64) bool {
				sums = append(sums, s)
				return true
			})
			slices.Sort(sums)
			for _, s := range sums {
				fmt.Fprintf(bw, "path %d %d %d\n", ids[ch], s, ch.PathCount(s))
			}
			rec(ch)
		}
		for _, b := range backs {
			backedges = append(backedges, [2]int{ids[n], ids[b]})
		}
	}
	rec(t.root)
	for _, be := range backedges {
		fmt.Fprintf(bw, "back %d %d\n", be[0], be[1])
	}
	return bw.Flush()
}

// ExportedNode is one record of a decoded CCT file. PathCounts is a flat
// open-addressing table (see package flat) so that merging many exports
// does not churn per-node Go maps.
type ExportedNode struct {
	ID         int
	ParentID   int
	Proc       int
	Metrics    []int64
	PathCounts *flat.Table
	Children   []*ExportedNode
	Backedges  []int // target node IDs
}

// Export is a decoded CCT file.
type Export struct {
	NumProcs         int
	DistinguishSites bool
	NumMetrics       int
	Root             *ExportedNode // synthetic root with ID 0
	Nodes            map[int]*ExportedNode
}

// Read decodes a tree written by Write.
func Read(r io.Reader) (*Export, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var ex *Export
	line := 0
	for sc.Scan() {
		line++
		f := strings.Fields(sc.Text())
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "cct":
			if len(f) != 4 {
				return nil, fmt.Errorf("cct: line %d: malformed header", line)
			}
			np, err1 := strconv.Atoi(f[1])
			ds, err2 := strconv.ParseBool(f[2])
			nm, err3 := strconv.Atoi(f[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("cct: line %d: bad header fields", line)
			}
			root := &ExportedNode{ID: 0, Proc: -1, PathCounts: flat.New(0)}
			ex = &Export{
				NumProcs: np, DistinguishSites: ds, NumMetrics: nm,
				Root:  root,
				Nodes: map[int]*ExportedNode{0: root},
			}
		case "node":
			if ex == nil || len(f) < 4 {
				return nil, fmt.Errorf("cct: line %d: malformed node", line)
			}
			id, err1 := strconv.Atoi(f[1])
			pid, err2 := strconv.Atoi(f[2])
			proc, err3 := strconv.Atoi(f[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("cct: line %d: bad node fields", line)
			}
			n := &ExportedNode{ID: id, ParentID: pid, Proc: proc, PathCounts: flat.New(0)}
			for _, ms := range f[4:] {
				m, err := strconv.ParseInt(ms, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("cct: line %d: bad metric", line)
				}
				n.Metrics = append(n.Metrics, m)
			}
			parent, ok := ex.Nodes[pid]
			if !ok {
				return nil, fmt.Errorf("cct: line %d: node %d has unknown parent %d", line, id, pid)
			}
			parent.Children = append(parent.Children, n)
			ex.Nodes[id] = n
		case "path":
			if ex == nil || len(f) != 4 {
				return nil, fmt.Errorf("cct: line %d: malformed path", line)
			}
			id, err1 := strconv.Atoi(f[1])
			sum, err2 := strconv.ParseInt(f[2], 10, 64)
			cnt, err3 := strconv.ParseInt(f[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("cct: line %d: bad path fields", line)
			}
			n, ok := ex.Nodes[id]
			if !ok {
				return nil, fmt.Errorf("cct: line %d: path for unknown node %d", line, id)
			}
			n.PathCounts.Set(sum, cnt)
		case "back":
			if ex == nil || len(f) != 3 {
				return nil, fmt.Errorf("cct: line %d: malformed back", line)
			}
			from, err1 := strconv.Atoi(f[1])
			to, err2 := strconv.Atoi(f[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("cct: line %d: bad back fields", line)
			}
			n, ok := ex.Nodes[from]
			if !ok {
				return nil, fmt.Errorf("cct: line %d: backedge from unknown node %d", line, from)
			}
			if _, ok := ex.Nodes[to]; !ok {
				return nil, fmt.Errorf("cct: line %d: backedge to unknown node %d", line, to)
			}
			n.Backedges = append(n.Backedges, to)
		default:
			return nil, fmt.Errorf("cct: line %d: unknown record %q", line, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if ex == nil {
		return nil, fmt.Errorf("cct: empty input")
	}
	return ex, nil
}

// NumNodes counts decoded records (excluding the root).
func (ex *Export) NumNodes() int { return len(ex.Nodes) - 1 }

// Stats computes Table 3-style statistics from a decoded file: node count,
// height, out-degree and per-procedure replication (sizes are not encoded
// in the file and read as zero).
func (ex *Export) Stats() Stats {
	var st Stats
	repl := map[int]int{}
	var degSum, interior, leafDepthSum, leaves, maxH int
	var rec func(n *ExportedNode, depth int)
	rec = func(n *ExportedNode, depth int) {
		if n.ID != 0 {
			st.Nodes++
			repl[n.Proc]++
			deg := len(n.Children) + len(n.Backedges)
			if deg > 0 {
				degSum += deg
				interior++
			} else {
				leaves++
				leafDepthSum += depth
			}
			if depth > maxH {
				maxH = depth
			}
		}
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(ex.Root, 0)
	st.AvgOutDegree = avgOrZero(float64(degSum), float64(interior))
	st.AvgHeight = avgOrZero(float64(leafDepthSum), float64(leaves))
	st.MaxHeight = maxH
	for _, c := range repl {
		if c > st.MaxReplication {
			st.MaxReplication = c
		}
	}
	return st
}

// Dump renders the tree as an indented listing (procName resolves IDs),
// with per-record metrics; handy for reports and debugging.
func (t *Tree) Dump(w io.Writer, procName func(int) string) {
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		indent := strings.Repeat("  ", depth)
		name := procName(n.Proc)
		if n == t.root {
			name = "<root>"
		}
		fmt.Fprintf(w, "%s%s", indent, name)
		if len(n.Metrics) > 0 {
			fmt.Fprintf(w, "  metrics=%v", n.Metrics)
		}
		if pc := n.NumPathCounts(); pc > 0 {
			fmt.Fprintf(w, "  paths=%d", pc)
		}
		fmt.Fprintln(w)
		tree, backs := n.Children()
		for _, ch := range tree {
			rec(ch, depth+1)
		}
		for _, b := range backs {
			fmt.Fprintf(w, "%s  ↻ %s\n", indent, procName(b.Proc))
		}
	}
	rec(t.root, 0)
}
