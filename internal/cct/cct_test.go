package cct

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// trace events: positive = Enter(proc) through the given site; -1 = Exit.
type call struct {
	site int
	proc int
}

func procs(n int, sites int) []ProcInfo {
	out := make([]ProcInfo, n)
	for i := range out {
		out[i] = ProcInfo{Name: fmt.Sprintf("p%d", i), NumSites: sites, NumPaths: 4}
	}
	return out
}

func opts() Options {
	return Options{DistinguishCallSites: true, NumMetrics: 1}
}

// figure4 replays the dynamic call tree of Figure 4 of the paper:
// M{ A{ B{ C } }, A{ B{ C } }, D{ C } }. The CCT must keep the two calling
// contexts of C (M→A→B→C and M→D→C) while merging the repeated A subtrees.
func TestFigure4Contexts(t *testing.T) {
	const (
		M, A, B, C, D = 0, 1, 2, 3, 4
	)
	tr := New(procs(5, 3), opts(), 0)
	enter := func(site, proc int) {
		tr.AtCall(site, NoPrefix, nil)
		tr.Enter(proc, nil)
		tr.AddMetric(0, 1, nil)
	}
	exit := func() { tr.Exit(nil) }

	enter(0, M)
	enter(0, A)
	enter(0, B)
	enter(0, C)
	exit()
	exit()
	exit()
	enter(0, A) // second A activation: same context, same record
	enter(0, B)
	enter(0, C)
	exit()
	exit()
	exit()
	enter(1, D)
	enter(0, C)
	exit()
	exit()
	exit()

	if tr.NumNodes() != 6 {
		t.Fatalf("nodes = %d, want 6 (M A B C D C')", tr.NumNodes())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// C must have two records with invocation counts 2 and 1.
	var cCounts []int64
	tr.Walk(func(n *Node) {
		if n.Proc == C {
			cCounts = append(cCounts, n.Metrics[0])
		}
	})
	if len(cCounts) != 2 {
		t.Fatalf("C has %d records, want 2 distinct contexts", len(cCounts))
	}
	if cCounts[0]+cCounts[1] != 3 {
		t.Fatalf("C invocations = %v, want total 3", cCounts)
	}
}

// TestFigure5Recursion replays M{ A{ B{ A{ B{} } } } }: the recursive A
// folds into its ancestor record via a backedge, and the CCT depth stays
// bounded.
func TestFigure5Recursion(t *testing.T) {
	const (
		M, A, B = 0, 1, 2
	)
	tr := New(procs(3, 2), opts(), 0)
	enter := func(site, proc int) {
		tr.AtCall(site, NoPrefix, nil)
		tr.Enter(proc, nil)
		tr.AddMetric(0, 1, nil)
	}
	enter(0, M)
	enter(0, A)
	enter(0, B)
	enter(0, A) // recursive: reuses the ancestor A record
	enter(0, B) // and B below it reuses the original B record
	for i := 0; i < 5; i++ {
		tr.Exit(nil)
	}

	if tr.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3 (M A B)", tr.NumNodes())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var aNode, bNode *Node
	tr.Walk(func(n *Node) {
		switch n.Proc {
		case A:
			aNode = n
		case B:
			bNode = n
		}
	})
	if aNode.Metrics[0] != 2 || bNode.Metrics[0] != 2 {
		t.Fatalf("A/B invocations = %d/%d, want 2/2", aNode.Metrics[0], bNode.Metrics[0])
	}
	_, backs := bNode.Children()
	if len(backs) != 1 || backs[0] != aNode {
		t.Fatalf("B should have one backedge to A")
	}
}

// signatureRef independently computes CCT contexts as canonical signatures:
// a context is the root-to-activation list of (site, proc) pairs, truncated
// at recursion (re-entering a procedure already on the signature folds back
// to that occurrence). Node counts and per-context invocation counts must
// match the tree built by the runtime algorithm.
type signatureRef struct {
	distinguishSites bool
	stack            []string // signature per live activation
	sigProcs         []string // procs-only signature for recursion folding
	counts           map[string]int
	pendingSite      int
}

func newSignatureRef(distinguishSites bool) *signatureRef {
	return &signatureRef{
		distinguishSites: distinguishSites,
		counts:           map[string]int{},
		stack:            []string{""},
		sigProcs:         []string{"|"},
		pendingSite:      -1,
	}
}

func (r *signatureRef) atCall(site int) { r.pendingSite = site }

func (r *signatureRef) enter(proc int) {
	parentSig := r.stack[len(r.stack)-1]
	parentProcs := r.sigProcs[len(r.sigProcs)-1]
	marker := fmt.Sprintf("|%d|", proc)
	var sig, procsSig string
	if idx := indexOf(parentProcs, marker); idx >= 0 {
		// Recursion: fold back to the ancestor occurrence. The signature
		// truncates to the prefix whose last proc is this one.
		sig, procsSig = truncateAt(parentSig, parentProcs, idx, proc)
	} else {
		site := 0
		// The root record has a single callee slot, so top-level entries
		// (depth 0) never distinguish sites.
		if r.distinguishSites && r.pendingSite >= 0 && len(r.stack) > 1 {
			site = r.pendingSite
		}
		sig = fmt.Sprintf("%s/(%d,%d)", parentSig, site, proc)
		procsSig = parentProcs + fmt.Sprintf("%d|", proc)
	}
	r.pendingSite = -1
	r.stack = append(r.stack, sig)
	r.sigProcs = append(r.sigProcs, procsSig)
	r.counts[sig]++
}

func (r *signatureRef) exit() {
	r.stack = r.stack[:len(r.stack)-1]
	r.sigProcs = r.sigProcs[:len(r.sigProcs)-1]
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// truncateAt rebuilds the signature prefix ending at the ancestor
// occurrence of proc located at byte index idx of the procs signature.
func truncateAt(sig, procsSig string, idx int, proc int) (string, string) {
	// Count procs up to and including the occurrence.
	prefix := procsSig[:idx+1] // up to the '|' before proc
	keep := 0
	for _, c := range prefix {
		if c == '|' {
			keep++
		}
	}
	// keep-1 procs precede; the occurrence itself is proc number `keep`.
	// Truncate sig to its first `keep` path components.
	count := 0
	for i := 0; i < len(sig); i++ {
		if sig[i] == '/' {
			count++
			if count == keep+1 {
				newProcs := procsSig[:idx+1] + fmt.Sprintf("%d|", proc)
				return sig[:i], newProcs
			}
		}
	}
	newProcs := procsSig[:idx+1] + fmt.Sprintf("%d|", proc)
	return sig, newProcs
}

// randomTrace produces a balanced Enter/Exit trace with recursion and
// multiple sites.
func randomTrace(rng *rand.Rand, nProcs, nSites, length int) []call {
	var out []call
	depth := 0
	for i := 0; i < length; i++ {
		if depth == 0 || (depth < 12 && rng.Intn(100) < 55) {
			out = append(out, call{site: rng.Intn(nSites), proc: rng.Intn(nProcs)})
			depth++
		} else {
			out = append(out, call{site: -1})
			depth--
		}
	}
	for depth > 0 {
		out = append(out, call{site: -1})
		depth--
	}
	return out
}

// TestAgainstSignatureReference: on random traces, the runtime tree has
// exactly the signature reference's contexts and counts.
func TestAgainstSignatureReference(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nProcs, nSites := rng.Intn(5)+2, rng.Intn(3)+1
		trace := randomTrace(rng, nProcs, nSites, rng.Intn(300)+20)

		tr := New(procs(nProcs, nSites), opts(), 0)
		ref := newSignatureRef(true)
		for _, c := range trace {
			if c.site >= 0 {
				tr.AtCall(c.site, NoPrefix, nil)
				tr.Enter(c.proc, nil)
				tr.AddMetric(0, 1, nil)
				ref.atCall(c.site)
				ref.enter(c.proc)
			} else {
				tr.Exit(nil)
				ref.exit()
			}
		}
		if err := tr.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if tr.NumNodes() != len(ref.counts) {
			t.Logf("seed %d: tree has %d nodes, reference %d contexts", seed, tr.NumNodes(), len(ref.counts))
			return false
		}
		// Invocation-count multisets must agree.
		var treeCounts, refCounts []int
		tr.Walk(func(n *Node) { treeCounts = append(treeCounts, int(n.Metrics[0])) })
		for _, c := range ref.counts {
			refCounts = append(refCounts, c)
		}
		if !sameMultiset(treeCounts, refCounts) {
			t.Logf("seed %d: count multisets differ: %v vs %v", seed, treeCounts, refCounts)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func sameMultiset(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[int]int{}
	for _, x := range a {
		m[x]++
	}
	for _, x := range b {
		m[x]--
		if m[x] < 0 {
			return false
		}
	}
	return true
}

// TestDepthBound: the CCT's depth never exceeds the number of procedures,
// no matter how deep the dynamic recursion.
func TestDepthBound(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nProcs := rng.Intn(4) + 2
		tr := New(procs(nProcs, 2), opts(), 0)
		trace := randomTrace(rng, nProcs, 2, 400)
		for _, c := range trace {
			if c.site >= 0 {
				tr.AtCall(c.site, NoPrefix, nil)
				tr.Enter(c.proc, nil)
			} else {
				tr.Exit(nil)
			}
		}
		maxDepth := 0
		tr.Walk(func(n *Node) {
			if n.Depth() > maxDepth {
				maxDepth = n.Depth()
			}
		})
		// Depth includes the root at 0; records sit at 1..nProcs.
		if maxDepth > nProcs {
			t.Logf("seed %d: depth %d > %d procs", seed, maxDepth, nProcs)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBreadthBound: a record's children never exceed its procedure's call
// sites × distinct callees... in the site-distinguished layout, each slot
// holds one record per distinct callee procedure.
func TestIndirectSiteList(t *testing.T) {
	tr := New(procs(4, 1), opts(), 0)
	// One site calling three different procedures (an indirect call site).
	tr.AtCall(0, NoPrefix, nil)
	tr.Enter(0, nil)
	for callee := 1; callee <= 3; callee++ {
		for rep := 0; rep < 2; rep++ {
			tr.AtCall(0, NoPrefix, nil)
			tr.Enter(callee, nil)
			tr.Exit(nil)
		}
	}
	tr.Exit(nil)
	var p0 *Node
	tr.Walk(func(n *Node) {
		if n.Proc == 0 {
			p0 = n
		}
	})
	kids, _ := p0.Children()
	if len(kids) != 3 {
		t.Fatalf("indirect site produced %d children, want 3", len(kids))
	}
	if tr.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4", tr.NumNodes())
	}
}

// TestMoveToFront: after calling callee X, X's record moves to the front of
// the site's list.
func TestMoveToFront(t *testing.T) {
	tr := New(procs(4, 1), opts(), 0)
	tr.AtCall(0, NoPrefix, nil)
	tr.Enter(0, nil)
	for _, callee := range []int{1, 2, 3, 1} {
		tr.AtCall(0, NoPrefix, nil)
		tr.Enter(callee, nil)
		tr.Exit(nil)
	}
	var p0 *Node
	tr.Walk(func(n *Node) {
		if n.Proc == 0 {
			p0 = n
		}
	})
	s := &p0.slots[0]
	if s.tag != TagList || len(s.keys) != 3 {
		t.Fatalf("slot = %+v, want a 3-element list", s)
	}
	if front := s.childAt(0); front.node.Proc != 1 {
		t.Fatalf("front of list is proc %d, want 1 (most recently called)", front.node.Proc)
	}
}

// TestCombinedSitesSmaller: turning call-site distinction off produces a
// tree no larger, typically smaller (the paper reports 2-3x growth when
// distinguishing sites).
func TestCombinedSitesSmaller(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trace := randomTrace(rng, 4, 4, 2000)
	run := func(distinguish bool) *Tree {
		tr := New(procs(4, 4), Options{DistinguishCallSites: distinguish, NumMetrics: 1}, 0)
		for _, c := range trace {
			if c.site >= 0 {
				tr.AtCall(c.site, NoPrefix, nil)
				tr.Enter(c.proc, nil)
			} else {
				tr.Exit(nil)
			}
		}
		return tr
	}
	with := run(true)
	without := run(false)
	if without.NumNodes() > with.NumNodes() {
		t.Fatalf("combined-site tree has more nodes (%d) than distinguished (%d)", without.NumNodes(), with.NumNodes())
	}
	if without.HeapBytes() >= with.HeapBytes() {
		t.Fatalf("combined-site tree not smaller: %d vs %d bytes", without.HeapBytes(), with.HeapBytes())
	}
}

// TestUnwind: truncating the context stack (longjmp) leaves the tree
// consistent and subsequent Enters attach at the right context.
func TestUnwind(t *testing.T) {
	tr := New(procs(5, 2), opts(), 0)
	tr.AtCall(0, NoPrefix, nil)
	tr.Enter(0, nil) // depth 1
	tr.AtCall(0, NoPrefix, nil)
	tr.Enter(1, nil) // depth 2
	tr.AtCall(0, NoPrefix, nil)
	tr.Enter(2, nil) // depth 3
	tr.UnwindTo(1)   // back to proc 0's activation
	if tr.Current().Proc != 0 {
		t.Fatalf("after unwind current = proc %d, want 0", tr.Current().Proc)
	}
	tr.AtCall(1, NoPrefix, nil)
	tr.Enter(3, nil)
	if tr.Current().Parent.Proc != 0 {
		t.Fatal("post-unwind child attached to wrong parent")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPathCountsPerContext: the same procedure records separate path tables
// in different contexts (the combined flow+context capability).
func TestPathCountsPerContext(t *testing.T) {
	pr := procs(3, 2)
	pr[2].NumPaths = 8
	tr := New(pr, Options{DistinguishCallSites: true, NumMetrics: 1, PathCounts: true}, 0)
	tr.AtCall(0, NoPrefix, nil)
	tr.Enter(0, nil)

	tr.AtCall(0, 3, nil) // reaching the site via path prefix 3
	tr.Enter(2, nil)
	tr.CountPath(5, nil)
	tr.Exit(nil)

	tr.AtCall(1, 4, nil)
	tr.Enter(2, nil)
	tr.CountPath(6, nil)
	tr.CountPath(6, nil)
	tr.Exit(nil)
	tr.Exit(nil)

	var recs []*Node
	tr.Walk(func(n *Node) {
		if n.Proc == 2 {
			recs = append(recs, n)
		}
	})
	if len(recs) != 2 {
		t.Fatalf("proc 2 has %d records, want 2", len(recs))
	}
	total := map[int64]int64{}
	for _, r := range recs {
		r.RangePathCounts(func(s, c int64) bool {
			total[s] += c
			return true
		})
	}
	if total[5] != 1 || total[6] != 2 {
		t.Fatalf("path counts = %v", total)
	}
}

// TestHashPathTable: procedures above the threshold use hash tables.
func TestHashPathTable(t *testing.T) {
	pr := procs(2, 1)
	pr[1].NumPaths = 1 << 20
	tr := New(pr, Options{DistinguishCallSites: true, PathCounts: true, HashPathThreshold: 100}, 0)
	tr.AtCall(0, NoPrefix, nil)
	tr.Enter(0, nil)
	tr.AtCall(0, NoPrefix, nil)
	tr.Enter(1, nil)
	tr.CountPath(999_999, nil)
	n := tr.Current()
	if n.pathHash == nil {
		t.Fatal("large-path procedure should use a hash table")
	}
	if n.PathCount(999_999) != 1 {
		t.Fatal("hash path count missing")
	}
}

// TestStatsShape: Table 3 statistics are internally consistent.
func TestStatsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := New(procs(6, 3), opts(), 0)
	trace := randomTrace(rng, 6, 3, 3000)
	prefix := int64(0)
	for _, c := range trace {
		if c.site >= 0 {
			tr.AtCall(c.site, prefix%3, nil)
			tr.Enter(c.proc, nil)
			prefix++
		} else {
			tr.Exit(nil)
		}
	}
	st := tr.ComputeStats()
	if st.Nodes != tr.NumNodes() {
		t.Fatalf("stats nodes %d != tree nodes %d", st.Nodes, tr.NumNodes())
	}
	if st.CallSitesUsed > st.CallSitesTotal {
		t.Fatal("used sites exceed total")
	}
	if st.OnePathSites > st.CallSitesUsed {
		t.Fatal("one-path sites exceed used sites")
	}
	if st.MaxHeight > 6 {
		t.Fatalf("height %d exceeds procedure count", st.MaxHeight)
	}
	if st.SizeBytes == 0 || st.AvgNodeSize <= 0 {
		t.Fatal("size statistics empty")
	}
	if st.MaxReplication < 1 {
		t.Fatal("replication must be at least 1")
	}
}

// TestCostsCharged: operations driven with a Costs sink actually charge.
type fakeCosts struct {
	reads, writes, instrs uint64
}

func (f *fakeCosts) TouchRead(uint64)      { f.reads++ }
func (f *fakeCosts) TouchWrite(uint64)     { f.writes++ }
func (f *fakeCosts) ChargeInstrs(n uint64) { f.instrs += n }

func TestCostsCharged(t *testing.T) {
	tr := New(procs(3, 2), opts(), 0)
	c := &fakeCosts{}
	tr.AtCall(0, NoPrefix, c)
	tr.Enter(0, c)
	tr.AtCall(1, NoPrefix, c)
	tr.Enter(1, c)
	tr.AddMetric(0, 1, c)
	tr.Exit(c)
	tr.Exit(c)
	if c.instrs == 0 || c.reads == 0 || c.writes == 0 {
		t.Fatalf("costs not charged: %+v", c)
	}
}

// TestRecordAddressesDisjoint: simulated record placements never overlap.
func TestRecordAddressesDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := New(procs(5, 2), opts(), 0x1000)
	trace := randomTrace(rng, 5, 2, 500)
	for _, c := range trace {
		if c.site >= 0 {
			tr.AtCall(c.site, NoPrefix, nil)
			tr.Enter(c.proc, nil)
		} else {
			tr.Exit(nil)
		}
	}
	type span struct{ lo, hi uint64 }
	var spans []span
	tr.Walk(func(n *Node) { spans = append(spans, span{n.Addr, n.Addr + n.Size}) })
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Fatalf("records overlap: %+v and %+v", a, b)
			}
		}
	}
}
