// Package cct implements the Calling Context Tree of Section 4 of the
// paper: a bounded run-time representation of calling contexts. Each vertex
// (call record) stands for an equivalence class of dynamic-call-tree
// vertices — same procedure, equivalent parent — with recursion folded by
// the ancestor rule: all occurrences of a procedure P at or below an
// instance of P share P's record, introducing backedges (but never cross or
// forward edges) into the tree.
//
// The implementation mirrors the paper's data layout (Figures 6 and 7): a
// call record holds the procedure ID, a parent pointer, a metrics array and
// one callee slot per call site; a slot is tagged as uninitialized, a direct
// pointer to one child, or a pointer to a move-to-front list of children
// (for indirect call sites). Records are also assigned addresses in the
// simulated CCT heap so that, when driven from instrumented code, CCT
// maintenance genuinely perturbs the simulated caches.
package cct

import (
	"fmt"
	"math"

	"pathprof/internal/flat"
)

// NoPrefix marks an unknown path prefix in AtCall: with chord-optimized
// increments genuine prefixes can be negative, so a dedicated sentinel is
// required rather than -1.
const NoPrefix int64 = math.MinInt64

// Costs is how tree operations charge their simulated price: reads/writes
// against the simulated D-cache and inline instruction costs. A nil Costs is
// valid and makes operations free (pure Go usage, e.g. tests and baselines).
type Costs interface {
	TouchRead(addr uint64)
	TouchWrite(addr uint64)
	ChargeInstrs(n uint64)
}

// Options configures tree construction.
type Options struct {
	// DistinguishCallSites gives every call site its own callee slot (the
	// paper's default, required for combining with path profiling). When
	// false, each record keeps a single aggregated callee list, the smaller
	// "per (caller, callee) pair" variant discussed in Section 4.1.
	DistinguishCallSites bool

	// NumMetrics is the number of 64-bit metric accumulators per record.
	NumMetrics int

	// PathCounts additionally gives each record a per-path counter table
	// for its procedure (the combined flow- and context-sensitive mode).
	PathCounts bool

	// HashPathThreshold switches a record's path table from a dense array
	// to a hash table when the procedure's potential path count exceeds it.
	// Zero means DefaultHashPathThreshold.
	HashPathThreshold int64
}

// DefaultHashPathThreshold is the array-vs-hash crossover for per-record
// path tables.
const DefaultHashPathThreshold = 4096

// hashTableWords is the simulated footprint charged for a hash-table path
// table (buckets only; entries are charged as they are created).
const hashTableWords = 64

// ProcInfo describes the static program shape the tree needs.
type ProcInfo struct {
	Name     string
	NumSites int   // call sites in the procedure
	NumPaths int64 // Ball-Larus potential paths (0 if unknown)
}

// SlotTag is the 2-bit tag discriminating callee slot states (Figure 6).
type SlotTag uint8

const (
	// TagEmpty marks an uninitialized slot; in the paper it holds the
	// tagged offset back to the start of the record.
	TagEmpty SlotTag = iota
	// TagRecord marks a slot holding a pointer to a single call record.
	TagRecord
	// TagList marks a slot holding a pointer to a list of call records.
	TagList
)

// child is one callee recorded in a slot. The callee's procedure ID is
// duplicated here so slot lookups and move-to-front list scans compare
// against the slot's own memory instead of dereferencing every candidate
// record — the Go-level analogue of the paper's "a few instructions and a
// slot check" budget.
type child struct {
	node     *Node
	proc     int32
	backedge bool // true when node is an ancestor (recursive reuse)
}

// slot is one callee slot. A degraded (multi-callee) slot keeps its
// move-to-front order in keys, a pointer-free array packing each child's
// procedure ID, backedge flag and an index into the stable nodes array.
// Scanning and relinking therefore touch only integer words — no write
// barriers, 8-byte stride — while nodes stays in installation order.
type slot struct {
	tag   SlotTag
	one   child
	keys  []uint64 // move-to-front; hottest callee first (see packChildKey)
	nodes []*Node  // stable; indexed by the key's index field

	// pathState/pathPrefix track which intraprocedural path prefixes
	// reached this slot (for the "One Path" column of Table 3).
	pathState  uint8 // 0 = none yet, 1 = exactly one, 2 = multiple
	pathPrefix int64
}

// Key layout: proc in the low 32 bits, the nodes index in bits 32..62,
// the backedge flag in bit 63.
const backedgeBit = uint64(1) << 63

func packChildKey(proc int32, idx int, backedge bool) uint64 {
	k := uint64(uint32(proc)) | uint64(idx)<<32
	if backedge {
		k |= backedgeBit
	}
	return k
}

// childAt materializes the i-th child (in move-to-front order) of a
// degraded slot.
func (s *slot) childAt(i int) child {
	k := s.keys[i]
	return child{
		node:     s.nodes[(k>>32)&0x7FFFFFFF],
		proc:     int32(uint32(k)),
		backedge: k&backedgeBit != 0,
	}
}

// Node is one call record.
type Node struct {
	Proc    int
	Parent  *Node
	Metrics []int64

	slots []slot

	// Per-path counters (combined mode). Exactly one of the two is used.
	pathArray []int64
	pathHash  *flat.Table

	// Addr and Size are the record's simulated placement.
	Addr uint64
	Size uint64

	depth int // root = 0
}

// Tree is a calling context tree under construction.
type Tree struct {
	opts  Options
	procs []ProcInfo

	root  *Node
	stack []*Node // shadow activation stack; stack[len-1] is current

	pendingSite int   // set by AtCall, consumed by Enter
	pendingPath int64 // path prefix at the call site (combined mode), -1 none

	nodes     int
	listElems int

	heapNext uint64 // simulated bump allocator over the CCT heap region
	heapBase uint64

	// Go-level arenas mirroring the simulated bump allocator: records,
	// metric/path words and callee slots are carved from large blocks owned
	// by the tree, so building the CCT costs one Go allocation per block
	// instead of several per record. A record's slices are sub-sliced with
	// full capacity (three-index slicing), so they can never grow into a
	// neighbour's words.
	nodeArena []Node
	intArena  []int64
	slotArena []slot
}

// Arena block sizes (entries, not bytes). Records average a handful of
// slots and metrics, so these amortize a block allocation over tens to
// hundreds of records while keeping small trees cheap.
const (
	nodeChunk = 128
	intChunk  = 1024
	slotChunk = 512
)

// allocNodeRec returns a zeroed record from the node arena.
func (t *Tree) allocNodeRec() *Node {
	if len(t.nodeArena) == 0 {
		t.nodeArena = make([]Node, nodeChunk)
	}
	n := &t.nodeArena[0]
	t.nodeArena = t.nodeArena[1:]
	return n
}

// allocInts returns a zeroed int64 slice of length n from the int arena.
// Oversized requests (large dense path tables) get a dedicated block.
func (t *Tree) allocInts(n int) []int64 {
	if n == 0 {
		return nil
	}
	if n > len(t.intArena) {
		if n >= intChunk {
			return make([]int64, n)
		}
		t.intArena = make([]int64, intChunk)
	}
	out := t.intArena[:n:n]
	t.intArena = t.intArena[n:]
	return out
}

// allocSlots returns a zeroed slot slice of length n from the slot arena.
func (t *Tree) allocSlots(n int) []slot {
	if n == 0 {
		return nil
	}
	if n > len(t.slotArena) {
		if n >= slotChunk {
			return make([]slot, n)
		}
		t.slotArena = make([]slot, slotChunk)
	}
	out := t.slotArena[:n:n]
	t.slotArena = t.slotArena[n:]
	return out
}

// New creates an empty tree for a program with the given procedures. The
// root is the distinguished non-procedure vertex the paper labels "T".
func New(procs []ProcInfo, opts Options, heapBase uint64) *Tree {
	if opts.HashPathThreshold == 0 {
		opts.HashPathThreshold = DefaultHashPathThreshold
	}
	t := &Tree{
		opts:        opts,
		procs:       procs,
		heapBase:    heapBase,
		heapNext:    heapBase,
		pendingSite: -1,
		pendingPath: NoPrefix,
	}
	t.root = t.allocNodeRec()
	t.root.Proc = -1
	t.root.slots = t.allocSlots(1)
	t.root.Addr = t.alloc(8 * 4)
	t.root.Size = 8 * 4
	// The recursion rule bounds depth by the procedure count, so the shadow
	// stack never regrows once sized for it (keeps Enter alloc-free even
	// before steady state).
	t.stack = make([]*Node, 1, len(procs)+2)
	t.stack[0] = t.root
	return t
}

func (t *Tree) alloc(n uint64) uint64 {
	a := t.heapNext
	t.heapNext += (n + 7) &^ 7
	return a
}

// Root returns the distinguished root record.
func (t *Tree) Root() *Node { return t.root }

// Current returns the record of the active procedure (the root before any
// Enter).
func (t *Tree) Current() *Node { return t.stack[len(t.stack)-1] }

// Depth returns the current activation depth including the root.
func (t *Tree) Depth() int { return len(t.stack) }

// NumNodes returns the number of call records excluding the root.
func (t *Tree) NumNodes() int { return t.nodes }

// HeapBytes returns the simulated bytes allocated for records and lists.
func (t *Tree) HeapBytes() uint64 { return t.heapNext - t.heapBase }

// recordWords computes the simulated size, in words, of a record for proc.
func (t *Tree) recordWords(proc int) uint64 {
	info := t.procs[proc]
	sites := uint64(info.NumSites)
	if !t.opts.DistinguishCallSites {
		sites = 1
	}
	words := 2 + uint64(t.opts.NumMetrics) + sites // ID, parent, metrics, slots
	if t.opts.PathCounts {
		if info.NumPaths > 0 && info.NumPaths <= t.opts.HashPathThreshold {
			words += uint64(info.NumPaths)
		} else {
			words += hashTableWords
		}
	}
	return words
}

// newNode allocates a call record for proc under parent.
func (t *Tree) newNode(proc int, parent *Node) *Node {
	info := t.procs[proc]
	nsites := info.NumSites
	if !t.opts.DistinguishCallSites {
		nsites = 1
	}
	if nsites == 0 {
		nsites = 1 // leaf procedures still get one slot word for uniformity
	}
	n := t.allocNodeRec()
	n.Proc = proc
	n.Parent = parent
	n.Metrics = t.allocInts(t.opts.NumMetrics)
	n.slots = t.allocSlots(nsites)
	n.depth = parent.depth + 1
	if t.opts.PathCounts {
		if info.NumPaths > 0 && info.NumPaths <= t.opts.HashPathThreshold {
			n.pathArray = t.allocInts(int(info.NumPaths))
		} else {
			n.pathHash = flat.New(hashTableWords)
		}
	}
	words := t.recordWords(proc)
	n.Size = words * 8
	n.Addr = t.alloc(n.Size)
	t.nodes++
	return n
}

// slotIndex maps a call-site index to the record's slot index.
func (t *Tree) slotIndex(site int) int {
	if !t.opts.DistinguishCallSites {
		return 0
	}
	return site
}

// AtCall records that the current procedure is about to call through the
// given call-site index, optionally with the Ball-Larus path prefix active
// at the site (pass NoPrefix when unknown). This models setting the gCSP
// register: one ALU instruction, no memory traffic.
func (t *Tree) AtCall(site int, pathPrefix int64, c Costs) {
	t.pendingSite = site
	t.pendingPath = pathPrefix
	if c != nil {
		c.ChargeInstrs(1)
	}
}

// Enter records entry into proc, finding or building its call record per
// the paper's algorithm: check the callee slot; on a miss search the
// ancestors for a record of the same procedure (recursion → backedge);
// otherwise allocate a fresh record.
func (t *Tree) Enter(proc int, c Costs) *Node {
	// One interface nil-check up front; the hot path branches on the bool.
	charged := c != nil
	cur := t.stack[len(t.stack)-1]
	si := 0
	if t.opts.DistinguishCallSites && t.pendingSite > 0 {
		si = t.pendingSite
		if si >= len(cur.slots) {
			// Tolerate a site index beyond the caller's slot count (can only
			// happen for the root, whose single slot hosts program entry).
			si = len(cur.slots) - 1
		}
	}
	s := &cur.slots[si]

	if charged {
		// Load gCSP target and inspect the tag: 2 instructions + one read
		// of the slot word.
		c.ChargeInstrs(2)
		c.TouchRead(cur.Addr + uint64(2+si)*8)
	}

	// Track path prefixes reaching the site (Table 3 "One Path" column).
	if t.pendingPath != NoPrefix {
		switch s.pathState {
		case 0:
			s.pathState = 1
			s.pathPrefix = t.pendingPath
		case 1:
			if s.pathPrefix != t.pendingPath {
				s.pathState = 2
			}
		}
		t.pendingPath = NoPrefix
	}
	t.pendingSite = -1

	var target *Node
	p32 := int32(proc)
	switch s.tag {
	case TagRecord:
		if s.one.proc == p32 {
			// Fast path: the slot already points at the callee's record.
			if charged {
				c.ChargeInstrs(2)
				c.TouchRead(s.one.node.Addr) // check the ID field
			}
			target = s.one.node
		} else {
			// Same site, different callee (an indirect site first seen as
			// one target): degrade the slot to a list.
			s.keys = []uint64{packChildKey(s.one.proc, 0, s.one.backedge)}
			s.nodes = []*Node{s.one.node}
			s.tag = TagList
			if charged {
				c.ChargeInstrs(6)
				c.TouchWrite(cur.Addr + uint64(2+si)*8)
				t.listElems++
				t.alloc(16)
			}
		}
	case TagList:
		// Search the move-to-front list. The scan is duplicated for the
		// uncharged (c == nil) case so the inner loop carries no interface
		// checks; both arms move keys identically — scan position feeds
		// the simulated charges, so MTF order is part of the model. The
		// relink is a hand-rolled shift over the pointer-free key words:
		// no write barriers, and lists are a handful of entries so a bulk
		// copy's dispatch would dominate.
		keys := s.keys
		up := uint32(p32)
		if !charged {
			// Single displacement pass: each visited key is loaded and
			// stored once (shifted right as the scan walks), and the hit is
			// dropped at the front — versus scanning and then re-walking
			// the prefix to shift it. On a miss the displacement is undone;
			// misses only happen while the tree is still growing.
			if len(keys) > 0 && uint32(keys[0]) == up {
				target = s.nodes[(keys[0]>>32)&0x7FFFFFFF]
				break
			}
			if len(keys) > 1 {
				prev := keys[0]
				for i := 1; i < len(keys); i++ {
					k := keys[i]
					keys[i] = prev
					if uint32(k) == up {
						keys[0] = k
						target = s.nodes[(k>>32)&0x7FFFFFFF]
						break
					}
					prev = k
				}
				if target == nil {
					// Miss: slide everything back and re-append the last key.
					copy(keys[:len(keys)-1], keys[1:])
					keys[len(keys)-1] = prev
				}
			}
			break
		}
		for i := range keys {
			c.ChargeInstrs(3)
			c.TouchRead(s.nodes[(keys[i]>>32)&0x7FFFFFFF].Addr)
			if uint32(keys[i]) == up {
				k := keys[i]
				if i > 0 {
					for j := i; j > 0; j-- {
						keys[j] = keys[j-1]
					}
					keys[0] = k
					c.ChargeInstrs(4) // relink to front
				}
				target = s.nodes[(k>>32)&0x7FFFFFFF]
				break
			}
		}
	}

	if target == nil {
		target = t.findOrCreate(proc, cur, s, si, c)
	}
	t.stack = append(t.stack, target)
	if charged {
		// Save the old gCSP to the (approximate) stack location and set
		// the local current-record pointer: 3 instructions, one store.
		c.ChargeInstrs(3)
		c.TouchWrite(shadowStackAddr(len(t.stack)))
	}
	return target
}

// findOrCreate performs the slow path: ancestor search for recursion, then
// allocation. It installs the result into slot s.
func (t *Tree) findOrCreate(proc int, cur *Node, s *slot, si int, c Costs) *Node {
	// Search ancestors for a record of the same procedure (the recursion
	// rule). The walk reads each ancestor's ID and parent fields.
	for a := cur; a != nil; a = a.Parent {
		if c != nil {
			c.ChargeInstrs(3)
			c.TouchRead(a.Addr)
		}
		if a.Proc == proc {
			t.installChild(s, si, cur, child{node: a, proc: int32(proc), backedge: true}, c)
			return a
		}
	}
	n := t.newNode(proc, cur)
	if c != nil {
		// Allocation and initialization: bump the heap pointer, write the
		// ID, parent and slot-initialization words. Charge one write per
		// initialized header word (capped to keep pathological records from
		// dominating) plus bookkeeping instructions.
		c.ChargeInstrs(8)
		words := n.Size / 8
		if words > 16 {
			words = 16
		}
		for w := uint64(0); w < words; w++ {
			c.TouchWrite(n.Addr + w*8)
		}
	}
	t.installChild(s, si, cur, child{node: n, proc: int32(proc)}, c)
	return n
}

func (t *Tree) installChild(s *slot, si int, cur *Node, ch child, c Costs) {
	switch s.tag {
	case TagEmpty:
		s.tag = TagRecord
		s.one = ch
	case TagRecord:
		s.tag = TagList
		s.nodes = []*Node{ch.node, s.one.node}
		s.keys = []uint64{
			packChildKey(ch.proc, 0, ch.backedge),
			packChildKey(s.one.proc, 1, s.one.backedge),
		}
		if c != nil {
			t.listElems++
			t.alloc(16)
		}
	case TagList:
		s.nodes = append(s.nodes, ch.node)
		s.keys = append(s.keys, 0)
		copy(s.keys[1:], s.keys[:len(s.keys)-1])
		s.keys[0] = packChildKey(ch.proc, len(s.nodes)-1, ch.backedge)
		if c != nil {
			t.listElems++
			t.alloc(16)
		}
	}
	if c != nil {
		c.ChargeInstrs(1)
		c.TouchWrite(cur.Addr + uint64(2+si)*8)
	}
}

// Exit records return from the current procedure, restoring the caller's
// context (the paper restores the saved gCSP from the stack).
func (t *Tree) Exit(c Costs) {
	if len(t.stack) <= 1 {
		return // returning from the program's top level
	}
	t.stack = t.stack[:len(t.stack)-1]
	if c != nil {
		c.ChargeInstrs(2)
		c.TouchRead(shadowStackAddr(len(t.stack) + 1))
	}
}

// UnwindTo truncates the context stack to the given activation depth
// (including the root); called when a longjmp discards activations.
func (t *Tree) UnwindTo(depth int) {
	if depth < 1 {
		depth = 1
	}
	// depth counts program activations; our stack additionally holds the
	// root at the bottom.
	want := depth + 1
	if want > len(t.stack) {
		return
	}
	t.stack = t.stack[:want]
}

// shadowStackAddr approximates where the saved gCSP of the activation at
// the given depth lives (interleaved with the program stack region so
// instrumentation and program data share cache sets, as on real hardware).
func shadowStackAddr(depth int) uint64 {
	const stackTop = 0x0800_0000
	return stackTop - uint64(depth)*16 - 8
}

// AddMetric accumulates v into metric slot i of the current record.
func (t *Tree) AddMetric(i int, v int64, c Costs) {
	n := t.Current()
	if i < len(n.Metrics) {
		n.Metrics[i] += v
		if c != nil {
			c.ChargeInstrs(2)
			off := uint64(2+i) * 8
			c.TouchRead(n.Addr + off)
			c.TouchWrite(n.Addr + off)
		}
	}
}

// CountPath increments the current record's counter for the given completed
// path sum (combined flow+context mode).
func (t *Tree) CountPath(sum int64, c Costs) {
	n := t.Current()
	switch {
	case n.pathArray != nil:
		if sum >= 0 && sum < int64(len(n.pathArray)) {
			n.pathArray[sum]++
			if c != nil {
				c.ChargeInstrs(2)
				base := n.Addr + n.Size - uint64(len(n.pathArray))*8
				c.TouchRead(base + uint64(sum)*8)
				c.TouchWrite(base + uint64(sum)*8)
			}
		}
	case n.pathHash != nil:
		n.pathHash.Add(sum, 1)
		if c != nil {
			// Hash probe: a few instructions plus a bucket touch.
			c.ChargeInstrs(6)
			bucket := uint64(sum) % hashTableWords
			base := n.Addr + n.Size - hashTableWords*8
			c.TouchRead(base + bucket*8)
			c.TouchWrite(base + bucket*8)
		}
	}
}

// PathCount returns the recorded count for a path sum at node n.
func (n *Node) PathCount(sum int64) int64 {
	if n.pathArray != nil {
		if sum >= 0 && sum < int64(len(n.pathArray)) {
			return n.pathArray[sum]
		}
		return 0
	}
	if n.pathHash == nil {
		return 0
	}
	v, _ := n.pathHash.Get(sum)
	return v
}

// RangePathCounts calls fn for every non-zero (sum, count) pair at node n,
// stopping early if fn returns false. Unlike PathCounts it allocates
// nothing; iteration order is unspecified but deterministic for a given
// build history.
func (n *Node) RangePathCounts(fn func(sum, count int64) bool) {
	if n.pathArray != nil {
		for s, c := range n.pathArray {
			if c != 0 && !fn(int64(s), c) {
				return
			}
		}
		return
	}
	if n.pathHash == nil {
		return
	}
	n.pathHash.Range(func(s, c int64) bool {
		if c == 0 {
			return true
		}
		return fn(s, c)
	})
}

// NumPathCounts returns the number of non-zero path counters at node n
// (useful for pre-sizing consumers of RangePathCounts).
func (n *Node) NumPathCounts() int {
	total := 0
	n.RangePathCounts(func(_, _ int64) bool {
		total++
		return true
	})
	return total
}

// PathCounts returns all non-zero (sum, count) pairs at node n in a freshly
// allocated map. Prefer RangePathCounts on hot paths; this accessor copies.
func (n *Node) PathCounts() map[int64]int64 {
	out := make(map[int64]int64, n.NumPathCounts())
	n.RangePathCounts(func(s, c int64) bool {
		out[s] = c
		return true
	})
	return out
}

// SlotView is the read-only view of one callee slot.
type SlotView struct {
	Site     int
	Used     bool
	Children []*Node // tree children reached through this slot
	Recursed []*Node // ancestor records reached through this slot (backedges)
	// OnePathPrefix is the unique intraprocedural path prefix (canonical
	// partial path sum) that reached this slot, when exactly one did.
	OnePathPrefix int64
	OnePath       bool
}

// Slots returns read-only views of all callee slots in site order.
func (n *Node) Slots() []SlotView {
	out := make([]SlotView, len(n.slots))
	for i := range n.slots {
		s := &n.slots[i]
		v := SlotView{Site: i, Used: s.tag != TagEmpty}
		if s.pathState == 1 {
			v.OnePath = true
			v.OnePathPrefix = s.pathPrefix
		}
		add := func(ch child) {
			if ch.backedge {
				v.Recursed = append(v.Recursed, ch.node)
			} else {
				v.Children = append(v.Children, ch.node)
			}
		}
		switch s.tag {
		case TagRecord:
			add(s.one)
		case TagList:
			for j := range s.keys {
				add(s.childAt(j))
			}
		}
		out[i] = v
	}
	return out
}

// Children returns n's non-backedge (tree) children, and separately the
// backedge targets, in slot order.
func (n *Node) Children() (tree []*Node, backedges []*Node) {
	add := func(ch child) {
		if ch.backedge {
			backedges = append(backedges, ch.node)
		} else {
			tree = append(tree, ch.node)
		}
	}
	for i := range n.slots {
		s := &n.slots[i]
		switch s.tag {
		case TagRecord:
			add(s.one)
		case TagList:
			for j := range s.keys {
				add(s.childAt(j))
			}
		}
	}
	return tree, backedges
}

// Depth returns the node's distance from the root.
func (n *Node) Depth() int { return n.depth }

// Walk visits every record (excluding the root) in depth-first tree order.
func (t *Tree) Walk(fn func(*Node)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		if n != t.root {
			fn(n)
		}
		tree, _ := n.Children()
		for _, ch := range tree {
			rec(ch)
		}
	}
	rec(t.root)
}

// Validate checks structural invariants: parent links match tree edges,
// backedges target true ancestors (no cross or forward edges), and depth
// never exceeds the number of procedures (the bounded-depth property that
// the recursion rule guarantees).
func (t *Tree) Validate() error {
	maxDepth := len(t.procs)
	var rec func(n *Node, ancestors map[*Node]bool) error
	rec = func(n *Node, ancestors map[*Node]bool) error {
		if n != t.root && n.depth > maxDepth {
			return fmt.Errorf("cct: node for proc %d at depth %d > %d procs", n.Proc, n.depth, maxDepth)
		}
		tree, back := n.Children()
		for _, b := range back {
			if !ancestors[b] && b != n {
				return fmt.Errorf("cct: backedge from proc %d to non-ancestor proc %d", n.Proc, b.Proc)
			}
		}
		ancestors[n] = true
		for _, ch := range tree {
			if ch.Parent != n {
				return fmt.Errorf("cct: child proc %d has wrong parent", ch.Proc)
			}
			if err := rec(ch, ancestors); err != nil {
				return err
			}
		}
		delete(ancestors, n)
		return nil
	}
	return rec(t.root, map[*Node]bool{})
}

// MaxDepthBound returns the theoretical depth bound (number of procedures).
func (t *Tree) MaxDepthBound() int { return len(t.procs) }

// ProcName returns the name of procedure id (or "T" for the root's -1).
func (t *Tree) ProcName(id int) string {
	if id < 0 || id >= len(t.procs) {
		return "T"
	}
	return t.procs[id].Name
}

// avgOrZero guards 0/0.
func avgOrZero(sum, n float64) float64 {
	if n == 0 {
		return 0
	}
	return sum / n
}

// Stats summarizes the tree in the shape of Table 3.
type Stats struct {
	SizeBytes      uint64  // simulated profile size: records + lists
	Nodes          int     // call records, excluding the root
	AvgNodeSize    float64 // bytes
	AvgOutDegree   float64 // children per interior node
	AvgHeight      float64 // average leaf depth
	MaxHeight      int
	MaxReplication int // most records for any single procedure
	CallSitesTotal int // callee slots across all records
	CallSitesUsed  int // slots actually reached
	OnePathSites   int // used slots reached by exactly one path prefix
	ListElems      int
}

// ComputeStats derives Table 3 statistics from the tree.
func (t *Tree) ComputeStats() Stats {
	var st Stats
	st.ListElems = t.listElems
	repl := make([]int, len(t.procs))
	var sizeSum uint64
	var degSum, interior int
	var leafDepthSum, leaves int
	maxH := 0
	t.Walk(func(n *Node) {
		st.Nodes++
		repl[n.Proc]++
		sizeSum += n.Size
		tree, back := n.Children()
		deg := len(tree) + len(back)
		if deg > 0 {
			degSum += deg
			interior++
		} else {
			leaves++
			leafDepthSum += n.depth
		}
		if n.depth > maxH {
			maxH = n.depth
		}
		st.CallSitesTotal += len(n.slots)
		for i := range n.slots {
			if n.slots[i].tag != TagEmpty {
				st.CallSitesUsed++
				if n.slots[i].pathState == 1 {
					st.OnePathSites++
				}
			}
		}
	})
	st.SizeBytes = t.HeapBytes()
	st.AvgNodeSize = avgOrZero(float64(sizeSum), float64(st.Nodes))
	st.AvgOutDegree = avgOrZero(float64(degSum), float64(interior))
	st.AvgHeight = avgOrZero(float64(leafDepthSum), float64(leaves))
	if leaves == 0 {
		// Recursion can leave no pure leaves (every node has a backedge);
		// fall back to the average depth over all records.
		var depthSum int
		t.Walk(func(n *Node) { depthSum += n.depth })
		st.AvgHeight = avgOrZero(float64(depthSum), float64(st.Nodes))
	}
	st.MaxHeight = maxH
	for _, c := range repl {
		if c > st.MaxReplication {
			st.MaxReplication = c
		}
	}
	if st.Nodes == 0 {
		st.AvgHeight = 0
		st.MaxHeight = 0
	}
	return st
}
