package cfg

import "pathprof/internal/ir"

// Dominators computes the immediate-dominator array of p using the
// Cooper-Harvey-Kennedy iterative algorithm. idom[entry] == entry; blocks
// unreachable from entry get -1. The analysis package uses dominators to
// attribute loop structure when summarizing hot paths.
func Dominators(p *ir.Proc) []ir.BlockID {
	n := len(p.Blocks)
	d := NewDFS(p)

	// Blocks in reverse postorder.
	rpo := make([]ir.BlockID, 0, n)
	byPost := make([]ir.BlockID, n)
	for i := range byPost {
		byPost[i] = -1
	}
	maxPost := -1
	for b := 0; b < n; b++ {
		if d.Post[b] >= 0 {
			byPost[d.Post[b]] = ir.BlockID(b)
			if d.Post[b] > maxPost {
				maxPost = d.Post[b]
			}
		}
	}
	for i := maxPost; i >= 0; i-- {
		if byPost[i] >= 0 {
			rpo = append(rpo, byPost[i])
		}
	}

	preds := p.Preds()
	idom := make([]ir.BlockID, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0

	intersect := func(a, b ir.BlockID) ir.BlockID {
		for a != b {
			for d.Post[a] < d.Post[b] {
				a = idom[a]
			}
			for d.Post[b] < d.Post[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			var newIdom ir.BlockID = -1
			for _, pr := range preds[b] {
				if idom[pr] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = pr
				} else {
					newIdom = intersect(pr, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b given the idom array.
func Dominates(idom []ir.BlockID, a, b ir.BlockID) bool {
	if idom[b] == -1 {
		return false
	}
	for {
		if b == a {
			return true
		}
		if b == 0 {
			return a == 0
		}
		b = idom[b]
	}
}

// Loop describes one natural loop: its header and member blocks.
type Loop struct {
	Header ir.BlockID
	Body   map[ir.BlockID]bool // includes the header
}

// NaturalLoops finds the natural loop of every backedge whose target
// dominates its source, merging loops that share a header.
func NaturalLoops(p *ir.Proc) []Loop {
	idom := Dominators(p)
	preds := p.Preds()
	byHeader := map[ir.BlockID]*Loop{}
	var headers []ir.BlockID
	for _, e := range Backedges(p) {
		if !Dominates(idom, e.To, e.From) {
			continue // irreducible backedge; no natural loop
		}
		l, ok := byHeader[e.To]
		if !ok {
			l = &Loop{Header: e.To, Body: map[ir.BlockID]bool{e.To: true}}
			byHeader[e.To] = l
			headers = append(headers, e.To)
		}
		// Walk predecessors backward from the latch, stopping at the header.
		stack := []ir.BlockID{e.From}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if l.Body[b] {
				continue
			}
			l.Body[b] = true
			for _, pr := range preds[b] {
				stack = append(stack, pr)
			}
		}
	}
	out := make([]Loop, 0, len(headers))
	for _, h := range headers {
		out = append(out, *byHeader[h])
	}
	return out
}
