package cfg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pathprof/internal/ir"
	"pathprof/internal/testgen"
)

func diamond(t *testing.T) *ir.Proc {
	t.Helper()
	b := ir.NewBuilder("d")
	p := b.NewProc("f", 0)
	e := p.NewBlock()
	l := p.NewBlock()
	r := p.NewBlock()
	x := p.NewBlock()
	e.Nop()
	e.Br(2, l, r)
	l.Nop()
	l.Jmp(x)
	r.Nop()
	r.Jmp(x)
	x.Ret()
	b.SetMain(p)
	return b.MustFinish().Procs[0]
}

func TestEdgesDeterministic(t *testing.T) {
	p := diamond(t)
	es := Edges(p)
	if len(es) != 4 {
		t.Fatalf("edges = %d, want 4", len(es))
	}
	want := []Edge{{0, 1, 0}, {0, 2, 1}, {1, 3, 0}, {2, 3, 0}}
	for i, e := range es {
		if e != want[i] {
			t.Errorf("edge %d = %v, want %v", i, e, want[i])
		}
	}
}

func TestDFSBackedges(t *testing.T) {
	b := ir.NewBuilder("l")
	p := b.NewProc("f", 0)
	e := p.NewBlock()
	h := p.NewBlock()
	body := p.NewBlock()
	x := p.NewBlock()
	e.Nop()
	e.Jmp(h)
	h.Nop()
	h.Br(2, body, x)
	body.Nop()
	body.Jmp(h)
	x.Ret()
	b.SetMain(p)
	proc := b.MustFinish().Procs[0]

	bes := Backedges(proc)
	if len(bes) != 1 {
		t.Fatalf("backedges = %v, want 1", bes)
	}
	if bes[0].From != 2 || bes[0].To != 1 {
		t.Fatalf("backedge = %v, want b2->b1", bes[0])
	}
	if IsAcyclic(proc) {
		t.Fatal("loop reported acyclic")
	}
	if !IsAcyclic(diamond(t)) {
		t.Fatal("diamond reported cyclic")
	}
}

// TestBackedgeRemovalYieldsDAG: removing the DFS backedges from any CFG
// leaves an acyclic graph (the property the path numbering relies on).
func TestBackedgeRemovalYieldsDAG(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := testgen.RandomProc(rng, "r", rng.Intn(20)+3)
		be := map[Edge]bool{}
		for _, e := range Backedges(p) {
			be[e] = true
		}
		_, err := ReverseTopologicalAdj(len(p.Blocks), func(b ir.BlockID) []ir.BlockID {
			var out []ir.BlockID
			for slot, s := range p.Blocks[b].Succs {
				if !be[Edge{From: b, To: s, Slot: slot}] {
					out = append(out, s)
				}
			}
			return out
		})
		return err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestReverseTopologicalOrder: in the returned order, every block appears
// after all of its successors.
func TestReverseTopologicalOrder(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := testgen.RandomAcyclicProc(rng, "r", rng.Intn(20)+3)
		order := ReverseTopological(p)
		pos := make(map[ir.BlockID]int)
		for i, b := range order {
			pos[b] = i
		}
		for _, b := range p.Blocks {
			for _, s := range b.Succs {
				if pos[s] >= pos[b.ID] {
					t.Logf("seed %d: successor b%d not before b%d", seed, s, b.ID)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	idom := Dominators(diamond(t))
	want := []ir.BlockID{0, 0, 0, 0}
	for i, w := range want {
		if idom[i] != w {
			t.Errorf("idom[%d] = %d, want %d", i, idom[i], w)
		}
	}
	if !Dominates(idom, 0, 3) {
		t.Error("entry should dominate exit")
	}
	if Dominates(idom, 1, 3) {
		t.Error("left arm should not dominate exit")
	}
}

// TestDominatorsAgainstReference compares the iterative dominator algorithm
// with a brute-force reachability-based reference on random CFGs.
func TestDominatorsAgainstReference(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := testgen.RandomProc(rng, "r", rng.Intn(12)+3)
		idom := Dominators(p)
		n := len(p.Blocks)
		// Reference: a dominates b iff removing a makes b unreachable.
		reach := func(skip ir.BlockID) []bool {
			seen := make([]bool, n)
			if skip == 0 {
				return seen
			}
			stack := []ir.BlockID{0}
			seen[0] = true
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, w := range p.Blocks[v].Succs {
					if w != skip && !seen[w] {
						seen[w] = true
						stack = append(stack, w)
					}
				}
			}
			return seen
		}
		for a := 0; a < n; a++ {
			seen := reach(ir.BlockID(a))
			for b := 0; b < n; b++ {
				refDom := !seen[b] || a == b
				gotDom := Dominates(idom, ir.BlockID(a), ir.BlockID(b))
				if refDom != gotDom {
					t.Logf("seed %d: dominates(%d,%d) = %v, reference %v", seed, a, b, gotDom, refDom)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNaturalLoops(t *testing.T) {
	b := ir.NewBuilder("nest")
	p := b.NewProc("f", 0)
	e := p.NewBlock()
	h1 := p.NewBlock()
	h2 := p.NewBlock()
	body := p.NewBlock()
	l1 := p.NewBlock()
	x := p.NewBlock()
	e.Nop()
	e.Jmp(h1)
	h1.Nop()
	h1.Br(2, h2, x)
	h2.Nop()
	h2.Br(2, body, l1)
	body.Nop()
	body.Jmp(h2) // inner backedge
	l1.Nop()
	l1.Jmp(h1) // outer backedge
	x.Ret()
	b.SetMain(p)
	proc := b.MustFinish().Procs[0]

	loops := NaturalLoops(proc)
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	byHeader := map[ir.BlockID]Loop{}
	for _, l := range loops {
		byHeader[l.Header] = l
	}
	inner, ok := byHeader[2]
	if !ok || len(inner.Body) != 2 {
		t.Fatalf("inner loop wrong: %+v", inner)
	}
	outer, ok := byHeader[1]
	if !ok || len(outer.Body) != 4 {
		t.Fatalf("outer loop wrong: %+v (want h1,h2,body,l1)", outer)
	}
}
