// Package cfg provides control-flow-graph algorithms over ir.Proc: DFS
// numbering, backedge identification, topological ordering of acyclic
// graphs, dominator computation, and natural-loop discovery.
//
// The Ball-Larus path profiler (package bl) depends on the backedge set (a
// backedge is an edge whose target is an ancestor on the DFS spanning tree,
// identified by a depth-first search from ENTRY, as in the paper) and on a
// reverse topological order of the transformed acyclic graph.
package cfg

import (
	"fmt"

	"pathprof/internal/ir"
)

// Edge identifies a CFG edge by its endpoints and the successor slot it
// occupies in the source block (so parallel edges, e.g. both arms of a
// branch targeting the same block, remain distinct).
type Edge struct {
	From ir.BlockID
	To   ir.BlockID
	Slot int // index into From's successor list
}

func (e Edge) String() string {
	return fmt.Sprintf("b%d->b%d#%d", e.From, e.To, e.Slot)
}

// Edges returns all edges of the procedure in deterministic order.
func Edges(p *ir.Proc) []Edge {
	var out []Edge
	for _, b := range p.Blocks {
		for i, s := range b.Succs {
			out = append(out, Edge{From: b.ID, To: s, Slot: i})
		}
	}
	return out
}

// DFS holds the result of a depth-first search from the entry block.
type DFS struct {
	Pre    []int        // preorder number per block, -1 if unreachable
	Post   []int        // postorder number per block
	Parent []ir.BlockID // DFS tree parent, -1 for the root
	Order  []ir.BlockID // blocks in preorder
}

// NewDFS runs a depth-first search over p from the entry block, visiting
// successors in slot order (deterministic).
func NewDFS(p *ir.Proc) *DFS {
	n := len(p.Blocks)
	d := &DFS{
		Pre:    make([]int, n),
		Post:   make([]int, n),
		Parent: make([]ir.BlockID, n),
	}
	for i := range d.Pre {
		d.Pre[i] = -1
		d.Post[i] = -1
		d.Parent[i] = -1
	}
	pre, post := 0, 0
	// Iterative DFS with explicit successor cursors to keep deterministic
	// slot order and avoid recursion limits on large CFGs.
	type frame struct {
		b    ir.BlockID
		next int
	}
	stack := []frame{{b: 0}}
	d.Pre[0] = pre
	pre++
	d.Order = append(d.Order, 0)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := p.Blocks[f.b].Succs
		if f.next < len(succs) {
			w := succs[f.next]
			f.next++
			if d.Pre[w] == -1 {
				d.Pre[w] = pre
				pre++
				d.Parent[w] = f.b
				d.Order = append(d.Order, w)
				stack = append(stack, frame{b: w})
			}
			continue
		}
		d.Post[f.b] = post
		post++
		stack = stack[:len(stack)-1]
	}
	return d
}

// IsBackedge reports whether the edge from->to is a backedge with respect to
// this DFS: its target was entered before the source and not yet exited when
// the source is visited. With the standard pre/post characterization, edge
// (u,v) is a backedge iff Pre[v] <= Pre[u] and Post[u] <= Post[v] (v is an
// ancestor of u, including u itself for self-loops).
func (d *DFS) IsBackedge(from, to ir.BlockID) bool {
	if d.Pre[from] == -1 || d.Pre[to] == -1 {
		return false
	}
	return d.Pre[to] <= d.Pre[from] && d.Post[from] <= d.Post[to]
}

// Backedges returns the backedges of p identified by a DFS from entry, in
// deterministic order.
func Backedges(p *ir.Proc) []Edge {
	d := NewDFS(p)
	var out []Edge
	for _, e := range Edges(p) {
		if d.IsBackedge(e.From, e.To) {
			out = append(out, e)
		}
	}
	return out
}

// IsAcyclic reports whether p's CFG contains no cycles.
func IsAcyclic(p *ir.Proc) bool {
	return len(Backedges(p)) == 0
}

// ReverseTopological returns the blocks of an acyclic CFG in reverse
// topological order (every block appears before all of its predecessors;
// equivalently successors first). It panics if the graph has a cycle, since
// callers must run the backedge transformation first.
func ReverseTopological(p *ir.Proc) []ir.BlockID {
	order, err := reverseTopo(len(p.Blocks), func(b ir.BlockID) []ir.BlockID {
		return p.Blocks[b].Succs
	})
	if err != nil {
		panic(fmt.Sprintf("cfg: %v in proc %s", err, p.Name))
	}
	return order
}

// ReverseTopologicalAdj is ReverseTopological over an explicit adjacency
// list (used by the bl package on the transformed graph, which is never
// materialized as an ir.Proc).
func ReverseTopologicalAdj(n int, succs func(ir.BlockID) []ir.BlockID) ([]ir.BlockID, error) {
	return reverseTopo(n, succs)
}

func reverseTopo(n int, succs func(ir.BlockID) []ir.BlockID) ([]ir.BlockID, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, n)
	order := make([]ir.BlockID, 0, n)
	type frame struct {
		b    ir.BlockID
		next int
	}
	for root := 0; root < n; root++ {
		if color[root] != white {
			continue
		}
		stack := []frame{{b: ir.BlockID(root)}}
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			ss := succs(f.b)
			if f.next < len(ss) {
				w := ss[f.next]
				f.next++
				switch color[w] {
				case white:
					color[w] = gray
					stack = append(stack, frame{b: w})
				case gray:
					return nil, fmt.Errorf("cycle through block %d", w)
				}
				continue
			}
			color[f.b] = black
			order = append(order, f.b)
			stack = stack[:len(stack)-1]
		}
	}
	return order, nil
}
