package collector

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pathprof/internal/cct"
	"pathprof/internal/profile"
	"pathprof/internal/wire"
)

// Batcher coalesces pushed envelopes into version-3 batched frames and
// flushes them to the collector in one POST each — when MaxItems
// envelopes have accumulated, when MaxWait has elapsed since the first
// buffered envelope, or on an explicit Flush/Close. Producers that emit
// one small profile per run amortize the HTTP round-trip across the
// whole batch.
//
// Add methods encode immediately (into the pending frame), so the
// caller may reuse or mutate the pushed value as soon as Add returns.
// Flushing happens inline in whichever Add crosses MaxItems — the
// producer is paced by the collector, which is the backpressure taking
// effect — or on the MaxWait timer goroutine. A failed flush (after the
// client's retries) is sticky: the batch is dropped and every later Add
// returns the error, so a producer loop notices instead of silently
// feeding a dead collector.
type Batcher struct {
	// Client performs the uploads. Give it a RetryPolicy to ride out
	// collector backpressure.
	Client *Client
	// MaxItems flushes when this many envelopes are buffered
	// (default 64).
	MaxItems int
	// MaxWait flushes a non-empty batch this long after its first
	// envelope arrived (default 1s), bounding how stale buffered data
	// can get at low push rates.
	MaxWait time.Duration

	mu     sync.Mutex
	bw     *wire.BatchWriter
	timer  *time.Timer
	err    error // sticky first flush failure
	closed bool
}

// NewBatcher returns a batcher pushing through cl. maxItems and maxWait
// ≤ 0 select the defaults (64 envelopes, 1s).
func NewBatcher(cl *Client, maxItems int, maxWait time.Duration) *Batcher {
	return &Batcher{Client: cl, MaxItems: maxItems, MaxWait: maxWait}
}

func (b *Batcher) maxItems() int {
	if b.MaxItems > 0 {
		return b.MaxItems
	}
	return 64
}

func (b *Batcher) maxWait() time.Duration {
	if b.MaxWait > 0 {
		return b.MaxWait
	}
	return time.Second
}

// AddProfile buffers one path profile, flushing inline if the batch is
// full.
func (b *Batcher) AddProfile(ctx context.Context, p *profile.Profile) error {
	return b.add(ctx, func(bw *wire.BatchWriter) error { return bw.AddProfile(p) })
}

// AddExport buffers one CCT export, flushing inline if the batch is
// full.
func (b *Batcher) AddExport(ctx context.Context, ex *cct.Export) error {
	return b.add(ctx, func(bw *wire.BatchWriter) error { return bw.AddExport(ex) })
}

func (b *Batcher) add(ctx context.Context, enc func(*wire.BatchWriter) error) error {
	b.mu.Lock()
	if err := b.addErrLocked(); err != nil {
		b.mu.Unlock()
		return err
	}
	if b.bw == nil {
		b.bw = wire.NewBatchWriter()
	}
	if err := enc(b.bw); err != nil {
		b.mu.Unlock()
		return err
	}
	if b.bw.Items() == 1 {
		// First envelope of a new batch: arm the staleness timer.
		b.timer = time.AfterFunc(b.maxWait(), func() { b.Flush(context.Background()) })
	}
	if b.bw.Items() < b.maxItems() {
		b.mu.Unlock()
		return nil
	}
	frame, timer := b.takeLocked()
	b.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	return b.push(ctx, frame)
}

func (b *Batcher) addErrLocked() error {
	if b.closed {
		return errors.New("collector: batcher is closed")
	}
	if b.err != nil {
		return fmt.Errorf("collector: batcher failed: %w", b.err)
	}
	return nil
}

// takeLocked detaches the pending frame (nil if empty) and its timer.
// Caller holds b.mu.
func (b *Batcher) takeLocked() (frame []byte, timer *time.Timer) {
	if b.bw == nil || b.bw.Items() == 0 {
		return nil, nil
	}
	frame = b.bw.Frame()
	b.bw.Reset()
	timer, b.timer = b.timer, nil
	return frame, timer
}

func (b *Batcher) push(ctx context.Context, frame []byte) error {
	if frame == nil {
		return nil
	}
	_, err := b.Client.PushFrame(ctx, frame)
	if err != nil {
		b.mu.Lock()
		if b.err == nil {
			b.err = err
		}
		b.mu.Unlock()
	}
	return err
}

// Flush pushes whatever is buffered, if anything. Safe to call
// concurrently with Add.
func (b *Batcher) Flush(ctx context.Context) error {
	b.mu.Lock()
	if b.err != nil {
		err := b.err
		b.mu.Unlock()
		return err
	}
	frame, timer := b.takeLocked()
	b.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	return b.push(ctx, frame)
}

// Close flushes the final partial batch and rejects further Adds.
func (b *Batcher) Close(ctx context.Context) error {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	return b.Flush(ctx)
}
