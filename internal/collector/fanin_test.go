package collector

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"pathprof/internal/experiments"
	"pathprof/internal/instrument"
	"pathprof/internal/workload"
)

// TestRelayTreeFanIn is the scale acceptance test for batched ingest: a
// large producer population pushes through a two-level relay tree —
// producers batch envelopes into wire-v3 frames and POST them to one of
// two leaf relay collectors, each relay pre-merges and periodically
// pushes batched frames to the root — and the root's tables 3 and 5
// must come out byte-identical to the in-process ground truth
// (Session.Table3Sharded / Session.Table5). That holds at any producer
// count because Table 3's statistics are shape-only and Table 5's
// percentages are scale-invariant, so the oracle checks the full
// topology (batch encode → leaf fold → relay take/merge → root fold)
// without depending on how many producers ran.
//
// PPD_FANIN_PRODUCERS overrides the producer count (ci.sh runs a
// scaled-down smoke; the default exercises the full 10k).
func TestRelayTreeFanIn(t *testing.T) {
	producers := 10000
	if s := os.Getenv("PPD_FANIN_PRODUCERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad PPD_FANIN_PRODUCERS %q", s)
		}
		producers = n
	} else if testing.Short() {
		producers = 1000
	}

	programs := []string{"compress", "objdb"}
	s := experiments.NewSession(workload.Test)
	var ws []workload.Workload
	for _, name := range programs {
		w, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		ws = append(ws, w)
	}
	s.Workloads = ws

	// Ground truth, computed locally.
	rows, err := s.Table3Sharded(4)
	if err != nil {
		t.Fatal(err)
	}
	var wantT3 bytes.Buffer
	experiments.RenderTable3(rows, &wantT3)
	t5, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	var wantT5 bytes.Buffer
	experiments.RenderTable5(t5, &wantT5)

	// What each producer pushes: every producer contributes one envelope,
	// cycling through (program x kind) so all four aggregate streams see
	// producers/4 pushes each. The envelope values are the session's
	// deterministic runs — the same trees and profiles the ground truth
	// was computed from.
	type push struct {
		prog int // index into programs
		cct  bool
	}
	var kinds []push
	envs := make([]envelope, 0, 2*len(programs))
	ctx := context.Background()
	for pi, w := range ws {
		tc, err := s.Run(w, instrument.ModeContextFlow,
			experiments.StandardEvents[0], experiments.StandardEvents[1])
		if err != nil {
			t.Fatal(err)
		}
		pc, err := s.Run(w, instrument.ModePathHW,
			experiments.StandardEvents[0], experiments.StandardEvents[1])
		if err != nil {
			t.Fatal(err)
		}
		envs = append(envs, envelope{ex: tc.Tree.Export(w.Name)}, envelope{p: pc.Profile})
		kinds = append(kinds, push{prog: pi, cct: true}, push{prog: pi, cct: false})
	}
	if producers%len(kinds) != 0 {
		t.Fatalf("producer count %d must be a multiple of %d so every stream is covered evenly", producers, len(kinds))
	}

	// The tree: root <- {leaf0, leaf1} <- producers.
	root := New(Config{Shards: 4})
	rootSrv := httptest.NewServer(root.Handler())
	defer rootSrv.Close()

	const fanout = 2
	var leaves []*Relay
	var leafCls []*Client
	for i := 0; i < fanout; i++ {
		leaf := New(Config{Shards: 4})
		srv := httptest.NewServer(leaf.Handler())
		defer srv.Close()
		r := &Relay{
			Local:    leaf,
			Upstream: &Client{BaseURL: rootSrv.URL, HTTPClient: rootSrv.Client(), Retry: &RetryPolicy{}},
			Interval: 50 * time.Millisecond,
			MaxItems: 64,
		}
		r.Start()
		leaves = append(leaves, r)
		leafCls = append(leafCls, &Client{BaseURL: srv.URL, HTTPClient: srv.Client(), Retry: &RetryPolicy{}})
	}

	// Producer fleet: workers simulate producers/workers producers each;
	// every worker batches into wire-v3 frames per leaf, as cmd/ppd push
	// -batch does.
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batchers := make([]*Batcher, fanout)
			for i, cl := range leafCls {
				batchers[i] = NewBatcher(cl, 64, 100*time.Millisecond)
			}
			for i := w; i < producers; i += workers {
				k := kinds[i%len(kinds)]
				e := envs[i%len(kinds)]
				b := batchers[i%fanout]
				var err error
				if k.cct {
					err = b.AddExport(ctx, e.ex)
				} else {
					err = b.AddProfile(ctx, e.p)
				}
				if err != nil {
					errs <- err
					return
				}
			}
			for _, b := range batchers {
				if err := b.Close(ctx); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Drain the tree: final relay flushes push everything upstream.
	for _, r := range leaves {
		if err := r.Stop(ctx); err != nil {
			t.Fatal(err)
		}
	}

	rootCl := &Client{BaseURL: rootSrv.URL, HTTPClient: rootSrv.Client()}
	gotT3, err := rootCl.Table(ctx, 3, programs)
	if err != nil {
		t.Fatal(err)
	}
	if gotT3 != wantT3.String() {
		t.Errorf("Table 3 through the relay tree differs from local ground truth\n--- relay tree ---\n%s\n--- local ---\n%s",
			gotT3, wantT3.String())
	}
	gotT5, err := rootCl.Table(ctx, 5, programs)
	if err != nil {
		t.Fatal(err)
	}
	if gotT5 != wantT5.String() {
		t.Errorf("Table 5 through the relay tree differs from local ground truth\n--- relay tree ---\n%s\n--- local ---\n%s",
			gotT5, wantT5.String())
	}

	// Accounting: every producer's envelope must be represented in the
	// root's merged counters. Producers of each program pushed the same
	// profile producers/4 times, so the merged path-execution total is
	// exactly that multiple of one run's total.
	perStream := uint64(producers / len(kinds))
	for pi, name := range programs {
		merged, ok := root.MergedProfile(name)
		if !ok {
			t.Fatalf("root has no merged profile for %s", name)
		}
		wf, _ := envs[2*pi+1].p.Totals()
		if gf, _ := merged.Totals(); gf != perStream*wf {
			t.Fatalf("%s: merged freq %d, want %d pushes x %d", name, gf, perStream, wf)
		}
	}
	var relayed uint64
	for _, r := range leaves {
		relayed += r.Stats().EnvelopesPushed
	}
	if relayed == 0 {
		t.Fatal("relays pushed nothing upstream")
	}
	t.Logf("%d producers -> %d leaf relays -> root: %d pre-merged envelopes upstream (%.0fx fan-in reduction)",
		producers, fanout, relayed, float64(producers)/float64(relayed))
}
