package collector

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pathprof/internal/cct"
	"pathprof/internal/experiments"
	"pathprof/internal/instrument"
	"pathprof/internal/profile"
	"pathprof/internal/wire"
	"pathprof/internal/workload"
)

// Shared fixture: one real profile and tree (Test scale) reused by every
// test in the package.
var (
	fixtureOnce sync.Once
	fixtureProf *profile.Profile
	fixtureTree *cct.Tree
)

func fixtures(t *testing.T) (*profile.Profile, *cct.Tree) {
	t.Helper()
	fixtureOnce.Do(func() {
		s := experiments.NewSession(workload.Test)
		w, ok := workload.ByName("compress")
		if !ok {
			panic("no compress workload")
		}
		pc, err := s.Run(w, instrument.ModePathHW, experiments.StandardEvents[0], experiments.StandardEvents[1])
		if err != nil {
			panic(err)
		}
		tc, err := s.Run(w, instrument.ModeContextFlow, experiments.StandardEvents[0], experiments.StandardEvents[1])
		if err != nil {
			panic(err)
		}
		fixtureProf, fixtureTree = pc.Profile, tc.Tree
	})
	if fixtureProf == nil || fixtureTree == nil {
		t.Fatal("fixture build failed")
	}
	return fixtureProf, fixtureTree
}

func newServer(t *testing.T, cfg Config) (*Collector, *Client) {
	t.Helper()
	c := New(cfg)
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, &Client{BaseURL: srv.URL, HTTPClient: srv.Client()}
}

func statusOf(t *testing.T, err error) int {
	t.Helper()
	var ae *apiError
	if !errors.As(err, &ae) {
		t.Fatalf("expected collector apiError, got %v", err)
	}
	return ae.Status
}

func TestIngestAndQuery(t *testing.T) {
	prof, tree := fixtures(t)
	c, cl := newServer(t, Config{Shards: 3})
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := cl.PushProfile(ctx, prof); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.PushExport(ctx, tree.Export("compress")); err != nil {
			t.Fatal(err)
		}
	}
	progs, err := cl.Programs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 1 || progs[0] != "compress" {
		t.Fatalf("programs = %v", progs)
	}

	merged, ok := c.MergedProfile("compress")
	if !ok {
		t.Fatal("no merged profile")
	}
	wf, wms := prof.Totals()
	gf, gms := merged.Totals()
	wm0, gm0 := wms[0], gms[0]
	if gf != 3*wf || gm0 != 3*wm0 {
		t.Fatalf("merged totals freq=%d m0=%d, want 3x (%d, %d)", gf, gm0, wf, wm0)
	}
	ex, ok := c.MergedExport("compress")
	if !ok {
		t.Fatal("no merged export")
	}
	// Merging identical trees preserves every Table 3 statistic exactly.
	if got, want := ex.Stats(), tree.ComputeStats(); got != want {
		t.Fatalf("merged stats\n got %+v\nwant %+v", got, want)
	}

	for _, n := range []int{3, 4, 5} {
		out, err := cl.Table(ctx, n, []string{"compress"})
		if err != nil {
			t.Fatalf("table %d: %v", n, err)
		}
		if !strings.Contains(out, "compress") {
			t.Fatalf("table %d misses the program row:\n%s", n, out)
		}
	}
	m := c.Metrics()
	if m.IngestedProfiles != 3 || m.IngestedCCTs != 3 || m.IngestedBytes == 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestQueryUnknownProgram(t *testing.T) {
	_, cl := newServer(t, Config{})
	_, err := cl.Table(context.Background(), 3, []string{"nonesuch"})
	if statusOf(t, err) != http.StatusNotFound {
		t.Fatalf("want 404, got %v", err)
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	prof, _ := fixtures(t)
	c, cl := newServer(t, Config{MaxBodyBytes: 64})
	_, err := cl.PushProfile(context.Background(), prof)
	if statusOf(t, err) != http.StatusRequestEntityTooLarge {
		t.Fatalf("want 413, got %v", err)
	}
	if c.Metrics().RejectedTooLarge != 1 {
		t.Fatalf("metrics: %+v", c.Metrics())
	}
}

func TestBadPayloadRejected(t *testing.T) {
	c, cl := newServer(t, Config{})
	resp, err := cl.http().Post(cl.BaseURL+"/ingest", "application/octet-stream",
		strings.NewReader("this is not a wire envelope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400, got %d", resp.StatusCode)
	}
	if c.Metrics().RejectedBad != 1 {
		t.Fatalf("metrics: %+v", c.Metrics())
	}
}

func TestModeConflictRejected(t *testing.T) {
	prof, _ := fixtures(t)
	_, cl := newServer(t, Config{Shards: 1})
	ctx := context.Background()
	if _, err := cl.PushProfile(ctx, prof); err != nil {
		t.Fatal(err)
	}
	other := cloneProfile(prof)
	other.Mode = "context+hw"
	_, err := cl.PushProfile(ctx, other)
	if statusOf(t, err) != http.StatusConflict {
		t.Fatalf("want 409, got %v", err)
	}
}

func TestSchemaConflictRejected(t *testing.T) {
	prof, _ := fixtures(t)
	c, cl := newServer(t, Config{Shards: 1})
	ctx := context.Background()
	if _, err := cl.PushProfile(ctx, prof); err != nil {
		t.Fatal(err)
	}
	// Same program, same mode, same shape — but the pusher counted
	// different events, so slot-wise summing would be meaningless.
	other := cloneProfile(prof)
	other.Events = []string{"cycles", "branches"}
	_, err := cl.PushProfile(ctx, other)
	if statusOf(t, err) != http.StatusConflict {
		t.Fatalf("want 409, got %v", err)
	}
	if c.Metrics().RejectedConflict != 1 {
		t.Fatalf("metrics: %+v", c.Metrics())
	}
	// The aggregate still answers with the original schema.
	merged, ok := c.MergedProfile(prof.Program)
	if !ok || merged.SchemaKey() != prof.SchemaKey() {
		t.Fatalf("aggregate schema %q, want %q", merged.SchemaKey(), prof.SchemaKey())
	}
}

// TestNamedMetricTable: /table/metrics renders each program's totals under
// the metric names its schema declares, and programs with disjoint schemas
// contribute disjoint columns.
func TestNamedMetricTable(t *testing.T) {
	prof, _ := fixtures(t)
	_, cl := newServer(t, Config{Shards: 2})
	ctx := context.Background()
	if _, err := cl.PushProfile(ctx, prof); err != nil {
		t.Fatal(err)
	}
	wide := &profile.Profile{
		Program: "wideprog", Mode: prof.Mode,
		Events: []string{"cycles", "branches", "icache-miss"},
		Procs: []*profile.ProcPaths{
			{ProcID: 0, Name: "main", NumPaths: 2, Entries: []profile.PathEntry{
				profile.NewEntry(0, 5, 500, 60, 7),
			}},
		},
	}
	if _, err := cl.PushProfile(ctx, wide); err != nil {
		t.Fatal(err)
	}
	out, err := cl.MetricTable(ctx, []string{prof.Program, "wideprog"})
	if err != nil {
		t.Fatal(err)
	}
	header := out[:strings.Index(out, "\n----")]
	for _, ev := range append(append([]string{}, prof.Events...), wide.Events...) {
		if !strings.Contains(header, ev) {
			t.Fatalf("column %q missing from header of:\n%s", ev, out)
		}
	}
	for _, want := range []string{prof.Program, "wideprog", "500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table misses %q:\n%s", want, out)
		}
	}
	// wideprog has no dcache-miss column; its row must show the blank
	// placeholder.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "wideprog") && !strings.Contains(line, "-") {
			t.Fatalf("wideprog row has no placeholder for unschemed columns: %q", line)
		}
	}
	// Unknown program: 404, same as the numbered tables.
	_, err = cl.MetricTable(ctx, []string{"nonesuch"})
	if statusOf(t, err) != http.StatusNotFound {
		t.Fatalf("want 404, got %v", err)
	}
}

func TestShapeConflictRejected(t *testing.T) {
	_, tree := fixtures(t)
	_, cl := newServer(t, Config{Shards: 1})
	ctx := context.Background()
	if _, err := cl.PushExport(ctx, tree.Export("compress")); err != nil {
		t.Fatal(err)
	}
	bad := tree.Export("compress")
	bad.NumProcs++
	_, err := cl.PushExport(ctx, bad)
	if statusOf(t, err) != http.StatusConflict {
		t.Fatalf("want 409, got %v", err)
	}
}

// TestSlowClientTimesOut: a client that stalls mid-body gets 408 instead
// of pinning an admission slot forever. Driven over raw TCP because the
// point is the server's behaviour while the body is still incomplete.
func TestSlowClientTimesOut(t *testing.T) {
	c, cl := newServer(t, Config{RequestTimeout: 50 * time.Millisecond})
	conn, err := net.Dial("tcp", strings.TrimPrefix(cl.BaseURL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Declare a large body, send four bytes, stall.
	_, err = io.WriteString(conn, "POST /ingest HTTP/1.1\r\nHost: collector\r\n"+
		"Content-Type: application/octet-stream\r\nContent-Length: 4096\r\n\r\nPPW1")
	if err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("server never timed the request out: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("want 408, got %d", resp.StatusCode)
	}
	if c.Metrics().RejectedTimeout != 1 {
		t.Fatalf("metrics: %+v", c.Metrics())
	}
}

// TestShutdownDrains: Shutdown waits for an in-flight push to finish
// merging, and everything after the drain is rejected with 503.
func TestShutdownDrains(t *testing.T) {
	prof, _ := fixtures(t)
	c, cl := newServer(t, Config{})
	ctx := context.Background()

	var body bytes.Buffer
	if err := wire.EncodeProfile(&body, prof); err != nil {
		t.Fatal(err)
	}
	data := body.Bytes()

	pr, pw := io.Pipe()
	resp := make(chan int, 1)
	go func() {
		r, err := cl.http().Post(cl.BaseURL+"/ingest", "application/octet-stream", pr)
		if err != nil {
			resp <- -1
			return
		}
		r.Body.Close()
		resp <- r.StatusCode
	}()
	// First half of the body, then hold the request in flight.
	if _, err := pw.Write(data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	for i := 0; c.Metrics().Inflight == 0; i++ {
		if i > 1000 {
			t.Fatal("ingest never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	shut := make(chan error, 1)
	go func() { shut <- c.Shutdown(ctx) }()
	select {
	case err := <-shut:
		t.Fatalf("Shutdown returned %v with a push still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Finish the body: the in-flight push must complete and merge.
	if _, err := pw.Write(data[len(data)/2:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if code := <-resp; code != http.StatusOK {
		t.Fatalf("in-flight push got %d, want 200", code)
	}
	if err := <-shut; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, ok := c.MergedProfile("compress"); !ok {
		t.Fatal("drained push was not merged")
	}
	// Everything after the drain: 503.
	_, err := cl.PushProfile(ctx, prof)
	if statusOf(t, err) != http.StatusServiceUnavailable {
		t.Fatalf("want 503 after drain, got %v", err)
	}
	hr, err := cl.http().Get(cl.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: %d, want 503", hr.StatusCode)
	}
}

// TestShutdownTimeout: a drain that cannot finish respects ctx.
func TestShutdownTimeout(t *testing.T) {
	c, cl := newServer(t, Config{})
	pr, pw := io.Pipe()
	defer pw.Close()
	go func() {
		resp, err := cl.http().Post(cl.BaseURL+"/ingest", "application/octet-stream", pr)
		if err == nil {
			resp.Body.Close()
		}
	}()
	pw.Write([]byte("PP"))
	for i := 0; c.Metrics().Inflight == 0; i++ {
		if i > 1000 {
			t.Fatal("ingest never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := c.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown ignored its context")
	}
}

// TestConcurrentPushAndQuery: pushes and table queries interleave without
// races (run under -race in CI) and every push lands in the aggregate.
func TestConcurrentPushAndQuery(t *testing.T) {
	prof, tree := fixtures(t)
	c, cl := newServer(t, Config{Shards: 4, MaxConcurrent: 8})
	ctx := context.Background()
	const pushers = 4
	const perPusher = 3

	var wg sync.WaitGroup
	errs := make(chan error, pushers*perPusher*2+pushers)
	for i := 0; i < pushers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perPusher; j++ {
				if _, err := cl.PushProfile(ctx, prof); err != nil {
					errs <- err
				}
				if _, err := cl.PushExport(ctx, tree.Export("compress")); err != nil {
					errs <- err
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perPusher; j++ {
				if _, err := cl.Table(ctx, 5, nil); err != nil {
					// Before the first profile lands there is nothing to
					// render; only transport errors are fatal.
					var ae *apiError
					if !errors.As(err, &ae) {
						errs <- err
					}
				}
				if _, err := cl.http().Get(cl.BaseURL + "/metrics"); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	total := pushers * perPusher
	m := c.Metrics()
	if int(m.IngestedProfiles) != total || int(m.IngestedCCTs) != total {
		t.Fatalf("ingested %d profiles / %d ccts, want %d each", m.IngestedProfiles, m.IngestedCCTs, total)
	}
	merged, _ := c.MergedProfile("compress")
	wf, _ := prof.Totals()
	gf, _ := merged.Totals()
	if gf != uint64(total)*wf {
		t.Fatalf("merged freq %d, want %d", gf, uint64(total)*wf)
	}
	ex, _ := c.MergedExport("compress")
	if got, want := ex.Stats(), tree.ComputeStats(); got != want {
		t.Fatalf("merged stats diverged\n got %+v\nwant %+v", got, want)
	}
}
