package collector

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pathprof/internal/experiments"
	"pathprof/internal/instrument"
	"pathprof/internal/workload"
)

// TestEndToEndShardedCollection is the acceptance test for the collection
// tier: k concurrent push clients, each running its own instrumented
// executions and uploading them in wire format to a live collector, must
// yield a Table 3 byte-identical to the in-process sharded collection
// path (Session.CollectSharded via Table3Sharded) with the same shard
// count, and a Table 5 byte-identical to Session.Table5. Both hold
// because the workloads are deterministic — every push carries a
// structurally identical tree/profile, and merging k of them preserves
// shape statistics exactly while scaling only the counters.
func TestEndToEndShardedCollection(t *testing.T) {
	const k = 4 // pushers == shards, matching Table3Sharded(k)
	programs := []string{"compress", "objdb"}

	s := experiments.NewSession(workload.Test)
	var ws []workload.Workload
	for _, name := range programs {
		w, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %q", name)
		}
		ws = append(ws, w)
	}
	s.Workloads = ws

	// Ground truth, computed locally.
	rows, err := s.Table3Sharded(k)
	if err != nil {
		t.Fatal(err)
	}
	var wantT3 bytes.Buffer
	experiments.RenderTable3(rows, &wantT3)
	t5, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	var wantT5 bytes.Buffer
	experiments.RenderTable5(t5, &wantT5)

	// Live collector plus k concurrent push clients. Every pusher runs
	// its own fresh instrumented executions (no shared cached cell) and
	// uploads through the same client code cmd/ppd uses.
	c := New(Config{Shards: k})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, k*len(programs)*2)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := &Client{BaseURL: srv.URL, HTTPClient: srv.Client()}
			for _, w := range ws {
				tree, err := s.RunFresh(ctx, w, instrument.ModeContextFlow,
					experiments.StandardEvents[0], experiments.StandardEvents[1])
				if err == nil {
					_, err = cl.PushRun(ctx, tree)
				}
				if err != nil {
					errs <- err
					continue
				}
				prof, err := s.RunFresh(ctx, w, instrument.ModePathHW,
					experiments.StandardEvents[0], experiments.StandardEvents[1])
				if err == nil {
					_, err = cl.PushRun(ctx, prof)
				}
				if err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	cl := &Client{BaseURL: srv.URL, HTTPClient: srv.Client()}
	gotT3, err := cl.Table(ctx, 3, programs)
	if err != nil {
		t.Fatal(err)
	}
	if gotT3 != wantT3.String() {
		t.Errorf("Table 3 from the collector differs from sharded local collection\n--- collector ---\n%s\n--- local ---\n%s",
			gotT3, wantT3.String())
	}
	gotT5, err := cl.Table(ctx, 5, programs)
	if err != nil {
		t.Fatal(err)
	}
	if gotT5 != wantT5.String() {
		t.Errorf("Table 5 from the collector differs from the local session\n--- collector ---\n%s\n--- local ---\n%s",
			gotT5, wantT5.String())
	}
	// Table 4 totals scale with k, so check shape rather than bytes.
	gotT4, err := cl.Table(ctx, 4, programs)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range programs {
		if !strings.Contains(gotT4, name) {
			t.Errorf("Table 4 misses %s:\n%s", name, gotT4)
		}
	}
	m := c.Metrics()
	if want := uint64(k * len(programs)); m.IngestedCCTs != want || m.IngestedProfiles != want {
		t.Fatalf("ingested %d ccts / %d profiles, want %d each", m.IngestedCCTs, m.IngestedProfiles, want)
	}
}
