package collector

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"pathprof/internal/store"
	"pathprof/internal/wire"
)

// AckMode says when an ingest ack is sent relative to durability.
type AckMode int

const (
	// AckNone acks after the in-memory fold: fast, zero dependencies,
	// and everything is lost on restart. The default.
	AckNone AckMode = iota
	// AckBatch acks only after the push's record is group-committed to
	// the mounted store: the ack means the push survives kill -9.
	AckBatch
)

func (m AckMode) String() string {
	if m == AckBatch {
		return "batch"
	}
	return "none"
}

// ParseAckMode parses the -durability flag values.
func ParseAckMode(s string) (AckMode, error) {
	switch s {
	case "", "none":
		return AckNone, nil
	case "batch":
		return AckBatch, nil
	}
	return AckNone, fmt.Errorf("unknown durability mode %q (want none or batch)", s)
}

// Store is the persistence surface the collector mounts. *store.Log
// implements it; the interface keeps the in-memory collector free of
// any storage dependency and lets tests substitute failure-injecting
// stores.
type Store interface {
	// Ingest makes one push durable and folds it through apply,
	// deduplicating by the non-zero push id (dup == true means the push
	// was already applied and must be acked without re-folding).
	Ingest(ctx context.Context, id uint64, payload []byte, apply func([]byte) error) (dup bool, err error)
	// SnapshotNow dumps the mounted state and prunes covered segments.
	SnapshotNow() error
	// CompactNow rewrites sealed segments as pre-merged records.
	CompactNow() error
	// Metrics reports the store's durability counters.
	Metrics() store.Metrics
	// Close drains in-flight appends and seals the log.
	Close() error
}

// MountStore attaches s: every subsequent ingest is appended and
// group-committed before it is acked (AckBatch). Mount before serving;
// the collector does not close the store — the opener owns it.
func (c *Collector) MountStore(s Store) {
	c.store = s
	c.ackMode = AckBatch
}

// Store returns the mounted store, or nil for an in-memory collector.
func (c *Collector) Store() Store { return c.store }

// AckMode returns the collector's acking mode.
func (c *Collector) AckMode() AckMode { return c.ackMode }

// OpenStore opens (or recovers) the store directory with the
// collector's fold/snapshot/compact callbacks wired in, replaying any
// surviving state into this collector, and mounts the log. opts.Apply,
// opts.Snapshot and opts.Compact are overwritten.
func (c *Collector) OpenStore(dir string, opts store.Options) (*store.Log, store.Recovery, error) {
	opts.Apply = c.ApplyPayload
	opts.Snapshot = c.SnapshotFrame
	opts.Compact = c.CompactPayloads
	l, rec, err := store.Open(dir, opts)
	if err != nil {
		return nil, rec, err
	}
	c.MountStore(l)
	return l, rec, nil
}

// Checkpoint snapshots the mounted store (bounding future replay to
// ingests after this point), or does nothing for in-memory collectors.
// Relays call it after a fully flushed Take so the spool does not
// replay — and re-push — envelopes already delivered upstream.
func (c *Collector) Checkpoint() error {
	if c.store == nil {
		return nil
	}
	return c.store.SnapshotNow()
}

// ApplyPayload folds one raw pushed payload — a single wire envelope or
// a version-3 batched frame — into the shard aggregates. This is the
// store's replay callback: re-applying the log through it reproduces
// the in-memory state the acks described.
func (c *Collector) ApplyPayload(data []byte) error {
	_, err := c.applyPayload(data)
	return err
}

// applyPayload folds one payload and describes what it carried.
func (c *Collector) applyPayload(data []byte) (IngestResponse, error) {
	if wire.IsFrame(data) {
		profiles, ccts, err := c.IngestFrame(data)
		if err != nil {
			return IngestResponse{}, err
		}
		return IngestResponse{Kind: "batch", Envelopes: profiles + ccts, Profiles: profiles, CCTs: ccts}, nil
	}
	pl, err := wire.Decode(bytes.NewReader(data))
	if err != nil {
		return IngestResponse{}, err
	}
	if pl.Program() == "" {
		return IngestResponse{}, errors.New("payload names no program")
	}
	switch pl.Kind {
	case wire.KindProfile:
		err = c.ingestProfile(pl.Profile)
	case wire.KindCCT:
		err = c.ingestExport(pl.Export)
	}
	if err != nil {
		return IngestResponse{}, err
	}
	return IngestResponse{Kind: pl.Kind.String(), Program: pl.Program()}, nil
}

// SnapshotFrame encodes every program's fully merged aggregates as one
// version-3 batched frame — the store's snapshot callback. Applying the
// frame to an empty collector reproduces the merged state exactly
// (folding is associative and commutative, so the pre-merge does not
// change any table). Returns nil when nothing has been aggregated.
func (c *Collector) SnapshotFrame() ([]byte, error) {
	progs := c.Programs()
	if len(progs) == 0 {
		return nil, nil
	}
	bw := wire.NewBatchWriter()
	for _, name := range progs {
		if p, ok := c.MergedProfile(name); ok {
			if err := bw.AddProfile(p); err != nil {
				return nil, fmt.Errorf("snapshot %s: %w", name, err)
			}
		}
		if ex, ok := c.MergedExport(name); ok {
			if err := bw.AddExport(ex); err != nil {
				return nil, fmt.Errorf("snapshot %s: %w", name, err)
			}
		}
	}
	if bw.Items() == 0 {
		return nil, nil
	}
	return append([]byte(nil), bw.Frame()...), nil
}

// CompactPayloads pre-merges one sealed segment's payloads into a
// single frame — the store's compaction callback. The payloads fold
// into a scratch single-shard collector exactly as replay would fold
// them (per-payload errors skipped the same way), so replaying the
// merged frame reproduces the same aggregate as replaying the originals.
func (c *Collector) CompactPayloads(payloads [][]byte) ([]byte, error) {
	scratch := New(Config{Shards: 1})
	for _, p := range payloads {
		// Errors deliberately ignored: replay also counts-and-skips
		// payloads the fold rejects, and a rejected payload contributes
		// nothing to the aggregate either way.
		_ = scratch.ApplyPayload(p)
	}
	return scratch.SnapshotFrame()
}
