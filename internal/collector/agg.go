package collector

import (
	"fmt"

	"pathprof/internal/cct"
	"pathprof/internal/flat"
	"pathprof/internal/profile"
	"pathprof/internal/wire"
)

// This file holds the shard-resident aggregate forms. Instead of keeping
// one merged profile.Profile / cct.Export per program and rebuilding it on
// every push (clone + Merge, or MergeExports building a whole new tree),
// each shard folds pushes in place into flat scratch aggregates:
//
//   - profAgg keys path entries by sum through a flat.Table, so folding a
//     decoded batch item is hash-probe + add per path, no allocation once
//     the path set is stable;
//   - cctAgg mirrors cct.MergeExports node for node, but mutates the
//     existing tree (metrics +=, PathCounts.Add, slot-state fold) instead
//     of building a new one, allocating only when a push grafts records
//     the aggregate has not seen.
//
// Queries snapshot an aggregate under the shard lock into a fresh
// profile.Profile / cct.Export, so readers never share mutable state with
// the fold path. The fold rules replicate profile.(*Profile).Merge and
// cct.MergeExports exactly — the correctness oracle is byte-identity of
// the rendered tables against Table3Sharded/Table5 at any batch size and
// shard count (see TestBatchIngestMatchesSingles and the relay e2e).

// --- profile aggregates ---

// procAgg is one procedure's folded path table in column form: row j is
// (sums[j], freqs[j], metrics[j*width:(j+1)*width]), indexed by path sum.
type procAgg struct {
	procID   int
	name     string
	numPaths int64
	k        int // effective iteration degree; 0 in classic profiles
	index    *flat.Table // path sum -> row
	sums     []int64
	freqs    []uint64
	metrics  []uint64
}

// profAgg is one program's folded flow-sensitive profile.
type profAgg struct {
	program string
	mode    string
	events  []string
	k       int    // iteration degree; 0 when classic (see aggK)
	schema  string // SchemaKey of (k, events)
	procs   []*procAgg
}

// aggK normalizes an iteration degree for aggregation: 0 and 1 both mean
// classic single-iteration paths and must compare (and fold) as equal.
// Degrees >1 are distinct id spaces — a k=2 push into a k=3 aggregate is
// a schema conflict, never a silent merge of unrelated path ids.
func aggK(k int) int {
	if k <= 1 {
		return 0
	}
	return k
}

// newProfAgg adopts a freshly decoded profile as the aggregate seed.
func newProfAgg(p *profile.Profile) *profAgg {
	a := &profAgg{
		program: p.Program,
		mode:    p.Mode,
		events:  append([]string(nil), p.Events...),
		k:       aggK(p.K),
	}
	a.schema = profile.SchemaKeyFor(a.k, a.events)
	w := len(a.events)
	a.procs = make([]*procAgg, len(p.Procs))
	for i, pp := range p.Procs {
		pa := &procAgg{
			procID:   pp.ProcID,
			name:     pp.Name,
			numPaths: pp.NumPaths,
			k:        pp.K,
			index:    flat.New(len(pp.Entries)),
			sums:     make([]int64, 0, len(pp.Entries)),
			freqs:    make([]uint64, 0, len(pp.Entries)),
			metrics:  make([]uint64, 0, len(pp.Entries)*w),
		}
		for j := range pp.Entries {
			e := &pp.Entries[j]
			pa.index.Set(e.Sum, int64(len(pa.sums)))
			pa.sums = append(pa.sums, e.Sum)
			pa.freqs = append(pa.freqs, e.Freq)
			for k := 0; k < w; k++ {
				pa.metrics = append(pa.metrics, e.Metric(k))
			}
		}
		a.procs[i] = pa
	}
	return a
}

// newProfAggBatch seeds an aggregate from a decoded batch item.
func newProfAggBatch(bp *wire.BatchProfile) *profAgg {
	a := &profAgg{
		program: string(bp.Program),
		mode:    string(bp.Mode),
		events:  make([]string, len(bp.Events)),
	}
	for i, ev := range bp.Events {
		a.events[i] = string(ev)
	}
	a.k = aggK(bp.K)
	a.schema = profile.SchemaKeyFor(a.k, a.events)
	w := len(a.events)
	a.procs = make([]*procAgg, len(bp.Procs))
	for i := range bp.Procs {
		pr := &bp.Procs[i]
		pa := &procAgg{
			procID:   pr.ProcID,
			name:     string(pr.Name),
			numPaths: pr.NumPaths,
			k:        pr.K,
			index:    flat.New(pr.N),
			sums:     append([]int64(nil), bp.Sums[pr.Off:pr.Off+pr.N]...),
			freqs:    append([]uint64(nil), bp.Freqs[pr.Off:pr.Off+pr.N]...),
			metrics:  append([]uint64(nil), bp.Metrics[pr.Off*w:(pr.Off+pr.N)*w]...),
		}
		for j, s := range pa.sums {
			pa.index.Set(s, int64(j))
		}
		a.procs[i] = pa
	}
	return a
}

// checkShape validates mode, schema and procedure layout before any
// mutation, reproducing the exact rejection messages of the old
// clone-and-merge path (a rejected push must leave the aggregate
// untouched, which for an in-place fold means validating up front).
func (a *profAgg) checkShape(mode, schema string, numProcs int, procID func(int) int) error {
	if a.mode != mode {
		return &conflictError{fmt.Errorf("profile mode %q conflicts with aggregated mode %q", mode, a.mode)}
	}
	if a.schema != schema {
		return &conflictError{fmt.Errorf("profile metric schema %q conflicts with aggregated schema %q", schema, a.schema)}
	}
	if len(a.procs) != numProcs {
		return &conflictError{fmt.Errorf("profile: merge shape mismatch: %d vs %d procs", len(a.procs), numProcs)}
	}
	for i, pa := range a.procs {
		if pa.procID != procID(i) {
			return &conflictError{fmt.Errorf("profile: merge proc mismatch at %d", i)}
		}
	}
	return nil
}

// foldRow adds one path observation to the procedure (hash hit: pure
// adds; miss: append a row).
func (pa *procAgg) foldRow(sum int64, freq uint64, metrics []uint64) {
	if j, ok := pa.index.Get(sum); ok {
		pa.freqs[j] += freq
		base := int(j) * len(metrics)
		for k, m := range metrics {
			pa.metrics[base+k] += m
		}
		return
	}
	pa.index.Set(sum, int64(len(pa.sums)))
	pa.sums = append(pa.sums, sum)
	pa.freqs = append(pa.freqs, freq)
	pa.metrics = append(pa.metrics, metrics...)
}

// fold merges a materialized profile into the aggregate (the v1/v2
// single-envelope path).
func (a *profAgg) fold(p *profile.Profile) error {
	err := a.checkShape(p.Mode, p.SchemaKey(), len(p.Procs), func(i int) int { return p.Procs[i].ProcID })
	if err != nil {
		return err
	}
	w := len(a.events)
	var row []uint64
	if w > 0 {
		row = make([]uint64, w)
	}
	for i, pp := range p.Procs {
		pa := a.procs[i]
		for j := range pp.Entries {
			e := &pp.Entries[j]
			for k := 0; k < w; k++ {
				row[k] = e.Metric(k)
			}
			pa.foldRow(e.Sum, e.Freq, row)
		}
	}
	return nil
}

// foldBatch merges a decoded batch item in place. Steady state (stable
// path set per program) performs no allocation: the shape check compares
// frame bytes against aggregate strings directly, and every row lands in
// an existing slot.
func (a *profAgg) foldBatch(bp *wire.BatchProfile) error {
	if a.mode != string(bp.Mode) { // comparison does not allocate
		return a.checkShapeBatch(bp)
	}
	if a.k != aggK(bp.K) {
		return a.checkShapeBatch(bp)
	}
	if len(a.events) != len(bp.Events) {
		return a.checkShapeBatch(bp)
	}
	for i, ev := range bp.Events {
		if a.events[i] != string(ev) {
			return a.checkShapeBatch(bp)
		}
	}
	if len(a.procs) != len(bp.Procs) {
		return a.checkShapeBatch(bp)
	}
	for i := range bp.Procs {
		if a.procs[i].procID != bp.Procs[i].ProcID {
			return a.checkShapeBatch(bp)
		}
	}
	w := len(a.events)
	for i := range bp.Procs {
		pr := &bp.Procs[i]
		pa := a.procs[i]
		for j := 0; j < pr.N; j++ {
			row := pr.Off + j
			pa.foldRow(bp.Sums[row], bp.Freqs[row], bp.Metrics[row*w:(row+1)*w])
		}
	}
	return nil
}

// checkShapeBatch rebuilds the failing batch item's identity as strings
// (error paths may allocate) and returns the precise conflict.
func (a *profAgg) checkShapeBatch(bp *wire.BatchProfile) error {
	events := make([]string, len(bp.Events))
	for i, ev := range bp.Events {
		events[i] = string(ev)
	}
	return a.checkShape(string(bp.Mode), profile.SchemaKeyFor(aggK(bp.K), events), len(bp.Procs),
		func(i int) int { return bp.Procs[i].ProcID })
}

// snapshot materializes the aggregate as a fresh profile. Entries are
// sorted by path sum — the order every merged profile has (Merge sorts
// after folding, and producers emit sorted profiles).
func (a *profAgg) snapshot() *profile.Profile {
	p := &profile.Profile{
		Program: a.program,
		Mode:    a.mode,
		Events:  append([]string(nil), a.events...),
		K:       a.k,
	}
	w := len(a.events)
	p.Procs = make([]*profile.ProcPaths, len(a.procs))
	for i, pa := range a.procs {
		pp := &profile.ProcPaths{ProcID: pa.procID, Name: pa.name, NumPaths: pa.numPaths, K: pa.k}
		pp.Entries = make([]profile.PathEntry, len(pa.sums))
		for j := range pa.sums {
			e := &pp.Entries[j]
			e.Sum = pa.sums[j]
			e.Freq = pa.freqs[j]
			if w > 0 {
				e.Metrics = pp.NewMetrics(w)
				copy(e.Metrics, pa.metrics[j*w:(j+1)*w])
			}
		}
		pp.Sort()
		p.Procs[i] = pp
	}
	return p
}

// --- CCT aggregates ---

// aggNode is one record of the folded calling context tree.
type aggNode struct {
	proc      int32
	metrics   []int64
	pc        *flat.Table
	children  []*aggNode
	backedges []*aggNode // resolved targets (ancestors)
	size      uint64
	slots     []cct.SlotStat
	snapID    int // transient preorder id, valid only during a snapshot
}

// cctAgg is one program's folded CCT.
type cctAgg struct {
	program          string
	numProcs         int
	distinguishSites bool
	numMetrics       int
	hasStructure     bool
	sizeBytes        uint64
	listElems        int
	root             *aggNode
}

// ancestors is the fold-time proc -> nearest-enclosing-record map,
// reused across folds (procs are dense small integers, so a slice
// replaces cct.MergeExports' map).
type ancestors []*aggNode

func (sc *foldScratch) ancestorsFor(numProcs int) ancestors {
	if cap(sc.anc) < numProcs {
		sc.anc = make([]*aggNode, numProcs)
	}
	sc.anc = sc.anc[:numProcs]
	for i := range sc.anc {
		sc.anc[i] = nil
	}
	return sc.anc
}

// newCCTAgg seeds an aggregate from a decoded batch item by grafting the
// whole tree.
func newCCTAgg(bc *wire.BatchCCT, sc *foldScratch) (*cctAgg, error) {
	a := &cctAgg{
		program:          string(bc.Program),
		numProcs:         bc.NumProcs,
		distinguishSites: bc.DistinguishSites,
		numMetrics:       bc.NumMetrics,
		hasStructure:     bc.HasStructure,
		sizeBytes:        bc.SizeBytes,
		listElems:        bc.ListElems,
	}
	a.root = &aggNode{proc: -1, pc: flat.New(0)}
	anc := sc.ancestorsFor(a.numProcs)
	var grafted uint64
	for _, cid := range bc.Children(0) {
		ch, err := a.graft(bc, cid, anc, &grafted)
		if err != nil {
			return nil, err
		}
		a.root.children = append(a.root.children, ch)
	}
	return a, nil
}

// graft deep-copies the batch subtree rooted at node id into new
// aggregate records, resolving backedges against anc.
func (a *cctAgg) graft(bc *wire.BatchCCT, id int32, anc ancestors, grafted *uint64) (*aggNode, error) {
	bn := &bc.Nodes[id-1]
	if bn.Proc < 0 || int(bn.Proc) >= a.numProcs {
		return nil, fmt.Errorf("cct node proc %d out of range (program has %d procs)", bn.Proc, a.numProcs)
	}
	n := &aggNode{proc: bn.Proc, size: bn.Size}
	if bn.MetN > 0 {
		n.metrics = append([]int64(nil), bc.Metrics[bn.MetOff:bn.MetOff+bn.MetN]...)
	}
	n.pc = flat.New(int(bn.PCN))
	for k := int32(0); k < bn.PCN; k++ {
		n.pc.Set(bc.PCSums[bn.PCOff+k], bc.PCCounts[bn.PCOff+k])
	}
	if bn.SlotN > 0 {
		n.slots = append([]cct.SlotStat(nil), bc.Slots[bn.SlotOff:bn.SlotOff+bn.SlotN]...)
	}
	*grafted += bn.Size

	// Install self before resolving backedges: a self-recursive edge
	// targets this record (as in MergeExports, which installs the node in
	// ancestors before resolving).
	prev := anc[n.proc]
	anc[n.proc] = n
	for _, be := range bc.Backedges {
		if be.From != id {
			continue
		}
		tp := bc.Nodes[be.To-1].Proc
		if tp < 0 || int(tp) >= a.numProcs {
			continue
		}
		if t := anc[tp]; t != nil {
			n.backedges = append(n.backedges, t)
		}
		// No matching ancestor: drop the backedge, as MergeExports does.
	}
	for _, cid := range bc.Children(id) {
		ch, err := a.graft(bc, cid, anc, grafted)
		if err != nil {
			anc[n.proc] = prev
			return nil, err
		}
		n.children = append(n.children, ch)
	}
	anc[n.proc] = prev
	return n, nil
}

// foldBatch merges a decoded batch item into the aggregate in place,
// replicating cct.MergeExports record for record. Same-shape pushes (the
// sharded-collection steady state) allocate nothing: metrics and path
// counts fold into existing storage and no records are grafted.
func (a *cctAgg) foldBatch(bc *wire.BatchCCT, sc *foldScratch) error {
	if a.numProcs != bc.NumProcs || a.distinguishSites != bc.DistinguishSites {
		return &conflictError{fmt.Errorf("cct: merge shape mismatch: %d/%v procs vs %d/%v",
			a.numProcs, a.distinguishSites, bc.NumProcs, bc.DistinguishSites)}
	}
	if a.program == "" {
		a.program = string(bc.Program)
	}
	a.hasStructure = a.hasStructure && bc.HasStructure
	anc := sc.ancestorsFor(a.numProcs)
	var grafted uint64
	if err := a.foldNode(a.root, bc, 0, anc, &grafted); err != nil {
		return err
	}
	a.sizeBytes += grafted
	return nil
}

// foldNode merges batch node yID (0 = the implicit root) into x.
func (a *cctAgg) foldNode(x *aggNode, bc *wire.BatchCCT, yID int32, anc ancestors, grafted *uint64) error {
	if yID > 0 {
		bn := &bc.Nodes[yID-1]
		for k := int32(0); k < bn.MetN; k++ {
			m := bc.Metrics[bn.MetOff+k]
			if int(k) < len(x.metrics) {
				x.metrics[k] += m
			} else {
				x.metrics = append(x.metrics, m)
			}
		}
		for k := int32(0); k < bn.PCN; k++ {
			x.pc.Add(bc.PCSums[bn.PCOff+k], bc.PCCounts[bn.PCOff+k])
		}
		// x.size stays (merge keeps x's record size).
		x.slots = foldSlots(x.slots, bc.Slots[bn.SlotOff:bn.SlotOff+bn.SlotN])
	}

	// Install self before backedge resolution and child folds.
	var prev *aggNode
	if x.proc >= 0 && int(x.proc) < len(anc) {
		prev = anc[x.proc]
		anc[x.proc] = x
		defer func() { anc[x.proc] = prev }()
	}

	// Union backedges by target procedure with multiplicity: x's stay as
	// they are; each of y's either consumes one of x's with the same
	// target proc or appends a new edge resolved against the ancestors.
	if yID > 0 {
		nxBack := len(x.backedges)
		for bi, be := range bc.Backedges {
			if be.From != yID {
				continue
			}
			tp := bc.Nodes[be.To-1].Proc
			if tp < 0 || int(tp) >= a.numProcs {
				continue
			}
			matched := 0
			for _, xb := range x.backedges[:nxBack] {
				if xb.proc == tp {
					matched++
				}
			}
			seen := 0
			for _, pe := range bc.Backedges[:bi] {
				if pe.From == yID && bc.Nodes[pe.To-1].Proc == tp {
					seen++
				}
			}
			if seen < matched {
				continue // paired with one of x's edges
			}
			if t := anc[tp]; t != nil {
				x.backedges = append(x.backedges, t)
			}
		}
	}

	// Children match by procedure within the parent; site-distinguished
	// trees can repeat a procedure under one parent, which falls back to
	// positional pairing (both rules exactly as MergeExports).
	ys := bc.Children(yID)
	nx := len(x.children)
	xs := x.children[:nx]
	dup := false
	for i := 1; i < len(ys) && !dup; i++ {
		pi := bc.Nodes[ys[i]-1].Proc
		for j := 0; j < i; j++ {
			if bc.Nodes[ys[j]-1].Proc == pi {
				dup = true
				break
			}
		}
	}
	if !dup {
		for i, cx := range xs {
			first := true
			for _, p := range xs[:i] {
				if p.proc == cx.proc {
					first = false
					break
				}
			}
			if !first {
				continue // a later duplicate-proc x child merges with nothing
			}
			for _, cid := range ys {
				if bc.Nodes[cid-1].Proc == cx.proc {
					if err := a.foldNode(cx, bc, cid, anc, grafted); err != nil {
						return err
					}
					break
				}
			}
		}
		for _, cid := range ys {
			cp := bc.Nodes[cid-1].Proc
			found := false
			for _, cx := range xs {
				if cx.proc == cp {
					found = true
					break
				}
			}
			if !found {
				ch, err := a.graft(bc, cid, anc, grafted)
				if err != nil {
					return err
				}
				x.children = append(x.children, ch)
			}
		}
	} else {
		for i := 0; i < len(xs) || i < len(ys); i++ {
			switch {
			case i < len(xs) && i < len(ys):
				if err := a.foldNode(xs[i], bc, ys[i], anc, grafted); err != nil {
					return err
				}
			case i < len(ys):
				ch, err := a.graft(bc, ys[i], anc, grafted)
				if err != nil {
					return err
				}
				x.children = append(x.children, ch)
			}
		}
	}
	return nil
}

// foldSlots folds y's per-site states into x's in place, with the same
// one-path rules as cct.mergeSlotStats: a site stays "one path" only if
// both sides saw the same single prefix.
func foldSlots(xs []cct.SlotStat, ys []cct.SlotStat) []cct.SlotStat {
	for len(xs) < len(ys) {
		xs = append(xs, cct.SlotStat{})
	}
	for i := range ys {
		s := &xs[i]
		s.Used = s.Used || ys[i].Used
		switch ys[i].PathState {
		case 1:
			switch s.PathState {
			case 0:
				s.PathState = 1
				s.PathPrefix = ys[i].PathPrefix
			case 1:
				if s.PathPrefix != ys[i].PathPrefix {
					s.PathState = 2
					s.PathPrefix = 0
				}
			}
		case 2:
			s.PathState = 2
			s.PathPrefix = 0
		}
	}
	return xs
}

// snapshot materializes the aggregate as a fresh export with preorder
// node IDs, sharing no mutable state with the aggregate.
func (a *cctAgg) snapshot() *cct.Export {
	ex := &cct.Export{
		NumProcs:         a.numProcs,
		DistinguishSites: a.distinguishSites,
		NumMetrics:       a.numMetrics,
		Program:          a.program,
		HasStructure:     a.hasStructure,
		Nodes:            map[int]*cct.ExportedNode{},
	}
	if a.hasStructure {
		ex.SizeBytes = a.sizeBytes
		ex.ListElems = a.listElems
	}
	next := 1
	var walk func(an *aggNode, parentID int) *cct.ExportedNode
	walk = func(an *aggNode, parentID int) *cct.ExportedNode {
		id := 0
		if parentID >= 0 {
			id = next
			next++
		}
		an.snapID = id
		n := &cct.ExportedNode{
			ID:         id,
			ParentID:   max(parentID, 0),
			Proc:       int(an.proc),
			PathCounts: an.pc.Clone(),
			Size:       an.size,
		}
		if len(an.metrics) > 0 {
			n.Metrics = append([]int64(nil), an.metrics...)
		}
		if len(an.slots) > 0 {
			n.Slots = append([]cct.SlotStat(nil), an.slots...)
		}
		// Backedge targets are ancestors, so their preorder IDs are
		// already assigned when the referencing node is walked.
		for _, t := range an.backedges {
			n.Backedges = append(n.Backedges, t.snapID)
		}
		ex.Nodes[id] = n
		for _, ch := range an.children {
			n.Children = append(n.Children, walk(ch, id))
		}
		return n
	}
	ex.Root = walk(a.root, -1)
	return ex
}
