package collector

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"pathprof/internal/analysis"
	"pathprof/internal/experiments"
	"pathprof/internal/report"
	"pathprof/internal/wire"
)

// Handler returns the collector's HTTP surface:
//
//	POST /ingest         one wire envelope (profile or CCT export)
//	GET  /table/3        CCT statistics from merged exports
//	GET  /table/4        hot paths from merged profiles
//	GET  /table/5        hot procedures from merged profiles
//	GET  /table/metrics  per-program totals under named metric columns
//	GET  /programs       JSON list of aggregated programs
//	GET  /metrics        JSON counters
//	GET  /healthz        liveness (503 while draining)
//
// The table endpoints accept ?programs=a,b to select and order rows;
// the default is every aggregated program in sorted order.
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", c.handleIngest)
	mux.HandleFunc("GET /table/3", c.handleTable3)
	mux.HandleFunc("GET /table/4", c.handleTable4)
	mux.HandleFunc("GET /table/5", c.handleTable5)
	mux.HandleFunc("GET /table/metrics", c.handleTableNamedMetrics)
	mux.HandleFunc("GET /programs", c.handlePrograms)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	return mux
}

// IngestResponse is the JSON body of a successful push. Batched frames
// additionally report how many envelopes of each kind the frame carried
// (Kind is "batch" and Program is empty: one frame may span programs).
type IngestResponse struct {
	Kind      string `json:"kind"`
	Program   string `json:"program,omitempty"`
	Envelopes int    `json:"envelopes,omitempty"`
	Profiles  int    `json:"profiles,omitempty"`
	CCTs      int    `json:"ccts,omitempty"`
}

func (c *Collector) handleIngest(w http.ResponseWriter, r *http.Request) {
	done, err := c.begin()
	if err != nil {
		c.rejectedDraining.Add(1)
		http.Error(w, "collector is draining", http.StatusServiceUnavailable)
		return
	}
	defer done()

	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.RequestTimeout)
	defer cancel()

	// Backpressure: when every concurrency slot is busy and the wait
	// queue is full, shed the push immediately with 429 + Retry-After
	// instead of letting a convoy build up toward the request timeout.
	// Well-behaved clients (collector.Client with a RetryPolicy) back
	// off and retry.
	if q := c.queueDepth.Add(1); q > int64(c.cfg.MaxQueue) {
		c.queueDepth.Add(-1)
		c.rejectedQueue.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(c.cfg.RetryAfter)))
		http.Error(w, "ingest queue is full", http.StatusTooManyRequests)
		return
	}

	// Admission: wait for a concurrency slot, but never longer than the
	// request timeout.
	select {
	case c.sem <- struct{}{}:
		c.queueDepth.Add(-1)
		defer func() { <-c.sem }()
	case <-ctx.Done():
		c.queueDepth.Add(-1)
		c.rejectedBusy.Add(1)
		http.Error(w, "too many concurrent pushes", http.StatusServiceUnavailable)
		return
	}

	// Read the body on a helper goroutine so a dribbling client hits the
	// request timeout instead of pinning the slot; the abandoned reader
	// unblocks when the server tears the connection down.
	body := http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	type readResult struct {
		data []byte
		err  error
	}
	ch := make(chan readResult, 1)
	go func() {
		data, err := io.ReadAll(body)
		ch <- readResult{data, err}
	}()
	var data []byte
	select {
	case res := <-ch:
		if res.err != nil {
			var mbe *http.MaxBytesError
			if errors.As(res.err, &mbe) {
				c.rejectedTooBig.Add(1)
				abortBody(w)
				http.Error(w, "profile exceeds the size limit", http.StatusRequestEntityTooLarge)
			} else {
				c.rejectedBad.Add(1)
				http.Error(w, "reading body: "+res.err.Error(), http.StatusBadRequest)
			}
			return
		}
		data = res.data
	case <-ctx.Done():
		c.rejectedTimeout.Add(1)
		abortBody(w)
		http.Error(w, "push timed out", http.StatusRequestTimeout)
		return
	}

	// Batched frames take the zero-copy fold path: items decode into
	// pooled scratch and fold straight into the shard aggregates without
	// materializing intermediate Profile/Export values.
	if wire.IsFrame(data) {
		profiles, ccts, err := c.IngestFrame(data)
		if err != nil {
			var ce *conflictError
			if errors.As(err, &ce) {
				c.rejectedConflict.Add(1)
				http.Error(w, err.Error(), http.StatusConflict)
			} else {
				c.rejectedBad.Add(1)
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return
		}
		c.ingestedBytes.Add(uint64(len(data)))
		writeJSON(w, IngestResponse{Kind: "batch", Envelopes: profiles + ccts, Profiles: profiles, CCTs: ccts})
		return
	}

	pl, err := wire.Decode(bytes.NewReader(data))
	if err != nil {
		c.rejectedBad.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if pl.Program() == "" {
		c.rejectedBad.Add(1)
		http.Error(w, "payload names no program", http.StatusBadRequest)
		return
	}
	switch pl.Kind {
	case wire.KindProfile:
		err = c.ingestProfile(pl.Profile)
	case wire.KindCCT:
		err = c.ingestExport(pl.Export)
	}
	if err != nil {
		var ce *conflictError
		if errors.As(err, &ce) {
			c.rejectedConflict.Add(1)
			http.Error(w, err.Error(), http.StatusConflict)
		} else {
			c.rejectedBad.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	c.ingestedBytes.Add(uint64(len(data)))
	writeJSON(w, IngestResponse{Kind: pl.Kind.String(), Program: pl.Program()})
}

// retryAfterSeconds rounds d up to whole seconds for the Retry-After
// header (which has no sub-second form), with a 1s floor.
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// abortBody forces pending and post-handler reads of the request body to
// fail immediately. Without this the server would stall the error
// response behind draining the rest of a slow or oversized upload.
func abortBody(w http.ResponseWriter) {
	http.NewResponseController(w).SetReadDeadline(time.Now())
}

// requestedPrograms resolves the ?programs= selection (explicit order)
// or defaults to every aggregated program sorted.
func (c *Collector) requestedPrograms(r *http.Request) []string {
	if q := r.URL.Query().Get("programs"); q != "" {
		var out []string
		for _, name := range strings.Split(q, ",") {
			if name = strings.TrimSpace(name); name != "" {
				out = append(out, name)
			}
		}
		return out
	}
	return c.Programs()
}

func (c *Collector) handleTable3(w http.ResponseWriter, r *http.Request) {
	var rows []experiments.Table3Row
	for _, name := range c.requestedPrograms(r) {
		ex, ok := c.MergedExport(name)
		if !ok {
			http.Error(w, "no CCT aggregate for "+name, http.StatusNotFound)
			return
		}
		rows = append(rows, experiments.Table3Row{Name: name, Stats: ex.Stats()})
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	experiments.RenderTable3(rows, w)
}

func (c *Collector) handleTable4(w http.ResponseWriter, r *http.Request) {
	var results []experiments.Table4Result
	for _, name := range c.requestedPrograms(r) {
		p, ok := c.MergedProfile(name)
		if !ok {
			http.Error(w, "no profile aggregate for "+name, http.StatusNotFound)
			return
		}
		results = append(results, experiments.Table4FromProfile(name, p))
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	experiments.RenderTable4(results, w)
}

func (c *Collector) handleTable5(w http.ResponseWriter, r *http.Request) {
	var reports []analysis.ProcReport
	for _, name := range c.requestedPrograms(r) {
		p, ok := c.MergedProfile(name)
		if !ok {
			http.Error(w, "no profile aggregate for "+name, http.StatusNotFound)
			return
		}
		reports = append(reports, analysis.ClassifyProcs(p, analysis.DefaultHotThreshold))
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	experiments.RenderTable5(reports, w)
}

// handleTableNamedMetrics renders each program's merged totals under the
// metric names its profile schema declares. Programs pushed with different
// schemas contribute different columns; the column set is the first-seen
// union and rows leave unschemed columns blank.
func (c *Collector) handleTableNamedMetrics(w http.ResponseWriter, r *http.Request) {
	type row struct {
		name   string
		freq   uint64
		totals map[string]uint64
	}
	var rows []row
	var cols []string
	seen := map[string]bool{}
	for _, name := range c.requestedPrograms(r) {
		p, ok := c.MergedProfile(name)
		if !ok {
			http.Error(w, "no profile aggregate for "+name, http.StatusNotFound)
			return
		}
		freq, ms := p.Totals()
		totals := make(map[string]uint64, len(p.Events))
		for i, ev := range p.Events {
			if ev == "" {
				ev = "slot" + strconv.Itoa(i)
			}
			if !seen[ev] {
				seen[ev] = true
				cols = append(cols, ev)
			}
			if i < len(ms) {
				totals[ev] += ms[i]
			}
		}
		rows = append(rows, row{name: name, freq: freq, totals: totals})
	}
	t := &report.Table{
		Title: "Merged profile totals by named metric",
		Cols:  append([]string{"Program", "Path execs"}, cols...),
	}
	for _, rw := range rows {
		vals := []interface{}{rw.name, rw.freq}
		for _, ev := range cols {
			if v, ok := rw.totals[ev]; ok {
				vals = append(vals, v)
			} else {
				vals = append(vals, "-")
			}
		}
		t.AddRow(vals...)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	t.Render(w)
}

func (c *Collector) handlePrograms(w http.ResponseWriter, _ *http.Request) {
	progs := c.Programs()
	if progs == nil {
		progs = []string{}
	}
	writeJSON(w, progs)
}

func (c *Collector) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, c.Metrics())
}

func (c *Collector) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	draining := c.draining
	c.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
