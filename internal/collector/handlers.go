package collector

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"pathprof/internal/analysis"
	"pathprof/internal/experiments"
	"pathprof/internal/report"
	"pathprof/internal/store"
)

// Handler returns the collector's HTTP surface:
//
//	POST /ingest         one wire envelope (profile or CCT export)
//	GET  /table/3        CCT statistics from merged exports
//	GET  /table/4        hot paths from merged profiles
//	GET  /table/5        hot procedures from merged profiles
//	GET  /table/metrics  per-program totals under named metric columns
//	GET  /programs       JSON list of aggregated programs
//	GET  /metrics        JSON counters
//	GET  /healthz        liveness (503 while draining)
//
// The table endpoints accept ?programs=a,b to select and order rows;
// the default is every aggregated program in sorted order.
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", c.handleIngest)
	mux.HandleFunc("GET /table/3", c.handleTable3)
	mux.HandleFunc("GET /table/4", c.handleTable4)
	mux.HandleFunc("GET /table/5", c.handleTable5)
	mux.HandleFunc("GET /table/metrics", c.handleTableNamedMetrics)
	mux.HandleFunc("GET /programs", c.handlePrograms)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("POST /store/snapshot", c.handleStoreSnapshot)
	mux.HandleFunc("POST /store/compact", c.handleStoreCompact)
	return mux
}

// IngestResponse is the JSON body of a successful push. Batched frames
// additionally report how many envelopes of each kind the frame carried
// (Kind is "batch" and Program is empty: one frame may span programs).
type IngestResponse struct {
	Kind      string `json:"kind"`
	Program   string `json:"program,omitempty"`
	Envelopes int    `json:"envelopes,omitempty"`
	Profiles  int    `json:"profiles,omitempty"`
	CCTs      int    `json:"ccts,omitempty"`
	// Duplicate marks a retried push the durable collector had already
	// applied: the original ack was lost, the data was not.
	Duplicate bool `json:"duplicate,omitempty"`
}

func (c *Collector) handleIngest(w http.ResponseWriter, r *http.Request) {
	done, err := c.begin()
	if err != nil {
		c.rejectedDraining.Add(1)
		http.Error(w, "collector is draining", http.StatusServiceUnavailable)
		return
	}
	defer done()

	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.RequestTimeout)
	defer cancel()

	// Backpressure: when every concurrency slot is busy and the wait
	// queue is full, shed the push immediately with 429 + Retry-After
	// instead of letting a convoy build up toward the request timeout.
	// Well-behaved clients (collector.Client with a RetryPolicy) back
	// off and retry.
	if q := c.queueDepth.Add(1); q > int64(c.cfg.MaxQueue) {
		c.queueDepth.Add(-1)
		c.rejectedQueue.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(c.cfg.RetryAfter)))
		http.Error(w, "ingest queue is full", http.StatusTooManyRequests)
		return
	}

	// Admission: wait for a concurrency slot, but never longer than the
	// request timeout.
	select {
	case c.sem <- struct{}{}:
		c.queueDepth.Add(-1)
		defer func() { <-c.sem }()
	case <-ctx.Done():
		c.queueDepth.Add(-1)
		c.rejectedBusy.Add(1)
		http.Error(w, "too many concurrent pushes", http.StatusServiceUnavailable)
		return
	}

	// Read the body on a helper goroutine so a dribbling client hits the
	// request timeout instead of pinning the slot; the abandoned reader
	// unblocks when the server tears the connection down.
	body := http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	type readResult struct {
		data []byte
		err  error
	}
	ch := make(chan readResult, 1)
	go func() {
		data, err := io.ReadAll(body)
		ch <- readResult{data, err}
	}()
	var data []byte
	select {
	case res := <-ch:
		if res.err != nil {
			var mbe *http.MaxBytesError
			if errors.As(res.err, &mbe) {
				c.rejectedTooBig.Add(1)
				abortBody(w)
				http.Error(w, "profile exceeds the size limit", http.StatusRequestEntityTooLarge)
			} else {
				c.rejectedBad.Add(1)
				http.Error(w, "reading body: "+res.err.Error(), http.StatusBadRequest)
			}
			return
		}
		data = res.data
	case <-ctx.Done():
		c.rejectedTimeout.Add(1)
		abortBody(w)
		http.Error(w, "push timed out", http.StatusRequestTimeout)
		return
	}

	// Single envelopes and batched frames share one fold path
	// (applyPayload, durable.go); frames decode into pooled scratch and
	// fold without materializing intermediate Profile/Export values.
	//
	// With a store mounted, the payload is appended and group-committed
	// to disk first and folded only once durable, so the ack below means
	// the push survives kill -9. The X-Push-Id header (stable across one
	// client's retries) dedups the crash window where a push was durable
	// but the ack was lost.
	var resp IngestResponse
	if c.store != nil {
		dup, err := c.store.Ingest(ctx, parsePushID(r), data, func(p []byte) error {
			var ferr error
			resp, ferr = c.applyPayload(p)
			return ferr
		})
		if dup {
			writeJSON(w, IngestResponse{Kind: "duplicate", Duplicate: true})
			return
		}
		if err != nil {
			c.failIngest(w, err)
			return
		}
	} else {
		var err error
		resp, err = c.applyPayload(data)
		if err != nil {
			c.failIngest(w, err)
			return
		}
	}
	c.ingestedBytes.Add(uint64(len(data)))
	writeJSON(w, resp)
}

// failIngest maps a fold or store error to its HTTP rejection.
func (c *Collector) failIngest(w http.ResponseWriter, err error) {
	var ce *conflictError
	switch {
	case errors.Is(err, store.ErrFull):
		// The WAL disk budget is exhausted: durable backpressure.
		// Compaction or the next snapshot usually frees space, so tell
		// clients to back off and retry rather than fail outright.
		c.rejectedStoreFull.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(c.cfg.RetryAfter)))
		http.Error(w, "store disk budget exhausted", http.StatusServiceUnavailable)
	case errors.As(err, &ce):
		c.rejectedConflict.Add(1)
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		c.rejectedTimeout.Add(1)
		http.Error(w, "push timed out", http.StatusRequestTimeout)
	default:
		c.rejectedBad.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// parsePushID extracts the client's hex push ID (0 = none).
func parsePushID(r *http.Request) uint64 {
	id, err := strconv.ParseUint(r.Header.Get("X-Push-Id"), 16, 64)
	if err != nil {
		return 0
	}
	return id
}

// handleStoreSnapshot forces a snapshot of the mounted store.
func (c *Collector) handleStoreSnapshot(w http.ResponseWriter, _ *http.Request) {
	if c.store == nil {
		http.Error(w, "no store mounted", http.StatusNotFound)
		return
	}
	if err := c.store.SnapshotNow(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, c.store.Metrics())
}

// handleStoreCompact forces compaction of sealed segments.
func (c *Collector) handleStoreCompact(w http.ResponseWriter, _ *http.Request) {
	if c.store == nil {
		http.Error(w, "no store mounted", http.StatusNotFound)
		return
	}
	if err := c.store.CompactNow(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, c.store.Metrics())
}

// retryAfterSeconds rounds d up to whole seconds for the Retry-After
// header (which has no sub-second form), with a 1s floor.
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// abortBody forces pending and post-handler reads of the request body to
// fail immediately. Without this the server would stall the error
// response behind draining the rest of a slow or oversized upload.
func abortBody(w http.ResponseWriter) {
	http.NewResponseController(w).SetReadDeadline(time.Now())
}

// requestedPrograms resolves the ?programs= selection (explicit order)
// or defaults to every aggregated program sorted.
func (c *Collector) requestedPrograms(r *http.Request) []string {
	if q := r.URL.Query().Get("programs"); q != "" {
		var out []string
		for _, name := range strings.Split(q, ",") {
			if name = strings.TrimSpace(name); name != "" {
				out = append(out, name)
			}
		}
		return out
	}
	return c.Programs()
}

func (c *Collector) handleTable3(w http.ResponseWriter, r *http.Request) {
	var rows []experiments.Table3Row
	for _, name := range c.requestedPrograms(r) {
		ex, ok := c.MergedExport(name)
		if !ok {
			http.Error(w, "no CCT aggregate for "+name, http.StatusNotFound)
			return
		}
		rows = append(rows, experiments.Table3Row{Name: name, Stats: ex.Stats()})
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	experiments.RenderTable3(rows, w)
}

func (c *Collector) handleTable4(w http.ResponseWriter, r *http.Request) {
	var results []experiments.Table4Result
	for _, name := range c.requestedPrograms(r) {
		p, ok := c.MergedProfile(name)
		if !ok {
			http.Error(w, "no profile aggregate for "+name, http.StatusNotFound)
			return
		}
		results = append(results, experiments.Table4FromProfile(name, p))
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	experiments.RenderTable4(results, w)
}

func (c *Collector) handleTable5(w http.ResponseWriter, r *http.Request) {
	var reports []analysis.ProcReport
	for _, name := range c.requestedPrograms(r) {
		p, ok := c.MergedProfile(name)
		if !ok {
			http.Error(w, "no profile aggregate for "+name, http.StatusNotFound)
			return
		}
		reports = append(reports, analysis.ClassifyProcs(p, analysis.DefaultHotThreshold))
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	experiments.RenderTable5(reports, w)
}

// handleTableNamedMetrics renders each program's merged totals under the
// metric names its profile schema declares. Programs pushed with different
// schemas contribute different columns; the column set is the first-seen
// union and rows leave unschemed columns blank.
func (c *Collector) handleTableNamedMetrics(w http.ResponseWriter, r *http.Request) {
	type row struct {
		name   string
		freq   uint64
		totals map[string]uint64
	}
	var rows []row
	var cols []string
	seen := map[string]bool{}
	for _, name := range c.requestedPrograms(r) {
		p, ok := c.MergedProfile(name)
		if !ok {
			http.Error(w, "no profile aggregate for "+name, http.StatusNotFound)
			return
		}
		freq, ms := p.Totals()
		totals := make(map[string]uint64, len(p.Events))
		for i, ev := range p.Events {
			if ev == "" {
				ev = "slot" + strconv.Itoa(i)
			}
			if !seen[ev] {
				seen[ev] = true
				cols = append(cols, ev)
			}
			if i < len(ms) {
				totals[ev] += ms[i]
			}
		}
		rows = append(rows, row{name: name, freq: freq, totals: totals})
	}
	t := &report.Table{
		Title: "Merged profile totals by named metric",
		Cols:  append([]string{"Program", "Path execs"}, cols...),
	}
	for _, rw := range rows {
		vals := []interface{}{rw.name, rw.freq}
		for _, ev := range cols {
			if v, ok := rw.totals[ev]; ok {
				vals = append(vals, v)
			} else {
				vals = append(vals, "-")
			}
		}
		t.AddRow(vals...)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	t.Render(w)
}

func (c *Collector) handlePrograms(w http.ResponseWriter, _ *http.Request) {
	progs := c.Programs()
	if progs == nil {
		progs = []string{}
	}
	writeJSON(w, progs)
}

func (c *Collector) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, c.Metrics())
}

func (c *Collector) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	draining := c.draining
	c.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
