package collector

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathprof/internal/store"
)

// Crash injection: the durability claim is "an acked push survives
// kill -9 at any point". TestCrashRecoveryByteIdentity proves it
// end-to-end — a real child process serving a durable collector is
// SIGKILLed at three points during a 1k-envelope ingest (while group
// commits, segment rolls, timed snapshots and compactions are all in
// flight), restarted each time, and the final recovered state must
// render tables 3, 4 and 5 byte-identical to an uninterrupted
// in-memory collector fed the same envelope multiset. The pushing
// clients ride through each crash on their retry policy; stable push
// IDs turn the ack-lost-but-committed window into acked duplicates
// instead of double folds.

// TestCrashServerProcess is the child: it recovers the store directory,
// serves the collector on the given address, and runs until killed. It
// skips itself in normal test runs.
func TestCrashServerProcess(t *testing.T) {
	dir := os.Getenv("PPD_CRASH_DIR")
	if dir == "" {
		t.Skip("crash-test child process mode; driven by TestCrashRecoveryByteIdentity")
	}
	addr := os.Getenv("PPD_CRASH_ADDR")
	c := New(Config{Shards: 4})
	_, _, err := c.OpenStore(dir, crashStoreOptions())
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash child: recover: %v\n", err)
		os.Exit(3)
	}
	// The previous incarnation's sockets can linger briefly; retry the
	// bind rather than dying into a restart loop.
	var ln net.Listener
	for deadline := time.Now().Add(5 * time.Second); ; {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "crash child: listen: %v\n", err)
			os.Exit(4)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Println("CRASH_CHILD_READY")
	http.Serve(ln, c.Handler())
}

// crashStoreOptions keeps every maintenance path hot during the crash
// window: tiny segments roll constantly, compaction chases two sealed
// segments, and timed snapshots race the kills.
func crashStoreOptions() store.Options {
	return store.Options{
		SegmentBytes:  16 << 10,
		CompactAfter:  2,
		SnapshotEvery: 300 * time.Millisecond,
	}
}

type crashChild struct {
	t    *testing.T
	dir  string
	addr string
	cmd  *exec.Cmd
}

func startCrashChild(t *testing.T, dir, addr string) *crashChild {
	t.Helper()
	cc := &crashChild{t: t, dir: dir, addr: addr}
	cc.start()
	return cc
}

func (cc *crashChild) start() {
	cc.t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashServerProcess$", "-test.v")
	cmd.Env = append(os.Environ(), "PPD_CRASH_DIR="+cc.dir, "PPD_CRASH_ADDR="+cc.addr)
	cmd.Stdout = os.Stderr // child chatter goes to the test log
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		cc.t.Fatalf("starting crash child: %v", err)
	}
	cc.cmd = cmd
}

// kill SIGKILLs the child mid-flight — no drain, no cleanup — exactly
// like a machine losing power.
func (cc *crashChild) kill() {
	cc.t.Helper()
	cc.cmd.Process.Kill()
	cc.cmd.Wait()
}

func (cc *crashChild) restart() {
	cc.kill()
	cc.start()
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestCrashRecoveryByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	copies := 250 // 4 envelopes per copy: the 1k-envelope acceptance run
	if s := os.Getenv("PPD_CRASH_COPIES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			copies = n
		}
	}
	envs := testEnvelopes(t, copies)
	programs := []string{"compress", "otherprog"}

	// The oracle: the same multiset through an uninterrupted in-memory
	// collector.
	_, memCl := newServer(t, Config{Shards: 4})
	pushEnvelopes(t, memCl, envs)
	want := tableBytes(t, memCl, programs)

	dir := t.TempDir()
	addr := freeAddr(t)
	child := startCrashChild(t, dir, addr)
	defer child.kill()

	cl := &Client{
		BaseURL: "http://" + addr,
		Retry:   &RetryPolicy{MaxAttempts: 14, BaseDelay: 50 * time.Millisecond, MaxDelay: 400 * time.Millisecond},
	}

	// Kill the server at three points spread across the ingest. The
	// controller watches acked progress; pushers never pause.
	var acked atomic.Int64
	killAt := []int64{int64(len(envs)) / 4, int64(len(envs)) / 2, 3 * int64(len(envs)) / 4}
	// Between kills, force a snapshot and a compaction through the ops
	// endpoints so the kill that follows lands on a directory holding
	// snapshot files and compacted segments, not just raw log tail.
	// Best-effort: the server may be mid-restart.
	poke := []string{"/store/snapshot", "/store/compact", "/store/snapshot"}
	ctlDone := make(chan struct{})
	go func() {
		defer close(ctlDone)
		for i, at := range killAt {
			for acked.Load() < at {
				time.Sleep(time.Millisecond)
			}
			if resp, err := http.Post("http://"+addr+poke[i], "", nil); err == nil {
				resp.Body.Close()
			}
			child.restart()
		}
	}()

	work := make(chan envelope, len(envs))
	for _, e := range envs {
		work <- e
	}
	close(work)
	var wg sync.WaitGroup
	pushErr := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for e := range work {
				var err error
				if e.p != nil {
					_, err = cl.PushProfile(ctx, e.p)
				} else {
					_, err = cl.PushExport(ctx, e.ex)
				}
				if err != nil {
					select {
					case pushErr <- err:
					default:
					}
					return
				}
				acked.Add(1)
			}
		}()
	}
	wg.Wait()
	<-ctlDone
	select {
	case err := <-pushErr:
		t.Fatalf("push did not survive the crash window: %v", err)
	default:
	}
	if got := acked.Load(); got != int64(len(envs)) {
		t.Fatalf("acked %d of %d envelopes", got, len(envs))
	}

	// Final kill -9, then recover the directory in-process and compare.
	child.kill()
	c := New(Config{Shards: 4})
	l, rec, err := c.OpenStore(dir, store.Options{})
	if err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	defer l.Close()
	t.Logf("final recovery: %+v", rec)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	qcl := &Client{BaseURL: srv.URL, HTTPClient: srv.Client()}
	if got := tableBytes(t, qcl, programs); got != want {
		for i, n := range []int{3, 4, 5} {
			if got[i] != want[i] {
				t.Errorf("table %d differs after 3x kill -9 + recovery", n)
			}
		}
		t.FailNow()
	}
}
