package collector

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"pathprof/internal/cct"
	"pathprof/internal/experiments"
	"pathprof/internal/profile"
	"pathprof/internal/wire"
)

// sharedTransport is the one Transport every Client without an explicit
// HTTPClient uses. Producer fleets make many small POSTs to one or two
// collector hosts, so the defaults that matter are connection reuse:
// without a raised MaxIdleConnsPerHost (default 2) a burst of pushes
// churns through ephemeral connections and TIME_WAIT sockets.
var sharedTransport = &http.Transport{
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 128,
	IdleConnTimeout:     90 * time.Second,
}

var sharedClient = &http.Client{Transport: sharedTransport}

// bodyPool recycles request body buffers across pushes so steady-state
// pushing does not grow the heap with one buffer per request.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// RetryPolicy controls how a Client retries pushes the collector shed
// (429), refused while busy (503) or that failed at the transport layer.
// Delays grow exponentially from BaseDelay with full jitter, capped at
// MaxDelay; a server Retry-After hint overrides a shorter computed
// delay. The zero value of each field selects the default in brackets.
type RetryPolicy struct {
	MaxAttempts int           // total attempts including the first [5]
	BaseDelay   time.Duration // first backoff step [100ms]
	MaxDelay    time.Duration // backoff ceiling [5s]
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.MaxAttempts <= 0 {
		rp.MaxAttempts = 5
	}
	if rp.BaseDelay <= 0 {
		rp.BaseDelay = 100 * time.Millisecond
	}
	if rp.MaxDelay <= 0 {
		rp.MaxDelay = 5 * time.Second
	}
	return rp
}

// delay computes the backoff before attempt (0-based retry count),
// honoring a server Retry-After hint as a lower bound.
func (rp RetryPolicy) delay(attempt int, retryAfter time.Duration) time.Duration {
	d := rp.BaseDelay << uint(attempt)
	if d > rp.MaxDelay || d <= 0 {
		d = rp.MaxDelay
	}
	// Full jitter: spread concurrent producers instead of synchronizing
	// their retries into the next overload wave.
	d = time.Duration(rand.Int63n(int64(d)) + 1)
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// Client pushes wire-encoded profiles to a collector and queries its
// tables. The zero HTTPClient uses a shared keep-alive transport tuned
// for many small pushes. Retry, when non-nil, makes pushes retry
// shed/busy responses and transport errors with jittered exponential
// backoff.
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
	Retry      *RetryPolicy
}

func (cl *Client) http() *http.Client {
	if cl.HTTPClient != nil {
		return cl.HTTPClient
	}
	return sharedClient
}

// apiError is a non-2xx collector response.
type apiError struct {
	Status     int
	Body       string
	RetryAfter time.Duration // parsed Retry-After hint, 0 if absent
}

func (e *apiError) Error() string {
	return fmt.Sprintf("collector: HTTP %d: %s", e.Status, strings.TrimSpace(e.Body))
}

// retryable reports whether err is worth retrying: the collector shed
// the push (429), refused while saturated (503 "too many concurrent
// pushes"), or the transport failed. Draining (also 503) is permanent by
// intent, but distinguishing it from transient saturation server-side
// is not worth a protocol change — a drained retry just fails again.
func retryable(err error) (time.Duration, bool) {
	if ae, ok := err.(*apiError); ok {
		switch ae.Status {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			return ae.RetryAfter, true
		}
		return 0, false
	}
	// Transport-level errors (connection refused, reset, timeout).
	return 0, true
}

// doPush POSTs body to /ingest once and decodes the response. id, when
// non-zero, rides in X-Push-Id so a durable collector can recognize a
// retry of a push it already committed.
func (cl *Client) doPush(ctx context.Context, body []byte, id uint64) (*IngestResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.BaseURL+"/ingest", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if id != 0 {
		req.Header.Set("X-Push-Id", strconv.FormatUint(id, 16))
	}
	resp, err := cl.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		ae := &apiError{Status: resp.StatusCode, Body: string(data)}
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			ae.RetryAfter = time.Duration(s) * time.Second
		}
		return nil, ae
	}
	var ir IngestResponse
	if err := json.Unmarshal(data, &ir); err != nil {
		return nil, fmt.Errorf("collector: bad ingest response: %w", err)
	}
	return &ir, nil
}

// pushBytes pushes body, retrying per cl.Retry. Context cancellation
// aborts both in-flight requests and backoff sleeps. One push ID is
// generated per call and reused across every retry attempt, so a
// durable collector that committed the push but lost the ack — a crash,
// a dropped connection — acks the retry as a duplicate instead of
// folding the same data twice.
func (cl *Client) pushBytes(ctx context.Context, body []byte) (*IngestResponse, error) {
	id := newPushID()
	if cl.Retry == nil {
		return cl.doPush(ctx, body, id)
	}
	rp := cl.Retry.withDefaults()
	var lastErr error
	for attempt := 0; attempt < rp.MaxAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(rp.delay(attempt-1, retryAfterOf(lastErr)))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, fmt.Errorf("collector: push retry: %w", ctx.Err())
			}
		}
		ir, err := cl.doPush(ctx, body, id)
		if err == nil {
			return ir, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, err
		}
		if _, ok := retryable(err); !ok {
			return nil, err
		}
	}
	return nil, fmt.Errorf("collector: push failed after %d attempts: %w", rp.MaxAttempts, lastErr)
}

// newPushID returns a random non-zero push identity. 64 random bits
// across a fleet's push volume keep the collision probability far below
// any other failure mode; zero is reserved for "no id".
func newPushID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

func retryAfterOf(err error) time.Duration {
	if ae, ok := err.(*apiError); ok {
		return ae.RetryAfter
	}
	return 0
}

func (cl *Client) push(ctx context.Context, v any) (*IngestResponse, error) {
	body := bodyPool.Get().(*bytes.Buffer)
	body.Reset()
	defer bodyPool.Put(body)
	if err := wire.Encode(body, v); err != nil {
		return nil, err
	}
	return cl.pushBytes(ctx, body.Bytes())
}

// PushProfile uploads one path profile.
func (cl *Client) PushProfile(ctx context.Context, p *profile.Profile) (*IngestResponse, error) {
	return cl.push(ctx, p)
}

// PushExport uploads one CCT export.
func (cl *Client) PushExport(ctx context.Context, ex *cct.Export) (*IngestResponse, error) {
	return cl.push(ctx, ex)
}

// PushFrame uploads an encoded version-3 batched frame (see
// wire.BatchWriter) carrying any number of envelopes in one POST.
func (cl *Client) PushFrame(ctx context.Context, frame []byte) (*IngestResponse, error) {
	return cl.pushBytes(ctx, frame)
}

// PushRun uploads what one instrumented run produced: CCT-building runs
// contribute their tree (which already embodies any per-context path
// counts), profile-only runs contribute their path profile.
func (cl *Client) PushRun(ctx context.Context, cell *experiments.Cell) ([]IngestResponse, error) {
	var out []IngestResponse
	if cell.Tree != nil {
		r, err := cl.PushExport(ctx, cell.Tree.Export(cell.Workload))
		if err != nil {
			return out, err
		}
		out = append(out, *r)
	} else if cell.Profile != nil {
		r, err := cl.PushProfile(ctx, cell.Profile)
		if err != nil {
			return out, err
		}
		out = append(out, *r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("collector: %s %v run produced nothing to push", cell.Workload, cell.Mode)
	}
	return out, nil
}

func (cl *Client) get(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := cl.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &apiError{Status: resp.StatusCode, Body: string(data)}
	}
	return data, nil
}

// Table fetches the rendered table n (3, 4 or 5), optionally restricted
// to the given programs in the given row order.
func (cl *Client) Table(ctx context.Context, n int, programs []string) (string, error) {
	path := "/table/" + strconv.Itoa(n)
	if len(programs) > 0 {
		path += "?programs=" + strings.Join(programs, ",")
	}
	data, err := cl.get(ctx, path)
	return string(data), err
}

// MetricTable fetches the named-metric totals table, optionally
// restricted to the given programs in the given row order.
func (cl *Client) MetricTable(ctx context.Context, programs []string) (string, error) {
	path := "/table/metrics"
	if len(programs) > 0 {
		path += "?programs=" + strings.Join(programs, ",")
	}
	data, err := cl.get(ctx, path)
	return string(data), err
}

// Programs fetches the list of aggregated programs.
func (cl *Client) Programs(ctx context.Context) ([]string, error) {
	data, err := cl.get(ctx, "/programs")
	if err != nil {
		return nil, err
	}
	var out []string
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("collector: bad programs response: %w", err)
	}
	return out, nil
}
