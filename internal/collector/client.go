package collector

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"pathprof/internal/cct"
	"pathprof/internal/experiments"
	"pathprof/internal/profile"
	"pathprof/internal/wire"
)

// Client pushes wire-encoded profiles to a collector and queries its
// tables. The zero HTTPClient uses http.DefaultClient.
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
}

func (cl *Client) http() *http.Client {
	if cl.HTTPClient != nil {
		return cl.HTTPClient
	}
	return http.DefaultClient
}

// apiError is a non-2xx collector response.
type apiError struct {
	Status int
	Body   string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("collector: HTTP %d: %s", e.Status, strings.TrimSpace(e.Body))
}

func (cl *Client) push(ctx context.Context, v any) (*IngestResponse, error) {
	var body bytes.Buffer
	if err := wire.Encode(&body, v); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.BaseURL+"/ingest", &body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := cl.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, &apiError{Status: resp.StatusCode, Body: string(data)}
	}
	var ir IngestResponse
	if err := json.Unmarshal(data, &ir); err != nil {
		return nil, fmt.Errorf("collector: bad ingest response: %w", err)
	}
	return &ir, nil
}

// PushProfile uploads one path profile.
func (cl *Client) PushProfile(ctx context.Context, p *profile.Profile) (*IngestResponse, error) {
	return cl.push(ctx, p)
}

// PushExport uploads one CCT export.
func (cl *Client) PushExport(ctx context.Context, ex *cct.Export) (*IngestResponse, error) {
	return cl.push(ctx, ex)
}

// PushRun uploads what one instrumented run produced: CCT-building runs
// contribute their tree (which already embodies any per-context path
// counts), profile-only runs contribute their path profile.
func (cl *Client) PushRun(ctx context.Context, cell *experiments.Cell) ([]IngestResponse, error) {
	var out []IngestResponse
	if cell.Tree != nil {
		r, err := cl.PushExport(ctx, cell.Tree.Export(cell.Workload))
		if err != nil {
			return out, err
		}
		out = append(out, *r)
	} else if cell.Profile != nil {
		r, err := cl.PushProfile(ctx, cell.Profile)
		if err != nil {
			return out, err
		}
		out = append(out, *r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("collector: %s %v run produced nothing to push", cell.Workload, cell.Mode)
	}
	return out, nil
}

func (cl *Client) get(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := cl.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &apiError{Status: resp.StatusCode, Body: string(data)}
	}
	return data, nil
}

// Table fetches the rendered table n (3, 4 or 5), optionally restricted
// to the given programs in the given row order.
func (cl *Client) Table(ctx context.Context, n int, programs []string) (string, error) {
	path := "/table/" + strconv.Itoa(n)
	if len(programs) > 0 {
		path += "?programs=" + strings.Join(programs, ",")
	}
	data, err := cl.get(ctx, path)
	return string(data), err
}

// MetricTable fetches the named-metric totals table, optionally
// restricted to the given programs in the given row order.
func (cl *Client) MetricTable(ctx context.Context, programs []string) (string, error) {
	path := "/table/metrics"
	if len(programs) > 0 {
		path += "?programs=" + strings.Join(programs, ",")
	}
	data, err := cl.get(ctx, path)
	return string(data), err
}

// Programs fetches the list of aggregated programs.
func (cl *Client) Programs(ctx context.Context) ([]string, error) {
	data, err := cl.get(ctx, "/programs")
	if err != nil {
		return nil, err
	}
	var out []string
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("collector: bad programs response: %w", err)
	}
	return out, nil
}
