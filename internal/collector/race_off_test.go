//go:build !race

package collector

const raceEnabled = false
