package collector

import (
	"context"
	"net/http"
	"testing"

	"pathprof/internal/wire"
)

// TestKDegreeConflictRejected: a k=2 profile cannot fold into a classic
// aggregate of the same program — the path id spaces are unrelated — and
// the conflict surfaces as a 409 on both the envelope and the frame path.
func TestKDegreeConflictRejected(t *testing.T) {
	prof, _ := fixtures(t)
	c, cl := newServer(t, Config{Shards: 1})
	ctx := context.Background()
	if _, err := cl.PushProfile(ctx, prof); err != nil {
		t.Fatal(err)
	}
	k2 := cloneProfile(prof)
	k2.K = 2
	for _, pp := range k2.Procs {
		pp.K = 2
	}
	if _, err := cl.PushProfile(ctx, k2); statusOf(t, err) != http.StatusConflict {
		t.Fatalf("envelope path: want 409, got %v", err)
	}

	bw := wire.NewBatchWriter()
	if err := bw.AddProfile(k2); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.PushFrame(ctx, bw.Frame()); statusOf(t, err) != http.StatusConflict {
		t.Fatalf("frame path: want 409, got %v", err)
	}
	if c.Metrics().RejectedConflict != 2 {
		t.Fatalf("metrics: %+v", c.Metrics())
	}

	// The reverse direction conflicts too: seed a k-aggregate under a new
	// program name, then push classic and a different degree into it.
	k3 := cloneProfile(k2)
	k3.Program = "kprog"
	if _, err := cl.PushProfile(ctx, k3); err != nil {
		t.Fatal(err)
	}
	classic := cloneProfile(prof)
	classic.Program = "kprog"
	if _, err := cl.PushProfile(ctx, classic); statusOf(t, err) != http.StatusConflict {
		t.Fatalf("classic into k-aggregate: want 409, got %v", err)
	}
	k9 := cloneProfile(k2)
	k9.Program = "kprog"
	k9.K = 3
	if _, err := cl.PushProfile(ctx, k9); statusOf(t, err) != http.StatusConflict {
		t.Fatalf("k=3 into k=2 aggregate: want 409, got %v", err)
	}

	// Same-degree pushes keep folding, and the snapshot keeps the degree.
	if _, err := cl.PushProfile(ctx, cloneProfile(k3)); err != nil {
		t.Fatal(err)
	}
	bw.Reset()
	if err := bw.AddProfile(k3); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.PushFrame(ctx, bw.Frame()); err != nil {
		t.Fatal(err)
	}
	merged, ok := c.MergedProfile("kprog")
	if !ok || merged.K != 2 {
		t.Fatalf("merged k-profile lost its degree: ok=%v K=%d", ok, merged.K)
	}
	for _, pp := range merged.Procs {
		if pp.K != 2 {
			t.Fatalf("proc %s lost its effective degree: %d", pp.Name, pp.K)
		}
	}
}
