package collector

import (
	"context"
	"sync/atomic"
	"time"

	"pathprof/internal/wire"
)

// Relay turns a collector into an interior node of a fan-in tree: leaf
// producers push to a nearby relay collector, which folds their
// envelopes into its shard aggregates as usual, and a background loop
// periodically Takes the merged aggregate and pushes it upstream as a
// handful of batched frames — one pre-merged envelope per program
// instead of one per producer push. Stacking relays gives each tier a
// bounded fan-in, which is what lets a single root collector absorb
// tens of thousands of producers.
//
// Because folding is associative and commutative, the root's merged
// tables are byte-identical to what direct pushes would have produced,
// whatever the relay topology or flush timing.
//
// A failed upstream push (after the client's retries) re-ingests the
// taken envelopes locally, so data survives upstream outages and rides
// along with the next flush.
//
// With a store mounted on Local the relay becomes a durable spool:
// leaf pushes are on disk before they are acked, a crash replays
// everything not yet flushed, and after a fully successful flush the
// relay checkpoints the store so the replayed spool never re-delivers
// envelopes the upstream already has. A crash between the upstream ack
// and the checkpoint re-pushes that flush — at-least-once upstream,
// never data loss. Durable relays must leave timed store snapshots off
// (ppd relay does): a snapshot between Take and a failure re-ingest
// would capture the emptied aggregate and orphan the taken envelopes.
type Relay struct {
	// Local is the collector absorbing leaf pushes; serve its Handler.
	Local *Collector
	// Upstream pushes the merged batches; give it a RetryPolicy.
	Upstream *Client
	// Interval is the flush period (default 1s).
	Interval time.Duration
	// MaxItems caps envelopes per upstream frame (default 64); a Take
	// spanning more programs is split into multiple frames.
	MaxItems int

	framesPushed    atomic.Uint64
	envelopesPushed atomic.Uint64
	flushFailures   atomic.Uint64
	checkpoints     atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

// RelayStats counts the relay's upstream traffic.
type RelayStats struct {
	FramesPushed    uint64 `json:"frames_pushed"`
	EnvelopesPushed uint64 `json:"envelopes_pushed"`
	FlushFailures   uint64 `json:"flush_failures"`
	Checkpoints     uint64 `json:"checkpoints"`
}

func (r *Relay) interval() time.Duration {
	if r.Interval > 0 {
		return r.Interval
	}
	return time.Second
}

func (r *Relay) maxItems() int {
	if r.MaxItems > 0 {
		return r.MaxItems
	}
	return 64
}

// Start launches the periodic flush loop. Call Stop to flush the tail
// and halt.
func (r *Relay) Start() {
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.interval())
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.FlushOnce(context.Background())
			case <-r.stop:
				return
			}
		}
	}()
}

// Stop halts the flush loop and pushes whatever the local collector
// still holds. The local collector keeps serving; shut it down
// separately.
func (r *Relay) Stop(ctx context.Context) error {
	if r.stop != nil {
		close(r.stop)
		<-r.done
	}
	return r.FlushOnce(ctx)
}

// Stats returns a snapshot of the relay's counters.
func (r *Relay) Stats() RelayStats {
	return RelayStats{
		FramesPushed:    r.framesPushed.Load(),
		EnvelopesPushed: r.envelopesPushed.Load(),
		FlushFailures:   r.flushFailures.Load(),
		Checkpoints:     r.checkpoints.Load(),
	}
}

// FlushOnce takes the local aggregate and pushes it upstream in frames
// of at most MaxItems envelopes. On push failure the frame's envelopes
// are folded back into the local collector and the first error is
// returned after the remaining frames are attempted.
func (r *Relay) FlushOnce(ctx context.Context) error {
	profiles, exports := r.Local.Take()
	if len(profiles) == 0 && len(exports) == 0 {
		return nil
	}

	bw := wire.NewBatchWriter()
	// Envelopes in the current frame, kept for local re-ingest if the
	// push fails. Re-ingest cannot conflict: Take left fresh aggregates,
	// and these envelopes came from mutually consistent ones.
	var pendingP, pendingX []int // indices into profiles / exports
	var firstErr error

	push := func() {
		if bw.Items() == 0 {
			return
		}
		n := bw.Items()
		_, err := r.Upstream.PushFrame(ctx, bw.Frame())
		if err != nil {
			r.flushFailures.Add(1)
			if firstErr == nil {
				firstErr = err
			}
			for _, i := range pendingP {
				r.Local.ingestProfile(profiles[i])
			}
			for _, i := range pendingX {
				r.Local.ingestExport(exports[i])
			}
		} else {
			r.framesPushed.Add(1)
			r.envelopesPushed.Add(uint64(n))
		}
		bw.Reset()
		pendingP, pendingX = pendingP[:0], pendingX[:0]
	}

	for i, p := range profiles {
		if err := bw.AddProfile(p); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		pendingP = append(pendingP, i)
		if bw.Items() >= r.maxItems() {
			push()
		}
	}
	for i, ex := range exports {
		if err := bw.AddExport(ex); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		pendingX = append(pendingX, i)
		if bw.Items() >= r.maxItems() {
			push()
		}
	}
	push()
	if firstErr == nil && r.Local.Store() != nil {
		// Everything taken is delivered upstream: checkpoint the spool so
		// a crash replay does not re-deliver it. (The snapshot also
		// captures anything ingested since Take — that is merely early,
		// not wrong: it stays in local memory and flushes next round.)
		if err := r.Local.Checkpoint(); err != nil {
			firstErr = err
		} else {
			r.checkpoints.Add(1)
		}
	}
	return firstErr
}
