package collector

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pathprof/internal/cct"
	"pathprof/internal/profile"
	"pathprof/internal/wire"
)

// envelope is one queued push for the batch-vs-singles oracle.
type envelope struct {
	p  *profile.Profile
	ex *cct.Export
}

// testEnvelopes builds an interleaved multiset of pushes: several copies
// of the fixture profile and tree, plus a second program so frames span
// programs.
func testEnvelopes(t *testing.T, copies int) []envelope {
	t.Helper()
	prof, tree := fixtures(t)
	other := cloneProfile(prof)
	other.Program = "otherprog"
	ex2 := tree.Export("otherprog")
	var out []envelope
	for i := 0; i < copies; i++ {
		out = append(out,
			envelope{ex: tree.Export("compress")},
			envelope{p: prof},
			envelope{ex: ex2},
			envelope{p: other},
		)
	}
	return out
}

func tableBytes(t *testing.T, cl *Client, programs []string) [3]string {
	t.Helper()
	var out [3]string
	for i, n := range []int{3, 4, 5} {
		s, err := cl.Table(context.Background(), n, programs)
		if err != nil {
			t.Fatalf("table %d: %v", n, err)
		}
		out[i] = s
	}
	return out
}

// TestBatchIngestMatchesSingles is the batching correctness oracle:
// pushing the same envelope multiset as wire-v3 frames of any batch
// size, into a collector with any shard count, must render tables 3, 4
// and 5 byte-identical to one-envelope-per-POST ingest.
func TestBatchIngestMatchesSingles(t *testing.T) {
	envs := testEnvelopes(t, 10)
	programs := []string{"compress", "otherprog"}
	ctx := context.Background()

	// Reference: the v1/v2 single-envelope path.
	_, singleCl := newServer(t, Config{Shards: 4})
	for _, e := range envs {
		var err error
		if e.p != nil {
			_, err = singleCl.PushProfile(ctx, e.p)
		} else {
			_, err = singleCl.PushExport(ctx, e.ex)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	want := tableBytes(t, singleCl, programs)

	for _, batch := range []int{1, 7, 64} {
		for _, shards := range []int{1, 3, 5} {
			c, cl := newServer(t, Config{Shards: shards})
			bw := wire.NewBatchWriter()
			flush := func() {
				if bw.Items() == 0 {
					return
				}
				if _, err := cl.PushFrame(ctx, bw.Frame()); err != nil {
					t.Fatal(err)
				}
				bw.Reset()
			}
			for _, e := range envs {
				var err error
				if e.p != nil {
					err = bw.AddProfile(e.p)
				} else {
					err = bw.AddExport(e.ex)
				}
				if err != nil {
					t.Fatal(err)
				}
				if bw.Items() >= batch {
					flush()
				}
			}
			flush()
			if got := c.Metrics().IngestedProfiles + c.Metrics().IngestedCCTs; got != uint64(len(envs)) {
				t.Fatalf("batch=%d shards=%d: ingested %d envelopes, want %d", batch, shards, got, len(envs))
			}
			got := tableBytes(t, cl, programs)
			for i, n := range []int{3, 4, 5} {
				if got[i] != want[i] {
					t.Errorf("batch=%d shards=%d: table %d differs from single-envelope ingest\n--- batched ---\n%s\n--- singles ---\n%s",
						batch, shards, n, got[i], want[i])
				}
			}
		}
	}
}

// TestFrameFoldAllocs: once a program's aggregate exists, folding a
// frame allocates nothing — the decode-to-shard loop runs entirely in
// pooled scratch and existing aggregate storage.
func TestFrameFoldAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are only meaningful without it")
	}
	prof, tree := fixtures(t)
	bw := wire.NewBatchWriter()
	for i := 0; i < 8; i++ {
		if err := bw.AddProfile(prof); err != nil {
			t.Fatal(err)
		}
		if err := bw.AddExport(tree.Export("compress")); err != nil {
			t.Fatal(err)
		}
	}
	frame := bw.Frame()
	c := New(Config{Shards: 2})
	// First frame grafts the aggregates (and warms the scratch pool).
	for i := 0; i < 3; i++ {
		if _, _, err := c.IngestFrame(frame); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, _, err := c.IngestFrame(frame); err != nil {
			t.Fatal(err)
		}
	})
	if avg >= 1 {
		t.Fatalf("steady-state IngestFrame allocates %.1f objects per 16-envelope frame, want 0", avg)
	}
}

// TestQueueFullSheds: with every concurrency slot busy and the wait
// queue full, a new push is shed immediately with 429 and a Retry-After
// hint, and the rejection is counted.
func TestQueueFullSheds(t *testing.T) {
	c, cl := newServer(t, Config{MaxConcurrent: 1, MaxQueue: 1, RetryAfter: 2 * time.Second})

	// Occupy the slot and the queue with pushes whose bodies never
	// finish.
	var conns []net.Conn
	defer func() {
		for _, conn := range conns {
			conn.Close()
		}
	}()
	stall := func() {
		conn, err := net.Dial("tcp", strings.TrimPrefix(cl.BaseURL, "http://"))
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, conn)
		_, err = io.WriteString(conn, "POST /ingest HTTP/1.1\r\nHost: collector\r\n"+
			"Content-Type: application/octet-stream\r\nContent-Length: 4096\r\n\r\nPPW1")
		if err != nil {
			t.Fatal(err)
		}
	}
	stall() // takes the slot
	waitFor(t, func() bool { return c.Metrics().Inflight == 1 && c.Metrics().QueueDepth == 0 })
	stall() // waits in the queue
	waitFor(t, func() bool { return c.Metrics().QueueDepth == 1 })

	resp, err := cl.http().Post(cl.BaseURL+"/ingest", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429 when the queue is full, got %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want %q", got, "2")
	}
	if m := c.Metrics(); m.RejectedQueueFull != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; ; i++ {
		if cond() {
			return
		}
		if i > 2000 {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClientRetries: a client with a RetryPolicy rides out 429 responses
// and succeeds when the collector recovers, and surfaces the parsed
// Retry-After hint on terminal failures.
func TestClientRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "ingest queue is full", http.StatusTooManyRequests)
			return
		}
		writeJSON(w, IngestResponse{Kind: "profile", Program: "p"})
	}))
	defer srv.Close()

	prof, _ := fixtures(t)
	cl := &Client{BaseURL: srv.URL, HTTPClient: srv.Client(),
		Retry: &RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}}
	if _, err := cl.PushProfile(context.Background(), prof); err != nil {
		t.Fatalf("push should have succeeded on the third attempt: %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d attempts, want 3", n)
	}

	// A 400 is permanent: no retries.
	calls.Store(0)
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	defer bad.Close()
	cl.BaseURL, cl.HTTPClient = bad.URL, bad.Client()
	if _, err := cl.PushProfile(context.Background(), prof); err == nil {
		t.Fatal("want error from permanent 400")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d attempts for a permanent error, want 1", n)
	}

	// The Retry-After hint is parsed into the terminal error.
	hint := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, "busy", http.StatusTooManyRequests)
	}))
	defer hint.Close()
	plain := &Client{BaseURL: hint.URL, HTTPClient: hint.Client()}
	_, err := plain.PushProfile(context.Background(), prof)
	ae, ok := err.(*apiError)
	if !ok || ae.RetryAfter != 7*time.Second {
		t.Fatalf("want apiError with 7s Retry-After, got %v", err)
	}
}

// TestRetryRespectsContext: cancellation aborts the backoff sleep, not
// just in-flight requests.
func TestRetryRespectsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "busy", http.StatusTooManyRequests)
	}))
	defer srv.Close()
	prof, _ := fixtures(t)
	cl := &Client{BaseURL: srv.URL, HTTPClient: srv.Client(),
		Retry: &RetryPolicy{MaxAttempts: 10, BaseDelay: time.Hour, MaxDelay: time.Hour}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.PushProfile(ctx, prof)
	if err == nil {
		t.Fatal("push should have failed")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; the retry loop slept through it", elapsed)
	}
}

// TestDrainDuringRetry: a client retrying through backpressure while the
// collector shuts down must terminate with an error, and the drain must
// complete — exercised under -race in CI.
func TestDrainDuringRetry(t *testing.T) {
	prof, _ := fixtures(t)
	c, cl := newServer(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	cl.Retry = &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}

	// Saturate: one stalled push holds the slot, one waits.
	conn, err := net.Dial("tcp", strings.TrimPrefix(cl.BaseURL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	io.WriteString(conn, "POST /ingest HTTP/1.1\r\nHost: collector\r\n"+
		"Content-Type: application/octet-stream\r\nContent-Length: 4096\r\n\r\nPPW1")
	waitFor(t, func() bool { return c.Metrics().Inflight == 1 })
	conn2, err := net.Dial("tcp", strings.TrimPrefix(cl.BaseURL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	io.WriteString(conn2, "POST /ingest HTTP/1.1\r\nHost: collector\r\n"+
		"Content-Type: application/octet-stream\r\nContent-Length: 4096\r\n\r\nPPW1")
	waitFor(t, func() bool { return c.Metrics().QueueDepth == 1 })

	// Retry loop racing the drain: first attempt is shed with 429, and
	// by the time it retries the collector is draining (503) or gone.
	pushErr := make(chan error, 1)
	go func() {
		_, err := cl.PushProfile(context.Background(), prof)
		pushErr <- err
	}()
	waitFor(t, func() bool { return c.Metrics().RejectedQueueFull >= 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	c.Shutdown(ctx) // times out on the stalled pushes; draining is set
	if err := <-pushErr; err == nil {
		t.Fatal("retrying push should not succeed through a drain")
	}
	if !c.Metrics().Draining {
		t.Fatal("collector is not draining")
	}
}

// TestBatcher: the batcher flushes on size, flushes a stale partial
// batch after MaxWait, and makes flush failures sticky.
func TestBatcher(t *testing.T) {
	prof, tree := fixtures(t)
	c, cl := newServer(t, Config{Shards: 2})
	ctx := context.Background()

	b := NewBatcher(cl, 3, time.Hour)
	for i := 0; i < 7; i++ {
		if err := b.AddProfile(ctx, prof); err != nil {
			t.Fatal(err)
		}
	}
	// 7 adds at MaxItems=3: two full frames flushed inline, one pending.
	if m := c.Metrics(); m.IngestedProfiles != 6 || m.IngestedFrames != 2 {
		t.Fatalf("after size flushes: %+v", m)
	}
	if err := b.AddExport(ctx, tree.Export("compress")); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if m := c.Metrics(); m.IngestedProfiles != 7 || m.IngestedCCTs != 1 {
		t.Fatalf("after close: %+v", m)
	}
	if err := b.AddProfile(ctx, prof); err == nil {
		t.Fatal("add after close should fail")
	}

	// MaxWait flush: a lone envelope arrives without further traffic.
	bt := NewBatcher(cl, 100, 20*time.Millisecond)
	if err := bt.AddProfile(ctx, prof); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.Metrics().IngestedProfiles == 8 })

	// Sticky failure: a dead upstream poisons the batcher.
	dead := &Client{BaseURL: "http://127.0.0.1:1", HTTPClient: &http.Client{Timeout: 50 * time.Millisecond}}
	bf := NewBatcher(dead, 1, time.Hour)
	if err := bf.AddProfile(ctx, prof); err == nil {
		t.Fatal("flush to a dead upstream should fail")
	}
	if err := bf.AddProfile(ctx, prof); err == nil || !strings.Contains(err.Error(), "batcher failed") {
		t.Fatalf("batcher error is not sticky: %v", err)
	}
}

// TestRelayForwards: envelopes pushed to a relay's local collector reach
// the upstream pre-merged, and a failed upstream flush re-ingests
// locally so the data survives for the next flush.
func TestRelayForwards(t *testing.T) {
	prof, tree := fixtures(t)
	ctx := context.Background()

	root, rootCl := newServer(t, Config{Shards: 2})
	leaf, leafCl := newServer(t, Config{Shards: 2})
	r := &Relay{Local: leaf, Upstream: rootCl, Interval: time.Hour, MaxItems: 4}

	for i := 0; i < 3; i++ {
		if _, err := leafCl.PushProfile(ctx, prof); err != nil {
			t.Fatal(err)
		}
		if _, err := leafCl.PushExport(ctx, tree.Export("compress")); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.FlushOnce(ctx); err != nil {
		t.Fatal(err)
	}
	// Three pushes of each kind pre-merge into one envelope of each.
	if m := root.Metrics(); m.IngestedProfiles != 1 || m.IngestedCCTs != 1 {
		t.Fatalf("root metrics after flush: %+v", m)
	}
	merged, ok := root.MergedProfile("compress")
	if !ok {
		t.Fatal("root has no merged profile")
	}
	wf, _ := prof.Totals()
	if gf, _ := merged.Totals(); gf != 3*wf {
		t.Fatalf("root merged freq %d, want %d", gf, 3*wf)
	}
	if st := r.Stats(); st.FramesPushed != 1 || st.EnvelopesPushed != 2 {
		t.Fatalf("relay stats: %+v", st)
	}

	// Upstream failure: the taken envelopes fold back into the leaf.
	r.Upstream = &Client{BaseURL: "http://127.0.0.1:1", HTTPClient: &http.Client{Timeout: 50 * time.Millisecond}}
	if _, err := leafCl.PushProfile(ctx, prof); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushOnce(ctx); err == nil {
		t.Fatal("flush to a dead upstream should fail")
	}
	if st := r.Stats(); st.FlushFailures != 1 {
		t.Fatalf("relay stats after failure: %+v", st)
	}
	kept, ok := leaf.MergedProfile("compress")
	if !ok {
		t.Fatal("failed flush lost the leaf's data")
	}
	if gf, _ := kept.Totals(); gf != wf {
		t.Fatalf("re-ingested freq %d, want %d", gf, wf)
	}
	// Upstream recovers: the retained data arrives with the next flush.
	r.Upstream = rootCl
	if err := r.FlushOnce(ctx); err != nil {
		t.Fatal(err)
	}
	merged, _ = root.MergedProfile("compress")
	if gf, _ := merged.Totals(); gf != 4*wf {
		t.Fatalf("root merged freq %d after recovery, want %d", gf, 4*wf)
	}
}
