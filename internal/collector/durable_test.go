package collector

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pathprof/internal/store"
	"pathprof/internal/wire"
)

// newDurableServer mounts a store on a fresh collector and serves it.
// The caller owns the returned log (closed via t.Cleanup in open order,
// so restarts can close it earlier by hand).
func newDurableServer(t *testing.T, dir string, cfg Config, sopts store.Options) (*Collector, *Client, *store.Log, store.Recovery) {
	t.Helper()
	c := New(cfg)
	l, rec, err := c.OpenStore(dir, sopts)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, &Client{BaseURL: srv.URL, HTTPClient: srv.Client()}, l, rec
}

func pushEnvelopes(t *testing.T, cl *Client, envs []envelope) {
	t.Helper()
	ctx := context.Background()
	for _, e := range envs {
		var err error
		if e.p != nil {
			_, err = cl.PushProfile(ctx, e.p)
		} else {
			_, err = cl.PushExport(ctx, e.ex)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableRestartByteIdentity is the durability oracle: push a
// workload into a durable collector, tear the whole process state down
// (close the store, drop the collector), recover from disk alone, and
// the recovered tables 3, 4 and 5 must be byte-identical to an
// uninterrupted in-memory collector fed the same envelope multiset.
func TestDurableRestartByteIdentity(t *testing.T) {
	envs := testEnvelopes(t, 10)
	programs := []string{"compress", "otherprog"}

	_, memCl := newServer(t, Config{Shards: 4})
	pushEnvelopes(t, memCl, envs)
	want := tableBytes(t, memCl, programs)

	dir := t.TempDir()
	_, durCl, l, _ := newDurableServer(t, dir, Config{Shards: 4}, store.Options{})
	pushEnvelopes(t, durCl, envs)
	if got := tableBytes(t, durCl, programs); got != want {
		t.Fatalf("durable collector diverged before restart")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Restart: a brand-new collector recovers purely from the log.
	_, cl2, _, rec := newDurableServer(t, dir, Config{Shards: 4}, store.Options{})
	if rec.Records == 0 {
		t.Fatalf("restart replayed nothing: %+v", rec)
	}
	if got := tableBytes(t, cl2, programs); got != want {
		t.Fatalf("tables after restart+replay differ from uninterrupted run")
	}
}

// TestSnapshotMidIngestEquivalence covers the satellite: snapshot in
// the middle of an ingest stream, restart, replay the remainder — the
// tables must be byte-identical to the uninterrupted collector, and the
// replay must be bounded by the snapshot (few records, not the full
// history).
func TestSnapshotMidIngestEquivalence(t *testing.T) {
	envs := testEnvelopes(t, 12)
	programs := []string{"compress", "otherprog"}

	_, memCl := newServer(t, Config{Shards: 4})
	pushEnvelopes(t, memCl, envs)
	want := tableBytes(t, memCl, programs)

	dir := t.TempDir()
	_, durCl, l, _ := newDurableServer(t, dir, Config{Shards: 4}, store.Options{})
	half := len(envs) / 2
	pushEnvelopes(t, durCl, envs[:half])

	// Snapshot through the ops endpoint, as an operator would.
	resp, err := durCl.http().Post(durCl.BaseURL+"/store/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sm store.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&sm); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sm.Snapshots != 1 {
		t.Fatalf("snapshot endpoint: status %d, metrics %+v", resp.StatusCode, sm)
	}

	pushEnvelopes(t, durCl, envs[half:])
	l.Close()

	_, cl2, _, rec := newDurableServer(t, dir, Config{Shards: 4}, store.Options{})
	if rec.SnapshotSeq == 0 || rec.SnapshotBytes == 0 {
		t.Fatalf("restart ignored the snapshot: %+v", rec)
	}
	if rec.Records != len(envs)-half {
		t.Fatalf("replay folded %d records, want only the %d post-snapshot pushes", rec.Records, len(envs)-half)
	}
	if got := tableBytes(t, cl2, programs); got != want {
		t.Fatalf("tables after snapshot+restart+replay differ from uninterrupted run")
	}
}

// TestCompactionEndpointEquivalence: compacting sealed segments through
// the ops endpoint must not change any table, before or after restart.
func TestCompactionEndpointEquivalence(t *testing.T) {
	envs := testEnvelopes(t, 8)
	programs := []string{"compress", "otherprog"}

	_, memCl := newServer(t, Config{Shards: 4})
	pushEnvelopes(t, memCl, envs)
	want := tableBytes(t, memCl, programs)

	dir := t.TempDir()
	// Small segments so the stream seals several; no auto-compaction —
	// the endpoint drives it.
	sopts := store.Options{SegmentBytes: 1 << 10, CompactAfter: -1}
	_, durCl, l, _ := newDurableServer(t, dir, Config{Shards: 4}, sopts)
	pushEnvelopes(t, durCl, envs)

	resp, err := durCl.http().Post(durCl.BaseURL+"/store/compact", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sm store.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&sm); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sm.Compactions == 0 {
		t.Fatalf("nothing compacted (segments=%d); metrics %+v", sm.Segments, sm)
	}
	if got := tableBytes(t, durCl, programs); got != want {
		t.Fatalf("compaction changed live tables")
	}
	l.Close()

	_, cl2, _, rec := newDurableServer(t, dir, Config{Shards: 4}, sopts)
	if got := tableBytes(t, cl2, programs); got != want {
		t.Fatalf("tables after compaction+restart differ from uninterrupted run")
	}
	if rec.Records >= len(envs) {
		t.Fatalf("replay folded %d records, want fewer than %d after compaction", rec.Records, len(envs))
	}
}

// TestDurablePushRetryDeduplicates: the same push ID twice — the wire
// retry after a lost ack — folds once and acks the second as duplicate.
func TestDurablePushRetryDeduplicates(t *testing.T) {
	prof, _ := fixtures(t)
	dir := t.TempDir()
	c, cl, _, _ := newDurableServer(t, dir, Config{Shards: 2}, store.Options{})

	var body bytes.Buffer
	if err := wire.Encode(&body, prof); err != nil {
		t.Fatal(err)
	}
	push := func() IngestResponse {
		req, err := http.NewRequest(http.MethodPost, cl.BaseURL+"/ingest", bytes.NewReader(body.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Push-Id", "deadbeef01")
		resp, err := cl.http().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("push: HTTP %d", resp.StatusCode)
		}
		var ir IngestResponse
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
		return ir
	}
	if ir := push(); ir.Duplicate {
		t.Fatalf("first push marked duplicate: %+v", ir)
	}
	if ir := push(); !ir.Duplicate {
		t.Fatalf("retried push not marked duplicate: %+v", ir)
	}
	m := c.Metrics()
	if m.IngestedProfiles != 1 {
		t.Fatalf("ingested %d profiles, want 1 (retry must not re-fold)", m.IngestedProfiles)
	}
	if m.Store == nil || m.Store.Duplicates != 1 {
		t.Fatalf("store metrics: %+v", m.Store)
	}
}

// TestStoreFullBackpressure covers the satellite: when the WAL disk
// budget is exhausted the client sees 503 + Retry-After (a retryable
// shed, like 429), RejectedStoreFull counts it, and a snapshot frees
// the budget so the retried push succeeds.
func TestStoreFullBackpressure(t *testing.T) {
	prof, _ := fixtures(t)
	dir := t.TempDir()
	// Budget fits roughly two profile pushes.
	var probe bytes.Buffer
	if err := wire.Encode(&probe, prof); err != nil {
		t.Fatal(err)
	}
	budget := int64(probe.Len()*2 + 256)
	c, cl, _, _ := newDurableServer(t, dir, Config{Shards: 2, RetryAfter: 2 * time.Second},
		store.Options{MaxLogBytes: budget})

	ctx := context.Background()
	var sawFull bool
	var fullErr error
	for i := 0; i < 10; i++ {
		if _, err := cl.PushProfile(ctx, prof); err != nil {
			sawFull, fullErr = true, err
			break
		}
	}
	if !sawFull {
		t.Fatalf("no 503 after exhausting a %d-byte budget", budget)
	}
	var ae *apiError
	if !errors.As(fullErr, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("store-full error = %v, want HTTP 503", fullErr)
	}
	if ae.RetryAfter < time.Second {
		t.Fatalf("store-full response carries no Retry-After hint: %+v", ae)
	}
	if got, ok := retryable(fullErr); !ok || got != ae.RetryAfter {
		t.Fatalf("client does not treat store-full as retryable backoff: %v %v", got, ok)
	}
	if m := c.Metrics(); m.RejectedStoreFull == 0 {
		t.Fatalf("RejectedStoreFull not counted: %+v", m)
	}

	// A snapshot absorbs the log into one compact file; the client's
	// retry must now land.
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.PushProfile(ctx, prof); err != nil {
		t.Fatalf("push after snapshot freed the budget: %v", err)
	}
}

// TestDurabilityMetricsExposed: /metrics must carry the store's
// per-stage counters and the declared ack mode.
func TestDurabilityMetricsExposed(t *testing.T) {
	prof, _ := fixtures(t)
	dir := t.TempDir()
	_, cl, _, _ := newDurableServer(t, dir, Config{Shards: 2}, store.Options{})
	if _, err := cl.PushProfile(context.Background(), prof); err != nil {
		t.Fatal(err)
	}
	data, err := cl.get(context.Background(), "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Durability != "batch" {
		t.Fatalf("durability = %q, want batch", m.Durability)
	}
	if m.Store == nil {
		t.Fatalf("no store metrics in /metrics")
	}
	if m.Store.Appends != 1 || m.Store.Fsyncs == 0 || m.Store.AppendedBytes == 0 {
		t.Fatalf("store metrics not counting: %+v", m.Store)
	}

	// The in-memory collector must say so and carry no store block.
	_, memCl := newServer(t, Config{})
	data, err = memCl.get(context.Background(), "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mm Metrics
	if err := json.Unmarshal(data, &mm); err != nil {
		t.Fatal(err)
	}
	if mm.Durability != "none" || mm.Store != nil {
		t.Fatalf("in-memory metrics: durability=%q store=%v", mm.Durability, mm.Store)
	}
}

// TestDurableRelaySpool: a relay with a durable local collector spools
// through upstream outages and across restarts without losing or
// double-delivering envelopes.
func TestDurableRelaySpool(t *testing.T) {
	envs := testEnvelopes(t, 6)
	programs := []string{"compress", "otherprog"}

	_, memCl := newServer(t, Config{Shards: 4})
	pushEnvelopes(t, memCl, envs)
	want := tableBytes(t, memCl, programs)

	root, rootCl := newServer(t, Config{Shards: 4})
	_ = root

	dir := t.TempDir()
	local, localCl, l, _ := newDurableServer(t, dir, Config{Shards: 2}, store.Options{})
	relay := &Relay{
		Local:    local,
		Upstream: &Client{BaseURL: "http://127.0.0.1:1", HTTPClient: &http.Client{Timeout: 200 * time.Millisecond}},
	}
	pushEnvelopes(t, localCl, envs[:len(envs)/2])
	// Flush against a dead upstream: the envelopes must re-ingest
	// locally and the spool must NOT be checkpointed.
	if err := relay.FlushOnce(context.Background()); err == nil {
		t.Fatalf("flush against dead upstream succeeded")
	}
	if relay.Stats().Checkpoints != 0 {
		t.Fatalf("relay checkpointed a failed flush")
	}
	l.Close()

	// Crash the relay; recovery must still hold the first half.
	local2, local2Cl, _, rec := newDurableServer(t, dir, Config{Shards: 2}, store.Options{})
	if rec.Records == 0 {
		t.Fatalf("relay spool replayed nothing")
	}
	pushEnvelopes(t, local2Cl, envs[len(envs)/2:])
	relay2 := &Relay{Local: local2, Upstream: rootCl}
	if err := relay2.FlushOnce(context.Background()); err != nil {
		t.Fatalf("flush to live upstream: %v", err)
	}
	if relay2.Stats().Checkpoints != 1 {
		t.Fatalf("successful flush did not checkpoint: %+v", relay2.Stats())
	}
	if got := tableBytes(t, rootCl, programs); got != want {
		t.Fatalf("upstream tables after spooled relay differ from direct ingest")
	}
	// The checkpoint bounded the spool: a second restart replays the
	// (near-empty) snapshot, not the full history, and a second flush
	// must not double-deliver.
	if err := relay2.FlushOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := tableBytes(t, rootCl, programs); got != want {
		t.Fatalf("idle flush re-delivered envelopes upstream")
	}
}

// TestDurableConcurrentPushes exercises group commit under the full
// HTTP stack: many concurrent pushes, all durable, all replayed.
func TestDurableConcurrentPushes(t *testing.T) {
	envs := testEnvelopes(t, 8)
	programs := []string{"compress", "otherprog"}

	_, memCl := newServer(t, Config{Shards: 4})
	pushEnvelopes(t, memCl, envs)
	want := tableBytes(t, memCl, programs)

	dir := t.TempDir()
	c, durCl, l, _ := newDurableServer(t, dir, Config{Shards: 4}, store.Options{})
	errc := make(chan error, len(envs))
	for _, e := range envs {
		go func(e envelope) {
			var err error
			if e.p != nil {
				_, err = durCl.PushProfile(context.Background(), e.p)
			} else {
				_, err = durCl.PushExport(context.Background(), e.ex)
			}
			errc <- err
		}(e)
	}
	for range envs {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if m := c.Metrics(); m.Store.Appends != uint64(len(envs)) {
		t.Fatalf("store appends = %d, want %d", m.Store.Appends, len(envs))
	}
	l.Close()

	_, cl2, _, _ := newDurableServer(t, dir, Config{Shards: 4}, store.Options{})
	if got := tableBytes(t, cl2, programs); got != want {
		t.Fatalf("concurrent durable ingest did not replay byte-identically")
	}
}

// TestParseAckMode pins the -durability flag values.
func TestParseAckMode(t *testing.T) {
	for s, want := range map[string]AckMode{"": AckNone, "none": AckNone, "batch": AckBatch} {
		got, err := ParseAckMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseAckMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseAckMode("fsync-each"); err == nil {
		t.Fatalf("bad mode accepted")
	}
	if AckNone.String() != "none" || AckBatch.String() != "batch" {
		t.Fatalf("AckMode strings: %q %q", AckNone, AckBatch)
	}
}

