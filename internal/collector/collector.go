// Package collector implements the profile collection tier: an HTTP
// service that ingests wire-format envelopes (internal/wire) POSTed by
// many concurrent producers, merges them into sharded in-memory
// aggregates, and answers queries by rendering the paper's tables from
// the merged data.
//
// Concurrency model: admission is bounded by a semaphore of
// Config.MaxConcurrent slots; each admitted request is decoded off the
// socket under a request timeout and a body size cap, then folded into
// one of Config.Shards shard aggregates chosen round-robin. Shards
// never mutate published values — merging replaces the map entry with a
// freshly built aggregate (cct.MergeExports builds new nodes; profiles
// are cloned before profile.Merge) — so queries snapshot pointers under
// the shard lock and read without further locking. Because merging is
// associative and commutative over these aggregates, the fully merged
// result is independent of how requests were spread across shards.
//
// Shutdown sets a draining flag (new ingests get 503) and waits for
// in-flight merges, so no accepted profile is lost.
package collector

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pathprof/internal/cct"
	"pathprof/internal/profile"
)

// Config bounds the collector's resource use. Zero values select the
// defaults below.
type Config struct {
	// Shards is the number of independent aggregate shards (default 4).
	Shards int
	// MaxBodyBytes caps one request body (default 64 MiB); larger
	// uploads get 413.
	MaxBodyBytes int64
	// MaxConcurrent bounds admitted ingest requests (default 64); when
	// all slots are busy new requests get 503.
	MaxConcurrent int
	// RequestTimeout bounds one ingest from admission to merge
	// (default 30s); slow clients get 408.
	RequestTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// shard is one independent slice of the aggregate state. Map values are
// immutable once published: merges replace entries.
type shard struct {
	mu       sync.Mutex
	profiles map[string]*profile.Profile
	exports  map[string]*cct.Export
}

// Metrics is a point-in-time snapshot of the collector's counters.
type Metrics struct {
	IngestedProfiles uint64 `json:"ingested_profiles"`
	IngestedCCTs     uint64 `json:"ingested_ccts"`
	IngestedBytes    uint64 `json:"ingested_bytes"`
	RejectedBusy     uint64 `json:"rejected_busy"`
	RejectedTooLarge uint64 `json:"rejected_too_large"`
	RejectedTimeout  uint64 `json:"rejected_timeout"`
	RejectedBad      uint64 `json:"rejected_bad"`
	RejectedConflict uint64 `json:"rejected_conflict"`
	RejectedDraining uint64 `json:"rejected_draining"`
	Inflight         int64  `json:"inflight"`
	Draining         bool   `json:"draining"`
}

// Collector aggregates pushed profiles. Create one with New.
type Collector struct {
	cfg    Config
	sem    chan struct{}
	next   atomic.Uint64 // round-robin shard cursor
	shards []*shard

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup

	ingestedProfiles atomic.Uint64
	ingestedCCTs     atomic.Uint64
	ingestedBytes    atomic.Uint64
	rejectedBusy     atomic.Uint64
	rejectedTooBig   atomic.Uint64
	rejectedTimeout  atomic.Uint64
	rejectedBad      atomic.Uint64
	rejectedConflict atomic.Uint64
	rejectedDraining atomic.Uint64
	inflightCount    atomic.Int64
}

// New creates a collector with cfg (zero fields defaulted).
func New(cfg Config) *Collector {
	cfg = cfg.withDefaults()
	c := &Collector{
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.MaxConcurrent),
		shards: make([]*shard, cfg.Shards),
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			profiles: make(map[string]*profile.Profile),
			exports:  make(map[string]*cct.Export),
		}
	}
	return c
}

// Config returns the effective (defaulted) configuration.
func (c *Collector) Config() Config { return c.cfg }

// Metrics returns a snapshot of the counters.
func (c *Collector) Metrics() Metrics {
	c.mu.Lock()
	draining := c.draining
	c.mu.Unlock()
	return Metrics{
		IngestedProfiles: c.ingestedProfiles.Load(),
		IngestedCCTs:     c.ingestedCCTs.Load(),
		IngestedBytes:    c.ingestedBytes.Load(),
		RejectedBusy:     c.rejectedBusy.Load(),
		RejectedTooLarge: c.rejectedTooBig.Load(),
		RejectedTimeout:  c.rejectedTimeout.Load(),
		RejectedBad:      c.rejectedBad.Load(),
		RejectedConflict: c.rejectedConflict.Load(),
		RejectedDraining: c.rejectedDraining.Load(),
		Inflight:         c.inflightCount.Load(),
		Draining:         draining,
	}
}

// begin admits one ingest: it fails when draining and otherwise
// registers the request with the drain group. The caller must call the
// returned done func exactly once.
func (c *Collector) begin() (done func(), err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return nil, errDraining
	}
	c.inflight.Add(1)
	c.inflightCount.Add(1)
	return func() {
		c.inflightCount.Add(-1)
		c.inflight.Done()
	}, nil
}

var errDraining = errors.New("collector: draining")

// Shutdown stops admitting ingests and waits for in-flight requests to
// finish merging, or for ctx.
func (c *Collector) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		c.inflight.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("collector: shutdown: %w", ctx.Err())
	}
}

// conflictError marks a push whose shape or mode contradicts the
// aggregate already held for its program (HTTP 409).
type conflictError struct{ err error }

func (e *conflictError) Error() string { return e.err.Error() }
func (e *conflictError) Unwrap() error { return e.err }

// ingestProfile folds p into a round-robin shard.
func (c *Collector) ingestProfile(p *profile.Profile) error {
	sh := c.pick()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur, ok := sh.profiles[p.Program]
	if !ok {
		sh.profiles[p.Program] = p
		c.ingestedProfiles.Add(1)
		return nil
	}
	if cur.Mode != p.Mode {
		return &conflictError{fmt.Errorf("profile mode %q conflicts with aggregated mode %q", p.Mode, cur.Mode)}
	}
	if cur.SchemaKey() != p.SchemaKey() {
		return &conflictError{fmt.Errorf("profile metric schema %q conflicts with aggregated schema %q", p.SchemaKey(), cur.SchemaKey())}
	}
	merged := cloneProfile(cur)
	if err := merged.Merge(p); err != nil {
		return &conflictError{err}
	}
	sh.profiles[p.Program] = merged
	c.ingestedProfiles.Add(1)
	return nil
}

// ingestExport folds ex into a round-robin shard.
func (c *Collector) ingestExport(ex *cct.Export) error {
	sh := c.pick()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur, ok := sh.exports[ex.Program]
	if !ok {
		sh.exports[ex.Program] = ex
		c.ingestedCCTs.Add(1)
		return nil
	}
	merged, err := cct.MergeExports(cur, ex)
	if err != nil {
		return &conflictError{err}
	}
	merged.Program = cur.Program
	sh.exports[ex.Program] = merged
	c.ingestedCCTs.Add(1)
	return nil
}

func (c *Collector) pick() *shard {
	return c.shards[c.next.Add(1)%uint64(len(c.shards))]
}

// Programs returns every program with any aggregated data, sorted.
func (c *Collector) Programs() []string {
	seen := map[string]bool{}
	for _, sh := range c.shards {
		sh.mu.Lock()
		for name := range sh.profiles {
			seen[name] = true
		}
		for name := range sh.exports {
			seen[name] = true
		}
		sh.mu.Unlock()
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// MergedExport returns the program's CCT aggregate merged across all
// shards, or false when no shard holds one. The result shares nodes
// with at most one shard aggregate when only one shard holds data;
// callers must not mutate it.
func (c *Collector) MergedExport(program string) (*cct.Export, bool) {
	var parts []*cct.Export
	for _, sh := range c.shards {
		sh.mu.Lock()
		if ex, ok := sh.exports[program]; ok {
			parts = append(parts, ex)
		}
		sh.mu.Unlock()
	}
	if len(parts) == 0 {
		return nil, false
	}
	out := parts[0]
	for _, p := range parts[1:] {
		merged, err := cct.MergeExports(out, p)
		if err != nil {
			// Shards only hold exports that merged cleanly with each
			// other's stream; cross-shard mismatch means the producers
			// pushed inconsistent trees. Surface the first shard's view.
			return out, true
		}
		out = merged
	}
	return out, true
}

// MergedProfile returns the program's path profile merged across all
// shards, or false when no shard holds one. The result is always a
// clone; callers may mutate it.
func (c *Collector) MergedProfile(program string) (*profile.Profile, bool) {
	var parts []*profile.Profile
	for _, sh := range c.shards {
		sh.mu.Lock()
		if p, ok := sh.profiles[program]; ok {
			parts = append(parts, p)
		}
		sh.mu.Unlock()
	}
	if len(parts) == 0 {
		return nil, false
	}
	out := cloneProfile(parts[0])
	for _, p := range parts[1:] {
		if err := out.Merge(p); err != nil {
			return out, true
		}
	}
	return out, true
}

// cloneProfile deep-copies p so merges never mutate published
// aggregates out from under concurrent readers.
func cloneProfile(p *profile.Profile) *profile.Profile {
	q := &profile.Profile{Program: p.Program, Mode: p.Mode}
	if len(p.Events) > 0 {
		q.Events = append([]string(nil), p.Events...)
	}
	q.Procs = make([]*profile.ProcPaths, len(p.Procs))
	for i, pp := range p.Procs {
		cp := &profile.ProcPaths{ProcID: pp.ProcID, Name: pp.Name, NumPaths: pp.NumPaths}
		cp.Entries = make([]profile.PathEntry, len(pp.Entries))
		copy(cp.Entries, pp.Entries)
		// Entries hold slices into the source arena; give the clone its
		// own metric storage so later merges never write through shared
		// backing arrays.
		for j := range cp.Entries {
			if src := pp.Entries[j].Metrics; len(src) > 0 {
				cp.Entries[j].Metrics = cp.NewMetrics(len(src))
				copy(cp.Entries[j].Metrics, src)
			}
		}
		q.Procs[i] = cp
	}
	return q
}
