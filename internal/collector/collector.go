// Package collector implements the profile collection tier: an HTTP
// service that ingests wire-format envelopes (internal/wire) POSTed by
// many concurrent producers — singly or in version-3 batched frames —
// folds them into sharded in-memory aggregates, and answers queries by
// rendering the paper's tables from the merged data.
//
// Concurrency model: admission is bounded by a semaphore of
// Config.MaxConcurrent slots plus a wait queue of Config.MaxQueue
// requests; beyond that new pushes are shed immediately with 429 and a
// Retry-After hint, so overload degrades into client-side backoff
// instead of a convoy of timed-out sockets. Each admitted request is
// decoded under a request timeout and a body size cap, then folded into
// one of Config.Shards shard aggregates chosen round-robin (batched
// frames fold item by item, spreading one frame across shards). Shards
// hold fold-in-place aggregates (see agg.go) that queries snapshot under
// the shard lock, so readers never share mutable state with the ingest
// path. Because merging is associative and commutative over these
// aggregates, the fully merged result is independent of how requests
// were spread across shards.
//
// Shutdown sets a draining flag (new ingests get 503) and waits for
// in-flight merges, so no accepted profile is lost.
package collector

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pathprof/internal/cct"
	"pathprof/internal/profile"
	"pathprof/internal/store"
	"pathprof/internal/wire"
)

// Config bounds the collector's resource use. Zero values select the
// defaults below.
type Config struct {
	// Shards is the number of independent aggregate shards (default 4).
	Shards int
	// MaxBodyBytes caps one request body (default 64 MiB); larger
	// uploads get 413.
	MaxBodyBytes int64
	// MaxConcurrent bounds admitted ingest requests (default 64); when
	// all slots are busy new requests wait in the queue.
	MaxConcurrent int
	// MaxQueue bounds how many requests may wait for a concurrency slot
	// (default 256); beyond that pushes are shed with 429 + Retry-After.
	MaxQueue int
	// RetryAfter is the backoff hint sent with 429 responses
	// (default 1s).
	RetryAfter time.Duration
	// RequestTimeout bounds one ingest from admission to merge
	// (default 30s); slow clients get 408.
	RequestTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// shard is one independent slice of the aggregate state. Aggregates are
// mutated in place under the shard lock; queries snapshot them (also
// under the lock) before rendering.
type shard struct {
	mu       sync.Mutex
	profiles map[string]*profAgg
	exports  map[string]*cctAgg
}

func newShard() *shard {
	return &shard{
		profiles: make(map[string]*profAgg),
		exports:  make(map[string]*cctAgg),
	}
}

// Metrics is a point-in-time snapshot of the collector's counters.
// Store is present only when a durability tier is mounted (see
// durable.go): it carries the per-stage append/fsync/replay/compaction
// counters and latencies.
type Metrics struct {
	IngestedProfiles  uint64         `json:"ingested_profiles"`
	IngestedCCTs      uint64         `json:"ingested_ccts"`
	IngestedFrames    uint64         `json:"ingested_frames"`
	IngestedBytes     uint64         `json:"ingested_bytes"`
	RejectedBusy      uint64         `json:"rejected_busy"`
	RejectedQueueFull uint64         `json:"rejected_queue_full"`
	RejectedTooLarge  uint64         `json:"rejected_too_large"`
	RejectedTimeout   uint64         `json:"rejected_timeout"`
	RejectedBad       uint64         `json:"rejected_bad"`
	RejectedConflict  uint64         `json:"rejected_conflict"`
	RejectedStoreFull uint64         `json:"rejected_store_full"`
	RejectedDraining  uint64         `json:"rejected_draining"`
	Inflight          int64          `json:"inflight"`
	QueueDepth        int64          `json:"queue_depth"`
	Draining          bool           `json:"draining"`
	Durability        string         `json:"durability"`
	Store             *store.Metrics `json:"store,omitempty"`
}

// foldScratch bundles the reusable decode state one ingest needs: the
// zero-copy frame parser, the item scratch structs, the ancestor map for
// CCT folds, and a batch writer for converting single envelopes onto the
// batch fold path. Pooled so steady-state ingest allocates nothing.
type foldScratch struct {
	frame wire.Frame
	bp    wire.BatchProfile
	bc    wire.BatchCCT
	bw    wire.BatchWriter
	buf   []byte
	anc   []*aggNode
}

// Collector aggregates pushed profiles. Create one with New.
type Collector struct {
	cfg     Config
	sem     chan struct{}
	next    atomic.Uint64 // round-robin shard cursor
	shards  []*shard
	scratch sync.Pool // of *foldScratch

	// store, when mounted (durable.go), makes every ingest durable
	// before it is acked; nil keeps the zero-dependency in-memory mode.
	store   Store
	ackMode AckMode

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup

	ingestedProfiles atomic.Uint64
	ingestedCCTs     atomic.Uint64
	ingestedFrames   atomic.Uint64
	ingestedBytes    atomic.Uint64
	rejectedBusy     atomic.Uint64
	rejectedQueue    atomic.Uint64
	rejectedTooBig   atomic.Uint64
	rejectedTimeout  atomic.Uint64
	rejectedBad       atomic.Uint64
	rejectedConflict  atomic.Uint64
	rejectedStoreFull atomic.Uint64
	rejectedDraining  atomic.Uint64
	inflightCount    atomic.Int64
	queueDepth       atomic.Int64
}

// New creates a collector with cfg (zero fields defaulted).
func New(cfg Config) *Collector {
	cfg = cfg.withDefaults()
	c := &Collector{
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.MaxConcurrent),
		shards: make([]*shard, cfg.Shards),
	}
	c.scratch.New = func() any { return &foldScratch{} }
	for i := range c.shards {
		c.shards[i] = newShard()
	}
	return c
}

// Config returns the effective (defaulted) configuration.
func (c *Collector) Config() Config { return c.cfg }

// Metrics returns a snapshot of the counters.
func (c *Collector) Metrics() Metrics {
	c.mu.Lock()
	draining := c.draining
	c.mu.Unlock()
	m := Metrics{
		IngestedProfiles:  c.ingestedProfiles.Load(),
		IngestedCCTs:      c.ingestedCCTs.Load(),
		IngestedFrames:    c.ingestedFrames.Load(),
		IngestedBytes:     c.ingestedBytes.Load(),
		RejectedBusy:      c.rejectedBusy.Load(),
		RejectedQueueFull: c.rejectedQueue.Load(),
		RejectedTooLarge:  c.rejectedTooBig.Load(),
		RejectedTimeout:   c.rejectedTimeout.Load(),
		RejectedBad:       c.rejectedBad.Load(),
		RejectedConflict:  c.rejectedConflict.Load(),
		RejectedStoreFull: c.rejectedStoreFull.Load(),
		RejectedDraining:  c.rejectedDraining.Load(),
		Inflight:          c.inflightCount.Load(),
		QueueDepth:        c.queueDepth.Load(),
		Draining:          draining,
		Durability:        c.ackMode.String(),
	}
	if c.store != nil {
		sm := c.store.Metrics()
		m.Store = &sm
	}
	return m
}

// begin admits one ingest: it fails when draining and otherwise
// registers the request with the drain group. The caller must call the
// returned done func exactly once.
func (c *Collector) begin() (done func(), err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return nil, errDraining
	}
	c.inflight.Add(1)
	c.inflightCount.Add(1)
	return func() {
		c.inflightCount.Add(-1)
		c.inflight.Done()
	}, nil
}

var errDraining = errors.New("collector: draining")

// Shutdown stops admitting ingests and waits for in-flight requests to
// finish merging, or for ctx.
func (c *Collector) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		c.inflight.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("collector: shutdown: %w", ctx.Err())
	}
}

// conflictError marks a push whose shape or mode contradicts the
// aggregate already held for its program (HTTP 409).
type conflictError struct{ err error }

func (e *conflictError) Error() string { return e.err.Error() }
func (e *conflictError) Unwrap() error { return e.err }

func (c *Collector) getScratch() *foldScratch   { return c.scratch.Get().(*foldScratch) }
func (c *Collector) putScratch(sc *foldScratch) { c.scratch.Put(sc) }

// ingestProfile folds p into a round-robin shard (the v1/v2
// single-envelope path).
func (c *Collector) ingestProfile(p *profile.Profile) error {
	sh := c.pick()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	a, ok := sh.profiles[p.Program]
	if !ok {
		sh.profiles[p.Program] = newProfAgg(p)
		c.ingestedProfiles.Add(1)
		return nil
	}
	if err := a.fold(p); err != nil {
		return err
	}
	c.ingestedProfiles.Add(1)
	return nil
}

// ingestExport folds ex into a round-robin shard. The export is
// converted through the batch codec so the single-envelope path and the
// frame path share one fold implementation.
func (c *Collector) ingestExport(ex *cct.Export) error {
	sc := c.getScratch()
	defer c.putScratch(sc)
	sc.bw.Reset()
	if err := sc.bw.AddExport(ex); err != nil {
		return err
	}
	sc.buf = sc.bw.AppendFrame(sc.buf[:0])
	if err := sc.frame.Reset(sc.buf); err != nil {
		return err
	}
	if err := sc.frame.DecodeCCT(0, &sc.bc); err != nil {
		return err
	}
	return c.ingestBatchCCT(&sc.bc, sc)
}

// ingestBatchProfile folds one decoded batch profile item into a shard.
func (c *Collector) ingestBatchProfile(bp *wire.BatchProfile, _ *foldScratch) error {
	sh := c.pick()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	a, ok := sh.profiles[string(bp.Program)] // string(…) key lookup does not allocate
	if !ok {
		a = newProfAggBatch(bp)
		sh.profiles[a.program] = a
		c.ingestedProfiles.Add(1)
		return nil
	}
	if err := a.foldBatch(bp); err != nil {
		return err
	}
	c.ingestedProfiles.Add(1)
	return nil
}

// ingestBatchCCT folds one decoded batch CCT item into a shard.
func (c *Collector) ingestBatchCCT(bc *wire.BatchCCT, sc *foldScratch) error {
	sh := c.pick()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	a, ok := sh.exports[string(bc.Program)]
	if !ok {
		agg, err := newCCTAgg(bc, sc)
		if err != nil {
			return err
		}
		sh.exports[agg.program] = agg
		c.ingestedCCTs.Add(1)
		return nil
	}
	if err := a.foldBatch(bc, sc); err != nil {
		return err
	}
	c.ingestedCCTs.Add(1)
	return nil
}

// IngestFrame decodes a version-3 batched frame and folds every item
// into the shard aggregates. Items fold independently in frame order; on
// a mid-frame error the items already folded stay applied, and the
// returned counts say how many of each kind landed. Steady-state frames
// from a stable producer population fold without allocating.
func (c *Collector) IngestFrame(data []byte) (profiles, ccts int, err error) {
	sc := c.getScratch()
	defer c.putScratch(sc)
	if err := sc.frame.Reset(data); err != nil {
		return 0, 0, err
	}
	n := sc.frame.Items()
	for i := 0; i < n; i++ {
		switch sc.frame.Kind(i) {
		case wire.KindProfile:
			if err := sc.frame.DecodeProfile(i, &sc.bp); err != nil {
				return profiles, ccts, err
			}
			if len(sc.bp.Program) == 0 {
				return profiles, ccts, fmt.Errorf("frame item %d names no program", i)
			}
			if err := c.ingestBatchProfile(&sc.bp, sc); err != nil {
				return profiles, ccts, err
			}
			profiles++
		case wire.KindCCT:
			if err := sc.frame.DecodeCCT(i, &sc.bc); err != nil {
				return profiles, ccts, err
			}
			if len(sc.bc.Program) == 0 {
				return profiles, ccts, fmt.Errorf("frame item %d names no program", i)
			}
			if err := c.ingestBatchCCT(&sc.bc, sc); err != nil {
				return profiles, ccts, err
			}
			ccts++
		}
	}
	c.ingestedFrames.Add(1)
	return profiles, ccts, nil
}

func (c *Collector) pick() *shard {
	return c.shards[c.next.Add(1)%uint64(len(c.shards))]
}

// Programs returns every program with any aggregated data, sorted.
func (c *Collector) Programs() []string {
	seen := map[string]bool{}
	for _, sh := range c.shards {
		sh.mu.Lock()
		for name := range sh.profiles {
			seen[name] = true
		}
		for name := range sh.exports {
			seen[name] = true
		}
		sh.mu.Unlock()
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// MergedExport returns the program's CCT aggregate merged across all
// shards, or false when no shard holds one. The result is a fresh
// snapshot; callers may keep it as long as they like.
func (c *Collector) MergedExport(program string) (*cct.Export, bool) {
	var parts []*cct.Export
	for _, sh := range c.shards {
		sh.mu.Lock()
		if a, ok := sh.exports[program]; ok {
			parts = append(parts, a.snapshot())
		}
		sh.mu.Unlock()
	}
	return mergeExportParts(parts)
}

func mergeExportParts(parts []*cct.Export) (*cct.Export, bool) {
	if len(parts) == 0 {
		return nil, false
	}
	out := parts[0]
	for _, p := range parts[1:] {
		merged, err := cct.MergeExports(out, p)
		if err != nil {
			// Shards only hold exports that merged cleanly with each
			// other's stream; cross-shard mismatch means the producers
			// pushed inconsistent trees. Surface the first shard's view.
			return out, true
		}
		out = merged
	}
	return out, true
}

// MergedProfile returns the program's path profile merged across all
// shards, or false when no shard holds one. The result is always a
// fresh snapshot; callers may mutate it.
func (c *Collector) MergedProfile(program string) (*profile.Profile, bool) {
	var parts []*profile.Profile
	for _, sh := range c.shards {
		sh.mu.Lock()
		if a, ok := sh.profiles[program]; ok {
			parts = append(parts, a.snapshot())
		}
		sh.mu.Unlock()
	}
	return mergeProfileParts(parts)
}

func mergeProfileParts(parts []*profile.Profile) (*profile.Profile, bool) {
	if len(parts) == 0 {
		return nil, false
	}
	out := parts[0]
	for _, p := range parts[1:] {
		if err := out.Merge(p); err != nil {
			return out, true
		}
	}
	return out, true
}

// Take removes and returns everything aggregated so far, merged across
// shards per program and sorted by program name. Ingest continues
// concurrently into fresh aggregates; this is the relay flush primitive
// (see relay.go): a leaf collector periodically Takes its aggregate and
// pushes it upstream as one batch.
func (c *Collector) Take() ([]*profile.Profile, []*cct.Export) {
	profParts := map[string][]*profile.Profile{}
	exportParts := map[string][]*cct.Export{}
	for _, sh := range c.shards {
		sh.mu.Lock()
		pm, em := sh.profiles, sh.exports
		sh.profiles = make(map[string]*profAgg)
		sh.exports = make(map[string]*cctAgg)
		sh.mu.Unlock()
		// The swapped-out aggregates are exclusively owned now; snapshot
		// them outside the shard lock.
		for name, a := range pm {
			profParts[name] = append(profParts[name], a.snapshot())
		}
		for name, a := range em {
			exportParts[name] = append(exportParts[name], a.snapshot())
		}
	}
	var profiles []*profile.Profile
	for _, parts := range profParts {
		if p, ok := mergeProfileParts(parts); ok {
			profiles = append(profiles, p)
		}
	}
	var exports []*cct.Export
	for _, parts := range exportParts {
		if ex, ok := mergeExportParts(parts); ok {
			exports = append(exports, ex)
		}
	}
	sort.Slice(profiles, func(i, j int) bool { return profiles[i].Program < profiles[j].Program })
	sort.Slice(exports, func(i, j int) bool { return exports[i].Program < exports[j].Program })
	return profiles, exports
}

// cloneProfile deep-copies p so merges never mutate published
// aggregates out from under concurrent readers.
func cloneProfile(p *profile.Profile) *profile.Profile {
	q := &profile.Profile{Program: p.Program, Mode: p.Mode, K: p.K}
	if len(p.Events) > 0 {
		q.Events = append([]string(nil), p.Events...)
	}
	q.Procs = make([]*profile.ProcPaths, len(p.Procs))
	for i, pp := range p.Procs {
		cp := &profile.ProcPaths{ProcID: pp.ProcID, Name: pp.Name, NumPaths: pp.NumPaths, K: pp.K}
		cp.Entries = make([]profile.PathEntry, len(pp.Entries))
		copy(cp.Entries, pp.Entries)
		// Entries hold slices into the source arena; give the clone its
		// own metric storage so later merges never write through shared
		// backing arrays.
		for j := range cp.Entries {
			if src := pp.Entries[j].Metrics; len(src) > 0 {
				cp.Entries[j].Metrics = cp.NewMetrics(len(src))
				copy(cp.Entries[j].Metrics, src)
			}
		}
		q.Procs[i] = cp
	}
	return q
}
