package hpm

import (
	"math"
	"reflect"
	"testing"
)

func TestParseMetricSet(t *testing.T) {
	set, err := ParseMetricSet("dcache-miss, insts,cycles")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{EvDCacheMiss, EvInsts, EvCycles}
	if !reflect.DeepEqual(set.Events, want) {
		t.Fatalf("events = %v, want %v", set.Events, want)
	}
	if set.String() != "dcache-miss,insts,cycles" {
		t.Fatalf("String() = %q", set.String())
	}
	if set.Index(EvCycles) != 2 || set.Index(EvLoads) != -1 {
		t.Fatalf("Index wrong: cycles=%d loads=%d", set.Index(EvCycles), set.Index(EvLoads))
	}
	if _, err := ParseMetricSet("dcache-miss,bogus"); err == nil {
		t.Fatal("unknown event accepted")
	}
	if _, err := ParseMetricSet(""); err == nil {
		t.Fatal("empty set accepted")
	}
	if !DefaultMetricSet().Equal(NewMetricSet(EvDCacheMiss, EvInsts)) {
		t.Fatal("default set is not the classic pair")
	}
	if DefaultMetricSet().Equal(NewMetricSet(EvInsts, EvDCacheMiss)) {
		t.Fatal("Equal ignores order")
	}
}

func TestWideBankSelectAndWrap(t *testing.T) {
	u := NewK(4)
	u.SelectAll([]Event{EvDCacheMiss, EvInsts, EvLoads, EvStores})
	got := u.SelectedAll()
	if !reflect.DeepEqual(got, []Event{EvDCacheMiss, EvInsts, EvLoads, EvStores}) {
		t.Fatalf("SelectedAll = %v", got)
	}

	// Counters beyond slot 1 are still 32-bit and wrap silently.
	u.Strict = false
	u.WriteAll([]uint32{0, 0, 0xFFFF_FFF0, 0xFFFF_FFFE})
	u.Count(EvLoads, 0x20)
	u.Count(EvStores, 5)
	vals := u.ReadAll(nil)
	if vals[2] != 0x10 {
		t.Fatalf("counter 2 = %#x, want 0x10 after wrap", vals[2])
	}
	if vals[3] != 3 {
		t.Fatalf("counter 3 = %#x, want 3 after wrap", vals[3])
	}
}

func TestReadAllForcesPendingWrite(t *testing.T) {
	u := NewK(4)
	u.SelectAll([]Event{EvInsts, EvNone, EvCycles, EvNone})
	u.Count(EvInsts, 9)
	u.WritePair(0, 0)
	// ReadAll plays the read-after-write role for the whole bank.
	vals := u.ReadAll(make([]uint32, 0, 8))
	if len(vals) != 4 || vals[0] != 0 {
		t.Fatalf("ReadAll = %v, want pending write drained to zero", vals)
	}
	u.Count(EvInsts, 2)
	if pic0, _ := Split(u.Read()); pic0 != 2 {
		t.Fatalf("pic0 = %d, want 2", pic0)
	}
}

func TestWritePairSwitchDrainsPending(t *testing.T) {
	u := NewK(4)
	u.SelectAll([]Event{EvInsts, EvNone, EvNone, EvNone})
	u.Count(EvInsts, 50)
	u.WritePair(0, 7)
	u.WritePair(1, Pack(3, 4)) // different pair: pair-0 write must drain first
	if v := u.ReadPair(0); v != 7 {
		t.Fatalf("pair 0 = %d, want 7", v)
	}
	if v := u.ReadPair(1); v != Pack(3, 4) {
		t.Fatalf("pair 1 = %#x, want %#x", v, Pack(3, 4))
	}
}

func TestPackSplitRoundTrip(t *testing.T) {
	if p0, p1 := Split(Pack(17, 42)); p0 != 17 || p1 != 42 {
		t.Fatalf("Split(Pack(17,42)) = %d,%d", p0, p1)
	}
}

func TestNewKBounds(t *testing.T) {
	for _, k := range []int{0, MaxCounters + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewK(%d) did not panic", k)
				}
			}()
			NewK(k)
		}()
	}
}

// TestSchedulerExactWhenFits: a one-group schedule multiplexes nothing and
// the estimates equal the raw counts.
func TestSchedulerExactWhenFits(t *testing.T) {
	u := NewK(2)
	s := NewScheduler(u, NewMetricSet(EvInsts, EvLoads))
	if s.Groups() != 1 {
		t.Fatalf("groups = %d, want 1", s.Groups())
	}
	u.Count(EvInsts, 10)
	u.Count(EvLoads, 4)
	s.Rotate(100)
	u.Count(EvInsts, 5)
	s.Finish(50)
	want := []uint64{15, 4}
	if got := s.Estimates(); !reflect.DeepEqual(got, want) {
		t.Fatalf("estimates = %v, want %v", got, want)
	}
	if en, total := s.Enabled(0); en != 150 || total != 150 {
		t.Fatalf("enabled = %d/%d, want 150/150", en, total)
	}
}

// TestSchedulerScaledEstimates: a 4-event set on a 2-counter bank rotates
// two groups; under a uniform event rate the scaled estimates recover the
// full-run totals exactly.
func TestSchedulerScaledEstimates(t *testing.T) {
	u := NewK(2)
	set := NewMetricSet(EvInsts, EvLoads, EvStores, EvBranches)
	s := NewScheduler(u, set)
	if s.Groups() != 2 {
		t.Fatalf("groups = %d, want 2", s.Groups())
	}
	// 8 intervals of equal weight; each event fires at a fixed per-interval
	// rate, so each group observes exactly half the run.
	for i := 0; i < 8; i++ {
		u.Count(EvInsts, 100)
		u.Count(EvLoads, 30)
		u.Count(EvStores, 20)
		u.Count(EvBranches, 10)
		s.Rotate(1000)
	}
	want := []uint64{800, 240, 160, 80}
	got := s.Estimates()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d (%s): estimate %d, want %d (raw %v)",
				i, set.Events[i], got[i], want[i], s.Raw())
		}
		if en, total := s.Enabled(i); en*2 != total {
			t.Fatalf("slot %d enabled %d of %d, want half", i, en, total)
		}
	}
	// The shadow totals are unaffected by the multiplexing and give the
	// ground truth the estimates approximate.
	for i, ev := range set.Events {
		if u.Total(ev) != want[i] {
			t.Fatalf("shadow total %s = %d, want %d", ev, u.Total(ev), want[i])
		}
	}
}

// TestSchedulerDeterministic: the same count sequence always yields the
// same schedule and the same estimates.
func TestSchedulerDeterministic(t *testing.T) {
	run := func() []uint64 {
		u := NewK(2)
		s := NewScheduler(u, NewMetricSet(EvInsts, EvLoads, EvStores))
		for i := 0; i < 7; i++ {
			u.Count(EvInsts, uint64(13+i))
			u.Count(EvLoads, uint64(5*i))
			u.Count(EvStores, uint64(i*i))
			s.Rotate(uint64(100 + i))
		}
		s.Finish(31)
		return s.Estimates()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic estimates: %v vs %v", a, b)
	}
	for _, v := range a {
		if v == 0 || v == math.MaxUint64 {
			t.Fatalf("degenerate estimate %v", a)
		}
	}
}
